// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results):
//
//	Table 2  -> BenchmarkTable2Fig1Safety
//	Table 3  -> BenchmarkTable3Fig1Liveness
//	Table 4a -> BenchmarkTable4aPeeringProperty
//	Table 4b -> BenchmarkTable4bIPReuseSafety
//	Table 4c -> BenchmarkTable4cIPReuseLiveness
//	Fig 3a/3c -> BenchmarkFig3MinesweeperVerify (vars/cons reported as metrics)
//	Fig 3b/3d -> BenchmarkFig3LightyearVerify (maxvars/maxcons as metrics)
//	§6.1 scaling -> BenchmarkWANPeeringSweep
//	Ablations -> BenchmarkParallelism, BenchmarkIncremental, BenchmarkSolverAblation
package lightyear_test

import (
	"fmt"
	"math/rand"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/minesweeper"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/smt/sat"
	"lightyear/internal/topology"
)

func BenchmarkTable2Fig1Safety(b *testing.B) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.VerifySafety(p, core.Options{Workers: 1}).OK() {
			b.Fatal("must verify")
		}
	}
}

func BenchmarkTable3Fig1Liveness(b *testing.B) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1LivenessProblem(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.VerifyLiveness(p, core.Options{Workers: 1})
		if err != nil || !rep.OK() {
			b.Fatal("must verify")
		}
	}
}

func BenchmarkTable4aPeeringProperty(b *testing.B) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	props := netgen.PeeringProperties(params.Regions)
	at := netgen.RegionRouter(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prop := props[i%len(props)]
		if !core.VerifySafety(netgen.PeeringProblem(n, at, prop), core.Options{Workers: 1}).OK() {
			b.Fatal("must verify")
		}
	}
}

func BenchmarkTable4bIPReuseSafety(b *testing.B) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	p := netgen.IPReuseSafetyProblem(n, params, 0, netgen.RegionRouter(1, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.VerifySafety(p, core.Options{Workers: 1}).OK() {
			b.Fatal("must verify")
		}
	}
}

func BenchmarkTable4cIPReuseLiveness(b *testing.B) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	p := netgen.IPReuseLivenessProblem(n, params, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.VerifyLiveness(p, core.Options{Workers: 1})
		if err != nil || !rep.OK() {
			b.Fatal("must verify")
		}
	}
}

// BenchmarkFig3LightyearVerify sweeps full-mesh sizes; the reported
// maxvars/maxcons metrics are the Figure-3b series (constant in N) and the
// wall time per op is the Figure-3d series (linear in edges).
func BenchmarkFig3LightyearVerify(b *testing.B) {
	for _, size := range []int{10, 20, 30, 40} {
		b.Run(fmt.Sprintf("N=%d", size), func(b *testing.B) {
			n := netgen.FullMesh(size)
			p := netgen.FullMeshProblem(n)
			var rep *core.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep = core.VerifySafety(p, core.Options{})
				if !rep.OK() {
					b.Fatal("must verify")
				}
			}
			b.ReportMetric(float64(rep.MaxVars()), "maxvars")
			b.ReportMetric(float64(rep.MaxCons()), "maxcons")
			b.ReportMetric(float64(rep.NumChecks()), "checks")
		})
	}
}

// BenchmarkFig3MinesweeperVerify is the monolithic side: vars/cons are the
// Figure-3a series (quadratic in N) and wall time the Figure-3c series.
func BenchmarkFig3MinesweeperVerify(b *testing.B) {
	loc, pred := netgen.FullMeshProperty()
	for _, size := range []int{10, 20, 30} {
		b.Run(fmt.Sprintf("N=%d", size), func(b *testing.B) {
			n := netgen.FullMesh(size)
			ghosts := []core.GhostDef{netgen.FullMeshGhost(n)}
			var res minesweeper.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = minesweeper.Verify(n, loc, pred, ghosts, minesweeper.Options{})
				if !res.Holds {
					b.Fatal("must verify")
				}
			}
			b.ReportMetric(float64(res.NumVars), "vars")
			b.ReportMetric(float64(res.NumCons), "cons")
		})
	}
}

// BenchmarkWANPeeringSweep is the §6.1 workload: one property across all
// edge routers of a mid-size WAN.
func BenchmarkWANPeeringSweep(b *testing.B) {
	params := netgen.WANParams{Regions: 4, RoutersPerRegion: 3, EdgeRouters: 4, DCsPerRegion: 1, PeersPerEdge: 4}
	n := netgen.WAN(params, netgen.WANBugs{})
	prop := netgen.PeeringProperties(params.Regions)[0]
	edges := n.RoutersByRole("edge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range edges {
			if !core.VerifySafety(netgen.PeeringProblem(n, r, prop), core.Options{Workers: 1}).OK() {
				b.Fatal("must verify")
			}
		}
	}
}

// BenchmarkParallelism is the check-execution ablation: identical problem,
// sequential vs parallel workers.
func BenchmarkParallelism(b *testing.B) {
	n := netgen.FullMesh(20)
	p := netgen.FullMeshProblem(n)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !core.VerifySafety(p, core.Options{Workers: workers}).OK() {
					b.Fatal("must verify")
				}
			}
		})
	}
}

// BenchmarkIncremental measures re-verification after a single-filter edit
// versus verification from scratch.
func BenchmarkIncremental(b *testing.B) {
	mk := func() (*topology.Network, *core.SafetyProblem) {
		n := netgen.FullMesh(15)
		return n, netgen.FullMeshProblem(n)
	}
	b.Run("from-scratch", func(b *testing.B) {
		_, p := mk()
		for i := 0; i < b.N; i++ {
			if !core.VerifySafety(p, core.Options{Workers: 1}).OK() {
				b.Fatal("must verify")
			}
		}
	})
	b.Run("incremental-one-edit", func(b *testing.B) {
		n, p := mk()
		iv := core.NewIncrementalVerifier(p, core.Options{Workers: 1})
		iv.Run()
		e := topology.Edge{From: "R3", To: "R4"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate between two equivalent maps so each iteration has
			// exactly one dirty check.
			m := &policy.RouteMap{Name: fmt.Sprintf("v%d", i%2), DefaultPermit: true}
			n.SetImport(e, m)
			rep, _ := iv.Run()
			if !rep.OK() {
				b.Fatal("must verify")
			}
		}
	})
}

// BenchmarkSolverAblation quantifies the CDCL heuristics on hard random
// 3-SAT at the phase-transition ratio (forces real search): full solver vs
// no-VSIDS vs no-restarts.
func BenchmarkSolverAblation(b *testing.B) {
	build := func(s *sat.Solver) {
		rng := rand.New(rand.NewSource(12345))
		const nv = 140
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		nc := int(float64(nv) * 4.4)
		for c := 0; c < nc; c++ {
			var lits [3]sat.Lit
			for k := 0; k < 3; k++ {
				lits[k] = sat.MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0)
			}
			s.AddClause(lits[:]...)
		}
	}
	run := func(b *testing.B, configure func(*sat.Solver)) {
		for i := 0; i < b.N; i++ {
			s := sat.New()
			configure(s)
			build(s)
			if s.Solve() == sat.Unknown {
				b.Fatal("unexpected unknown")
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, func(*sat.Solver) {}) })
	b.Run("no-vsids", func(b *testing.B) { run(b, func(s *sat.Solver) { s.SetDisableVSIDS(true) }) })
	b.Run("no-restarts", func(b *testing.B) { run(b, func(s *sat.Solver) { s.SetDisableRestarts(true) }) })
}
