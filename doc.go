// Package lightyear is a from-scratch Go implementation of Lightyear
// (Tang et al., SIGCOMM 2023): modular BGP control-plane verification that
// decomposes end-to-end network properties into local checks on individual
// routers and edges.
//
// The library lives under internal/ — see internal/core for the verifier,
// internal/smt for the SMT substrate, internal/sim for the executable BGP
// model, and internal/minesweeper for the monolithic baseline. The
// executables are cmd/lightyear (verifier CLI), cmd/lygen (configuration
// generator), cmd/lybench (evaluation harness regenerating the paper's
// tables and figures), and cmd/lyserve (HTTP verification service). The
// benchmarks in bench_test.go cover every table and figure of the paper's
// evaluation section.
//
// # Execution engine
//
// All verification runs on internal/engine, the shared execution substrate:
// a process-wide bounded worker pool that schedules the local checks of all
// submitted problems through the pipeline
//
//	worker pool → in-flight dedup (singleflight) → LRU result cache → reports
//
// Checks are keyed by their semantic content (core.Check.Key — the filter
// policy, predicates, and ghost updates the verdict depends on), so a WAN
// property sweep that re-issues byte-identical filter checks for every
// router × property pair solves each distinct formula once; concurrent jobs
// submitting the same check share the single in-flight solve. Both
// cmd/lightyear and cmd/lybench submit to an engine, lyserve exposes one
// over HTTP (POST /v1/verify, GET /v1/jobs/{id}, GET /v1/stats), and
// core.IncrementalVerifier can run on one via the core.CheckRunner seam.
//
// # Property registry
//
// Built-in property suites are registered by name in internal/netgen
// (netgen.Lookup / netgen.SuiteNames) and shared by cmd/lightyear and
// lyserve: fig1-no-transit, fig1-liveness, fullmesh, wan-peering,
// wan-ip-reuse, and wan-ip-liveness.
package lightyear
