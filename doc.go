// Package lightyear is a from-scratch Go implementation of Lightyear
// (Tang et al., SIGCOMM 2023): modular BGP control-plane verification that
// decomposes end-to-end network properties into local checks on individual
// routers and edges.
//
// The library lives under internal/ — see internal/core for the verifier,
// internal/smt for the SMT substrate, internal/sim for the executable BGP
// model, and internal/minesweeper for the monolithic baseline. The
// executables are cmd/lightyear (verifier CLI), cmd/lygen (configuration
// generator), and cmd/lybench (evaluation harness regenerating the paper's
// tables and figures). The benchmarks in bench_test.go cover every table
// and figure of the paper's evaluation section.
package lightyear
