// Package lightyear is a from-scratch Go implementation of Lightyear
// (Tang et al., SIGCOMM 2023): modular BGP control-plane verification that
// decomposes end-to-end network properties into local checks on individual
// routers and edges.
//
// The library lives under internal/ — see internal/core for the verifier,
// internal/smt for the SMT substrate, internal/sim for the executable BGP
// model, and internal/minesweeper for the monolithic baseline. The
// executables are cmd/lightyear (verifier CLI), cmd/lygen (configuration
// generator), cmd/lybench (evaluation harness regenerating the paper's
// tables and figures), and cmd/lyserve (HTTP verification service). The
// benchmarks in bench_test.go cover every table and figure of the paper's
// evaluation section.
//
// # Execution engine
//
// All verification runs on internal/engine, the shared execution substrate:
// a process-wide bounded worker pool that schedules the local checks of all
// submitted workloads through the pipeline
//
//	admission → per-tenant fair queue → in-flight dedup (singleflight) →
//	LRU result cache → reports
//
// Submission is one typed entry point: an engine.Workload names what to
// verify (a safety problem, a liveness problem, or a raw check batch), the
// Tenant submitting it, a Priority, and an admission Cost, and
// engine.Submit(ctx, workload) returns the running job. The six legacy
// Submit* methods remain only as deprecated shims over this path. Checks
// are keyed by their semantic content (core.Check.Key — a truncated
// SHA-256 over the filter policy, predicates, and ghost updates the verdict
// depends on), so a WAN property sweep that re-issues byte-identical filter
// checks for every router × property pair solves each distinct formula
// once; concurrent jobs submitting the same check share the single
// in-flight solve. Both cmd/lightyear and cmd/lybench submit to an engine,
// lyserve exposes one over HTTP, and core.IncrementalVerifier can run on
// one via the core.CheckRunner seam.
//
// # Tenancy and admission control
//
// A production lyserve multiplexes many principals onto one engine, so
// load is shed before it enters the shared queue, not after the workers
// are saturated. engine.Options.Admission bounds the admitted, uncompleted
// check cost globally (MaxInFlightChecks), per tenant (PerTenantQuota),
// and the backlog of workloads awaiting dispatch (MaxQueueDepth); an
// over-limit submission fails with the typed engine.ErrAdmission{Tenant,
// Cost, Limit, RetryAfter}, where RetryAfter is estimated from the
// engine's observed per-check solve time. Admitted workloads are
// dispatched by deficit round-robin across tenants (weights via
// Admission.Weights), so a tenant flooding the engine cannot starve the
// others; Priority orders workloads within one tenant only.
//
// The admission unit is the request, not the check: a compiled plan
// reports its total check count via plan.Compiled.Cost, and the whole plan
// is admitted up front (engine.Reserve) or rejected untouched. Surfaces:
// lyserve derives the tenant from the X-Tenant header / ?tenant= query /
// plan "tenant" option, answers rejected plans with HTTP 429 plus a
// Retry-After header, and reports per-tenant counters (admitted, rejected,
// queued, in-flight cost) in GET /v1/stats; delta sessions admit each
// baseline or update as one unit under the session's tenant; `lightyear
// -tenant ops -max-inflight 500` exercises the same path in-process, and
// `lybench -experiment admission` sweeps tenant count × quota and reports
// p50/p99 queue wait and rejection rates.
//
// # Check obligations and solver backends
//
// Check construction and check execution are separate layers. A generated
// check carries a core.Obligation — the declarative, inspectable description
// of what must be proven (kind, location, the route map and ghost actions
// involved, the pre/post predicates, and the polarity) with an Encode method
// producing the violation formula in any smt.Context — and internal/solver
// decides obligations through the solver.Backend interface
// (Solve(ctx, obligation, budget) → outcome). Three backends ship:
//
//   - native: one in-process CDCL solve per obligation (the default);
//   - portfolio: races heuristic variants of the solver (VSIDS vs static
//     order, phase polarity, restarts) per obligation — the first verdict
//     wins and the losers are cancelled via context;
//   - tiered: a small conflict-budget attempt first, escalating to the full
//     budget only on Unknown, so cheap checks stay cheap and hard ones
//     still finish.
//
// Every check result carries an explicit Status — ok, fail, or unknown
// (budget exhausted; not a refutation) — plus the backend label that
// produced it, and the engine aggregates per-backend counters (solved,
// unknown, variants raced, escalations, solve time). Unknown results are
// never cached or retained, so a later run with a bigger budget re-solves
// them. Choosing a backend is a per-request routing decision: the plan
// option {"solver": {"backend": "portfolio", "budget": N}}, the CLI flag
// `lightyear -solver tiered:1000`, or engine.SubmitOptions in the library;
// `lightyear` exits 3 when a run fails only because of Unknown checks. The
// sat-stress suite (registered like any property) plants pigeonhole
// obligations that genuinely require search, for exercising budgets and
// backends end-to-end; `lybench -experiment solver` compares the backends
// on the WAN suites.
//
// The result cache is a pluggable seam (engine.ResultCache): the default is
// an in-memory LRU, and internal/store provides a disk-persistent
// JSON-journal implementation keyed by check key (with the originating
// network's fingerprint as provenance), so warm starts survive process
// restarts and lyserve redeploys (-store DIR on both commands).
//
// # Delta verification
//
// internal/delta turns the paper's §2 incremental claim — re-verification
// after a change costs work proportional to the change, not the network —
// into a measurable subsystem. A delta.Verifier pins a baseline network
// for a registry suite; each Update computes the per-router/per-edge
// structural diff (topology.DiffNetworks over topology.Fingerprint
// identities), re-enumerates the suite's checks, reuses every check whose
// semantic key already has a retained result, and submits only the dirty
// subset to the engine, reporting {changed routers, dirty checks, reused
// results, solved}. Surfaces: `lightyear -diff old.cfg` for incremental
// CLI runs, the lyserve session API (POST /v1/sessions, POST
// /v1/sessions/{id}/update, GET /v1/sessions/{id}), and `lybench
// -experiment delta` for the change-size vs re-verification-cost sweep.
//
// # Migration plans
//
// internal/migrate verifies reconfiguration sequences, not just states: a
// migrate.Plan pins a baseline network and walks an ordered list of steps —
// each a full replacement config or a named route-map edit
// (netgen.MutationSpec: insert/remove an import or export clause, tighten a
// router's peer imports) — verifying every intermediate state as a dirty-
// subset delta re-solve on one delta.Verifier. Steps whose config source is
// unchanged (config.SourceFingerprint — comments and whitespace don't
// count) skip solving entirely; a violating step stops the walk and reports
// its index, failing checks, and witnesses. For an unordered change set
// ("unordered": true) migrate.Run searches for a safe order instead:
// depth-first over permutations, pruning interchangeable orders of
// independent steps (disjoint touched routers commute), memoizing verified
// intermediate states by network fingerprint, and bounded by a search
// budget — answering a safe order, or a minimal explanation of why none
// exists. The whole plan is admitted up front as one engine.Reserve unit.
// Surfaces: `lightyear -migrate steps.json` (exit 0 safe, 1 violated at
// step k, 3 undecided, 4 no safe order), POST /v2/sessions/{id}/migrate on
// lyserve (streams step events as NDJSON; success re-pins the session on
// the migrated state, failure rolls back), `lybench -experiment migrate`
// (BENCH_migrate.json), and the lightyear_migrate_steps /
// lightyear_migrate_reorders counters on /metrics.
//
// # Verification plans — the one request API
//
// internal/plan is the declarative request schema every entry point speaks:
// a plan.Request composes a network source (inline config DSL, a config
// file path, a named netgen generator, or a pinned session baseline), a
// list of properties — each a registered suite name optionally scoped to a
// router or region subset (netgen.Scope) — and execution options (workers,
// cache or persistent store, WAN region count, and an optional baseline
// network that switches the run to incremental delta mode). The canonical
// JSON form:
//
//	{
//	  "network":    {"generator": {"kind": "wan", "regions": 2}},
//	  "properties": [{"name": "wan-peering", "routers": ["edge-0"]},
//	                 {"name": "wan-ip-reuse"}],
//	  "options":    {"wan_regions": 2}
//	}
//
// One request producing N per-property reports runs as N job batches on one
// engine, so checks shared across properties are solved once. Surfaces:
//
//   - CLI: `lightyear -property a,b,c [-routers r1,r2]` compiles the flags
//     into a plan; `-plan file.json` runs a saved one; `-list` prints the
//     registry.
//   - HTTP: `POST /v2/verify` accepts a plan and returns a job whose
//     per-check engine Progress events stream as NDJSON from
//     `GET /v2/jobs/{id}/events` ("start", "check", "problem", "property",
//     and a final "plan" event); `GET /v2/jobs/{id}` is the grouped
//     snapshot.
//     `POST /v2/sessions` pins a plan for incremental updates that inherit
//     its scoping. The v1 endpoints remain as single-suite adapters over
//     the same machinery.
//   - Library: plan.Execute (one-stop) or plan.Compile + plan.Run on a
//     long-lived engine; a Compiled plan is also a delta.ProblemSource.
//
// # Observability
//
// internal/telemetry is the dependency-free telemetry plane the whole stack
// emits into: a telemetry.Recorder holds named counters, gauges, and
// fixed-bucket histograms (with label support) plus a bounded ring of
// finished workload traces, and every layer — engine submit/dispatch,
// admission, solver backends, the result caches, internal/store, and the
// delta verifier — records into the recorder passed via
// engine.Options.Telemetry (a nil recorder is a no-op, so the
// instrumentation costs nothing when unused). Metric names are stable and
// Prometheus-conventional: lightyear_jobs_submitted_total,
// lightyear_checks_solved_total{backend,status}, lightyear_solve_seconds
// and lightyear_queue_wait_seconds histograms,
// lightyear_admission_rejections_total{tenant,reason}, cache and store
// series, and inflight/queue-depth gauges.
//
// A trace follows one workload through the pipeline as a span tree —
// compile, admit, then one problem span per verification problem with
// child spans for enumeration, solving, and cache interaction — and is
// pushed into the recorder's ring when the run finishes. Surfaces: lyserve
// serves GET /metrics in the Prometheus text exposition format, lists
// finished traces at GET /v1/traces, serves one at GET /v1/traces/{id},
// stamps every v2 job with its trace (X-Trace-Id response header,
// "trace_id" in the accept body, the job snapshot, and every NDJSON
// event), and mounts net/http/pprof under /debug/pprof/ behind the -pprof
// flag; `lightyear -trace` prints the run's span tree to stderr; `lybench
// -out FILE.json` writes the experiment's throughput plus solve-time and
// queue-wait quantiles (from the same histograms) to a JSON document — the
// committed BENCH_*.json files at the repo root are that trajectory, and
// CI regenerates one per run as an artifact.
//
// # Reading solver provenance
//
// Every solved check reports not just its verdict and wall time but how
// hard the underlying CDCL search worked: core.CheckResult carries the
// encoding size (NumVars, NumCons, NumTerms) and a core.SolveStats
// {conflicts, decisions, propagations, restarts, learned clauses} snapshot
// taken from the SAT core at the end of the solve. The same counters
// aggregate at every level — per job (engine.JobStats.Solver), per backend
// (engine.Stats.Backends[name].Solver, also in lyserve's /v1/stats and
// /v1/status), on the job's solve span as trace attributes, in the
// lightyear_conflicts_per_check and lightyear_clauses_per_check histograms
// on /metrics, and as conflicts_per_check / learned_clauses_per_check in
// `lybench -out` documents — so "this run was slow" can be split into "the
// formulas got bigger" vs "the search got deeper" at whichever granularity
// the investigation needs. Checks that cross a slow-check policy threshold
// (engine.Options.SlowCheck; -slow-conflicts / -slow-solve on lyserve), and
// every check left Unknown, are additionally logged with the full counter
// set.
//
// # Structured logging
//
// internal/logging builds the log/slog loggers every component shares:
// `-log-level` (debug|info|warn|error) and `-log-format` (text|json) on
// both cmd/lightyear (text default) and cmd/lyserve (json default), with a
// common attribute vocabulary (component, tenant, job, trace_id) so a JSON
// log pipeline can join log lines against traces and job snapshots. The
// engine logs slow/undecided checks, the store logs journal append and
// compaction failures, and lyserve logs lifecycle, session expiry, and
// request-failure events — all through the one configured logger.
//
// # Health and status endpoints
//
// lyserve exposes a Kubernetes-style health plane: GET /healthz is pure
// liveness (the process serves HTTP); GET /readyz runs component probes —
// store journal writable, engine dispatcher live, admission queue not
// saturated, suites registered — and answers 503 naming every failing
// component; GET /v1/status is the one-document rollup a dashboard polls:
// uptime and build identity, the readiness probes, engine/tenant/backend
// stats including solver depth, job and session counts, and trace-ring
// occupancy. lyserve also shuts down gracefully on SIGINT/SIGTERM:
// in-flight requests get -shutdown-grace to finish while event streams
// flush, then the engine drains and the store journal closes.
//
// # Scenario corpus
//
// internal/corpus turns "a test network" into a declarative, reproducible
// coordinate: a member reference family:seed[:knob=value,...] names one
// scenario — a graph source (ring, tree, fattree, and waxman synthesizers,
// plus a zoo importer reading GraphML or edge-list files in the
// TopologyZoo style), a deterministic role assignment (which nodes are
// edge routers, which external peers attach where), and the WAN peering
// policy template — and corpus.Parse + Member.Build regenerate the same
// network byte-for-byte from the same reference, on any machine. A member
// may also carry a planted bug (bug=no-bogons and seven other wan-peering
// properties): corpus.Plant returns the mutated network together with a
// GroundTruth record naming the mutated session, the property that must
// now fail, and the properties that must keep passing — so a verifier run
// is gradable, not just runnable. On top of that, corpus.Fuzz applies a
// seed-derived trail of property-preserving edits (clause renumbering,
// no-op inserts then removes, router reorderings) for soak runs where the
// suite must keep passing. Surfaces: `lightyear -corpus ref` verifies a
// member and reports planted-bug detection, `-corpus list` and `-list`
// enumerate the families and knobs, `-corpus-emit` prints the member's
// config DSL; a plan's network source may be {"corpus": "ref"} (so
// lyserve verifies corpus members over HTTP); and `lybench -experiment
// corpus` sweeps the ≥30-member default roster with planted bugs,
// asserting 100% detection and writing BENCH_corpus.json with per-family
// solve-time quantiles. Generation and planting count into the
// lightyear_corpus_generated_total / lightyear_corpus_bugs_planted_total
// counters and the lightyear_corpus_solve_seconds histogram on /metrics.
//
// # Property registry
//
// Built-in property suites are registered by name in internal/netgen
// (netgen.Lookup / netgen.SuiteNames) and shared by all entry points:
// fig1-no-transit, fig1-liveness, fullmesh, wan-peering, wan-ip-reuse,
// wan-ip-liveness, and sat-stress. Suites decompose into network builders
// (netgen.Generate over netgen.GeneratorSpec) and scoped property builders
// (netgen.Suite.Problems), the two layers plans compose.
package lightyear
