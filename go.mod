module lightyear

go 1.24
