// Integration matrix: every Figure-1 variant (correct + four planted bugs)
// run through all four pipelines — Lightyear on the programmatic network,
// Lightyear on the parsed DSL round-trip, the monolithic baseline, and the
// BGP simulator — asserting all agree on whether the no-transit property
// holds.
package lightyear_test

import (
	"math/rand"
	"testing"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/minesweeper"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/sim"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestFig1VerdictMatrix(t *testing.T) {
	variants := []struct {
		name string
		opts netgen.Fig1Options
		want bool // does no-transit hold?
	}{
		{"correct", netgen.Fig1Options{}, true},
		{"omit-tag", netgen.Fig1Options{OmitTransitTag: true}, false},
		{"strip-at-r2", netgen.Fig1Options{StripAtR2: true}, false},
		{"skip-export-filter", netgen.Fig1Options{SkipExportFilter: true}, false},
		// forget-strip only breaks liveness, not the no-transit safety.
		{"forget-strip", netgen.Fig1Options{ForgetStripAtR3: true}, true},
	}
	exit := topology.Edge{From: "R2", To: "ISP2"}
	pred := spec.Not(spec.Ghost("FromISP1"))

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			// Pipeline 1: Lightyear on the programmatic network.
			n := netgen.Fig1(v.opts)
			ly := core.VerifySafety(netgen.Fig1NoTransitProblem(n), core.Options{})
			if ly.OK() != v.want {
				t.Errorf("lightyear: got %v, want %v", ly.OK(), v.want)
			}

			// Pipeline 2: Lightyear on the parsed DSL round-trip.
			parsed, err := config.Parse(netgen.Fig1DSL(v.opts))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			lyp := core.VerifySafety(netgen.Fig1NoTransitProblem(parsed), core.Options{})
			if lyp.OK() != v.want {
				t.Errorf("lightyear(parsed): got %v, want %v", lyp.OK(), v.want)
			}

			// Pipeline 3: monolithic baseline.
			ms := minesweeper.Verify(n, core.AtEdge(exit), pred,
				[]core.GhostDef{netgen.FromISP1Ghost(n)}, minesweeper.Options{})
			if ms.Unknown {
				t.Fatal("minesweeper unknown")
			}
			if ms.Holds != v.want {
				t.Errorf("minesweeper: got %v, want %v", ms.Holds, v.want)
			}

			// Pipeline 4: simulation. When the property holds, no trace may
			// violate it; when it fails, some adversarial trace must
			// exhibit the violation.
			violated := false
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 8; trial++ {
				s := sim.New(n, []core.GhostDef{netgen.FromISP1Ghost(n)})
				s.Seed(int64(trial))
				for _, e := range s.ExternalAnnounceEdges() {
					r := routemodel.NewRoute(routemodel.MustPrefix("8.8.0.0/16"))
					r.ASPath = []uint32{uint32(100 + rng.Intn(900))}
					if rng.Intn(2) == 0 {
						r.AddCommunity(netgen.CommTransit)
					}
					s.Announce(e, r)
					c := routemodel.NewRoute(routemodel.MustPrefix("10.42.1.0/24"))
					c.ASPath = []uint32{64512}
					s.Announce(e, c)
				}
				tr := s.Run(20000)
				if tr.CheckSafety(core.AtEdge(exit), pred) != nil {
					violated = true
				}
			}
			if v.want && violated {
				t.Error("simulation violated a verified property")
			}
			if !v.want && !violated {
				t.Error("simulation never exhibited the statically detected bug")
			}
		})
	}
}

// TestLivenessVerdictMatrix mirrors the safety matrix for the Table-3
// liveness property.
func TestLivenessVerdictMatrix(t *testing.T) {
	variants := []struct {
		name string
		opts netgen.Fig1Options
		want bool
	}{
		{"correct", netgen.Fig1Options{}, true},
		{"forget-strip", netgen.Fig1Options{ForgetStripAtR3: true}, false},
		{"skip-export-filter", netgen.Fig1Options{SkipExportFilter: true}, true},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			n := netgen.Fig1(v.opts)
			rep, err := core.VerifyLiveness(netgen.Fig1LivenessProblem(n), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() != v.want {
				t.Errorf("liveness: got %v, want %v\n%s", rep.OK(), v.want, rep.Summary())
			}
		})
	}
}
