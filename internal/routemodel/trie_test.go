package routemodel

import (
	"math/rand"
	"testing"
)

func TestPrefixSetExact(t *testing.T) {
	s := NewPrefixSet(MustPrefix("10.0.0.0/8"), MustPrefix("192.168.0.0/16"))
	if !s.Matches(MustPrefix("10.0.0.0/8")) {
		t.Fatal("exact match failed")
	}
	if s.Matches(MustPrefix("10.1.0.0/16")) {
		t.Fatal("exact set must not match longer prefixes")
	}
	if s.Matches(MustPrefix("11.0.0.0/8")) {
		t.Fatal("unrelated prefix matched")
	}
}

func TestPrefixSetRange(t *testing.T) {
	s := &PrefixSet{}
	s.AddRange(MustPrefix("10.0.0.0/8"), 8, 24)
	if !s.Matches(MustPrefix("10.0.0.0/8")) || !s.Matches(MustPrefix("10.1.0.0/16")) || !s.Matches(MustPrefix("10.1.1.0/24")) {
		t.Fatal("in-range lengths should match")
	}
	if s.Matches(MustPrefix("10.1.1.0/25")) {
		t.Fatal("length 25 out of range")
	}
	if s.Matches(MustPrefix("11.0.0.0/16")) {
		t.Fatal("outside address space")
	}
}

func TestPrefixSetNilAndEmpty(t *testing.T) {
	var s *PrefixSet
	if s.Matches(MustPrefix("10.0.0.0/8")) {
		t.Fatal("nil set matches nothing")
	}
	if !s.Empty() {
		t.Fatal("nil set is empty")
	}
	e := &PrefixSet{}
	if !e.Empty() || e.Matches(MustPrefix("10.0.0.0/8")) {
		t.Fatal("empty set")
	}
}

func TestPrefixSetInvalidRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&PrefixSet{}).AddRange(MustPrefix("10.0.0.0/16"), 8, 24) // ge < len
}

func TestTrieExactAndLongest(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(MustPrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(MustPrefix("0.0.0.0/0"), "default")

	if v, ok := tr.Exact(MustPrefix("10.0.0.0/8")); !ok || v != "eight" {
		t.Fatalf("Exact /8: %v %v", v, ok)
	}
	if _, ok := tr.Exact(MustPrefix("10.0.0.0/9")); ok {
		t.Fatal("Exact /9 should miss")
	}
	addr := MustPrefix("10.1.2.0/24").Addr
	if v, ok := tr.Longest(addr); !ok || v != "sixteen" {
		t.Fatalf("Longest 10.1.2.0: %v %v", v, ok)
	}
	addr2 := MustPrefix("10.200.0.0/16").Addr
	if v, ok := tr.Longest(addr2); !ok || v != "eight" {
		t.Fatalf("Longest 10.200.0.0: %v %v", v, ok)
	}
	addr3 := MustPrefix("99.0.0.0/8").Addr
	if v, ok := tr.Longest(addr3); !ok || v != "default" {
		t.Fatalf("Longest 99.0.0.0: %v %v", v, ok)
	}
}

func TestTrieReplace(t *testing.T) {
	tr := NewTrie[int]()
	p := MustPrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if v, _ := tr.Exact(p); v != 2 {
		t.Fatalf("replace failed: %d", v)
	}
}

func TestTrieWalk(t *testing.T) {
	tr := NewTrie[int]()
	want := map[Prefix]int{
		MustPrefix("10.0.0.0/8"):     1,
		MustPrefix("10.128.0.0/9"):   2,
		MustPrefix("192.168.1.0/24"): 3,
		MustPrefix("0.0.0.0/0"):      4,
	}
	for p, v := range want {
		tr.Insert(p, v)
	}
	got := map[Prefix]int{}
	tr.Walk(func(p Prefix, v int) { got[p] = v })
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d, want %d", len(got), len(want))
	}
	for p, v := range want {
		if got[p] != v {
			t.Fatalf("Walk[%v] = %d, want %d", p, got[p], v)
		}
	}
}

func TestTrieRandomizedAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTrie[int]()
	var stored []Prefix
	for i := 0; i < 300; i++ {
		p := Prefix{Addr: rng.Uint32(), Len: uint8(rng.Intn(33))}.Canonical()
		tr.Insert(p, i)
		stored = append(stored, p)
	}
	for trial := 0; trial < 500; trial++ {
		addr := rng.Uint32()
		// Linear-scan reference: longest stored prefix covering addr.
		bestLen := -1
		for _, p := range stored {
			if p.ContainsAddr(addr) && int(p.Len) > bestLen {
				bestLen = int(p.Len)
			}
		}
		_, ok := tr.Longest(addr)
		if (bestLen >= 0) != ok {
			t.Fatalf("Longest(%d) presence mismatch: trie=%v scan=%v", addr, ok, bestLen >= 0)
		}
	}
}
