// Package routemodel defines the concrete BGP route representation used
// throughout Lightyear: route advertisements with the attributes from §3.1
// of the paper (Prefix, ASPath, NextHop, LocalPref, MED, Communities), plus
// the user-defined ghost attributes of §4.4, and the BGP route preference
// relation referenced by the liveness axioms in Appendix A.
package routemodel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Community is a BGP standard community, a 32-bit tag conventionally written
// high:low (e.g. 100:1).
type Community uint32

// MkCommunity builds a community from its high and low 16-bit halves.
func MkCommunity(high, low uint16) Community {
	return Community(uint32(high)<<16 | uint32(low))
}

// High returns the upper 16 bits of the community.
func (c Community) High() uint16 { return uint16(c >> 16) }

// Low returns the lower 16 bits of the community.
func (c Community) Low() uint16 { return uint16(c) }

// String renders the community in high:low form.
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", c.High(), c.Low())
}

// ParseCommunity parses "high:low" notation.
func ParseCommunity(s string) (Community, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("routemodel: community %q: want high:low", s)
	}
	hi, err := strconv.ParseUint(parts[0], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("routemodel: community %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("routemodel: community %q: %v", s, err)
	}
	return MkCommunity(uint16(hi), uint16(lo)), nil
}

// MustCommunity is ParseCommunity that panics on error, for tests and
// generators with literal communities.
func MustCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Prefix is an IPv4 prefix: a 32-bit address and a length 0..32.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// ParsePrefix parses dotted-quad/len notation, e.g. "10.0.0.0/8".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("routemodel: prefix %q: missing /len", s)
	}
	addrStr, lenStr := s[:slash], s[slash+1:]
	n, err := strconv.ParseUint(lenStr, 10, 8)
	if err != nil || n > 32 {
		return Prefix{}, fmt.Errorf("routemodel: prefix %q: bad length", s)
	}
	parts := strings.Split(addrStr, ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("routemodel: prefix %q: bad address", s)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return Prefix{}, fmt.Errorf("routemodel: prefix %q: bad octet %q", s, p)
		}
		addr = addr<<8 | uint32(b)
	}
	pfx := Prefix{Addr: addr, Len: uint8(n)}
	return pfx.Canonical(), nil
}

// MustPrefix is ParsePrefix that panics on error.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask for the prefix length.
func (p Prefix) Mask() uint32 {
	if p.Len == 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint32(p.Len))
}

// Canonical returns the prefix with host bits zeroed.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & p.Mask(), Len: p.Len}
}

// Contains reports whether q's network is within p's network (p covers q).
func (p Prefix) Contains(q Prefix) bool {
	if q.Len < p.Len {
		return false
	}
	return q.Addr&p.Mask() == p.Addr&p.Mask()
}

// ContainsAddr reports whether the address falls inside the prefix.
func (p Prefix) ContainsAddr(addr uint32) bool {
	return addr&p.Mask() == p.Addr&p.Mask()
}

// String renders dotted-quad/len notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Len)
}

// Route is a BGP route advertisement per §3.1:
// (Prefix, ASPath, NextHop, LocalPref, MED, Comm), extended with the ghost
// attributes of §4.4. Routes are treated as values; use Clone before
// mutating a shared route.
type Route struct {
	Prefix      Prefix
	ASPath      []uint32
	NextHop     uint32
	LocalPref   uint32
	MED         uint32
	Communities map[Community]bool
	Ghost       map[string]bool
}

// NewRoute returns a route for the given prefix with default attribute
// values (LocalPref 100, empty AS path, no communities).
func NewRoute(p Prefix) *Route {
	return &Route{
		Prefix:      p,
		LocalPref:   100,
		Communities: make(map[Community]bool),
		Ghost:       make(map[string]bool),
	}
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	c := &Route{
		Prefix:      r.Prefix,
		NextHop:     r.NextHop,
		LocalPref:   r.LocalPref,
		MED:         r.MED,
		ASPath:      append([]uint32(nil), r.ASPath...),
		Communities: make(map[Community]bool, len(r.Communities)),
		Ghost:       make(map[string]bool, len(r.Ghost)),
	}
	for k, v := range r.Communities {
		if v {
			c.Communities[k] = true
		}
	}
	for k, v := range r.Ghost {
		if v {
			c.Ghost[k] = true
		}
	}
	return c
}

// HasCommunity reports whether the route carries community c.
func (r *Route) HasCommunity(c Community) bool { return r.Communities[c] }

// AddCommunity tags the route with community c.
func (r *Route) AddCommunity(c Community) {
	if r.Communities == nil {
		r.Communities = make(map[Community]bool)
	}
	r.Communities[c] = true
}

// RemoveCommunity removes community c from the route.
func (r *Route) RemoveCommunity(c Community) { delete(r.Communities, c) }

// ClearCommunities removes all communities.
func (r *Route) ClearCommunities() {
	for k := range r.Communities {
		delete(r.Communities, k)
	}
}

// GhostValue returns the value of a ghost attribute (false if unset).
func (r *Route) GhostValue(name string) bool { return r.Ghost[name] }

// SetGhost sets a ghost attribute.
func (r *Route) SetGhost(name string, v bool) {
	if r.Ghost == nil {
		r.Ghost = make(map[string]bool)
	}
	if v {
		r.Ghost[name] = true
	} else {
		delete(r.Ghost, name)
	}
}

// PathContains reports whether the AS path includes the given AS number.
func (r *Route) PathContains(as uint32) bool {
	for _, a := range r.ASPath {
		if a == as {
			return true
		}
	}
	return false
}

// PrependAS pushes an AS number onto the front of the AS path (as done on
// eBGP export).
func (r *Route) PrependAS(as uint32) {
	r.ASPath = append([]uint32{as}, r.ASPath...)
}

// OriginAS returns the last AS on the path (the originator), or 0 when the
// path is empty (locally originated).
func (r *Route) OriginAS() uint32 {
	if len(r.ASPath) == 0 {
		return 0
	}
	return r.ASPath[len(r.ASPath)-1]
}

// String renders the route compactly for counterexample reports.
func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s lp=%d med=%d nh=%d path=%v", r.Prefix, r.LocalPref, r.MED, r.NextHop, r.ASPath)
	if len(r.Communities) > 0 {
		comms := make([]string, 0, len(r.Communities))
		for c := range r.Communities {
			comms = append(comms, c.String())
		}
		sort.Strings(comms)
		fmt.Fprintf(&b, " comm={%s}", strings.Join(comms, ","))
	}
	if len(r.Ghost) > 0 {
		gs := make([]string, 0, len(r.Ghost))
		for g, v := range r.Ghost {
			if v {
				gs = append(gs, g)
			}
		}
		sort.Strings(gs)
		if len(gs) > 0 {
			fmt.Fprintf(&b, " ghost={%s}", strings.Join(gs, ","))
		}
	}
	return b.String()
}

// Equal reports deep equality of two routes including ghost attributes.
func (r *Route) Equal(o *Route) bool {
	if r.Prefix != o.Prefix || r.NextHop != o.NextHop || r.LocalPref != o.LocalPref || r.MED != o.MED {
		return false
	}
	if len(r.ASPath) != len(o.ASPath) {
		return false
	}
	for i := range r.ASPath {
		if r.ASPath[i] != o.ASPath[i] {
			return false
		}
	}
	if countTrue(r.Communities) != countTrue(o.Communities) {
		return false
	}
	for c, v := range r.Communities {
		if v && !o.Communities[c] {
			return false
		}
	}
	if countTrue(r.Ghost) != countTrue(o.Ghost) {
		return false
	}
	for g, v := range r.Ghost {
		if v && !o.Ghost[g] {
			return false
		}
	}
	return true
}

func countTrue[K comparable](m map[K]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// Prefer implements the BGP decision process ordering used by the liveness
// axioms (Appendix A): it reports whether route a is strictly preferred over
// route b for the same prefix. The comparison follows the standard BGP
// steps restricted to the modeled attributes: higher LocalPref, then shorter
// AS path, then lower MED, then lower NextHop as the final deterministic
// tie-break.
func Prefer(a, b *Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	return a.NextHop < b.NextHop
}
