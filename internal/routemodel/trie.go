package routemodel

// PrefixSet is a set of IPv4 prefixes with optional length bounds, used for
// prefix-list style matching: an entry (prefix, ge, le) matches a route
// prefix q when prefix covers q and ge <= q.Len <= le. This is how bogon
// lists and reused-IP sets are represented.
type PrefixSet struct {
	entries []PrefixRange
}

// PrefixRange is one prefix-list entry.
type PrefixRange struct {
	Prefix Prefix
	Ge     uint8 // minimum matched length (>= Prefix.Len)
	Le     uint8 // maximum matched length (<= 32)
}

// NewPrefixSet builds a set from exact prefixes (ge = le = prefix length).
func NewPrefixSet(prefixes ...Prefix) *PrefixSet {
	s := &PrefixSet{}
	for _, p := range prefixes {
		s.AddExact(p)
	}
	return s
}

// AddExact adds a prefix matched exactly.
func (s *PrefixSet) AddExact(p Prefix) {
	s.entries = append(s.entries, PrefixRange{Prefix: p.Canonical(), Ge: p.Len, Le: p.Len})
}

// AddRange adds a prefix matched with a ge..le length window. It panics on
// an invalid window, which indicates a generator or parser bug.
func (s *PrefixSet) AddRange(p Prefix, ge, le uint8) {
	if ge < p.Len || le > 32 || ge > le {
		panic("routemodel: invalid prefix range")
	}
	s.entries = append(s.entries, PrefixRange{Prefix: p.Canonical(), Ge: ge, Le: le})
}

// Entries returns the underlying entries. The slice must not be modified.
func (s *PrefixSet) Entries() []PrefixRange { return s.entries }

// Empty reports whether the set has no entries.
func (s *PrefixSet) Empty() bool { return s == nil || len(s.entries) == 0 }

// Matches reports whether route prefix q matches any entry.
func (s *PrefixSet) Matches(q Prefix) bool {
	if s == nil {
		return false
	}
	for _, e := range s.entries {
		if q.Len >= e.Ge && q.Len <= e.Le && e.Prefix.ContainsAddr(q.Addr) {
			return true
		}
	}
	return false
}

// Trie is a binary (radix) trie over prefixes mapping to values; it provides
// longest-prefix match. The BGP simulator uses it for its RIB and the
// generators use it for address allocation sanity checks.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores a value at the exact prefix, replacing any previous value.
func (t *Trie[V]) Insert(p Prefix, v V) {
	p = p.Canonical()
	n := t.root
	for i := 0; i < int(p.Len); i++ {
		bit := (p.Addr >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	if !n.set {
		t.size++
	}
	n.val = v
	n.set = true
}

// Exact returns the value stored at exactly prefix p.
func (t *Trie[V]) Exact(p Prefix) (V, bool) {
	p = p.Canonical()
	n := t.root
	for i := 0; i < int(p.Len); i++ {
		bit := (p.Addr >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			var zero V
			return zero, false
		}
		n = n.child[bit]
	}
	return n.val, n.set
}

// Longest returns the value of the longest stored prefix covering addr.
func (t *Trie[V]) Longest(addr uint32) (V, bool) {
	n := t.root
	var best V
	found := false
	if n.set {
		best, found = n.val, true
	}
	for i := 0; i < 32; i++ {
		bit := (addr >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			break
		}
		n = n.child[bit]
		if n.set {
			best, found = n.val, true
		}
	}
	return best, found
}

// Walk visits every stored (prefix, value) pair in preorder.
func (t *Trie[V]) Walk(fn func(Prefix, V)) {
	var rec func(n *trieNode[V], addr uint32, depth uint8)
	rec = func(n *trieNode[V], addr uint32, depth uint8) {
		if n.set {
			fn(Prefix{Addr: addr, Len: depth}, n.val)
		}
		if n.child[0] != nil {
			rec(n.child[0], addr, depth+1)
		}
		if n.child[1] != nil {
			rec(n.child[1], addr|1<<(31-uint32(depth)), depth+1)
		}
	}
	rec(t.root, 0, 0)
}
