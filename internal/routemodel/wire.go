package routemodel

import (
	"fmt"
	"sort"
)

// RouteWire is the serializable form of a Route, used when obligations
// travel to remote solver workers. Communities and ghosts are rendered as
// sorted lists so the encoding is deterministic.
type RouteWire struct {
	Prefix      string   `json:"prefix"`
	ASPath      []uint32 `json:"as_path,omitempty"`
	NextHop     uint32   `json:"next_hop,omitempty"`
	LocalPref   uint32   `json:"local_pref,omitempty"`
	MED         uint32   `json:"med,omitempty"`
	Communities []uint32 `json:"communities,omitempty"`
	// Ghosts lists ghost attributes that are true on the route; false
	// entries are indistinguishable from absent ones (GhostValue semantics).
	Ghosts []string `json:"ghosts,omitempty"`
}

// EncodeRoute converts a route to wire form; nil encodes to nil.
func EncodeRoute(r *Route) *RouteWire {
	if r == nil {
		return nil
	}
	w := &RouteWire{
		Prefix:    r.Prefix.String(),
		ASPath:    append([]uint32(nil), r.ASPath...),
		NextHop:   r.NextHop,
		LocalPref: r.LocalPref,
		MED:       r.MED,
	}
	for c, on := range r.Communities {
		if on {
			w.Communities = append(w.Communities, uint32(c))
		}
	}
	sort.Slice(w.Communities, func(i, j int) bool { return w.Communities[i] < w.Communities[j] })
	for g, on := range r.Ghost {
		if on {
			w.Ghosts = append(w.Ghosts, g)
		}
	}
	sort.Strings(w.Ghosts)
	return w
}

// Route reconstructs the route a wire form describes; nil decodes to nil.
func (w *RouteWire) Route() (*Route, error) {
	if w == nil {
		return nil, nil
	}
	p, err := ParsePrefix(w.Prefix)
	if err != nil {
		return nil, fmt.Errorf("routemodel: route wire: %w", err)
	}
	r := NewRoute(p)
	r.ASPath = append([]uint32(nil), w.ASPath...)
	r.NextHop = w.NextHop
	r.LocalPref = w.LocalPref
	r.MED = w.MED
	for _, c := range w.Communities {
		r.AddCommunity(Community(c))
	}
	for _, g := range w.Ghosts {
		r.SetGhost(g, true)
	}
	return r, nil
}
