package routemodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommunityRoundTrip(t *testing.T) {
	c := MkCommunity(100, 1)
	if c.High() != 100 || c.Low() != 1 {
		t.Fatalf("halves: %d:%d", c.High(), c.Low())
	}
	if c.String() != "100:1" {
		t.Fatalf("String = %q", c.String())
	}
	p, err := ParseCommunity("100:1")
	if err != nil || p != c {
		t.Fatalf("ParseCommunity: %v %v", p, err)
	}
}

func TestParseCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "100", "100:1:2", "x:1", "1:x", "70000:1", "1:70000"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q): expected error", s)
		}
	}
}

func TestQuickCommunityRoundTrip(t *testing.T) {
	f := func(hi, lo uint16) bool {
		c := MkCommunity(hi, lo)
		p, err := ParseCommunity(c.String())
		return err == nil && p == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != 10<<24 || p.Len != 8 {
		t.Fatalf("got %v", p)
	}
	if p.String() != "10.0.0.0/8" {
		t.Fatalf("String = %q", p.String())
	}
	// Host bits must canonicalize away.
	p2, err := ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatalf("canonicalization failed: %v vs %v", p2, p)
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"", "10.0.0.0", "10.0.0/8", "10.0.0.0.0/8", "10.0.0.0/33", "300.0.0.0/8", "a.b.c.d/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q): expected error", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p8 := MustPrefix("10.0.0.0/8")
	p16 := MustPrefix("10.1.0.0/16")
	other := MustPrefix("11.0.0.0/8")
	if !p8.Contains(p16) {
		t.Fatal("10/8 should contain 10.1/16")
	}
	if p16.Contains(p8) {
		t.Fatal("10.1/16 should not contain 10/8")
	}
	if p8.Contains(other) {
		t.Fatal("10/8 should not contain 11/8")
	}
	if !p8.Contains(p8) {
		t.Fatal("prefix contains itself")
	}
	all := MustPrefix("0.0.0.0/0")
	if !all.Contains(p8) || !all.Contains(other) {
		t.Fatal("default route contains everything")
	}
}

func TestPrefixMask(t *testing.T) {
	if MustPrefix("0.0.0.0/0").Mask() != 0 {
		t.Fatal("len 0 mask")
	}
	if MustPrefix("1.2.3.4/32").Mask() != ^uint32(0) {
		t.Fatal("len 32 mask")
	}
	if MustPrefix("10.0.0.0/8").Mask() != 0xFF000000 {
		t.Fatal("len 8 mask")
	}
}

func TestRouteCloneIndependence(t *testing.T) {
	r := NewRoute(MustPrefix("10.0.0.0/24"))
	r.AddCommunity(MustCommunity("100:1"))
	r.SetGhost("FromISP1", true)
	r.ASPath = []uint32{65001, 65002}
	c := r.Clone()
	c.AddCommunity(MustCommunity("200:2"))
	c.SetGhost("Other", true)
	c.ASPath[0] = 1
	c.LocalPref = 500
	if r.HasCommunity(MustCommunity("200:2")) {
		t.Fatal("clone shares community map")
	}
	if r.GhostValue("Other") {
		t.Fatal("clone shares ghost map")
	}
	if r.ASPath[0] != 65001 {
		t.Fatal("clone shares AS path")
	}
	if r.LocalPref != 100 {
		t.Fatal("clone shares scalar state")
	}
	if !c.HasCommunity(MustCommunity("100:1")) || !c.GhostValue("FromISP1") {
		t.Fatal("clone lost inherited attributes")
	}
}

func TestCommunityOps(t *testing.T) {
	r := NewRoute(MustPrefix("10.0.0.0/24"))
	c1 := MustCommunity("1:1")
	c2 := MustCommunity("2:2")
	r.AddCommunity(c1)
	r.AddCommunity(c2)
	if !r.HasCommunity(c1) || !r.HasCommunity(c2) {
		t.Fatal("add failed")
	}
	r.RemoveCommunity(c1)
	if r.HasCommunity(c1) || !r.HasCommunity(c2) {
		t.Fatal("remove failed")
	}
	r.ClearCommunities()
	if r.HasCommunity(c2) {
		t.Fatal("clear failed")
	}
}

func TestPathOps(t *testing.T) {
	r := NewRoute(MustPrefix("10.0.0.0/24"))
	if r.OriginAS() != 0 {
		t.Fatal("empty path origin should be 0")
	}
	r.PrependAS(65002)
	r.PrependAS(65001)
	if !r.PathContains(65001) || !r.PathContains(65002) || r.PathContains(65003) {
		t.Fatal("PathContains wrong")
	}
	if r.OriginAS() != 65002 {
		t.Fatalf("OriginAS = %d", r.OriginAS())
	}
	if len(r.ASPath) != 2 || r.ASPath[0] != 65001 {
		t.Fatalf("path = %v", r.ASPath)
	}
}

func TestRouteEqual(t *testing.T) {
	a := NewRoute(MustPrefix("10.0.0.0/24"))
	b := NewRoute(MustPrefix("10.0.0.0/24"))
	if !a.Equal(b) {
		t.Fatal("identical routes should be equal")
	}
	b.AddCommunity(MustCommunity("1:1"))
	if a.Equal(b) {
		t.Fatal("community difference not detected")
	}
	b.RemoveCommunity(MustCommunity("1:1"))
	if !a.Equal(b) {
		t.Fatal("removal should restore equality")
	}
	b.SetGhost("g", true)
	if a.Equal(b) {
		t.Fatal("ghost difference not detected")
	}
	b.SetGhost("g", false)
	b.ASPath = []uint32{1}
	if a.Equal(b) {
		t.Fatal("path difference not detected")
	}
}

func TestPrefer(t *testing.T) {
	base := func() *Route {
		r := NewRoute(MustPrefix("10.0.0.0/24"))
		r.LocalPref = 100
		r.ASPath = []uint32{1, 2}
		r.MED = 10
		r.NextHop = 5
		return r
	}
	hiLP := base()
	hiLP.LocalPref = 200
	if !Prefer(hiLP, base()) || Prefer(base(), hiLP) {
		t.Fatal("higher local-pref must win")
	}
	shortPath := base()
	shortPath.ASPath = []uint32{1}
	if !Prefer(shortPath, base()) {
		t.Fatal("shorter AS path must win")
	}
	lowMED := base()
	lowMED.MED = 1
	if !Prefer(lowMED, base()) {
		t.Fatal("lower MED must win")
	}
	lowNH := base()
	lowNH.NextHop = 1
	if !Prefer(lowNH, base()) {
		t.Fatal("lower next-hop must win tie-break")
	}
	if Prefer(base(), base()) {
		t.Fatal("Prefer must be irreflexive")
	}
}

// Prefer must be a strict total order on distinct (lp, pathlen, med, nh)
// tuples: asymmetric and total.
func TestQuickPreferTotalOrder(t *testing.T) {
	gen := func(rng *rand.Rand) *Route {
		r := NewRoute(MustPrefix("10.0.0.0/24"))
		r.LocalPref = uint32(rng.Intn(3))
		r.ASPath = make([]uint32, rng.Intn(3))
		r.MED = uint32(rng.Intn(3))
		r.NextHop = uint32(rng.Intn(3))
		return r
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := gen(rng), gen(rng)
		pa, pb := Prefer(a, b), Prefer(b, a)
		if pa && pb {
			t.Fatalf("Prefer not asymmetric: %v / %v", a, b)
		}
		same := a.LocalPref == b.LocalPref && len(a.ASPath) == len(b.ASPath) && a.MED == b.MED && a.NextHop == b.NextHop
		if !same && !pa && !pb {
			t.Fatalf("Prefer not total on distinct keys: %v / %v", a, b)
		}
		if same && (pa || pb) {
			t.Fatalf("Prefer must tie on identical keys: %v / %v", a, b)
		}
	}
}

func TestPreferTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func() *Route {
		r := NewRoute(MustPrefix("10.0.0.0/24"))
		r.LocalPref = uint32(rng.Intn(3))
		r.ASPath = make([]uint32, rng.Intn(3))
		r.MED = uint32(rng.Intn(3))
		r.NextHop = uint32(rng.Intn(3))
		return r
	}
	for i := 0; i < 3000; i++ {
		a, b, c := gen(), gen(), gen()
		if Prefer(a, b) && Prefer(b, c) && !Prefer(a, c) {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestRouteString(t *testing.T) {
	r := NewRoute(MustPrefix("10.0.0.0/24"))
	r.AddCommunity(MustCommunity("100:1"))
	r.SetGhost("FromISP1", true)
	s := r.String()
	if s == "" {
		t.Fatal("empty route string")
	}
}
