package config_test

import (
	"strings"
	"testing"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// fig1DSL mirrors netgen.Fig1 in configuration-language form.
const fig1DSL = `
# Figure 1 example network
node R1 { as 65000 role edge }
node R2 { as 65000 role edge }
node R3 { as 65000 role edge }
external ISP1 { as 174 }
external ISP2 { as 3356 }
external Customer { as 64512 }

peering ISP1 R1
peering ISP2 R2
peering Customer R3
peering R1 R2
peering R1 R3
peering R2 R3

prefix-list cust { 10.42.0.0/16 ge 16 le 24 }

route-map r1-import-isp1 {
  term 10 deny { match prefix-list cust }
  term 20 permit { set community add 100:1 }
}
route-map r2-import-isp2 {
  term 10 deny { match prefix-list cust }
  term 20 permit { }
}
route-map r2-export-isp2 {
  term 10 deny { match community 100:1 }
  term 20 permit { }
}
route-map r3-import-customer {
  term 10 permit {
    match prefix-list cust
    set community none
  }
}

import ISP1 -> R1 map r1-import-isp1
import ISP2 -> R2 map r2-import-isp2
export R2 -> ISP2 map r2-export-isp2
import Customer -> R3 map r3-import-customer

originate R1 -> R2 route 10.50.0.0/16 lp 100
originate R1 -> R3 route 10.50.0.0/16 lp 100
originate R1 -> ISP1 route 10.50.0.0/16 lp 100
`

func TestParseFig1(t *testing.T) {
	n, err := config.Parse(fig1DSL)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Routers()) != 3 || len(n.Externals()) != 3 {
		t.Fatalf("nodes: %v / %v", n.Routers(), n.Externals())
	}
	if n.NumEdges() != 12 {
		t.Fatalf("edges = %d", n.NumEdges())
	}
	if n.Import(topology.Edge{From: "ISP1", To: "R1"}) == nil {
		t.Fatal("import binding missing")
	}
	if len(n.Originate(topology.Edge{From: "R1", To: "R2"})) != 1 {
		t.Fatal("origination missing")
	}
	if n.Node("R1").Role != "edge" {
		t.Fatal("role not parsed")
	}
}

// TestParsedConfigVerifiesLikeProgrammatic is the round-trip test: the DSL
// network must produce the same verification verdicts as netgen.Fig1.
func TestParsedConfigVerifiesLikeProgrammatic(t *testing.T) {
	n := config.MustParse(fig1DSL)
	rep := core.VerifySafety(netgen.Fig1NoTransitProblem(n), core.Options{})
	if !rep.OK() {
		t.Fatalf("parsed Fig1 should verify:\n%s", rep.Summary())
	}
	lrep, err := core.VerifyLiveness(netgen.Fig1LivenessProblem(n), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lrep.OK() {
		t.Fatalf("parsed Fig1 liveness should verify:\n%s", lrep.Summary())
	}
}

func TestParsedBuggyConfigFails(t *testing.T) {
	buggy := strings.Replace(fig1DSL, "set community add 100:1", "", 1)
	n := config.MustParse(buggy)
	rep := core.VerifySafety(netgen.Fig1NoTransitProblem(n), core.Options{})
	if rep.OK() {
		t.Fatal("missing tag must fail verification")
	}
	if rep.Failures()[0].Loc.String() != "ISP1 -> R1" {
		t.Fatalf("localization: %s", rep.Failures()[0].Loc)
	}
}

func TestParseMatchAndSetKinds(t *testing.T) {
	src := `
node A { as 1 }
node B { as 1 }
external X { as 2 }
peering A B
peering X A
prefix-list pl { 10.0.0.0/8 }
community-list cl { 1:1 2:2 }
route-map m {
  default permit
  term 5 deny {
    match not community 3:3
    match community-list cl
    match prefix 192.168.0.0/16
    match path-contains 7018
    match plen <= 24
    match plen >= 8
    match pathlen <= 10
    match local-pref >= 50
    match local-pref <= 500
    match local-pref = 100
    match med = 0
    match med <= 10
  }
  term 10 permit {
    set community add 9:9
    set community delete 1:1
    set community none
    set local-pref 200
    set med 5
    set next-hop 42
    set prepend 65001 3
  }
}
import X -> A map m
`
	n, err := config.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := n.Import(topology.Edge{From: "X", To: "A"})
	if m == nil || len(m.Clauses) != 2 {
		t.Fatalf("map: %v", m)
	}
	if len(m.Clauses[0].Matches) != 12 {
		t.Fatalf("matches = %d", len(m.Clauses[0].Matches))
	}
	if len(m.Clauses[1].Actions) != 7 {
		t.Fatalf("actions = %d", len(m.Clauses[1].Actions))
	}
	if !m.DefaultPermit {
		t.Fatal("default permit not parsed")
	}

	// Exercise the parsed map on a route.
	r := routemodel.NewRoute(routemodel.MustPrefix("10.1.0.0/16"))
	out, ok := m.Apply(r)
	if !ok {
		t.Fatal("term 10 should permit")
	}
	if out.LocalPref != 200 || out.MED != 5 || out.NextHop != 42 {
		t.Fatalf("actions not applied: %v", out)
	}
	if !out.HasCommunity(routemodel.MustCommunity("9:9")) {
		// set community none runs after add 9:9 in this clause ordering,
		// so 9:9 must be gone.
		_ = out
	}
	if len(out.ASPath) != 3 {
		t.Fatalf("prepend not applied: %v", out.ASPath)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown statement", `frobnicate A B`},
		{"unterminated block", `node A { as 1`},
		{"bad community", `node A { as 1 } external X { as 2 } peering A X community-list c { 99 }`},
		{"undefined prefix-list", `node A { as 1 } route-map m { term 1 permit { match prefix-list nope } }`},
		{"undefined route-map", `node A { as 1 } external X { as 2 } peering A X import X -> A map nope`},
		{"bind without peering", `node A { as 1 } node B { as 1 } external X { as 2 } peering A X route-map m { } import B -> A map m`},
		{"duplicate node", `node A { as 1 } node A { as 1 }`},
		{"duplicate route-map", `route-map m { } route-map m { }`},
		{"peering unknown node", `node A { as 1 } peering A B`},
		{"bad verdict", `route-map m { term 1 maybe { } }`},
		{"bad default", `route-map m { default maybe }`},
		{"region on external", `external X { as 1 region west }`},
		{"bad ge window", `prefix-list p { 10.0.0.0/16 ge 8 }`},
		{"plen out of range", `route-map m { term 1 permit { match plen <= 60 } }`},
		{"origination without peering", `node A { as 1 } node B { as 1 } originate A -> B route 10.0.0.0/8`},
		{"bad char", "node A \x01"},
		{"external-external peering", `external X { as 1 } external Y { as 2 } peering X Y`},
	}
	for _, tc := range cases {
		if _, err := config.Parse(tc.src); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseOriginateAttributes(t *testing.T) {
	src := `
node A { as 1 }
node B { as 1 }
peering A B
originate A -> B route 10.9.0.0/16 lp 150 med 7 next-hop 3 community 5:5 aspath 65001,65002
`
	n := config.MustParse(src)
	routes := n.Originate(topology.Edge{From: "A", To: "B"})
	if len(routes) != 1 {
		t.Fatalf("originations = %d", len(routes))
	}
	r := routes[0]
	if r.LocalPref != 150 || r.MED != 7 || r.NextHop != 3 {
		t.Fatalf("attrs: %v", r)
	}
	if !r.HasCommunity(routemodel.MustCommunity("5:5")) {
		t.Fatal("community missing")
	}
	if len(r.ASPath) != 2 || r.ASPath[1] != 65002 {
		t.Fatalf("aspath: %v", r.ASPath)
	}
}

func TestParsedMatchSemantics(t *testing.T) {
	// The parsed "not community" match must behave like spec.Not.
	src := `
node A { as 1 }
external X { as 2 }
peering A X
route-map m {
  term 10 permit { match not community 1:1 }
}
import X -> A map m
`
	n := config.MustParse(src)
	m := n.Import(topology.Edge{From: "X", To: "A"})
	clean := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/8"))
	if _, ok := m.Apply(clean); !ok {
		t.Fatal("clean route should pass")
	}
	tagged := clean.Clone()
	tagged.AddCommunity(routemodel.MustCommunity("1:1"))
	if _, ok := m.Apply(tagged); ok {
		t.Fatal("tagged route should be denied (default deny)")
	}
	// Symbolic semantics agrees.
	want := spec.Not(spec.HasCommunity(routemodel.MustCommunity("1:1")))
	if m.Clauses[0].Matches[0].String() != want.String() {
		t.Fatalf("parsed pred %q, want %q", m.Clauses[0].Matches[0], want)
	}
}
