// Package config implements Lightyear's configuration language: a compact,
// vendor-style DSL describing the BGP topology (routers, external neighbors,
// peering sessions) and policy (prefix lists, community lists, route maps,
// per-session import/export bindings, originations). Parse turns a
// configuration text into a topology.Network ready for verification.
//
// The grammar (EBNF, '#' starts a line comment):
//
//	config       = { stmt } .
//	stmt         = node | external | peering | prefixList | commList |
//	               routeMap | importBind | exportBind | originate .
//	node         = "node" atom "{" { "as" num | "role" atom | "region" atom } "}" .
//	external     = "external" atom "{" { "as" num | "role" atom } "}" .
//	peering      = "peering" atom atom .
//	prefixList   = "prefix-list" atom "{" { prefix [ "ge" num ] [ "le" num ] } "}" .
//	commList     = "community-list" atom "{" { community } "}" .
//	routeMap     = "route-map" atom "{" [ "default" ("permit"|"deny") ]
//	               { "term" num ("permit"|"deny") "{" { match | set } "}" } "}" .
//	match        = "match" ( "prefix-list" atom | "prefix" prefix |
//	               "community" community | "community-list" atom |
//	               "path-contains" num | "plen" ("<="|">=") num |
//	               "pathlen" "<=" num | "local-pref" ("="|"<="|">=") num |
//	               "med" ("="|"<=") num | "not" match' ) .
//	set          = "set" ( "community" ("add"|"delete") community |
//	               "community" "none" | "local-pref" num | "med" num |
//	               "next-hop" num | "prepend" num num ) .
//	importBind   = "import" atom "->" atom "map" atom .
//	exportBind   = "export" atom "->" atom "map" atom .
//	originate    = "originate" atom "->" atom "route" prefix
//	               { "lp" num | "med" num | "next-hop" num |
//	                 "community" community | "aspath" num { "," num } } .
package config

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokAtom tokKind = iota // identifiers, numbers, prefixes, communities
	tokLBrace
	tokRBrace
	tokArrow
	tokComma
	tokOp // <=, >=, =
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokLBrace:
		return "{"
	case tokRBrace:
		return "}"
	case tokArrow:
		return "->"
	case tokComma:
		return ","
	case tokEOF:
		return "<eof>"
	default:
		return t.text
	}
}

// lex tokenizes the input. Atoms are maximal runs of letters, digits, and
// the punctuation used inside names, prefixes, and communities (. / : _ -).
// A "-" beginning "->" is the arrow token.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case c == '-' && i+1 < n && src[i+1] == '>':
			toks = append(toks, token{tokArrow, "->", line})
			i += 2
		case c == '<' && i+1 < n && src[i+1] == '=':
			toks = append(toks, token{tokOp, "<=", line})
			i += 2
		case c == '>' && i+1 < n && src[i+1] == '=':
			toks = append(toks, token{tokOp, ">=", line})
			i += 2
		case c == '=':
			toks = append(toks, token{tokOp, "=", line})
			i++
		case isAtomChar(rune(c)):
			j := i
			for j < n && isAtomChar(rune(src[j])) {
				// Stop before "->" so "a->b" lexes as three tokens.
				if src[j] == '-' && j+1 < n && src[j+1] == '>' {
					break
				}
				j++
			}
			toks = append(toks, token{tokAtom, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("config: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isAtomChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		strings.ContainsRune("./:_-", r)
}
