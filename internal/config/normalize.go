package config

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// Normalize returns the canonical form of a configuration source: the lexed
// token stream re-rendered with single spaces. Comments, blank lines,
// indentation, and any other whitespace layout vanish, so two sources that
// differ only cosmetically normalize identically — the property delta
// sessions rely on to treat a comment-only edit as no change at all,
// without parsing, diffing, or regenerating a single check. A source the
// lexer rejects is returned unchanged: normalization must never hide a
// syntax error behind a stale canonical form, and the parse that follows
// will report it.
func Normalize(src string) string {
	toks, err := lex(src)
	if err != nil {
		return src
	}
	var b strings.Builder
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.text)
	}
	return b.String()
}

// SourceFingerprint is the hex SHA-256 digest of Normalize(src): a cheap
// source-level identity that matches across cosmetic edits. It complements
// topology.Fingerprint — equal source fingerprints imply the same parsed
// network, but not vice versa (the same network can be written many ways) —
// and lets callers short-circuit before paying a parse.
func SourceFingerprint(src string) string {
	sum := sha256.Sum256([]byte(Normalize(src)))
	return hex.EncodeToString(sum[:])
}
