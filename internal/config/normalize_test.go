package config_test

import (
	"strings"
	"testing"

	"lightyear/internal/config"
)

// TestNormalizeCosmeticInvariance: comments, blank lines, and whitespace
// layout do not survive normalization, so a cosmetic-only edit keeps the
// source fingerprint — the property delta sessions use to treat such edits
// as no change at all.
func TestNormalizeCosmeticInvariance(t *testing.T) {
	edited := "# audit header\n\n" + strings.ReplaceAll(fig1DSL, "route-map r1-import-isp1 {", "route-map    r1-import-isp1 {  # reviewed") + "\n\n# trailing note\n"
	if config.Normalize(edited) != config.Normalize(fig1DSL) {
		t.Fatalf("cosmetic edit changed normalized form:\n%q\nvs\n%q",
			config.Normalize(edited), config.Normalize(fig1DSL))
	}
	if config.SourceFingerprint(edited) != config.SourceFingerprint(fig1DSL) {
		t.Fatal("cosmetic edit changed the source fingerprint")
	}
	if strings.Contains(config.Normalize(edited), "#") {
		t.Fatal("normalized form retains a comment")
	}
}

// TestNormalizeSemanticSensitivity: an edit that changes any token changes
// the fingerprint — normalization must never conflate distinct configs.
func TestNormalizeSemanticSensitivity(t *testing.T) {
	for _, edit := range []struct{ old, new string }{
		{"lp 100", "lp 200"},
		{"set community add 100:1", "set community add 100:2"},
		{"term 10 deny", "term 10 permit"},
	} {
		changed := strings.Replace(fig1DSL, edit.old, edit.new, 1)
		if changed == fig1DSL {
			t.Fatalf("edit %q not applied", edit.old)
		}
		if config.SourceFingerprint(changed) == config.SourceFingerprint(fig1DSL) {
			t.Fatalf("semantic edit %q -> %q kept the fingerprint", edit.old, edit.new)
		}
	}
}

// TestNormalizeRejectedSourcePassesThrough: a source the lexer rejects is
// returned verbatim — normalization must not hide a syntax error behind a
// stale canonical form.
func TestNormalizeRejectedSourcePassesThrough(t *testing.T) {
	bad := "node R1 { as 65000 } @@@"
	if config.Normalize(bad) != bad {
		t.Fatalf("rejected source was rewritten: %q", config.Normalize(bad))
	}
	if config.SourceFingerprint(bad) == config.SourceFingerprint("node R1 { as 65000 }") {
		t.Fatal("broken source fingerprints like its valid prefix")
	}
}
