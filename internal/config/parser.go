package config

import (
	"fmt"
	"strconv"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Parse reads a configuration text and builds the network it describes.
func Parse(src string) (*topology.Network, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.build()
}

// MustParse is Parse panicking on error, for tests and generators.
func MustParse(src string) *topology.Network {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type nodeDecl struct {
	id       string
	as       uint32
	role     string
	region   string
	external bool
}

type bindDecl struct {
	from, to, mapName string
	line              int
}

type originateDecl struct {
	from, to string
	route    *routemodel.Route
	line     int
}

type parser struct {
	toks []token
	pos  int

	nodes      []nodeDecl
	peerings   [][2]string
	prefixSets map[string]*routemodel.PrefixSet
	commLists  map[string][]routemodel.Community
	routeMaps  map[string]*policy.RouteMap
	imports    []bindDecl
	exports    []bindDecl
	originates []originateDecl
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("config: line %d: "+format, append([]any{p.cur().line}, args...)...)
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %q", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) atom(what string) (string, error) {
	t, err := p.expect(tokAtom, what)
	return t.text, err
}

func (p *parser) keyword(kw string) error {
	t, err := p.expect(tokAtom, fmt.Sprintf("%q", kw))
	if err != nil {
		return err
	}
	if t.text != kw {
		return fmt.Errorf("config: line %d: expected %q, got %q", t.line, kw, t.text)
	}
	return nil
}

func (p *parser) num(what string) (uint64, error) {
	t, err := p.expect(tokAtom, what)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(t.text, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("config: line %d: %s: bad number %q", t.line, what, t.text)
	}
	return v, nil
}

func (p *parser) parse() error {
	p.prefixSets = make(map[string]*routemodel.PrefixSet)
	p.commLists = make(map[string][]routemodel.Community)
	p.routeMaps = make(map[string]*policy.RouteMap)
	for p.cur().kind != tokEOF {
		kw, err := p.atom("statement keyword")
		if err != nil {
			return err
		}
		switch kw {
		case "node":
			if err := p.parseNode(false); err != nil {
				return err
			}
		case "external":
			if err := p.parseNode(true); err != nil {
				return err
			}
		case "peering":
			a, err := p.atom("peering endpoint")
			if err != nil {
				return err
			}
			b, err := p.atom("peering endpoint")
			if err != nil {
				return err
			}
			p.peerings = append(p.peerings, [2]string{a, b})
		case "prefix-list":
			if err := p.parsePrefixList(); err != nil {
				return err
			}
		case "community-list":
			if err := p.parseCommList(); err != nil {
				return err
			}
		case "route-map":
			if err := p.parseRouteMap(); err != nil {
				return err
			}
		case "import", "export":
			b, err := p.parseBind()
			if err != nil {
				return err
			}
			if kw == "import" {
				p.imports = append(p.imports, b)
			} else {
				p.exports = append(p.exports, b)
			}
		case "originate":
			if err := p.parseOriginate(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("config: line %d: unknown statement %q", p.toks[p.pos-1].line, kw)
		}
	}
	return nil
}

func (p *parser) parseNode(external bool) error {
	id, err := p.atom("node name")
	if err != nil {
		return err
	}
	d := nodeDecl{id: id, external: external}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	for p.cur().kind != tokRBrace {
		kw, err := p.atom("node attribute")
		if err != nil {
			return err
		}
		switch kw {
		case "as":
			v, err := p.num("AS number")
			if err != nil {
				return err
			}
			d.as = uint32(v)
		case "role":
			if d.role, err = p.atom("role"); err != nil {
				return err
			}
		case "region":
			if external {
				return p.errf("external nodes have no region")
			}
			if d.region, err = p.atom("region"); err != nil {
				return err
			}
		default:
			return p.errf("unknown node attribute %q", kw)
		}
	}
	p.next() // }
	p.nodes = append(p.nodes, d)
	return nil
}

func (p *parser) parsePrefixList() error {
	name, err := p.atom("prefix-list name")
	if err != nil {
		return err
	}
	if _, dup := p.prefixSets[name]; dup {
		return p.errf("duplicate prefix-list %q", name)
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	set := &routemodel.PrefixSet{}
	for p.cur().kind != tokRBrace {
		t, err := p.atom("prefix")
		if err != nil {
			return err
		}
		pfx, err := routemodel.ParsePrefix(t)
		if err != nil {
			return p.errf("%v", err)
		}
		ge, le := pfx.Len, pfx.Len
		for p.cur().kind == tokAtom && (p.cur().text == "ge" || p.cur().text == "le") {
			kw := p.next().text
			v, err := p.num(kw + " bound")
			if err != nil {
				return err
			}
			if v > 32 {
				return p.errf("%s bound %d out of range", kw, v)
			}
			if kw == "ge" {
				ge = uint8(v)
			} else {
				le = uint8(v)
			}
		}
		if ge < pfx.Len || le > 32 || ge > le {
			return p.errf("invalid ge/le window %d..%d for %s", ge, le, pfx)
		}
		set.AddRange(pfx, ge, le)
	}
	p.next()
	p.prefixSets[name] = set
	return nil
}

func (p *parser) parseCommList() error {
	name, err := p.atom("community-list name")
	if err != nil {
		return err
	}
	if _, dup := p.commLists[name]; dup {
		return p.errf("duplicate community-list %q", name)
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	var cs []routemodel.Community
	for p.cur().kind != tokRBrace {
		t, err := p.atom("community")
		if err != nil {
			return err
		}
		c, err := routemodel.ParseCommunity(t)
		if err != nil {
			return p.errf("%v", err)
		}
		cs = append(cs, c)
	}
	p.next()
	p.commLists[name] = cs
	return nil
}

func (p *parser) parseRouteMap() error {
	name, err := p.atom("route-map name")
	if err != nil {
		return err
	}
	if _, dup := p.routeMaps[name]; dup {
		return p.errf("duplicate route-map %q", name)
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return err
	}
	m := &policy.RouteMap{Name: name}
	for p.cur().kind != tokRBrace {
		kw, err := p.atom("route-map entry")
		if err != nil {
			return err
		}
		switch kw {
		case "default":
			v, err := p.atom("default verdict")
			if err != nil {
				return err
			}
			switch v {
			case "permit":
				m.DefaultPermit = true
			case "deny":
				m.DefaultPermit = false
			default:
				return p.errf("default verdict must be permit or deny, got %q", v)
			}
		case "term":
			cl, err := p.parseTerm()
			if err != nil {
				return err
			}
			m.Clauses = append(m.Clauses, cl)
		default:
			return p.errf("unknown route-map entry %q", kw)
		}
	}
	p.next()
	p.routeMaps[name] = m
	return nil
}

func (p *parser) parseTerm() (policy.Clause, error) {
	var cl policy.Clause
	seq, err := p.num("term sequence")
	if err != nil {
		return cl, err
	}
	cl.Seq = int(seq)
	verdict, err := p.atom("term verdict")
	if err != nil {
		return cl, err
	}
	switch verdict {
	case "permit":
		cl.Permit = true
	case "deny":
		cl.Permit = false
	default:
		return cl, p.errf("term verdict must be permit or deny, got %q", verdict)
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return cl, err
	}
	for p.cur().kind != tokRBrace {
		kw, err := p.atom("match or set")
		if err != nil {
			return cl, err
		}
		switch kw {
		case "match":
			pred, err := p.parseMatch()
			if err != nil {
				return cl, err
			}
			cl.Matches = append(cl.Matches, pred)
		case "set":
			act, err := p.parseSet()
			if err != nil {
				return cl, err
			}
			cl.Actions = append(cl.Actions, act)
		default:
			return cl, p.errf("expected match or set, got %q", kw)
		}
	}
	p.next()
	return cl, nil
}

func (p *parser) parseMatch() (spec.Pred, error) {
	kw, err := p.atom("match kind")
	if err != nil {
		return nil, err
	}
	if kw == "not" {
		inner, err := p.parseMatch()
		if err != nil {
			return nil, err
		}
		return spec.Not(inner), nil
	}
	switch kw {
	case "prefix-list":
		name, err := p.atom("prefix-list name")
		if err != nil {
			return nil, err
		}
		set, ok := p.prefixSets[name]
		if !ok {
			return nil, p.errf("undefined prefix-list %q", name)
		}
		return spec.PrefixIn(set), nil
	case "prefix":
		t, err := p.atom("prefix")
		if err != nil {
			return nil, err
		}
		pfx, err := routemodel.ParsePrefix(t)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return spec.PrefixEquals(pfx), nil
	case "community":
		t, err := p.atom("community")
		if err != nil {
			return nil, err
		}
		c, err := routemodel.ParseCommunity(t)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return spec.HasCommunity(c), nil
	case "community-list":
		name, err := p.atom("community-list name")
		if err != nil {
			return nil, err
		}
		cs, ok := p.commLists[name]
		if !ok {
			return nil, p.errf("undefined community-list %q", name)
		}
		return spec.HasAnyCommunity(cs...), nil
	case "path-contains":
		v, err := p.num("AS number")
		if err != nil {
			return nil, err
		}
		return spec.PathContains(uint32(v)), nil
	case "plen":
		op, err := p.expect(tokOp, "<= or >=")
		if err != nil {
			return nil, err
		}
		v, err := p.num("prefix length")
		if err != nil {
			return nil, err
		}
		if v > 32 {
			return nil, p.errf("prefix length %d out of range", v)
		}
		switch op.text {
		case "<=":
			return spec.PrefixLenAtMost(uint8(v)), nil
		case ">=":
			return spec.PrefixLenAtLeast(uint8(v)), nil
		}
		return nil, p.errf("plen comparison must be <= or >=")
	case "pathlen":
		op, err := p.expect(tokOp, "<=")
		if err != nil {
			return nil, err
		}
		if op.text != "<=" {
			return nil, p.errf("pathlen comparison must be <=")
		}
		v, err := p.num("path length")
		if err != nil {
			return nil, err
		}
		return spec.PathLenAtMost(int(v)), nil
	case "local-pref":
		op, err := p.expect(tokOp, "comparison")
		if err != nil {
			return nil, err
		}
		v, err := p.num("local-pref")
		if err != nil {
			return nil, err
		}
		switch op.text {
		case "=":
			return spec.LocalPrefEquals(uint32(v)), nil
		case "<=":
			return spec.LocalPrefAtMost(uint32(v)), nil
		case ">=":
			return spec.LocalPrefAtLeast(uint32(v)), nil
		}
	case "med":
		op, err := p.expect(tokOp, "comparison")
		if err != nil {
			return nil, err
		}
		v, err := p.num("med")
		if err != nil {
			return nil, err
		}
		switch op.text {
		case "=":
			return spec.MEDEquals(uint32(v)), nil
		case "<=":
			return spec.MEDAtMost(uint32(v)), nil
		}
		return nil, p.errf("med comparison must be = or <=")
	}
	return nil, p.errf("unknown match kind %q", kw)
}

func (p *parser) parseSet() (policy.Action, error) {
	kw, err := p.atom("set kind")
	if err != nil {
		return nil, err
	}
	switch kw {
	case "community":
		sub, err := p.atom("community operation")
		if err != nil {
			return nil, err
		}
		switch sub {
		case "none":
			return policy.ClearCommunities{}, nil
		case "add", "delete":
			t, err := p.atom("community")
			if err != nil {
				return nil, err
			}
			c, err := routemodel.ParseCommunity(t)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			if sub == "add" {
				return policy.AddCommunity{Comm: c}, nil
			}
			return policy.DeleteCommunity{Comm: c}, nil
		}
		return nil, p.errf("community operation must be add, delete, or none")
	case "local-pref":
		v, err := p.num("local-pref")
		if err != nil {
			return nil, err
		}
		return policy.SetLocalPref{Value: uint32(v)}, nil
	case "med":
		v, err := p.num("med")
		if err != nil {
			return nil, err
		}
		return policy.SetMED{Value: uint32(v)}, nil
	case "next-hop":
		v, err := p.num("next-hop")
		if err != nil {
			return nil, err
		}
		return policy.SetNextHop{Value: uint32(v)}, nil
	case "prepend":
		as, err := p.num("AS number")
		if err != nil {
			return nil, err
		}
		count, err := p.num("prepend count")
		if err != nil {
			return nil, err
		}
		return policy.PrependAS{AS: uint32(as), Count: int(count)}, nil
	}
	return nil, p.errf("unknown set kind %q", kw)
}

func (p *parser) parseBind() (bindDecl, error) {
	line := p.cur().line
	from, err := p.atom("edge source")
	if err != nil {
		return bindDecl{}, err
	}
	if _, err := p.expect(tokArrow, "->"); err != nil {
		return bindDecl{}, err
	}
	to, err := p.atom("edge destination")
	if err != nil {
		return bindDecl{}, err
	}
	if err := p.keyword("map"); err != nil {
		return bindDecl{}, err
	}
	mapName, err := p.atom("route-map name")
	if err != nil {
		return bindDecl{}, err
	}
	return bindDecl{from: from, to: to, mapName: mapName, line: line}, nil
}

func (p *parser) parseOriginate() error {
	line := p.cur().line
	from, err := p.atom("edge source")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow, "->"); err != nil {
		return err
	}
	to, err := p.atom("edge destination")
	if err != nil {
		return err
	}
	if err := p.keyword("route"); err != nil {
		return err
	}
	t, err := p.atom("prefix")
	if err != nil {
		return err
	}
	pfx, err := routemodel.ParsePrefix(t)
	if err != nil {
		return p.errf("%v", err)
	}
	r := routemodel.NewRoute(pfx)
	for p.cur().kind == tokAtom {
		switch p.cur().text {
		case "lp":
			p.next()
			v, err := p.num("lp")
			if err != nil {
				return err
			}
			r.LocalPref = uint32(v)
		case "med":
			p.next()
			v, err := p.num("med")
			if err != nil {
				return err
			}
			r.MED = uint32(v)
		case "next-hop":
			p.next()
			v, err := p.num("next-hop")
			if err != nil {
				return err
			}
			r.NextHop = uint32(v)
		case "community":
			p.next()
			t, err := p.atom("community")
			if err != nil {
				return err
			}
			c, err := routemodel.ParseCommunity(t)
			if err != nil {
				return p.errf("%v", err)
			}
			r.AddCommunity(c)
		case "aspath":
			p.next()
			for {
				v, err := p.num("AS number")
				if err != nil {
					return err
				}
				r.ASPath = append(r.ASPath, uint32(v))
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
		default:
			// Next statement begins.
			p.originates = append(p.originates, originateDecl{from: from, to: to, route: r, line: line})
			return nil
		}
	}
	p.originates = append(p.originates, originateDecl{from: from, to: to, route: r, line: line})
	return nil
}

// build resolves declarations into a topology.Network.
func (p *parser) build() (*topology.Network, error) {
	n := topology.New()
	seen := map[string]bool{}
	for _, d := range p.nodes {
		if seen[d.id] {
			return nil, fmt.Errorf("config: duplicate node %q", d.id)
		}
		seen[d.id] = true
		var node *topology.Node
		if d.external {
			node = n.AddExternal(topology.NodeID(d.id), d.as)
		} else {
			node = n.AddRouter(topology.NodeID(d.id), d.as)
		}
		node.Role = d.role
		node.Region = d.region
	}
	for _, pr := range p.peerings {
		for _, id := range pr {
			if !seen[id] {
				return nil, fmt.Errorf("config: peering references unknown node %q", id)
			}
		}
		n.AddPeering(topology.NodeID(pr[0]), topology.NodeID(pr[1]))
	}
	bind := func(b bindDecl, imp bool) error {
		e := topology.Edge{From: topology.NodeID(b.from), To: topology.NodeID(b.to)}
		if !n.HasEdge(e) {
			return fmt.Errorf("config: line %d: no peering for edge %v", b.line, e)
		}
		m, ok := p.routeMaps[b.mapName]
		if !ok {
			return fmt.Errorf("config: line %d: undefined route-map %q", b.line, b.mapName)
		}
		if imp {
			n.SetImport(e, m)
		} else {
			n.SetExport(e, m)
		}
		return nil
	}
	for _, b := range p.imports {
		if err := bind(b, true); err != nil {
			return nil, err
		}
	}
	for _, b := range p.exports {
		if err := bind(b, false); err != nil {
			return nil, err
		}
	}
	for _, o := range p.originates {
		e := topology.Edge{From: topology.NodeID(o.from), To: topology.NodeID(o.to)}
		if !n.HasEdge(e) {
			return nil, fmt.Errorf("config: line %d: no peering for origination edge %v", o.line, e)
		}
		n.AddOriginate(e, o.route)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	return n, nil
}
