package config_test

import (
	"math/rand"
	"strings"
	"testing"

	"lightyear/internal/config"
)

// TestParseNeverPanics feeds mutated and random inputs to the parser; every
// outcome must be a clean error or success, never a panic.
func TestParseNeverPanics(t *testing.T) {
	base := fig1DSL
	rng := rand.New(rand.NewSource(123))
	inputs := []string{
		"", "{", "}", "->", "node", "node {", "peering",
		"route-map m { term }", "import -> map", "originate A -> B route",
		strings.Repeat("{", 100), strings.Repeat("node A { as 1 }\n", 3),
		"prefix-list p { 999.999.999.999/99 }",
		"community-list c { -1:-1 }",
		"route-map m { term 10 permit { match local-pref 5 } }",
		"route-map m { term 10 permit { set prepend } }",
	}
	// Random single-byte mutations of the valid config.
	for i := 0; i < 200; i++ {
		b := []byte(base)
		pos := rng.Intn(len(b))
		b[pos] = byte(rng.Intn(96) + 32)
		inputs = append(inputs, string(b))
	}
	// Random truncations.
	for i := 0; i < 50; i++ {
		inputs = append(inputs, base[:rng.Intn(len(base))])
	}
	// Random token soup.
	words := []string{"node", "external", "peering", "route-map", "term", "permit", "deny",
		"{", "}", "->", "match", "set", "community", "10.0.0.0/8", "100:1", "A", "B", "42", "<=", "="}
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		for j := rng.Intn(40); j > 0; j-- {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		inputs = append(inputs, sb.String())
	}

	for i, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("input %d panicked: %v\n%s", i, r, src)
				}
			}()
			_, _ = config.Parse(src)
		}()
	}
}

// TestLexerPositions: errors must carry useful line numbers.
func TestLexerPositions(t *testing.T) {
	src := "node A { as 1 }\nnode B { as 1 }\nfrobnicate"
	_, err := config.Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("expected line-3 error, got %v", err)
	}
}

// TestCommentsAndWhitespace: comments, CRLF, and tabs are tolerated.
func TestCommentsAndWhitespace(t *testing.T) {
	src := "# leading comment\r\n\tnode A { as 1 } # trailing\r\n\r\n# done\n"
	n, err := config.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Routers()) != 1 {
		t.Fatal("node lost")
	}
}
