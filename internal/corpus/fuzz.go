package corpus

import (
	"fmt"
	"math/rand"

	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

// The property-preserving fuzzer for soak runs: a seeded walk over benign
// configuration mutations. Every step is a netgen.MutationSpec that only
// *adds* deny clauses (or tightens peer imports, which prepends one), and
// the clause always matches TEST-NET-2 — a block disjoint from every
// prefix set the corpus properties mention. Filtering more routes can
// never break a FromPeer ⇒ Q invariant, so after any number of steps the
// full property set must still verify; a failure after a fuzz walk is a
// verifier bug, not a network bug. Each step goes through ApplyMutation,
// so the walk also soaks the clone-isolation contract: the input network
// of every step is left untouched.

// FuzzResult is one fuzz walk: the mutated network and the mutation trail
// that produced it (replayable via netgen.ApplyMutation).
type FuzzResult struct {
	Network *topology.Network
	Trail   []netgen.MutationSpec
}

// Fuzz applies `steps` seeded property-preserving mutations to n and
// returns the final state plus the trail. The input network is never
// modified. Steps that happen to be infeasible on the current state (an
// occupied sequence number chosen twice) are skipped, so the trail may be
// shorter than steps — but never empty for steps >= 1 on a network with
// at least one session.
func Fuzz(n *topology.Network, seed int64, steps int) (*FuzzResult, error) {
	if steps < 1 {
		return &FuzzResult{Network: n}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	edges := n.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("corpus: cannot fuzz a network with no sessions")
	}
	// Routers with external sessions, for tighten-imports steps.
	var tightenable []topology.NodeID
	for _, r := range n.Routers() {
		for _, e := range edges {
			if e.To == r && n.IsExternal(e.From) {
				tightenable = append(tightenable, r)
				break
			}
		}
	}

	cur := n
	res := &FuzzResult{}
	for len(res.Trail) < steps {
		var spec netgen.MutationSpec
		switch kind := rng.Intn(3); {
		case kind == 0 && len(tightenable) > 0:
			spec = netgen.MutationSpec{
				Kind: netgen.MutTighten,
				At:   tightenable[rng.Intn(len(tightenable))],
			}
		default:
			e := edges[rng.Intn(len(edges))]
			mutKind := netgen.MutInsertImportDeny
			if kind == 2 && !cur.IsExternal(e.From) {
				mutKind = netgen.MutInsertExportDeny
			}
			// Only filters on the receiving (import, To internal) or
			// sending (export, From internal) side of a session are
			// checked; skip draws that would edit an inert map.
			if mutKind == netgen.MutInsertImportDeny && cur.IsExternal(e.To) {
				continue
			}
			m := cur.Import(e)
			if mutKind == netgen.MutInsertExportDeny {
				m = cur.Export(e)
			}
			spec = netgen.MutationSpec{
				Kind:  mutKind,
				From:  e.From,
				To:    e.To,
				Seq:   netgen.FreeSeq(m, 1+rng.Intn(200)),
				Match: "test-net-2",
			}
		}
		next, err := netgen.ApplyMutation(cur, spec)
		if err != nil {
			// Infeasible on this state (e.g. a tighten race left no free
			// slot); skip rather than abort the soak.
			continue
		}
		cur = next
		res.Trail = append(res.Trail, spec)
	}
	res.Network = cur
	return res, nil
}
