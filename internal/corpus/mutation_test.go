package corpus

import (
	"strings"
	"testing"

	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

// Satellite coverage: netgen.MutationSpec validation against *generated*
// configs. Every corpus family must reject inserts at occupied sequence
// numbers and removals of missing ones, and a successful mutation must be
// clone-isolated from the input network.

// peerSession returns one external -> internal session edge of n.
func peerSession(t *testing.T, n *topology.Network) topology.Edge {
	t.Helper()
	for _, e := range n.Edges() {
		if n.IsExternal(e.From) && !n.IsExternal(e.To) {
			return e
		}
	}
	t.Fatal("generated network has no peer session")
	return topology.Edge{}
}

func TestMutationSpecValidationPerFamily(t *testing.T) {
	for _, m := range oneOfEach() {
		n, _, err := m.Build()
		if err != nil {
			t.Fatalf("%s: %v", m.Ref(), err)
		}
		e := peerSession(t, n)

		// Inserting at a sequence the hygiene template already uses must
		// fail with the occupied-sequence error.
		_, err = netgen.ApplyMutation(n, netgen.MutationSpec{
			Kind:  netgen.MutInsertImportDeny,
			From:  e.From,
			To:    e.To,
			Seq:   10,
			Match: "test-net-2",
		})
		if err == nil || !strings.Contains(err.Error(), "occupied") {
			t.Errorf("%s: occupied insert: got %v, want occupied-sequence error", m.Ref(), err)
		}

		// Removing a sequence that does not exist must fail too.
		_, err = netgen.ApplyMutation(n, netgen.MutationSpec{
			Kind: netgen.MutRemoveImportClause,
			From: e.From,
			To:   e.To,
			Seq:  55,
		})
		if err == nil || !strings.Contains(err.Error(), "no clause") {
			t.Errorf("%s: missing remove: got %v, want no-clause error", m.Ref(), err)
		}
	}
}

func TestMutationCloneIsolationPerFamily(t *testing.T) {
	for _, m := range oneOfEach() {
		n, _, err := m.Build()
		if err != nil {
			t.Fatalf("%s: %v", m.Ref(), err)
		}
		e := peerSession(t, n)
		before := n.Fingerprint()

		mut, err := netgen.ApplyMutation(n, netgen.MutationSpec{
			Kind: netgen.MutRemoveImportClause,
			From: e.From,
			To:   e.To,
			Seq:  20,
		})
		if err != nil {
			t.Fatalf("%s: remove seq 20: %v", m.Ref(), err)
		}
		if n.Fingerprint() != before {
			t.Errorf("%s: ApplyMutation modified its input network", m.Ref())
		}
		if mut.Fingerprint() == before {
			t.Errorf("%s: mutation had no semantic effect", m.Ref())
		}
	}
}
