package corpus

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// The zoo family imports TopologyZoo-style graphs: either a minimal
// GraphML subset (the format the Internet Topology Zoo distributes) or a
// plain edge list, one "a b" link per line. Imported nodes become routers;
// roles are ranked by degree exactly like the waxman family, so the same
// policy template and property set apply.

// builtinGraphs ships two classic research backbones as edge lists, so zoo
// members are usable from serializable references (plan documents, lyserve
// requests) without any filesystem contract.
var builtinGraphs = map[string]string{
	// The Abilene (Internet2) backbone: 11 PoPs, 14 links.
	"abilene": `
seattle sunnyvale
seattle denver
sunnyvale losangeles
sunnyvale denver
losangeles houston
denver kansascity
kansascity houston
kansascity indianapolis
houston atlanta
chicago indianapolis
chicago newyork
indianapolis atlanta
atlanta washington
washington newyork
`,
	// The NSFNET T1 backbone: 14 nodes, 21 links.
	"nsfnet": `
seattle paloalto
seattle sandiego
seattle champaign
paloalto sandiego
paloalto saltlake
sandiego houston
saltlake boulder
saltlake annarbor
boulder houston
boulder lincoln
houston atlanta
lincoln champaign
lincoln annarbor
champaign pittsburgh
pittsburgh atlanta
pittsburgh ithaca
pittsburgh princeton
atlanta collegepark
annarbor ithaca
ithaca collegepark
princeton collegepark
`,
}

// BuiltinGraphNames lists the graphs shipped with the corpus.
func BuiltinGraphNames() []string {
	return sortedKeys(builtinGraphs)
}

// synthZoo imports the member's graph source: inline GraphText first, then
// the named builtin.
func synthZoo(m Member) (*graph, error) {
	text := m.GraphText
	if text == "" {
		text = builtinGraphs[m.Graph]
	}
	if text == "" {
		return nil, fmt.Errorf("corpus: zoo member %s has no graph source", m.Ref())
	}
	nodes, edges, err := ParseGraph(text)
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", m.Ref(), err)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("corpus: %s: graph has no nodes", m.Ref())
	}
	idx := make(map[string]int, len(nodes))
	g := &graph{}
	for i, id := range nodes {
		idx[id] = i
		g.routers = append(g.routers, router{id: id})
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		a, b := idx[e[0]], idx[e[1]]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.links = append(g.links, [2]int{a, b})
	}
	assignRolesByDegree(g, defaultInt(m.Peers, 1))
	return g, nil
}

// ParseGraph parses a TopologyZoo-style graph: GraphML when the text looks
// like XML, otherwise an edge list ("a b" per line, '#' comments). Node
// names are sanitized to configuration-safe atoms; nodes are returned in
// sorted order and edges in input order (both deterministic).
func ParseGraph(text string) (nodes []string, edges [][2]string, err error) {
	if strings.Contains(text, "<graphml") || strings.HasPrefix(strings.TrimSpace(text), "<") {
		return parseGraphML(text)
	}
	return parseEdgeList(text)
}

func parseEdgeList(text string) ([]string, [][2]string, error) {
	set := map[string]bool{}
	var edges [][2]string
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("edge list line %d: want \"a b\", got %q", lineNo+1, line)
		}
		a, b := sanitizeNodeID(fields[0]), sanitizeNodeID(fields[1])
		set[a], set[b] = true, true
		edges = append(edges, [2]string{a, b})
	}
	if len(edges) == 0 {
		return nil, nil, fmt.Errorf("edge list: no edges found")
	}
	nodes := make([]string, 0, len(set))
	for id := range set {
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	return nodes, edges, nil
}

// parseGraphML reads the minimal GraphML subset TopologyZoo files use:
// <node id="..."/> and <edge source="..." target="..."/> elements, all
// other markup ignored.
func parseGraphML(text string) ([]string, [][2]string, error) {
	dec := xml.NewDecoder(strings.NewReader(text))
	set := map[string]bool{}
	var edges [][2]string
	for {
		tok, err := dec.Token()
		if err != nil {
			break // io.EOF or a malformed tail; what parsed so far decides
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		attr := func(name string) string {
			for _, a := range start.Attr {
				if a.Name.Local == name {
					return a.Value
				}
			}
			return ""
		}
		switch start.Name.Local {
		case "node":
			if id := attr("id"); id != "" {
				set[sanitizeNodeID(id)] = true
			}
		case "edge":
			s, t := attr("source"), attr("target")
			if s == "" || t == "" {
				return nil, nil, fmt.Errorf("graphml: edge element without source/target")
			}
			s, t = sanitizeNodeID(s), sanitizeNodeID(t)
			set[s], set[t] = true, true
			edges = append(edges, [2]string{s, t})
		}
	}
	if len(set) == 0 {
		return nil, nil, fmt.Errorf("graphml: no node or edge elements found")
	}
	nodes := make([]string, 0, len(set))
	for id := range set {
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	return nodes, edges, nil
}

// sanitizeNodeID maps arbitrary graph labels onto configuration-safe
// atoms: lowercase letters, digits, and dashes.
func sanitizeNodeID(raw string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(raw) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('-')
		}
	}
	id := strings.Trim(b.String(), "-")
	if id == "" {
		return "x"
	}
	return id
}
