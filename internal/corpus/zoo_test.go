package corpus

import (
	"strings"
	"testing"
)

func TestParseEdgeList(t *testing.T) {
	text := `# a comment
Seattle Denver
denver  chicago

Chicago Seattle
`
	nodes, edges, err := ParseGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes %v, want 3", len(nodes), nodes)
	}
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(edges))
	}
	for _, id := range nodes {
		if id != strings.ToLower(id) {
			t.Errorf("node id %q not sanitized to lower case", id)
		}
	}
}

func TestParseGraphML(t *testing.T) {
	text := `<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <graph edgedefault="undirected">
    <node id="New York"/>
    <node id="Boston"/>
    <node id="DC"/>
    <edge source="New York" target="Boston"/>
    <edge source="Boston" target="DC"/>
  </graph>
</graphml>`
	nodes, edges, err := ParseGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || len(edges) != 2 {
		t.Fatalf("got %d nodes / %d edges, want 3 / 2", len(nodes), len(edges))
	}
	found := false
	for _, id := range nodes {
		if id == "new-york" {
			found = true
		}
	}
	if !found {
		t.Errorf(`"New York" not sanitized to "new-york" (nodes: %v)`, nodes)
	}
}

func TestParseGraphErrors(t *testing.T) {
	for _, bad := range []string{
		"",                      // edge list with no edges
		"lonely",                // malformed edge line
		"<graphml></graphml>",   // GraphML with no nodes or edges
		"<graphml><edge source=\"a\"/></graphml>", // edge missing target
	} {
		if _, _, err := ParseGraph(bad); err == nil {
			t.Errorf("ParseGraph(%q): want error, got none", bad)
		}
	}
}

func TestBuiltinGraphs(t *testing.T) {
	names := BuiltinGraphNames()
	if len(names) < 2 {
		t.Fatalf("want >= 2 builtin graphs, got %v", names)
	}
	for _, name := range names {
		m := Member{Family: "zoo", Seed: 1, Graph: name}
		n, _, err := m.Build()
		if err != nil {
			t.Fatalf("zoo graph %s: %v", name, err)
		}
		if len(n.Routers()) < 5 {
			t.Errorf("zoo graph %s: only %d routers", name, len(n.Routers()))
		}
	}
}

func TestZooGraphText(t *testing.T) {
	m := Member{Family: "zoo", Seed: 1, Graph: "inline", GraphText: "a b\nb c\nc a\nc d\n"}
	n, _, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Routers()) != 4 {
		t.Fatalf("got %d routers, want 4", len(n.Routers()))
	}
}
