package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lightyear/internal/topology"
)

// The synthesizer layer: each family turns (knobs, seed) into an abstract
// graph — routers with roles and region tags, undirected internal links,
// and per-router external peer counts. Everything downstream (policy
// binding, DSL emission, bug planting) is family-agnostic.
//
// Determinism contract: all randomness comes from rand.New(rand.NewSource
// (seed)) drawn in a fixed iteration order, so the same member reference
// synthesizes the same graph on every run and platform.

// router is one internal node of a synthesized graph.
type router struct {
	id     string
	role   string // core | aggregation | edge
	region string // "" = untagged
	peers  int    // external peer sessions attached here
}

// graph is the family-agnostic synthesis product.
type graph struct {
	routers []router
	links   [][2]int // undirected, indices into routers, a < b
}

// peerID names the k-th external peer of a router.
func peerID(routerID string, k int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("px-%s-%d", routerID, k))
}

// peerSessions enumerates every external peer session as the directed
// import edge peer → router, in emission order.
func (g *graph) peerSessions() []topology.Edge {
	var out []topology.Edge
	for _, r := range g.routers {
		for k := 0; k < r.peers; k++ {
			out = append(out, topology.Edge{From: peerID(r.id, k), To: topology.NodeID(r.id)})
		}
	}
	return out
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// synthesize dispatches to the member's family.
func (m Member) synthesize() (*graph, error) {
	var g *graph
	var err error
	switch m.Family {
	case "ring":
		g = synthRing(m)
	case "tree":
		g = synthTree(m)
	case "fattree":
		g, err = synthFatTree(m)
	case "waxman":
		g = synthWaxman(m)
	case "zoo":
		g, err = synthZoo(m)
	default:
		err = fmt.Errorf("corpus: unknown family %q", m.Family)
	}
	if err != nil {
		return nil, err
	}
	if len(g.routers) == 0 {
		return nil, fmt.Errorf("corpus: %s synthesized an empty graph", m.Ref())
	}
	m.tagRegions(g)
	return g, nil
}

// tagRegions spreads region tags round-robin over the routers (waxman
// assigns by position instead and leaves them set already).
func (m Member) tagRegions(g *graph) {
	r := defaultInt(m.Regions, 0)
	if r <= 0 {
		return
	}
	for i := range g.routers {
		if g.routers[i].region == "" {
			g.routers[i].region = fmt.Sprintf("region-%d", i%r)
		}
	}
}

// synthRing builds a cycle of edge routers, each peering externally.
func synthRing(m Member) *graph {
	size := defaultInt(m.Size, 8)
	if size < 3 {
		size = 3
	}
	peers := defaultInt(m.Peers, 1)
	g := &graph{}
	for i := 0; i < size; i++ {
		g.routers = append(g.routers, router{id: fmt.Sprintf("r%d", i), role: "edge", peers: peers})
	}
	for i := 0; i < size; i++ {
		a, b := i, (i+1)%size
		if a > b {
			a, b = b, a
		}
		g.links = append(g.links, [2]int{a, b})
	}
	return g
}

// synthTree builds a rooted fanout-ary tree: root = core, inner levels =
// aggregation, leaves = edge routers with peers.
func synthTree(m Member) *graph {
	depth := defaultInt(m.Depth, 2)
	if depth < 1 {
		depth = 1
	}
	fanout := defaultInt(m.Fanout, 2)
	if fanout < 2 {
		fanout = 2
	}
	peers := defaultInt(m.Peers, 1)
	g := &graph{}
	// Level-order construction: level l has fanout^l nodes.
	levelStart := []int{0}
	for l, count := 0, 1; l <= depth; l, count = l+1, count*fanout {
		for i := 0; i < count; i++ {
			role := "aggregation"
			p := 0
			switch {
			case l == 0:
				role = "core"
			case l == depth:
				role = "edge"
				p = peers
			}
			g.routers = append(g.routers, router{id: fmt.Sprintf("n%d-%d", l, i), role: role, peers: p})
		}
		levelStart = append(levelStart, len(g.routers))
	}
	for l := 1; l <= depth; l++ {
		for i := levelStart[l]; i < levelStart[l+1]; i++ {
			parent := levelStart[l-1] + (i-levelStart[l])/fanout
			g.links = append(g.links, [2]int{parent, i})
		}
	}
	return g
}

// synthFatTree builds the classic k-pod fat-tree: (k/2)² core routers, k
// pods of k/2 aggregation + k/2 edge routers; every edge router peers
// externally.
func synthFatTree(m Member) (*graph, error) {
	k := defaultInt(m.K, 4)
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("corpus: fattree k must be an even number >= 2, got %d", k)
	}
	peers := defaultInt(m.Peers, 1)
	half := k / 2
	g := &graph{}
	coreAt := func(i, j int) int { return i*half + j }
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			g.routers = append(g.routers, router{id: fmt.Sprintf("core-%d-%d", i, j), role: "core"})
		}
	}
	for pod := 0; pod < k; pod++ {
		aggStart := len(g.routers)
		for a := 0; a < half; a++ {
			g.routers = append(g.routers, router{id: fmt.Sprintf("agg-%d-%d", pod, a), role: "aggregation"})
			// Aggregation router a of every pod uplinks to core row a.
			for j := 0; j < half; j++ {
				g.links = append(g.links, [2]int{coreAt(a, j), aggStart + a})
			}
		}
		for e := 0; e < half; e++ {
			idx := len(g.routers)
			g.routers = append(g.routers, router{id: fmt.Sprintf("edge-%d-%d", pod, e), role: "edge", peers: peers})
			for a := 0; a < half; a++ {
				g.links = append(g.links, [2]int{aggStart + a, idx})
			}
		}
	}
	return g, nil
}

// synthWaxman builds a random geometric Waxman graph: routers placed
// uniformly in the unit square, each pair linked with probability
// α·exp(−d/(β·L)) where α is calibrated to the target mean degree, then
// patched to a single connected component. Roles are ranked by degree
// (top quarter core, next quarter aggregation, rest edge) and regions —
// when requested — are vertical bands of the square.
func synthWaxman(m Member) *graph {
	size := defaultInt(m.Size, 12)
	if size < 3 {
		size = 3
	}
	degree := defaultInt(m.Degree, 3)
	peers := defaultInt(m.Peers, 1)
	regions := defaultInt(m.Regions, 0)
	rng := rand.New(rand.NewSource(m.Seed))

	xs := make([]float64, size)
	ys := make([]float64, size)
	for i := 0; i < size; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	const beta = 0.4
	l := math.Sqrt2
	// Calibrate α so the expected edge count hits size·degree/2.
	expected := 0.0
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			expected += math.Exp(-dist(i, j) / (beta * l))
		}
	}
	alpha := 1.0
	if target := float64(size*degree) / 2; expected > 0 && target < expected {
		alpha = target / expected
	}

	g := &graph{}
	for i := 0; i < size; i++ {
		g.routers = append(g.routers, router{id: fmt.Sprintf("w%d", i)})
	}
	linked := map[[2]int]bool{}
	addLink := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || linked[[2]int{a, b}] {
			return
		}
		linked[[2]int{a, b}] = true
		g.links = append(g.links, [2]int{a, b})
	}
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			if rng.Float64() < alpha*math.Exp(-dist(i, j)/(beta*l)) {
				addLink(i, j)
			}
		}
	}
	// Patch connectivity: union-find, then join each later component to an
	// earlier one via the geometrically shortest missing link.
	parent := make([]int, size)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, ln := range g.links {
		parent[find(ln[0])] = find(ln[1])
	}
	for i := 1; i < size; i++ {
		if find(i) == find(0) {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for j := 0; j < size; j++ {
			if find(j) == find(0) && dist(i, j) < bestD {
				best, bestD = j, dist(i, j)
			}
		}
		addLink(i, best)
		parent[find(i)] = find(best)
	}
	assignRolesByDegree(g, peers)
	if regions > 0 {
		for i := range g.routers {
			band := int(xs[i] * float64(regions))
			if band >= regions {
				band = regions - 1
			}
			g.routers[i].region = fmt.Sprintf("region-%d", band)
		}
	}
	return g
}

// assignRolesByDegree ranks routers by connectivity: the top quarter are
// core, the next quarter aggregation, the rest edge routers carrying the
// external peer sessions.
func assignRolesByDegree(g *graph, peers int) {
	deg := make([]int, len(g.routers))
	for _, ln := range g.links {
		deg[ln[0]]++
		deg[ln[1]]++
	}
	order := make([]int, len(g.routers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] > deg[order[b]]
		}
		return g.routers[order[a]].id < g.routers[order[b]].id
	})
	quarter := len(order) / 4
	if quarter < 1 {
		quarter = 1
	}
	for rank, idx := range order {
		switch {
		case len(order) > 2 && rank < quarter:
			g.routers[idx].role = "core"
		case len(order) > 2 && rank < 2*quarter:
			g.routers[idx].role = "aggregation"
		default:
			g.routers[idx].role = "edge"
			g.routers[idx].peers = peers
		}
	}
}
