package corpus

import (
	"context"
	"strings"
	"testing"

	"lightyear/internal/config"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

// oneOfEach returns one small member per family, seeded distinctly.
func oneOfEach() []Member {
	return []Member{
		{Family: "ring", Seed: 11, Size: 6},
		{Family: "tree", Seed: 12, Depth: 2, Fanout: 2},
		{Family: "fattree", Seed: 13, K: 4},
		{Family: "waxman", Seed: 14, Size: 10, Degree: 3, Regions: 2},
		{Family: "zoo", Seed: 15, Graph: "abilene"},
	}
}

func TestParseRefRoundTrip(t *testing.T) {
	for _, m := range oneOfEach() {
		m.Bug = "no-bogons"
		got, err := Parse(m.Ref())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.Ref(), err)
		}
		if got != m {
			t.Errorf("round trip %q: got %+v want %+v", m.Ref(), got, m)
		}
	}
}

func TestParseRejectsBadRefs(t *testing.T) {
	for _, ref := range []string{
		"",
		"ring",
		"nosuch:1",
		"ring:x",
		"ring:1:bad",
		"ring:1:size=-2",
		"ring:1:nope=3",
		"ring:1:bug=nosuch",
		"zoo:1",
		"zoo:1:graph=nosuch",
		"fattree:1:k=3",
	} {
		if _, err := Parse(ref); err == nil {
			t.Errorf("Parse(%q): want error, got none", ref)
		}
	}
}

func TestDSLDeterministicAndParses(t *testing.T) {
	for _, m := range oneOfEach() {
		for _, bug := range []string{"", "no-reused-space"} {
			m.Bug = bug
			a, err := m.DSL()
			if err != nil {
				t.Fatalf("%s: DSL: %v", m.Ref(), err)
			}
			b, err := m.DSL()
			if err != nil {
				t.Fatalf("%s: DSL (second call): %v", m.Ref(), err)
			}
			if a != b {
				t.Fatalf("%s: DSL not byte-identical across calls", m.Ref())
			}
			n, err := config.Parse(a)
			if err != nil {
				t.Fatalf("%s: emitted DSL does not parse: %v", m.Ref(), err)
			}
			if err := n.Validate(); err != nil {
				t.Fatalf("%s: emitted network invalid: %v", m.Ref(), err)
			}
			if len(n.RoutersByRole("edge")) == 0 {
				t.Errorf("%s: no edge routers", m.Ref())
			}
			if len(n.Externals()) == 0 {
				t.Errorf("%s: no peer sessions", m.Ref())
			}
		}
	}
}

// The planted state must be reachable both ways: parsing the bugged DSL
// and mutating the clean network must agree on the semantic fingerprint —
// the injector genuinely is a MutationSpec application.
func TestBuildMatchesEmittedDSL(t *testing.T) {
	for _, m := range oneOfEach() {
		m.Bug = "no-class-e"
		n, gt, err := m.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", m.Ref(), err)
		}
		if gt == nil || gt.Property != "no-class-e" || len(gt.MustPass) != 10 {
			t.Fatalf("%s: bad ground truth %+v", m.Ref(), gt)
		}
		if gt.Mutation.Kind != netgen.MutRemoveImportClause || gt.Mutation.Seq != 20 {
			t.Fatalf("%s: unexpected mutation %v", m.Ref(), gt.Mutation)
		}
		text, err := m.DSL()
		if err != nil {
			t.Fatalf("%s: DSL: %v", m.Ref(), err)
		}
		parsed, err := config.Parse(text)
		if err != nil {
			t.Fatalf("%s: bugged DSL does not parse: %v", m.Ref(), err)
		}
		if parsed.Fingerprint() != n.Fingerprint() {
			t.Errorf("%s: mutated network and emitted bugged DSL disagree", m.Ref())
		}
	}
}

func TestBuildSeedSensitivity(t *testing.T) {
	a := Member{Family: "waxman", Seed: 1, Size: 12}
	b := Member{Family: "waxman", Seed: 2, Size: 12}
	da, err := a.DSL()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.DSL()
	if err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Error("waxman members with different seeds emitted identical configs")
	}
}

func TestDefaultRoster(t *testing.T) {
	roster := DefaultRoster(7)
	if len(roster) < 30 {
		t.Fatalf("roster has %d members, want >= 30", len(roster))
	}
	fams := map[string]bool{}
	prefixFams := map[string]bool{}
	for i, m := range roster {
		fams[m.Family] = true
		if i < 10 {
			prefixFams[m.Family] = true
		}
		if m.Bug == "" {
			t.Errorf("roster member %s has no planted bug", m.Ref())
		}
		if _, err := Parse(m.Ref()); err != nil {
			t.Errorf("roster member %d: %v", i, err)
		}
	}
	if len(fams) < 5 {
		t.Errorf("roster covers %d families, want 5", len(fams))
	}
	// CI smoke truncates the roster; any 10-member prefix must still
	// cover at least 3 families.
	if len(prefixFams) < 3 {
		t.Errorf("first 10 roster members cover %d families, want >= 3", len(prefixFams))
	}
}

// verifySuite runs the full wan-peering property set and returns the
// failing problem names.
func verifySuite(t *testing.T, n *topology.Network) []string {
	t.Helper()
	suite, ok := netgen.Lookup(PropertySuite)
	if !ok {
		t.Fatalf("suite %q not registered", PropertySuite)
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	var failing []string
	for _, p := range suite.Problems(n, netgen.SuiteParams{}, netgen.Scope{}) {
		j, err := eng.Submit(context.Background(), engine.Workload{Safety: p.Safety})
		if err != nil {
			t.Fatalf("submit %s: %v", p.Name, err)
		}
		if !j.Wait().OK() {
			failing = append(failing, p.Name)
		}
	}
	return failing
}

func TestCleanMembersVerify(t *testing.T) {
	for _, m := range oneOfEach() {
		n, gt, err := m.Build()
		if err != nil {
			t.Fatalf("%s: %v", m.Ref(), err)
		}
		if gt != nil {
			t.Fatalf("%s: clean member returned ground truth", m.Ref())
		}
		if failing := verifySuite(t, n); len(failing) > 0 {
			t.Errorf("%s: clean member fails %v", m.Ref(), failing)
		}
	}
}

// Planted bugs must be detected as exactly their ground truth: every
// failing problem belongs to the planted property, and at least one fails.
func TestPlantedBugsDetectedExactly(t *testing.T) {
	bugs := BugNames()
	for i, m := range oneOfEach() {
		m.Bug = bugs[i%len(bugs)]
		n, gt, err := m.Build()
		if err != nil {
			t.Fatalf("%s: %v", m.Ref(), err)
		}
		failing := verifySuite(t, n)
		if len(failing) == 0 {
			t.Errorf("%s: planted %s went undetected", m.Ref(), gt.Property)
			continue
		}
		for _, name := range failing {
			if !strings.HasPrefix(name, gt.Property+"@") {
				t.Errorf("%s: unexpected failure %s (planted %s)", m.Ref(), name, gt.Property)
			}
		}
	}
}

func TestFuzzPreservesPropertiesAndInput(t *testing.T) {
	m := Member{Family: "ring", Seed: 3, Size: 5}
	n, _, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	before := n.Fingerprint()
	res, err := Fuzz(n, 99, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trail) != 6 {
		t.Fatalf("fuzz trail has %d steps, want 6", len(res.Trail))
	}
	if n.Fingerprint() != before {
		t.Fatal("fuzz modified its input network")
	}
	if res.Network.Fingerprint() == before {
		t.Fatal("fuzz produced an unmodified network")
	}
	// Replaying the trail on the original input reproduces the state.
	replay := n
	for _, spec := range res.Trail {
		replay, err = netgen.ApplyMutation(replay, spec)
		if err != nil {
			t.Fatalf("replaying %v: %v", spec, err)
		}
	}
	if replay.Fingerprint() != res.Network.Fingerprint() {
		t.Fatal("trail replay diverged from fuzz result")
	}
	if failing := verifySuite(t, res.Network); len(failing) > 0 {
		t.Errorf("property-preserving fuzz broke %v", failing)
	}
}

func TestTelemetryCounters(t *testing.T) {
	rec := telemetry.New(0)
	SetTelemetry(rec)
	defer SetTelemetry(nil)
	m := Member{Family: "ring", Seed: 4, Size: 4, Bug: "no-bogons"}
	if _, _, err := m.Build(); err != nil {
		t.Fatal(err)
	}
	ObserveSolve("ring", 0.25)
	gen := rec.Counter("lightyear_corpus_generated_total", "", "family").With("ring").Value()
	if gen != 1 {
		t.Errorf("generated counter = %d, want 1", gen)
	}
	planted := rec.Counter("lightyear_corpus_bugs_planted_total", "", "property").With("no-bogons").Value()
	if planted != 1 {
		t.Errorf("planted counter = %d, want 1", planted)
	}
	if c := rec.Histogram("lightyear_corpus_solve_seconds", "", nil, "family").With("ring").Count(); c != 1 {
		t.Errorf("solve histogram count = %d, want 1", c)
	}
}
