// Package corpus turns the six hand-built registry suites into a scenario
// *corpus*: a declarative member format — graph source × role assignment ×
// policy template — that generates deterministic, seed-reproducible
// networks in the internal/config DSL, each carrying planted-bug ground
// truth.
//
// A corpus member is named by a compact reference
//
//	family:seed[:knob=value,...]
//
// e.g. "ring:42", "waxman:7:size=16,degree=3", "tree:1:depth=3,fanout=2",
// "zoo:5:graph=abilene", or "fattree:3:k=4,bug=no-bogons". The same
// reference is accepted by `lightyear -corpus`, by plan.Network.Corpus (so
// lyserve sessions, deltas, and migrations run over corpus members
// unchanged), and by `lybench -experiment corpus`.
//
// Generation is a pure function of the reference: Member.DSL renders the
// configuration text (the synthesizers use an explicitly seeded PRNG and
// iterate in sorted order), and regenerating a member from the same
// reference is byte-identical. Member.Build parses that text back through
// internal/config — the corpus has no private network constructor, so a
// generated config on disk and a generated config in memory are the same
// artifact.
//
// Every member follows one policy template, "hygiene": each external peer
// session imports through the §6.1 eleven-filter map (deny bogons, class-E,
// the default route, reused space, long prefixes, long AS paths, private
// and self ASNs; then clear communities and normalize local-pref/MED).
// That makes the registry's wan-peering suite — FromPeer ⇒ Q at every
// router — instantiate across any corpus member, which is the property
// template layer: one suite, every topology.
//
// Planted bugs reuse netgen.MutationSpec: Bug names one peering property,
// and the injector removes exactly the deny clause that enforces it from
// one seed-chosen peer session (kind "remove-import-clause"). The returned
// GroundTruth records the mutation, the session, the property that must
// now fail, and the ten that must keep passing — so a sweep can assert
// detection, not just run.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"lightyear/internal/config"
	"lightyear/internal/netgen"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

// PropertySuite is the registry suite every corpus member is verified
// under: the eleven peering properties at every router.
const PropertySuite = "wan-peering"

// Member is one corpus entry: a graph family, the seed, and the family's
// knobs. The zero values of the knobs select family defaults (see
// Families); GraphText carries an out-of-band TopologyZoo-style graph for
// the zoo family and never appears in a reference.
type Member struct {
	Family  string `json:"family"`
	Seed    int64  `json:"seed"`
	Size    int    `json:"size,omitempty"`    // ring/waxman: router count
	Degree  int    `json:"degree,omitempty"`  // waxman: target mean degree
	Depth   int    `json:"depth,omitempty"`   // tree: levels below the root
	Fanout  int    `json:"fanout,omitempty"`  // tree: children per node
	K       int    `json:"k,omitempty"`       // fattree: pod count (even)
	Peers   int    `json:"peers,omitempty"`   // peer sessions per edge router
	Regions int    `json:"regions,omitempty"` // region tags spread over routers
	Graph   string `json:"graph,omitempty"`   // zoo: builtin graph name
	Bug     string `json:"bug,omitempty"`     // planted peering-property bug

	// GraphText is inline GraphML or edge-list text for the zoo family,
	// supplied by hosts with filesystem access (lightyear -corpus-graph).
	// It is not part of the reference syntax and not serializable in
	// plan documents; inline the emitted DSL instead.
	GraphText string `json:"-"`
}

// GroundTruth is what a planted bug promises: the mutation that was
// applied, the session it edited, the property that must fail, and the
// properties that must keep passing.
type GroundTruth struct {
	Mutation netgen.MutationSpec `json:"mutation"`
	Session  topology.Edge       `json:"session"`
	Property string              `json:"property"`
	MustPass []string            `json:"must_pass"`
}

// Parse parses a member reference: family:seed[:knob=value,...].
func Parse(ref string) (Member, error) { return ParseWithGraphText(ref, "") }

// ParseWithGraphText parses a reference with an out-of-band graph source
// attached before validation, so hosts with filesystem access (lightyear
// -corpus-graph) can reference zoo graphs that are not builtins.
func ParseWithGraphText(ref, graphText string) (Member, error) {
	parts := strings.SplitN(ref, ":", 3)
	if len(parts) < 2 {
		return Member{}, fmt.Errorf("corpus: bad reference %q (want family:seed[:knob=value,...])", ref)
	}
	m := Member{Family: parts[0]}
	if _, ok := familyIndex[m.Family]; !ok {
		return Member{}, fmt.Errorf("corpus: unknown family %q (have: %s)", m.Family, strings.Join(FamilyNames(), ", "))
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Member{}, fmt.Errorf("corpus: bad seed %q in %q", parts[1], ref)
	}
	m.Seed = seed
	m.GraphText = graphText
	if len(parts) == 3 && parts[2] != "" {
		for _, kv := range strings.Split(parts[2], ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Member{}, fmt.Errorf("corpus: bad knob %q in %q (want knob=value)", kv, ref)
			}
			if err := m.setKnob(key, val); err != nil {
				return Member{}, err
			}
		}
	}
	return m, m.validate()
}

func (m *Member) setKnob(key, val string) error {
	setInt := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil || v < 0 {
			return fmt.Errorf("corpus: knob %s=%q must be a non-negative integer", key, val)
		}
		*dst = v
		return nil
	}
	switch key {
	case "size":
		return setInt(&m.Size)
	case "degree":
		return setInt(&m.Degree)
	case "depth":
		return setInt(&m.Depth)
	case "fanout":
		return setInt(&m.Fanout)
	case "k":
		return setInt(&m.K)
	case "peers":
		return setInt(&m.Peers)
	case "regions":
		return setInt(&m.Regions)
	case "graph":
		m.Graph = val
		return nil
	case "bug":
		m.Bug = val
		return nil
	}
	return fmt.Errorf("corpus: unknown knob %q (have: size, degree, depth, fanout, k, peers, regions, graph, bug)", key)
}

// validate rejects references that cannot build, before any generation.
func (m Member) validate() error {
	switch m.Family {
	case "zoo":
		if m.Graph == "" && m.GraphText == "" {
			return fmt.Errorf("corpus: zoo members need graph=<name> (builtin: %s) or inline graph text",
				strings.Join(BuiltinGraphNames(), ", "))
		}
		if m.Graph != "" && builtinGraphs[m.Graph] == "" && m.GraphText == "" {
			return fmt.Errorf("corpus: unknown builtin graph %q (have: %s)", m.Graph, strings.Join(BuiltinGraphNames(), ", "))
		}
	case "fattree":
		if m.K%2 != 0 {
			return fmt.Errorf("corpus: fattree k must be even, got %d", m.K)
		}
	}
	if m.Bug != "" {
		if _, err := bugClause(m.Bug); err != nil {
			return err
		}
	}
	return nil
}

// Ref renders the canonical reference: family:seed with the non-default
// knobs in fixed order. Parse(m.Ref()) round-trips.
func (m Member) Ref() string {
	var knobs []string
	add := func(k string, v int) {
		if v != 0 {
			knobs = append(knobs, fmt.Sprintf("%s=%d", k, v))
		}
	}
	add("size", m.Size)
	add("degree", m.Degree)
	add("depth", m.Depth)
	add("fanout", m.Fanout)
	add("k", m.K)
	add("peers", m.Peers)
	add("regions", m.Regions)
	if m.Graph != "" {
		knobs = append(knobs, "graph="+m.Graph)
	}
	if m.Bug != "" {
		knobs = append(knobs, "bug="+m.Bug)
	}
	ref := fmt.Sprintf("%s:%d", m.Family, m.Seed)
	if len(knobs) > 0 {
		ref += ":" + strings.Join(knobs, ",")
	}
	return ref
}

// Knob describes one family parameter for enumeration surfaces
// (lightyear -list, lightyear -corpus list).
type Knob struct {
	Name    string
	Default string
	Desc    string
}

// Family is the enumerable metadata of one synthesizer family.
type Family struct {
	Name  string
	Desc  string
	Knobs []Knob
}

var families = []Family{
	{
		Name: "ring",
		Desc: "cycle of edge routers, each with external peer sessions",
		Knobs: []Knob{
			{"size", "8", "number of routers in the cycle"},
			{"peers", "1", "peer sessions per router"},
			{"regions", "0", "spread region tags over N regions"},
		},
	},
	{
		Name: "tree",
		Desc: "rooted fanout-ary aggregation tree; leaves are edge routers with peers",
		Knobs: []Knob{
			{"depth", "2", "levels below the root"},
			{"fanout", "2", "children per node"},
			{"peers", "1", "peer sessions per edge router"},
			{"regions", "0", "spread region tags over N regions"},
		},
	},
	{
		Name: "fattree",
		Desc: "k-pod fat-tree (core/aggregation/edge); edge routers peer externally",
		Knobs: []Knob{
			{"k", "4", "pod count (even)"},
			{"peers", "1", "peer sessions per edge router"},
			{"regions", "0", "spread region tags over N regions"},
		},
	},
	{
		Name: "waxman",
		Desc: "random Waxman graph over a unit square, roles ranked by degree",
		Knobs: []Knob{
			{"size", "12", "number of routers"},
			{"degree", "3", "target mean degree"},
			{"peers", "1", "peer sessions per edge router"},
			{"regions", "0", "partition the square into N region bands"},
		},
	},
	{
		Name: "zoo",
		Desc: "imported TopologyZoo-style graph (GraphML or edge list), roles ranked by degree",
		Knobs: []Knob{
			{"graph", "(required)", "builtin graph name (abilene, nsfnet) or -corpus-graph file"},
			{"peers", "1", "peer sessions per edge router"},
			{"regions", "0", "spread region tags over N regions"},
		},
	},
}

var familyIndex = func() map[string]int {
	idx := make(map[string]int, len(families))
	for i, f := range families {
		idx[f.Name] = i
	}
	return idx
}()

// Families enumerates the synthesizer families and their knobs.
func Families() []Family { return append([]Family(nil), families...) }

// FamilyNames lists the family names in registration order.
func FamilyNames() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.Name
	}
	return out
}

// BugNames lists the plantable bug kinds: the peering properties whose
// enforcing deny clause the injector can remove.
func BugNames() []string {
	out := make([]string, len(bugClauses))
	for i, b := range bugClauses {
		out[i] = b.property
	}
	return out
}

// bugClauses maps each plantable bug to the import-map clause that
// enforces it. Order mirrors the clause order of the hygiene template
// (sequence numbers 10, 20, ... in emit.go); the three normalization
// properties of the suite live in the final permit clause's actions and
// cannot be broken by removing a deny, so they are not plantable.
var bugClauses = []struct {
	property string
	seq      int
}{
	{"no-bogons", 10},
	{"no-class-e", 20},
	{"no-default-route", 30},
	{"no-reused-space", 40},
	{"max-prefix-length", 50},
	{"max-as-path-length", 60},
	{"no-private-asn", 70},
	{"no-self-asn", 80},
}

func bugClause(property string) (int, error) {
	for _, b := range bugClauses {
		if b.property == property {
			return b.seq, nil
		}
	}
	return 0, fmt.Errorf("corpus: unknown bug %q (have: %s)", property, strings.Join(BugNames(), ", "))
}

// mustPassProperties returns the suite's property names minus the planted
// one — the "which checks must pass" half of the ground truth.
func mustPassProperties(planted string) []string {
	var out []string
	for _, p := range netgen.PeeringProperties(3) {
		if p.Name != planted {
			out = append(out, p.Name)
		}
	}
	return out
}

// Plant resolves the member's planted bug without building the network:
// the seed-chosen peer session and the MutationSpec that removes the
// property's deny clause there. Returns (nil, nil) for a clean member.
func (m Member) Plant() (*GroundTruth, error) {
	if m.Bug == "" {
		return nil, nil
	}
	seq, err := bugClause(m.Bug)
	if err != nil {
		return nil, err
	}
	g, err := m.synthesize()
	if err != nil {
		return nil, err
	}
	sessions := g.peerSessions()
	if len(sessions) == 0 {
		return nil, fmt.Errorf("corpus: %s has no peer sessions to plant %q in", m.Ref(), m.Bug)
	}
	// The site choice draws from its own stream (seed × bug name) so the
	// clean topology is identical with and without the bug.
	h := m.Seed
	for _, c := range m.Bug {
		h = h*131 + int64(c)
	}
	site := sessions[rand.New(rand.NewSource(h)).Intn(len(sessions))]
	return &GroundTruth{
		Mutation: netgen.MutationSpec{
			Kind: netgen.MutRemoveImportClause,
			From: site.From,
			To:   site.To,
			Seq:  seq,
		},
		Session:  site,
		Property: m.Bug,
		MustPass: mustPassProperties(m.Bug),
	}, nil
}

// DSL renders the member's configuration text. The output is a pure
// function of the member (byte-identical across calls and processes); a
// planted bug appears as the enforcing clause being absent, exactly the
// state Build produces by mutation.
func (m Member) DSL() (string, error) {
	g, err := m.synthesize()
	if err != nil {
		return "", err
	}
	gt, err := m.Plant()
	if err != nil {
		return "", err
	}
	return emitDSL(m, g, gt), nil
}

// Build generates the member's network: the clean configuration is
// emitted and parsed back through internal/config, then any planted bug
// is applied as a netgen.MutationSpec (clone-isolated, like a migration
// step). The returned ground truth is nil for clean members.
func (m Member) Build() (*topology.Network, *GroundTruth, error) {
	g, err := m.synthesize()
	if err != nil {
		return nil, nil, err
	}
	n, err := config.Parse(emitDSL(m, g, nil))
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: %s: generated config does not parse: %w", m.Ref(), err)
	}
	gt, err := m.Plant()
	if err != nil {
		return nil, nil, err
	}
	if gt != nil {
		n, err = netgen.ApplyMutation(n, gt.Mutation)
		if err != nil {
			return nil, nil, fmt.Errorf("corpus: %s: planting %q: %w", m.Ref(), m.Bug, err)
		}
		observePlanted(m.Bug)
	}
	observeGenerated(m.Family)
	return n, gt, nil
}

// Telemetry: per-family generation and solve instrumentation, shared by
// every host the way internal/fabric shares its recorder.

var (
	telMu  sync.RWMutex
	telRec *telemetry.Recorder
)

// SetTelemetry installs the process recorder corpus generation reports to
// (nil disables; emission is nil-safe).
func SetTelemetry(rec *telemetry.Recorder) {
	telMu.Lock()
	telRec = rec
	telMu.Unlock()
}

func recorder() *telemetry.Recorder {
	telMu.RLock()
	defer telMu.RUnlock()
	return telRec
}

func observeGenerated(family string) {
	recorder().Counter("lightyear_corpus_generated_total",
		"corpus members generated, by synthesizer family", "family").With(family).Inc()
}

func observePlanted(property string) {
	recorder().Counter("lightyear_corpus_bugs_planted_total",
		"planted corpus bugs, by broken property", "property").With(property).Inc()
}

// ObserveSolve records one member's end-to-end verification time into the
// per-family solve histogram (lybench -experiment corpus and hosts timing
// corpus runs).
func ObserveSolve(family string, seconds float64) {
	recorder().Histogram("lightyear_corpus_solve_seconds",
		"end-to-end corpus member verification time, by family", nil, "family").
		With(family).Observe(seconds)
}

// DefaultRoster enumerates the standard sweep: ≥30 members interleaved
// across all five families (so any prefix of the roster still covers many
// families), seeds derived from the given base seed, and a planted bug on
// every member cycling through the eight plantable properties.
func DefaultRoster(seed int64) []Member {
	var perFamily [][]Member
	add := func(ms ...Member) { perFamily = append(perFamily, ms) }

	ring := func(i int, size int) Member {
		return Member{Family: "ring", Seed: seed + int64(i), Size: size, Peers: 1 + i%2}
	}
	add(ring(0, 6), ring(1, 9), ring(2, 12), ring(3, 8), ring(4, 10), ring(5, 14), ring(6, 7))
	tree := func(i, depth, fanout int) Member {
		return Member{Family: "tree", Seed: seed + int64(i), Depth: depth, Fanout: fanout}
	}
	add(tree(0, 2, 2), tree(1, 2, 3), tree(2, 3, 2), tree(3, 2, 4), tree(4, 3, 3), tree(5, 4, 2), tree(6, 2, 2))
	ft := func(i, k, peers int) Member {
		return Member{Family: "fattree", Seed: seed + int64(i), K: k, Peers: peers}
	}
	add(ft(0, 4, 1), ft(1, 4, 2), ft(2, 6, 1), ft(3, 4, 1), ft(4, 6, 2))
	wax := func(i, size, degree int) Member {
		return Member{Family: "waxman", Seed: seed + int64(i), Size: size, Degree: degree, Regions: i % 3}
	}
	add(wax(0, 10, 3), wax(1, 14, 3), wax(2, 18, 4), wax(3, 12, 2), wax(4, 16, 3), wax(5, 20, 4), wax(6, 11, 3))
	zoo := func(i int, graph string) Member {
		return Member{Family: "zoo", Seed: seed + int64(i), Graph: graph, Peers: 1 + i%2}
	}
	add(zoo(0, "abilene"), zoo(1, "nsfnet"), zoo(2, "abilene"), zoo(3, "nsfnet"))

	// Interleave round-robin and cycle the planted bug.
	var out []Member
	for i := 0; ; i++ {
		done := true
		for _, fam := range perFamily {
			if i < len(fam) {
				out = append(out, fam[i])
				done = false
			}
		}
		if done {
			break
		}
	}
	bugs := BugNames()
	for i := range out {
		out[i].Bug = bugs[i%len(bugs)]
	}
	return out
}

// sortedKeys is a tiny helper shared by the emitters.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
