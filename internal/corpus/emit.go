package corpus

import (
	"fmt"
	"strings"

	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

// The policy-template layer: every corpus member binds the same "hygiene"
// template — each external peer session imports through the §6.1
// eleven-filter map (eight deny clauses, one normalizing permit), exports
// filter reused space — emitted in the internal/config DSL. Internal
// sessions carry no maps (implicit permit-all), which preserves the
// FromPeer ⇒ Q invariants the wan-peering suite checks, so the registry
// properties instantiate over any member.
//
// Emission is append-only over deterministic iteration (graph order,
// session order), so the text is a pure function of the member: the
// byte-identical regeneration guarantee of the corpus format.

// peerImportSeqs are the hygiene clauses in emission order; bugClauses in
// corpus.go names the property each one enforces.
const permitSeq = 90

// emitDSL renders the member's configuration. gt, when non-nil, plants the
// member's bug syntactically: the enforcing deny clause of gt.Property is
// left out of the import map on gt.Session — the same post-state
// netgen.ApplyMutation produces from the clean text.
func emitDSL(m Member, g *graph, gt *GroundTruth) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# corpus member %s (generated)\n", m.Ref())
	fmt.Fprintf(&b, "# family %s: %d routers, %d links, %d peer sessions\n",
		m.Family, len(g.routers), len(g.links), len(g.peerSessions()))

	for _, r := range g.routers {
		fmt.Fprintf(&b, "node %s { as %d role %s", r.id, netgen.WANLocalAS, r.role)
		if r.region != "" {
			fmt.Fprintf(&b, " region %s", r.region)
		}
		b.WriteString(" }\n")
	}
	sessions := g.peerSessions()
	for i, s := range sessions {
		fmt.Fprintf(&b, "external %s { as %d role peer }\n", s.From, 3000+i)
	}
	b.WriteString("\n")
	for _, ln := range g.links {
		fmt.Fprintf(&b, "peering %s %s\n", g.routers[ln[0]].id, g.routers[ln[1]].id)
	}
	for _, s := range sessions {
		fmt.Fprintf(&b, "peering %s %s\n", s.From, s.To)
	}

	b.WriteString("\nprefix-list reused { 10.128.0.0/9 ge 9 le 28 }\n")
	b.WriteString("prefix-list bogons {\n  0.0.0.0/8 ge 8 le 32\n  127.0.0.0/8 ge 8 le 32\n  169.254.0.0/16 ge 16 le 32\n  192.0.2.0/24 ge 24 le 32\n  224.0.0.0/4 ge 4 le 32\n}\n")
	b.WriteString("prefix-list class-e { 240.0.0.0/4 ge 4 le 32 }\n")
	b.WriteString("prefix-list default-route { 0.0.0.0/0 }\n\n")

	for _, s := range sessions {
		emitPeerImport(&b, s, gt)
		name := "exp-" + string(s.From)
		fmt.Fprintf(&b, "route-map %s {\n  term 10 deny { match prefix-list reused }\n  term 20 permit { }\n}\n", name)
		fmt.Fprintf(&b, "export %s -> %s map %s\n", s.To, s.From, name)
	}
	return b.String()
}

// emitPeerImport renders one session's hygiene import map and binding.
func emitPeerImport(b *strings.Builder, s topology.Edge, gt *GroundTruth) {
	skip := 0
	if gt != nil && gt.Session == s {
		skip = gt.Mutation.Seq
	}
	name := "imp-" + string(s.From)
	fmt.Fprintf(b, "route-map %s {\n", name)
	clauses := []struct {
		seq   int
		match string
	}{
		{10, "prefix-list bogons"},
		{20, "prefix-list class-e"},
		{30, "prefix-list default-route"},
		{40, "prefix-list reused"},
		{50, "plen >= 25"},
		{60, "not pathlen <= 30"},
		{70, fmt.Sprintf("path-contains %d", netgen.PrivateASN)},
		{80, fmt.Sprintf("path-contains %d", netgen.WANLocalAS)},
	}
	for _, c := range clauses {
		if c.seq == skip {
			continue
		}
		fmt.Fprintf(b, "  term %d deny { match %s }\n", c.seq, c.match)
	}
	fmt.Fprintf(b, "  term %d permit {\n    set community none\n    set local-pref %d\n    set med %d\n  }\n}\n",
		permitSeq, netgen.PeerLocalPref, netgen.PeerMED)
	fmt.Fprintf(b, "import %s -> %s map %s\n", s.From, s.To, name)
}
