// Package spec provides the specification language of Lightyear: predicates
// over BGP routes. A predicate is the formal counterpart of the sets of
// routes P, I_ℓ and C_i from §4 and §5 of the paper — the end-to-end
// property, per-location network invariants, and path constraints are all
// route predicates.
//
// Every predicate has two semantics that must agree:
//
//   - a concrete semantics (Eval) over routemodel.Route, used by the BGP
//     simulator and for counterexample validation, and
//   - a symbolic semantics (Compile) that produces an smt.Term over a
//     SymRoute, used by the verifier's local checks.
//
// The package also defines SymRoute, the symbolic route representation: one
// SMT variable per modeled attribute, with communities, AS numbers, and
// ghost attributes finitized to the Universe that appears in the
// configurations and specifications (the standard encoding used by SMT-based
// control-plane verifiers such as Minesweeper).
package spec

import (
	"fmt"
	"sort"

	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
)

// Attribute bit widths for the symbolic encoding. Widths are chosen to keep
// bit-blasted formulas small while covering the value ranges the encoded
// policies can produce.
const (
	WidthAddr      = 32
	WidthPrefixLen = 6
	WidthLocalPref = 16
	WidthMED       = 16
	WidthNextHop   = 16
	WidthPathLen   = 8
)

// Universe is the finite alphabet of route attributes relevant to a
// verification problem: every community, AS number, and ghost attribute
// mentioned by the configurations or the specifications. Routes are encoded
// relative to a Universe; attributes outside it cannot affect any check
// (see the universe-closure property test).
type Universe struct {
	comms  map[routemodel.Community]struct{}
	asns   map[uint32]struct{}
	ghosts map[string]struct{}
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{
		comms:  make(map[routemodel.Community]struct{}),
		asns:   make(map[uint32]struct{}),
		ghosts: make(map[string]struct{}),
	}
}

// AddCommunity adds a community to the universe.
func (u *Universe) AddCommunity(c routemodel.Community) { u.comms[c] = struct{}{} }

// AddASN adds an AS number to the universe.
func (u *Universe) AddASN(as uint32) { u.asns[as] = struct{}{} }

// AddGhost adds a ghost attribute name to the universe.
func (u *Universe) AddGhost(name string) { u.ghosts[name] = struct{}{} }

// Merge adds all members of o into u.
func (u *Universe) Merge(o *Universe) {
	for c := range o.comms {
		u.comms[c] = struct{}{}
	}
	for a := range o.asns {
		u.asns[a] = struct{}{}
	}
	for g := range o.ghosts {
		u.ghosts[g] = struct{}{}
	}
}

// Communities returns the communities in deterministic order.
func (u *Universe) Communities() []routemodel.Community {
	out := make([]routemodel.Community, 0, len(u.comms))
	for c := range u.comms {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ASNs returns the AS numbers in deterministic order.
func (u *Universe) ASNs() []uint32 {
	out := make([]uint32, 0, len(u.asns))
	for a := range u.asns {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ghosts returns the ghost attribute names in deterministic order.
func (u *Universe) Ghosts() []string {
	out := make([]string, 0, len(u.ghosts))
	for g := range u.ghosts {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// HasCommunity reports whether c is in the universe.
func (u *Universe) HasCommunity(c routemodel.Community) bool {
	_, ok := u.comms[c]
	return ok
}

// SymRoute is a symbolic BGP route: each attribute is an SMT term. A fresh
// SymRoute (NewSymRoute) has one variable per attribute; route maps
// transform SymRoutes into derived SymRoutes whose attributes are arbitrary
// term expressions.
type SymRoute struct {
	Ctx *smt.Context

	Addr      *smt.Term // 32-bit prefix address
	PrefixLen *smt.Term // 6-bit prefix length
	LocalPref *smt.Term
	MED       *smt.Term
	NextHop   *smt.Term
	PathLen   *smt.Term // AS-path length (8 bits)

	Comm  map[routemodel.Community]*smt.Term // membership booleans
	HasAS map[uint32]*smt.Term               // AS-path presence booleans
	Ghost map[string]*smt.Term               // ghost attribute booleans

	name string
}

// NewSymRoute allocates a fully symbolic route named name ("r", "r_in", ...)
// over the given universe.
func NewSymRoute(ctx *smt.Context, name string, u *Universe) *SymRoute {
	sr := &SymRoute{
		Ctx:       ctx,
		Addr:      ctx.BVVar(name+".addr", WidthAddr),
		PrefixLen: ctx.BVVar(name+".plen", WidthPrefixLen),
		LocalPref: ctx.BVVar(name+".lp", WidthLocalPref),
		MED:       ctx.BVVar(name+".med", WidthMED),
		NextHop:   ctx.BVVar(name+".nh", WidthNextHop),
		PathLen:   ctx.BVVar(name+".pathlen", WidthPathLen),
		Comm:      make(map[routemodel.Community]*smt.Term),
		HasAS:     make(map[uint32]*smt.Term),
		Ghost:     make(map[string]*smt.Term),
		name:      name,
	}
	for _, c := range u.Communities() {
		sr.Comm[c] = ctx.BoolVar(fmt.Sprintf("%s.comm[%s]", name, c))
	}
	for _, a := range u.ASNs() {
		sr.HasAS[a] = ctx.BoolVar(fmt.Sprintf("%s.as[%d]", name, a))
	}
	for _, g := range u.Ghosts() {
		sr.Ghost[g] = ctx.BoolVar(fmt.Sprintf("%s.ghost[%s]", name, g))
	}
	return sr
}

// Name returns the base name used for this route's variables.
func (sr *SymRoute) Name() string { return sr.name }

// Clone returns a shallow copy whose attribute maps can be independently
// reassigned (route-map encoding mutates the copy's fields).
func (sr *SymRoute) Clone() *SymRoute {
	c := *sr
	c.Comm = make(map[routemodel.Community]*smt.Term, len(sr.Comm))
	for k, v := range sr.Comm {
		c.Comm[k] = v
	}
	c.HasAS = make(map[uint32]*smt.Term, len(sr.HasAS))
	for k, v := range sr.HasAS {
		c.HasAS[k] = v
	}
	c.Ghost = make(map[string]*smt.Term, len(sr.Ghost))
	for k, v := range sr.Ghost {
		c.Ghost[k] = v
	}
	return &c
}

// CommTerm returns the membership term for community c, panicking if c is
// outside the universe the route was built over (an encoding bug).
func (sr *SymRoute) CommTerm(c routemodel.Community) *smt.Term {
	t, ok := sr.Comm[c]
	if !ok {
		panic(fmt.Sprintf("spec: community %s not in universe of route %q", c, sr.name))
	}
	return t
}

// GhostTerm returns the term for ghost attribute name, panicking if it is
// outside the universe.
func (sr *SymRoute) GhostTerm(name string) *smt.Term {
	t, ok := sr.Ghost[name]
	if !ok {
		panic(fmt.Sprintf("spec: ghost attribute %q not in universe of route %q", name, sr.name))
	}
	return t
}

// ASTerm returns the AS-presence term for as, panicking if it is outside
// the universe.
func (sr *SymRoute) ASTerm(as uint32) *smt.Term {
	t, ok := sr.HasAS[as]
	if !ok {
		panic(fmt.Sprintf("spec: AS %d not in universe of route %q", as, sr.name))
	}
	return t
}

// Ite returns the attribute-wise if-then-else of two symbolic routes. Both
// routes must be over the same universe.
func Ite(cond *smt.Term, a, b *SymRoute) *SymRoute {
	ctx := a.Ctx
	out := a.Clone()
	out.Addr = ctx.Ite(cond, a.Addr, b.Addr)
	out.PrefixLen = ctx.Ite(cond, a.PrefixLen, b.PrefixLen)
	out.LocalPref = ctx.Ite(cond, a.LocalPref, b.LocalPref)
	out.MED = ctx.Ite(cond, a.MED, b.MED)
	out.NextHop = ctx.Ite(cond, a.NextHop, b.NextHop)
	out.PathLen = ctx.Ite(cond, a.PathLen, b.PathLen)
	for k := range out.Comm {
		out.Comm[k] = ctx.Ite(cond, a.Comm[k], b.Comm[k])
	}
	for k := range out.HasAS {
		out.HasAS[k] = ctx.Ite(cond, a.HasAS[k], b.HasAS[k])
	}
	for k := range out.Ghost {
		out.Ghost[k] = ctx.Ite(cond, a.Ghost[k], b.Ghost[k])
	}
	return out
}

// WellFormed returns the structural validity constraint for a symbolic
// route: the prefix length is at most 32. Checks assert it so that
// counterexample models describe real IPv4 routes.
func (sr *SymRoute) WellFormed() *smt.Term {
	return sr.Ctx.Ule(sr.PrefixLen, sr.Ctx.BV(32, WidthPrefixLen))
}

// ConcreteRoute reconstructs a concrete route from a model for a SymRoute
// whose attributes are plain variables (i.e., one built by NewSymRoute).
// It is used to turn SAT models of failed checks into counterexample routes.
func (sr *SymRoute) ConcreteRoute(m *smt.Model) *routemodel.Route {
	r := routemodel.NewRoute(routemodel.Prefix{
		Addr: uint32(m.BV(sr.name + ".addr")),
		Len:  uint8(m.BV(sr.name + ".plen")),
	})
	r.Prefix = r.Prefix.Canonical()
	r.LocalPref = uint32(m.BV(sr.name + ".lp"))
	r.MED = uint32(m.BV(sr.name + ".med"))
	r.NextHop = uint32(m.BV(sr.name + ".nh"))
	for c := range sr.Comm {
		if m.Bool(fmt.Sprintf("%s.comm[%s]", sr.name, c)) {
			r.AddCommunity(c)
		}
	}
	var path []uint32
	for as := range sr.HasAS {
		if m.Bool(fmt.Sprintf("%s.as[%d]", sr.name, as)) {
			path = append(path, as)
		}
	}
	sort.Slice(path, func(i, j int) bool { return path[i] < path[j] })
	// Pad to the model's path length so PathLen-sensitive predicates agree.
	plen := int(m.BV(sr.name + ".pathlen"))
	for len(path) < plen {
		if len(path) == 0 {
			path = append(path, 64512) // filler private AS
		} else {
			path = append(path, path[len(path)-1])
		}
	}
	r.ASPath = path
	for g := range sr.Ghost {
		if m.Bool(fmt.Sprintf("%s.ghost[%s]", sr.name, g)) {
			r.SetGhost(g, true)
		}
	}
	return r
}
