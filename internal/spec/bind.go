package spec

import (
	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
)

// Constrain returns a formula forcing the symbolic route sr to equal the
// concrete route r, for all attributes in sr's universe. It is used to
// validate counterexamples against the symbolic encoding and by the
// concrete/symbolic agreement tests.
//
// Attributes of r outside sr's universe (e.g. a community that appears in
// neither the configurations nor the specifications) cannot be represented
// and are ignored; by the universe-closure property they cannot affect any
// check verdict.
func Constrain(sr *SymRoute, r *routemodel.Route) *smt.Term {
	ctx := sr.Ctx
	conj := []*smt.Term{
		ctx.Eq(sr.Addr, ctx.BV(uint64(r.Prefix.Addr), WidthAddr)),
		ctx.Eq(sr.PrefixLen, ctx.BV(uint64(r.Prefix.Len), WidthPrefixLen)),
		ctx.Eq(sr.LocalPref, ctx.BV(uint64(r.LocalPref), WidthLocalPref)),
		ctx.Eq(sr.MED, ctx.BV(uint64(r.MED), WidthMED)),
		ctx.Eq(sr.NextHop, ctx.BV(uint64(r.NextHop), WidthNextHop)),
		ctx.Eq(sr.PathLen, ctx.BV(uint64(len(r.ASPath)), WidthPathLen)),
	}
	for c, t := range sr.Comm {
		conj = append(conj, ctx.Iff(t, ctx.Bool(r.HasCommunity(c))))
	}
	for as, t := range sr.HasAS {
		conj = append(conj, ctx.Iff(t, ctx.Bool(r.PathContains(as))))
	}
	for g, t := range sr.Ghost {
		conj = append(conj, ctx.Iff(t, ctx.Bool(r.GhostValue(g))))
	}
	return ctx.And(conj...)
}
