package spec

import (
	"fmt"

	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
)

// Named wraps a predicate with a compact rendering: String returns the given
// name instead of the (possibly huge) structural form. Check keys and reports
// use Pred.String, so naming a large predicate keeps keys short and stable
// while leaving Eval/Compile untouched. Named predicates survive wire
// encoding with their name, so remote solves produce identical check keys.
func Named(name string, p Pred) Pred { return namedPred{p: p, name: name} }

type namedPred struct {
	p    Pred
	name string
}

func (n namedPred) Eval(r *routemodel.Route) bool  { return n.p.Eval(r) }
func (n namedPred) Compile(sr *SymRoute) *smt.Term { return n.p.Compile(sr) }
func (n namedPred) String() string                 { return n.name }
func (n namedPred) AddToUniverse(u *Universe)      { n.p.AddToUniverse(u) }

// PredWire is the serializable form of a Pred: a tagged union keyed by Op,
// mirroring the closed set of predicate constructors in this package. It is
// the JSON shape shipped to remote solver workers; EncodePred and
// (*PredWire).Pred round-trip every predicate built from exported
// constructors, preserving String() (and therefore check keys) exactly.
type PredWire struct {
	// Op tags the node: "true", "false", "not", "and", "or", "implies",
	// "named", "comm", "prefix_in", "prefix_eq", "plen_le", "plen_ge",
	// "lp", "med", "ghost", "path_contains", "pathlen_le", "nh".
	Op string `json:"op"`

	// Args holds sub-predicates for not/and/or/implies/named.
	Args []*PredWire `json:"args,omitempty"`
	// Name carries the ghost name ("ghost") or display name ("named").
	Name string `json:"name,omitempty"`
	// U32 carries the scalar operand: community bits, local-pref, MED,
	// next-hop, ASN, or path-length bound.
	U32 uint32 `json:"u32,omitempty"`
	// U8 carries prefix-length bounds for plen_le / plen_ge.
	U8 uint8 `json:"u8,omitempty"`
	// Cmp is the comparison mode for lp/med: "eq", "ge", or "le".
	Cmp string `json:"cmp,omitempty"`
	// Prefix carries the prefix operand for prefix_eq ("a.b.c.d/len").
	Prefix string `json:"prefix,omitempty"`
	// Entries carries prefix-set entries for prefix_in.
	Entries []PrefixRangeWire `json:"entries,omitempty"`
}

// PrefixRangeWire is the serializable form of one prefix-set entry.
type PrefixRangeWire struct {
	Prefix string `json:"prefix"`
	Ge     uint8  `json:"ge"`
	Le     uint8  `json:"le"`
}

// EncodePred converts a predicate to its wire form. It fails on predicate
// implementations defined outside this package, which have no wire tag;
// callers should treat that as "not remotable" and solve locally.
func EncodePred(p Pred) (*PredWire, error) {
	switch q := p.(type) {
	case truePred:
		return &PredWire{Op: "true"}, nil
	case falsePred:
		return &PredWire{Op: "false"}, nil
	case notPred:
		arg, err := EncodePred(q.p)
		if err != nil {
			return nil, err
		}
		return &PredWire{Op: "not", Args: []*PredWire{arg}}, nil
	case andPred:
		args, err := encodePreds([]Pred(q))
		if err != nil {
			return nil, err
		}
		return &PredWire{Op: "and", Args: args}, nil
	case orPred:
		args, err := encodePreds([]Pred(q))
		if err != nil {
			return nil, err
		}
		return &PredWire{Op: "or", Args: args}, nil
	case impliesPred:
		args, err := encodePreds([]Pred{q.a, q.b})
		if err != nil {
			return nil, err
		}
		return &PredWire{Op: "implies", Args: args}, nil
	case namedPred:
		arg, err := EncodePred(q.p)
		if err != nil {
			return nil, err
		}
		return &PredWire{Op: "named", Name: q.name, Args: []*PredWire{arg}}, nil
	case hasCommPred:
		return &PredWire{Op: "comm", U32: uint32(q.c)}, nil
	case prefixInPred:
		entries := make([]PrefixRangeWire, 0, len(q.s.Entries()))
		for _, e := range q.s.Entries() {
			entries = append(entries, PrefixRangeWire{Prefix: e.Prefix.String(), Ge: e.Ge, Le: e.Le})
		}
		return &PredWire{Op: "prefix_in", Entries: entries}, nil
	case prefixEqPred:
		return &PredWire{Op: "prefix_eq", Prefix: q.p.String()}, nil
	case plenCmpPred:
		if q.atMost {
			return &PredWire{Op: "plen_le", U8: q.n}, nil
		}
		return &PredWire{Op: "plen_ge", U8: q.n}, nil
	case lpPred:
		return &PredWire{Op: "lp", U32: q.v, Cmp: q.mode.wire()}, nil
	case medPred:
		return &PredWire{Op: "med", U32: q.v, Cmp: q.mode.wire()}, nil
	case ghostPred:
		return &PredWire{Op: "ghost", Name: q.name}, nil
	case pathContainsPred:
		return &PredWire{Op: "path_contains", U32: q.as}, nil
	case pathLenPred:
		return &PredWire{Op: "pathlen_le", U32: uint32(q.n)}, nil
	case nhPred:
		return &PredWire{Op: "nh", U32: q.v}, nil
	default:
		return nil, fmt.Errorf("spec: predicate %T has no wire form", p)
	}
}

func encodePreds(ps []Pred) ([]*PredWire, error) {
	out := make([]*PredWire, len(ps))
	for i, p := range ps {
		w, err := EncodePred(p)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

func (m cmpMode) wire() string {
	switch m {
	case cmpEq:
		return "eq"
	case cmpGe:
		return "ge"
	default:
		return "le"
	}
}

func cmpModeFromWire(s string) (cmpMode, error) {
	switch s {
	case "eq":
		return cmpEq, nil
	case "ge":
		return cmpGe, nil
	case "le":
		return cmpLe, nil
	default:
		return cmpEq, fmt.Errorf("spec: bad comparison mode %q", s)
	}
}

// Pred reconstructs the predicate a wire node describes.
func (w *PredWire) Pred() (Pred, error) {
	if w == nil {
		return nil, fmt.Errorf("spec: nil predicate wire node")
	}
	switch w.Op {
	case "true":
		return True(), nil
	case "false":
		return False(), nil
	case "not":
		args, err := w.decodeArgs(1)
		if err != nil {
			return nil, err
		}
		return Not(args[0]), nil
	case "and":
		args, err := w.decodeArgs(-1)
		if err != nil {
			return nil, err
		}
		return And(args...), nil
	case "or":
		args, err := w.decodeArgs(-1)
		if err != nil {
			return nil, err
		}
		return Or(args...), nil
	case "implies":
		args, err := w.decodeArgs(2)
		if err != nil {
			return nil, err
		}
		return Implies(args[0], args[1]), nil
	case "named":
		args, err := w.decodeArgs(1)
		if err != nil {
			return nil, err
		}
		return Named(w.Name, args[0]), nil
	case "comm":
		return HasCommunity(routemodel.Community(w.U32)), nil
	case "prefix_in":
		set := routemodel.NewPrefixSet()
		for _, e := range w.Entries {
			p, err := routemodel.ParsePrefix(e.Prefix)
			if err != nil {
				return nil, fmt.Errorf("spec: prefix_in entry: %w", err)
			}
			set.AddRange(p, e.Ge, e.Le)
		}
		return PrefixIn(set), nil
	case "prefix_eq":
		p, err := routemodel.ParsePrefix(w.Prefix)
		if err != nil {
			return nil, fmt.Errorf("spec: prefix_eq: %w", err)
		}
		return PrefixEquals(p), nil
	case "plen_le":
		return PrefixLenAtMost(w.U8), nil
	case "plen_ge":
		return PrefixLenAtLeast(w.U8), nil
	case "lp":
		mode, err := cmpModeFromWire(w.Cmp)
		if err != nil {
			return nil, err
		}
		return lpPred{v: w.U32, mode: mode}, nil
	case "med":
		mode, err := cmpModeFromWire(w.Cmp)
		if err != nil {
			return nil, err
		}
		return medPred{v: w.U32, mode: mode}, nil
	case "ghost":
		return Ghost(w.Name), nil
	case "path_contains":
		return PathContains(w.U32), nil
	case "pathlen_le":
		return PathLenAtMost(int(w.U32)), nil
	case "nh":
		return NextHopEquals(w.U32), nil
	default:
		return nil, fmt.Errorf("spec: unknown predicate op %q", w.Op)
	}
}

func (w *PredWire) decodeArgs(want int) ([]Pred, error) {
	if want >= 0 && len(w.Args) != want {
		return nil, fmt.Errorf("spec: op %q wants %d args, got %d", w.Op, want, len(w.Args))
	}
	out := make([]Pred, len(w.Args))
	for i, a := range w.Args {
		p, err := a.Pred()
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// UniverseWire is the serializable form of a Universe: the sorted attribute
// vocabularies that size the symbolic route encoding. Shipping it verbatim
// keeps worker-side encodings (and their variable counts) identical to the
// coordinator's.
type UniverseWire struct {
	Communities []uint32 `json:"communities,omitempty"`
	ASNs        []uint32 `json:"asns,omitempty"`
	Ghosts      []string `json:"ghosts,omitempty"`
}

// EncodeUniverse converts a universe to its wire form.
func EncodeUniverse(u *Universe) *UniverseWire {
	if u == nil {
		return nil
	}
	w := &UniverseWire{ASNs: u.ASNs(), Ghosts: u.Ghosts()}
	for _, c := range u.Communities() {
		w.Communities = append(w.Communities, uint32(c))
	}
	return w
}

// Universe reconstructs the universe a wire form describes.
func (w *UniverseWire) Universe() *Universe {
	u := NewUniverse()
	if w == nil {
		return u
	}
	for _, c := range w.Communities {
		u.AddCommunity(routemodel.Community(c))
	}
	for _, a := range w.ASNs {
		u.AddASN(a)
	}
	for _, g := range w.Ghosts {
		u.AddGhost(g)
	}
	return u
}
