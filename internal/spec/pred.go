package spec

import (
	"fmt"
	"strings"

	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
)

// Pred is a predicate over BGP routes with both a concrete semantics (Eval)
// and a symbolic semantics (Compile). The two must agree: for every route r
// and model m describing r, Eval(r) == (Compile(sr) evaluates true under m).
// This agreement is checked by property tests.
type Pred interface {
	// Eval decides the predicate on a concrete route.
	Eval(r *routemodel.Route) bool
	// Compile produces the SMT encoding of the predicate over a symbolic route.
	Compile(sr *SymRoute) *smt.Term
	// String renders the predicate for reports.
	String() string
	// AddToUniverse records every community/ASN/ghost the predicate mentions.
	AddToUniverse(u *Universe)
}

// True is the predicate satisfied by every route. Per §4.1, it is the
// invariant used for edges from external neighbors ("no assumption is made
// about routes coming from outside the network").
func True() Pred { return truePred{} }

type truePred struct{}

func (truePred) Eval(*routemodel.Route) bool    { return true }
func (truePred) Compile(sr *SymRoute) *smt.Term { return sr.Ctx.True() }
func (truePred) String() string                 { return "true" }
func (truePred) AddToUniverse(*Universe)        {}

// False is the predicate satisfied by no route.
func False() Pred { return falsePred{} }

type falsePred struct{}

func (falsePred) Eval(*routemodel.Route) bool    { return false }
func (falsePred) Compile(sr *SymRoute) *smt.Term { return sr.Ctx.False() }
func (falsePred) String() string                 { return "false" }
func (falsePred) AddToUniverse(*Universe)        {}

// Not negates a predicate.
func Not(p Pred) Pred { return notPred{p} }

type notPred struct{ p Pred }

func (n notPred) Eval(r *routemodel.Route) bool  { return !n.p.Eval(r) }
func (n notPred) Compile(sr *SymRoute) *smt.Term { return sr.Ctx.Not(n.p.Compile(sr)) }
func (n notPred) String() string                 { return "!(" + n.p.String() + ")" }
func (n notPred) AddToUniverse(u *Universe)      { n.p.AddToUniverse(u) }

// And is the conjunction of predicates; And() is True.
func And(ps ...Pred) Pred { return andPred(ps) }

type andPred []Pred

func (a andPred) Eval(r *routemodel.Route) bool {
	for _, p := range a {
		if !p.Eval(r) {
			return false
		}
	}
	return true
}

func (a andPred) Compile(sr *SymRoute) *smt.Term {
	ts := make([]*smt.Term, len(a))
	for i, p := range a {
		ts[i] = p.Compile(sr)
	}
	return sr.Ctx.And(ts...)
}

func (a andPred) String() string { return joinPreds([]Pred(a), " && ", "true") }

func (a andPred) AddToUniverse(u *Universe) {
	for _, p := range a {
		p.AddToUniverse(u)
	}
}

// Or is the disjunction of predicates; Or() is False.
func Or(ps ...Pred) Pred { return orPred(ps) }

type orPred []Pred

func (o orPred) Eval(r *routemodel.Route) bool {
	for _, p := range o {
		if p.Eval(r) {
			return true
		}
	}
	return false
}

func (o orPred) Compile(sr *SymRoute) *smt.Term {
	ts := make([]*smt.Term, len(o))
	for i, p := range o {
		ts[i] = p.Compile(sr)
	}
	return sr.Ctx.Or(ts...)
}

func (o orPred) String() string { return joinPreds([]Pred(o), " || ", "false") }

func (o orPred) AddToUniverse(u *Universe) {
	for _, p := range o {
		p.AddToUniverse(u)
	}
}

func joinPreds(ps []Pred, sep, empty string) string {
	if len(ps) == 0 {
		return empty
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Implies returns a => b.
func Implies(a, b Pred) Pred { return impliesPred{a, b} }

type impliesPred struct{ a, b Pred }

func (i impliesPred) Eval(r *routemodel.Route) bool { return !i.a.Eval(r) || i.b.Eval(r) }
func (i impliesPred) Compile(sr *SymRoute) *smt.Term {
	return sr.Ctx.Implies(i.a.Compile(sr), i.b.Compile(sr))
}
func (i impliesPred) String() string { return "(" + i.a.String() + ") => (" + i.b.String() + ")" }
func (i impliesPred) AddToUniverse(u *Universe) {
	i.a.AddToUniverse(u)
	i.b.AddToUniverse(u)
}

// HasCommunity is satisfied by routes tagged with community c.
func HasCommunity(c routemodel.Community) Pred { return hasCommPred{c} }

type hasCommPred struct{ c routemodel.Community }

func (h hasCommPred) Eval(r *routemodel.Route) bool  { return r.HasCommunity(h.c) }
func (h hasCommPred) Compile(sr *SymRoute) *smt.Term { return sr.CommTerm(h.c) }
func (h hasCommPred) String() string                 { return fmt.Sprintf("%s in comm", h.c) }
func (h hasCommPred) AddToUniverse(u *Universe)      { u.AddCommunity(h.c) }

// HasAnyCommunity is satisfied when the route carries at least one of cs.
func HasAnyCommunity(cs ...routemodel.Community) Pred {
	ps := make([]Pred, len(cs))
	for i, c := range cs {
		ps[i] = HasCommunity(c)
	}
	return Or(ps...)
}

// OnlyCommunityAmong is satisfied when, restricted to the candidate set cs,
// the route carries exactly the community c and no other member of cs. This
// expresses the paper's "RegionalComms ∩ Comm(r) = {C}" constraint from
// Table 4b.
func OnlyCommunityAmong(cs []routemodel.Community, c routemodel.Community) Pred {
	ps := []Pred{HasCommunity(c)}
	for _, o := range cs {
		if o != c {
			ps = append(ps, Not(HasCommunity(o)))
		}
	}
	return And(ps...)
}

// NoCommunityAmong is satisfied when the route carries none of cs
// ("RegionalComms ∩ Comm(r) = ∅").
func NoCommunityAmong(cs []routemodel.Community) Pred {
	ps := make([]Pred, len(cs))
	for i, c := range cs {
		ps[i] = Not(HasCommunity(c))
	}
	return And(ps...)
}

// PrefixIn is satisfied by routes whose prefix matches the prefix set
// (prefix-list semantics with ge/le windows). Used for bogon lists and the
// ReusedIPs set of §6.1.
func PrefixIn(s *routemodel.PrefixSet) Pred { return prefixInPred{s} }

type prefixInPred struct{ s *routemodel.PrefixSet }

func (p prefixInPred) Eval(r *routemodel.Route) bool { return p.s.Matches(r.Prefix) }

func (p prefixInPred) Compile(sr *SymRoute) *smt.Term {
	ctx := sr.Ctx
	var alts []*smt.Term
	for _, e := range p.s.Entries() {
		var conj []*smt.Term
		if e.Prefix.Len > 0 {
			n := int(e.Prefix.Len)
			hi := ctx.Extract(sr.Addr, 32-n, n)
			conj = append(conj, ctx.Eq(hi, ctx.BV(uint64(e.Prefix.Addr>>(32-uint(n))), n)))
		}
		conj = append(conj,
			ctx.Ule(ctx.BV(uint64(e.Ge), WidthPrefixLen), sr.PrefixLen),
			ctx.Ule(sr.PrefixLen, ctx.BV(uint64(e.Le), WidthPrefixLen)),
		)
		alts = append(alts, ctx.And(conj...))
	}
	return ctx.Or(alts...)
}

func (p prefixInPred) String() string {
	var parts []string
	for _, e := range p.s.Entries() {
		if e.Ge == e.Prefix.Len && e.Le == e.Prefix.Len {
			parts = append(parts, e.Prefix.String())
		} else {
			parts = append(parts, fmt.Sprintf("%s ge %d le %d", e.Prefix, e.Ge, e.Le))
		}
	}
	return "prefix in {" + strings.Join(parts, ", ") + "}"
}

func (prefixInPred) AddToUniverse(*Universe) {}

// PrefixEquals is satisfied by routes announcing exactly prefix p.
func PrefixEquals(p routemodel.Prefix) Pred { return prefixEqPred{p.Canonical()} }

type prefixEqPred struct{ p routemodel.Prefix }

func (e prefixEqPred) Eval(r *routemodel.Route) bool { return r.Prefix.Canonical() == e.p }

func (e prefixEqPred) Compile(sr *SymRoute) *smt.Term {
	ctx := sr.Ctx
	return ctx.And(
		ctx.Eq(sr.Addr, ctx.BV(uint64(e.p.Addr), WidthAddr)),
		ctx.Eq(sr.PrefixLen, ctx.BV(uint64(e.p.Len), WidthPrefixLen)),
	)
}

func (e prefixEqPred) String() string        { return "prefix = " + e.p.String() }
func (prefixEqPred) AddToUniverse(*Universe) {}

// PrefixLenAtMost is satisfied when the route's prefix length <= n.
func PrefixLenAtMost(n uint8) Pred { return plenCmpPred{n: n, atMost: true} }

// PrefixLenAtLeast is satisfied when the route's prefix length >= n.
func PrefixLenAtLeast(n uint8) Pred { return plenCmpPred{n: n, atMost: false} }

type plenCmpPred struct {
	n      uint8
	atMost bool
}

func (p plenCmpPred) Eval(r *routemodel.Route) bool {
	if p.atMost {
		return r.Prefix.Len <= p.n
	}
	return r.Prefix.Len >= p.n
}

func (p plenCmpPred) Compile(sr *SymRoute) *smt.Term {
	ctx := sr.Ctx
	n := ctx.BV(uint64(p.n), WidthPrefixLen)
	if p.atMost {
		return ctx.Ule(sr.PrefixLen, n)
	}
	return ctx.Uge(sr.PrefixLen, n)
}

func (p plenCmpPred) String() string {
	if p.atMost {
		return fmt.Sprintf("plen <= %d", p.n)
	}
	return fmt.Sprintf("plen >= %d", p.n)
}

func (plenCmpPred) AddToUniverse(*Universe) {}

// LocalPrefEquals / LocalPrefAtLeast compare the LOCAL_PREF attribute.
func LocalPrefEquals(v uint32) Pred  { return lpPred{v: v, mode: cmpEq} }
func LocalPrefAtLeast(v uint32) Pred { return lpPred{v: v, mode: cmpGe} }
func LocalPrefAtMost(v uint32) Pred  { return lpPred{v: v, mode: cmpLe} }

type cmpMode int

const (
	cmpEq cmpMode = iota
	cmpGe
	cmpLe
)

type lpPred struct {
	v    uint32
	mode cmpMode
}

func (p lpPred) Eval(r *routemodel.Route) bool { return cmpU32(r.LocalPref, p.v, p.mode) }

func (p lpPred) Compile(sr *SymRoute) *smt.Term {
	return cmpTerm(sr.Ctx, sr.LocalPref, uint64(p.v), WidthLocalPref, p.mode)
}

func (p lpPred) String() string        { return "lp " + p.mode.String() + fmt.Sprint(p.v) }
func (lpPred) AddToUniverse(*Universe) {}

// MEDEquals / MEDAtMost compare the MED attribute.
func MEDEquals(v uint32) Pred { return medPred{v: v, mode: cmpEq} }
func MEDAtMost(v uint32) Pred { return medPred{v: v, mode: cmpLe} }

type medPred struct {
	v    uint32
	mode cmpMode
}

func (p medPred) Eval(r *routemodel.Route) bool { return cmpU32(r.MED, p.v, p.mode) }

func (p medPred) Compile(sr *SymRoute) *smt.Term {
	return cmpTerm(sr.Ctx, sr.MED, uint64(p.v), WidthMED, p.mode)
}

func (p medPred) String() string        { return "med " + p.mode.String() + fmt.Sprint(p.v) }
func (medPred) AddToUniverse(*Universe) {}

func (m cmpMode) String() string {
	switch m {
	case cmpEq:
		return "= "
	case cmpGe:
		return ">= "
	default:
		return "<= "
	}
}

func cmpU32(a, b uint32, m cmpMode) bool {
	switch m {
	case cmpEq:
		return a == b
	case cmpGe:
		return a >= b
	default:
		return a <= b
	}
}

func cmpTerm(ctx *smt.Context, t *smt.Term, v uint64, w int, m cmpMode) *smt.Term {
	c := ctx.BV(v, w)
	switch m {
	case cmpEq:
		return ctx.Eq(t, c)
	case cmpGe:
		return ctx.Uge(t, c)
	default:
		return ctx.Ule(t, c)
	}
}

// Ghost is satisfied when the named ghost attribute is true on the route
// (§4.4). Ghost attributes such as FromISP1 or FromPeer are set by
// per-edge ghost updates configured in the verification problem.
func Ghost(name string) Pred { return ghostPred{name} }

type ghostPred struct{ name string }

func (g ghostPred) Eval(r *routemodel.Route) bool  { return r.GhostValue(g.name) }
func (g ghostPred) Compile(sr *SymRoute) *smt.Term { return sr.GhostTerm(g.name) }
func (g ghostPred) String() string                 { return g.name }
func (g ghostPred) AddToUniverse(u *Universe)      { u.AddGhost(g.name) }

// PathContains is satisfied when the AS path includes as.
func PathContains(as uint32) Pred { return pathContainsPred{as} }

type pathContainsPred struct{ as uint32 }

func (p pathContainsPred) Eval(r *routemodel.Route) bool  { return r.PathContains(p.as) }
func (p pathContainsPred) Compile(sr *SymRoute) *smt.Term { return sr.ASTerm(p.as) }
func (p pathContainsPred) String() string                 { return fmt.Sprintf("%d in path", p.as) }
func (p pathContainsPred) AddToUniverse(u *Universe)      { u.AddASN(p.as) }

// PathLenAtMost is satisfied when the AS path has at most n hops. Used for
// the "invalid AS path" peering properties (overly long paths are a common
// bogon class).
func PathLenAtMost(n int) Pred { return pathLenPred{n} }

type pathLenPred struct{ n int }

func (p pathLenPred) Eval(r *routemodel.Route) bool { return len(r.ASPath) <= p.n }

func (p pathLenPred) Compile(sr *SymRoute) *smt.Term {
	return sr.Ctx.Ule(sr.PathLen, sr.Ctx.BV(uint64(p.n), WidthPathLen))
}

func (p pathLenPred) String() string        { return fmt.Sprintf("pathlen <= %d", p.n) }
func (pathLenPred) AddToUniverse(*Universe) {}

// NextHopEquals compares the next-hop attribute.
func NextHopEquals(v uint32) Pred { return nhPred{v} }

type nhPred struct{ v uint32 }

func (p nhPred) Eval(r *routemodel.Route) bool { return r.NextHop == p.v }

func (p nhPred) Compile(sr *SymRoute) *smt.Term {
	return sr.Ctx.Eq(sr.NextHop, sr.Ctx.BV(uint64(p.v), WidthNextHop))
}

func (p nhPred) String() string        { return fmt.Sprintf("nh = %d", p.v) }
func (nhPred) AddToUniverse(*Universe) {}
