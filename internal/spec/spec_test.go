package spec

import (
	"math/rand"
	"testing"

	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
)

var (
	c100_1 = routemodel.MustCommunity("100:1")
	c100_2 = routemodel.MustCommunity("100:2")
	c200_1 = routemodel.MustCommunity("200:1")
)

func testUniverse() *Universe {
	u := NewUniverse()
	u.AddCommunity(c100_1)
	u.AddCommunity(c100_2)
	u.AddCommunity(c200_1)
	u.AddASN(65001)
	u.AddASN(174)
	u.AddGhost("FromISP1")
	u.AddGhost("FromPeer")
	return u
}

func TestUniverseDeterministicOrder(t *testing.T) {
	u := testUniverse()
	cs := u.Communities()
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatal("communities not sorted")
		}
	}
	if len(u.ASNs()) != 2 || len(u.Ghosts()) != 2 {
		t.Fatal("universe sizes wrong")
	}
	if !u.HasCommunity(c100_1) || u.HasCommunity(routemodel.MustCommunity("9:9")) {
		t.Fatal("HasCommunity wrong")
	}
}

func TestUniverseMerge(t *testing.T) {
	a := NewUniverse()
	a.AddCommunity(c100_1)
	b := NewUniverse()
	b.AddCommunity(c200_1)
	b.AddGhost("G")
	a.Merge(b)
	if !a.HasCommunity(c200_1) || len(a.Ghosts()) != 1 {
		t.Fatal("merge failed")
	}
}

// evalViaSolver decides p on concrete route r through the symbolic path:
// SAT(Constrain(sr,r) && Compile(p,sr)).
func evalViaSolver(t *testing.T, p Pred, r *routemodel.Route, u *Universe) bool {
	t.Helper()
	ctx := smt.NewContext()
	sr := NewSymRoute(ctx, "r", u)
	res := smt.Solve(ctx, ctx.And(Constrain(sr, r), p.Compile(sr)))
	if res.Status == smt.Unknown {
		t.Fatal("solver returned unknown")
	}
	return res.Status == smt.Sat
}

// randomRoute generates a route whose attribute values fit the symbolic
// widths and whose communities/ASNs are inside the test universe.
func randomRoute(rng *rand.Rand) *routemodel.Route {
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.1.0/24", "8.8.0.0/16", "0.0.0.0/0", "203.0.113.0/24"}
	r := routemodel.NewRoute(routemodel.MustPrefix(prefixes[rng.Intn(len(prefixes))]))
	r.LocalPref = uint32(rng.Intn(1 << 12))
	r.MED = uint32(rng.Intn(1 << 12))
	r.NextHop = uint32(rng.Intn(1 << 12))
	for _, c := range []routemodel.Community{c100_1, c100_2, c200_1} {
		if rng.Intn(2) == 0 {
			r.AddCommunity(c)
		}
	}
	var path []uint32
	if rng.Intn(2) == 0 {
		path = append(path, 65001)
	}
	if rng.Intn(2) == 0 {
		path = append(path, 174)
	}
	for i := rng.Intn(3); i > 0; i-- {
		path = append(path, 65001) // repeats change length but not membership
	}
	r.ASPath = path
	if rng.Intn(2) == 0 {
		r.SetGhost("FromISP1", true)
	}
	if rng.Intn(2) == 0 {
		r.SetGhost("FromPeer", true)
	}
	return r
}

// randomPred generates a predicate over the test universe.
func randomPred(rng *rand.Rand, depth int) Pred {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(10) {
		case 0:
			return HasCommunity(c100_1)
		case 1:
			return HasCommunity(c200_1)
		case 2:
			bog := routemodel.NewPrefixSet(routemodel.MustPrefix("10.0.0.0/8"))
			return PrefixIn(bog)
		case 3:
			s := &routemodel.PrefixSet{}
			s.AddRange(routemodel.MustPrefix("10.0.0.0/8"), 8, 24)
			return PrefixIn(s)
		case 4:
			return Ghost("FromISP1")
		case 5:
			return PathContains(174)
		case 6:
			return LocalPrefAtLeast(uint32(rng.Intn(4096)))
		case 7:
			return MEDAtMost(uint32(rng.Intn(4096)))
		case 8:
			return PathLenAtMost(rng.Intn(5))
		default:
			return PrefixLenAtMost(uint8(rng.Intn(33)))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return And(randomPred(rng, depth-1), randomPred(rng, depth-1))
	case 1:
		return Or(randomPred(rng, depth-1), randomPred(rng, depth-1))
	case 2:
		return Not(randomPred(rng, depth-1))
	default:
		return Implies(randomPred(rng, depth-1), randomPred(rng, depth-1))
	}
}

// TestConcreteSymbolicAgreement is the central soundness test for the spec
// package: Eval and Compile must agree on every route.
func TestConcreteSymbolicAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := testUniverse()
	for iter := 0; iter < 80; iter++ {
		p := randomPred(rng, 3)
		r := randomRoute(rng)
		want := p.Eval(r)
		got := evalViaSolver(t, p, r, u)
		if got != want {
			t.Fatalf("iter %d: Eval=%v solver=%v\npred: %s\nroute: %s", iter, want, got, p, r)
		}
	}
}

func TestBasicPredEval(t *testing.T) {
	r := routemodel.NewRoute(routemodel.MustPrefix("10.1.0.0/16"))
	r.AddCommunity(c100_1)
	r.SetGhost("FromISP1", true)
	r.ASPath = []uint32{174, 3356}
	r.LocalPref = 200

	cases := []struct {
		p    Pred
		want bool
	}{
		{True(), true},
		{False(), false},
		{HasCommunity(c100_1), true},
		{HasCommunity(c200_1), false},
		{Not(HasCommunity(c200_1)), true},
		{And(HasCommunity(c100_1), Ghost("FromISP1")), true},
		{Or(HasCommunity(c200_1), Ghost("FromISP1")), true},
		{Implies(Ghost("FromISP1"), HasCommunity(c100_1)), true},
		{Implies(Ghost("FromISP1"), HasCommunity(c200_1)), false},
		{PathContains(174), true},
		{PathContains(65001), false},
		{PathLenAtMost(2), true},
		{PathLenAtMost(1), false},
		{LocalPrefEquals(200), true},
		{LocalPrefAtLeast(100), true},
		{LocalPrefAtMost(100), false},
		{MEDEquals(0), true},
		{PrefixEquals(routemodel.MustPrefix("10.1.0.0/16")), true},
		{PrefixEquals(routemodel.MustPrefix("10.0.0.0/8")), false},
		{PrefixLenAtLeast(16), true},
		{PrefixLenAtMost(8), false},
		{NextHopEquals(0), true},
		{NextHopEquals(5), false},
	}
	for _, tc := range cases {
		if got := tc.p.Eval(r); got != tc.want {
			t.Errorf("%s: Eval = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestOnlyCommunityAmong(t *testing.T) {
	regionals := []routemodel.Community{c100_1, c100_2, c200_1}
	p := OnlyCommunityAmong(regionals, c100_1)

	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	r.AddCommunity(c100_1)
	if !p.Eval(r) {
		t.Fatal("exactly the target community should satisfy")
	}
	r.AddCommunity(c100_2)
	if p.Eval(r) {
		t.Fatal("extra regional community should violate")
	}
	r2 := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	if p.Eval(r2) {
		t.Fatal("missing target community should violate")
	}
}

func TestNoCommunityAmong(t *testing.T) {
	p := NoCommunityAmong([]routemodel.Community{c100_1, c100_2})
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	if !p.Eval(r) {
		t.Fatal("no communities: should satisfy")
	}
	r.AddCommunity(c100_2)
	if p.Eval(r) {
		t.Fatal("has a listed community: should violate")
	}
	r.RemoveCommunity(c100_2)
	r.AddCommunity(c200_1)
	if !p.Eval(r) {
		t.Fatal("unlisted community should not matter")
	}
}

func TestHasAnyCommunity(t *testing.T) {
	p := HasAnyCommunity(c100_1, c200_1)
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	if p.Eval(r) {
		t.Fatal("empty route should not satisfy")
	}
	r.AddCommunity(c200_1)
	if !p.Eval(r) {
		t.Fatal("should satisfy with one member")
	}
}

func TestAddToUniverseCollectsMentions(t *testing.T) {
	p := And(HasCommunity(c100_1), Or(Ghost("G1"), PathContains(42)), Implies(Ghost("G2"), True()))
	u := NewUniverse()
	p.AddToUniverse(u)
	if !u.HasCommunity(c100_1) {
		t.Fatal("community not collected")
	}
	if len(u.Ghosts()) != 2 {
		t.Fatalf("ghosts = %v", u.Ghosts())
	}
	if len(u.ASNs()) != 1 || u.ASNs()[0] != 42 {
		t.Fatalf("asns = %v", u.ASNs())
	}
}

func TestCommOutsideUniversePanics(t *testing.T) {
	ctx := smt.NewContext()
	sr := NewSymRoute(ctx, "r", NewUniverse())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-universe community")
		}
	}()
	HasCommunity(c100_1).Compile(sr)
}

func TestSymRouteIte(t *testing.T) {
	ctx := smt.NewContext()
	u := testUniverse()
	a := NewSymRoute(ctx, "a", u)
	b := NewSymRoute(ctx, "b", u)
	cond := ctx.BoolVar("c")
	m := Ite(cond, a, b)
	// cond && m.lp = 7 forces a.lp = 7.
	res := smt.Solve(ctx, ctx.And(cond, ctx.Eq(m.LocalPref, ctx.BV(7, WidthLocalPref))))
	if res.Status != smt.Sat {
		t.Fatal("want sat")
	}
	if res.Model.BV("a.lp") != 7 {
		t.Fatalf("a.lp = %d, want 7", res.Model.BV("a.lp"))
	}
}

func TestConcreteRouteFromModel(t *testing.T) {
	ctx := smt.NewContext()
	u := testUniverse()
	sr := NewSymRoute(ctx, "r", u)
	want := routemodel.NewRoute(routemodel.MustPrefix("192.168.1.0/24"))
	want.AddCommunity(c100_1)
	want.SetGhost("FromISP1", true)
	want.LocalPref = 300
	want.MED = 17
	want.ASPath = []uint32{174}

	res := smt.Solve(ctx, Constrain(sr, want))
	if res.Status != smt.Sat {
		t.Fatal("want sat")
	}
	got := sr.ConcreteRoute(res.Model)
	if got.Prefix != want.Prefix {
		t.Fatalf("prefix %v != %v", got.Prefix, want.Prefix)
	}
	if got.LocalPref != 300 || got.MED != 17 {
		t.Fatalf("scalars: %v", got)
	}
	if !got.HasCommunity(c100_1) || got.HasCommunity(c200_1) {
		t.Fatalf("communities: %v", got)
	}
	if !got.GhostValue("FromISP1") || got.GhostValue("FromPeer") {
		t.Fatalf("ghosts: %v", got)
	}
	if !got.PathContains(174) || len(got.ASPath) != 1 {
		t.Fatalf("path: %v", got.ASPath)
	}
}

// TestUniverseClosure: enlarging the universe with an unrelated community
// must not change a predicate's symbolic verdict.
func TestUniverseClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		p := randomPred(rng, 2)
		r := randomRoute(rng)
		small := testUniverse()
		big := testUniverse()
		big.AddCommunity(routemodel.MustCommunity("999:999"))
		big.AddGhost("Unrelated")
		got1 := evalViaSolver(t, p, r, small)
		got2 := evalViaSolver(t, p, r, big)
		if got1 != got2 {
			t.Fatalf("iter %d: universe enlargement changed verdict: %s on %s", iter, p, r)
		}
	}
}

func TestPredString(t *testing.T) {
	p := And(HasCommunity(c100_1), Not(Ghost("FromISP1")), Or())
	if p.String() == "" {
		t.Fatal("empty String")
	}
	if True().String() != "true" || False().String() != "false" {
		t.Fatal("const strings")
	}
}
