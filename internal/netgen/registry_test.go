package netgen_test

import (
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

func TestSuiteNamesStable(t *testing.T) {
	want := []string{
		"fig1-liveness", "fig1-no-transit", "fullmesh",
		"wan-ip-liveness", "wan-ip-reuse", "wan-peering",
	}
	got := netgen.SuiteNames()
	if len(got) != len(want) {
		t.Fatalf("SuiteNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SuiteNames() = %v, want %v", got, want)
		}
	}
	if _, ok := netgen.Lookup("no-such-suite"); ok {
		t.Error("Lookup accepted an unknown suite")
	}
}

func TestFig1SuitesBuildAndVerify(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})

	s, ok := netgen.Lookup("fig1-no-transit")
	if !ok {
		t.Fatal("fig1-no-transit not registered")
	}
	problems := s.Build(n, netgen.SuiteParams{})
	if len(problems) != 1 || problems[0].Safety == nil {
		t.Fatalf("fig1-no-transit: got %d problems", len(problems))
	}
	if rep := core.VerifySafety(problems[0].Safety, core.Options{}); !rep.OK() {
		t.Errorf("fig1-no-transit should verify:\n%s", rep.Summary())
	}

	s, _ = netgen.Lookup("fig1-liveness")
	problems = s.Build(n, netgen.SuiteParams{})
	if len(problems) != 1 || problems[0].Liveness == nil {
		t.Fatalf("fig1-liveness: got %d problems", len(problems))
	}
}

func TestWANPeeringSuiteShape(t *testing.T) {
	p := netgen.WANParams{Regions: 2, RoutersPerRegion: 1, EdgeRouters: 1, DCsPerRegion: 1, PeersPerEdge: 1}
	n := netgen.WAN(p, netgen.WANBugs{})
	s, _ := netgen.Lookup("wan-peering")
	problems := s.Build(n, netgen.SuiteParams{Regions: p.Regions})
	want := len(netgen.PeeringProperties(p.Regions)) * len(n.Routers())
	if len(problems) != want {
		t.Fatalf("wan-peering built %d problems, want properties×routers = %d", len(problems), want)
	}
	for _, pr := range problems {
		if pr.Safety == nil || pr.Name == "" {
			t.Fatalf("malformed problem %+v", pr)
		}
	}

	s, _ = netgen.Lookup("wan-ip-liveness")
	for _, pr := range s.Build(n, netgen.SuiteParams{Regions: p.Regions}) {
		if !pr.Optional || pr.Liveness == nil {
			t.Fatalf("wan-ip-liveness problems must be optional liveness problems, got %+v", pr)
		}
	}
}
