package netgen_test

import (
	"strings"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

func TestSuiteNamesStable(t *testing.T) {
	want := []string{
		"fig1-liveness", "fig1-no-transit", "fullmesh", "sat-stress",
		"wan-ip-liveness", "wan-ip-reuse", "wan-peering",
	}
	got := netgen.SuiteNames()
	if len(got) != len(want) {
		t.Fatalf("SuiteNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SuiteNames() = %v, want %v", got, want)
		}
	}
	if _, ok := netgen.Lookup("no-such-suite"); ok {
		t.Error("Lookup accepted an unknown suite")
	}
}

func TestFig1SuitesBuildAndVerify(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})

	s, ok := netgen.Lookup("fig1-no-transit")
	if !ok {
		t.Fatal("fig1-no-transit not registered")
	}
	problems := s.Build(n, netgen.SuiteParams{})
	if len(problems) != 1 || problems[0].Safety == nil {
		t.Fatalf("fig1-no-transit: got %d problems", len(problems))
	}
	if rep := core.VerifySafety(problems[0].Safety, core.Options{}); !rep.OK() {
		t.Errorf("fig1-no-transit should verify:\n%s", rep.Summary())
	}

	s, _ = netgen.Lookup("fig1-liveness")
	problems = s.Build(n, netgen.SuiteParams{})
	if len(problems) != 1 || problems[0].Liveness == nil {
		t.Fatalf("fig1-liveness: got %d problems", len(problems))
	}
}

func TestScopedSuiteBuilds(t *testing.T) {
	p := netgen.WANParams{Regions: 2, RoutersPerRegion: 2, EdgeRouters: 1, DCsPerRegion: 1, PeersPerEdge: 1}
	n := netgen.WAN(p, netgen.WANBugs{})
	params := netgen.SuiteParams{Regions: p.Regions}

	s, _ := netgen.Lookup("wan-peering")
	r0 := netgen.RegionRouter(0, 0)
	scoped := s.Problems(n, params, netgen.Scope{Routers: []topology.NodeID{r0}})
	if want := len(netgen.PeeringProperties(p.Regions)); len(scoped) != want {
		t.Fatalf("router-scoped wan-peering built %d problems, want %d", len(scoped), want)
	}
	for _, pr := range scoped {
		if !strings.HasSuffix(pr.Name, "@"+string(r0)) {
			t.Fatalf("scoped problem %q is not at %s", pr.Name, r0)
		}
	}

	s, _ = netgen.Lookup("wan-ip-reuse")
	all := s.Build(n, params)
	byRegion := s.Problems(n, params, netgen.Scope{Regions: []int{0}})
	if len(byRegion) == 0 || len(byRegion) >= len(all) {
		t.Fatalf("region-scoped wan-ip-reuse built %d of %d problems", len(byRegion), len(all))
	}
	for _, pr := range byRegion {
		if !strings.HasPrefix(pr.Name, "ip-reuse-region-0@") {
			t.Fatalf("region-scoped problem %q is not region 0", pr.Name)
		}
	}

	s, _ = netgen.Lookup("wan-ip-liveness")
	if got := s.Problems(n, params, netgen.Scope{Regions: []int{1}}); len(got) != 1 {
		t.Fatalf("region-scoped wan-ip-liveness built %d problems, want 1", len(got))
	}

	// Network-global suites ignore scope.
	fig1 := netgen.Fig1(netgen.Fig1Options{})
	s, _ = netgen.Lookup("fig1-no-transit")
	if got := s.Problems(fig1, netgen.SuiteParams{}, netgen.Scope{Routers: []topology.NodeID{"R1"}}); len(got) != 1 {
		t.Fatalf("scoped fig1-no-transit built %d problems, want 1", len(got))
	}
}

func TestScopeValidate(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	regions := netgen.SuiteParams{Regions: 2}.EffectiveRegions()
	if err := (netgen.Scope{Routers: []topology.NodeID{"R1"}, Regions: []int{0, 1}}).Validate(n, regions); err != nil {
		t.Errorf("valid scope rejected: %v", err)
	}
	if err := (netgen.Scope{Routers: []topology.NodeID{"nope"}}).Validate(n, regions); err == nil {
		t.Error("unknown router accepted")
	}
	if err := (netgen.Scope{Routers: []topology.NodeID{"ISP1"}}).Validate(n, regions); err == nil {
		t.Error("external node accepted")
	}
	if err := (netgen.Scope{Regions: []int{-1}}).Validate(n, regions); err == nil {
		t.Error("negative region accepted")
	}
	if err := (netgen.Scope{Regions: []int{2}}).Validate(n, regions); err == nil {
		t.Error("out-of-range region accepted (would scope to nothing and pass vacuously)")
	}
	if got := (netgen.SuiteParams{}).EffectiveRegions(); got != 3 {
		t.Errorf("default EffectiveRegions = %d, want 3", got)
	}
}

func TestGenerate(t *testing.T) {
	n, regions, err := netgen.Generate(netgen.GeneratorSpec{Kind: "wan", Regions: 2,
		RoutersPerRegion: 1, EdgeRouters: 1, PeersPerEdge: 1})
	if err != nil || regions != 2 || len(n.Routers()) != 3 {
		t.Fatalf("wan generate: n=%v regions=%d err=%v", n, regions, err)
	}
	if _, _, err := netgen.Generate(netgen.GeneratorSpec{Kind: "torus"}); err == nil {
		t.Error("unknown generator kind accepted")
	}
	if _, _, err := netgen.Generate(netgen.GeneratorSpec{Kind: "fullmesh", Size: 1}); err == nil {
		t.Error("fullmesh size 1 accepted")
	}
	if n, regions, err := netgen.Generate(netgen.GeneratorSpec{Kind: "fig1"}); err != nil || regions != 0 || n == nil {
		t.Errorf("fig1 generate: regions=%d err=%v", regions, err)
	}
}

func TestWANPeeringSuiteShape(t *testing.T) {
	p := netgen.WANParams{Regions: 2, RoutersPerRegion: 1, EdgeRouters: 1, DCsPerRegion: 1, PeersPerEdge: 1}
	n := netgen.WAN(p, netgen.WANBugs{})
	s, _ := netgen.Lookup("wan-peering")
	problems := s.Build(n, netgen.SuiteParams{Regions: p.Regions})
	want := len(netgen.PeeringProperties(p.Regions)) * len(n.Routers())
	if len(problems) != want {
		t.Fatalf("wan-peering built %d problems, want properties×routers = %d", len(problems), want)
	}
	for _, pr := range problems {
		if pr.Safety == nil || pr.Name == "" {
			t.Fatalf("malformed problem %+v", pr)
		}
	}

	s, _ = netgen.Lookup("wan-ip-liveness")
	for _, pr := range s.Build(n, netgen.SuiteParams{Regions: p.Regions}) {
		if !pr.Optional || pr.Liveness == nil {
			t.Fatalf("wan-ip-liveness problems must be optional liveness problems, got %+v", pr)
		}
	}
}

// TestSatStressScopeAnchorsRouter: a router-scoped sat-stress property pins
// its pigeonhole load at an in-scope router instead of silently ignoring
// the scope.
func TestSatStressScopeAnchorsRouter(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	s, ok := netgen.Lookup("sat-stress")
	if !ok {
		t.Fatal("sat-stress not registered")
	}
	problems := s.Problems(n, netgen.SuiteParams{}, netgen.Scope{Routers: []topology.NodeID{"R2"}})
	if len(problems) == 0 {
		t.Fatal("scoped sat-stress built no problems")
	}
	for _, p := range problems {
		if loc := p.Safety.Property.Loc; loc.IsEdge() || loc.Router() != "R2" {
			t.Fatalf("problem %s anchored at %s, want R2", p.Name, loc)
		}
	}
	if got := s.Problems(n, netgen.SuiteParams{}, netgen.Scope{}); len(got) != len(problems) {
		t.Fatalf("unscoped build produced %d problems, scoped %d", len(got), len(problems))
	}
}
