package netgen

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// This file is the sat-stress suite: adversarial solver load for the
// pluggable backend layer (internal/solver). Every route-map check the other
// suites generate is decided by unit propagation alone — the source of the
// paper's scalability, but useless for exercising conflict budgets, tiered
// escalation, or portfolio racing. The stress suite plants obligations whose
// refutation genuinely requires CDCL search: propositional pigeonhole
// instances encoded over community atoms, attached as the final implication
// check of an otherwise-trivial safety problem. The network is whatever the
// plan supplies; only the property predicate is adversarial, so the suite
// composes with any network source like every other registry suite.

// stressHoles are the pigeonhole sizes the suite builds, one problem each.
// PHP(h+1, h) needs exponentially many resolution steps in h, so these stay
// small enough to decide in milliseconds at full budget while guaranteeing
// conflicts — a 1-conflict budget always returns Unknown on them.
var stressHoles = []int{3, 4, 5}

// pigeonholePred builds the propositional pigeonhole principle PHP(pigeons,
// holes) over community atoms: every pigeon sits in some hole, and no two
// pigeons share a hole. With pigeons > holes the conjunction is
// unsatisfiable, but refuting it requires genuine search — unit propagation
// derives nothing from the initial clauses. The spec.Named wrapper gives the
// quadratically large conjunction a compact rendering — the name is what
// check keys hash, so it encodes both pigeonhole dimensions — and keeps the
// predicate wire-encodable for remote solves.
func pigeonholePred(pigeons, holes int) spec.Pred {
	return spec.Named(
		fmt.Sprintf("pigeonhole(%d pigeons, %d holes)", pigeons, holes),
		rawPigeonhole(pigeons, holes),
	)
}

// StressPigeonholePred exposes the pigeonhole predicate for benchmarks and
// wire-codec tests that need a genuinely hard, remotable formula.
func StressPigeonholePred(pigeons, holes int) spec.Pred {
	return pigeonholePred(pigeons, holes)
}

func rawPigeonhole(pigeons, holes int) spec.Pred {
	atom := func(p, h int) spec.Pred {
		// One community atom per (pigeon, hole) pair; the 65099 ASN keeps
		// the atoms disjoint from every other suite's communities.
		return spec.HasCommunity(routemodel.MustCommunity(fmt.Sprintf("65099:%d", p*holes+h+1)))
	}
	var clauses []spec.Pred
	for p := 0; p < pigeons; p++ {
		hs := make([]spec.Pred, holes)
		for h := 0; h < holes; h++ {
			hs[h] = atom(p, h)
		}
		clauses = append(clauses, spec.Or(hs...))
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, spec.Or(spec.Not(atom(p1, h)), spec.Not(atom(p2, h))))
			}
		}
	}
	return spec.And(clauses...)
}

// StressProblem builds the safety problem for one pigeonhole size anchored
// at the network's first router (see StressProblemAt).
func StressProblem(n *topology.Network, holes int) *core.SafetyProblem {
	routers := n.Routers()
	if len(routers) == 0 {
		return nil
	}
	return StressProblemAt(n, routers[0], holes)
}

// StressProblemAt builds the safety problem for one pigeonhole size on n:
// all invariants are True, so every per-edge check is trivially valid, and
// the single implication check I_at ⊆ ¬PHP(holes+1, holes) at the anchor
// router carries the whole search load. The property holds (PHP is
// unsatisfiable), so the suite verifies OK — under any backend with enough
// budget.
func StressProblemAt(n *topology.Network, at topology.NodeID, holes int) *core.SafetyProblem {
	return &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtRouter(at),
			Pred: spec.Not(pigeonholePred(holes+1, holes)),
			Desc: fmt.Sprintf("pigeonhole-%d refutation (adversarial solver load)", holes),
		},
		Invariants: core.NewInvariants(spec.True()),
	}
}

func init() {
	registerSuite(Suite{
		Name: "sat-stress",
		Desc: "adversarial pigeonhole obligations exercising the solver backends",
		Problems: func(n *topology.Network, _ SuiteParams, sc Scope) []Problem {
			// The anchor router honors the scope's router subset, so a
			// scoped sat-stress property pins its load where the caller
			// asked (a scope selecting no router yields no problems, which
			// plan.Compile rejects rather than passing vacuously).
			var anchor topology.NodeID
			found := false
			for _, r := range n.Routers() {
				if sc.AllowRouter(r) {
					anchor, found = r, true
					break
				}
			}
			if !found {
				return nil
			}
			var out []Problem
			for _, holes := range stressHoles {
				out = append(out, Problem{
					Name:   fmt.Sprintf("pigeonhole-%d", holes),
					Safety: StressProblemAt(n, anchor, holes),
				})
			}
			return out
		},
	})
}
