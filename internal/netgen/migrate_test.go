package netgen_test

import (
	"strings"
	"testing"

	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

var r2isp2 = topology.Edge{From: "R2", To: "ISP2"}

func applyMut(t *testing.T, n *topology.Network, m netgen.MutationSpec) *topology.Network {
	t.Helper()
	out, err := netgen.ApplyMutation(n, m)
	if err != nil {
		t.Fatalf("ApplyMutation(%s): %v", m, err)
	}
	return out
}

// TestApplyMutationInsertRemove covers the clause-edit kinds: inserts land
// at their sequence position, occupied sequence numbers and missing clauses
// are errors, and the input network is never modified.
func TestApplyMutationInsertRemove(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	before := len(n.Export(r2isp2).Clauses) // fig1: deny-transit at 10, permit at 20
	if before != 2 {
		t.Fatalf("fig1 export map R2->ISP2 has %d clauses, want 2", before)
	}
	fpBefore := n.Fingerprint()

	shield := netgen.MutationSpec{Kind: netgen.MutInsertExportDeny, From: "R2", To: "ISP2",
		Seq: 5, Match: "community:" + netgen.CommTransit.String()}
	shielded := applyMut(t, n, shield)
	got := shielded.Export(r2isp2).Clauses
	if len(got) != 3 || got[0].Seq != 5 || got[0].Permit {
		t.Fatalf("shield should prepend a deny at seq 5: %+v", got)
	}
	// Clone isolation: the input state is untouched.
	if len(n.Export(r2isp2).Clauses) != before || n.Fingerprint() != fpBefore {
		t.Fatal("ApplyMutation modified its input network")
	}

	// Occupied sequence number on insert is an error, as on real devices.
	occupied := shield
	occupied.Seq = 10
	if _, err := netgen.ApplyMutation(n, occupied); err == nil ||
		!strings.Contains(err.Error(), "already occupied") {
		t.Fatalf("insert at occupied seq should fail, got %v", err)
	}

	retired := applyMut(t, n, netgen.MutationSpec{
		Kind: netgen.MutRemoveExportClause, From: "R2", To: "ISP2", Seq: 10})
	if len(retired.Export(r2isp2).Clauses) != 1 {
		t.Fatalf("remove seq 10 left %+v", retired.Export(r2isp2).Clauses)
	}
	if _, err := netgen.ApplyMutation(n, netgen.MutationSpec{
		Kind: netgen.MutRemoveExportClause, From: "R2", To: "ISP2", Seq: 7}); err == nil {
		t.Fatal("removing a missing sequence number should fail")
	}
	if _, err := netgen.ApplyMutation(n, netgen.MutationSpec{
		Kind: netgen.MutInsertImportDeny, From: "R2", To: "nope", Seq: 5, Match: "bogons"}); err == nil {
		t.Fatal("unknown session edge should fail")
	}
}

func TestApplyMutationTighten(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	tightened := applyMut(t, n, netgen.MutationSpec{Kind: netgen.MutTighten, At: "R2"})
	if tightened.Fingerprint() == n.Fingerprint() {
		t.Fatal("tighten-imports should change the network state")
	}
	if _, err := netgen.ApplyMutation(n, netgen.MutationSpec{
		Kind: netgen.MutTighten, At: "no-such-router"}); err == nil {
		t.Fatal("tightening an unknown router should fail")
	}
	if _, err := netgen.ApplyMutation(n, netgen.MutationSpec{
		Kind: netgen.MutTighten, At: "ISP1"}); err == nil {
		t.Fatal("tightening an external should fail")
	}
}

func TestMutationValidate(t *testing.T) {
	bad := []netgen.MutationSpec{
		{},
		{Kind: "frobnicate"},
		{Kind: netgen.MutTighten},
		{Kind: netgen.MutInsertExportDeny, From: "R2", To: "ISP2", Seq: 0, Match: "bogons"},
		{Kind: netgen.MutInsertExportDeny, From: "R2", To: "ISP2", Seq: 5, Match: "no-such-pred"},
		{Kind: netgen.MutRemoveExportClause, From: "R2", Seq: 10},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", m)
		}
	}
	ok := netgen.MutationSpec{Kind: netgen.MutInsertImportDeny, From: "ISP2", To: "R2",
		Seq: 5, Match: "community:100:1"}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate(%s): %v", ok, err)
	}
}

// TestIndependentMutations: disjoint touched-node sets commute; shared
// routers do not. This predicate is the soundness condition of the
// migration search's canonical-order cut.
func TestIndependentMutations(t *testing.T) {
	t1 := netgen.MutationSpec{Kind: netgen.MutTighten, At: "R1"}
	t3 := netgen.MutationSpec{Kind: netgen.MutTighten, At: "R3"}
	shield := netgen.Fig1FilterSwap()[0].Mutation // edits R2 -> ISP2
	t2 := netgen.MutationSpec{Kind: netgen.MutTighten, At: "R2"}
	if !netgen.IndependentMutations(t1, t3) {
		t.Error("tighten R1 and tighten R3 touch disjoint routers")
	}
	if !netgen.IndependentMutations(t1, shield) {
		t.Error("tighten R1 and an R2->ISP2 clause edit are independent")
	}
	if netgen.IndependentMutations(t2, shield) {
		t.Error("tighten R2 and an R2->ISP2 clause edit share R2")
	}
	if netgen.IndependentMutations(shield, netgen.Fig1FilterSwap()[1].Mutation) {
		t.Error("two edits of the same session edge are dependent")
	}
}

// TestFilterSwapStates pins the semantic shape the migration search's
// memoization exploits: the full shield-retire-reinstate chain lands on a
// state fingerprint-identical to the post-shield state (the reinstated
// clause equals the retired one), while the intermediate states differ.
func TestFilterSwapStates(t *testing.T) {
	steps := netgen.Fig1FilterSwap()
	n := netgen.Fig1(netgen.Fig1Options{})
	a := applyMut(t, n, steps[0].Mutation) // shield
	b := applyMut(t, a, steps[1].Mutation) // retire
	c := applyMut(t, b, steps[2].Mutation) // reinstate
	if b.Fingerprint() == a.Fingerprint() {
		t.Fatal("retiring the seq-10 clause must change the state")
	}
	if c.Fingerprint() != a.Fingerprint() {
		t.Fatal("reinstating the identical clause must restore the post-shield state")
	}
	// Reinstate before retire collides with the occupied sequence number.
	if _, err := netgen.ApplyMutation(a, steps[2].Mutation); err == nil {
		t.Fatal("reinstate before retire should fail on the occupied seq 10")
	}
}
