package netgen

import (
	"fmt"
	"sort"

	"lightyear/internal/core"
	"lightyear/internal/topology"
)

// This file is the named property registry: every built-in property suite is
// registered under the name cmd/lightyear and the lyserve HTTP API accept,
// replacing the hand-written switch the CLI used to carry. A suite maps a
// network (parsed or generated) to the batch of verification problems it
// implies, ready to submit to an internal/engine Engine.
//
// Suites decompose into two reusable builder layers that internal/plan
// composes declaratively:
//
//   - network builders (Generate, over GeneratorSpec) materialize a network
//     independent of any property, and
//   - property builders (Suite.Problems) enumerate a suite's problems over a
//     network, restricted to an optional Scope (router and/or region subset).
//
// Suite.Build keeps the unscoped entry point every pre-plan caller uses.

// SuiteParams parameterizes suite construction for suites that depend on
// deployment shape.
type SuiteParams struct {
	// Regions is the region count assumed by the WAN suites; 0 means 3.
	Regions int
}

func (p SuiteParams) regions() int {
	if p.Regions > 0 {
		return p.Regions
	}
	return 3
}

// EffectiveRegions is the region count the WAN suites will assume under
// these params — the bound region scopes are validated against.
func (p SuiteParams) EffectiveRegions() int { return p.regions() }

// Scope restricts a property build to a subset of the network. A zero Scope
// selects everything. Scoping applies to the dimensions a suite is
// parameterized over: per-router suites (wan-peering, wan-ip-reuse) honor
// Routers, regional suites (wan-ip-reuse, wan-ip-liveness) honor Regions,
// and network-global suites (the fig1 properties, fullmesh) build their
// single problem regardless of scope.
type Scope struct {
	// Routers, when non-empty, restricts per-router problems to these
	// routers.
	Routers []topology.NodeID `json:"routers,omitempty"`
	// Regions, when non-empty, restricts regional problems to these region
	// indices (0-based).
	Regions []int `json:"regions,omitempty"`
}

// Empty reports whether the scope selects the whole network.
func (sc Scope) Empty() bool { return len(sc.Routers) == 0 && len(sc.Regions) == 0 }

// AllowRouter reports whether a per-router problem at id is in scope.
func (sc Scope) AllowRouter(id topology.NodeID) bool {
	if len(sc.Routers) == 0 {
		return true
	}
	for _, r := range sc.Routers {
		if r == id {
			return true
		}
	}
	return false
}

// AllowRegion reports whether a regional problem for region index i is in
// scope.
func (sc Scope) AllowRegion(i int) bool {
	if len(sc.Regions) == 0 {
		return true
	}
	for _, r := range sc.Regions {
		if r == i {
			return true
		}
	}
	return false
}

// Validate rejects scopes that name routers absent from the network (or
// external nodes) or region indices outside [0, regions), so a mistyped
// scope silently selecting nothing — and passing vacuously — is an error
// instead. regions is the suite-visible region count
// (SuiteParams.EffectiveRegions).
func (sc Scope) Validate(n *topology.Network, regions int) error {
	for _, id := range sc.Routers {
		node := n.Node(id)
		if node == nil {
			return fmt.Errorf("scope names unknown router %q", id)
		}
		if node.External {
			return fmt.Errorf("scope names external node %q; only routers can be scoped", id)
		}
	}
	for _, r := range sc.Regions {
		if r < 0 || r >= regions {
			return fmt.Errorf("scope names region index %d outside [0, %d)", r, regions)
		}
	}
	return nil
}

// Problem is one verification problem of a suite: exactly one of Safety or
// Liveness is set.
type Problem struct {
	Name     string
	Safety   *core.SafetyProblem
	Liveness *core.LivenessProblem
	// Optional marks liveness problems whose witness path may be absent
	// from a user-supplied network (e.g. WAN region paths on a parsed
	// config with fewer regions); such problems are skipped rather than
	// failed when validation rejects them.
	Optional bool
}

// Suite is a named family of verification problems over one network. The
// Problems builder is the scoped property builder plans compose; Build is
// the unscoped convenience used by pre-plan callers.
type Suite struct {
	Name string
	Desc string
	// Problems enumerates the suite's problems over n, restricted to sc.
	Problems func(n *topology.Network, p SuiteParams, sc Scope) []Problem
}

// Build enumerates every problem of the suite (an empty Scope).
func (s Suite) Build(n *topology.Network, p SuiteParams) []Problem {
	return s.Problems(n, p, Scope{})
}

var suites = map[string]Suite{}

func registerSuite(s Suite) {
	if _, dup := suites[s.Name]; dup {
		panic(fmt.Sprintf("netgen: duplicate suite %q", s.Name))
	}
	suites[s.Name] = s
}

// Lookup returns the named suite.
func Lookup(name string) (Suite, bool) {
	s, ok := suites[name]
	return s, ok
}

// SuiteNames returns the registered suite names, sorted.
func SuiteNames() []string {
	names := make([]string, 0, len(suites))
	for name := range suites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Suites returns every registered suite, sorted by name.
func Suites() []Suite {
	out := make([]Suite, 0, len(suites))
	for _, name := range SuiteNames() {
		out = append(out, suites[name])
	}
	return out
}

func init() {
	registerSuite(Suite{
		Name: "fig1-no-transit",
		Desc: "Table 2: routes from ISP1 never reach ISP2",
		Problems: func(n *topology.Network, _ SuiteParams, _ Scope) []Problem {
			return []Problem{{Name: "fig1-no-transit", Safety: Fig1NoTransitProblem(n)}}
		},
	})
	registerSuite(Suite{
		Name: "fig1-liveness",
		Desc: "Table 3: customer prefixes reach ISP2",
		Problems: func(n *topology.Network, _ SuiteParams, _ Scope) []Problem {
			return []Problem{{Name: "fig1-liveness", Liveness: Fig1LivenessProblem(n)}}
		},
	})
	registerSuite(Suite{
		Name: "fullmesh",
		Desc: "§6.2: no-transit on a generated full mesh",
		Problems: func(n *topology.Network, _ SuiteParams, _ Scope) []Problem {
			return []Problem{{Name: "fullmesh", Safety: FullMeshProblem(n)}}
		},
	})
	registerSuite(Suite{
		Name: "wan-peering",
		Desc: "Table 4a: the 11 peering properties at every router",
		Problems: func(n *topology.Network, p SuiteParams, sc Scope) []Problem {
			var out []Problem
			for _, prop := range PeeringProperties(p.regions()) {
				for _, r := range n.Routers() {
					if !sc.AllowRouter(r) {
						continue
					}
					out = append(out, Problem{
						Name:   fmt.Sprintf("%s@%s", prop.Name, r),
						Safety: PeeringProblem(n, r, prop),
					})
				}
			}
			return out
		},
	})
	registerSuite(Suite{
		Name: "wan-ip-reuse",
		Desc: "Table 4b: regional reused-IP isolation",
		Problems: func(n *topology.Network, p SuiteParams, sc Scope) []Problem {
			wp := WANParams{Regions: p.regions()}
			var out []Problem
			for r := 0; r < wp.Regions; r++ {
				if !sc.AllowRegion(r) {
					continue
				}
				region := fmt.Sprintf("region-%d", r)
				for _, outside := range n.Routers() {
					if n.Node(outside).Region == region || !sc.AllowRouter(outside) {
						continue
					}
					out = append(out, Problem{
						Name:   fmt.Sprintf("ip-reuse-region-%d@%s", r, outside),
						Safety: IPReuseSafetyProblem(n, wp, r, outside),
					})
				}
			}
			return out
		},
	})
	registerSuite(Suite{
		Name: "wan-ip-liveness",
		Desc: "Table 4c: reused routes propagate within each region",
		Problems: func(n *topology.Network, p SuiteParams, sc Scope) []Problem {
			wp := WANParams{Regions: p.regions()}
			var out []Problem
			for r := 0; r < wp.Regions; r++ {
				if !sc.AllowRegion(r) {
					continue
				}
				out = append(out, Problem{
					Name:     fmt.Sprintf("ip-liveness-region-%d", r),
					Liveness: IPReuseLivenessProblem(n, wp, r),
					Optional: true,
				})
			}
			return out
		},
	})
}
