package netgen

import (
	"fmt"
	"sort"

	"lightyear/internal/core"
	"lightyear/internal/topology"
)

// This file is the named problem registry: every built-in property suite is
// registered under the name cmd/lightyear and the lyserve HTTP API accept,
// replacing the hand-written switch the CLI used to carry. A suite maps a
// network (parsed or generated) to the batch of verification problems it
// implies, ready to submit to an internal/engine Engine.

// SuiteParams parameterizes suite construction for suites that depend on
// deployment shape.
type SuiteParams struct {
	// Regions is the region count assumed by the WAN suites; 0 means 3.
	Regions int
}

func (p SuiteParams) regions() int {
	if p.Regions > 0 {
		return p.Regions
	}
	return 3
}

// Problem is one verification problem of a suite: exactly one of Safety or
// Liveness is set.
type Problem struct {
	Name     string
	Safety   *core.SafetyProblem
	Liveness *core.LivenessProblem
	// Optional marks liveness problems whose witness path may be absent
	// from a user-supplied network (e.g. WAN region paths on a parsed
	// config with fewer regions); such problems are skipped rather than
	// failed when validation rejects them.
	Optional bool
}

// Suite is a named family of verification problems over one network.
type Suite struct {
	Name  string
	Desc  string
	Build func(n *topology.Network, p SuiteParams) []Problem
}

var suites = map[string]Suite{}

func registerSuite(s Suite) {
	if _, dup := suites[s.Name]; dup {
		panic(fmt.Sprintf("netgen: duplicate suite %q", s.Name))
	}
	suites[s.Name] = s
}

// Lookup returns the named suite.
func Lookup(name string) (Suite, bool) {
	s, ok := suites[name]
	return s, ok
}

// SuiteNames returns the registered suite names, sorted.
func SuiteNames() []string {
	names := make([]string, 0, len(suites))
	for name := range suites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	registerSuite(Suite{
		Name: "fig1-no-transit",
		Desc: "Table 2: routes from ISP1 never reach ISP2",
		Build: func(n *topology.Network, _ SuiteParams) []Problem {
			return []Problem{{Name: "fig1-no-transit", Safety: Fig1NoTransitProblem(n)}}
		},
	})
	registerSuite(Suite{
		Name: "fig1-liveness",
		Desc: "Table 3: customer prefixes reach ISP2",
		Build: func(n *topology.Network, _ SuiteParams) []Problem {
			return []Problem{{Name: "fig1-liveness", Liveness: Fig1LivenessProblem(n)}}
		},
	})
	registerSuite(Suite{
		Name: "fullmesh",
		Desc: "§6.2: no-transit on a generated full mesh",
		Build: func(n *topology.Network, _ SuiteParams) []Problem {
			return []Problem{{Name: "fullmesh", Safety: FullMeshProblem(n)}}
		},
	})
	registerSuite(Suite{
		Name: "wan-peering",
		Desc: "Table 4a: the 11 peering properties at every router",
		Build: func(n *topology.Network, p SuiteParams) []Problem {
			var out []Problem
			for _, prop := range PeeringProperties(p.regions()) {
				for _, r := range n.Routers() {
					out = append(out, Problem{
						Name:   fmt.Sprintf("%s@%s", prop.Name, r),
						Safety: PeeringProblem(n, r, prop),
					})
				}
			}
			return out
		},
	})
	registerSuite(Suite{
		Name: "wan-ip-reuse",
		Desc: "Table 4b: regional reused-IP isolation",
		Build: func(n *topology.Network, p SuiteParams) []Problem {
			wp := WANParams{Regions: p.regions()}
			var out []Problem
			for r := 0; r < wp.Regions; r++ {
				region := fmt.Sprintf("region-%d", r)
				for _, outside := range n.Routers() {
					if n.Node(outside).Region == region {
						continue
					}
					out = append(out, Problem{
						Name:   fmt.Sprintf("ip-reuse-region-%d@%s", r, outside),
						Safety: IPReuseSafetyProblem(n, wp, r, outside),
					})
				}
			}
			return out
		},
	})
	registerSuite(Suite{
		Name: "wan-ip-liveness",
		Desc: "Table 4c: reused routes propagate within each region",
		Build: func(n *topology.Network, p SuiteParams) []Problem {
			wp := WANParams{Regions: p.regions()}
			var out []Problem
			for r := 0; r < wp.Regions; r++ {
				out = append(out, Problem{
					Name:     fmt.Sprintf("ip-liveness-region-%d", r),
					Liveness: IPReuseLivenessProblem(n, wp, r),
					Optional: true,
				})
			}
			return out
		},
	})
}
