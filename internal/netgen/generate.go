package netgen

import (
	"fmt"

	"lightyear/internal/topology"
)

// GeneratorSpec names a built-in network generator with its parameters — the
// serializable network-builder half of a verification plan. It is the same
// shape the lyserve HTTP API has always accepted under "generator"; moving
// it here lets the CLI, the service, and internal/plan materialize networks
// from one registry.
type GeneratorSpec struct {
	// Kind selects the generator: "fig1", "fullmesh", or "wan".
	Kind string `json:"kind"`
	// Size is the router count for "fullmesh" (0 means 10).
	Size int `json:"size,omitempty"`
	// The remaining fields parameterize "wan"; zero values take the
	// DefaultWANParams defaults.
	Regions          int `json:"regions,omitempty"`
	RoutersPerRegion int `json:"routers_per_region,omitempty"`
	EdgeRouters      int `json:"edge_routers,omitempty"`
	DCsPerRegion     int `json:"dcs_per_region,omitempty"`
	PeersPerEdge     int `json:"peers_per_edge,omitempty"`
}

// Generate materializes the spec. The second return value is the region
// count WAN suites should assume for this network (0 for non-regional
// generators, deferring to the request's own region setting).
func Generate(g GeneratorSpec) (*topology.Network, int, error) {
	switch g.Kind {
	case "fig1":
		return Fig1(Fig1Options{}), 0, nil
	case "fullmesh":
		size := g.Size
		if size == 0 {
			size = 10
		}
		if size < 2 {
			return nil, 0, fmt.Errorf("fullmesh size must be >= 2")
		}
		return FullMesh(size), 0, nil
	case "wan":
		p := DefaultWANParams()
		if g.Regions > 0 {
			p.Regions = g.Regions
		}
		if g.RoutersPerRegion > 0 {
			p.RoutersPerRegion = g.RoutersPerRegion
		}
		if g.EdgeRouters > 0 {
			p.EdgeRouters = g.EdgeRouters
		}
		if g.DCsPerRegion > 0 {
			p.DCsPerRegion = g.DCsPerRegion
		}
		if g.PeersPerEdge > 0 {
			p.PeersPerEdge = g.PeersPerEdge
		}
		return WAN(p, WANBugs{}), p.Regions, nil
	default:
		return nil, 0, fmt.Errorf("unknown generator kind %q (fig1|fullmesh|wan)", g.Kind)
	}
}
