// Package netgen builds the networks used by the paper's evaluation: the
// running example of Figure 1, the §6.2 full-mesh synthetic networks used
// for the scaling comparison against Minesweeper, and a synthetic wide-area
// network with the structure described in §6.1 (regions, Internet edge
// routers, reused IP prefixes, community-based tagging). It also provides
// bug injectors that plant the classes of configuration errors the paper
// reports finding, so error localization can be demonstrated and tested.
package netgen

import (
	"lightyear/internal/core"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Community and prefix constants for the Figure-1 example.
var (
	// CommTransit is the community 100:1 marking routes learned from ISP1.
	CommTransit = routemodel.MustCommunity("100:1")
	// CustPrefixes is the customer's address space: 10.42.0.0/16 and its
	// subnets up to /24.
	CustPrefixes = func() *routemodel.PrefixSet {
		s := &routemodel.PrefixSet{}
		s.AddRange(routemodel.MustPrefix("10.42.0.0/16"), 16, 24)
		return s
	}()
)

// HasCustPrefix is the Table-3 predicate: the route announces a customer
// prefix.
func HasCustPrefix() spec.Pred { return spec.PrefixIn(CustPrefixes) }

// Fig1Options lets tests inject the configuration bugs discussed in §2.
type Fig1Options struct {
	// OmitTransitTag drops the "add community 100:1" action from R1's
	// import from ISP1 (the bug walked through in §2.1's Output paragraph).
	OmitTransitTag bool
	// StripAtR2 makes R2's import from R1 clear communities, violating the
	// "no other policy strips 100:1" key invariant.
	StripAtR2 bool
	// SkipExportFilter removes the 100:1 deny clause on R2's export to
	// ISP2, so the no-transit property fails at its enforcement point.
	SkipExportFilter bool
	// ForgetStripAtR3 makes R3's import from Customer keep incoming
	// communities, breaking the liveness no-interference condition (§2.2).
	ForgetStripAtR3 bool
}

// Fig1 builds the running-example network of Figure 1: routers R1, R2, R3
// in one AS; external neighbors ISP1 (at R1), ISP2 (at R2), and Customer
// (at R3); internal full mesh. Policies implement the no-transit scheme of
// §2.1 (tag at R1, filter at R2, preserve elsewhere) and accept customer
// prefixes at R3 with community stripping (§2.2).
func Fig1(o Fig1Options) *topology.Network {
	n := topology.New()
	n.AddRouter("R1", 65000).Role = "edge"
	n.AddRouter("R2", 65000).Role = "edge"
	n.AddRouter("R3", 65000).Role = "edge"
	n.AddExternal("ISP1", 174)
	n.AddExternal("ISP2", 3356)
	n.AddExternal("Customer", 64512)

	n.AddPeering("ISP1", "R1")
	n.AddPeering("ISP2", "R2")
	n.AddPeering("Customer", "R3")
	n.AddPeering("R1", "R2")
	n.AddPeering("R1", "R3")
	n.AddPeering("R2", "R3")

	// R1 import from ISP1: drop routes for the customer's space (standard
	// peer-route hygiene), tag everything else with 100:1.
	tagActions := []policy.Action{policy.AddCommunity{Comm: CommTransit}}
	if o.OmitTransitTag {
		tagActions = nil
	}
	n.SetImport(topology.Edge{From: "ISP1", To: "R1"}, &policy.RouteMap{
		Name: "r1-import-isp1",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(CustPrefixes)}, Permit: false},
			{Seq: 20, Actions: tagActions, Permit: true},
		},
	})

	// R2 import from ISP2: same hygiene, no tagging.
	n.SetImport(topology.Edge{From: "ISP2", To: "R2"}, &policy.RouteMap{
		Name: "r2-import-isp2",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(CustPrefixes)}, Permit: false},
			{Seq: 20, Permit: true},
		},
	})

	// R2 export to ISP2: filter transit-tagged routes (the no-transit
	// enforcement point).
	exportClauses := []policy.Clause{
		{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(CommTransit)}, Permit: false},
		{Seq: 20, Permit: true},
	}
	if o.SkipExportFilter {
		exportClauses = exportClauses[1:]
	}
	n.SetExport(topology.Edge{From: "R2", To: "ISP2"}, &policy.RouteMap{
		Name:    "r2-export-isp2",
		Clauses: exportClauses,
	})

	// R3 import from Customer: accept only customer prefixes and strip all
	// incoming communities so customer routes can never carry 100:1.
	custActions := []policy.Action{policy.ClearCommunities{}}
	if o.ForgetStripAtR3 {
		custActions = nil
	}
	n.SetImport(topology.Edge{From: "Customer", To: "R3"}, &policy.RouteMap{
		Name: "r3-import-customer",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(CustPrefixes)}, Actions: custActions, Permit: true},
		},
	})

	if o.StripAtR2 {
		n.SetImport(topology.Edge{From: "R1", To: "R2"}, &policy.RouteMap{
			Name: "r2-import-r1-buggy",
			Clauses: []policy.Clause{
				{Seq: 10, Actions: []policy.Action{policy.ClearCommunities{}}, Permit: true},
			},
		})
	}

	// R1 originates its own aggregate to every neighbor.
	own := routemodel.NewRoute(routemodel.MustPrefix("10.50.0.0/16"))
	for _, to := range []topology.NodeID{"R2", "R3", "ISP1"} {
		n.AddOriginate(topology.Edge{From: "R1", To: to}, own)
	}
	return n
}

// FromISP1Ghost is the ghost attribute of Table 2: true exactly on routes
// imported from ISP1.
func FromISP1Ghost(n *topology.Network) core.GhostDef {
	return core.GhostFromExternals("FromISP1", n, func(id topology.NodeID) bool {
		return id == "ISP1"
	})
}

// Fig1NoTransitProblem builds the Table-2 safety problem: no route sent
// from R2 to ISP2 originates at ISP1. The three user invariants follow the
// table exactly:
//
//	ISP1 → R1:       True (implicit: external source edge)
//	R2 → ISP2:       ¬FromISP1(r)
//	everything else: FromISP1(r) ⇒ 100:1 ∈ Comm(r)
func Fig1NoTransitProblem(n *topology.Network) *core.SafetyProblem {
	fromISP1 := spec.Ghost("FromISP1")
	keyInv := spec.Implies(fromISP1, spec.HasCommunity(CommTransit))
	exitEdge := topology.Edge{From: "R2", To: "ISP2"}

	inv := core.NewInvariants(keyInv)
	inv.SetEdge(exitEdge, spec.Not(fromISP1))

	return &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(exitEdge),
			Pred: spec.Not(fromISP1),
			Desc: "no routes sent to ISP2 come from ISP1 (no-transit)",
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{FromISP1Ghost(n)},
	}
}

// Fig1LivenessProblem builds the Table-3 liveness problem: a route with a
// customer prefix received from Customer is eventually sent from R2 to
// ISP2, along the path Customer → R3 → R2 → ISP2. The path constraints
// include ¬100:1 (or the routes would be dropped at R2's export), and the
// no-interference obligations at R3 and R2 are proven with the invariant
// "customer-prefix routes never carry 100:1".
func Fig1LivenessProblem(n *topology.Network) *core.LivenessProblem {
	cust := HasCustPrefix()
	good := spec.And(cust, spec.Not(spec.HasCommunity(CommTransit)))
	exitEdge := topology.Edge{From: "R2", To: "ISP2"}

	interference := core.NewInvariants(spec.Implies(cust, spec.Not(spec.HasCommunity(CommTransit))))

	return &core.LivenessProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(exitEdge),
			Pred: cust,
			Desc: "customer prefixes are advertised to ISP2",
		},
		Steps: []core.PathStep{
			{Loc: core.AtEdge(topology.Edge{From: "Customer", To: "R3"}), Constraint: cust},
			{Loc: core.AtRouter("R3"), Constraint: good, PrefixPred: cust},
			{Loc: core.AtEdge(topology.Edge{From: "R3", To: "R2"}), Constraint: good},
			{Loc: core.AtRouter("R2"), Constraint: good, PrefixPred: cust},
			{Loc: core.AtEdge(exitEdge), Constraint: cust},
		},
		Ghosts:                 []core.GhostDef{FromISP1Ghost(n)},
		InterferenceInvariants: interference,
	}
}
