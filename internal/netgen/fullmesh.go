package netgen

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Bogons is a small bogon prefix list used by the synthetic eBGP filters
// ("each eBGP connection using only prefix and community filters", §6.2).
var Bogons = func() *routemodel.PrefixSet {
	s := &routemodel.PrefixSet{}
	s.AddRange(routemodel.MustPrefix("0.0.0.0/8"), 8, 32)
	s.AddRange(routemodel.MustPrefix("127.0.0.0/8"), 8, 32)
	s.AddRange(routemodel.MustPrefix("169.254.0.0/16"), 16, 32)
	s.AddRange(routemodel.MustPrefix("192.0.2.0/24"), 24, 32)
	s.AddRange(routemodel.MustPrefix("224.0.0.0/4"), 4, 32)
	return s
}()

// CommBad is the community tagging routes learned from the designated
// "bad" external neighbor X1 in the full-mesh scaling networks.
var CommBad = routemodel.MustCommunity("100:1")

// FullMesh builds the §6.2 synthetic scaling network of size n: routers
// R1..Rn in a full iBGP mesh, each with one eBGP external neighbor Xi —
// n·(n−1) + 2n directed edges, i.e. Θ(n²) as in the paper. The
// configuration implements a no-transit scheme like Figure 1's: R1 tags
// routes from X1 with 100:1, R2 filters 100:1 towards X2, and every eBGP
// import also applies a bogon prefix filter.
func FullMesh(n int) *topology.Network {
	if n < 2 {
		panic("netgen: full mesh needs at least 2 routers")
	}
	net := topology.New()
	for i := 1; i <= n; i++ {
		net.AddRouter(router(i), 65000).Role = "mesh"
		net.AddExternal(external(i), uint32(1000+i))
	}
	for i := 1; i <= n; i++ {
		net.AddPeering(router(i), external(i))
		for j := i + 1; j <= n; j++ {
			net.AddPeering(router(i), router(j))
		}
	}
	for i := 1; i <= n; i++ {
		// eBGP import: bogon filter, plus tagging at R1.
		var actions []policy.Action
		if i == 1 {
			actions = []policy.Action{policy.AddCommunity{Comm: CommBad}}
		}
		net.SetImport(topology.Edge{From: external(i), To: router(i)}, &policy.RouteMap{
			Name: fmt.Sprintf("r%d-import-x%d", i, i),
			Clauses: []policy.Clause{
				{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(Bogons)}, Permit: false},
				{Seq: 20, Actions: actions, Permit: true},
			},
		})
		// eBGP export: the transit filter at R2.
		if i == 2 {
			net.SetExport(topology.Edge{From: router(i), To: external(i)}, &policy.RouteMap{
				Name: "r2-export-x2",
				Clauses: []policy.Clause{
					{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(CommBad)}, Permit: false},
					{Seq: 20, Permit: true},
				},
			})
		}
	}
	return net
}

func router(i int) topology.NodeID   { return topology.NodeID(fmt.Sprintf("R%d", i)) }
func external(i int) topology.NodeID { return topology.NodeID(fmt.Sprintf("X%d", i)) }

// FullMeshGhost is the provenance ghost for the scaling networks: true on
// routes imported from X1.
func FullMeshGhost(n *topology.Network) core.GhostDef {
	return core.GhostFromExternals("FromBad", n, func(id topology.NodeID) bool {
		return id == "X1"
	})
}

// FullMeshExitEdge is the property location of the scaling experiments.
func FullMeshExitEdge() topology.Edge { return topology.Edge{From: "R2", To: "X2"} }

// FullMeshProblem builds the no-transit safety problem for a full-mesh
// network: no route sent from R2 to X2 originates at X1, with the usual
// three-part invariant structure.
func FullMeshProblem(n *topology.Network) *core.SafetyProblem {
	fromBad := spec.Ghost("FromBad")
	keyInv := spec.Implies(fromBad, spec.HasCommunity(CommBad))
	exit := FullMeshExitEdge()

	inv := core.NewInvariants(keyInv)
	inv.SetEdge(exit, spec.Not(fromBad))

	return &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(exit),
			Pred: spec.Not(fromBad),
			Desc: "no-transit: routes from X1 never reach X2",
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{FullMeshGhost(n)},
	}
}

// FullMeshProperty returns the property parameters for the monolithic
// baseline on the same network.
func FullMeshProperty() (core.Location, spec.Pred) {
	return core.AtEdge(FullMeshExitEdge()), spec.Not(spec.Ghost("FromBad"))
}
