package netgen_test

import (
	"testing"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

// TestFig1DSLRoundTrip: parsing the emitted Figure-1 configuration must
// verify exactly like the programmatic network, for the correct and all
// buggy variants.
func TestFig1DSLRoundTrip(t *testing.T) {
	variants := []netgen.Fig1Options{
		{},
		{OmitTransitTag: true},
		{SkipExportFilter: true},
		{StripAtR2: true},
		{ForgetStripAtR3: true},
	}
	for i, o := range variants {
		parsed, err := config.Parse(netgen.Fig1DSL(o))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		progOK := core.VerifySafety(netgen.Fig1NoTransitProblem(netgen.Fig1(o)), core.Options{}).OK()
		parsedOK := core.VerifySafety(netgen.Fig1NoTransitProblem(parsed), core.Options{}).OK()
		if progOK != parsedOK {
			t.Fatalf("variant %d: programmatic=%v parsed=%v", i, progOK, parsedOK)
		}
		progL, err := core.VerifyLiveness(netgen.Fig1LivenessProblem(netgen.Fig1(o)), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		parsedL, err := core.VerifyLiveness(netgen.Fig1LivenessProblem(parsed), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if progL.OK() != parsedL.OK() {
			t.Fatalf("variant %d liveness: programmatic=%v parsed=%v", i, progL.OK(), parsedL.OK())
		}
	}
}

func TestFullMeshDSLRoundTrip(t *testing.T) {
	for _, n := range []int{3, 6} {
		parsed, err := config.Parse(netgen.FullMeshDSL(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prog := netgen.FullMesh(n)
		if parsed.NumEdges() != prog.NumEdges() || len(parsed.Routers()) != len(prog.Routers()) {
			t.Fatalf("n=%d: shape mismatch", n)
		}
		progOK := core.VerifySafety(netgen.FullMeshProblem(prog), core.Options{}).OK()
		parsedOK := core.VerifySafety(netgen.FullMeshProblem(parsed), core.Options{}).OK()
		if !progOK || !parsedOK {
			t.Fatalf("n=%d: programmatic=%v parsed=%v, want both true", n, progOK, parsedOK)
		}
	}
}

func TestWANDSLRoundTrip(t *testing.T) {
	p := netgen.DefaultWANParams()
	for _, bugs := range []netgen.WANBugs{{}, {MissingBogonFilter: true}, {WrongRegionCommunity: true}} {
		parsed, err := config.Parse(netgen.WANDSL(p, bugs))
		if err != nil {
			t.Fatalf("bugs %+v: %v", bugs, err)
		}
		prog := netgen.WAN(p, bugs)
		if parsed.NumEdges() != prog.NumEdges() {
			t.Fatalf("bugs %+v: edges %d vs %d", bugs, parsed.NumEdges(), prog.NumEdges())
		}
		props := netgen.PeeringProperties(p.Regions)
		at := netgen.RegionRouter(0, 0)
		progOK := core.VerifySafety(netgen.PeeringProblem(prog, at, props[0]), core.Options{}).OK()
		parsedOK := core.VerifySafety(netgen.PeeringProblem(parsed, at, props[0]), core.Options{}).OK()
		if progOK != parsedOK {
			t.Fatalf("bugs %+v: bogon property programmatic=%v parsed=%v", bugs, progOK, parsedOK)
		}
		progR := core.VerifySafety(netgen.IPReuseSafetyProblem(prog, p, 0, netgen.RegionRouter(1, 0)), core.Options{}).OK()
		parsedR := core.VerifySafety(netgen.IPReuseSafetyProblem(parsed, p, 0, netgen.RegionRouter(1, 0)), core.Options{}).OK()
		if progR != parsedR {
			t.Fatalf("bugs %+v: reuse property programmatic=%v parsed=%v", bugs, progR, parsedR)
		}
	}
}
