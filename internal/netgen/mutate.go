package netgen

import (
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Mutation helpers for generated suites: small, realistic configuration
// changes applied in place, used by internal/delta tests and the lybench
// "delta" experiment to model the operator loop the paper's incremental
// story targets (§2: "when a node is updated, only the local checks
// pertaining to that node must be re-checked").

// TestNet2 is the 198.51.100.0/24 documentation block (TEST-NET-2). It is
// disjoint from every prefix set the generated properties mention, so
// filtering it is semantically benign: all suite properties keep holding.
var TestNet2 = func() *routemodel.PrefixSet {
	s := &routemodel.PrefixSet{}
	s.AddRange(routemodel.MustPrefix("198.51.100.0/24"), 24, 32)
	return s
}()

// TightenPeerImports prepends a deny-TEST-NET-2 clause to every import
// policy the router applies to routes from its external peers — the
// canonical one-router policy change: checks at those sessions become
// dirty, every property still verifies. It returns the number of sessions
// whose policy changed.
func TightenPeerImports(n *topology.Network, at topology.NodeID) int {
	changed := 0
	for _, e := range n.Edges() {
		if e.To != at || !n.IsExternal(e.From) {
			continue
		}
		n.SetImport(e, PrependDeny(n.Import(e), spec.PrefixIn(TestNet2)))
		changed++
	}
	return changed
}

// PrependDeny returns a copy of m with a leading deny clause matching pred.
// The input map is not modified (generated networks may share map values).
// A nil input is treated as the implicit permit-all.
func PrependDeny(m *policy.RouteMap, pred spec.Pred) *policy.RouteMap {
	out := &policy.RouteMap{Name: "tightened", DefaultPermit: true}
	if m != nil {
		out.Name = m.Name + "+tight"
		out.DefaultPermit = m.DefaultPermit
	}
	seq := 1
	if m != nil && len(m.Clauses) > 0 && m.Clauses[0].Seq <= 1 {
		seq = m.Clauses[0].Seq - 1
	}
	out.Clauses = append(out.Clauses, policy.Clause{Seq: seq, Matches: []spec.Pred{pred}, Permit: false})
	if m != nil {
		out.Clauses = append(out.Clauses, m.Clauses...)
	}
	return out
}
