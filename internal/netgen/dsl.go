package netgen

import (
	"fmt"
	"strings"
)

// This file emits the generated networks in the configuration language of
// internal/config, so they can be written to disk by cmd/lygen and parsed
// back by cmd/lightyear. Round-trip tests assert that parsing an emitted
// configuration verifies identically to the programmatic network.

// Fig1DSL renders the Figure-1 example network as configuration text.
func Fig1DSL(o Fig1Options) string {
	var b strings.Builder
	b.WriteString("# Figure 1 example network (generated)\n")
	for _, r := range []string{"R1", "R2", "R3"} {
		fmt.Fprintf(&b, "node %s { as 65000 role edge }\n", r)
	}
	b.WriteString("external ISP1 { as 174 }\n")
	b.WriteString("external ISP2 { as 3356 }\n")
	b.WriteString("external Customer { as 64512 }\n\n")
	for _, p := range [][2]string{{"ISP1", "R1"}, {"ISP2", "R2"}, {"Customer", "R3"}, {"R1", "R2"}, {"R1", "R3"}, {"R2", "R3"}} {
		fmt.Fprintf(&b, "peering %s %s\n", p[0], p[1])
	}
	b.WriteString("\nprefix-list cust { 10.42.0.0/16 ge 16 le 24 }\n\n")

	b.WriteString("route-map r1-import-isp1 {\n  term 10 deny { match prefix-list cust }\n  term 20 permit {")
	if !o.OmitTransitTag {
		b.WriteString(" set community add 100:1")
	}
	b.WriteString(" }\n}\n")

	b.WriteString("route-map r2-import-isp2 {\n  term 10 deny { match prefix-list cust }\n  term 20 permit { }\n}\n")

	b.WriteString("route-map r2-export-isp2 {\n")
	if !o.SkipExportFilter {
		b.WriteString("  term 10 deny { match community 100:1 }\n")
	}
	b.WriteString("  term 20 permit { }\n}\n")

	b.WriteString("route-map r3-import-customer {\n  term 10 permit {\n    match prefix-list cust\n")
	if !o.ForgetStripAtR3 {
		b.WriteString("    set community none\n")
	}
	b.WriteString("  }\n}\n")

	if o.StripAtR2 {
		b.WriteString("route-map r2-import-r1-buggy {\n  term 10 permit { set community none }\n}\n")
	}

	b.WriteString("\nimport ISP1 -> R1 map r1-import-isp1\n")
	b.WriteString("import ISP2 -> R2 map r2-import-isp2\n")
	b.WriteString("export R2 -> ISP2 map r2-export-isp2\n")
	b.WriteString("import Customer -> R3 map r3-import-customer\n")
	if o.StripAtR2 {
		b.WriteString("import R1 -> R2 map r2-import-r1-buggy\n")
	}
	b.WriteString("\noriginate R1 -> R2 route 10.50.0.0/16 lp 100\n")
	b.WriteString("originate R1 -> R3 route 10.50.0.0/16 lp 100\n")
	b.WriteString("originate R1 -> ISP1 route 10.50.0.0/16 lp 100\n")
	return b.String()
}

// FullMeshDSL renders the §6.2 full-mesh scaling network of size n.
func FullMeshDSL(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# full mesh, n=%d (generated)\n", n)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "node R%d { as 65000 role mesh }\n", i)
		fmt.Fprintf(&b, "external X%d { as %d }\n", i, 1000+i)
	}
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "peering R%d X%d\n", i, i)
		for j := i + 1; j <= n; j++ {
			fmt.Fprintf(&b, "peering R%d R%d\n", i, j)
		}
	}
	b.WriteString("\nprefix-list bogons {\n")
	b.WriteString("  0.0.0.0/8 ge 8 le 32\n  127.0.0.0/8 ge 8 le 32\n  169.254.0.0/16 ge 16 le 32\n  192.0.2.0/24 ge 24 le 32\n  224.0.0.0/4 ge 4 le 32\n}\n\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "route-map r%d-import-x%d {\n  term 10 deny { match prefix-list bogons }\n  term 20 permit {", i, i)
		if i == 1 {
			b.WriteString(" set community add 100:1")
		}
		b.WriteString(" }\n}\n")
		fmt.Fprintf(&b, "import X%d -> R%d map r%d-import-x%d\n", i, i, i, i)
	}
	b.WriteString("route-map r2-export-x2 {\n  term 10 deny { match community 100:1 }\n  term 20 permit { }\n}\n")
	b.WriteString("export R2 -> X2 map r2-export-x2\n")
	return b.String()
}

// WANDSL renders the §6.1 synthetic WAN.
func WANDSL(p WANParams, bugs WANBugs) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# synthetic WAN: %d regions x %d routers, %d edge routers (generated)\n",
		p.Regions, p.RoutersPerRegion, p.EdgeRouters)

	var backbone []string
	for r := 0; r < p.Regions; r++ {
		for i := 0; i < p.RoutersPerRegion; i++ {
			id := string(RegionRouter(r, i))
			fmt.Fprintf(&b, "node %s { as %d role wan region region-%d }\n", id, WANLocalAS, r)
			backbone = append(backbone, id)
		}
		for d := 0; d < p.DCsPerRegion; d++ {
			fmt.Fprintf(&b, "external %s { as %d role dc }\n", DCRouter(r, d), 65100+r)
		}
	}
	for e := 0; e < p.EdgeRouters; e++ {
		id := string(EdgeRouter(e))
		fmt.Fprintf(&b, "node %s { as %d role edge }\n", id, WANLocalAS)
		backbone = append(backbone, id)
		for q := 0; q < p.PeersPerEdge; q++ {
			fmt.Fprintf(&b, "external %s { as %d role peer }\n", PeerNode(e, q), 2000+e*100+q)
		}
	}
	for i := 0; i < len(backbone); i++ {
		for j := i + 1; j < len(backbone); j++ {
			fmt.Fprintf(&b, "peering %s %s\n", backbone[i], backbone[j])
		}
	}
	for r := 0; r < p.Regions; r++ {
		for d := 0; d < p.DCsPerRegion; d++ {
			for i := 0; i < p.RoutersPerRegion; i++ {
				fmt.Fprintf(&b, "peering %s %s\n", DCRouter(r, d), RegionRouter(r, i))
			}
		}
	}
	for e := 0; e < p.EdgeRouters; e++ {
		for q := 0; q < p.PeersPerEdge; q++ {
			fmt.Fprintf(&b, "peering %s %s\n", PeerNode(e, q), EdgeRouter(e))
		}
	}

	b.WriteString("\nprefix-list reused { 10.128.0.0/9 ge 9 le 28 }\n")
	b.WriteString("prefix-list bogons {\n  0.0.0.0/8 ge 8 le 32\n  127.0.0.0/8 ge 8 le 32\n  169.254.0.0/16 ge 16 le 32\n  192.0.2.0/24 ge 24 le 32\n  224.0.0.0/4 ge 4 le 32\n}\n")
	b.WriteString("prefix-list class-e { 240.0.0.0/4 ge 4 le 32 }\n")
	b.WriteString("prefix-list default-route { 0.0.0.0/0 }\n")
	var regionals []string
	for r := 0; r < p.Regions; r++ {
		regionals = append(regionals, RegionComm(r).String())
	}
	fmt.Fprintf(&b, "community-list regional { %s }\n\n", strings.Join(regionals, " "))

	// DC imports.
	for r := 0; r < p.Regions; r++ {
		comm := RegionComm(r)
		if bugs.WrongRegionCommunity && r == 0 && p.Regions > 1 {
			comm = RegionComm(1)
		}
		for d := 0; d < p.DCsPerRegion; d++ {
			for i := 0; i < p.RoutersPerRegion; i++ {
				name := fmt.Sprintf("dc-import-r%d-%d-%d", r, d, i)
				fmt.Fprintf(&b, "route-map %s {\n  term 10 permit {\n    match prefix-list reused\n    set community none\n    set community add %s\n  }\n  term 20 permit { set community none }\n}\n", name, comm)
				fmt.Fprintf(&b, "import %s -> %s map %s\n", DCRouter(r, d), RegionRouter(r, i), name)
			}
		}
	}

	// iBGP imports: one map per destination router role/region.
	for r := 0; r < p.Regions; r++ {
		name := fmt.Sprintf("ibgp-import-region-%d", r)
		fmt.Fprintf(&b, "route-map %s {\n  term 10 deny {\n    match prefix-list reused\n    match not community %s\n  }\n  term 20 permit { }\n}\n", name, RegionComm(r))
	}
	b.WriteString("route-map ibgp-import-edge {\n  term 10 deny { match prefix-list reused }\n  term 20 permit { }\n}\n")
	for i, src := range backbone {
		for j, dst := range backbone {
			if i == j {
				continue
			}
			var mapName string
			if strings.HasPrefix(dst, "edge-") {
				mapName = "ibgp-import-edge"
			} else {
				var rr, ii int
				fmt.Sscanf(dst, "wan-r%d-%d", &rr, &ii)
				mapName = fmt.Sprintf("ibgp-import-region-%d", rr)
			}
			fmt.Fprintf(&b, "import %s -> %s map %s\n", src, dst, mapName)
		}
	}

	// Peer imports and exports.
	for e := 0; e < p.EdgeRouters; e++ {
		for q := 0; q < p.PeersPerEdge; q++ {
			name := fmt.Sprintf("peer-import-e%d-%d", e, q)
			fmt.Fprintf(&b, "route-map %s {\n", name)
			seq := 10
			deny := func(match string) {
				fmt.Fprintf(&b, "  term %d deny { match %s }\n", seq, match)
				seq += 10
			}
			if !(bugs.MissingBogonFilter && e == 0 && q == 0) {
				deny("prefix-list bogons")
			}
			deny("prefix-list class-e")
			deny("prefix-list default-route")
			deny("prefix-list reused")
			deny("plen >= 25")
			deny("not pathlen <= 30")
			deny(fmt.Sprintf("path-contains %d", PrivateASN))
			deny(fmt.Sprintf("path-contains %d", WANLocalAS))
			fmt.Fprintf(&b, "  term %d permit {\n    set community none\n", seq)
			if !(bugs.MissingLocalPref && e == 0 && q == 1 && p.PeersPerEdge > 1) {
				fmt.Fprintf(&b, "    set local-pref %d\n", PeerLocalPref)
			}
			fmt.Fprintf(&b, "    set med %d\n  }\n}\n", PeerMED)
			fmt.Fprintf(&b, "import %s -> %s map %s\n", PeerNode(e, q), EdgeRouter(e), name)

			expName := fmt.Sprintf("peer-export-e%d-%d", e, q)
			fmt.Fprintf(&b, "route-map %s {\n  term 10 deny { match prefix-list reused }\n  term 20 deny { match community-list regional }\n  term 30 permit { }\n}\n", expName)
			fmt.Fprintf(&b, "export %s -> %s map %s\n", EdgeRouter(e), PeerNode(e, q), expName)
		}
	}
	return b.String()
}
