package netgen

import (
	"fmt"
	"strings"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Serializable config deltas for migration plans (internal/migrate): a
// MutationSpec names one realistic route-map edit — the unit a deployment
// step applies — and ApplyMutation produces the post-step network without
// touching the input state, so a plan walk can hold many intermediate
// states at once. The ordered change-set generators at the bottom emit
// labeled step sequences for tests and benchmarks, including the
// clause-swap set whose safety depends on order.

// Mutation kinds understood by ApplyMutation.
const (
	// MutTighten prepends a deny-TEST-NET-2 clause to every peer import at
	// router At (TightenPeerImports): semantically benign, touches every
	// external session of one router.
	MutTighten = "tighten-imports"
	// MutInsertImportDeny / MutInsertExportDeny insert a deny clause with
	// sequence number Seq matching the named predicate Match into the
	// import (resp. export) route map bound on the edge From -> To.
	// Inserting at an occupied sequence number is an error, as it is on
	// real devices where sequence numbers are unique per map.
	MutInsertImportDeny = "insert-import-deny"
	MutInsertExportDeny = "insert-export-deny"
	// MutRemoveImportClause / MutRemoveExportClause delete the clause with
	// sequence number Seq from the edge's import (resp. export) map; a
	// missing sequence number is an error.
	MutRemoveImportClause = "remove-import-clause"
	MutRemoveExportClause = "remove-export-clause"
)

// MutationSpec is one named configuration edit, the serializable form a
// migration step carries over the wire and in steps.json files.
type MutationSpec struct {
	Kind  string          `json:"kind"`
	At    topology.NodeID `json:"at,omitempty"`   // tighten-imports: the router
	From  topology.NodeID `json:"from,omitempty"` // clause edits: the session edge
	To    topology.NodeID `json:"to,omitempty"`
	Seq   int             `json:"seq,omitempty"`   // clause sequence number
	Match string          `json:"match,omitempty"` // insert kinds: named predicate
}

// String renders the spec compactly for labels and error messages.
func (m MutationSpec) String() string {
	switch m.Kind {
	case MutTighten:
		return fmt.Sprintf("%s at %s", m.Kind, m.At)
	case MutInsertImportDeny, MutInsertExportDeny:
		return fmt.Sprintf("%s %s -> %s seq %d match %s", m.Kind, m.From, m.To, m.Seq, m.Match)
	default:
		return fmt.Sprintf("%s %s -> %s seq %d", m.Kind, m.From, m.To, m.Seq)
	}
}

// MatchPred resolves the named match predicates insert mutations carry:
// "community:<a>:<b>" plus the generated suites' well-known prefix sets.
func MatchPred(name string) (spec.Pred, error) {
	if rest, ok := strings.CutPrefix(name, "community:"); ok {
		c, err := routemodel.ParseCommunity(rest)
		if err != nil {
			return nil, fmt.Errorf("netgen: bad match %q: %v", name, err)
		}
		return spec.HasCommunity(c), nil
	}
	switch name {
	case "test-net-2":
		return spec.PrefixIn(TestNet2), nil
	case "bogons":
		return spec.PrefixIn(Bogons), nil
	case "class-e":
		return spec.PrefixIn(ClassE), nil
	case "default-route":
		return spec.PrefixIn(DefaultRoute), nil
	case "reused-ips":
		return spec.PrefixIn(ReusedIPs), nil
	case "cust-prefixes":
		return spec.PrefixIn(CustPrefixes), nil
	}
	return nil, fmt.Errorf("netgen: unknown match predicate %q (want community:<a>:<b>, test-net-2, bogons, class-e, default-route, reused-ips, or cust-prefixes)", name)
}

// Validate checks the spec is well-formed independent of any network state,
// so plan compilation can reject bad steps before anything runs.
func (m MutationSpec) Validate() error {
	switch m.Kind {
	case MutTighten:
		if m.At == "" {
			return fmt.Errorf("netgen: %s requires \"at\"", m.Kind)
		}
	case MutInsertImportDeny, MutInsertExportDeny:
		if m.From == "" || m.To == "" {
			return fmt.Errorf("netgen: %s requires \"from\" and \"to\"", m.Kind)
		}
		if m.Seq <= 0 {
			return fmt.Errorf("netgen: %s requires a positive \"seq\"", m.Kind)
		}
		if _, err := MatchPred(m.Match); err != nil {
			return err
		}
	case MutRemoveImportClause, MutRemoveExportClause:
		if m.From == "" || m.To == "" {
			return fmt.Errorf("netgen: %s requires \"from\" and \"to\"", m.Kind)
		}
		if m.Seq <= 0 {
			return fmt.Errorf("netgen: %s requires a positive \"seq\"", m.Kind)
		}
	case "":
		return fmt.Errorf("netgen: mutation kind missing")
	default:
		return fmt.Errorf("netgen: unknown mutation kind %q", m.Kind)
	}
	return nil
}

// TouchedNodes returns the nodes whose local configuration the mutation can
// edit. Every local check reads the route maps of one session edge (or of
// one router's edges), so two mutations with disjoint touched-node sets
// edit disjoint check footprints: they commute, and applying them in either
// adjacent order traverses intermediate states that verify identically.
// Migration-order search prunes on exactly this independence.
func (m MutationSpec) TouchedNodes() []topology.NodeID {
	if m.Kind == MutTighten {
		return []topology.NodeID{m.At}
	}
	return []topology.NodeID{m.From, m.To}
}

// IndependentMutations reports whether a and b touch disjoint node sets and
// therefore commute (see TouchedNodes).
func IndependentMutations(a, b MutationSpec) bool {
	for _, x := range a.TouchedNodes() {
		for _, y := range b.TouchedNodes() {
			if x == y {
				return false
			}
		}
	}
	return true
}

// ApplyMutation returns the network state after applying m to n. The input
// network is never modified (Clone + copy-on-write maps), so a caller can
// branch many candidate orders off one state. Errors mean the mutation does
// not apply to this state — an unknown edge, an occupied sequence number on
// insert, a missing one on remove — which a migration plan treats as the
// step being infeasible at this point of the sequence.
func ApplyMutation(n *topology.Network, m MutationSpec) (*topology.Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Kind == MutTighten {
		if n.Node(m.At) == nil || n.IsExternal(m.At) {
			return nil, fmt.Errorf("netgen: %s: no configured router %q", m.Kind, m.At)
		}
		c := n.Clone()
		if TightenPeerImports(c, m.At) == 0 {
			return nil, fmt.Errorf("netgen: %s: router %q has no external peer sessions", m.Kind, m.At)
		}
		return c, nil
	}

	e := topology.Edge{From: m.From, To: m.To}
	if !n.HasEdge(e) {
		return nil, fmt.Errorf("netgen: %s: no session edge %s", m.Kind, e)
	}
	isImport := m.Kind == MutInsertImportDeny || m.Kind == MutRemoveImportClause
	old := n.Export(e)
	if isImport {
		old = n.Import(e)
	}
	var edited *policy.RouteMap
	var err error
	switch m.Kind {
	case MutInsertImportDeny, MutInsertExportDeny:
		pred, _ := MatchPred(m.Match) // validated above
		edited, err = InsertDenyClause(old, m.Seq, pred)
	default:
		edited, err = RemoveClause(old, m.Seq)
	}
	if err != nil {
		return nil, fmt.Errorf("netgen: %s on %s: %v", m.Kind, e, err)
	}
	c := n.Clone()
	if isImport {
		c.SetImport(e, edited)
	} else {
		c.SetExport(e, edited)
	}
	return c, nil
}

// InsertDenyClause returns a copy of m with a deny clause for pred at
// sequence number seq, placed so ascending sequence order — the first-match
// evaluation order of generated maps — is preserved. Inserting at an
// occupied sequence number is an error: on real devices sequence numbers
// are unique per map, and a migration step that assumes a free slot must
// fail loudly when an earlier step (or none) left it occupied. A nil map is
// the implicit permit-all and becomes an explicit map with the one clause.
func InsertDenyClause(m *policy.RouteMap, seq int, pred spec.Pred) (*policy.RouteMap, error) {
	out := &policy.RouteMap{Name: "edited", DefaultPermit: true}
	if m != nil {
		out.Name = m.Name
		out.DefaultPermit = m.DefaultPermit
		out.Clauses = append([]policy.Clause(nil), m.Clauses...)
	}
	at := len(out.Clauses)
	for i, cl := range out.Clauses {
		if cl.Seq == seq {
			return nil, fmt.Errorf("sequence %d already occupied", seq)
		}
		if cl.Seq > seq {
			at = i
			break
		}
	}
	clause := policy.Clause{Seq: seq, Matches: []spec.Pred{pred}, Permit: false}
	out.Clauses = append(out.Clauses[:at], append([]policy.Clause{clause}, out.Clauses[at:]...)...)
	return out, nil
}

// FreeSeq returns the smallest sequence number >= from that is unoccupied
// in m (a nil map is the implicit permit-all, so from itself is free).
// Mutation generators — the corpus fuzzer's seeded walks — use it to build
// insert steps that are feasible by construction.
func FreeSeq(m *policy.RouteMap, from int) int {
	if from < 1 {
		from = 1
	}
	if m == nil {
		return from
	}
	occupied := make(map[int]bool, len(m.Clauses))
	for _, cl := range m.Clauses {
		occupied[cl.Seq] = true
	}
	for ; occupied[from]; from++ {
	}
	return from
}

// RemoveClause returns a copy of m without the clause at sequence number
// seq; a missing sequence number (including a nil map) is an error.
func RemoveClause(m *policy.RouteMap, seq int) (*policy.RouteMap, error) {
	if m == nil {
		return nil, fmt.Errorf("no clause with sequence %d (map is implicit permit-all)", seq)
	}
	for i, cl := range m.Clauses {
		if cl.Seq == seq {
			out := &policy.RouteMap{Name: m.Name, DefaultPermit: m.DefaultPermit}
			out.Clauses = append(append([]policy.Clause(nil), m.Clauses[:i]...), m.Clauses[i+1:]...)
			return out, nil
		}
	}
	return nil, fmt.Errorf("no clause with sequence %d in %s", seq, m.Name)
}

// MigrationStep is one labeled config delta in an ordered change set.
type MigrationStep struct {
	Label    string       `json:"label"`
	Mutation MutationSpec `json:"mutation"`
}

// Fig1FilterSwap returns the clause-swap change set on R2's export to ISP2
// in the Figure-1 network: replace the transit filter clause at sequence 10
// with a fresh copy, keeping the network transit-safe throughout.
//
//	shield:    insert deny 100:1 at seq 5  (safe any time)
//	retire:    remove the clause at seq 10 (safe only once shielded)
//	reinstate: insert deny 100:1 at seq 10 (needs seq 10 free: after retire)
//
// Exactly one of the six orders — shield, retire, reinstate — keeps every
// intermediate state verified: retiring first leaks transit routes to ISP2,
// and reinstating before retiring collides with the occupied sequence
// number. The first two steps alone are the minimal unsafe-in-one-order
// pair: [shield, retire] verifies at every state, [retire, shield] violates
// the no-transit property after its first step.
func Fig1FilterSwap() []MigrationStep {
	deny := "community:" + CommTransit.String()
	edge := func(kind string, seq int, match string) MutationSpec {
		return MutationSpec{Kind: kind, From: "R2", To: "ISP2", Seq: seq, Match: match}
	}
	return []MigrationStep{
		{Label: "shield", Mutation: edge(MutInsertExportDeny, 5, deny)},
		{Label: "retire", Mutation: edge(MutRemoveExportClause, 10, "")},
		{Label: "reinstate", Mutation: edge(MutInsertExportDeny, 10, deny)},
	}
}

// Fig1ShieldRetire returns the two-step prefix of Fig1FilterSwap: safe in
// the given order, violating in the reverse one.
func Fig1ShieldRetire() []MigrationStep {
	return Fig1FilterSwap()[:2]
}

// WANTightenSteps returns k labeled steps each tightening the peer imports
// of a distinct WAN edge router. The steps touch disjoint routers, so every
// order is safe — the benchmark shape for measuring per-step re-solve cost
// and search pruning on commuting change sets.
func WANTightenSteps(k int) []MigrationStep {
	steps := make([]MigrationStep, 0, k)
	for i := 0; i < k; i++ {
		steps = append(steps, MigrationStep{
			Label:    fmt.Sprintf("tighten-%s", EdgeRouter(i)),
			Mutation: MutationSpec{Kind: MutTighten, At: EdgeRouter(i)},
		})
	}
	return steps
}
