package netgen

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// WANParams sizes the synthetic wide-area network modeled on §6.1: a
// backbone of region routers partitioned into regions (each attached to
// data-center routers announcing regional — partly reused — address space)
// plus Internet edge routers peering with ISPs, other clouds, and
// customers. All WAN routers form a full iBGP mesh, which yields tens of
// thousands of directed peering sessions at the paper's scale.
type WANParams struct {
	Regions          int // number of regions (paper: dozens)
	RoutersPerRegion int // WAN routers per region
	EdgeRouters      int // Internet edge routers
	DCsPerRegion     int // data-center neighbors per region
	PeersPerEdge     int // Internet peers per edge router
}

// DefaultWANParams is a small-but-structured instance for tests.
func DefaultWANParams() WANParams {
	return WANParams{Regions: 3, RoutersPerRegion: 2, EdgeRouters: 2, DCsPerRegion: 1, PeersPerEdge: 2}
}

// WANBugs injects the configuration error classes reported in §6.1.
type WANBugs struct {
	// MissingBogonFilter removes the bogon clause from one edge router's
	// peer import ("inconsistencies between the filters of edge routers
	// that are intended to have similar behavior").
	MissingBogonFilter bool
	// WrongRegionCommunity makes one region's DC import tag reused routes
	// with another region's community ("a router used a community that was
	// not present in the metadata file").
	WrongRegionCommunity bool
	// MissingLocalPref drops the local-pref normalization on one peering
	// session ("a handful had ad-hoc policies").
	MissingLocalPref bool
}

// WAN address plan and shared constants.
var (
	// ReusedIPs is the private space reused across regions (§6.1).
	ReusedIPs = func() *routemodel.PrefixSet {
		s := &routemodel.PrefixSet{}
		s.AddRange(routemodel.MustPrefix("10.128.0.0/9"), 9, 28)
		return s
	}()
	// ClassE bogons kept separate from Bogons to give the harness distinct
	// peering properties.
	ClassE = func() *routemodel.PrefixSet {
		s := &routemodel.PrefixSet{}
		s.AddRange(routemodel.MustPrefix("240.0.0.0/4"), 4, 32)
		return s
	}()
	// DefaultRoute matches 0.0.0.0/0 exactly.
	DefaultRoute = routemodel.NewPrefixSet(routemodel.MustPrefix("0.0.0.0/0"))

	// PeerLocalPref and PeerMED are the normalized attribute values set on
	// all peer-learned routes.
	PeerLocalPref uint32 = 80
	PeerMED       uint32 = 0

	// PrivateASN is the representative reserved ASN filtered from peer
	// paths; WANLocalAS is the WAN's own AS (eBGP loop filtering).
	PrivateASN uint32 = 64512
	WANLocalAS uint32 = 8075
)

// RegionComm returns the regional community for region index i (0-based):
// 200:(100+i), mirroring the region→community metadata file of §6.1.
func RegionComm(i int) routemodel.Community {
	return routemodel.MkCommunity(200, uint16(100+i))
}

// RegionalComms lists every region community for a WAN of the given size.
func RegionalComms(regions int) []routemodel.Community {
	out := make([]routemodel.Community, regions)
	for i := range out {
		out[i] = RegionComm(i)
	}
	return out
}

// Node naming helpers.
func RegionRouter(region, i int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("wan-r%d-%d", region, i))
}
func EdgeRouter(i int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("edge-%d", i))
}
func DCRouter(region, i int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("dc-r%d-%d", region, i))
}
func PeerNode(edge, i int) topology.NodeID {
	return topology.NodeID(fmt.Sprintf("peer-e%d-%d", edge, i))
}

func regionName(i int) string { return fmt.Sprintf("region-%d", i) }

// WAN builds the synthetic wide-area network.
func WAN(p WANParams, bugs WANBugs) *topology.Network {
	n := topology.New()
	regionals := RegionalComms(p.Regions)

	// Nodes.
	var backbone []topology.NodeID
	for r := 0; r < p.Regions; r++ {
		for i := 0; i < p.RoutersPerRegion; i++ {
			id := RegionRouter(r, i)
			node := n.AddRouter(id, WANLocalAS)
			node.Role = "wan"
			node.Region = regionName(r)
			backbone = append(backbone, id)
		}
		for d := 0; d < p.DCsPerRegion; d++ {
			n.AddExternal(DCRouter(r, d), uint32(65100+r)).Role = "dc"
		}
	}
	for e := 0; e < p.EdgeRouters; e++ {
		id := EdgeRouter(e)
		n.AddRouter(id, WANLocalAS).Role = "edge"
		backbone = append(backbone, id)
		for q := 0; q < p.PeersPerEdge; q++ {
			n.AddExternal(PeerNode(e, q), uint32(2000+e*100+q)).Role = "peer"
		}
	}

	// Full iBGP mesh over the backbone.
	for i := 0; i < len(backbone); i++ {
		for j := i + 1; j < len(backbone); j++ {
			n.AddPeering(backbone[i], backbone[j])
		}
	}
	// DC and peer attachments.
	for r := 0; r < p.Regions; r++ {
		for d := 0; d < p.DCsPerRegion; d++ {
			for i := 0; i < p.RoutersPerRegion; i++ {
				n.AddPeering(DCRouter(r, d), RegionRouter(r, i))
			}
		}
	}
	for e := 0; e < p.EdgeRouters; e++ {
		for q := 0; q < p.PeersPerEdge; q++ {
			n.AddPeering(PeerNode(e, q), EdgeRouter(e))
		}
	}

	// Policies.
	// 1. DC imports at region routers: reused routes get communities
	// cleared and the region community added (§6.1: "deleting all
	// communities on routes coming from the data centers, before adding
	// the community C").
	for r := 0; r < p.Regions; r++ {
		comm := RegionComm(r)
		if bugs.WrongRegionCommunity && r == 0 && p.Regions > 1 {
			comm = RegionComm(1) // the metadata-file bug
		}
		for d := 0; d < p.DCsPerRegion; d++ {
			for i := 0; i < p.RoutersPerRegion; i++ {
				e := topology.Edge{From: DCRouter(r, d), To: RegionRouter(r, i)}
				n.SetImport(e, &policy.RouteMap{
					Name: fmt.Sprintf("dc-import-r%d-%d-%d", r, d, i),
					Clauses: []policy.Clause{
						{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(ReusedIPs)},
							Actions: []policy.Action{policy.ClearCommunities{}, policy.AddCommunity{Comm: comm}},
							Permit:  true},
						{Seq: 20, Actions: []policy.Action{policy.ClearCommunities{}}, Permit: true},
					},
				})
			}
		}
	}

	// 2. Internal (iBGP) imports: region routers accept reused routes only
	// with their own region community; edge routers accept no reused
	// routes at all.
	for _, e := range n.Edges() {
		if n.IsExternal(e.From) || n.IsExternal(e.To) {
			continue
		}
		dst := n.Node(e.To)
		var clauses []policy.Clause
		if dst.Role == "wan" {
			own := RegionComm(regionIndex(dst.Region))
			clauses = []policy.Clause{
				{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(ReusedIPs), spec.Not(spec.HasCommunity(own))}, Permit: false},
				{Seq: 20, Permit: true},
			}
		} else {
			clauses = []policy.Clause{
				{Seq: 10, Matches: []spec.Pred{spec.PrefixIn(ReusedIPs)}, Permit: false},
				{Seq: 20, Permit: true},
			}
		}
		n.SetImport(e, &policy.RouteMap{
			Name:    fmt.Sprintf("ibgp-import-%s-from-%s", e.To, e.From),
			Clauses: clauses,
		})
	}

	// 3. Peer imports at edge routers: the eleven "bad route" filters of
	// §6.1 plus attribute normalization.
	for e := 0; e < p.EdgeRouters; e++ {
		for q := 0; q < p.PeersPerEdge; q++ {
			edge := topology.Edge{From: PeerNode(e, q), To: EdgeRouter(e)}
			var clauses []policy.Clause
			seq := 10
			deny := func(preds ...spec.Pred) {
				clauses = append(clauses, policy.Clause{Seq: seq, Matches: preds, Permit: false})
				seq += 10
			}
			if !(bugs.MissingBogonFilter && e == 0 && q == 0) {
				deny(spec.PrefixIn(Bogons))
			}
			deny(spec.PrefixIn(ClassE))
			deny(spec.PrefixIn(DefaultRoute))
			deny(spec.PrefixIn(ReusedIPs))
			deny(spec.PrefixLenAtLeast(25))
			deny(spec.Not(spec.PathLenAtMost(30)))
			deny(spec.PathContains(PrivateASN))
			deny(spec.PathContains(WANLocalAS))
			actions := []policy.Action{
				policy.ClearCommunities{},
				policy.SetLocalPref{Value: PeerLocalPref},
				policy.SetMED{Value: PeerMED},
			}
			if bugs.MissingLocalPref && e == 0 && q == 1 && p.PeersPerEdge > 1 {
				actions = []policy.Action{policy.ClearCommunities{}, policy.SetMED{Value: PeerMED}}
			}
			clauses = append(clauses, policy.Clause{Seq: seq, Actions: actions, Permit: true})
			n.SetImport(edge, &policy.RouteMap{
				Name:    fmt.Sprintf("peer-import-e%d-%d", e, q),
				Clauses: clauses,
			})
		}
	}

	// 4. Exports towards externals: edge routers never export reused
	// space or regionally tagged routes to the Internet; region routers
	// export freely to DCs.
	for _, e := range n.Edges() {
		if !n.IsExternal(e.To) || n.IsExternal(e.From) {
			continue
		}
		if n.Node(e.To).Role == "peer" {
			var matches []spec.Pred
			matches = append(matches, spec.Or(
				spec.PrefixIn(ReusedIPs),
				spec.HasAnyCommunity(regionals...),
			))
			n.SetExport(e, &policy.RouteMap{
				Name: fmt.Sprintf("peer-export-%s-to-%s", e.From, e.To),
				Clauses: []policy.Clause{
					{Seq: 10, Matches: matches, Permit: false},
					{Seq: 20, Permit: true},
				},
			})
		}
	}

	return n
}

func regionIndex(name string) int {
	var i int
	fmt.Sscanf(name, "region-%d", &i)
	return i
}

// FromPeerGhost marks routes imported from any Internet peer.
func FromPeerGhost(n *topology.Network) core.GhostDef {
	return core.GhostFromExternals("FromPeer", n, func(id topology.NodeID) bool {
		node := n.Node(id)
		return node != nil && node.Role == "peer"
	})
}

// FromRegionGhost marks routes imported from region r's data centers.
func FromRegionGhost(n *topology.Network, r int) core.GhostDef {
	name := fmt.Sprintf("FromRegion%d", r)
	return core.GhostFromExternals(name, n, func(id topology.NodeID) bool {
		node := n.Node(id)
		if node == nil || node.Role != "dc" {
			return false
		}
		var rr, dd int
		if _, err := fmt.Sscanf(string(id), "dc-r%d-%d", &rr, &dd); err != nil {
			return false
		}
		return rr == r
	})
}

// PeeringProperty is one of the §6.1 "bad route" classes Q(r): the paper
// verified eleven properties of the form FromPeer(r) ⇒ Q(r) at every
// router.
type PeeringProperty struct {
	Name string
	Q    spec.Pred
}

// PeeringProperties returns the peering property suite for a WAN of the
// given size (eleven properties, as in §6.1).
func PeeringProperties(regions int) []PeeringProperty {
	return []PeeringProperty{
		{"no-bogons", spec.Not(spec.PrefixIn(Bogons))},
		{"no-class-e", spec.Not(spec.PrefixIn(ClassE))},
		{"no-default-route", spec.Not(spec.PrefixIn(DefaultRoute))},
		{"no-reused-space", spec.Not(spec.PrefixIn(ReusedIPs))},
		{"max-prefix-length", spec.PrefixLenAtMost(24)},
		{"max-as-path-length", spec.PathLenAtMost(31)},
		{"no-private-asn", spec.Not(spec.PathContains(PrivateASN))},
		{"no-self-asn", spec.Not(spec.PathContains(WANLocalAS))},
		{"no-regional-communities", spec.NoCommunityAmong(RegionalComms(regions))},
		{"local-pref-normalized", spec.LocalPrefEquals(PeerLocalPref)},
		{"med-normalized", spec.MEDEquals(PeerMED)},
	}
}

// PeeringProblem builds the Table-4a style safety problem for one peering
// property at one router: (R, FromPeer ⇒ Q). The invariant structure
// follows Table 4a: the same implication holds at every internal router and
// edge, and external edges are unconstrained.
func PeeringProblem(n *topology.Network, at topology.NodeID, prop PeeringProperty) *core.SafetyProblem {
	pred := spec.Implies(spec.Ghost("FromPeer"), prop.Q)
	inv := core.NewInvariants(pred)
	return &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtRouter(at),
			Pred: pred,
			Desc: fmt.Sprintf("%s at %s", prop.Name, at),
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{FromPeerGhost(n)},
	}
}

// IPReuseSafetyProblem builds the Table-4b problem for region r: routers
// outside region r never accept reused-prefix routes from r's data centers.
// The invariants follow the table: inside the region, reused FromRegion
// routes carry exactly the region community; outside, FromRegion implies
// not reused; edges inherit the sending router's invariant.
func IPReuseSafetyProblem(n *topology.Network, p WANParams, r int, outside topology.NodeID) *core.SafetyProblem {
	from := spec.Ghost(fmt.Sprintf("FromRegion%d", r))
	reused := spec.PrefixIn(ReusedIPs)
	regionals := RegionalComms(p.Regions)
	inRegionInv := spec.Implies(spec.And(from, reused), spec.OnlyCommunityAmong(regionals, RegionComm(r)))
	outRegionInv := spec.Implies(from, spec.Not(reused))

	inv := core.NewInvariants(outRegionInv)
	region := regionName(r)
	for _, id := range n.RoutersByRegion(region) {
		inv.SetRouter(id, inRegionInv)
	}
	// Edges inherit the sender's invariant (Table 4b, row "R1 → R2").
	for _, e := range n.Edges() {
		if n.IsExternal(e.From) {
			continue // automatically True
		}
		if n.Node(e.From).Region == region {
			inv.SetEdge(e, inRegionInv)
		}
	}
	return &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtRouter(outside),
			Pred: outRegionInv,
			Desc: fmt.Sprintf("reused IPs of region %d stay out of %s", r, outside),
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{FromRegionGhost(n, r)},
	}
}

// IPReuseLivenessProblem builds the Table-4c problem for region r: a reused
// route announced by a data center to R1 eventually reaches R2, both in
// region r, along D → R1 → R2.
func IPReuseLivenessProblem(n *topology.Network, p WANParams, r int) *core.LivenessProblem {
	from := spec.Ghost(fmt.Sprintf("FromRegion%d", r))
	reused := spec.PrefixIn(ReusedIPs)
	regionals := RegionalComms(p.Regions)
	tagged := spec.OnlyCommunityAmong(regionals, RegionComm(r))
	good := spec.And(from, reused, tagged)

	d := DCRouter(r, 0)
	r1 := RegionRouter(r, 0)
	r2 := RegionRouter(r, 1)

	// No-interference invariants: at region-r routers, any reused-prefix
	// route is a properly tagged region-r route; elsewhere reused routes
	// carry their own region's tag (edge routers accept none).
	interference := core.NewInvariants(spec.Implies(reused, spec.HasAnyCommunity(regionals...)))
	region := regionName(r)
	for _, id := range n.RoutersByRegion(region) {
		interference.SetRouter(id, spec.Implies(reused, good))
	}
	for _, id := range n.RoutersByRole("edge") {
		interference.SetRouter(id, spec.Not(reused))
	}
	for rr := 0; rr < p.Regions; rr++ {
		if rr == r {
			continue
		}
		// Other regions' reused routes carry exactly their own tag; a
		// weaker "has C_rr" invariant would admit doubly-tagged routes
		// that region r's import filters could not tell apart.
		other := spec.Implies(reused, spec.OnlyCommunityAmong(regionals, RegionComm(rr)))
		for _, id := range n.RoutersByRegion(regionName(rr)) {
			interference.SetRouter(id, other)
		}
	}
	// Edge locations inherit the sending router's invariant.
	for _, e := range n.Edges() {
		if n.IsExternal(e.From) {
			continue
		}
		sender := n.Node(e.From)
		switch {
		case sender.Region == region:
			interference.SetEdge(e, spec.Implies(reused, good))
		case sender.Role == "edge":
			interference.SetEdge(e, spec.Not(reused))
		default:
			interference.SetEdge(e, spec.Implies(reused,
				spec.OnlyCommunityAmong(regionals, RegionComm(regionIndex(sender.Region)))))
		}
	}

	return &core.LivenessProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtRouter(r2),
			Pred: spec.And(from, reused),
			Desc: fmt.Sprintf("region %d reused routes reach %s", r, r2),
		},
		Steps: []core.PathStep{
			{Loc: core.AtEdge(topology.Edge{From: d, To: r1}), Constraint: spec.And(from, reused)},
			{Loc: core.AtRouter(r1), Constraint: good, PrefixPred: reused},
			{Loc: core.AtEdge(topology.Edge{From: r1, To: r2}), Constraint: good},
			{Loc: core.AtRouter(r2), Constraint: good, PrefixPred: reused},
		},
		Ghosts:                 []core.GhostDef{FromRegionGhost(n, r)},
		InterferenceInvariants: interference,
	}
}
