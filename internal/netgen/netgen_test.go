package netgen_test

import (
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/minesweeper"
	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

func TestFig1Valid(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFullMeshShape(t *testing.T) {
	for _, size := range []int{2, 5, 10} {
		n := netgen.FullMesh(size)
		if err := n.Validate(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if got := len(n.Routers()); got != size {
			t.Fatalf("size %d: %d routers", size, got)
		}
		if got := len(n.Externals()); got != size {
			t.Fatalf("size %d: %d externals", size, got)
		}
		// Directed edges: n(n-1) internal + 2n external.
		want := size*(size-1) + 2*size
		if got := n.NumEdges(); got != want {
			t.Fatalf("size %d: %d edges, want %d", size, got, want)
		}
	}
}

func TestFullMeshPanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	netgen.FullMesh(1)
}

func TestFullMeshVerifies(t *testing.T) {
	n := netgen.FullMesh(4)
	rep := core.VerifySafety(netgen.FullMeshProblem(n), core.Options{})
	if !rep.OK() {
		t.Fatalf("full mesh no-transit should verify:\n%s", rep.Summary())
	}
	// Check count is linear in edges: import+export per edge side plus one
	// implication.
	edges := n.NumEdges()
	if rep.NumChecks() > 2*edges+1 {
		t.Fatalf("checks %d exceed linear bound %d", rep.NumChecks(), 2*edges+1)
	}
}

func TestFullMeshAgreesWithMinesweeper(t *testing.T) {
	n := netgen.FullMesh(3)
	ly := core.VerifySafety(netgen.FullMeshProblem(n), core.Options{})
	loc, pred := netgen.FullMeshProperty()
	ms := minesweeper.Verify(n, loc, pred, []core.GhostDef{netgen.FullMeshGhost(n)}, minesweeper.Options{})
	if ms.Unknown {
		t.Fatal("minesweeper unknown")
	}
	if ly.OK() != ms.Holds {
		t.Fatalf("verifiers disagree: lightyear=%v minesweeper=%v", ly.OK(), ms.Holds)
	}
}

func TestFullMeshPerCheckSizeConstantInN(t *testing.T) {
	// Figure 3b: the largest single local check must not grow with the
	// network (each check involves one filter only).
	rep5 := core.VerifySafety(netgen.FullMeshProblem(netgen.FullMesh(5)), core.Options{})
	rep10 := core.VerifySafety(netgen.FullMeshProblem(netgen.FullMesh(10)), core.Options{})
	if !rep5.OK() || !rep10.OK() {
		t.Fatal("both sizes must verify")
	}
	if rep10.MaxVars() > rep5.MaxVars()*2 {
		t.Fatalf("per-check vars grew with N: %d -> %d", rep5.MaxVars(), rep10.MaxVars())
	}
}

func TestMinesweeperFormulaGrowsQuadratically(t *testing.T) {
	// Figure 3a: monolithic formula size must grow superlinearly with N.
	loc, pred := netgen.FullMeshProperty()
	n4 := netgen.FullMesh(4)
	n8 := netgen.FullMesh(8)
	r4 := minesweeper.Verify(n4, loc, pred, []core.GhostDef{netgen.FullMeshGhost(n4)}, minesweeper.Options{ConflictBudget: 1})
	r8 := minesweeper.Verify(n8, loc, pred, []core.GhostDef{netgen.FullMeshGhost(n8)}, minesweeper.Options{ConflictBudget: 1})
	// Doubling N should far more than double the formula (quadratic edges).
	if r8.NumVars < r4.NumVars*3 {
		t.Fatalf("monolithic formula did not grow quadratically: %d -> %d vars", r4.NumVars, r8.NumVars)
	}
}

func TestWANShape(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	wantRouters := p.Regions*p.RoutersPerRegion + p.EdgeRouters
	if got := len(n.Routers()); got != wantRouters {
		t.Fatalf("routers = %d, want %d", got, wantRouters)
	}
	wantExternals := p.Regions*p.DCsPerRegion + p.EdgeRouters*p.PeersPerEdge
	if got := len(n.Externals()); got != wantExternals {
		t.Fatalf("externals = %d, want %d", got, wantExternals)
	}
	if len(n.RoutersByRole("edge")) != p.EdgeRouters {
		t.Fatal("edge role tags missing")
	}
	if len(n.RoutersByRegion("region-0")) != p.RoutersPerRegion {
		t.Fatal("region tags missing")
	}
}

func TestWANPeeringPropertiesVerify(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	props := netgen.PeeringProperties(p.Regions)
	if len(props) != 11 {
		t.Fatalf("want the 11 peering properties of §6.1, got %d", len(props))
	}
	at := netgen.RegionRouter(0, 0)
	for _, prop := range props {
		rep := core.VerifySafety(netgen.PeeringProblem(n, at, prop), core.Options{})
		if !rep.OK() {
			t.Fatalf("property %q should verify:\n%s", prop.Name, rep.Summary())
		}
	}
}

func TestWANMissingBogonFilterCaught(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{MissingBogonFilter: true})
	props := netgen.PeeringProperties(p.Regions)
	rep := core.VerifySafety(netgen.PeeringProblem(n, netgen.RegionRouter(0, 0), props[0]), core.Options{})
	if rep.OK() {
		t.Fatal("missing bogon filter must be caught")
	}
	fails := rep.Failures()
	if len(fails) != 1 {
		t.Fatalf("want 1 localized failure, got %d:\n%s", len(fails), rep.Summary())
	}
	if fails[0].Loc.String() != string(netgen.PeerNode(0, 0))+" -> "+string(netgen.EdgeRouter(0)) {
		t.Fatalf("failure at %s, want the buggy session", fails[0].Loc)
	}
}

func TestWANMissingLocalPrefCaught(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{MissingLocalPref: true})
	props := netgen.PeeringProperties(p.Regions)
	var lpProp netgen.PeeringProperty
	for _, pr := range props {
		if pr.Name == "local-pref-normalized" {
			lpProp = pr
		}
	}
	rep := core.VerifySafety(netgen.PeeringProblem(n, netgen.EdgeRouter(1), lpProp), core.Options{})
	if rep.OK() {
		t.Fatal("ad-hoc policy must be caught")
	}
	// Other properties stay green.
	rep2 := core.VerifySafety(netgen.PeeringProblem(n, netgen.EdgeRouter(1), props[0]), core.Options{})
	if !rep2.OK() {
		t.Fatalf("unrelated property should still verify:\n%s", rep2.Summary())
	}
}

func TestWANIPReuseSafetyVerifies(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	// Region 0's reused space must not reach a region-1 router or an edge
	// router.
	for _, outside := range []topology.NodeID{netgen.RegionRouter(1, 0), netgen.EdgeRouter(0)} {
		rep := core.VerifySafety(netgen.IPReuseSafetyProblem(n, p, 0, outside), core.Options{})
		if !rep.OK() {
			t.Fatalf("IP reuse safety at %s should verify:\n%s", outside, rep.Summary())
		}
	}
}

func TestWANIPReuseSafetyWrongCommunityCaught(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{WrongRegionCommunity: true})
	rep := core.VerifySafety(netgen.IPReuseSafetyProblem(n, p, 0, netgen.RegionRouter(1, 0)), core.Options{})
	if rep.OK() {
		t.Fatal("wrong region community must be caught")
	}
	// The failure should localize at a DC import of region 0.
	found := false
	for _, f := range rep.Failures() {
		if f.Loc.String() == string(netgen.DCRouter(0, 0))+" -> "+string(netgen.RegionRouter(0, 0)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure should point at region 0 DC import:\n%s", rep.Summary())
	}
}

func TestWANIPReuseLivenessVerifies(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{})
	for r := 0; r < p.Regions; r++ {
		prob := netgen.IPReuseLivenessProblem(n, p, r)
		rep, err := core.VerifyLiveness(prob, core.Options{})
		if err != nil {
			t.Fatalf("region %d: %v", r, err)
		}
		if !rep.OK() {
			t.Fatalf("region %d IP reuse liveness should verify:\n%s", r, rep.Summary())
		}
	}
}

func TestWANIPReuseLivenessWrongCommunityFails(t *testing.T) {
	p := netgen.DefaultWANParams()
	n := netgen.WAN(p, netgen.WANBugs{WrongRegionCommunity: true})
	prob := netgen.IPReuseLivenessProblem(n, p, 0)
	rep, err := core.VerifyLiveness(prob, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("wrong community must break region 0 liveness")
	}
}
