package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// This file gives a Network a stable semantic identity (Fingerprint) and a
// structural diff (DiffNetworks), the two primitives internal/delta builds
// incremental re-verification on: the fingerprint names a network state in
// the persistent result store, and the diff maps a configuration change to
// the routers and edges whose local checks are dirty.

// Fingerprint returns a hex SHA-256 digest of the network's verification-
// relevant content: every node (id, AS, external flag, role, region) and
// every edge with its bound import/export policies and originated routes,
// all in deterministic order. Two networks with equal fingerprints generate
// identical local checks, so a fingerprint names a network state in
// persistent result stores and delta sessions.
func (n *Network) Fingerprint() string {
	h := sha256.New()
	n.writeSignature(h)
	return hex.EncodeToString(h.Sum(nil))
}

// writeSignature streams the canonical serialization hashed by Fingerprint.
func (n *Network) writeSignature(w io.Writer) {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sortIDs(ids)
	for _, id := range ids {
		fmt.Fprintln(w, nodeSignature(n.nodes[id]))
	}
	for _, e := range n.Edges() {
		fmt.Fprintf(w, "edge %s\n%s", e, n.edgeSignature(e))
	}
}

// nodeSignature canonically renders one node's attributes.
func nodeSignature(node *Node) string {
	return fmt.Sprintf("node %s as=%d external=%v role=%q region=%q",
		node.ID, node.AS, node.External, node.Role, node.Region)
}

// edgeSignature canonically renders everything verification reads on one
// edge: the import and export route maps and the originated routes.
func (n *Network) edgeSignature(e Edge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "import %s\nexport %s\n", n.imports[e], n.exports[e])
	for _, r := range n.originates[e] {
		fmt.Fprintf(&b, "originate %s\n", r)
	}
	return b.String()
}

// NetworkDiff is the structural difference between two network states:
// which nodes and edges were added, removed, or changed. A node is
// "changed" when its attributes differ; an edge is "changed" when its
// policy bindings or originated routes differ. Local checks live on edges,
// so the changed/added edge set (plus edges adjacent to changed nodes) is
// exactly the region of the network whose checks may decide differently.
type NetworkDiff struct {
	AddedNodes   []NodeID `json:"added_nodes,omitempty"`
	RemovedNodes []NodeID `json:"removed_nodes,omitempty"`
	ChangedNodes []NodeID `json:"changed_nodes,omitempty"`

	AddedEdges   []Edge `json:"added_edges,omitempty"`
	RemovedEdges []Edge `json:"removed_edges,omitempty"`
	ChangedEdges []Edge `json:"changed_edges,omitempty"`
}

// DiffNetworks computes the structural diff from old to new.
func DiffNetworks(old, new *Network) *NetworkDiff {
	d := &NetworkDiff{}
	for id, node := range new.nodes {
		prev, ok := old.nodes[id]
		switch {
		case !ok:
			d.AddedNodes = append(d.AddedNodes, id)
		case nodeSignature(prev) != nodeSignature(node):
			d.ChangedNodes = append(d.ChangedNodes, id)
		}
	}
	for id := range old.nodes {
		if _, ok := new.nodes[id]; !ok {
			d.RemovedNodes = append(d.RemovedNodes, id)
		}
	}
	sortIDs(d.AddedNodes)
	sortIDs(d.RemovedNodes)
	sortIDs(d.ChangedNodes)

	for _, e := range new.Edges() {
		if !old.HasEdge(e) {
			d.AddedEdges = append(d.AddedEdges, e)
		} else if old.edgeSignature(e) != new.edgeSignature(e) {
			d.ChangedEdges = append(d.ChangedEdges, e)
		}
	}
	for _, e := range old.Edges() {
		if !new.HasEdge(e) {
			d.RemovedEdges = append(d.RemovedEdges, e)
		}
	}
	return d
}

// Empty reports whether the diff records no change at all.
func (d *NetworkDiff) Empty() bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 && len(d.ChangedNodes) == 0 &&
		len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0 && len(d.ChangedEdges) == 0
}

// TouchedNodes returns every node the diff mentions — added, removed, or
// changed nodes plus the endpoints of added, removed, or changed edges —
// deduplicated and sorted. This is the "changed routers" set of the delta
// report (callers filter externals as needed).
func (d *NetworkDiff) TouchedNodes() []NodeID {
	seen := make(map[NodeID]struct{})
	add := func(ids ...NodeID) {
		for _, id := range ids {
			seen[id] = struct{}{}
		}
	}
	add(d.AddedNodes...)
	add(d.RemovedNodes...)
	add(d.ChangedNodes...)
	for _, es := range [][]Edge{d.AddedEdges, d.RemovedEdges, d.ChangedEdges} {
		for _, e := range es {
			add(e.From, e.To)
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Touches reports whether the diff mentions the given edge or either of its
// endpoints (removed edges count: a check that used to live there is stale).
func (d *NetworkDiff) Touches(e Edge) bool {
	for _, es := range [][]Edge{d.AddedEdges, d.RemovedEdges, d.ChangedEdges} {
		for _, x := range es {
			if x == e {
				return true
			}
		}
	}
	for _, ns := range [][]NodeID{d.AddedNodes, d.RemovedNodes, d.ChangedNodes} {
		for _, id := range ns {
			if id == e.From || id == e.To {
				return true
			}
		}
	}
	return false
}

// String renders a compact summary, e.g. "nodes +1/-0/~2, edges +4/-4/~8".
func (d *NetworkDiff) String() string {
	return fmt.Sprintf("nodes +%d/-%d/~%d, edges +%d/-%d/~%d",
		len(d.AddedNodes), len(d.RemovedNodes), len(d.ChangedNodes),
		len(d.AddedEdges), len(d.RemovedEdges), len(d.ChangedEdges))
}
