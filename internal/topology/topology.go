// Package topology models the BGP network of §3.1: a set of configured
// routers, a set of external routers (eBGP/iBGP peers without provided
// configuration), and directed edges for BGP peering sessions. The Network
// type additionally binds the policy functions — Import and Export route
// maps per directed edge, and Originate route sets — which together with the
// graph form the complete verification input.
package topology

import (
	"fmt"
	"sort"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
)

// NodeID names a router or external neighbor.
type NodeID string

// Edge is a directed BGP session edge A -> B (A sends announcements to B).
type Edge struct {
	From, To NodeID
}

// String renders "A -> B".
func (e Edge) String() string { return string(e.From) + " -> " + string(e.To) }

// Reverse returns the opposite direction edge.
func (e Edge) Reverse() Edge { return Edge{From: e.To, To: e.From} }

// Node is a router or an external neighbor.
type Node struct {
	ID       NodeID
	AS       uint32
	External bool   // true for neighbors without configuration
	Role     string // free-form role tag: "edge", "core", "dc", ...
	Region   string // region tag for the WAN scenarios
}

// Network is a BGP topology plus its policy bindings. Construct with New and
// the Add* methods; call Validate before verification.
type Network struct {
	nodes map[NodeID]*Node
	edges map[Edge]struct{}
	out   map[NodeID][]NodeID
	in    map[NodeID][]NodeID

	imports    map[Edge]*policy.RouteMap
	exports    map[Edge]*policy.RouteMap
	originates map[Edge][]*routemodel.Route
}

// New returns an empty network.
func New() *Network {
	return &Network{
		nodes:      make(map[NodeID]*Node),
		edges:      make(map[Edge]struct{}),
		out:        make(map[NodeID][]NodeID),
		in:         make(map[NodeID][]NodeID),
		imports:    make(map[Edge]*policy.RouteMap),
		exports:    make(map[Edge]*policy.RouteMap),
		originates: make(map[Edge][]*routemodel.Route),
	}
}

// AddRouter adds a configured router.
func (n *Network) AddRouter(id NodeID, as uint32) *Node {
	return n.addNode(id, as, false)
}

// AddExternal adds an external neighbor.
func (n *Network) AddExternal(id NodeID, as uint32) *Node {
	return n.addNode(id, as, true)
}

func (n *Network) addNode(id NodeID, as uint32, external bool) *Node {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("topology: duplicate node %q", id))
	}
	node := &Node{ID: id, AS: as, External: external}
	n.nodes[id] = node
	return node
}

// AddEdge adds the directed session edge from -> to. Both endpoints must
// already exist.
func (n *Network) AddEdge(from, to NodeID) Edge {
	if _, ok := n.nodes[from]; !ok {
		panic(fmt.Sprintf("topology: unknown node %q", from))
	}
	if _, ok := n.nodes[to]; !ok {
		panic(fmt.Sprintf("topology: unknown node %q", to))
	}
	e := Edge{From: from, To: to}
	if _, dup := n.edges[e]; !dup {
		n.edges[e] = struct{}{}
		n.out[from] = append(n.out[from], to)
		n.in[to] = append(n.in[to], from)
	}
	return e
}

// AddPeering adds both directions of a BGP session between a and b.
func (n *Network) AddPeering(a, b NodeID) (Edge, Edge) {
	return n.AddEdge(a, b), n.AddEdge(b, a)
}

// Node returns the node with the given id, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// HasEdge reports whether the directed edge exists.
func (n *Network) HasEdge(e Edge) bool {
	_, ok := n.edges[e]
	return ok
}

// IsExternal reports whether id names an external neighbor.
func (n *Network) IsExternal(id NodeID) bool {
	node := n.nodes[id]
	return node != nil && node.External
}

// Routers returns configured router IDs in deterministic order.
func (n *Network) Routers() []NodeID {
	var out []NodeID
	for id, node := range n.nodes {
		if !node.External {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// Externals returns external neighbor IDs in deterministic order.
func (n *Network) Externals() []NodeID {
	var out []NodeID
	for id, node := range n.nodes {
		if node.External {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// Edges returns all directed edges in deterministic order.
func (n *Network) Edges() []Edge {
	out := make([]Edge, 0, len(n.edges))
	for e := range n.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Neighbors returns the nodes that id sends announcements to, in
// deterministic order.
func (n *Network) Neighbors(id NodeID) []NodeID {
	out := append([]NodeID(nil), n.out[id]...)
	sortIDs(out)
	return out
}

// Predecessors returns the nodes that send announcements to id, in
// deterministic order.
func (n *Network) Predecessors(id NodeID) []NodeID {
	out := append([]NodeID(nil), n.in[id]...)
	sortIDs(out)
	return out
}

// Degree returns the number of distinct BGP neighbors of id (sessions are
// added in both directions, so out-neighbors cover them).
func (n *Network) Degree(id NodeID) int { return len(n.out[id]) }

func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// SetImport binds the import route map applied at e.To for routes arriving
// on e.
func (n *Network) SetImport(e Edge, m *policy.RouteMap) {
	n.mustEdge(e)
	n.imports[e] = m
}

// SetExport binds the export route map applied at e.From for routes sent on
// e.
func (n *Network) SetExport(e Edge, m *policy.RouteMap) {
	n.mustEdge(e)
	n.exports[e] = m
}

// AddOriginate registers a route originated at e.From and advertised to
// e.To (static/network statements redistributed into BGP, §3.1).
func (n *Network) AddOriginate(e Edge, r *routemodel.Route) {
	n.mustEdge(e)
	n.originates[e] = append(n.originates[e], r)
}

func (n *Network) mustEdge(e Edge) {
	if _, ok := n.edges[e]; !ok {
		panic(fmt.Sprintf("topology: unknown edge %v", e))
	}
}

// Import returns the import route map for edge e (nil permits all).
func (n *Network) Import(e Edge) *policy.RouteMap { return n.imports[e] }

// Export returns the export route map for edge e (nil permits all).
func (n *Network) Export(e Edge) *policy.RouteMap { return n.exports[e] }

// Originate returns the routes originated on edge e.
func (n *Network) Originate(e Edge) []*routemodel.Route { return n.originates[e] }

// NumNodes returns the total node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the directed edge count.
func (n *Network) NumEdges() int { return len(n.edges) }

// Universe collects every community, AS number, and ghost name mentioned by
// any policy or origination in the network.
func (n *Network) Universe() *spec.Universe {
	u := spec.NewUniverse()
	for e := range n.edges {
		n.imports[e].AddToUniverse(u)
		n.exports[e].AddToUniverse(u)
	}
	for _, node := range n.nodes {
		if node.AS != 0 {
			u.AddASN(node.AS)
		}
	}
	for _, routes := range n.originates {
		for _, r := range routes {
			for c := range r.Communities {
				u.AddCommunity(c)
			}
			for _, as := range r.ASPath {
				u.AddASN(as)
			}
		}
	}
	return u
}

// Validate checks structural well-formedness: every edge endpoint exists,
// no edge connects two external nodes, policies are only bound to existing
// edges, and external nodes have no import/export policy on their side.
func (n *Network) Validate() error {
	for e := range n.edges {
		from, okF := n.nodes[e.From]
		to, okT := n.nodes[e.To]
		if !okF || !okT {
			return fmt.Errorf("topology: edge %v references missing node", e)
		}
		if from.External && to.External {
			return fmt.Errorf("topology: edge %v connects two external nodes", e)
		}
	}
	for e, m := range n.imports {
		if m != nil && n.IsExternal(e.To) {
			return fmt.Errorf("topology: import policy bound at external node on %v", e)
		}
	}
	for e, m := range n.exports {
		if m != nil && n.IsExternal(e.From) {
			return fmt.Errorf("topology: export policy bound at external node on %v", e)
		}
	}
	for e, routes := range n.originates {
		if len(routes) > 0 && n.IsExternal(e.From) {
			return fmt.Errorf("topology: origination at external node on %v", e)
		}
	}
	return nil
}

// Clone returns an independent copy of the network: nodes are copied by
// value and every map and adjacency slice is rebuilt, so structural edits
// and policy rebinding (SetImport/SetExport/AddOriginate) on the clone
// never affect the original. Route maps and originated routes are shared
// by pointer — they are treated as immutable values throughout (mutation
// helpers copy-on-write, see netgen.PrependDeny), which is what makes an
// N-step migration plan affordable: each step clones the graph shell and
// replaces only the one binding it edits.
func (n *Network) Clone() *Network {
	c := &Network{
		nodes:      make(map[NodeID]*Node, len(n.nodes)),
		edges:      make(map[Edge]struct{}, len(n.edges)),
		out:        make(map[NodeID][]NodeID, len(n.out)),
		in:         make(map[NodeID][]NodeID, len(n.in)),
		imports:    make(map[Edge]*policy.RouteMap, len(n.imports)),
		exports:    make(map[Edge]*policy.RouteMap, len(n.exports)),
		originates: make(map[Edge][]*routemodel.Route, len(n.originates)),
	}
	for id, node := range n.nodes {
		cp := *node
		c.nodes[id] = &cp
	}
	for e := range n.edges {
		c.edges[e] = struct{}{}
	}
	for id, ns := range n.out {
		c.out[id] = append([]NodeID(nil), ns...)
	}
	for id, ns := range n.in {
		c.in[id] = append([]NodeID(nil), ns...)
	}
	for e, m := range n.imports {
		c.imports[e] = m
	}
	for e, m := range n.exports {
		c.exports[e] = m
	}
	for e, rs := range n.originates {
		c.originates[e] = append([]*routemodel.Route(nil), rs...)
	}
	return c
}

// RoutersByRole returns configured routers with the given role tag.
func (n *Network) RoutersByRole(role string) []NodeID {
	var out []NodeID
	for id, node := range n.nodes {
		if !node.External && node.Role == role {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// RoutersByRegion returns configured routers with the given region tag.
func (n *Network) RoutersByRegion(region string) []NodeID {
	var out []NodeID
	for id, node := range n.nodes {
		if !node.External && node.Region == region {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}
