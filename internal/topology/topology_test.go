package topology

import (
	"testing"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
)

func fig1() *Network {
	n := New()
	n.AddRouter("R1", 65000)
	n.AddRouter("R2", 65000)
	n.AddRouter("R3", 65000)
	n.AddExternal("ISP1", 174)
	n.AddExternal("ISP2", 3356)
	n.AddExternal("Customer", 64512)
	n.AddPeering("ISP1", "R1")
	n.AddPeering("ISP2", "R2")
	n.AddPeering("Customer", "R3")
	n.AddPeering("R1", "R2")
	n.AddPeering("R1", "R3")
	n.AddPeering("R2", "R3")
	return n
}

func TestBasicConstruction(t *testing.T) {
	n := fig1()
	if n.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if n.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d", n.NumEdges())
	}
	if got := n.Routers(); len(got) != 3 || got[0] != "R1" || got[2] != "R3" {
		t.Fatalf("Routers = %v", got)
	}
	if got := n.Externals(); len(got) != 3 {
		t.Fatalf("Externals = %v", got)
	}
	if !n.IsExternal("ISP1") || n.IsExternal("R1") || n.IsExternal("nope") {
		t.Fatal("IsExternal wrong")
	}
	if !n.HasEdge(Edge{"R1", "R2"}) || n.HasEdge(Edge{"ISP1", "R2"}) {
		t.Fatal("HasEdge wrong")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{"A", "B"}
	if e.String() != "A -> B" {
		t.Fatalf("String = %q", e.String())
	}
	if e.Reverse() != (Edge{"B", "A"}) {
		t.Fatal("Reverse wrong")
	}
}

func TestAdjacency(t *testing.T) {
	n := fig1()
	nb := n.Neighbors("R1")
	want := []NodeID{"ISP1", "R2", "R3"}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(R1) = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(R1) = %v, want %v", nb, want)
		}
	}
	pred := n.Predecessors("R2")
	if len(pred) != 3 {
		t.Fatalf("Predecessors(R2) = %v", pred)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	n := New()
	n.AddRouter("R1", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddRouter("R1", 2)
}

func TestUnknownEdgeEndpointPanics(t *testing.T) {
	n := New()
	n.AddRouter("R1", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddEdge("R1", "nope")
}

func TestDuplicateEdgeIdempotent(t *testing.T) {
	n := New()
	n.AddRouter("A", 1)
	n.AddRouter("B", 1)
	n.AddEdge("A", "B")
	n.AddEdge("A", "B")
	if n.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", n.NumEdges())
	}
	if got := n.Neighbors("A"); len(got) != 1 {
		t.Fatalf("adjacency duplicated: %v", got)
	}
}

func TestPolicyBinding(t *testing.T) {
	n := fig1()
	e := Edge{"ISP1", "R1"}
	m := policy.PermitAll("imp")
	n.SetImport(e, m)
	if n.Import(e) != m {
		t.Fatal("Import binding lost")
	}
	if n.Import(Edge{"R1", "R2"}) != nil {
		t.Fatal("unbound import should be nil")
	}
	x := Edge{"R2", "ISP2"}
	xm := policy.DenyAll("exp")
	n.SetExport(x, xm)
	if n.Export(x) != xm {
		t.Fatal("Export binding lost")
	}
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	n.AddOriginate(Edge{"R3", "R2"}, r)
	if got := n.Originate(Edge{"R3", "R2"}); len(got) != 1 || got[0] != r {
		t.Fatal("Originate binding lost")
	}
}

func TestValidateRejectsExternalPolicies(t *testing.T) {
	n := fig1()
	// import at an external node's side
	n.SetImport(Edge{"R1", "ISP1"}, policy.PermitAll("bad"))
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation error for import at external node")
	}
}

func TestValidateRejectsExternalExport(t *testing.T) {
	n := fig1()
	n.SetExport(Edge{"ISP1", "R1"}, policy.PermitAll("bad"))
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation error for export at external node")
	}
}

func TestValidateRejectsExternalOrigination(t *testing.T) {
	n := fig1()
	n.AddOriginate(Edge{"ISP1", "R1"}, routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/8")))
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation error for external origination")
	}
}

func TestValidateRejectsExternalToExternalEdge(t *testing.T) {
	n := New()
	n.AddExternal("E1", 1)
	n.AddExternal("E2", 2)
	n.AddEdge("E1", "E2")
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation error for external-external edge")
	}
}

func TestUniverseCollection(t *testing.T) {
	n := fig1()
	c := routemodel.MustCommunity("100:1")
	m := &policy.RouteMap{
		Name: "tag",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.AddCommunity{Comm: c}}, Permit: true},
		},
	}
	n.SetImport(Edge{"ISP1", "R1"}, m)
	org := routemodel.NewRoute(routemodel.MustPrefix("10.9.0.0/16"))
	org.AddCommunity(routemodel.MustCommunity("7:7"))
	org.ASPath = []uint32{65055}
	n.AddOriginate(Edge{"R3", "R2"}, org)

	u := n.Universe()
	if !u.HasCommunity(c) {
		t.Fatal("policy community missing from universe")
	}
	if !u.HasCommunity(routemodel.MustCommunity("7:7")) {
		t.Fatal("originated community missing from universe")
	}
	foundAS := false
	for _, as := range u.ASNs() {
		if as == 65055 {
			foundAS = true
		}
	}
	if !foundAS {
		t.Fatal("originated AS missing from universe")
	}
}

func TestRoleAndRegionQueries(t *testing.T) {
	n := New()
	n.AddRouter("E1", 1).Role = "edge"
	n.AddRouter("E2", 1).Role = "edge"
	n.AddRouter("C1", 1).Role = "core"
	n.AddRouter("W1", 1).Region = "west"
	n.AddExternal("X", 2).Role = "edge" // externals never returned

	if got := n.RoutersByRole("edge"); len(got) != 2 || got[0] != "E1" {
		t.Fatalf("RoutersByRole = %v", got)
	}
	if got := n.RoutersByRegion("west"); len(got) != 1 || got[0] != "W1" {
		t.Fatalf("RoutersByRegion = %v", got)
	}
}
