package topology

import (
	"testing"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
)

func diffNet() *Network {
	n := New()
	n.AddRouter("A", 100)
	n.AddRouter("B", 100)
	n.AddExternal("X", 200)
	n.AddPeering("A", "B")
	n.AddPeering("X", "A")
	n.SetImport(Edge{From: "X", To: "A"}, policy.PermitAll("x-import"))
	return n
}

func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	a, b := diffNet(), diffNet()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical networks must have equal fingerprints")
	}
	if len(a.Fingerprint()) != 64 {
		t.Fatalf("fingerprint should be hex SHA-256, got %q", a.Fingerprint())
	}

	// Policy change moves the fingerprint.
	b.SetImport(Edge{From: "X", To: "A"}, policy.DenyAll("x-import-v2"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("policy change must change the fingerprint")
	}

	// Structural change moves the fingerprint.
	c := diffNet()
	c.AddRouter("C", 100)
	c.AddPeering("B", "C")
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("topology change must change the fingerprint")
	}

	// Origination change moves the fingerprint.
	d := diffNet()
	d.AddOriginate(Edge{From: "A", To: "B"}, routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/8")))
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("origination change must change the fingerprint")
	}
}

func TestDiffNetworksEmpty(t *testing.T) {
	d := DiffNetworks(diffNet(), diffNet())
	if !d.Empty() {
		t.Fatalf("identical networks should diff empty, got %s", d)
	}
	if len(d.TouchedNodes()) != 0 {
		t.Fatalf("empty diff touches nodes: %v", d.TouchedNodes())
	}
}

func TestDiffNetworksPolicyChange(t *testing.T) {
	old, new := diffNet(), diffNet()
	new.SetImport(Edge{From: "X", To: "A"}, policy.DenyAll("x-import-v2"))
	d := DiffNetworks(old, new)
	if d.Empty() {
		t.Fatal("policy change should produce a non-empty diff")
	}
	if len(d.ChangedEdges) != 1 || d.ChangedEdges[0] != (Edge{From: "X", To: "A"}) {
		t.Fatalf("want exactly edge X -> A changed, got %s", d)
	}
	if len(d.AddedEdges)+len(d.RemovedEdges)+len(d.AddedNodes)+len(d.RemovedNodes)+len(d.ChangedNodes) != 0 {
		t.Fatalf("only one edge should change, got %s", d)
	}
	touched := d.TouchedNodes()
	if len(touched) != 2 || touched[0] != "A" || touched[1] != "X" {
		t.Fatalf("touched nodes = %v, want [A X]", touched)
	}
	if !d.Touches(Edge{From: "X", To: "A"}) {
		t.Fatal("diff must touch the changed edge")
	}
	if d.Touches(Edge{From: "A", To: "X"}) {
		t.Fatal("a policy edit on X -> A must not dirty the reverse edge")
	}
	if d.Touches(Edge{From: "B", To: "B"}) {
		t.Fatal("diff must not touch unrelated locations")
	}

	// A changed *node* does dirty its adjacent edges.
	renamed := diffNet()
	renamed.Node("A").Role = "core"
	nd := DiffNetworks(old, renamed)
	if !nd.Touches(Edge{From: "A", To: "X"}) {
		t.Fatal("a node attribute change must touch adjacent edges")
	}
}

func TestDiffNetworksStructuralChange(t *testing.T) {
	old, new := diffNet(), diffNet()
	new.AddRouter("C", 100)
	new.AddPeering("B", "C")
	d := DiffNetworks(old, new)
	if len(d.AddedNodes) != 1 || d.AddedNodes[0] != "C" {
		t.Fatalf("want node C added, got %s", d)
	}
	if len(d.AddedEdges) != 2 {
		t.Fatalf("want both directions of B<->C added, got %s", d)
	}
	rev := DiffNetworks(new, old)
	if len(rev.RemovedNodes) != 1 || len(rev.RemovedEdges) != 2 {
		t.Fatalf("reverse diff should remove them, got %s", rev)
	}
}
