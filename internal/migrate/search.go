package migrate

import (
	"context"
	"errors"
	"fmt"

	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

var errBudget = errors.New("migrate: search budget exhausted")

// verdict is the memoized outcome of verifying one intermediate state,
// keyed by semantic network fingerprint: an ordering's safety depends only
// on which states it traverses, so two orders reaching the same state share
// one verification. Stats are those of the first visit (the dirty subset
// depends on the path taken to the state; the verdict does not).
type verdict struct {
	ok        bool
	undecided bool
	sr        StepResult
	fails     []FailedCheck
	net       *topology.Network
}

// search runs the safe-order DFS for an unordered change set. Two cuts keep
// the walk far below k! orderings:
//
//   - memoization by state fingerprint: the reachable states form a subset
//     lattice (at most 2^k - 1), and each is verified at most once;
//   - commutativity pruning: adjacent steps touching disjoint routers edit
//     disjoint per-edge check footprints, so swapping them swaps between two
//     intermediate states that verify identically — only the canonical
//     (ascending-index) interleaving of each commuting pair is explored.
//
// The search verifies at most budget() fresh states; exhausting the budget
// reports infeasibility with BudgetExhausted set. A genuine exhaustion of
// the pruned space yields the longest safe prefix found and what blocked
// every continuation from it.
func (r *runner) search(ctx context.Context) error {
	c := r.c
	n := len(c.steps)
	budget := c.budget()
	start := r.v.PinnedNetwork()

	memo := make(map[string]*verdict)
	var (
		best      *Infeasibility
		bestDepth = -1
	)

	var dfs func(cur *topology.Network, applied uint, order []int, last int) (bool, error)
	dfs = func(cur *topology.Network, applied uint, order []int, last int) (bool, error) {
		if len(order) == n {
			r.foundOrder = append([]int(nil), order...)
			return true, nil
		}
		var blocked []BlockedStep
		for i := 0; i < n; i++ {
			if applied&(1<<uint(i)) != 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return false, err
			}
			// Canonical-order cut: if i commutes with the step just applied
			// and precedes it in the plan, the order running i first
			// traverses states that verify identically and is explored from
			// the parent node.
			if last >= 0 && i < last && netgen.IndependentMutations(*c.steps[i].mutation, *c.steps[last].mutation) {
				r.res.PrunedOrders++
				continue
			}
			st := &c.steps[i]
			next, err := netgen.ApplyMutation(cur, *st.mutation)
			if err != nil {
				blocked = append(blocked, BlockedStep{
					PlanStep: i, Label: st.label,
					Reason: fmt.Sprintf("cannot be applied at this point: %v", err),
				})
				continue
			}
			fp := next.Fingerprint()
			vd, seen := memo[fp]
			if seen {
				r.res.MemoHits++
			} else {
				if r.res.SearchStates >= budget {
					return false, errBudget
				}
				r.res.SearchStates++
				depth := len(order)
				r.emit(Event{Type: EvStepStarted, Step: depth, PlanStep: i, Label: st.label, Search: true})
				sp := r.span.StartSpan("step:" + st.label)
				if r.cfg.Store != nil {
					r.cfg.Store.SetFingerprint(fp)
				}
				dres, derr := r.v.Update(next)
				if derr != nil {
					sp.End()
					return false, derr
				}
				sr, fails := r.stepOutcome(dres, depth, i, st.label, true)
				vd = &verdict{ok: sr.OK, undecided: dres.Failures == 0 && dres.Unknown > 0,
					sr: sr, fails: fails, net: next}
				memo[fp] = vd
				sp.SetAttrInt("dirty", int64(sr.Dirty))
				sp.SetAttrInt("solved", int64(sr.Solved))
				if vd.ok {
					sp.SetAttr("outcome", "ok")
					r.emit(Event{Type: EvStepOK, Step: depth, PlanStep: i, Label: st.label, Search: true,
						OK: true, Checks: sr.Checks, Dirty: sr.Dirty, Reused: sr.Reused, Solved: sr.Solved})
					r.countStep("ok")
				} else {
					sp.SetAttr("outcome", "violated")
					r.emit(Event{Type: EvStepViolated, Step: depth, PlanStep: i, Label: st.label, Search: true,
						Checks: len(fails)})
					r.countStep("violated")
				}
				sp.End()
			}
			if vd.ok {
				found, err := dfs(vd.net, applied|1<<uint(i), append(append([]int(nil), order...), i), i)
				if found || err != nil {
					return found, err
				}
			} else {
				reason := "the intermediate state violates the plan's properties"
				if vd.undecided {
					reason = "the intermediate state is undecided (solver budget)"
				}
				blocked = append(blocked, BlockedStep{PlanStep: i, Label: st.label, Reason: reason, FailingChecks: vd.fails})
			}
		}
		if len(order) > bestDepth {
			bestDepth = len(order)
			best = &Infeasibility{
				SafePrefix:   append([]int(nil), order...),
				PrefixLabels: r.labelsFor(order),
				Blocked:      blocked,
			}
		}
		return false, nil
	}

	found, err := dfs(start, 0, nil, -1)
	switch {
	case errors.Is(err, errBudget):
		if best == nil {
			best = &Infeasibility{}
		}
		best.BudgetExhausted = true
		r.res.Infeasible = true
		r.res.Explanation = best
		r.res.Reason = fmt.Sprintf("search budget (%d states) exhausted before a safe order was found", budget)
		r.emit(Event{Type: EvOrderInfeasible, Step: -1, PlanStep: -1,
			Reason: r.res.Reason, States: r.res.SearchStates})
		return nil
	case err != nil:
		return err
	case !found:
		if best == nil {
			best = &Infeasibility{}
		}
		r.res.Infeasible = true
		r.res.Explanation = best
		r.res.Reason = "no safe order exists: every ordering reaches a violating or inapplicable step"
		r.emit(Event{Type: EvOrderInfeasible, Step: -1, PlanStep: -1,
			Reason: r.res.Reason, States: r.res.SearchStates})
		return nil
	}

	// Rebuild the winning chain's per-step stats from the memo, renumbering
	// each to its position in the found order.
	cur := start
	for pos, idx := range r.foundOrder {
		next, aerr := netgen.ApplyMutation(cur, *c.steps[idx].mutation)
		if aerr != nil {
			return fmt.Errorf("migrate: replaying found order: %v", aerr)
		}
		vd := memo[next.Fingerprint()]
		if vd == nil {
			return fmt.Errorf("migrate: found order traverses an unverified state at position %d", pos)
		}
		sr := vd.sr
		sr.Step, sr.PlanStep = pos, idx
		r.res.Steps = append(r.res.Steps, sr)
		cur = vd.net
	}

	// Memo hits can leave the verifier pinned mid-tree; land it on the
	// final state so a session's next update deltas against the migrated
	// network.
	finalFP := cur.Fingerprint()
	if r.v.Fingerprint() != finalFP {
		if r.cfg.Store != nil {
			r.cfg.Store.SetFingerprint(finalFP)
		}
		if _, err := r.v.Update(cur); err != nil {
			return err
		}
	}

	r.res.OK = true
	r.res.Order = r.foundOrder
	r.res.OrderLabels = r.labelsFor(r.foundOrder)
	r.reorders.With().Inc()
	r.emit(Event{Type: EvOrderFound, Step: -1, PlanStep: -1, OK: true,
		Order: r.res.Order, Labels: r.res.OrderLabels, States: r.res.SearchStates})
	return nil
}

// labelsFor maps plan-step indices to their labels.
func (r *runner) labelsFor(order []int) []string {
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = r.c.steps[idx].label
	}
	return out
}
