package migrate

import (
	"context"
	"fmt"
	"time"

	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/store"
	"lightyear/internal/telemetry"
	"lightyear/internal/topology"
)

// Event types emitted through RunConfig.Sink, in stream order. Events with
// no step context (baseline, order_*, done) carry Step = PlanStep = -1.
const (
	EvBaseline        = "baseline"         // the starting state was verified (or reused from the session)
	EvStepStarted     = "step_started"     // an intermediate state is about to be verified
	EvProblem         = "problem"          // per-problem outcome of the step's delta run
	EvCheck           = "check"            // a failing or undecided check, with witness
	EvStepOK          = "step_ok"          // the intermediate state holds every property
	EvStepViolated    = "step_violated"    // first violating step (ordered) or a blocked branch (search)
	EvOrderFound      = "order_found"      // search: a safe ordering exists
	EvOrderInfeasible = "order_infeasible" // search: no safe ordering (or budget exhausted)
	EvDone            = "done"             // terminal event, carries the full Result
	// EvError is not emitted by Run itself: hosts streaming events to a
	// client (lyserve) synthesize it as the terminal event when Run returns
	// an infrastructure error instead of a Result-carrying done.
	EvError = "error"
)

// Event is one entry of the step-indexed progress stream (the NDJSON wire
// format of POST /v2/sessions/{id}/migrate).
type Event struct {
	Type string `json:"type"`
	// Step is the execution index: position in the walked order (search
	// events: the depth at which the state was tried). -1 when unscoped.
	Step int `json:"step"`
	// PlanStep is the index into the submitted step list. Equal to Step for
	// ordered plans; they diverge under search.
	PlanStep int    `json:"plan_step"`
	Label    string `json:"label,omitempty"`
	// Search marks events emitted while exploring candidate orderings: a
	// step_violated with search=true is a pruned branch, not a verdict on
	// the plan.
	Search    bool   `json:"search,omitempty"`
	Unchanged bool   `json:"unchanged,omitempty"`
	Problem   string `json:"problem,omitempty"`
	Check     string `json:"check,omitempty"`
	Status    string `json:"status,omitempty"`
	OK        bool   `json:"ok,omitempty"`
	Witness   string `json:"witness,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Checks    int    `json:"checks,omitempty"`
	Dirty     int    `json:"dirty,omitempty"`
	Reused    int    `json:"reused,omitempty"`
	Solved    int    `json:"solved,omitempty"`
	// Order/Labels/States accompany order_found and order_infeasible.
	Order  []int    `json:"order,omitempty"`
	Labels []string `json:"labels,omitempty"`
	States int      `json:"states,omitempty"`
	Result *Result  `json:"result,omitempty"` // done only
}

// RunConfig carries the host integration seams of one Run.
type RunConfig struct {
	// Verifier, when set, is the host's long-lived delta session (an lyserve
	// session): the plan walks from its pinned state, and on success the
	// final migrated state stays pinned — it IS the new baseline. On
	// violation, infeasibility, or error the original pinned state is
	// restored, so a failed migration never moves the session. When nil,
	// Run builds a private verifier and baselines the compiled network.
	Verifier *delta.Verifier
	// BaselineSourceFP is the config source fingerprint of the Verifier's
	// pinned state ("" if unknown or not config-sourced); it seeds the
	// comment-only no-op fast path for the first config step.
	BaselineSourceFP string
	// Reservation, when set, is a pre-admitted whole-plan reservation the
	// run executes under; Run releases it. When nil, Run reserves the
	// plan's full cost itself.
	Reservation *engine.Reservation
	// Sink receives progress events synchronously and in order. Optional.
	Sink func(Event)
	// Store, when set, is told each intermediate state's fingerprint before
	// it is verified, attributing persisted results to the right state.
	Store *store.Store
	// Recorder, when set, receives lightyear_migrate_steps / _reorders.
	Recorder *telemetry.Recorder
	// Trace, when set, gets a "migrate" span with one "step:<label>" child
	// per verified intermediate state.
	Trace *telemetry.Trace
}

// FailedCheck is one failing or undecided check of a violating state.
type FailedCheck struct {
	Problem string `json:"problem"`
	Desc    string `json:"desc,omitempty"`
	Status  string `json:"status"`
	Witness string `json:"witness,omitempty"`
}

// StepResult summarizes one verified intermediate state. Dirty vs Reused is
// the delta-reuse evidence: a step re-solves the checks its own change
// dirtied, not the network.
type StepResult struct {
	Step         int    `json:"step"`
	PlanStep     int    `json:"plan_step"`
	Label        string `json:"label"`
	OK           bool   `json:"ok"`
	Unchanged    bool   `json:"unchanged,omitempty"`
	Checks       int    `json:"checks"`
	Dirty        int    `json:"dirty"`
	Reused       int    `json:"reused"`
	Solved       int    `json:"solved"`
	ElapsedNanos int64  `json:"elapsed_ns"`
}

// BlockedStep explains why one continuation of the longest safe prefix
// could not extend it.
type BlockedStep struct {
	PlanStep      int           `json:"plan_step"`
	Label         string        `json:"label"`
	Reason        string        `json:"reason"`
	FailingChecks []FailedCheck `json:"failing_checks,omitempty"`
}

// Infeasibility is the minimal explanation of a failed safe-order search:
// the longest safe prefix reached and what blocked every continuation from
// it. Steps whose continuation commutes with the prefix's last step are not
// listed — their interleavings verify identically to an explored canonical
// order.
type Infeasibility struct {
	BudgetExhausted bool          `json:"budget_exhausted,omitempty"`
	SafePrefix      []int         `json:"safe_prefix"`
	PrefixLabels    []string      `json:"prefix_labels,omitempty"`
	Blocked         []BlockedStep `json:"blocked,omitempty"`
}

// Result is the outcome of one migration plan run.
type Result struct {
	Label   string `json:"label"`
	Ordered bool   `json:"ordered"` // false = this was a safe-order search
	// OK: every intermediate state of the walked (or found) order holds
	// every property.
	OK         bool          `json:"ok"`
	BaselineOK bool          `json:"baseline_ok"`
	Baseline   *delta.Result `json:"baseline,omitempty"` // nil when run on a session's existing baseline

	// Steps are the verified states in execution order: the walked prefix
	// for ordered plans (up to and including the violating step), the
	// winning order for successful searches.
	Steps []StepResult `json:"steps"`

	// ViolatedStep/-PlanStep locate the first violating step (-1 = none):
	// execution index and submitted index respectively.
	ViolatedStep     int    `json:"violated_step"`
	ViolatedPlanStep int    `json:"violated_plan_step"`
	ViolatedLabel    string `json:"violated_label,omitempty"`
	// Undecided: the run stopped on a step whose checks were undecided
	// (solver budget), not provably violated.
	Undecided     bool          `json:"undecided,omitempty"`
	Reason        string        `json:"reason,omitempty"`
	FailingChecks []FailedCheck `json:"failing_checks,omitempty"`

	// Order/OrderLabels report the safe order a search found (plan-step
	// indices in execution order).
	Order       []int    `json:"order,omitempty"`
	OrderLabels []string `json:"order_labels,omitempty"`
	// Infeasible: the search proved no safe order exists (or exhausted its
	// budget — see Explanation.BudgetExhausted).
	Infeasible   bool           `json:"infeasible,omitempty"`
	Explanation  *Infeasibility `json:"explanation,omitempty"`
	SearchStates int            `json:"search_states,omitempty"` // intermediate states verified
	MemoHits     int            `json:"memo_hits,omitempty"`     // states shared between orderings
	PrunedOrders int            `json:"pruned,omitempty"`        // branches cut by commutativity

	// FinalSourceFP is the config source fingerprint of the final pinned
	// state on success ("" when the final state is mutation-derived) —
	// the provenance a session needs to keep its no-op fast path sound
	// across a migration.
	FinalSourceFP string `json:"-"`

	ElapsedNanos int64 `json:"elapsed_ns"`
}

// Elapsed returns the run's wall-clock duration.
func (r *Result) Elapsed() time.Duration { return time.Duration(r.ElapsedNanos) }

// Run executes a compiled migration plan on the shared engine. The returned
// error covers infrastructure failures — admission (engine.ErrAdmission),
// engine submission, context cancellation; plan verdicts (violating step,
// no safe order) are reported in the Result with a nil error.
func Run(ctx context.Context, eng *engine.Engine, c *Compiled, cfg RunConfig) (*Result, error) {
	start := time.Now()
	r := &runner{
		eng:      eng,
		c:        c,
		cfg:      cfg,
		stepsCtr: cfg.Recorder.Counter("lightyear_migrate_steps", "Migration plan steps verified, by outcome.", "outcome"),
		reorders: cfg.Recorder.Counter("lightyear_migrate_reorders", "Safe orderings found by migration-order search."),
	}
	res, err := r.run(ctx)
	if res != nil {
		res.ElapsedNanos = time.Since(start).Nanoseconds()
		if err == nil {
			r.emit(Event{Type: EvDone, Step: -1, PlanStep: -1, OK: res.OK, Result: res})
		}
	}
	return res, err
}

type runner struct {
	eng *engine.Engine
	c   *Compiled
	cfg RunConfig

	v        *delta.Verifier
	res      *Result
	span     *telemetry.Span
	origNet  *topology.Network // session state to restore on failure
	curSrcFP string

	stepsCtr *telemetry.CounterVec
	reorders *telemetry.CounterVec

	foundOrder []int // set by the search at its success leaf
}

func (r *runner) emit(ev Event) {
	if r.cfg.Sink != nil {
		r.cfg.Sink(ev)
	}
}

func (r *runner) countStep(outcome string) {
	r.stepsCtr.With(outcome).Inc()
}

func (r *runner) run(ctx context.Context) (*Result, error) {
	c := r.c
	r.res = &Result{
		Label:            c.Inner.Label(),
		Ordered:          !c.Plan.Unordered,
		ViolatedStep:     -1,
		ViolatedPlanStep: -1,
	}

	v := r.cfg.Verifier
	if v == nil {
		v = delta.NewVerifierFor(r.eng, c.Inner)
		v.SetWorkload(c.Inner.Workload())
	}
	r.v = v

	// Whole-plan admission: the steps run sequentially, so the plan never
	// holds more than one state's checks in flight — one reservation of the
	// full per-state cost covers every step and the baseline.
	resv := r.cfg.Reservation
	if resv == nil {
		var err error
		resv, err = r.eng.Reserve(c.Inner.Tenant(), c.Inner.Cost())
		if err != nil {
			return nil, err
		}
	}
	defer resv.Release()
	v.SetReservation(resv)
	defer v.SetReservation(nil)

	r.span = r.cfg.Trace.StartSpan("migrate")
	defer r.span.End()
	r.span.SetAttrInt("plan_steps", int64(len(c.steps)))

	r.origNet = v.PinnedNetwork()
	if r.origNet == nil {
		if r.cfg.Store != nil {
			r.cfg.Store.SetFingerprint(c.Inner.Network.Fingerprint())
		}
		bres, err := v.Baseline(c.Inner.Network)
		if err != nil {
			return nil, err
		}
		r.res.Baseline = bres
		r.res.BaselineOK = bres.OK && bres.Unknown == 0
		r.emit(Event{Type: EvBaseline, Step: -1, PlanStep: -1, OK: r.res.BaselineOK,
			Checks: bres.TotalChecks, Solved: bres.Solved})
		if !r.res.BaselineOK {
			r.res.Undecided = bres.Failures == 0
			r.res.Reason = "the baseline violates the plan's properties before any step"
			if r.res.Undecided {
				r.res.Reason = "the baseline is undecided before any step"
			}
			r.res.FailingChecks = failedChecks(bres)
			return r.res, nil
		}
		r.curSrcFP = r.baseSrcFPForCompile()
	} else {
		// Session path: the pinned state was verified when it was pinned;
		// migrating from it re-walks forward, it does not re-audit it.
		r.res.BaselineOK = true
		r.curSrcFP = r.cfg.BaselineSourceFP
		r.emit(Event{Type: EvBaseline, Step: -1, PlanStep: -1, OK: true, Reused: v.ResultCount()})
	}

	var err error
	if c.Plan.Unordered {
		err = r.search(ctx)
	} else {
		err = r.ordered(ctx)
	}

	// A failed migration must not move a session: restore the original
	// pinned state so follow-up updates delta against what the session
	// actually has deployed.
	if r.cfg.Verifier != nil && r.origNet != nil && (err != nil || !r.res.OK) {
		if rbErr := r.rollback(); rbErr != nil && err == nil {
			err = fmt.Errorf("migrate: restoring the session baseline: %w", rbErr)
		}
	}
	if err != nil {
		return r.res, err
	}
	return r.res, nil
}

func (r *runner) baseSrcFPForCompile() string { return r.c.baseSrcFP }

func (r *runner) rollback() error {
	if r.v.Fingerprint() == r.origNet.Fingerprint() {
		return nil
	}
	if r.cfg.Store != nil {
		r.cfg.Store.SetFingerprint(r.origNet.Fingerprint())
	}
	_, err := r.v.Update(r.origNet)
	return err
}

// ordered walks the plan's given order, stopping at the first violating,
// undecided, or inapplicable step.
func (r *runner) ordered(ctx context.Context) error {
	cur := r.v.PinnedNetwork()
	for k := range r.c.steps {
		st := &r.c.steps[k]
		if err := ctx.Err(); err != nil {
			return err
		}
		r.emit(Event{Type: EvStepStarted, Step: k, PlanStep: k, Label: st.label})
		sp := r.span.StartSpan("step:" + st.label)

		var next *topology.Network
		nextSrcFP := ""
		if st.config != "" {
			if r.curSrcFP != "" && st.srcFP == r.curSrcFP {
				// Comment-only no-op: the step's source normalizes to the
				// very state already pinned, so the previous verdicts hold
				// without touching the verifier or the engine.
				r.res.Steps = append(r.res.Steps, StepResult{
					Step: k, PlanStep: k, Label: st.label, OK: true, Unchanged: true,
				})
				r.emit(Event{Type: EvStepOK, Step: k, PlanStep: k, Label: st.label, OK: true, Unchanged: true})
				r.countStep("unchanged")
				sp.SetAttr("outcome", "unchanged")
				sp.End()
				continue
			}
			next, nextSrcFP = st.network, st.srcFP
		} else {
			n2, err := netgen.ApplyMutation(cur, *st.mutation)
			if err != nil {
				r.res.ViolatedStep, r.res.ViolatedPlanStep, r.res.ViolatedLabel = k, k, st.label
				r.res.Reason = fmt.Sprintf("step %d (%s) cannot be applied: %v", k, st.label, err)
				r.res.Steps = append(r.res.Steps, StepResult{Step: k, PlanStep: k, Label: st.label})
				r.emit(Event{Type: EvStepViolated, Step: k, PlanStep: k, Label: st.label, Reason: r.res.Reason})
				r.countStep("violated")
				sp.SetAttr("outcome", "inapplicable")
				sp.End()
				return nil
			}
			next = n2
		}

		if r.cfg.Store != nil {
			r.cfg.Store.SetFingerprint(next.Fingerprint())
		}
		dres, err := r.v.Update(next)
		if err != nil {
			sp.End()
			return err
		}
		sr, fails := r.stepOutcome(dres, k, k, st.label, false)
		r.res.Steps = append(r.res.Steps, sr)
		sp.SetAttrInt("checks", int64(sr.Checks))
		sp.SetAttrInt("dirty", int64(sr.Dirty))
		sp.SetAttrInt("solved", int64(sr.Solved))
		if !sr.OK {
			r.res.ViolatedStep, r.res.ViolatedPlanStep, r.res.ViolatedLabel = k, k, st.label
			r.res.Undecided = dres.Failures == 0
			r.res.FailingChecks = fails
			if r.res.Undecided {
				r.res.Reason = fmt.Sprintf("step %d (%s) is undecided: %d checks without a verdict", k, st.label, dres.Unknown)
			} else {
				r.res.Reason = fmt.Sprintf("step %d (%s) violates: %d failing checks", k, st.label, dres.Failures)
			}
			r.emit(Event{Type: EvStepViolated, Step: k, PlanStep: k, Label: st.label,
				Reason: r.res.Reason, Checks: len(fails)})
			r.countStep("violated")
			sp.SetAttr("outcome", "violated")
			sp.End()
			return nil
		}
		outcome := "ok"
		if dres.Unchanged {
			outcome = "unchanged"
		}
		r.emit(Event{Type: EvStepOK, Step: k, PlanStep: k, Label: st.label, OK: true,
			Unchanged: dres.Unchanged, Checks: sr.Checks, Dirty: sr.Dirty, Reused: sr.Reused, Solved: sr.Solved})
		r.countStep(outcome)
		sp.SetAttr("outcome", outcome)
		sp.End()
		cur = next
		r.curSrcFP = nextSrcFP
	}
	r.res.OK = true
	r.res.FinalSourceFP = r.curSrcFP
	return nil
}

// stepOutcome folds one delta run into a StepResult and emits the per-step
// problem and check events. Per-check events cover the failing and
// undecided checks (with witnesses); passing checks are summarized by the
// per-problem counts.
func (r *runner) stepOutcome(dres *delta.Result, step, planStep int, label string, search bool) (StepResult, []FailedCheck) {
	sr := StepResult{
		Step: step, PlanStep: planStep, Label: label,
		OK:        dres.OK && dres.Unknown == 0,
		Unchanged: dres.Unchanged,
		Checks:    dres.TotalChecks, Dirty: dres.DirtyChecks,
		Reused: dres.ReusedResults, Solved: dres.Solved,
		ElapsedNanos: dres.ElapsedNanos,
	}
	for _, p := range dres.Problems {
		r.emit(Event{Type: EvProblem, Step: step, PlanStep: planStep, Label: label, Search: search,
			Problem: p.Name, OK: p.OK, Checks: p.Checks, Dirty: p.Dirty, Reused: p.Reused})
	}
	fails := failedChecks(dres)
	for _, f := range fails {
		r.emit(Event{Type: EvCheck, Step: step, PlanStep: planStep, Label: label, Search: search,
			Problem: f.Problem, Check: f.Desc, Status: f.Status, Witness: f.Witness})
	}
	return sr, fails
}

// failedChecks flattens a delta run's failing and undecided checks.
func failedChecks(dres *delta.Result) []FailedCheck {
	var out []FailedCheck
	for _, p := range dres.Problems {
		if p.Report == nil {
			if p.Failed {
				out = append(out, FailedCheck{Problem: p.Name, Desc: p.SkipReason, Status: "error"})
			}
			continue
		}
		for _, cr := range p.Report.HardFailures() {
			fc := FailedCheck{Problem: p.Name, Desc: cr.Desc, Status: cr.Status.String()}
			if cr.Counterexample != nil {
				fc.Witness = cr.Counterexample.String()
			}
			out = append(out, fc)
		}
		for _, cr := range p.Report.Unknowns() {
			out = append(out, FailedCheck{Problem: p.Name, Desc: cr.Desc, Status: cr.Status.String()})
		}
	}
	return out
}
