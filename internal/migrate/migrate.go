// Package migrate verifies migration plans: ordered sequences of
// configuration deltas applied to a pinned baseline network, with every
// intermediate state checked against the plan's properties — the question
// operators actually ask ("is this *deployment* safe?"), not just whether
// the final state is.
//
// A Plan names a baseline network source, a property scope, and a list of
// steps; each step is either a full replacement config (internal/config DSL)
// or a serializable netgen.MutationSpec edit applied to the previous state.
// Run walks the sequence on a delta.Verifier, so each step re-solves only
// the dirty subset its own diff implies, reports the first violating step
// with its failing checks and witnesses, and — when the plan declares the
// steps an unordered change *set* — searches the orderings for a safe one:
//
//	c, err := migrate.Compile(p, nil)
//	res, err := migrate.Run(ctx, eng, c, migrate.RunConfig{Sink: onEvent})
//
// The search is a DFS over permutations with two cuts that exploit the
// modular check structure: intermediate states are memoized by semantic
// network fingerprint (two orders reaching the same state share one
// verdict), and adjacent steps that touch disjoint routers commute — their
// per-edge-local checks verify identically in either order — so only the
// canonical interleaving of each commuting class is explored. The search is
// bounded by a configurable budget of verified states; exhausting it, or
// proving every ordering hits a violating or inapplicable step, yields an
// Infeasibility explanation (the longest safe prefix found and what blocked
// each continuation).
//
// Admission is whole-plan: one engine.Reserve covering the plan's full check
// cost is taken up front and every step runs under it (steps execute
// sequentially, so the plan never holds more than one state's checks in
// flight), making an over-quota migration fail before its first step rather
// than mid-deployment.
package migrate

import (
	"fmt"

	"lightyear/internal/config"
	"lightyear/internal/netgen"
	"lightyear/internal/plan"
	"lightyear/internal/topology"
)

// DefaultSearchBudget bounds how many distinct intermediate states an
// unordered plan's safe-order search may verify when the plan does not set
// its own budget. With fingerprint memoization a k-step set has at most
// 2^k - 1 distinct non-initial states, so the default covers sets of ~8
// steps exhaustively.
const DefaultSearchBudget = 256

// MaxSearchSteps caps the size of an unordered change set: beyond this the
// permutation space (even memoized) stops being a sensible synchronous
// request.
const MaxSearchSteps = 10

// Step is one migration step: exactly one of Config (a full replacement
// network in the internal/config DSL) or Mutation (a named edit applied to
// the previous step's state) must be set.
type Step struct {
	Label    string               `json:"label,omitempty"`
	Config   string               `json:"config,omitempty"`
	Mutation *netgen.MutationSpec `json:"mutation,omitempty"`
}

// Plan is the serializable migration request (the `lightyear -migrate` file
// format and, minus Network/Properties/Options which a session pins, the
// POST /v2/sessions/{id}/migrate body).
type Plan struct {
	// Network is the baseline the first step applies to. Required for
	// standalone compilation (Compile); must be absent in session plans
	// (CompileSteps), where the session's pinned state is the baseline.
	Network    *plan.Network   `json:"network,omitempty"`
	Properties []plan.Property `json:"properties,omitempty"`
	Options    plan.Options    `json:"options,omitempty"`

	Steps []Step `json:"steps"`

	// Unordered declares Steps an unordered change set: Run searches for a
	// safe ordering instead of walking the given one. Requires every step
	// to be a mutation (full configs don't compose under reordering).
	Unordered bool `json:"unordered,omitempty"`
	// SearchBudget bounds the number of intermediate states the safe-order
	// search may verify (0 = DefaultSearchBudget).
	SearchBudget int `json:"search_budget,omitempty"`
}

// Steps converts netgen's labeled migration sequences to plan steps.
func Steps(ms []netgen.MigrationStep) []Step {
	out := make([]Step, len(ms))
	for i, m := range ms {
		mut := m.Mutation
		out[i] = Step{Label: m.Label, Mutation: &mut}
	}
	return out
}

// compiledStep is one validated step. Config steps are materialized at
// compile time (parse errors are usage errors, not step violations) and
// carry the source fingerprint the no-op fast path compares.
type compiledStep struct {
	label    string
	mutation *netgen.MutationSpec
	config   string
	srcFP    string
	network  *topology.Network
}

// Compiled is a validated migration plan ready to Run.
type Compiled struct {
	Plan  Plan
	Inner *plan.Compiled // the property scope every intermediate state is checked against

	steps     []compiledStep
	baseSrcFP string // config fingerprint of the baseline source ("" if not config-sourced)
}

// Compile validates and materializes a standalone plan: the baseline network
// compiles through internal/plan (so properties, scopes, solver and tenant
// options follow the exact plan.Request rules), then every step compiles
// against it. Malformed plans return plan.RequestError.
func Compile(p Plan, res plan.Resolver) (*Compiled, error) {
	if p.Network == nil {
		return nil, plan.RequestErrorf("migrate: a baseline network is required")
	}
	if p.Options.Baseline != nil {
		return nil, plan.RequestErrorf("migrate: options.baseline is not allowed (the plan's network is the baseline)")
	}
	inner, err := plan.Compile(plan.Request{Network: *p.Network, Properties: p.Properties, Options: p.Options}, res)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Plan: p, Inner: inner}
	if p.Network.Config != "" {
		c.baseSrcFP = config.SourceFingerprint(p.Network.Config)
	}
	if err := c.compileSteps(); err != nil {
		return nil, err
	}
	return c, nil
}

// CompileSteps compiles just a plan's step list against an already-compiled
// inner plan — the lyserve path, where a session pins network, properties,
// and options, and the migrate body may only carry steps. baseSrcFP is the
// config fingerprint of the session's pinned baseline ("" if unknown),
// seeding the no-op fast path for the first step.
func CompileSteps(p Plan, inner *plan.Compiled, baseSrcFP string) (*Compiled, error) {
	if p.Network != nil || len(p.Properties) > 0 {
		return nil, plan.RequestErrorf("migrate: network and properties are pinned by the session")
	}
	c := &Compiled{Plan: p, Inner: inner, baseSrcFP: baseSrcFP}
	if err := c.compileSteps(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Compiled) compileSteps() error {
	p := c.Plan
	if len(p.Steps) == 0 {
		return plan.RequestErrorf("migrate: at least one step is required")
	}
	if p.SearchBudget < 0 {
		return plan.RequestErrorf("migrate: search_budget must be >= 0, got %d", p.SearchBudget)
	}
	c.steps = make([]compiledStep, len(p.Steps))
	for i, s := range p.Steps {
		cs := compiledStep{label: s.Label}
		if cs.label == "" {
			cs.label = fmt.Sprintf("step-%d", i)
		}
		switch {
		case s.Config != "" && s.Mutation != nil:
			return plan.RequestErrorf("migrate: step %d (%s): exactly one of config and mutation must be set", i, cs.label)
		case s.Config != "":
			n, err := config.Parse(s.Config)
			if err != nil {
				return plan.RequestErrorf("migrate: step %d (%s): %v", i, cs.label, err)
			}
			if err := c.Inner.ValidateScopes(n); err != nil {
				return plan.RequestErrorf("migrate: step %d (%s): %v", i, cs.label, err)
			}
			cs.config = s.Config
			cs.srcFP = config.SourceFingerprint(s.Config)
			cs.network = n
		case s.Mutation != nil:
			if err := s.Mutation.Validate(); err != nil {
				return plan.RequestErrorf("migrate: step %d (%s): %v", i, cs.label, err)
			}
			m := *s.Mutation
			cs.mutation = &m
		default:
			return plan.RequestErrorf("migrate: step %d (%s): a config or mutation is required", i, cs.label)
		}
		c.steps[i] = cs
	}
	if p.Unordered {
		if len(c.steps) < 2 {
			return plan.RequestErrorf("migrate: unordered search needs at least two steps")
		}
		if len(c.steps) > MaxSearchSteps {
			return plan.RequestErrorf("migrate: unordered search is bounded to %d steps, got %d", MaxSearchSteps, len(c.steps))
		}
		for i := range c.steps {
			if c.steps[i].mutation == nil {
				return plan.RequestErrorf("migrate: unordered search requires every step to be a mutation (step %d is a full config)", i)
			}
		}
	}
	return nil
}

// NumSteps returns the number of compiled steps.
func (c *Compiled) NumSteps() int { return len(c.steps) }

// StepLabels returns the labels of the compiled steps in submission order.
func (c *Compiled) StepLabels() []string {
	out := make([]string, len(c.steps))
	for i := range c.steps {
		out[i] = c.steps[i].label
	}
	return out
}

// budget returns the effective search budget.
func (c *Compiled) budget() int {
	if c.Plan.SearchBudget > 0 {
		return c.Plan.SearchBudget
	}
	return DefaultSearchBudget
}
