package migrate_test

import (
	"context"
	"errors"
	"testing"

	"lightyear/internal/config"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/migrate"
	"lightyear/internal/netgen"
	"lightyear/internal/plan"
)

// fig1Plan builds a standalone migration plan on the Figure-1 network with
// the no-transit property — the paper's running example, where the filter
// swap's safety depends on step order.
func fig1Plan(steps []netgen.MigrationStep, unordered bool) migrate.Plan {
	return migrate.Plan{
		Network:    &plan.Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}},
		Properties: []plan.Property{{Name: "fig1-no-transit"}},
		Steps:      migrate.Steps(steps),
		Unordered:  unordered,
	}
}

func compileRun(t *testing.T, p migrate.Plan, cfg migrate.RunConfig) *migrate.Result {
	t.Helper()
	c, err := migrate.Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	res, err := migrate.Run(context.Background(), eng, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// reverse returns the steps in reverse order.
func reverse(steps []netgen.MigrationStep) []netgen.MigrationStep {
	out := make([]netgen.MigrationStep, len(steps))
	for i, s := range steps {
		out[len(steps)-1-i] = s
	}
	return out
}

// TestOrderedSafeOrderReusesDelta: the safe shield-retire order verifies
// end to end, and every step re-solves only its own dirty subset.
func TestOrderedSafeOrderReusesDelta(t *testing.T) {
	res := compileRun(t, fig1Plan(netgen.Fig1ShieldRetire(), false), migrate.RunConfig{})
	if !res.OK || !res.BaselineOK || res.ViolatedStep != -1 {
		t.Fatalf("safe order must verify: %+v", res)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("want 2 step results, got %d", len(res.Steps))
	}
	for _, sr := range res.Steps {
		if !sr.OK || sr.Dirty == 0 || sr.Reused == 0 || sr.Dirty >= sr.Checks {
			t.Fatalf("step %s must mix dirty work and reuse: %+v", sr.Label, sr)
		}
	}
	if res.FinalSourceFP != "" {
		t.Fatalf("mutation-derived final state must carry no source fingerprint, got %q", res.FinalSourceFP)
	}
}

// TestFirstViolatingStepParity: walking the unsafe retire-shield order
// stops at step 0, and the reported failing checks are exactly the hard
// failures a from-scratch verification of that intermediate state finds —
// the delta walk loses nothing against single-shot verification.
func TestFirstViolatingStepParity(t *testing.T) {
	steps := reverse(netgen.Fig1ShieldRetire()) // retire first: leaks transit
	var events []migrate.Event
	res := compileRun(t, fig1Plan(steps, false), migrate.RunConfig{
		Sink: func(ev migrate.Event) { events = append(events, ev) },
	})
	if res.OK || res.ViolatedStep != 0 || res.ViolatedLabel != "retire" || res.Undecided {
		t.Fatalf("retire-first must violate at step 0: %+v", res)
	}
	if len(res.FailingChecks) == 0 {
		t.Fatal("a violating step must carry its failing checks")
	}
	violated := 0
	for _, ev := range events {
		if ev.Type == migrate.EvStepViolated {
			violated++
			if ev.Step != 0 || ev.PlanStep != 0 {
				t.Fatalf("step_violated at step %d/plan %d, want 0/0", ev.Step, ev.PlanStep)
			}
		}
	}
	if violated != 1 {
		t.Fatalf("want exactly one step_violated event, got %d", violated)
	}

	// Single-shot parity: baseline a fresh verifier directly on the
	// post-retire state and compare the hard-failure sets.
	c, err := migrate.Compile(fig1Plan(steps, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := netgen.ApplyMutation(c.Inner.Network, steps[0].Mutation)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifierFor(eng, c.Inner)
	full, err := v.Baseline(bad)
	if err != nil {
		t.Fatal(err)
	}
	if full.OK {
		t.Fatal("single-shot verification of the post-retire state must fail too")
	}
	want := map[string]bool{}
	for _, p := range full.Problems {
		if p.Report == nil {
			continue
		}
		for _, cr := range p.Report.HardFailures() {
			want[p.Name+"|"+cr.Desc] = true
		}
	}
	got := map[string]bool{}
	for _, fc := range res.FailingChecks {
		got[fc.Problem+"|"+fc.Desc] = true
	}
	if len(got) != len(want) {
		t.Fatalf("failing-check sets differ: migrate %v vs single-shot %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("single-shot failure %q missing from the migrate report", k)
		}
	}
}

// fig1DSL mirrors netgen.Fig1 in configuration-language form, for the
// config-step fast path (mutation steps have no source text to fingerprint).
const fig1DSL = `
node R1 { as 65000 role edge }
node R2 { as 65000 role edge }
node R3 { as 65000 role edge }
external ISP1 { as 174 }
external ISP2 { as 3356 }
external Customer { as 64512 }

peering ISP1 R1
peering ISP2 R2
peering Customer R3
peering R1 R2
peering R1 R3
peering R2 R3

prefix-list cust { 10.42.0.0/16 ge 16 le 24 }

route-map r1-import-isp1 {
  term 10 deny { match prefix-list cust }
  term 20 permit { set community add 100:1 }
}
route-map r2-import-isp2 {
  term 10 deny { match prefix-list cust }
  term 20 permit { }
}
route-map r2-export-isp2 {
  term 10 deny { match community 100:1 }
  term 20 permit { }
}
route-map r3-import-customer {
  term 10 permit {
    match prefix-list cust
    set community none
  }
}

import ISP1 -> R1 map r1-import-isp1
import ISP2 -> R2 map r2-import-isp2
export R2 -> ISP2 map r2-export-isp2
import Customer -> R3 map r3-import-customer

originate R1 -> R2 route 10.50.0.0/16 lp 100
originate R1 -> R3 route 10.50.0.0/16 lp 100
originate R1 -> ISP1 route 10.50.0.0/16 lp 100
`

// TestCommentOnlyConfigStepFastPath: a step whose config normalizes to the
// pinned source (a comment-only rollout) completes without touching the
// verifier — no dirty checks, no solves — and the final fingerprint is the
// baseline's.
func TestCommentOnlyConfigStepFastPath(t *testing.T) {
	p := migrate.Plan{
		Network:    &plan.Network{Config: fig1DSL},
		Properties: []plan.Property{{Name: "fig1-no-transit"}},
		Steps: []migrate.Step{
			{Label: "annotate", Config: "# rollout ticket NET-1234\n" + fig1DSL},
		},
	}
	res := compileRun(t, p, migrate.RunConfig{})
	if !res.OK || len(res.Steps) != 1 {
		t.Fatalf("comment-only plan must verify: %+v", res)
	}
	sr := res.Steps[0]
	if !sr.Unchanged || sr.Dirty != 0 || sr.Solved != 0 {
		t.Fatalf("comment-only step must take the no-op fast path: %+v", sr)
	}
	if res.FinalSourceFP != config.SourceFingerprint(fig1DSL) {
		t.Fatalf("final source fingerprint %q should be the baseline's", res.FinalSourceFP)
	}
}

// permutations returns every ordering of [0, n).
func permutations(n int) [][]int {
	var out [][]int
	var rec func(cur []int, used uint)
	rec = func(cur []int, used uint) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used&(1<<uint(i)) == 0 {
				rec(append(cur, i), used|1<<uint(i))
			}
		}
	}
	rec(nil, 0)
	return out
}

// TestSearchFindsTheOneSafeOrder: of the six orderings of the fig1 filter
// swap exactly one is safe, and the unordered search finds it — with memo
// hits proving intermediate states are shared between candidate orders.
func TestSearchFindsTheOneSafeOrder(t *testing.T) {
	steps := netgen.Fig1FilterSwap()

	// Ground truth first: walk every ordering as an ordered plan and count
	// the safe ones.
	safe := 0
	for _, perm := range permutations(len(steps)) {
		ordered := make([]netgen.MigrationStep, len(perm))
		for i, idx := range perm {
			ordered[i] = steps[idx]
		}
		res := compileRun(t, fig1Plan(ordered, false), migrate.RunConfig{})
		if res.OK {
			safe++
			if ordered[0].Label != "shield" || ordered[1].Label != "retire" {
				t.Fatalf("unexpected safe order %v", perm)
			}
		}
	}
	if safe != 1 {
		t.Fatalf("the filter swap must have exactly one safe order, found %d", safe)
	}

	res := compileRun(t, fig1Plan(steps, true), migrate.RunConfig{})
	if !res.OK || res.Infeasible {
		t.Fatalf("search must find the safe order: %+v", res)
	}
	if len(res.OrderLabels) != 3 || res.OrderLabels[0] != "shield" ||
		res.OrderLabels[1] != "retire" || res.OrderLabels[2] != "reinstate" {
		t.Fatalf("found order %v, want shield retire reinstate", res.OrderLabels)
	}
	if res.MemoHits == 0 {
		t.Fatalf("the reinstated state equals the post-shield state; expected a memo hit: %+v", res)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("the winning chain must report all 3 steps, got %d", len(res.Steps))
	}
}

// TestSearchInfeasible: retire+reinstate without the shield has no safe
// order (retire-first leaks transit, reinstate-first hits the occupied
// sequence number); the search must prove that and explain the blocks.
func TestSearchInfeasible(t *testing.T) {
	steps := netgen.Fig1FilterSwap()[1:]
	res := compileRun(t, fig1Plan(steps, true), migrate.RunConfig{})
	if res.OK || !res.Infeasible {
		t.Fatalf("retire+reinstate must be infeasible: %+v", res)
	}
	if res.Explanation == nil || len(res.Explanation.Blocked) == 0 {
		t.Fatalf("infeasibility must explain what blocked every continuation: %+v", res.Explanation)
	}
	if res.Explanation.BudgetExhausted {
		t.Fatal("a two-step set must be proven infeasible, not budgeted out")
	}
	if len(res.Explanation.SafePrefix) != 0 {
		t.Fatalf("no step is safe first; safe prefix = %v", res.Explanation.SafePrefix)
	}
}

// TestSearchBudgetExhausted: a budget of one state cannot decide the
// three-step swap; the result must say so rather than claim infeasibility.
func TestSearchBudgetExhausted(t *testing.T) {
	p := fig1Plan(netgen.Fig1FilterSwap(), true)
	p.SearchBudget = 1
	res := compileRun(t, p, migrate.RunConfig{})
	if res.OK || !res.Infeasible || res.Explanation == nil || !res.Explanation.BudgetExhausted {
		t.Fatalf("budget of 1 must exhaust, not decide: %+v", res)
	}
	if res.SearchStates > 1 {
		t.Fatalf("verified %d states under a budget of 1", res.SearchStates)
	}
}

// TestCancelMidPlan: cancelling the context between steps aborts the walk
// with the context's error.
func TestCancelMidPlan(t *testing.T) {
	c, err := migrate.Compile(fig1Plan(netgen.Fig1ShieldRetire(), false), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	res, err := migrate.Run(ctx, eng, c, migrate.RunConfig{
		Sink: func(ev migrate.Event) {
			if ev.Type == migrate.EvBaseline {
				cancel() // the walk re-checks the context before each step
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if res == nil || res.OK {
		t.Fatalf("cancelled run must not report success: %+v", res)
	}
}

// TestSessionRollbackAndRepin drives the session seams (RunConfig.Verifier):
// a violating plan restores the pinned baseline; a safe plan leaves the
// final state pinned as the new baseline.
func TestSessionRollbackAndRepin(t *testing.T) {
	c, err := migrate.Compile(fig1Plan(netgen.Fig1ShieldRetire(), false), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifierFor(eng, c.Inner)
	v.SetWorkload(c.Inner.Workload())
	if _, err := v.Baseline(c.Inner.Network); err != nil {
		t.Fatal(err)
	}
	baseFP := v.Fingerprint()

	// Violating order: the session must end back on its baseline.
	bad, err := migrate.Compile(fig1Plan(reverse(netgen.Fig1ShieldRetire()), false), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := migrate.Run(context.Background(), eng, bad, migrate.RunConfig{Verifier: v})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.ViolatedStep != 0 {
		t.Fatalf("bad order must violate at step 0: %+v", res)
	}
	if res.Baseline != nil {
		t.Fatal("a session run must not re-baseline the pinned state")
	}
	if v.Fingerprint() != baseFP {
		t.Fatalf("failed migration moved the session: %s -> %s", baseFP, v.Fingerprint())
	}

	// Safe order: the final state is the new baseline.
	res, err = migrate.Run(context.Background(), eng, c, migrate.RunConfig{Verifier: v})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("safe order must verify: %+v", res)
	}
	want := c.Inner.Network
	for _, s := range netgen.Fig1ShieldRetire() {
		if want, err = netgen.ApplyMutation(want, s.Mutation); err != nil {
			t.Fatal(err)
		}
	}
	if v.Fingerprint() != want.Fingerprint() {
		t.Fatalf("successful migration must pin the final state: %s != %s", v.Fingerprint(), want.Fingerprint())
	}
}

// TestCompileRejects: malformed plans are usage errors (plan.RequestError),
// decided before anything runs.
func TestCompileRejects(t *testing.T) {
	shield := netgen.Fig1FilterSwap()[0].Mutation
	net := &plan.Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}}
	props := []plan.Property{{Name: "fig1-no-transit"}}
	cases := []struct {
		name string
		p    migrate.Plan
	}{
		{"no network", migrate.Plan{Properties: props, Steps: []migrate.Step{{Mutation: &shield}}}},
		{"no steps", migrate.Plan{Network: net, Properties: props}},
		{"config and mutation", migrate.Plan{Network: net, Properties: props,
			Steps: []migrate.Step{{Config: fig1DSL, Mutation: &shield}}}},
		{"neither config nor mutation", migrate.Plan{Network: net, Properties: props,
			Steps: []migrate.Step{{Label: "empty"}}}},
		{"bad mutation", migrate.Plan{Network: net, Properties: props,
			Steps: []migrate.Step{{Mutation: &netgen.MutationSpec{Kind: "frobnicate"}}}}},
		{"unordered single step", migrate.Plan{Network: net, Properties: props,
			Steps: []migrate.Step{{Mutation: &shield}}, Unordered: true}},
		{"unordered config step", migrate.Plan{Network: net, Properties: props,
			Steps: []migrate.Step{{Mutation: &shield}, {Config: fig1DSL}}, Unordered: true}},
		{"negative budget", migrate.Plan{Network: net, Properties: props,
			Steps: []migrate.Step{{Mutation: &shield}}, SearchBudget: -1}},
	}
	for _, tc := range cases {
		_, err := migrate.Compile(tc.p, nil)
		var reqErr *plan.RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("%s: err = %v, want plan.RequestError", tc.name, err)
		}
	}

	// The session path pins network and properties; a body carrying them is
	// rejected.
	inner, err := plan.Compile(plan.Request{Network: *net, Properties: props}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = migrate.CompileSteps(migrate.Plan{Network: net,
		Steps: []migrate.Step{{Mutation: &shield}}}, inner, "")
	var reqErr *plan.RequestError
	if !errors.As(err, &reqErr) {
		t.Errorf("CompileSteps with a network: err = %v, want plan.RequestError", err)
	}
}
