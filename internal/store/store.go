// Package store is the disk-persistent, content-addressed check-result
// store behind the engine's ResultCache seam: a JSON-lines journal of
// {check key → verdict} records that is replayed into memory on Open, so a
// warm start — a CLI rerun with -store, or an lyserve redeploy — serves
// previously solved checks without touching the solver.
//
// Results are addressed purely by the semantic check key (core.Check.Key):
// the key already hashes everything the verdict depends on (the filter
// policy, the predicates, the ghost updates), so it is sound across network
// states, processes, and suites — the same property the engine's in-memory
// cache and cross-job dedup rest on. Each record additionally carries the
// fingerprint of the network state that produced it (topology.Fingerprint)
// as provenance, which retention (Options.MaxFingerprints) and future
// sharded/remote stores use to scope what is kept without affecting lookup
// correctness.
//
// Persisted results deliberately drop the per-check identity
// (Kind/Loc/Desc): the engine relabels shared results for the receiving
// check anyway (engine.adapt), and a counterexample's routes are kept as
// their rendered text. The journal is append-only and crash-tolerant: a
// truncated final line is ignored on replay, and re-recording an
// already-known key is skipped to keep warm reruns from growing the file.
// Journals that nevertheless accumulate superseded duplicate keys (crashes,
// older writers, concatenated directories) are compacted on Open: the file
// is atomically rewritten with exactly one record per key, so long-lived
// store directories stop growing unboundedly.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/logging"
	"lightyear/internal/telemetry"
)

// journalName is the journal file created inside the store directory.
const journalName = "results.jsonl"

// record is one journal line.
type record struct {
	Key         string       `json:"key"`
	Fingerprint string       `json:"fp,omitempty"`
	Result      resultRecord `json:"result"`
}

// resultRecord is the persisted portion of a core.CheckResult.
type resultRecord struct {
	OK      bool `json:"ok"`
	NumVars int  `json:"vars,omitempty"`
	NumCons int  `json:"cons,omitempty"`
	// NumTerms and Solver persist the encoding size and CDCL search
	// provenance of the solve that produced the verdict, so replayed
	// results still explain what the original solve cost.
	NumTerms int              `json:"terms,omitempty"`
	Solver   *core.SolveStats `json:"solver,omitempty"`
	SolveNS  int64            `json:"solve_ns,omitempty"`
	TotalNS  int64            `json:"total_ns,omitempty"`
	Witness  string           `json:"witness,omitempty"` // rendered counterexample, failures only
}

func encodeResult(r core.CheckResult) resultRecord {
	out := resultRecord{
		OK:       r.OK,
		NumVars:  r.NumVars,
		NumCons:  r.NumCons,
		NumTerms: r.NumTerms,
		SolveNS:  r.SolveTime.Nanoseconds(),
		TotalNS:  r.TotalTime.Nanoseconds(),
	}
	if r.Solver.Depth() {
		s := r.Solver
		out.Solver = &s
	}
	if r.Counterexample != nil {
		out.Witness = r.Counterexample.String()
	}
	return out
}

// legacyUnknown recognizes records journaled by pre-Status writers for
// budget-exhausted checks: they were stored as plain failures whose witness
// is the old explanatory note. Serving one would resurrect a give-up as a
// proven violation, so Get treats them as misses.
func (rr resultRecord) legacyUnknown() bool {
	return !rr.OK && strings.Contains(rr.Witness, "solver budget exhausted (unknown)")
}

func (rr resultRecord) decode() core.CheckResult {
	out := core.CheckResult{
		OK:        rr.OK,
		NumVars:   rr.NumVars,
		NumCons:   rr.NumCons,
		NumTerms:  rr.NumTerms,
		SolveTime: time.Duration(rr.SolveNS),
		TotalTime: time.Duration(rr.TotalNS),
	}
	if rr.Solver != nil {
		out.Solver = *rr.Solver
	}
	// Only decided verdicts are ever journaled (Unknown results are not
	// cacheable), so Status follows directly from OK.
	if rr.OK {
		out.Status = core.StatusOK
	} else {
		out.Status = core.StatusFail
	}
	if rr.Witness != "" {
		out.Counterexample = &core.Counterexample{Note: rr.Witness}
	}
	return out
}

// Stats counts store traffic since Open.
type Stats struct {
	Loaded    int `json:"loaded"`              // distinct results replayed from the journal
	Hits      int `json:"hits"`                // Get calls served
	Misses    int `json:"misses"`              // Get calls not served
	Puts      int `json:"puts"`                // new results appended to the journal
	Compacted int `json:"compacted,omitempty"` // superseded journal lines dropped on Open
	Evicted   int `json:"evicted,omitempty"`   // results dropped by fingerprint retention on Open
}

// Options configure Open's replay and compaction behavior.
type Options struct {
	// MaxFingerprints, when positive, bounds retention by provenance: on
	// Open only results recorded under the N most recently written network
	// fingerprints are kept, and the journal is compacted to match — the
	// knob that stops a long-lived store directory from accumulating
	// results for network states that no longer exist. Recency is write
	// order, which survives compaction: the journal is rewritten with the
	// oldest fingerprint's records first and the newest last. Results
	// recorded without a fingerprint carry no provenance and are always
	// kept. 0 keeps everything.
	MaxFingerprints int
}

// Store is a disk-backed ResultCache. It is safe for concurrent use by one
// process; multi-process sharing of one directory is not supported (the
// sharding direction left open in the roadmap).
type Store struct {
	path string

	mu        sync.Mutex
	mem       map[string]record // full records, so compaction keeps provenance
	f         *os.File
	w         *bufio.Writer
	fp        string         // provenance fingerprint attached to subsequent Puts
	fpSeq     map[string]int // fingerprint → last write tick, for retention recency
	fpTick    int
	loaded    int
	hits      int
	misses    int
	puts      int
	compacted int
	evicted   int

	// Telemetry handles (nil without SetTelemetry; emission is nil-safe).
	metHits   *telemetry.Counter
	metMisses *telemetry.Counter
	metPuts   *telemetry.Counter

	log *slog.Logger // nil until SetLogger; warnings fall back to slog.Default
}

// SetLogger routes the store's warnings (journal append/compact failures)
// through a structured logger. Call alongside SetTelemetry, right after
// Open; without one, warnings go to slog's process default.
func (s *Store) SetLogger(l *slog.Logger) {
	s.mu.Lock()
	s.log = logging.Component(l, "store")
	s.mu.Unlock()
}

// warn emits one structured warning. Callers hold s.mu or are pre-serve
// (Open-time compaction).
func (s *Store) warn(msg string, err error) {
	l := s.log
	if l == nil {
		l = logging.Component(slog.Default(), "store")
	}
	l.Warn(msg, slog.String("path", s.path), slog.Any("error", err))
}

// ProbeWritable verifies the journal's directory still accepts new files —
// the readiness signal lyserve's /readyz reports for the store component.
// It probes the directory rather than the open append handle deliberately:
// an already-open descriptor keeps accepting writes after its directory is
// made read-only, which is exactly the failure this probe must surface.
func (s *Store) ProbeWritable() error {
	f, err := os.CreateTemp(filepath.Dir(s.path), ".writable-probe-*")
	if err != nil {
		return fmt.Errorf("store: journal directory not writable: %w", err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// SetTelemetry points the store's traffic counters at a recorder and
// registers a journal-size gauge. Call once, before the store serves
// traffic (lyserve does so right after Open).
func (s *Store) SetTelemetry(rec *telemetry.Recorder) {
	if rec == nil {
		return
	}
	s.mu.Lock()
	s.metHits = rec.Counter("lightyear_store_hits_total",
		"Store lookups served from the journal-backed cache.").With()
	s.metMisses = rec.Counter("lightyear_store_misses_total",
		"Store lookups not present in the journal-backed cache.").With()
	s.metPuts = rec.Counter("lightyear_store_puts_total",
		"New results appended to the store journal.").With()
	s.mu.Unlock()
	rec.GaugeFunc("lightyear_store_journal_results",
		"Distinct check results retained in the store journal.", nil,
		func() []telemetry.Sample {
			return []telemetry.Sample{{Value: float64(s.Len())}}
		})
}

// Open opens dir with default options (no fingerprint retention bound).
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions creates the directory if needed, replays the journal —
// applying the fingerprint retention bound and compacting the file in
// place when it carries superseded duplicate keys or evicted results, so
// long-lived store directories stop growing unboundedly — and returns a
// store ready to serve Gets from memory and append Puts to disk.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, journalName)
	s := &Store{path: path, mem: make(map[string]record), fpSeq: make(map[string]int)}

	lines := 0
	fpSeq := s.fpSeq // fingerprint → last journal line it was written on
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			lines++
			var rec record
			if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
				// Torn or foreign line (e.g. a crash mid-append): skip it
				// rather than refuse the rest of the journal.
				continue
			}
			s.mem[rec.Key] = rec // last record for a key wins, as in Get
			if rec.Fingerprint != "" {
				fpSeq[rec.Fingerprint] = lines
			}
		}
		err := sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: replay %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.fpTick = lines
	s.evicted = s.retain(opts.MaxFingerprints, fpSeq)
	s.loaded = len(s.mem)

	if lines > len(s.mem) {
		// The journal carries superseded duplicates, torn lines, or
		// retention-evicted results: rewrite it with exactly one record per
		// retained key. Best-effort — a failed compaction leaves the
		// original journal in place (evicted results stay dropped from
		// memory either way).
		if err := s.compact(); err != nil {
			s.warn("journal compaction failed", err)
		} else {
			s.compacted = lines - len(s.mem) - s.evicted
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f, s.w = f, bufio.NewWriter(f)
	return s, nil
}

// retain applies the MaxFingerprints bound to the replayed records: only
// results whose provenance is among the max most recently written
// fingerprints (by last journal appearance) survive; fingerprint-less
// records always do. Evicted fingerprints are dropped from the recency
// index too. Returns the number of evicted results.
func (s *Store) retain(max int, fpSeq map[string]int) int {
	if max <= 0 || len(fpSeq) <= max {
		return 0
	}
	fps := make([]string, 0, len(fpSeq))
	for fp := range fpSeq {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fpSeq[fps[i]] > fpSeq[fps[j]] })
	keep := make(map[string]bool, max)
	for _, fp := range fps[:max] {
		keep[fp] = true
	}
	evicted := 0
	for key, rec := range s.mem {
		if rec.Fingerprint != "" && !keep[rec.Fingerprint] {
			delete(s.mem, key)
			evicted++
		}
	}
	for fp := range fpSeq {
		if !keep[fp] {
			delete(fpSeq, fp)
		}
	}
	return evicted
}

// compact atomically rewrites the journal from memory: one record per key,
// written to a temp file and renamed over the original. Records are
// ordered by their fingerprint's write recency (oldest first,
// provenance-less records before all), then by key for determinism — so
// the rewritten journal preserves the write-order recency that
// fingerprint retention (Options.MaxFingerprints) reads back on the next
// Open. Called before the append handle is opened.
func (s *Store) compact() error {
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		si, sj := s.fpSeq[s.mem[keys[i]].Fingerprint], s.fpSeq[s.mem[keys[j]].Fingerprint]
		if si != sj {
			return si < sj
		}
		return keys[i] < keys[j]
	})

	tmp, err := os.CreateTemp(filepath.Dir(s.path), journalName+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	for _, k := range keys {
		b, err := json.Marshal(s.mem[k])
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path)
}

// SetFingerprint sets the network-state fingerprint recorded as provenance
// on subsequent Puts (see topology.Fingerprint).
func (s *Store) SetFingerprint(fp string) {
	s.mu.Lock()
	s.fp = fp
	s.mu.Unlock()
}

// Get implements engine.ResultCache. The returned result carries no
// Kind/Loc/Desc; the engine relabels it for the receiving check.
func (s *Store) Get(key string) (core.CheckResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.mem[key]
	if !ok || rec.Result.legacyUnknown() {
		s.misses++
		s.metMisses.Inc()
		return core.CheckResult{}, false
	}
	s.hits++
	s.metHits.Inc()
	return rec.Result.decode(), true
}

// Add implements engine.ResultCache: record the result in memory and append
// it to the journal. Keys already present are left untouched — results are
// content-addressed, so the first verdict recorded for a key is the
// verdict.
func (s *Store) Add(key string, val core.CheckResult) {
	if key == "" || val.Status == core.StatusUnknown {
		// Unknown is not a verdict: journaling it would pin "insufficient
		// budget" as the key's answer forever.
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return // closed
	}
	if old, dup := s.mem[key]; dup && !old.Result.legacyUnknown() {
		return
	}
	// A legacy budget-exhausted record is superseded by the real verdict:
	// the appended line wins on replay, and compaction drops the old one.
	rec := record{Key: key, Fingerprint: s.fp, Result: encodeResult(val)}
	s.mem[key] = rec
	if s.fp != "" {
		s.fpTick++
		s.fpSeq[s.fp] = s.fpTick // recency for retention on a later Open
	}
	s.puts++
	s.metPuts.Inc()
	if err := s.append(rec); err != nil {
		// Disk trouble degrades the store to in-memory; verification
		// results are reproducible, so losing persistence is not fatal.
		s.warn("journal append failed", err)
	}
}

func (s *Store) append(rec record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// Len implements engine.ResultCache.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats returns the traffic counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Loaded: s.loaded, Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Compacted: s.compacted, Evicted: s.evicted}
}

// Close flushes and closes the journal. The store must not be used after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
