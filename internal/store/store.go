// Package store is the disk-persistent, content-addressed check-result
// store behind the engine's ResultCache seam: a JSON-lines journal of
// {check key → verdict} records that is replayed into memory on Open, so a
// warm start — a CLI rerun with -store, or an lyserve redeploy — serves
// previously solved checks without touching the solver.
//
// Results are addressed purely by the semantic check key (core.Check.Key):
// the key already hashes everything the verdict depends on (the filter
// policy, the predicates, the ghost updates), so it is sound across network
// states, processes, and suites — the same property the engine's in-memory
// cache and cross-job dedup rest on. Each record additionally carries the
// fingerprint of the network state that produced it (topology.Fingerprint)
// as provenance, which Compact and future sharded/remote stores can use to
// scope retention without affecting lookup correctness.
//
// Persisted results deliberately drop the per-check identity
// (Kind/Loc/Desc): the engine relabels shared results for the receiving
// check anyway (engine.adapt), and a counterexample's routes are kept as
// their rendered text. The journal is append-only and crash-tolerant: a
// truncated final line is ignored on replay, and re-recording an
// already-known key is skipped to keep warm reruns from growing the file.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lightyear/internal/core"
)

// journalName is the journal file created inside the store directory.
const journalName = "results.jsonl"

// record is one journal line.
type record struct {
	Key         string       `json:"key"`
	Fingerprint string       `json:"fp,omitempty"`
	Result      resultRecord `json:"result"`
}

// resultRecord is the persisted portion of a core.CheckResult.
type resultRecord struct {
	OK      bool   `json:"ok"`
	NumVars int    `json:"vars,omitempty"`
	NumCons int    `json:"cons,omitempty"`
	SolveNS int64  `json:"solve_ns,omitempty"`
	TotalNS int64  `json:"total_ns,omitempty"`
	Witness string `json:"witness,omitempty"` // rendered counterexample, failures only
}

func encodeResult(r core.CheckResult) resultRecord {
	out := resultRecord{
		OK:      r.OK,
		NumVars: r.NumVars,
		NumCons: r.NumCons,
		SolveNS: r.SolveTime.Nanoseconds(),
		TotalNS: r.TotalTime.Nanoseconds(),
	}
	if r.Counterexample != nil {
		out.Witness = r.Counterexample.String()
	}
	return out
}

func (rr resultRecord) decode() core.CheckResult {
	out := core.CheckResult{
		OK:        rr.OK,
		NumVars:   rr.NumVars,
		NumCons:   rr.NumCons,
		SolveTime: time.Duration(rr.SolveNS),
		TotalTime: time.Duration(rr.TotalNS),
	}
	if rr.Witness != "" {
		out.Counterexample = &core.Counterexample{Note: rr.Witness}
	}
	return out
}

// Stats counts store traffic since Open.
type Stats struct {
	Loaded int `json:"loaded"` // distinct results replayed from the journal
	Hits   int `json:"hits"`   // Get calls served
	Misses int `json:"misses"` // Get calls not served
	Puts   int `json:"puts"`   // new results appended to the journal
}

// Store is a disk-backed ResultCache. It is safe for concurrent use by one
// process; multi-process sharing of one directory is not supported (the
// sharding direction left open in the roadmap).
type Store struct {
	path string

	mu     sync.Mutex
	mem    map[string]resultRecord
	f      *os.File
	w      *bufio.Writer
	fp     string // provenance fingerprint attached to subsequent Puts
	loaded int
	hits   int
	misses int
	puts   int
}

// Open creates the directory if needed, replays the journal, and returns a
// store ready to serve Gets from memory and append Puts to disk.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{path: path, mem: make(map[string]resultRecord), f: f, w: bufio.NewWriter(f)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			// Torn or foreign line (e.g. a crash mid-append): skip it
			// rather than refuse the rest of the journal.
			continue
		}
		if _, dup := s.mem[rec.Key]; !dup {
			s.loaded++
		}
		s.mem[rec.Key] = rec.Result
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: replay %s: %w", path, err)
	}
	return s, nil
}

// SetFingerprint sets the network-state fingerprint recorded as provenance
// on subsequent Puts (see topology.Fingerprint).
func (s *Store) SetFingerprint(fp string) {
	s.mu.Lock()
	s.fp = fp
	s.mu.Unlock()
}

// Get implements engine.ResultCache. The returned result carries no
// Kind/Loc/Desc; the engine relabels it for the receiving check.
func (s *Store) Get(key string) (core.CheckResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rr, ok := s.mem[key]
	if !ok {
		s.misses++
		return core.CheckResult{}, false
	}
	s.hits++
	return rr.decode(), true
}

// Add implements engine.ResultCache: record the result in memory and append
// it to the journal. Keys already present are left untouched — results are
// content-addressed, so the first verdict recorded for a key is the
// verdict.
func (s *Store) Add(key string, val core.CheckResult) {
	if key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return // closed
	}
	if _, dup := s.mem[key]; dup {
		return
	}
	rec := record{Key: key, Fingerprint: s.fp, Result: encodeResult(val)}
	s.mem[key] = rec.Result
	s.puts++
	if err := s.append(rec); err != nil {
		// Disk trouble degrades the store to in-memory; verification
		// results are reproducible, so losing persistence is not fatal.
		fmt.Fprintf(os.Stderr, "store: append: %v\n", err)
	}
}

func (s *Store) append(rec record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// Len implements engine.ResultCache.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats returns the traffic counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Loaded: s.loaded, Hits: s.hits, Misses: s.misses, Puts: s.puts}
}

// Close flushes and closes the journal. The store must not be used after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
