package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lightyear/internal/core"
)

func TestStoreRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFingerprint("fp-1")

	pass := core.CheckResult{OK: true, NumVars: 12, NumCons: 34,
		SolveTime: 5 * time.Millisecond, TotalTime: 9 * time.Millisecond}
	fail := core.CheckResult{OK: false,
		Counterexample: &core.Counterexample{Note: "filter accepts a bogon"}}
	s.Add("key-pass", pass)
	s.Add("key-fail", fail)
	s.Add("", core.CheckResult{OK: true}) // uncacheable: must be ignored
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if st := s.Stats(); st.Puts != 2 || st.Loaded != 0 {
		t.Fatalf("stats = %+v, want 2 puts, 0 loaded", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": reopen and serve both results from the journal.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("after reopen Len = %d, want 2", s2.Len())
	}
	if st := s2.Stats(); st.Loaded != 2 {
		t.Fatalf("after reopen stats = %+v, want 2 loaded", st)
	}
	got, ok := s2.Get("key-pass")
	if !ok || !got.OK || got.NumVars != 12 || got.NumCons != 34 ||
		got.SolveTime != 5*time.Millisecond || got.TotalTime != 9*time.Millisecond {
		t.Fatalf("key-pass round trip = %+v/%v", got, ok)
	}
	gotFail, ok := s2.Get("key-fail")
	if !ok || gotFail.OK || gotFail.Counterexample == nil ||
		gotFail.Counterexample.String() == "" {
		t.Fatalf("key-fail round trip = %+v/%v", gotFail, ok)
	}
	if _, ok := s2.Get("absent"); ok {
		t.Fatal("absent key must miss")
	}
	if st := s2.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

func TestStoreSkipsDuplicatesAndTornLines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Add("k", core.CheckResult{OK: true})
	s.Add("k", core.CheckResult{OK: false}) // duplicate: first verdict wins
	if st := s.Stats(); st.Puts != 1 {
		t.Fatalf("duplicate Add journaled: %+v", st)
	}
	if r, _ := s.Get("k"); !r.OK {
		t.Fatal("duplicate Add overwrote the recorded verdict")
	}
	s.Close()

	// Simulate a crash mid-append: a torn trailing line.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","result":{"ok`)
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn journal must not fail replay: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("Len = %d after torn-line replay, want 1", s2.Len())
	}
	if _, ok := s2.Get("k"); !ok {
		t.Fatal("intact record lost")
	}
}

// TestCompactOnOpen: a journal carrying superseded duplicate keys is
// rewritten on Open with exactly one record per key, the latest verdict
// winning and fingerprint provenance preserved; a clean journal is left
// byte-identical.
func TestCompactOnOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	journal := `{"key":"a","fp":"fp-old","result":{"ok":false,"witness":"stale"}}
{"key":"b","fp":"fp-1","result":{"ok":true}}
{"key":"a","fp":"fp-new","result":{"ok":true,"vars":7}}
{"key":"torn","result":{"ok
`
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Loaded != 2 || st.Compacted != 2 {
		t.Fatalf("stats = %+v, want 2 loaded / 2 compacted", st)
	}
	if r, ok := s.Get("a"); !ok || !r.OK || r.NumVars != 7 {
		t.Fatalf("compaction must keep the superseding record: %+v/%v", r, ok)
	}
	// Appends after compaction must still work.
	s.Add("c", core.CheckResult{OK: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range splitLines(string(data)) {
		if l != "" {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("compacted journal has %d records, want 3 (a, b, c):\n%s", lines, data)
	}
	if want := `"fp":"fp-new"`; !contains(string(data), want) {
		t.Fatalf("compaction dropped fingerprint provenance:\n%s", data)
	}

	// Reopen: nothing left to compact, everything still served.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Loaded != 3 || st.Compacted != 0 {
		t.Fatalf("second open stats = %+v, want 3 loaded / 0 compacted", st)
	}
	data2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatal("reopening a clean journal must not rewrite it")
	}
}

func splitLines(s string) []string { return strings.Split(s, "\n") }
func contains(s, sub string) bool  { return strings.Contains(s, sub) }

// TestLegacyUnknownRecordsNotServed: journals written before results carried
// a Status could record budget-exhausted checks as plain failures. Serving
// one would resurrect a solver give-up as a proven violation forever, so Get
// must miss on them and Add must let the real verdict supersede them.
func TestLegacyUnknownRecordsNotServed(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"key":"cafe01","result":{"ok":false,"witness":"note:   solver budget exhausted (unknown)"}}` + "\n" +
		`{"key":"cafe02","result":{"ok":false,"witness":"note:   filter accepts but result violates \"p\""}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "results.jsonl"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, ok := s.Get("cafe01"); ok {
		t.Fatal("legacy budget-exhausted record served as a verdict")
	}
	r, ok := s.Get("cafe02")
	if !ok || r.Status != core.StatusFail {
		t.Fatalf("real legacy failure not served as StatusFail: ok=%v r=%+v", ok, r)
	}

	// The real verdict supersedes the stale give-up.
	s.Add("cafe01", core.CheckResult{OK: true, Status: core.StatusOK})
	r, ok = s.Get("cafe01")
	if !ok || r.Status != core.StatusOK {
		t.Fatalf("verdict did not supersede legacy unknown: ok=%v r=%+v", ok, r)
	}

	// And an Unknown result is still never journaled.
	s.Add("cafe03", core.CheckResult{Status: core.StatusUnknown})
	if _, ok := s.Get("cafe03"); ok {
		t.Fatal("unknown result was journaled")
	}
}

// TestRetentionByFingerprint: OpenOptions with MaxFingerprints keeps only
// the results of the N most recently written network fingerprints, drops
// the rest from memory and (via compaction) from the journal, and always
// keeps provenance-less records. Keys deliberately sort lexicographically
// *against* write order (z, m, a), so the test also proves recency is
// write order — not accidental key order — and survives compaction.
func TestRetentionByFingerprint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Three fingerprint generations plus one provenance-less record, in
	// write order fp-1, fp-2, fp-3 — with keys sorting in reverse.
	keys := map[string]string{"fp-1": "key-z1", "fp-2": "key-m2", "fp-3": "key-a3"}
	for i, fp := range []string{"fp-1", "fp-2", "fp-3"} {
		s.SetFingerprint(fp)
		s.Add(keys[fp], core.CheckResult{OK: true, NumVars: i})
	}
	s.SetFingerprint("")
	s.Add("key-nofp", core.CheckResult{OK: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenOptions(dir, Options{MaxFingerprints: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(keys["fp-1"]); ok {
		t.Error("oldest fingerprint's result survived retention")
	}
	for _, key := range []string{keys["fp-2"], keys["fp-3"], "key-nofp"} {
		if _, ok := s2.Get(key); !ok {
			t.Errorf("%s should survive retention", key)
		}
	}
	if st := s2.Stats(); st.Evicted != 1 || st.Loaded != 3 {
		t.Errorf("stats = %+v, want 1 evicted, 3 loaded", st)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The eviction was compacted out of the journal: an unbounded reopen
	// must not resurrect fp-1.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get(keys["fp-1"]); ok {
		t.Error("evicted result resurrected after reopen — journal not compacted")
	}
	if s3.Len() != 3 {
		t.Errorf("Len = %d after retention+compaction, want 3", s3.Len())
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}

	// Recency must survive the compaction above: tightening to 1
	// fingerprint must keep fp-3 (the most recently written), not whichever
	// record happens to sort last in the rewritten file.
	s4, err := OpenOptions(dir, Options{MaxFingerprints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s4.Get(keys["fp-3"]); !ok {
		t.Error("newest fingerprint evicted after compaction — recency lost in the rewrite")
	}
	if _, ok := s4.Get(keys["fp-2"]); ok {
		t.Error("older fingerprint survived a 1-fingerprint bound")
	}
	if err := s4.Close(); err != nil {
		t.Fatal(err)
	}

	// A bound wider than the journal keeps everything.
	s5, err := OpenOptions(t.TempDir(), Options{MaxFingerprints: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s5.Close()
	if st := s5.Stats(); st.Evicted != 0 {
		t.Errorf("empty store evicted %d", st.Evicted)
	}
}
