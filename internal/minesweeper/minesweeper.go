// Package minesweeper implements the monolithic control-plane verification
// baseline that Lightyear is compared against in §6.2 (Figure 3). Following
// Minesweeper [Beckett et al., SIGCOMM'17], it encodes the network's entire
// stable routing state as one SMT formula: a symbolic route record per
// directed edge, per-router best-route selection constraints implementing
// the BGP decision process, and import/export transfer constraints for every
// session — then asserts the negation of the property and asks the solver
// for a counterexample.
//
// As in the paper's comparison, it shares the policy IR, the symbolic route
// representation, and the SAT/SMT substrate with Lightyear, so measured
// differences come from the encodings: this one is monolithic — O(E)
// symbolic records and O(V·E) selection constraints, quadratic in routers
// for the full-mesh topology — where Lightyear's per-check formulas have
// constant size.
package minesweeper

import (
	"fmt"
	"sync/atomic"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Result is the outcome of a monolithic verification run.
type Result struct {
	// Holds reports whether the property holds in every stable routing
	// state (the negated property was unsatisfiable).
	Holds bool
	// Unknown is set when the solver exhausted its budget.
	Unknown bool
	// CounterexampleNote describes the violating stable state, if any.
	CounterexampleNote string

	NumVars    int
	NumCons    int
	EncodeTime time.Duration
	SolveTime  time.Duration
	TotalTime  time.Duration
}

// Options controls the monolithic run.
type Options struct {
	// ConflictBudget bounds SAT effort; 0 means unlimited.
	ConflictBudget int64
	// Timeout aborts solving after the given wall-clock duration
	// (approximated via conflict polling); 0 means none.
	Timeout time.Duration
}

// edgeVars is the symbolic route record on one directed edge, after the
// sender's export filter (i.e., the message on the wire), plus its validity.
type edgeVars struct {
	route *spec.SymRoute
	valid *smt.Term
}

// Verify checks a safety property (loc, pred) over all stable routing
// states of the network, for all possible external announcements of a
// single symbolic destination prefix.
func Verify(n *topology.Network, loc core.Location, pred spec.Pred, ghosts []core.GhostDef, opts Options) Result {
	t0 := time.Now()
	enc := newEncoder(n, ghosts, pred)
	enc.encodeNetwork()
	enc.assertPropertyViolation(loc, pred)
	encodeTime := time.Since(t0)

	if opts.ConflictBudget > 0 {
		enc.solver.SetConflictBudget(opts.ConflictBudget)
	}
	var interrupted atomic.Bool
	if opts.Timeout > 0 {
		timer := time.AfterFunc(opts.Timeout, func() { interrupted.Store(true) })
		defer timer.Stop()
		enc.solver.SetInterrupt(&interrupted)
	}

	ts := time.Now()
	res := enc.solver.Check()
	solveTime := time.Since(ts)

	out := Result{
		NumVars:    res.NumVars,
		NumCons:    res.NumCons,
		EncodeTime: encodeTime,
		SolveTime:  solveTime,
		TotalTime:  time.Since(t0),
	}
	switch res.Status {
	case smt.Unsat:
		out.Holds = true
	case smt.Sat:
		out.Holds = false
		out.CounterexampleNote = "found a stable routing state violating the property"
	default:
		out.Unknown = true
	}
	return out
}

type encoder struct {
	n      *topology.Network
	ghosts []core.GhostDef
	ctx    *smt.Context
	solver *smt.Solver
	u      *spec.Universe

	// onWire[e] is the message traveling on edge e (post-export at e.From,
	// pre-import at e.To).
	onWire map[topology.Edge]*edgeVars
	// best[r] is router r's selected route.
	best map[topology.NodeID]*edgeVars
	// bestFromInternal[r] marks whether r's best was learned from an iBGP
	// peer (full-mesh iBGP: such routes are not re-exported internally).
	bestFromInternal map[topology.NodeID]*smt.Term
}

func newEncoder(n *topology.Network, ghosts []core.GhostDef, pred spec.Pred) *encoder {
	ctx := smt.NewContext()
	u := n.Universe()
	pred.AddToUniverse(u)
	for _, g := range ghosts {
		u.AddGhost(g.Name)
	}
	return &encoder{
		n:                n,
		ghosts:           ghosts,
		ctx:              ctx,
		solver:           smt.NewSolver(ctx),
		u:                u,
		onWire:           make(map[topology.Edge]*edgeVars),
		best:             make(map[topology.NodeID]*edgeVars),
		bestFromInternal: make(map[topology.NodeID]*smt.Term),
	}
}

// encodeNetwork builds the stable-state constraint system.
func (enc *encoder) encodeNetwork() {
	ctx := enc.ctx

	// 1. One symbolic record per directed edge. Records from external
	// senders are fully unconstrained (any announcement); internal senders
	// get their record defined by the export constraint below.
	for _, e := range enc.n.Edges() {
		name := fmt.Sprintf("wire[%s->%s]", e.From, e.To)
		w := &edgeVars{
			route: spec.NewSymRoute(ctx, name, enc.u),
			valid: ctx.BoolVar(name + ".valid"),
		}
		enc.solver.Assert(w.route.WellFormed())
		enc.onWire[e] = w
	}

	// All messages concern one symbolic destination: equal prefixes.
	var first *spec.SymRoute
	for _, e := range enc.n.Edges() {
		w := enc.onWire[e]
		if first == nil {
			first = w.route
			continue
		}
		enc.solver.Assert(ctx.Eq(w.route.Addr, first.Addr))
		enc.solver.Assert(ctx.Eq(w.route.PrefixLen, first.PrefixLen))
	}

	// 2. Per-router best-route selection.
	for _, r := range enc.n.Routers() {
		enc.encodeSelection(r, first)
	}

	// 3. Export constraints: the on-wire record of each internal sender is
	// the export-filtered image of the sender's best route (or an
	// origination).
	for _, e := range enc.n.Edges() {
		if !enc.n.IsExternal(e.From) {
			enc.encodeExport(e)
		}
	}
}

// encodeSelection constrains best[r] to be a preference-maximal accepted
// candidate among all incoming edges, or invalid when no candidate exists.
func (enc *encoder) encodeSelection(r topology.NodeID, dst *spec.SymRoute) {
	ctx := enc.ctx
	name := fmt.Sprintf("best[%s]", r)
	best := &edgeVars{
		route: spec.NewSymRoute(ctx, name, enc.u),
		valid: ctx.BoolVar(name + ".valid"),
	}
	enc.best[r] = best
	fromInternal := ctx.BoolVar(name + ".fromInternal")
	enc.bestFromInternal[r] = fromInternal
	if dst != nil {
		enc.solver.Assert(ctx.Eq(best.route.Addr, dst.Addr))
		enc.solver.Assert(ctx.Eq(best.route.PrefixLen, dst.PrefixLen))
	}

	type candidate struct {
		route    *spec.SymRoute
		accepted *smt.Term
		internal bool
	}
	var cands []candidate
	for _, nb := range enc.n.Predecessors(r) {
		e := topology.Edge{From: nb, To: r}
		w := enc.onWire[e]
		imported, acc := enc.n.Import(e).Encode(w.route)
		imported = applyGhostActs(imported, ghostImports(enc.ghosts, e))
		cands = append(cands, candidate{
			route:    imported,
			accepted: ctx.And(w.valid, acc),
			internal: !enc.n.IsExternal(nb),
		})
	}

	if len(cands) == 0 {
		enc.solver.Assert(ctx.Not(best.valid))
		return
	}

	// best.valid iff some candidate accepted.
	anyAccepted := ctx.False()
	for _, c := range cands {
		anyAccepted = ctx.Or(anyAccepted, c.accepted)
	}
	enc.solver.Assert(ctx.Iff(best.valid, anyAccepted))

	// chosen_i: exactly one accepted candidate is chosen when valid; the
	// best record equals it; and it is weakly preferred over every
	// accepted candidate.
	var chosens []*smt.Term
	for i, c := range cands {
		chosen := ctx.BoolVar(fmt.Sprintf("%s.chosen[%d]", name, i))
		chosens = append(chosens, chosen)
		enc.solver.Assert(ctx.Implies(chosen, c.accepted))
		enc.solver.Assert(ctx.Implies(chosen, eqRoutes(ctx, best.route, c.route)))
		enc.solver.Assert(ctx.Implies(chosen, ctx.Iff(fromInternal, ctx.Bool(c.internal))))
	}
	// valid => exactly one chosen; also pairwise exclusion.
	oneOf := ctx.Or(chosens...)
	enc.solver.Assert(ctx.Implies(best.valid, oneOf))
	for i := range chosens {
		for j := i + 1; j < len(chosens); j++ {
			enc.solver.Assert(ctx.Or(ctx.Not(chosens[i]), ctx.Not(chosens[j])))
		}
	}
	// The chosen candidate must be weakly preferred over all accepted ones.
	for _, c := range cands {
		enc.solver.Assert(ctx.Implies(
			ctx.And(best.valid, c.accepted),
			prefGE(ctx, best.route, c.route),
		))
	}
}

// encodeExport constrains onWire[e] for an internal sender: it is valid iff
// the sender has a valid best route that the export filter accepts (subject
// to the iBGP re-advertisement rule), or an origination exists; the record
// equals the filtered image.
func (enc *encoder) encodeExport(e topology.Edge) {
	ctx := enc.ctx
	w := enc.onWire[e]
	best := enc.best[e.From]

	exported, acc := enc.n.Export(e).Encode(best.route)
	exported = applyGhostActs(exported, ghostExports(enc.ghosts, e))

	mayExport := ctx.And(best.valid, acc)
	// Full-mesh iBGP: internally learned best routes are not re-advertised
	// to internal peers.
	if !enc.n.IsExternal(e.To) {
		mayExport = ctx.And(mayExport, ctx.Not(enc.bestFromInternal[e.From]))
	}

	// Originations on this edge (concrete routes) provide an alternative
	// source for the wire message.
	var orig *spec.SymRoute
	origPossible := ctx.False()
	if routes := enc.n.Originate(e); len(routes) > 0 {
		// Encode the first origination concretely (sufficient for the
		// synthetic scaling workloads, which originate at most one route
		// per edge).
		orig = concreteToSym(ctx, enc.u, routes[0], e, enc.ghosts)
		origPossible = ctx.True()
	}

	// Monotone hop count breaks circularly self-supporting routes: the
	// wire message is one hop longer than the exported image (the image
	// already reflects any prepend actions in the export map).
	bumped := exported.Clone()
	bumped.PathLen = ctx.Add(exported.PathLen, ctx.BV(1, spec.WidthPathLen))

	// Wire validity: exported best, or origination.
	enc.solver.Assert(ctx.Iff(w.valid, ctx.Or(mayExport, origPossible)))
	// When the export path is taken, the wire equals the filtered image;
	// the export path takes precedence over origination when both hold.
	enc.solver.Assert(ctx.Implies(mayExport, eqRoutes(ctx, w.route, bumped)))
	if orig != nil {
		enc.solver.Assert(ctx.Implies(ctx.And(origPossible, ctx.Not(mayExport)), eqRoutes(ctx, w.route, orig)))
	}
}

// assertPropertyViolation asserts the negation of the property at loc.
func (enc *encoder) assertPropertyViolation(loc core.Location, pred spec.Pred) {
	ctx := enc.ctx
	if loc.IsEdge() {
		w := enc.onWire[loc.Edge()]
		if w == nil {
			panic(fmt.Sprintf("minesweeper: property edge %v not in topology", loc.Edge()))
		}
		enc.solver.Assert(ctx.And(w.valid, ctx.Not(pred.Compile(w.route))))
		return
	}
	b := enc.best[loc.Router()]
	if b == nil {
		panic(fmt.Sprintf("minesweeper: property router %v not in topology", loc.Router()))
	}
	enc.solver.Assert(ctx.And(b.valid, ctx.Not(pred.Compile(b.route))))
}

// eqRoutes equates every attribute of two symbolic routes.
func eqRoutes(ctx *smt.Context, a, b *spec.SymRoute) *smt.Term {
	conj := []*smt.Term{
		ctx.Eq(a.Addr, b.Addr),
		ctx.Eq(a.PrefixLen, b.PrefixLen),
		ctx.Eq(a.LocalPref, b.LocalPref),
		ctx.Eq(a.MED, b.MED),
		ctx.Eq(a.NextHop, b.NextHop),
		ctx.Eq(a.PathLen, b.PathLen),
	}
	for c, t := range a.Comm {
		conj = append(conj, ctx.Iff(t, b.Comm[c]))
	}
	for as, t := range a.HasAS {
		conj = append(conj, ctx.Iff(t, b.HasAS[as]))
	}
	for g, t := range a.Ghost {
		conj = append(conj, ctx.Iff(t, b.Ghost[g]))
	}
	return ctx.And(conj...)
}

// prefGE encodes "a is weakly preferred over b" per the BGP decision
// process of routemodel.Prefer.
func prefGE(ctx *smt.Context, a, b *spec.SymRoute) *smt.Term {
	lpGT := ctx.Ugt(a.LocalPref, b.LocalPref)
	lpEQ := ctx.Eq(a.LocalPref, b.LocalPref)
	plLT := ctx.Ult(a.PathLen, b.PathLen)
	plEQ := ctx.Eq(a.PathLen, b.PathLen)
	medLT := ctx.Ult(a.MED, b.MED)
	medEQ := ctx.Eq(a.MED, b.MED)
	nhLE := ctx.Ule(a.NextHop, b.NextHop)
	return ctx.Or(
		lpGT,
		ctx.And(lpEQ, plLT),
		ctx.And(lpEQ, plEQ, medLT),
		ctx.And(lpEQ, plEQ, medEQ, nhLE),
	)
}

func applyGhostActs(sr *spec.SymRoute, acts []policy.Action) *spec.SymRoute {
	if len(acts) == 0 {
		return sr
	}
	out := sr.Clone()
	for _, a := range acts {
		a.ApplySym(out)
	}
	return out
}

// concreteToSym lifts a concrete originated route into a symbolic record
// (with origination-time ghost values).
func concreteToSym(ctx *smt.Context, u *spec.Universe, r *routemodel.Route, e topology.Edge, ghosts []core.GhostDef) *spec.SymRoute {
	sr := spec.NewSymRoute(ctx, fmt.Sprintf("orig[%s->%s]", e.From, e.To), u)
	out := sr.Clone()
	out.Addr = ctx.BV(uint64(r.Prefix.Addr), spec.WidthAddr)
	out.PrefixLen = ctx.BV(uint64(r.Prefix.Len), spec.WidthPrefixLen)
	out.LocalPref = ctx.BV(uint64(r.LocalPref), spec.WidthLocalPref)
	out.MED = ctx.BV(uint64(r.MED), spec.WidthMED)
	out.NextHop = ctx.BV(uint64(r.NextHop), spec.WidthNextHop)
	out.PathLen = ctx.BV(uint64(len(r.ASPath)), spec.WidthPathLen)
	for c := range out.Comm {
		out.Comm[c] = ctx.Bool(r.HasCommunity(c))
	}
	for as := range out.HasAS {
		out.HasAS[as] = ctx.Bool(r.PathContains(as))
	}
	for g := range out.Ghost {
		v := false
		for _, gd := range ghosts {
			if gd.Name == g && gd.OnOriginate != nil {
				v = gd.OnOriginate(e)
			}
		}
		out.Ghost[g] = ctx.Bool(v)
	}
	return out
}

func ghostImports(ghosts []core.GhostDef, e topology.Edge) []policy.Action {
	var out []policy.Action
	for _, g := range ghosts {
		if g.OnImport == nil {
			continue
		}
		if v, set := g.OnImport(e); set {
			out = append(out, policy.SetGhost{Name: g.Name, Value: v})
		}
	}
	return out
}

func ghostExports(ghosts []core.GhostDef, e topology.Edge) []policy.Action {
	var out []policy.Action
	for _, g := range ghosts {
		if g.OnExport == nil {
			continue
		}
		if v, set := g.OnExport(e); set {
			out = append(out, policy.SetGhost{Name: g.Name, Value: v})
		}
	}
	return out
}
