package minesweeper_test

import (
	"testing"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/minesweeper"
	"lightyear/internal/netgen"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestFig1NoTransitHoldsMonolithically(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	res := minesweeper.Verify(
		n,
		core.AtEdge(topology.Edge{From: "R2", To: "ISP2"}),
		spec.Not(spec.Ghost("FromISP1")),
		[]core.GhostDef{netgen.FromISP1Ghost(n)},
		minesweeper.Options{},
	)
	if res.Unknown {
		t.Fatal("solver gave up")
	}
	if !res.Holds {
		t.Fatalf("no-transit should hold: %+v", res)
	}
	if res.NumVars <= 0 || res.NumCons <= 0 {
		t.Fatal("missing stats")
	}
}

func TestFig1MissingExportFilterViolatesMonolithically(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{SkipExportFilter: true})
	res := minesweeper.Verify(
		n,
		core.AtEdge(topology.Edge{From: "R2", To: "ISP2"}),
		spec.Not(spec.Ghost("FromISP1")),
		[]core.GhostDef{netgen.FromISP1Ghost(n)},
		minesweeper.Options{},
	)
	if res.Holds || res.Unknown {
		t.Fatalf("missing export filter must be caught: %+v", res)
	}
}

func TestFig1MissingTagViolatesMonolithically(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	res := minesweeper.Verify(
		n,
		core.AtEdge(topology.Edge{From: "R2", To: "ISP2"}),
		spec.Not(spec.Ghost("FromISP1")),
		[]core.GhostDef{netgen.FromISP1Ghost(n)},
		minesweeper.Options{},
	)
	if res.Holds || res.Unknown {
		t.Fatalf("missing tag must be caught: %+v", res)
	}
}

func TestRouterLocationProperty(t *testing.T) {
	// At router R1, every selected route for a peer destination carries
	// 100:1 when it came from ISP1.
	n := netgen.Fig1(netgen.Fig1Options{})
	res := minesweeper.Verify(
		n,
		core.AtRouter("R1"),
		spec.Implies(spec.Ghost("FromISP1"), spec.HasCommunity(netgen.CommTransit)),
		[]core.GhostDef{netgen.FromISP1Ghost(n)},
		minesweeper.Options{},
	)
	if !res.Holds || res.Unknown {
		t.Fatalf("key invariant should hold at R1: %+v", res)
	}
}

// TestAgreesWithLightyear cross-checks the two verifiers on correct and
// buggy variants — the baseline must agree with the modular verdicts on
// Figure 1 (where the local invariants are exact).
func TestAgreesWithLightyear(t *testing.T) {
	variants := []netgen.Fig1Options{
		{},
		{OmitTransitTag: true},
		{SkipExportFilter: true},
		{StripAtR2: true},
	}
	for i, o := range variants {
		n := netgen.Fig1(o)
		ly := core.VerifySafety(netgen.Fig1NoTransitProblem(n), core.Options{})
		ms := minesweeper.Verify(
			n,
			core.AtEdge(topology.Edge{From: "R2", To: "ISP2"}),
			spec.Not(spec.Ghost("FromISP1")),
			[]core.GhostDef{netgen.FromISP1Ghost(n)},
			minesweeper.Options{},
		)
		if ms.Unknown {
			t.Fatalf("variant %d: minesweeper unknown", i)
		}
		if ly.OK() != ms.Holds {
			// Lightyear's local checks may fail for invariant reasons even
			// when the end-to-end property holds, but on these planted
			// bugs both must agree.
			t.Fatalf("variant %d (%+v): lightyear=%v minesweeper=%v", i, o, ly.OK(), ms.Holds)
		}
	}
}

func TestTimeoutReturnsUnknown(t *testing.T) {
	// A large-enough mesh with a 1ns timeout must give up.
	n := netgen.FullMesh(8)
	res := minesweeper.Verify(
		n,
		core.AtEdge(topology.Edge{From: "R1", To: "X1"}),
		spec.Not(spec.Ghost("FromBad")),
		[]core.GhostDef{netgen.FullMeshGhost(n)},
		minesweeper.Options{Timeout: time.Nanosecond},
	)
	if !res.Unknown {
		t.Fatalf("expected unknown under immediate timeout, got %+v", res)
	}
}
