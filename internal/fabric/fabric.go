// The coordinator half of the fabric: the Remote backend, its worker pool
// with consistent-hash routing, health probing, and circuit breaking, and
// the retry/fallback ladder. See doc.go for the package story and how to
// run a fleet.

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/solver"
	"lightyear/internal/telemetry"
)

func init() {
	solver.RegisterRemote(func(s solver.Spec) (solver.Backend, error) {
		return FromSpec(s)
	})
}

// Defaults for Config fields left zero.
const (
	DefaultProbeInterval    = 2 * time.Second
	DefaultBreakerThreshold = 3
	DefaultRetryBackoff     = 50 * time.Millisecond
	DefaultMaxAttempts      = 3
	// maxRPCSpans caps rpc child spans recorded per solve span, so a
	// hundred-thousand-check job doesn't explode its trace tree.
	maxRPCSpans = 32
)

// Process-wide fabric environment, installed once at binary startup before
// any Remote is built (lyserve/lightyear/lybench main). Specs construct
// backends deep inside plan compilation where no recorder parameter exists,
// so the environment is package state by design.
var (
	envMu       sync.Mutex
	envRecorder *telemetry.Recorder
	envLogger   *slog.Logger
)

// SetTelemetry installs the process recorder used by pools built after the
// call. Call once at startup, before submitting workloads.
func SetTelemetry(rec *telemetry.Recorder) {
	envMu.Lock()
	envRecorder = rec
	envMu.Unlock()
}

// SetLogger installs the process logger for coordinator-side fabric events.
func SetLogger(l *slog.Logger) {
	envMu.Lock()
	envLogger = l
	envMu.Unlock()
}

func env() (*telemetry.Recorder, *slog.Logger) {
	envMu.Lock()
	defer envMu.Unlock()
	return envRecorder, envLogger
}

// sharedClient is the HTTP client all pools share: generous idle pools so
// long runs reuse connections to every worker.
var sharedClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	},
}

// WireError reports a worker that answered 200 with a body the coordinator
// cannot trust (malformed JSON, inconsistent verdict). It is terminal for
// the solve — retrying a worker that returns garbage risks caching garbage —
// and surfaces as StatusUnknown, which the engine never caches.
type WireError struct {
	Worker string
	Reason string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("fabric: malformed response from %s: %s", e.Worker, e.Reason)
}

// Config parameterizes a Remote backend.
type Config struct {
	// Workers is the worker address list ("host:port"). Required unless
	// every solve should fall back locally.
	Workers []string
	// Budget is a backend-bound conflict budget overriding the caller's
	// (Spec.Budget semantics).
	Budget int64
	// Fallback solves locally when the pool is empty, exhausted, or the
	// obligation is not remotable. Defaults to the native backend.
	Fallback solver.Backend
	// MaxAttempts bounds distinct workers tried per solve. Default 3
	// (capped at the pool size).
	MaxAttempts int
	// RetryBackoff is the base backoff between attempts (doubles per
	// attempt). Default 50ms.
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe period. Default 2s.
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker. Default 3.
	BreakerThreshold int
	// Recorder overrides the process recorder installed via SetTelemetry.
	Recorder *telemetry.Recorder
	// Logger overrides the process logger installed via SetLogger.
	Logger *slog.Logger
	// shared reuses the process-wide pool for this worker set instead of
	// creating a private one (the FromSpec path).
	shared bool
}

// Remote is the coordinator-side solver backend: it serializes obligations
// and ships them to the worker pool, sharding by check key.
type Remote struct {
	pool        *pool
	ownsPool    bool
	fallback    solver.Backend
	budget      int64
	maxAttempts int
	backoff     time.Duration
	logger      *slog.Logger
	fingerprint string

	// spanCount bounds rpc spans per solve span (see maxRPCSpans); keyed by
	// parent span identity.
	spanMu    sync.Mutex
	spanCount map[*telemetry.Span]int
}

// New builds a Remote backend with a private pool (tests own its lifecycle
// via Close). Production paths go through FromSpec/solver.New, which share
// pools process-wide.
func New(cfg Config) (*Remote, error) {
	rec, logger := env()
	if cfg.Recorder != nil {
		rec = cfg.Recorder
	}
	if cfg.Logger != nil {
		logger = cfg.Logger
	}
	if cfg.Fallback == nil {
		cfg.Fallback = solver.Native(0)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	if n := len(cfg.Workers); maxAttempts > n && n > 0 {
		maxAttempts = n
	}

	var p *pool
	owns := false
	if len(cfg.Workers) > 0 {
		if cfg.shared {
			p = getPool(cfg.Workers, sharedClient, rec, cfg.ProbeInterval, int64(cfg.BreakerThreshold))
		} else {
			p = newPool(cfg.Workers, sharedClient, rec, cfg.ProbeInterval, int64(cfg.BreakerThreshold))
			owns = true
		}
	}
	return &Remote{
		pool:        p,
		ownsPool:    owns,
		fallback:    cfg.Fallback,
		budget:      cfg.Budget,
		maxAttempts: maxAttempts,
		backoff:     cfg.RetryBackoff,
		logger:      logger,
		fingerprint: fmt.Sprintf("remote:%s:%d", poolKey(cfg.Workers), cfg.Budget),
		spanCount:   map[*telemetry.Span]int{},
	}, nil
}

// FromSpec builds the Remote backend a spec describes, sharing the
// process-wide pool for its worker set. This is the solver.New path.
func FromSpec(s solver.Spec) (solver.Backend, error) {
	if len(s.Workers) == 0 {
		return nil, fmt.Errorf("fabric: remote spec has no workers (want \"remote:host1,host2\")")
	}
	return New(Config{Workers: s.Workers, Budget: s.Budget, shared: true})
}

// Close releases a privately owned pool's probe loop. Shared pools are
// process-lifetime and unaffected.
func (r *Remote) Close() {
	if r.ownsPool && r.pool != nil {
		r.pool.close()
	}
}

// Name implements solver.Backend.
func (r *Remote) Name() string { return solver.RemoteName }

// Fingerprint makes solver.SameConfig treat Remotes over the same fleet and
// budget as interchangeable.
func (r *Remote) Fingerprint() string { return r.fingerprint }

// Stats snapshots the backend's pool counters.
func (r *Remote) Stats() Stats {
	if r.pool == nil {
		return Stats{}
	}
	return r.pool.stats()
}

// Solve implements solver.Backend: encode, route by key, retry across ring
// successors, fall back locally when the fleet cannot answer.
func (r *Remote) Solve(ctx context.Context, ob *core.Obligation, b solver.Budget) solver.Outcome {
	if r.pool == nil {
		return r.fallbackSolve(ctx, ob, b, "pool")
	}
	if ob.Concrete() {
		// Originate checks are direct evaluations of a handful of concrete
		// routes; an RPC costs more than the check.
		return r.fallbackSolve(ctx, ob, b, "concrete")
	}
	wire, err := core.EncodeObligation(ob)
	if err != nil {
		// Not remotable (predicate/action outside the wire unions).
		if r.logger != nil {
			r.logger.Warn("fabric: obligation not remotable; solving locally", "key", ob.Key(), "err", err)
		}
		return r.fallbackSolve(ctx, ob, b, "encode")
	}
	budget := r.budget
	if budget <= 0 {
		budget = b.Conflicts
	}
	key := ob.Key()
	if key == "" {
		key = ob.Kind.String() + "|" + ob.Loc.String() + "|" + ob.Desc
	}

	workers := r.pool.pick(key)
	if len(workers) > r.maxAttempts {
		workers = workers[:r.maxAttempts]
	}
	for i, w := range workers {
		if i > 0 {
			// Bounded exponential backoff between attempts, honoring ctx.
			d := r.backoff << (i - 1)
			select {
			case <-ctx.Done():
				return cancelledOutcome(ob)
			case <-time.After(d):
			}
			r.pool.retries.With(workers[i-1].addr).Inc()
		}
		out, err := r.solveOn(ctx, w, ob, wire, budget)
		if err == nil {
			if i > 0 {
				workers[0].retried.Add(1)
				r.pool.failovers.Add(1)
				r.pool.failoverC.Inc()
			}
			return out
		}
		var werr *WireError
		if errors.As(err, &werr) {
			// The worker answered but the body is garbage: typed error,
			// Unknown verdict, no retry — and no crash.
			if r.logger != nil {
				r.logger.Error("fabric: discarding malformed worker response", "worker", w.addr, "err", err)
			}
			return unknownOutcome(ob, err.Error())
		}
		if ctx.Err() != nil {
			return cancelledOutcome(ob)
		}
		if r.logger != nil {
			r.logger.Warn("fabric: solve attempt failed", "worker", w.addr, "attempt", i+1, "err", err)
		}
	}
	// Every shard refused: degrade to the local backend rather than failing
	// the job. The verdict stays correct; only locality is lost.
	return r.fallbackSolve(ctx, ob, b, "exhausted")
}

// solveOn performs one solve RPC against one worker.
func (r *Remote) solveOn(ctx context.Context, w *worker, ob *core.Obligation, wire *core.ObligationWire, budget int64) (solver.Outcome, error) {
	var out solver.Outcome
	body, err := json.Marshal(SolveRequest{Obligation: wire, Budget: budget})
	if err != nil {
		return out, &WireError{Worker: w.addr, Reason: fmt.Sprintf("encode request: %v", err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")

	span := r.startRPCSpan(ctx, w, ob)
	w.inflight.Add(1)
	t0 := time.Now()
	resp, err := r.pool.client.Do(req)
	elapsed := time.Since(t0)
	w.inflight.Add(-1)
	r.pool.rpcSeconds.With(w.addr).Observe(elapsed.Seconds())
	defer span.End()

	if err != nil {
		span.SetAttr("error", "transport")
		r.pool.noteFailure(w)
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		span.SetAttr("error", fmt.Sprintf("http %d", resp.StatusCode))
		// 4xx means this coordinator sent something the worker rejects
		// (version skew): retrying elsewhere may still work, but don't
		// punish the worker's breaker for our request.
		if resp.StatusCode >= 500 {
			r.pool.noteFailure(w)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return out, fmt.Errorf("fabric: %s answered %s", w.addr, resp.Status)
	}

	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		r.pool.noteFailure(w)
		return out, &WireError{Worker: w.addr, Reason: fmt.Sprintf("decode: %v", err)}
	}
	cr, err := sr.Result.CheckResult()
	if err != nil {
		r.pool.noteFailure(w)
		return out, &WireError{Worker: w.addr, Reason: err.Error()}
	}
	r.pool.noteSuccess(w)
	w.solved.Add(1)
	r.pool.solvesC.With(w.addr, cr.Status.String()).Inc()

	// Stamp identity locally and record provenance: which fleet member and
	// which worker-side backend produced the verdict.
	cr.Kind = ob.Kind
	cr.Loc = ob.Loc
	cr.Desc = ob.Desc
	workerBackend := cr.Backend
	if workerBackend == "" {
		workerBackend = "native"
	}
	cr.Backend = solver.RemoteName + "(" + w.addr + ")/" + workerBackend
	span.SetAttr("worker", w.addr)
	span.SetAttr("status", cr.Status.String())

	out.CheckResult = cr
	out.Raced = sr.Raced
	out.Escalated = sr.Escalated
	return out, nil
}

// startRPCSpan opens a child span for the rpc leg under the solve span the
// engine put in ctx, bounded per parent so huge jobs don't flood the trace
// ring.
func (r *Remote) startRPCSpan(ctx context.Context, w *worker, ob *core.Obligation) *telemetry.Span {
	parent := telemetry.SpanFromContext(ctx)
	if parent == nil {
		return nil
	}
	r.spanMu.Lock()
	n := r.spanCount[parent]
	if n >= maxRPCSpans {
		r.spanMu.Unlock()
		return nil
	}
	r.spanCount[parent] = n + 1
	if len(r.spanCount) > 1024 {
		// Parents accumulate for the life of the backend; shed the map
		// wholesale once it grows silly (costs only span caps, not data).
		r.spanCount = map[*telemetry.Span]int{}
	}
	r.spanMu.Unlock()
	s := parent.StartSpan("rpc:" + w.addr)
	s.SetAttr("kind", ob.Kind.String())
	return s
}

func (r *Remote) fallbackSolve(ctx context.Context, ob *core.Obligation, b solver.Budget, reason string) solver.Outcome {
	if r.pool != nil {
		r.pool.fallbacks.Add(1)
		r.pool.fallbackC.With(reason).Inc()
	}
	out := r.fallback.Solve(ctx, ob, b)
	if reason != "concrete" && out.Backend != "" && !strings.HasPrefix(out.Backend, solver.RemoteName) {
		out.Backend = solver.RemoteName + "/fallback:" + out.Backend
	}
	return out
}

func unknownOutcome(ob *core.Obligation, note string) solver.Outcome {
	return solver.Outcome{CheckResult: core.CheckResult{
		Kind:           ob.Kind,
		Loc:            ob.Loc,
		Desc:           ob.Desc,
		Status:         core.StatusUnknown,
		Backend:        solver.RemoteName,
		Counterexample: &core.Counterexample{Note: note},
	}}
}

func cancelledOutcome(ob *core.Obligation) solver.Outcome {
	return unknownOutcome(ob, "solve cancelled (unknown)")
}
