package fabric

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/solver"
)

// startWorker runs an in-process worker server and returns its host:port.
func startWorker(t *testing.T, opts ServerOptions) (string, *httptest.Server) {
	t.Helper()
	if opts.Backend == nil {
		opts.Backend = solver.Native(0)
	}
	srv := httptest.NewServer(NewServer(opts))
	t.Cleanup(srv.Close)
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host, srv
}

// newRemote builds a private-pool Remote over the given workers with test
// timings: tight backoff, no probe churn during short tests.
func newRemote(t *testing.T, workers ...string) *Remote {
	t.Helper()
	r, err := New(Config{
		Workers:       workers,
		RetryBackoff:  time.Millisecond,
		ProbeInterval: time.Hour, // probes off: tests drive breaker state via solves
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// remotableObligations are the non-concrete checks of the Fig1 no-transit
// problem (originate checks bypass the fabric by design), with both OK and
// Fail verdicts when built on the buggy network.
func remotableObligations(t *testing.T, buggy bool) []*core.Obligation {
	t.Helper()
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: buggy})
	p := netgen.Fig1NoTransitProblem(n)
	var out []*core.Obligation
	for _, c := range p.Checks(core.Options{}) {
		if ob := c.Obligation(); !ob.Concrete() {
			out = append(out, ob)
		}
	}
	if len(out) == 0 {
		t.Fatal("no remotable obligations")
	}
	return out
}

// TestRingDeterminismAndCoverage: pick is stable per key, prefers distinct
// workers in order, and spreads keys across the whole fleet.
func TestRingDeterminismAndCoverage(t *testing.T) {
	p := newPool([]string{"a:1", "b:1", "c:1"}, sharedClient, nil, time.Hour, 3)
	defer p.close()
	hits := map[string]int{}
	for i := 0; i < 300; i++ {
		key := strings.Repeat("k", i%7+1) + string(rune('a'+i%26))
		first := p.pick(key)
		if len(first) != 3 {
			t.Fatalf("pick returned %d workers, want 3", len(first))
		}
		seen := map[string]bool{}
		for _, w := range first {
			if seen[w.addr] {
				t.Fatalf("pick repeated worker %s", w.addr)
			}
			seen[w.addr] = true
		}
		again := p.pick(key)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("pick not deterministic for %q", key)
			}
		}
		hits[first[0].addr]++
	}
	for addr, n := range hits {
		if n == 0 {
			t.Errorf("worker %s owns no keys", addr)
		}
		t.Logf("%s owns %d/300 keys", addr, n)
	}
	if len(hits) != 3 {
		t.Fatalf("only %d workers own keys, want 3", len(hits))
	}
}

// TestRemoteSolveRoundTrip: a two-worker fleet decides real obligations with
// the same verdicts as a local solve, stamps fleet provenance, and shards
// work across both workers by key.
func TestRemoteSolveRoundTrip(t *testing.T) {
	a1, _ := startWorker(t, ServerOptions{Name: "w1"})
	a2, _ := startWorker(t, ServerOptions{Name: "w2"})
	r := newRemote(t, a1, a2)
	native := solver.Native(0)

	for _, buggy := range []bool{false, true} {
		fails := 0
		for _, ob := range remotableObligations(t, buggy) {
			want := native.Solve(context.Background(), ob, solver.Budget{})
			got := r.Solve(context.Background(), ob, solver.Budget{})
			if got.Status != want.Status {
				t.Fatalf("%q: remote=%v local=%v", ob.Desc, got.Status, want.Status)
			}
			if !strings.HasPrefix(got.Backend, "remote(") || !strings.HasSuffix(got.Backend, ")/native") {
				t.Fatalf("%q: provenance %q, want remote(<addr>)/native", ob.Desc, got.Backend)
			}
			if got.Status == core.StatusFail {
				fails++
				if got.Counterexample == nil {
					t.Fatalf("%q: failing verdict without counterexample", ob.Desc)
				}
			}
		}
		if buggy && fails == 0 {
			t.Fatal("buggy network produced no failing verdict over the fabric")
		}
	}

	st := r.Stats()
	var total int64
	for _, w := range st.Workers {
		total += w.Solved
		if w.Solved == 0 {
			t.Errorf("worker %s solved nothing; sharding should spread this suite", w.Addr)
		}
	}
	if total == 0 {
		t.Fatal("no remote solves recorded")
	}
	if st.Fallbacks != 0 {
		t.Fatalf("unexpected local fallbacks: %d", st.Fallbacks)
	}
}

// TestBudgetForwarded: the coordinator's conflict budget rides the wire — a
// 1-conflict budget leaves the pigeonhole check Unknown on the worker, and
// the Unknown comes back as a decoded verdict, not an error.
func TestBudgetForwarded(t *testing.T) {
	addr, _ := startWorker(t, ServerOptions{})
	r := newRemote(t, addr)
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)
	var hard *core.Obligation
	for _, c := range p.Checks(core.Options{}) {
		ob := c.Obligation()
		if ob.Concrete() {
			continue
		}
		// The pigeonhole implication is the one check a 1-conflict budget
		// cannot decide; identify it by that behavior.
		if out := r.Solve(context.Background(), ob, solver.Budget{Conflicts: 1}); out.Status == core.StatusUnknown {
			hard = ob
			break
		}
	}
	if hard == nil {
		t.Fatal("no obligation was budget-limited; budget not forwarded to the worker")
	}
	if out := r.Solve(context.Background(), hard, solver.Budget{}); out.Status != core.StatusOK {
		t.Fatalf("unlimited remote solve returned %v, want ok", out.Status)
	}
}

// TestFailoverOnWorkerDeath: killing the worker that owns a shard moves its
// solves to the ring successor — the verdict is still decided, the failover
// is counted, and the dead worker's breaker trips.
func TestFailoverOnWorkerDeath(t *testing.T) {
	a1, s1 := startWorker(t, ServerOptions{Name: "w1"})
	a2, s2 := startWorker(t, ServerOptions{Name: "w2"})
	r := newRemote(t, a1, a2)
	native := solver.Native(0)

	obs := remotableObligations(t, false)
	// Find obligations whose primary shard is each worker.
	byPrimary := map[string]*core.Obligation{}
	for _, ob := range obs {
		byPrimary[r.pool.pick(ob.Key())[0].addr] = ob
	}
	if len(byPrimary) != 2 {
		t.Skipf("suite too small to cover both shards: %d", len(byPrimary))
	}

	// Kill w1 (SIGKILL-equivalent: the listener drops, connections refuse)
	// and solve an obligation it owned.
	s1.Close()
	ob := byPrimary[a1]
	want := native.Solve(context.Background(), ob, solver.Budget{})
	got := r.Solve(context.Background(), ob, solver.Budget{})
	if got.Status != want.Status || got.Status == core.StatusUnknown {
		t.Fatalf("failover solve: remote=%v local=%v", got.Status, want.Status)
	}
	if !strings.Contains(got.Backend, a2) {
		t.Fatalf("failover provenance %q does not name survivor %s", got.Backend, a2)
	}
	st := r.Stats()
	if st.Failovers == 0 {
		t.Fatal("failover not counted")
	}
	for _, w := range st.Workers {
		if w.Addr == a1 && w.Errors == 0 {
			t.Errorf("dead worker recorded no errors: %+v", w)
		}
	}

	// Kill w2 as well: the fleet is gone, solves degrade to the local
	// fallback and stay correct.
	s2.Close()
	got = r.Solve(context.Background(), ob, solver.Budget{})
	if got.Status != want.Status {
		t.Fatalf("fallback solve: remote=%v local=%v", got.Status, want.Status)
	}
	if !strings.HasPrefix(got.Backend, "remote/fallback:") {
		t.Fatalf("fallback provenance %q, want remote/fallback:<name>", got.Backend)
	}
	if r.Stats().Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
}

// TestBreakerShiftsPreference: once a worker's breaker trips, later picks
// prefer the survivor first, so retries stop paying the dead worker's
// timeout on every solve.
func TestBreakerShiftsPreference(t *testing.T) {
	a1, s1 := startWorker(t, ServerOptions{})
	a2, _ := startWorker(t, ServerOptions{})
	r := newRemote(t, a1, a2)

	obs := remotableObligations(t, false)
	var owned *core.Obligation
	for _, ob := range obs {
		if r.pool.pick(ob.Key())[0].addr == a1 {
			owned = ob
			break
		}
	}
	if owned == nil {
		t.Skip("no obligation sharded to w1")
	}
	s1.Close()
	// BreakerThreshold (3) consecutive failures trip the breaker.
	for i := 0; i < DefaultBreakerThreshold; i++ {
		r.Solve(context.Background(), owned, solver.Budget{})
	}
	if got := r.pool.pick(owned.Key())[0].addr; got != a2 {
		t.Fatalf("after breaker trip, primary = %s, want survivor %s", got, a2)
	}
}

// TestMalformedResponseIsTerminalUnknown: a worker that answers 200 with
// garbage yields a typed WireError surfaced as StatusUnknown — no retry on
// the healthy worker (it would launder a lying worker's shard), no crash.
func TestMalformedResponseIsTerminalUnknown(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"result": {"ok": tr`)) // truncated mid-token
	}))
	defer garbage.Close()
	gu, _ := url.Parse(garbage.URL)
	a2, _ := startWorker(t, ServerOptions{})
	r := newRemote(t, gu.Host, a2)

	var owned *core.Obligation
	for _, ob := range remotableObligations(t, false) {
		if r.pool.pick(ob.Key())[0].addr == gu.Host {
			owned = ob
			break
		}
	}
	if owned == nil {
		t.Skip("no obligation sharded to the garbage worker")
	}
	out := r.Solve(context.Background(), owned, solver.Budget{})
	if out.Status != core.StatusUnknown || out.OK {
		t.Fatalf("malformed response produced %v (ok=%v), want unknown", out.Status, out.OK)
	}
	if out.Counterexample == nil || !strings.Contains(out.Counterexample.Note, "malformed") {
		t.Fatalf("unknown verdict does not explain itself: %+v", out.Counterexample)
	}
	for _, w := range r.Stats().Workers {
		if w.Addr == a2 && w.Solved != 0 {
			t.Fatalf("terminal wire error still retried on %s", a2)
		}
	}
}

// TestInconsistentVerdictRejected: a syntactically valid response whose
// ok/status fields disagree is rejected like garbage — Unknown, not a
// trusted verdict.
func TestInconsistentVerdictRejected(t *testing.T) {
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"result": {"ok": true, "status": "fail", "backend": "native"}}`))
	}))
	defer liar.Close()
	lu, _ := url.Parse(liar.URL)
	r := newRemote(t, lu.Host)

	ob := remotableObligations(t, false)[0]
	out := r.Solve(context.Background(), ob, solver.Budget{})
	if out.Status != core.StatusUnknown || out.OK {
		t.Fatalf("inconsistent verdict accepted: %v (ok=%v)", out.Status, out.OK)
	}
}

// TestSaturatedWorkerRetries: a worker answering 503 (admission full) is a
// retryable refusal — the solve completes on the other shard.
func TestSaturatedWorkerRetries(t *testing.T) {
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "worker saturated", http.StatusServiceUnavailable)
	}))
	defer full.Close()
	fu, _ := url.Parse(full.URL)
	a2, _ := startWorker(t, ServerOptions{})
	r := newRemote(t, fu.Host, a2)

	var owned *core.Obligation
	for _, ob := range remotableObligations(t, false) {
		if r.pool.pick(ob.Key())[0].addr == fu.Host {
			owned = ob
			break
		}
	}
	if owned == nil {
		t.Skip("no obligation sharded to the saturated worker")
	}
	out := r.Solve(context.Background(), owned, solver.Budget{})
	if out.Status == core.StatusUnknown {
		t.Fatalf("saturation did not fail over: %v", out.Status)
	}
	if !strings.Contains(out.Backend, a2) {
		t.Fatalf("provenance %q does not name the survivor", out.Backend)
	}
}

// TestEngineNeverCachesRemoteUnknown: driven through the engine, a fleet of
// liars produces Unknown verdicts that are not cached — resubmitting the
// same workload re-solves every check instead of replaying the give-up.
func TestEngineNeverCachesRemoteUnknown(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("not even json"))
	}))
	defer garbage.Close()
	gu, _ := url.Parse(garbage.URL)
	r := newRemote(t, gu.Host)

	eng := engine.New(engine.Options{Workers: 2, Backend: r})
	defer eng.Close()
	n := netgen.Fig1(netgen.Fig1Options{})
	var solvedAfter [2]uint64
	for i := 0; i < 2; i++ {
		j, err := eng.Submit(context.Background(), engine.Workload{Safety: netgen.Fig1NoTransitProblem(n)})
		if err != nil {
			t.Fatal(err)
		}
		rep := j.Wait()
		if rep.OK() {
			t.Fatal("report OK despite a garbage fleet")
		}
		unknowns := 0
		for _, res := range rep.Results {
			if res.Status == core.StatusUnknown {
				unknowns++
				if res.OK {
					t.Fatalf("unknown result claims OK: %+v", res)
				}
			}
		}
		if unknowns == 0 {
			t.Fatal("garbage fleet produced no unknown verdicts")
		}
		solvedAfter[i] = eng.Stats().ChecksSolved
	}
	// The decided verdicts (concrete checks solved by the local fallback)
	// may be cached, but every Unknown must be re-solved on resubmission:
	// the second run performs real solves instead of replaying give-ups.
	if solvedAfter[1] == solvedAfter[0] {
		t.Fatal("second submission solved nothing; unknown remote results were cached")
	}
}

// TestWorkerStatusAndHealth: the worker's own observability plane reports
// liveness and counters that move with traffic.
func TestWorkerStatusAndHealth(t *testing.T) {
	addr, srv := startWorker(t, ServerOptions{Name: "w-status"})
	r := newRemote(t, addr)
	ob := remotableObligations(t, false)[0]
	if out := r.Solve(context.Background(), ob, solver.Budget{}); out.Status == core.StatusUnknown {
		t.Fatalf("solve failed: %v", out.Status)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	var st WorkerStatus
	resp, err = http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "w-status" || st.Backend != "native" {
		t.Fatalf("status identity: %+v", st)
	}
	if st.Solves["ok"]+st.Solves["fail"]+st.Solves["unknown"] == 0 {
		t.Fatalf("status counters did not move: %+v", st.Solves)
	}
}
