package fabric

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/solver"
)

// SolveRequest is the coordinator→worker body of POST /v1/solve: one
// serialized obligation plus the conflict budget to decide it under.
type SolveRequest struct {
	Obligation *core.ObligationWire `json:"obligation"`
	// Budget caps SAT conflicts for this solve; 0 means unlimited.
	Budget int64 `json:"budget,omitempty"`
}

// SolveResponse is the worker→coordinator reply: the wire-form result plus
// the backend routing metadata solver.Outcome carries.
type SolveResponse struct {
	Result    *core.CheckResultWire `json:"result"`
	Raced     int                   `json:"raced,omitempty"`
	Escalated bool                  `json:"escalated,omitempty"`
	// Worker is the responding worker's self-reported name, echoed into
	// trace spans and provenance labels.
	Worker string `json:"worker,omitempty"`
}

// WorkerStatus is the GET /v1/status body: liveness plus cumulative solve
// counters, the worker-side half of the fleet's observability plane.
type WorkerStatus struct {
	Name          string           `json:"name"`
	Backend       string           `json:"backend"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	InFlight      int64            `json:"in_flight"`
	MaxConcurrent int              `json:"max_concurrent"`
	Solves        map[string]int64 `json:"solves"` // by verdict: ok/fail/unknown
	Rejected      int64            `json:"rejected"`
	BadRequests   int64            `json:"bad_requests"`
}

// ServerOptions configures a worker-side Server.
type ServerOptions struct {
	// Backend decides the obligations this worker receives. Required.
	Backend solver.Backend
	// Name labels this worker in responses; defaults to the backend name.
	Name string
	// MaxConcurrent bounds simultaneous solves; excess requests get 503
	// (the coordinator retries them on another shard). Default GOMAXPROCS.
	MaxConcurrent int
	// Logger receives per-solve records; nil disables logging.
	Logger *slog.Logger
}

// Server is the worker side of the solver fabric: an http.Handler exposing
// POST /v1/solve, GET /healthz, and GET /v1/status. It is used by
// cmd/lyworker and started in-process by tests and lybench.
type Server struct {
	backend solver.Backend
	name    string
	maxConc int
	logger  *slog.Logger
	start   time.Time

	sem      chan struct{}
	inflight atomic.Int64
	ok       atomic.Int64
	fail     atomic.Int64
	unknown  atomic.Int64
	rejected atomic.Int64
	badReq   atomic.Int64

	mux *http.ServeMux
}

// NewServer builds a worker server around a local backend.
func NewServer(opts ServerOptions) *Server {
	if opts.Backend == nil {
		panic("fabric: NewServer requires a backend")
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = runtime.GOMAXPROCS(0)
	}
	name := opts.Name
	if name == "" {
		name = opts.Backend.Name()
	}
	s := &Server{
		backend: opts.Backend,
		name:    name,
		maxConc: maxConc,
		logger:  opts.Logger,
		start:   time.Now(),
		sem:     make(chan struct{}, maxConc),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := WorkerStatus{
		Name:          s.name,
		Backend:       s.backend.Name(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inflight.Load(),
		MaxConcurrent: s.maxConc,
		Solves: map[string]int64{
			"ok":      s.ok.Load(),
			"fail":    s.fail.Load(),
			"unknown": s.unknown.Load(),
		},
		Rejected:    s.rejected.Load(),
		BadRequests: s.badReq.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badReq.Add(1)
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	ob, err := req.Obligation.Obligation()
	if err != nil {
		s.badReq.Add(1)
		http.Error(w, fmt.Sprintf("bad obligation: %v", err), http.StatusBadRequest)
		return
	}

	// Admission: bound concurrent solves. A saturated worker answers 503
	// immediately rather than queueing unboundedly — the coordinator's
	// retry path moves the solve to another shard.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		http.Error(w, "worker saturated", http.StatusServiceUnavailable)
		return
	}
	defer func() { <-s.sem }()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	t0 := time.Now()
	out := s.backend.Solve(r.Context(), ob, solver.Budget{Conflicts: req.Budget})
	switch out.Status {
	case core.StatusOK:
		s.ok.Add(1)
	case core.StatusFail:
		s.fail.Add(1)
	default:
		s.unknown.Add(1)
	}
	if s.logger != nil {
		s.logger.Info("solve",
			"key", ob.Key(),
			"kind", ob.Kind.String(),
			"loc", ob.Loc.String(),
			"status", out.Status.String(),
			"conflicts", out.Solver.Conflicts,
			"elapsed", time.Since(t0),
		)
	}

	resp := SolveResponse{
		Result:    core.EncodeCheckResult(out.CheckResult),
		Raced:     out.Raced,
		Escalated: out.Escalated,
		Worker:    s.name,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
