package fabric

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lightyear/internal/telemetry"
)

// virtualNodes is the number of ring points per worker. 64 points keep the
// key→worker assignment within a few percent of uniform for small fleets
// while the ring stays tiny.
const virtualNodes = 64

// worker is the coordinator's view of one remote solver process.
type worker struct {
	addr string // "host:port"
	url  string // "http://host:port"

	// healthy is the circuit-breaker state: false after BreakerThreshold
	// consecutive transport failures (or a failed probe), true again after
	// a successful probe or solve. Unhealthy workers sort to the back of
	// the preference list but are never removed — a revived worker picks
	// its old shard back up, so cache locality survives restarts.
	healthy    atomic.Bool
	consecErrs atomic.Int64

	inflight atomic.Int64
	solved   atomic.Int64 // successful solve RPCs
	errors   atomic.Int64 // transport/HTTP failures
	retried  atomic.Int64 // solves that failed here and moved on
}

// WorkerStats is the exported per-worker counter snapshot surfaced by
// /v1/stats and /v1/status on the coordinator.
type WorkerStats struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	InFlight int64  `json:"in_flight"`
	Solved   int64  `json:"solved"`
	Errors   int64  `json:"errors"`
	Retried  int64  `json:"retried"`
}

// Stats is the coordinator-side fabric snapshot.
type Stats struct {
	Workers   []WorkerStats `json:"workers"`
	Fallbacks int64         `json:"fallbacks"`
	Failovers int64         `json:"failovers"`
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash uint64
	w    *worker
}

// pool is a fixed set of workers sharing a consistent-hash ring, a health
// probe loop, and telemetry. Pools are shared across Remote instances with
// the same worker list (see getPool), so per-worker counters and breaker
// state are process-wide regardless of how many plan requests name the
// same fleet.
type pool struct {
	workers []*worker
	ring    []ringPoint
	client  *http.Client

	probeInterval time.Duration
	breakerAfter  int64

	fallbacks atomic.Int64
	failovers atomic.Int64

	// Telemetry handles (nil-safe when no recorder is installed).
	rpcSeconds *telemetry.HistogramVec
	retries    *telemetry.CounterVec
	failoverC  *telemetry.Counter
	fallbackC  *telemetry.CounterVec
	solvesC    *telemetry.CounterVec

	stop     chan struct{}
	stopOnce sync.Once
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func newPool(addrs []string, client *http.Client, rec *telemetry.Recorder, probeInterval time.Duration, breakerAfter int64) *pool {
	p := &pool{
		client:        client,
		probeInterval: probeInterval,
		breakerAfter:  breakerAfter,
		stop:          make(chan struct{}),
	}
	for _, a := range addrs {
		w := &worker{addr: a, url: "http://" + a}
		w.healthy.Store(true)
		p.workers = append(p.workers, w)
		for i := 0; i < virtualNodes; i++ {
			p.ring = append(p.ring, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", a, i)), w: w})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })

	p.rpcSeconds = rec.Histogram("lightyear_fabric_rpc_seconds",
		"Remote solve RPC latency by worker.", telemetry.TimeBuckets, "worker")
	p.retries = rec.Counter("lightyear_fabric_retries_total",
		"Solve attempts that failed on a worker and moved on.", "worker")
	p.failoverC = rec.Counter("lightyear_fabric_failover_total",
		"Solves that completed on a non-primary worker.").With()
	p.fallbackC = rec.Counter("lightyear_fabric_fallback_total",
		"Solves served by the local fallback backend.", "reason")
	p.solvesC = rec.Counter("lightyear_fabric_solves_total",
		"Remote solves completed, by worker and verdict.", "worker", "status")
	rec.GaugeFunc("lightyear_fabric_inflight",
		"Solve RPCs currently in flight, by worker.", []string{"worker"}, func() []telemetry.Sample {
			out := make([]telemetry.Sample, 0, len(p.workers))
			for _, w := range p.workers {
				out = append(out, telemetry.Sample{Labels: []string{w.addr}, Value: float64(w.inflight.Load())})
			}
			return out
		})

	go p.probeLoop()
	return p
}

// pick returns the workers to try for a key, in preference order: the ring
// successor owns the key (so cache and dedup shard with the work), further
// ring successors are the retry path, and unhealthy workers sort to the
// back as a last resort.
func (p *pool) pick(key string) []*worker {
	if len(p.workers) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0
	}
	var healthy, suspect []*worker
	seen := make(map[*worker]bool, len(p.workers))
	for n := 0; n < len(p.ring) && len(seen) < len(p.workers); n++ {
		w := p.ring[(i+n)%len(p.ring)].w
		if seen[w] {
			continue
		}
		seen[w] = true
		if w.healthy.Load() {
			healthy = append(healthy, w)
		} else {
			suspect = append(suspect, w)
		}
	}
	return append(healthy, suspect...)
}

// noteSuccess resets the breaker after any successful exchange.
func (p *pool) noteSuccess(w *worker) {
	w.consecErrs.Store(0)
	w.healthy.Store(true)
}

// noteFailure trips the breaker after breakerAfter consecutive failures.
func (p *pool) noteFailure(w *worker) {
	w.errors.Add(1)
	if w.consecErrs.Add(1) >= p.breakerAfter {
		w.healthy.Store(false)
	}
}

// probeLoop polls /healthz on every worker: it both revives workers the
// breaker tripped (half-open probe) and demotes silently dead ones before
// a solve has to find out the hard way.
func (p *pool) probeLoop() {
	t := time.NewTicker(p.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		for _, w := range p.workers {
			req, err := http.NewRequest(http.MethodGet, w.url+"/healthz", nil)
			if err != nil {
				continue
			}
			resp, err := p.client.Do(req)
			if err != nil || resp.StatusCode != http.StatusOK {
				if resp != nil {
					resp.Body.Close()
				}
				w.healthy.Store(false)
				continue
			}
			resp.Body.Close()
			p.noteSuccess(w)
		}
	}
}

func (p *pool) close() { p.stopOnce.Do(func() { close(p.stop) }) }

// stats snapshots the pool's counters.
func (p *pool) stats() Stats {
	s := Stats{
		Fallbacks: p.fallbacks.Load(),
		Failovers: p.failovers.Load(),
	}
	for _, w := range p.workers {
		s.Workers = append(s.Workers, WorkerStats{
			Addr:     w.addr,
			Healthy:  w.healthy.Load(),
			InFlight: w.inflight.Load(),
			Solved:   w.solved.Load(),
			Errors:   w.errors.Load(),
			Retried:  w.retried.Load(),
		})
	}
	return s
}

// poolKey canonicalizes a worker list.
func poolKey(addrs []string) string {
	sorted := append([]string(nil), addrs...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// Shared pool registry: every Remote built from a Spec with the same worker
// set shares one pool, so breaker state and counters are process-wide and
// probe goroutines don't multiply with plan requests.
var (
	poolsMu sync.Mutex
	pools   = map[string]*pool{}
)

func getPool(addrs []string, client *http.Client, rec *telemetry.Recorder, probeInterval time.Duration, breakerAfter int64) *pool {
	poolsMu.Lock()
	defer poolsMu.Unlock()
	key := poolKey(addrs)
	if p, ok := pools[key]; ok {
		return p
	}
	p := newPool(addrs, client, rec, probeInterval, breakerAfter)
	pools[key] = p
	return p
}

// Snapshot aggregates the stats of every shared pool in the process, merged
// per worker address. Coordinator surfaces (/v1/stats, /v1/status) report
// it whenever any remote backend has been constructed.
func Snapshot() *Stats {
	poolsMu.Lock()
	defer poolsMu.Unlock()
	if len(pools) == 0 {
		return nil
	}
	agg := &Stats{}
	byAddr := map[string]*WorkerStats{}
	for _, p := range pools {
		s := p.stats()
		agg.Fallbacks += s.Fallbacks
		agg.Failovers += s.Failovers
		for _, ws := range s.Workers {
			if prev, ok := byAddr[ws.Addr]; ok {
				prev.InFlight += ws.InFlight
				prev.Solved += ws.Solved
				prev.Errors += ws.Errors
				prev.Retried += ws.Retried
				prev.Healthy = prev.Healthy && ws.Healthy
			} else {
				cp := ws
				byAddr[ws.Addr] = &cp
			}
		}
	}
	addrs := make([]string, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		agg.Workers = append(agg.Workers, *byAddr[a])
	}
	return agg
}
