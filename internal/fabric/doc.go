// Package fabric is the distributed solver plane: a solver.Backend that
// ships obligations over HTTP to a pool of long-lived worker processes
// (cmd/lyworker), each running the existing local backend stack.
//
// The paper's modular decomposition makes every local check an independent
// SAT query, so the fleet needs no coordination beyond routing: the
// coordinator consistent-hashes on the check key, which means a given
// obligation always lands on the same shard — the worker-side engine's
// result cache and singleflight dedup keep firing across jobs, the same
// fate-sharing argument multipath transports make for flows that share
// state. Failure handling is layered so verdicts stay sound under worker
// loss:
//
//   - transport errors and 5xx responses trip a per-worker circuit breaker
//     after a few consecutive failures and the solve retries on the next
//     ring successor with bounded backoff (idempotent: solving is pure);
//   - a malformed 200 response is a typed WireError — the solve returns
//     StatusUnknown (never cached by the engine) rather than retrying a
//     worker that is lying;
//   - when every worker is down or the pool is empty, the solve falls back
//     to the local backend, so a dead fleet degrades to single-process
//     operation instead of failing jobs.
//
// Selection is wired through solver.ParseSpec ("remote:host1,host2") and
// solver.New via RegisterRemote — solver cannot import this package (it
// would cycle), so the factory is installed from init here and any binary
// importing fabric gains the backend.
//
// # Running a solver fleet
//
// Workers are plain processes with no shared state; start as many as the
// checks need, each deciding obligations with its own local backend:
//
//	lyworker -listen :9101 &
//	lyworker -listen :9102 &
//
// Any coordinator binary then selects the fleet with the remote solver
// spec — one flag, nothing else changes:
//
//	lightyear -config net.cfg -solver remote:localhost:9101,localhost:9102
//	lyserve   -listen :8080   -solver remote:localhost:9101,localhost:9102
//
// Observability is two-sided. Each worker self-reports its moving counters:
//
//	curl -s localhost:9101/v1/status
//	  => {"worker":":9101","backend":"native","in_flight":2,
//	      "solved":412,"failed":0,"unknown":3,"rejected":0,...}
//
// and the coordinator aggregates the fleet view — per-worker solve/error/
// retry counters, breaker health, failover and fallback totals — under the
// "fabric" section of lyserve's /v1/stats and /v1/status, with rpc latency
// histograms and in-flight gauges on /metrics and an rpc child span per
// remote solve in /v1/traces. Killing a worker mid-run flips its breaker
// after a few failed solves: its keys re-shard to ring successors, the
// probe loop half-opens the breaker when the worker returns, and the keys
// shard back. Verdicts are unaffected either way — that is the fabric's
// contract, exercised end to end by the shard smoke job in CI and
// measured by `lybench -experiment shard`.
package fabric
