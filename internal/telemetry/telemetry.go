// Package telemetry is the dependency-free observability substrate for the
// verification stack: atomic counters, fixed-bucket histograms, gauge
// callbacks, and per-workload span trees, all funneled through a single
// Recorder that renders Prometheus text exposition on demand.
//
// The package is built for instrumentation on hot paths:
//
//   - every mutation is an atomic add (no locks after a series handle is
//     resolved, and resolving a handle is one RLock'd map probe);
//   - every API is nil-safe — a nil *Recorder, *CounterVec, or *Span is a
//     no-op — so instrumented code never branches on "is telemetry on";
//   - completed traces land in a bounded ring, so memory stays flat no
//     matter how long the process runs.
//
// The engine, admission layer, dispatcher, solver routing, delta verifier,
// and store all emit into one Recorder; lyserve exposes it at GET /metrics
// and GET /v1/traces, lightyear prints span trees behind -trace, and
// lybench derives checks/sec and latency quantiles from the same
// histograms it commits to BENCH_*.json.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Recorder is the process-wide metrics and trace hub. The zero value is not
// usable; construct with New. A nil *Recorder is a valid no-op sink: every
// method (and every handle derived from it) tolerates nil receivers.
type Recorder struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order for stable iteration before sort

	traces traceRing
}

// New returns an empty Recorder. traceCap bounds the ring of completed
// traces retained for GET /v1/traces; values < 1 select DefaultTraceCap.
func New(traceCap int) *Recorder {
	if traceCap < 1 {
		traceCap = DefaultTraceCap
	}
	return &Recorder{
		metrics: make(map[string]*metric),
		traces:  traceRing{cap: traceCap},
	}
}

// DefaultTraceCap is the completed-trace ring size used when New is given a
// non-positive capacity.
const DefaultTraceCap = 256

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindHistogram
	kindGauge
)

// metric is one registered family: a name, help text, label schema, and the
// live series keyed by joined label values.
type metric struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
	sorder []string

	gauge func() []Sample // kindGauge only
}

// series is the leaf storage for one label combination.
type series struct {
	labels []string

	// Counter state.
	count atomic.Uint64

	// Histogram state (len(buckets) finite buckets + implicit +Inf).
	bucketCounts []atomic.Uint64
	infCount     atomic.Uint64
	sumBits      atomic.Uint64 // float64 bits, CAS-accumulated
}

// register returns the family for name, creating it on first use. Families
// are identified by name alone; re-registering with a different shape keeps
// the first registration (instrumentation sites agree by construction).
func (r *Recorder) register(name, help string, kind metricKind, labelNames []string, buckets []float64) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := &metric{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: labelNames,
		buckets:    buckets,
		series:     make(map[string]*series),
	}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// with resolves (creating if needed) the series for the given label values.
func (m *metric) with(values []string) *series {
	key := strings.Join(values, "\x00")
	m.mu.RLock()
	s := m.series[key]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s = m.series[key]; s != nil {
		return s
	}
	s = &series{labels: append([]string(nil), values...)}
	if m.kind == kindHistogram {
		s.bucketCounts = make([]atomic.Uint64, len(m.buckets))
	}
	m.series[key] = s
	m.sorder = append(m.sorder, key)
	return s
}

// CounterVec is a family of monotonically increasing counters partitioned
// by label values.
type CounterVec struct{ m *metric }

// Counter registers (or fetches) a counter family. Label values are
// supplied per-series via With.
func (r *Recorder) Counter(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{m: r.register(name, help, kindCounter, labelNames, nil)}
}

// With resolves the counter for one label-value combination. Handles are
// cheap to cache and safe for concurrent use.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return (*Counter)(cv.m.with(values))
}

// Counter is a single monotonically increasing series.
type Counter series

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.count.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.count.Load()
}

// Sample is one gauge observation: label values matching the registered
// label names, and the instantaneous value.
type Sample struct {
	Labels []string
	Value  float64
}

// GaugeFunc registers a callback evaluated at exposition time; it returns
// the family's current samples. Use for values the owning subsystem already
// tracks (queue depth, cache occupancy, journal size).
func (r *Recorder) GaugeFunc(name, help string, labelNames []string, fn func() []Sample) {
	if r == nil || fn == nil {
		return
	}
	m := r.register(name, help, kindGauge, labelNames, nil)
	m.mu.Lock()
	m.gauge = fn
	m.mu.Unlock()
}

// snapshotOrder returns metric names sorted for deterministic exposition.
func (r *Recorder) snapshotOrder() []*metric {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	out := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		out = append(out, r.metrics[name])
	}
	r.mu.Unlock()
	return out
}
