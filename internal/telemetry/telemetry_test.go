package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterVec(t *testing.T) {
	r := New(0)
	cv := r.Counter("test_total", "help", "tenant", "reason")
	cv.With("t1", "quota").Add(3)
	cv.With("t1", "quota").Inc()
	cv.With("t2", "queue").Inc()
	if got := cv.With("t1", "quota").Value(); got != 4 {
		t.Fatalf("t1/quota = %d, want 4", got)
	}
	if got := cv.With("t2", "queue").Value(); got != 1 {
		t.Fatalf("t2/queue = %d, want 1", got)
	}
	if got := cv.With("t3", "other").Value(); got != 0 {
		t.Fatalf("untouched series = %d, want 0", got)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) semantics: an
// observation exactly on a bound lands in that bucket, just above it lands
// in the next, and beyond the last finite bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New(0)
	hv := r.Histogram("test_seconds", "help", []float64{0.001, 0.01, 0.1})
	h := hv.With()

	h.Observe(0.001)  // == first bound: bucket 0
	h.Observe(0.0011) // just above: bucket 1
	h.Observe(0.01)   // == second bound: bucket 1
	h.Observe(0.1)    // == last bound: bucket 2
	h.Observe(0.5)    // beyond: +Inf
	h.Observe(0)      // below everything: bucket 0

	want := []uint64{2, 2, 1}
	for i, w := range want {
		if got := h.s.bucketCounts[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if got := h.s.infCount.Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	wantSum := 0.001 + 0.0011 + 0.01 + 0.1 + 0.5
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramCumulativeExposition checks that the rendered _bucket series
// are cumulative and end with a +Inf bucket equal to _count.
func TestHistogramCumulativeExposition(t *testing.T) {
	r := New(0)
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1}).With()
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP lat_seconds latency\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := New(0)
	h := r.Histogram("q_seconds", "help", []float64{1, 2, 4}).With()
	// 10 observations in (1, 2].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	// Median rank 5 of 10 falls halfway through the (1,2] bucket.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	// All mass in one bucket: p99 interpolates near the top of it.
	if got := h.Quantile(0.99); got < 1.8 || got > 2.0 {
		t.Errorf("p99 = %v, want in (1.8, 2.0]", got)
	}
	// Overflow clamps to the last finite bound.
	h.Observe(100)
	h.Observe(100)
	h.Observe(100)
	h.Observe(100)
	h.Observe(100)
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("p99 with +Inf mass = %v, want clamp to 4", got)
	}
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := New(0)
	val := 7.5
	r.GaugeFunc("occupancy", "cache occupancy", []string{"kind"}, func() []Sample {
		return []Sample{{Labels: []string{"lru"}, Value: val}}
	})
	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `occupancy{kind="lru"} 7.5`) {
		t.Errorf("gauge exposition missing series:\n%s", b.String())
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := New(0)
	cv := r.Counter("zz_total", "z", "k")
	cv.With("b").Inc()
	cv.With("a").Inc()
	r.Counter("aa_total", "a").With().Inc()
	var b1, b2 strings.Builder
	if err := r.WriteMetrics(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("exposition not deterministic across calls")
	}
	if strings.Index(b1.String(), "aa_total") > strings.Index(b1.String(), "zz_total") {
		t.Error("families not sorted by name")
	}
	if strings.Index(b1.String(), `zz_total{k="a"}`) > strings.Index(b1.String(), `zz_total{k="b"}`) {
		t.Error("series not sorted within family")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New(0)
	r.Counter("esc_total", "h", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

// TestNilSafety verifies the whole API is a no-op on nil receivers, which
// is what lets instrumented code skip "is telemetry enabled" branches.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	cv := r.Counter("x_total", "h")
	cv.With().Inc()
	cv.With().Add(5)
	if cv.With().Value() != 0 {
		t.Error("nil counter has a value")
	}
	hv := r.Histogram("y_seconds", "h", nil)
	hv.With().Observe(1)
	if hv.Quantile(0.5) != 0 || hv.Count() != 0 || hv.Sum() != 0 {
		t.Error("nil histogram not zero")
	}
	r.GaugeFunc("g", "h", nil, func() []Sample { return nil })
	if err := r.WriteMetrics(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	tr := r.StartTrace("label", "tenant")
	if tr.ID() != "" {
		t.Error("nil trace has an ID")
	}
	sp := tr.StartSpan("solve")
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 3)
	child := sp.StartSpan("inner")
	child.End()
	sp.End()
	tr.Finish()
	if got := r.Traces(10); got != nil {
		t.Errorf("nil recorder traces = %v", got)
	}
	if _, ok := r.Trace("abc"); ok {
		t.Error("nil recorder found a trace")
	}
}

func TestTraceSpanTree(t *testing.T) {
	r := New(4)
	tr := r.StartTrace("plan-a", "t1")
	if tr.ID() == "" {
		t.Fatal("empty trace ID")
	}
	q := tr.StartSpan("queue")
	q.End()
	sv := tr.StartSpan("solve:native")
	sv.SetAttrInt("solved", 12)
	inner := sv.StartSpan("cache")
	inner.SetAttr("hit", "true")
	inner.End()
	sv.End()
	open := tr.StartSpan("dangling") // left open: Finish must close it
	_ = open
	tr.Finish()

	snap, ok := r.Trace(tr.ID())
	if !ok {
		t.Fatal("finished trace not in ring")
	}
	if snap.Label != "plan-a" || snap.Tenant != "t1" {
		t.Errorf("label/tenant = %q/%q", snap.Label, snap.Tenant)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("root spans = %d, want 3", len(snap.Spans))
	}
	solve := snap.Spans[1]
	if solve.Name != "solve:native" || solve.Attrs["solved"] != "12" {
		t.Errorf("solve span = %+v", solve)
	}
	if len(solve.Children) != 1 || solve.Children[0].Attrs["hit"] != "true" {
		t.Errorf("solve children = %+v", solve.Children)
	}
	if snap.Spans[2].DurationNS < 0 {
		t.Errorf("dangling span duration = %d", snap.Spans[2].DurationNS)
	}

	var b strings.Builder
	snap.WriteTree(&b)
	out := b.String()
	for _, want := range []string{"trace " + tr.ID(), "label=plan-a", "solve:native", "solved=12", "    cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTree missing %q:\n%s", want, out)
		}
	}
}

// TestTraceRingBound fills the ring past capacity and checks eviction
// order (oldest first) and newest-first listing.
func TestTraceRingBound(t *testing.T) {
	r := New(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := r.StartTrace("t", "")
		ids = append(ids, tr.ID())
		tr.Finish()
	}
	got := r.Traces(0)
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if got[i].ID != want {
			t.Errorf("traces[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
	if _, ok := r.Trace(ids[0]); ok {
		t.Error("evicted trace still findable")
	}
	if lim := r.Traces(2); len(lim) != 2 || lim[0].ID != ids[4] {
		t.Errorf("limited listing = %+v", lim)
	}
}

// TestConcurrentRecorder hammers counters, histograms, gauges, traces, and
// exposition from many goroutines at once; run under -race this is the
// recorder's concurrency contract.
func TestConcurrentRecorder(t *testing.T) {
	r := New(8)
	cv := r.Counter("c_total", "h", "worker")
	hv := r.Histogram("h_seconds", "h", nil, "backend")
	r.GaugeFunc("g", "h", nil, func() []Sample { return []Sample{{Value: 1}} })

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			c := cv.With(name)
			h := hv.With(name)
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 0.001)
				tr := r.StartTrace("load", name)
				s := tr.StartSpan("solve:native")
				s.SetAttrInt("i", int64(i))
				s.StartSpan("cache").End()
				s.End()
				tr.Finish()
				if i%50 == 0 {
					_ = r.WriteMetrics(&strings.Builder{})
					_ = r.Traces(4)
					_, _ = r.Trace(tr.ID())
					_ = hv.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for w := 0; w < workers; w++ {
		total += cv.With(string(rune('a' + w))).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if got := hv.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := len(r.Traces(0)); got != 8 {
		t.Errorf("ring size = %d, want cap 8", got)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
