package telemetry

import "context"

// spanKey is the context key under which an active span travels.
type spanKey struct{}

// WithSpan returns a context carrying the span, so instrumentation deep in
// the stack (solver backends, the rpc leg of the distributed fabric) can
// attach child spans to the caller's trace without threading a *Span through
// every interface. A nil span returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span the context carries, or nil. The nil
// *Span is a valid no-op receiver, so callers use the result unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
