package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders every registered family in Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers, one line
// per series, histograms as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Families and series are emitted in sorted order so
// output is deterministic and diff-friendly.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.snapshotOrder() {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) write(w io.Writer) error {
	typ := "counter"
	switch m.kind {
	case kindHistogram:
		typ = "histogram"
	case kindGauge:
		typ = "gauge"
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, typ); err != nil {
		return err
	}

	if m.kind == kindGauge {
		m.mu.RLock()
		fn := m.gauge
		m.mu.RUnlock()
		if fn == nil {
			return nil
		}
		for _, s := range fn() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, renderLabels(m.labelNames, s.Labels, "", 0), formatFloat(s.Value)); err != nil {
				return err
			}
		}
		return nil
	}

	m.mu.RLock()
	keys := make([]string, 0, len(m.series))
	for k := range m.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, 0, len(keys))
	for _, k := range keys {
		sers = append(sers, m.series[k])
	}
	m.mu.RUnlock()

	for _, s := range sers {
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, renderLabels(m.labelNames, s.labels, "", 0), s.count.Load()); err != nil {
				return err
			}
		case kindHistogram:
			var cum uint64
			for i, bound := range m.buckets {
				cum += s.bucketCounts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(m.labelNames, s.labels, "le", bound), cum); err != nil {
					return err
				}
			}
			cum += s.infCount.Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(m.labelNames, s.labels, "le", math.Inf(1)), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, renderLabels(m.labelNames, s.labels, "", 0), formatFloat(math.Float64frombits(s.sumBits.Load()))); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, renderLabels(m.labelNames, s.labels, "", 0), s.count.Load()); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels formats the label set `{a="x",b="y"}` (empty string when no
// labels), appending an `le` label when leName is non-empty.
func renderLabels(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatLe(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
