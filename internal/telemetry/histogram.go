package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// TimeBuckets is the default latency bucket ladder, in seconds: roughly
// exponential from 100µs to 60s. It brackets everything the engine times —
// sub-millisecond cache probes, millisecond solves, and multi-second
// portfolio escalations — with enough resolution for p50/p99 estimates.
var TimeBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// CountBuckets is the default ladder for count-valued observations
// (conflicts per check, clauses per check): powers of four from 1 to ~4M.
// Most Lightyear checks decide with zero conflicts, so the ladder spends
// its resolution on the heavy tail where the interesting solves live.
var CountBuckets = []float64{
	1, 4, 16, 64, 256,
	1024, 4096, 16384, 65536,
	262144, 1048576, 4194304,
}

// ExponentialBuckets returns n bucket upper bounds starting at start and
// multiplying by factor, for callers that need a custom ladder.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	for v := start; len(out) < n; v *= factor {
		out = append(out, v)
	}
	return out
}

// HistogramVec is a family of fixed-bucket histograms partitioned by label
// values. Observations are lock-free: one atomic add on the bucket counter,
// one on the observation count, and a CAS loop on the float64-bits sum.
type HistogramVec struct{ m *metric }

// Histogram registers (or fetches) a histogram family with the given
// bucket upper bounds (nil selects TimeBuckets). Bounds must be sorted
// ascending; the +Inf bucket is implicit.
func (r *Recorder) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = TimeBuckets
	}
	return &HistogramVec{m: r.register(name, help, kindHistogram, labelNames, buckets)}
}

// With resolves the histogram for one label-value combination. Handles are
// cheap to cache and safe for concurrent use.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return &Histogram{s: hv.m.with(values), buckets: hv.m.buckets}
}

// Histogram is a handle on a single fixed-bucket series. Bucket semantics
// follow Prometheus: an observation v lands in the first bucket with
// v <= upper bound, else in +Inf.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.buckets, v) // first bound >= v, i.e. v <= bound
	if idx < len(h.s.bucketCounts) {
		h.s.bucketCounts[idx].Add(1)
	} else {
		h.s.infCount.Add(1)
	}
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.s.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.s.sumBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the containing bucket, the same estimate Prometheus's
// histogram_quantile computes. Observations beyond the last finite bound
// clamp to that bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.s.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i := range h.s.bucketCounts {
		n := h.s.bucketCounts[i].Load()
		if n > 0 && float64(cum+n) >= rank {
			upper := h.buckets[i]
			within := (rank - float64(cum)) / float64(n)
			if within < 0 {
				within = 0
			}
			return lower + (upper-lower)*within
		}
		cum += n
		lower = h.buckets[i]
	}
	// Rank falls in +Inf: clamp to the last finite bound.
	return h.buckets[len(h.buckets)-1]
}

// Quantile aggregates every series in the family into one quantile
// estimate — the view lybench reports when a histogram is partitioned by
// backend but the experiment wants one p99.
func (hv *HistogramVec) Quantile(q float64) float64 {
	return hv.merged().Quantile(q)
}

// Count returns the total observations across all series in the family.
func (hv *HistogramVec) Count() uint64 {
	if hv == nil {
		return 0
	}
	var total uint64
	hv.m.mu.RLock()
	for _, s := range hv.m.series {
		total += s.count.Load()
	}
	hv.m.mu.RUnlock()
	return total
}

// Sum returns the total of observed values across all series.
func (hv *HistogramVec) Sum() float64 {
	if hv == nil {
		return 0
	}
	var total float64
	hv.m.mu.RLock()
	for _, s := range hv.m.series {
		total += math.Float64frombits(s.sumBits.Load())
	}
	hv.m.mu.RUnlock()
	return total
}

// merged folds all series into one snapshot histogram for aggregate
// quantiles. Returns nil (safe: every Histogram method tolerates a nil
// receiver) when the vec is nil.
func (hv *HistogramVec) merged() *Histogram {
	if hv == nil {
		return nil
	}
	s := &series{bucketCounts: make([]atomic.Uint64, len(hv.m.buckets))}
	hv.m.mu.RLock()
	for _, src := range hv.m.series {
		for i := range src.bucketCounts {
			s.bucketCounts[i].Add(src.bucketCounts[i].Load())
		}
		s.infCount.Add(src.infCount.Load())
		s.count.Add(src.count.Load())
	}
	hv.m.mu.RUnlock()
	return &Histogram{s: s, buckets: hv.m.buckets}
}
