package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the timing record for one workload's journey through the stack:
// a tree of named spans (compile, admit, queue, dispatch, solve:<backend>,
// cache, store) hung off a root. Traces are mutable until Finish, after
// which a snapshot lands in the Recorder's bounded ring.
//
// A nil *Trace (from a nil Recorder) is a valid no-op; so is every *Span it
// hands out — instrumented code never checks whether tracing is enabled.
type Trace struct {
	rec    *Recorder
	id     string
	label  string
	tenant string
	start  time.Time

	mu       sync.Mutex
	root     []*Span
	end      time.Time
	finished bool
}

// Span is one timed region inside a trace, with optional key=value
// attributes and child spans. End is idempotent; spans still open when the
// trace finishes inherit the trace's end time.
type Span struct {
	t        *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]string
	children []*Span
}

// idCounter backs trace IDs when crypto/rand fails (it effectively never
// does, but instrumentation must not).
var idCounter atomic.Uint64

// newTraceID returns a 16-hex-char random identifier.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// StartTrace opens a trace. label names the workload (a plan label or
// property name); tenant is the submitting tenant, if any.
func (r *Recorder) StartTrace(label, tenant string) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{
		rec:    r,
		id:     newTraceID(),
		label:  label,
		tenant: tenant,
		start:  time.Now(),
	}
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetLabel renames the trace. Hosts that open a trace before the
// workload's label exists (lyserve's compile span precedes compilation)
// set the real label once it is known.
func (t *Trace) SetLabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// StartSpan opens a root-level span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: time.Now()}
	t.mu.Lock()
	if !t.finished {
		t.root = append(t.root, s)
	}
	t.mu.Unlock()
	return s
}

// StartSpan opens a child span.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, start: time.Now()}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// SetAttr attaches a key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.t.mu.Unlock()
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// End closes the span. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.t.mu.Unlock()
}

// Finish closes the trace (closing any still-open spans at the trace end
// time) and pushes its snapshot into the Recorder's ring. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.end = now
	snap := t.snapshotLocked()
	t.mu.Unlock()
	t.rec.traces.push(snap)
}

// Snapshot returns the trace's current state, closing nothing. For a
// finished trace this equals the ring entry.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Trace) snapshotLocked() TraceSnapshot {
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	snap := TraceSnapshot{
		ID:         t.id,
		Label:      t.label,
		Tenant:     t.tenant,
		Start:      t.start,
		DurationNS: end.Sub(t.start).Nanoseconds(),
	}
	for _, s := range t.root {
		snap.Spans = append(snap.Spans, s.snapshotLocked(t.start, end))
	}
	return snap
}

func (s *Span) snapshotLocked(traceStart, traceEnd time.Time) SpanSnapshot {
	end := s.end
	if end.IsZero() {
		end = traceEnd
		if end.Before(s.start) {
			end = s.start
		}
	}
	snap := SpanSnapshot{
		Name:       s.name,
		StartNS:    s.start.Sub(traceStart).Nanoseconds(),
		DurationNS: end.Sub(s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		snap.Children = append(snap.Children, c.snapshotLocked(traceStart, traceEnd))
	}
	return snap
}

// TraceSnapshot is an immutable completed (or in-progress) trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Label      string         `json:"label,omitempty"`
	Tenant     string         `json:"tenant,omitempty"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Spans      []SpanSnapshot `json:"spans,omitempty"`
}

// SpanSnapshot is one span in a TraceSnapshot; StartNS is the offset from
// the trace start.
type SpanSnapshot struct {
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanSnapshot    `json:"children,omitempty"`
}

// WriteTree renders the span tree as indented text — the lightyear -trace
// output:
//
//	trace 1f0c… label=wan-policy tenant=t1 total=12.3ms
//	  compile 1.1ms
//	  admit 0.0ms
//	  queue 2.0ms
//	  solve:portfolio 9.0ms solved=12 raced=4
func (ts TraceSnapshot) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "trace %s", ts.ID)
	if ts.Label != "" {
		fmt.Fprintf(w, " label=%s", ts.Label)
	}
	if ts.Tenant != "" {
		fmt.Fprintf(w, " tenant=%s", ts.Tenant)
	}
	fmt.Fprintf(w, " total=%s\n", time.Duration(ts.DurationNS).Round(time.Microsecond))
	for _, s := range ts.Spans {
		s.writeTree(w, 1)
	}
}

func (ss SpanSnapshot) writeTree(w io.Writer, depth int) {
	fmt.Fprintf(w, "%s%s %s", strings.Repeat("  ", depth), ss.Name,
		time.Duration(ss.DurationNS).Round(time.Microsecond))
	if len(ss.Attrs) > 0 {
		keys := make([]string, 0, len(ss.Attrs))
		for k := range ss.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, ss.Attrs[k])
		}
	}
	fmt.Fprintln(w)
	for _, c := range ss.Children {
		c.writeTree(w, depth+1)
	}
}

// traceRing is the bounded buffer of completed traces, newest last.
type traceRing struct {
	mu   sync.Mutex
	cap  int
	buf  []TraceSnapshot
	next int // insertion index once the ring is full
	full bool
}

func (tr *traceRing) push(snap TraceSnapshot) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.cap < 1 {
		return
	}
	if !tr.full {
		tr.buf = append(tr.buf, snap)
		if len(tr.buf) == tr.cap {
			tr.full = true
		}
		return
	}
	tr.buf[tr.next] = snap
	tr.next = (tr.next + 1) % tr.cap
}

// list returns up to limit snapshots, newest first (limit < 1 = all).
func (tr *traceRing) list(limit int) []TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := len(tr.buf)
	out := make([]TraceSnapshot, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest entry.
		idx := (tr.next + n - 1 - i) % n
		if !tr.full {
			idx = n - 1 - i
		}
		out = append(out, tr.buf[idx])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

func (tr *traceRing) find(id string) (TraceSnapshot, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.buf {
		if tr.buf[i].ID == id {
			return tr.buf[i], true
		}
	}
	return TraceSnapshot{}, false
}

// Traces returns up to limit completed traces, newest first (limit < 1
// returns all retained).
func (r *Recorder) Traces(limit int) []TraceSnapshot {
	if r == nil {
		return nil
	}
	return r.traces.list(limit)
}

// Trace returns the completed trace with the given ID, if still retained.
func (r *Recorder) Trace(id string) (TraceSnapshot, bool) {
	if r == nil {
		return TraceSnapshot{}, false
	}
	return r.traces.find(id)
}

// TraceStats reports the trace ring's occupancy: how many completed traces
// are retained and the ring's capacity. Health/status surfaces use it to
// show how far back trace history reaches.
func (r *Recorder) TraceStats() (retained, capacity int) {
	if r == nil {
		return 0, 0
	}
	tr := &r.traces
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.buf), tr.cap
}
