// Package delta implements config-diff-driven incremental re-verification —
// the paper's §2 argument that modular decomposition makes re-verification
// after a configuration change proportional to the change, not the network,
// turned into a measurable artifact.
//
// A Verifier pins a baseline network state for a registry suite
// (netgen.Lookup) and re-verifies successive states against it:
//
//	v := delta.NewVerifier(eng, suite, params)
//	base, _ := v.Baseline(oldNet) // full cold run, results retained by key
//	res, _ := v.Update(newNet)    // re-solves only the dirty subset
//
// Update computes the per-router/per-edge semantic diff between the pinned
// state and the new one (topology.DiffNetworks), re-enumerates the suite's
// local checks on the new network, and splits them by semantic check key
// (core.Check.Key): a check whose key already has a retained result is
// clean — equal keys decide the same formula — and is served without
// touching the engine; everything else is the dirty subset, submitted to
// the shared engine as one job per problem so cross-problem dedup still
// applies. The returned Result reports {changed routers, dirty checks,
// reused results, solved} alongside the per-problem reports, and the
// structural diff is cross-checked against the dirty set: every dirty
// cacheable check must sit at a location the diff touches.
//
// The Verifier's retained results live in process memory; pairing the
// engine with an internal/store persistent cache (engine.Options.Cache)
// additionally makes the dirty subset's solves survive restarts.
package delta

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/store"
	"lightyear/internal/topology"
)

// Store must keep satisfying the engine's cache seam: the CLI and lyserve
// plug it in behind the same engines delta runs on.
var _ engine.ResultCache = (*store.Store)(nil)

// ProblemOutcome is the per-problem record of one delta run.
type ProblemOutcome struct {
	Name       string `json:"name"`
	Skipped    bool   `json:"skipped,omitempty"`
	Failed     bool   `json:"failed,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
	Checks     int    `json:"checks"`
	Dirty      int    `json:"dirty"`  // checks submitted to the engine
	Reused     int    `json:"reused"` // results served from the pinned session
	OK         bool   `json:"ok"`

	// Report is the assembled verification report (nil when skipped or
	// failed); encode with engine.EncodeReport for the wire.
	Report *core.Report `json:"-"`
}

// Result summarizes one Baseline or Update run.
type Result struct {
	Suite       string `json:"suite"`
	Baseline    bool   `json:"baseline"`
	Fingerprint string `json:"fingerprint"` // network state verified

	// Diff is the structural change from the previously pinned state
	// (nil on baseline runs).
	Diff           *topology.NetworkDiff `json:"diff,omitempty"`
	ChangedRouters []topology.NodeID     `json:"changed_routers,omitempty"`

	TotalChecks   int  `json:"total_checks"`
	DirtyChecks   int  `json:"dirty_checks"`       // submitted to the engine
	ReusedResults int  `json:"reused_results"`     // served from the session's retained results
	Solved        int  `json:"solved"`             // actually executed (after engine cache/dedup)
	Failures      int  `json:"failures,omitempty"` // proven violations (+ unsubmittable problems)
	Unknown       int  `json:"unknown,omitempty"`  // undecided checks (budget exhausted)
	OK            bool `json:"ok"`

	// Unchanged marks the semantic no-op fast path: the update's network
	// fingerprints identically to the pinned state (e.g. a comment-only
	// config edit), so the previous run's verdicts were republished
	// without regenerating or re-solving a single check.
	Unchanged bool `json:"unchanged,omitempty"`

	ElapsedNanos int64            `json:"elapsed_ns"`
	Problems     []ProblemOutcome `json:"problems"`
}

// Elapsed returns the run's wall-clock duration.
func (r *Result) Elapsed() time.Duration { return time.Duration(r.ElapsedNanos) }

// String renders the one-line incremental summary.
func (r *Result) String() string {
	mode := "update"
	if r.Baseline {
		mode = "baseline"
	}
	return fmt.Sprintf("delta %s: %d routers changed, %d/%d checks dirty, %d reused, %d solved, ok=%v in %v",
		mode, len(r.ChangedRouters), r.DirtyChecks, r.TotalChecks, r.ReusedResults, r.Solved, r.OK,
		r.Elapsed().Round(time.Millisecond))
}

// ProblemSource enumerates the verification problems implied by a network
// state — the seam that lets both registry suites and compiled plans
// (internal/plan) drive incremental re-verification. Problems must be
// re-enumerable on every state the Verifier is asked to pin: the Verifier
// calls Problems once per Baseline/Update with the new network.
type ProblemSource interface {
	// Label names the source in results (a suite name, or a plan's
	// property list).
	Label() string
	// Problems builds the source's problems over n.
	Problems(n *topology.Network) []netgen.Problem
}

// suiteSource adapts a registry suite to the ProblemSource seam.
type suiteSource struct {
	suite  netgen.Suite
	params netgen.SuiteParams
}

func (s suiteSource) Label() string { return s.suite.Name }
func (s suiteSource) Problems(n *topology.Network) []netgen.Problem {
	return s.suite.Build(n, s.params)
}

// SuiteSource wraps a registry suite as a ProblemSource.
func SuiteSource(suite netgen.Suite, params netgen.SuiteParams) ProblemSource {
	return suiteSource{suite: suite, params: params}
}

// Verifier is a long-lived incremental verification session: a problem
// source, an engine, the currently pinned network state, and the check
// results retained from the last run, keyed by semantic check key. Runs are
// serialized; the Verifier is safe for concurrent use, and the state
// accessors (Fingerprint, ResultCount) never block behind a run in
// progress — they observe the last completed run.
type Verifier struct {
	eng    *engine.Engine
	source ProblemSource
	// workload is the engine.Workload template (tenant, priority, solver
	// backend) every dirty-subset submission inherits; its payload fields
	// are filled per problem.
	workload engine.Workload

	runMu sync.Mutex // serializes Baseline/Update
	// resv, when set, is an externally held admission reservation every run
	// executes under instead of reserving its own dirty cost — the seam
	// internal/migrate uses to admit a whole N-step plan as one unit.
	resv *engine.Reservation

	mu          sync.Mutex // guards the pinned state below
	network     *topology.Network
	fingerprint string
	results     map[string]core.CheckResult
	last        *Result // last completed run, for the unchanged fast path
}

// NewVerifier creates a session for the given suite on the shared engine.
// Call Baseline before Update.
func NewVerifier(eng *engine.Engine, suite netgen.Suite, params netgen.SuiteParams) *Verifier {
	return NewVerifierFor(eng, SuiteSource(suite, params))
}

// NewVerifierFor creates a session for an arbitrary problem source — the
// entry point internal/plan uses so incremental runs inherit a plan's
// property list and scoping. Call Baseline before Update.
func NewVerifierFor(eng *engine.Engine, source ProblemSource) *Verifier {
	return &Verifier{eng: eng, source: source}
}

// SetWorkload sets the engine.Workload template — the tenant the session's
// runs are admitted under, their priority, and per-job engine overrides
// (e.g. the solver backend a plan request selected) — applied to every
// dirty-subset submission this verifier makes; payload fields (Kind,
// Safety, Liveness, Checks, Property) and any Reservation are cleared, the
// verifier supplies its own per problem. Call before the first Baseline.
// lyserve sessions set it from the pinned plan, so every incremental
// update inherits the session's tenant.
func (v *Verifier) SetWorkload(w engine.Workload) {
	w.Kind, w.Safety, w.Liveness, w.Checks = "", nil, nil, nil
	w.Property, w.Reservation = core.Property{}, nil
	v.workload = w
}

// SetReservation supplies an externally held admission reservation. While
// set, Baseline and Update submit their dirty subsets under it instead of
// reserving their own cost per run — the caller has already admitted the
// whole workload (e.g. a migration plan reserves its full baseline cost
// once, since its sequential steps never hold more than that in flight) and
// remains responsible for releasing it. Pass nil to restore per-run
// reservations. Must not be called while a run is in progress.
func (v *Verifier) SetReservation(resv *engine.Reservation) {
	v.runMu.Lock()
	v.resv = resv
	v.runMu.Unlock()
}

// Tenant returns the tenant the session's runs are admitted under.
func (v *Verifier) Tenant() string { return engine.NormalizeTenant(v.workload.Tenant) }

// Fingerprint returns the fingerprint of the pinned network state ("" before
// Baseline).
func (v *Verifier) Fingerprint() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fingerprint
}

// ResultCount returns the number of retained check results.
func (v *Verifier) ResultCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.results)
}

// PinnedNetwork returns the currently pinned network state (nil before
// Baseline) — the state a plan's "baseline" network reference resolves to.
func (v *Verifier) PinnedNetwork() *topology.Network {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.network
}

// Baseline pins n as the session's network state and verifies it in full,
// retaining every cacheable result for later Updates.
func (v *Verifier) Baseline(n *topology.Network) (*Result, error) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	return v.run(nil, nil, n, true)
}

// Update verifies n incrementally against the pinned state: only checks
// whose semantic key has no retained result are re-solved. On return n is
// the pinned state. Update before Baseline is an error.
func (v *Verifier) Update(n *topology.Network) (*Result, error) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.mu.Lock()
	prev, prevResults := v.network, v.results
	v.mu.Unlock()
	if prev == nil {
		return nil, fmt.Errorf("delta: Update before Baseline")
	}
	return v.run(prev, prevResults, n, false)
}

// problemRun carries one problem through the prepare → submit → wait
// pipeline.
type problemRun struct {
	outcome ProblemOutcome
	prop    core.Property
	checks  []core.Check
	dirty   []core.Check
	reused  []core.CheckResult
	job     *engine.Job
	start   time.Time
}

// run is the shared Baseline/Update body; v.runMu is held, so prev and
// prevResults are stable. v.mu is only taken briefly at the end to publish
// the new pinned state, keeping the state accessors responsive while the
// run waits on the engine. The whole run is admitted as one unit: the sum
// of all problems' dirty checks is reserved against the session's tenant
// before anything is submitted, so an over-quota incremental run fails
// with engine.ErrAdmission instead of half-running.
func (v *Verifier) run(prev *topology.Network, prevResults map[string]core.CheckResult,
	n *topology.Network, baseline bool) (*Result, error) {
	start := time.Now()
	res := &Result{Suite: v.source.Label(), Baseline: baseline, Fingerprint: n.Fingerprint(), OK: true}
	if !baseline {
		res.Diff = topology.DiffNetworks(prev, n)
		res.ChangedRouters = changedRouters(res.Diff, prev, n)
		if r, ok := v.unchangedResult(res, prev); ok {
			r.ElapsedNanos = time.Since(start).Nanoseconds()
			return r, nil
		}
	}

	problems := v.source.Problems(n)
	runs := make([]*problemRun, len(problems))
	opts := v.eng.CheckOptions()

	// Prepare every problem: generate its checks and split them into the
	// reused and dirty subsets. The summed dirty cost is this run's
	// admission unit.
	dirtyCost := 0
	for i, p := range problems {
		pr := &problemRun{outcome: ProblemOutcome{Name: p.Name}, start: time.Now()}
		runs[i] = pr
		var err error
		switch {
		case p.Safety != nil:
			pr.prop = p.Safety.Property
			pr.checks = p.Safety.Checks(opts)
		case p.Liveness != nil:
			pr.prop = p.Liveness.Property
			pr.checks, err = p.Liveness.Checks(opts)
		default:
			err = fmt.Errorf("suite produced an empty problem")
		}
		if err != nil {
			if p.Optional {
				pr.outcome.Skipped = true
			} else {
				pr.outcome.Failed = true
				res.OK = false
				res.Failures++
			}
			pr.outcome.SkipReason = err.Error()
			continue
		}

		for _, c := range pr.checks {
			if r, ok := prevResults[c.Key()]; ok && c.Key() != "" {
				r.Kind, r.Loc, r.Desc = c.Kind, c.Loc, c.Desc
				pr.reused = append(pr.reused, r)
				continue
			}
			pr.dirty = append(pr.dirty, c)
		}
		pr.outcome.Checks = len(pr.checks)
		pr.outcome.Dirty = len(pr.dirty)
		pr.outcome.Reused = len(pr.reused)
		res.TotalChecks += len(pr.checks)
		res.DirtyChecks += len(pr.dirty)
		res.ReusedResults += len(pr.reused)
		dirtyCost += len(pr.dirty)
	}

	resv := v.resv
	if resv == nil {
		owned, err := v.eng.Reserve(v.workload.Tenant, dirtyCost)
		if err != nil {
			return nil, err
		}
		defer owned.Release()
		resv = owned
	}

	// Submit the dirty subset of every problem before waiting on any, so
	// the engine dedups identical dirty checks across the whole suite.
	for _, pr := range runs {
		if pr.outcome.Skipped || pr.outcome.Failed {
			continue
		}
		wl := v.workload
		wl.Kind = engine.KindChecks
		wl.Property = pr.prop
		wl.Checks = pr.dirty
		wl.Reservation = resv
		job, err := v.eng.Submit(context.Background(), wl)
		if err != nil {
			pr.outcome.Failed = true
			pr.outcome.SkipReason = err.Error()
			res.OK = false
			res.Failures++
			continue
		}
		pr.job = job
	}

	// Collect, merge reused + fresh, and re-index the retained results
	// from scratch so entries for removed locations do not accumulate
	// (the same re-index discipline as core.IncrementalVerifier).
	retained := make(map[string]core.CheckResult)
	for _, pr := range runs {
		if pr.job == nil {
			res.Problems = append(res.Problems, pr.outcome)
			continue
		}
		fresh := pr.job.Wait()
		st := pr.job.Stats()
		res.Solved += st.Checks - st.CacheHits - st.DedupHits
		merged := append(append([]core.CheckResult(nil), pr.reused...), fresh.Results...)
		pr.outcome.Report = core.NewReport(pr.prop, merged, time.Since(pr.start))
		pr.outcome.OK = pr.outcome.Report.OK()
		res.Failures += len(pr.outcome.Report.HardFailures())
		res.Unknown += len(pr.outcome.Report.Unknowns())
		if !pr.outcome.OK {
			res.OK = false
		}
		byIdentity := make(map[string]core.CheckResult, len(merged))
		for _, r := range pr.outcome.Report.Results {
			byIdentity[core.CheckIdentity(r.Kind, r.Loc, r.Desc)] = r
		}
		for _, c := range pr.checks {
			if c.Key() == "" {
				continue
			}
			// Unknown is not a verdict: retaining it would freeze
			// "insufficient budget" as the key's answer across updates.
			if r, ok := byIdentity[core.CheckIdentity(c.Kind, c.Loc, c.Desc)]; ok && r.Status != core.StatusUnknown {
				retained[c.Key()] = r
			}
		}
		res.Problems = append(res.Problems, pr.outcome)
	}

	v.mu.Lock()
	v.results = retained
	v.network = n
	v.fingerprint = res.Fingerprint
	v.last = res
	v.mu.Unlock()
	res.ElapsedNanos = time.Since(start).Nanoseconds()
	return res, nil
}

// unchangedResult implements the semantic no-op fast path for Update: when
// the new network fingerprints identically to the pinned state — a
// comment-only or whitespace-only config edit parses to the very same
// network — the previous run's verdicts still hold verbatim, so they are
// republished without regenerating checks, reserving quota, or touching
// the engine. res must already carry the new fingerprint and (empty) diff.
// The path is skipped while the last run has undecided checks: Unknown is
// not a verdict, and an update is the caller's chance to re-solve it.
func (v *Verifier) unchangedResult(res *Result, prev *topology.Network) (*Result, bool) {
	if res.Fingerprint != prev.Fingerprint() || !res.Diff.Empty() {
		return nil, false
	}
	v.mu.Lock()
	last := v.last
	v.mu.Unlock()
	if last == nil || last.Unknown > 0 {
		return nil, false
	}
	// A no-op update is still a run charged to the session's tenant: the
	// zero-cost reservation keeps per-tenant admission accounting (and
	// quota rejections) identical to the slow path's empty dirty set. On
	// admission error, fall through — the slow path reserves the same cost
	// and surfaces the same error. Under an external reservation the whole
	// workload is already admitted, so there is nothing to charge.
	if v.resv == nil {
		resv, err := v.eng.Reserve(v.workload.Tenant, 0)
		if err != nil {
			return nil, false
		}
		resv.Release()
	}
	res.Unchanged = true
	res.OK = last.OK
	res.Failures = last.Failures
	res.TotalChecks = last.TotalChecks
	res.ReusedResults = last.TotalChecks
	res.Problems = make([]ProblemOutcome, len(last.Problems))
	copy(res.Problems, last.Problems)
	for i := range res.Problems {
		res.Problems[i].Dirty = 0
		res.Problems[i].Reused = res.Problems[i].Checks
	}
	v.mu.Lock()
	v.last = res
	v.mu.Unlock()
	return res, true
}

// changedRouters filters the diff's touched nodes to configured routers of
// either network state — the paper's "when a node is updated" unit of
// change.
func changedRouters(d *topology.NetworkDiff, old, new *topology.Network) []topology.NodeID {
	var out []topology.NodeID
	for _, id := range d.TouchedNodes() {
		if isRouter(new, id) || isRouter(old, id) {
			out = append(out, id)
		}
	}
	return out
}

func isRouter(n *topology.Network, id topology.NodeID) bool {
	node := n.Node(id)
	return node != nil && !node.External
}

// DirtyConsistent cross-checks a diff against a dirty check subset using
// core.PartitionChecks: it returns an error if any cacheable dirty check
// sits at a location the diff does not touch. It is a sanity invariant for
// tests and experiments — semantic keys, not locations, decide dirtiness,
// and this verifies the two views agree.
func DirtyConsistent(d *topology.NetworkDiff, dirty []core.Check) error {
	offending, _ := core.PartitionChecks(dirty, func(loc core.Location) bool {
		if loc.IsEdge() {
			return !d.Touches(loc.Edge())
		}
		for _, id := range d.TouchedNodes() {
			if id == loc.Router() {
				return false
			}
		}
		// Router locations (the final implication check) have no edge to
		// attribute the change to; treat them as always consistent.
		return false
	})
	for _, c := range offending {
		if c.Key() != "" {
			return fmt.Errorf("delta: dirty check %q at untouched location %s", c.Desc, c.Loc)
		}
	}
	return nil
}
