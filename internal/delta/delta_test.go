package delta_test

import (
	"errors"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/store"
	"lightyear/internal/topology"
)

// testWANParams is a small-but-structured WAN: 3 backbone routers, one
// Internet edge router with two peers, two regions with one DC each.
var testWANParams = netgen.WANParams{
	Regions: 2, RoutersPerRegion: 1, EdgeRouters: 1, DCsPerRegion: 1, PeersPerEdge: 2,
}

func wanSuite(t *testing.T) netgen.Suite {
	t.Helper()
	suite, ok := netgen.Lookup("wan-peering")
	if !ok {
		t.Fatal("wan-peering suite not registered")
	}
	return suite
}

// TestIncrementalProofOnWAN is the end-to-end incremental claim: mutating
// one router's policy and re-verifying through internal/delta solves
// strictly fewer checks than the cold full run.
func TestIncrementalProofOnWAN(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifier(eng, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})

	base, err := v.Baseline(netgen.WAN(testWANParams, netgen.WANBugs{}))
	if err != nil {
		t.Fatal(err)
	}
	if !base.OK {
		t.Fatalf("baseline must verify: %s", base)
	}
	if base.ReusedResults != 0 || base.DirtyChecks != base.TotalChecks {
		t.Fatalf("baseline should be fully dirty: %s", base)
	}
	if base.Solved == 0 {
		t.Fatalf("baseline solved nothing: %s", base)
	}

	// One router's policy changes: tighten the peer imports at the edge
	// router.
	mutated := netgen.WAN(testWANParams, netgen.WANBugs{})
	if n := netgen.TightenPeerImports(mutated, netgen.EdgeRouter(0)); n == 0 {
		t.Fatal("mutation changed nothing")
	}
	res, err := v.Update(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("tightened network must still verify: %s", res)
	}
	if res.Solved >= base.Solved {
		t.Fatalf("incremental run must solve strictly fewer checks: baseline %d, update %d", base.Solved, res.Solved)
	}
	if res.ReusedResults == 0 || res.DirtyChecks == 0 || res.DirtyChecks >= res.TotalChecks {
		t.Fatalf("update should mix reuse and dirty work: %s", res)
	}
	if res.Diff == nil || res.Diff.Empty() {
		t.Fatalf("update must report the structural diff: %s", res)
	}
	if len(res.ChangedRouters) != 1 || res.ChangedRouters[0] != netgen.EdgeRouter(0) {
		t.Fatalf("changed routers = %v, want [%s]", res.ChangedRouters, netgen.EdgeRouter(0))
	}
}

func TestUpdateNoChangeReusesEverything(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifier(eng, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})
	if _, err := v.Baseline(netgen.WAN(testWANParams, netgen.WANBugs{})); err != nil {
		t.Fatal(err)
	}
	res, err := v.Update(netgen.WAN(testWANParams, netgen.WANBugs{}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diff.Empty() {
		t.Fatalf("regenerated network should diff empty, got %s", res.Diff)
	}
	if res.DirtyChecks != 0 || res.Solved != 0 || res.ReusedResults != res.TotalChecks {
		t.Fatalf("no-op update should reuse everything: %s", res)
	}
	if !res.OK {
		t.Fatalf("no-op update must verify: %s", res)
	}
}

func TestUpdateDetectsIntroducedBug(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifier(eng, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})
	if _, err := v.Baseline(netgen.WAN(testWANParams, netgen.WANBugs{})); err != nil {
		t.Fatal(err)
	}
	res, err := v.Update(netgen.WAN(testWANParams, netgen.WANBugs{MissingBogonFilter: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("dropping the bogon filter must fail incremental re-verification")
	}
	// The failure must localize to a problem at the mutated session.
	found := false
	for _, p := range res.Problems {
		if p.Report == nil || p.Report.OK() {
			continue
		}
		for _, f := range p.Report.Failures() {
			if f.Loc.String() == "peer-e0-0 -> edge-0" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("failure should localize at the session whose filter regressed")
	}
}

func TestUpdateBeforeBaselineFails(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifier(eng, wanSuite(t), netgen.SuiteParams{})
	if _, err := v.Update(netgen.WAN(testWANParams, netgen.WANBugs{})); err == nil {
		t.Fatal("Update before Baseline must error")
	}
}

// TestWarmStartAcrossRestart proves the store side of the tentpole: an
// engine backed by an internal/store cache serves a "restarted process"
// (fresh engine + fresh verifier on a reopened store) without re-solving.
func TestWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	net := func() *topology.Network { return netgen.WAN(testWANParams, netgen.WANBugs{}) }

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFingerprint(net().Fingerprint())
	eng := engine.New(engine.Options{Cache: st})
	v := delta.NewVerifier(eng, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})
	cold, err := v.Baseline(net())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Solved == 0 {
		t.Fatalf("cold run solved nothing: %s", cold)
	}
	eng.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: new store handle, new engine, new verifier (no retained
	// in-memory results), same network.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() == 0 {
		t.Fatal("journal empty after cold run")
	}
	eng2 := engine.New(engine.Options{Cache: st2})
	defer eng2.Close()
	v2 := delta.NewVerifier(eng2, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})
	warm, err := v2.Baseline(net())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.OK {
		t.Fatalf("warm run must verify: %s", warm)
	}
	if warm.Solved != 0 {
		t.Fatalf("warm run should be served entirely from the store, solved %d", warm.Solved)
	}
	if hits := eng2.Stats().CacheHits; hits == 0 {
		t.Fatal("warm run reported no cache hits")
	}
	if st2.Stats().Hits == 0 {
		t.Fatal("store reported no hits on the warm run")
	}
}

// TestDirtyConsistent exercises the core.PartitionChecks diff hook: the
// key-based dirty set must sit inside the diff's touched region.
func TestDirtyConsistent(t *testing.T) {
	old := netgen.Fig1(netgen.Fig1Options{})
	new := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	d := topology.DiffNetworks(old, new)
	if d.Empty() {
		t.Fatal("fig1 bug variant should differ")
	}

	oldKeys := make(map[string]bool)
	for _, c := range netgen.Fig1NoTransitProblem(old).Checks(core.Options{}) {
		oldKeys[c.Key()] = true
	}
	var dirty []core.Check
	for _, c := range netgen.Fig1NoTransitProblem(new).Checks(core.Options{}) {
		if !oldKeys[c.Key()] {
			dirty = append(dirty, c)
		}
	}
	if len(dirty) == 0 {
		t.Fatal("policy change should dirty at least one check")
	}
	if err := delta.DirtyConsistent(d, dirty); err != nil {
		t.Fatalf("key-dirty checks must sit at diff-touched locations: %v", err)
	}

	// Negative: claim a check at an untouched location is dirty.
	var clean []core.Check
	for _, c := range netgen.Fig1NoTransitProblem(new).Checks(core.Options{}) {
		if oldKeys[c.Key()] && c.Loc.IsEdge() && !d.Touches(c.Loc.Edge()) {
			clean = append(clean, c)
		}
	}
	if len(clean) == 0 {
		t.Fatal("expected clean checks at untouched locations")
	}
	if err := delta.DirtyConsistent(d, clean); err == nil {
		t.Fatal("DirtyConsistent should reject checks at untouched locations")
	}
}

// TestVerifierRunsUnderWorkloadTenant: the workload template's tenant is
// charged for every run, and an over-quota incremental run is rejected as
// one unit with the engine's typed admission error.
func TestVerifierRunsUnderWorkloadTenant(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifier(eng, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})
	v.SetWorkload(engine.Workload{Tenant: "netops"})
	if v.Tenant() != "netops" {
		t.Fatalf("Tenant() = %q", v.Tenant())
	}
	if _, err := v.Baseline(netgen.WAN(testWANParams, netgen.WANBugs{})); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Tenants["netops"].Admitted != 1 || st.Tenants["netops"].InFlightCost != 0 {
		t.Fatalf("tenant accounting after baseline: %+v", st.Tenants["netops"])
	}

	// A budget smaller than the cold baseline rejects the whole run.
	eng2 := engine.New(engine.Options{Admission: engine.Admission{PerTenantQuota: 1}})
	defer eng2.Close()
	v2 := delta.NewVerifier(eng2, wanSuite(t), netgen.SuiteParams{Regions: testWANParams.Regions})
	v2.SetWorkload(engine.Workload{Tenant: "netops"})
	_, err := v2.Baseline(netgen.WAN(testWANParams, netgen.WANBugs{}))
	var adm *engine.ErrAdmission
	if !errors.As(err, &adm) || adm.Tenant != "netops" {
		t.Fatalf("over-quota baseline: err=%v, want ErrAdmission for netops", err)
	}
	if st := eng2.Stats(); st.ChecksSubmitted != 0 {
		t.Fatalf("rejected run submitted %d checks", st.ChecksSubmitted)
	}
}
