package delta_test

import (
	"strings"
	"testing"

	"lightyear/internal/config"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
)

// fig1Cfg is netgen.Fig1 in configuration-language form (the same DSL
// internal/config's parser tests use), so the session below is driven the
// way an operator drives one: by editing source text.
const fig1Cfg = `
# Figure 1 example network
node R1 { as 65000 role edge }
node R2 { as 65000 role edge }
node R3 { as 65000 role edge }
external ISP1 { as 174 }
external ISP2 { as 3356 }
external Customer { as 64512 }

peering ISP1 R1
peering ISP2 R2
peering Customer R3
peering R1 R2
peering R1 R3
peering R2 R3

prefix-list cust { 10.42.0.0/16 ge 16 le 24 }

route-map r1-import-isp1 {
  term 10 deny { match prefix-list cust }
  term 20 permit { set community add 100:1 }
}
route-map r2-import-isp2 {
  term 10 deny { match prefix-list cust }
  term 20 permit { }
}
route-map r2-export-isp2 {
  term 10 deny { match community 100:1 }
  term 20 permit { }
}
route-map r3-import-customer {
  term 10 permit {
    match prefix-list cust
    set community none
  }
}

import ISP1 -> R1 map r1-import-isp1
import ISP2 -> R2 map r2-import-isp2
export R2 -> ISP2 map r2-export-isp2
import Customer -> R3 map r3-import-customer

originate R1 -> R2 route 10.50.0.0/16 lp 100
originate R1 -> R3 route 10.50.0.0/16 lp 100
originate R1 -> ISP1 route 10.50.0.0/16 lp 100
`

// TestCommentOnlyEditIsNoOp is the regression test for the carried open
// item "a comment-only config edit still fingerprints as a change": an
// update whose source differs only in comments and whitespace must take
// the unchanged fast path — no dirty checks, no solver work, verdicts
// republished — while a real policy edit on the same session still
// dirties.
func TestCommentOnlyEditIsNoOp(t *testing.T) {
	suite, ok := netgen.Lookup("fig1-no-transit")
	if !ok {
		t.Fatal("fig1-no-transit suite not registered")
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	v := delta.NewVerifier(eng, suite, netgen.SuiteParams{})

	base, err := v.Baseline(config.MustParse(fig1Cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !base.OK || base.Solved == 0 {
		t.Fatalf("baseline: %s", base)
	}

	edited := "# audit note\n" + strings.ReplaceAll(fig1Cfg, "peering R1 R2", "peering   R1 R2   # reviewed") + "\n# trailing\n"
	res, err := v.Update(config.MustParse(edited))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unchanged {
		t.Fatalf("comment-only edit not recognized as unchanged: %s", res)
	}
	if res.DirtyChecks != 0 || res.Solved != 0 {
		t.Fatalf("comment-only edit dirtied the session: %s", res)
	}
	if !res.OK || res.TotalChecks != base.TotalChecks || res.ReusedResults != base.TotalChecks {
		t.Fatalf("republished verdicts inconsistent with baseline: %s vs %s", res, base)
	}
	if res.Fingerprint != base.Fingerprint {
		t.Fatal("fingerprint changed across a comment-only edit")
	}
	if len(res.Problems) != len(base.Problems) || res.Problems[0].Report == nil {
		t.Fatalf("fast path dropped the per-problem reports: %+v", res.Problems)
	}

	// The same session still reacts to a real edit: dropping the community
	// tag R2's export filter matches is the paper's §2.1 bug.
	buggy := strings.Replace(fig1Cfg, "set community add 100:1", "", 1)
	res2, err := v.Update(config.MustParse(buggy))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Unchanged {
		t.Fatalf("semantic edit took the unchanged fast path: %s", res2)
	}
	if res2.DirtyChecks == 0 {
		t.Fatalf("semantic edit dirtied nothing: %s", res2)
	}
	if res2.OK {
		t.Fatalf("planted bug went undetected: %s", res2)
	}
}
