// Package sim implements an executable model of the BGP semantics of §3.2:
// an event-driven message-passing simulator that produces traces of recv,
// slct, and frwd events satisfying the trace axioms of Appendix A. It is
// the dynamic counterpart of the verifier — differential tests run the
// simulator under random external announcements, event orderings, and link
// failures, and assert that no generated trace violates a property that
// Lightyear verified.
//
// The simulator executes the same policy IR (route maps + ghost updates) as
// the verifier's symbolic encoding, applies the BGP decision process of
// routemodel.Prefer, and follows standard session semantics: iBGP-learned
// routes are not re-advertised to other iBGP peers (full-mesh iBGP), the
// local AS is prepended on eBGP export, and eBGP imports drop routes whose
// AS path already contains the local AS (loop prevention).
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"lightyear/internal/core"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// EventKind is the type of a trace event (§3.2).
type EventKind int

// Trace event kinds.
const (
	Recv EventKind = iota // recv(N -> R, r): R receives r from N
	Slct                  // slct(R, r): R selects r as best and installs it
	Frwd                  // frwd(R -> N, r): R forwards r to N
)

func (k EventKind) String() string {
	switch k {
	case Recv:
		return "recv"
	case Slct:
		return "slct"
	case Frwd:
		return "frwd"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one trace event. Edge is set for Recv/Frwd; Router for Slct.
type Event struct {
	Kind   EventKind
	Edge   topology.Edge
	Router topology.NodeID
	Route  *routemodel.Route
}

func (e Event) String() string {
	switch e.Kind {
	case Slct:
		return fmt.Sprintf("slct(%s, %s)", e.Router, e.Route)
	default:
		return fmt.Sprintf("%s(%s, %s)", e.Kind, e.Edge, e.Route)
	}
}

// Trace is a sequence of events produced by one simulation run.
type Trace struct {
	Events []Event
}

// Violation describes a trace event contradicting a safety property.
type Violation struct {
	Index int
	Event Event
	Pred  spec.Pred
}

func (v *Violation) String() string {
	return fmt.Sprintf("event %d: %s violates %q", v.Index, v.Event, v.Pred)
}

// CheckSafety scans the trace for a violation of the safety property
// (loc, p) under the semantics of §4.1: slct events at a router location,
// recv/frwd events at an edge location.
func (t *Trace) CheckSafety(loc core.Location, p spec.Pred) *Violation {
	for i, ev := range t.Events {
		match := false
		if loc.IsEdge() {
			match = (ev.Kind == Recv || ev.Kind == Frwd) && ev.Edge == loc.Edge()
		} else {
			match = ev.Kind == Slct && ev.Router == loc.Router()
		}
		if match && !p.Eval(ev.Route) {
			return &Violation{Index: i, Event: ev, Pred: p}
		}
	}
	return nil
}

// SatisfiesLiveness reports whether some event at loc carries a route
// satisfying p (the liveness property semantics of §5.1: slct for routers,
// frwd for edges).
func (t *Trace) SatisfiesLiveness(loc core.Location, p spec.Pred) bool {
	for _, ev := range t.Events {
		if loc.IsEdge() {
			if ev.Kind == Frwd && ev.Edge == loc.Edge() && p.Eval(ev.Route) {
				return true
			}
		} else {
			if ev.Kind == Slct && ev.Router == loc.Router() && p.Eval(ev.Route) {
				return true
			}
		}
	}
	return false
}

// linkKey is an undirected link identifier.
type linkKey struct{ a, b topology.NodeID }

func mkLink(a, b topology.NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Simulator runs BGP propagation over a network.
type Simulator struct {
	n      *topology.Network
	ghosts []core.GhostDef

	announcements map[topology.Edge][]*routemodel.Route
	failed        map[linkKey]bool
	rng           *rand.Rand
}

// New returns a simulator for the network with the given ghost definitions
// (so that simulated routes carry the same ghost attributes the verifier
// reasons about).
func New(n *topology.Network, ghosts []core.GhostDef) *Simulator {
	return &Simulator{
		n:             n,
		ghosts:        ghosts,
		announcements: make(map[topology.Edge][]*routemodel.Route),
		failed:        make(map[linkKey]bool),
		rng:           rand.New(rand.NewSource(1)),
	}
}

// Seed sets the randomization seed used for event-order shuffling.
func (s *Simulator) Seed(seed int64) { s.rng = rand.New(rand.NewSource(seed)) }

// Announce schedules an external announcement: the external router e.From
// sends r to e.To when the simulation runs.
func (s *Simulator) Announce(e topology.Edge, r *routemodel.Route) {
	if !s.n.IsExternal(e.From) {
		panic(fmt.Sprintf("sim: announcements must come from external nodes, got %v", e))
	}
	if !s.n.HasEdge(e) {
		panic(fmt.Sprintf("sim: unknown edge %v", e))
	}
	s.announcements[e] = append(s.announcements[e], r)
}

// FailLink marks the (undirected) link between a and b as failed; no
// messages traverse it in either direction.
func (s *Simulator) FailLink(a, b topology.NodeID) { s.failed[mkLink(a, b)] = true }

// message is a pending route delivery on an edge.
type message struct {
	edge  topology.Edge
	route *routemodel.Route
}

// routerState is the per-router RIB state.
type routerState struct {
	// adjIn holds the post-import route per (prefix, sending neighbor).
	adjIn map[routemodel.Prefix]map[topology.NodeID]*routemodel.Route
	// bestFrom records which neighbor contributed the current best route.
	best     map[routemodel.Prefix]*routemodel.Route
	bestFrom map[routemodel.Prefix]topology.NodeID
}

func newRouterState() *routerState {
	return &routerState{
		adjIn:    make(map[routemodel.Prefix]map[topology.NodeID]*routemodel.Route),
		best:     make(map[routemodel.Prefix]*routemodel.Route),
		bestFrom: make(map[routemodel.Prefix]topology.NodeID),
	}
}

// Run executes the simulation to quiescence (or maxEvents, whichever comes
// first) and returns the trace. Each call replays the configured
// announcements from scratch.
func (s *Simulator) Run(maxEvents int) *Trace {
	trace := &Trace{}
	states := make(map[topology.NodeID]*routerState)
	for _, r := range s.n.Routers() {
		states[r] = newRouterState()
	}

	var queue []message
	push := func(m message) { queue = append(queue, m) }

	// Originations: frwd on their edges (axiom 3a), then deliver.
	for _, e := range s.n.Edges() {
		for _, r := range s.n.Originate(e) {
			out := r.Clone()
			for _, g := range s.ghosts {
				v := false
				if g.OnOriginate != nil {
					v = g.OnOriginate(e)
				}
				out.SetGhost(g.Name, v)
			}
			if s.n.IsExternal(e.To) {
				out = out.Clone()
				out.PrependAS(s.asOf(e.From))
			}
			trace.Events = append(trace.Events, Event{Kind: Frwd, Edge: e, Route: out})
			push(message{edge: e, route: out})
		}
	}

	// External announcements: the external "forwards" its routes. Edges
	// are visited in deterministic order so a fixed Seed yields a fully
	// reproducible trace.
	annEdges := make([]topology.Edge, 0, len(s.announcements))
	for e := range s.announcements {
		annEdges = append(annEdges, e)
	}
	sort.Slice(annEdges, func(i, j int) bool {
		if annEdges[i].From != annEdges[j].From {
			return annEdges[i].From < annEdges[j].From
		}
		return annEdges[i].To < annEdges[j].To
	})
	for _, e := range annEdges {
		for _, r := range s.announcements[e] {
			push(message{edge: e, route: r.Clone()})
		}
	}

	for len(queue) > 0 && len(trace.Events) < maxEvents {
		// Random event order (§3.2: events can occur in any order).
		i := s.rng.Intn(len(queue))
		m := queue[i]
		queue[i] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		if s.failed[mkLink(m.edge.From, m.edge.To)] {
			continue // link down: message lost
		}
		dst := m.edge.To
		if s.n.IsExternal(dst) {
			// Externals are sinks; the frwd event was already recorded.
			continue
		}
		trace.Events = append(trace.Events, Event{Kind: Recv, Edge: m.edge, Route: m.route})

		st := states[dst]
		imported := s.importRoute(m.edge, m.route)
		if imported == nil {
			continue
		}
		pfx := imported.Prefix
		if st.adjIn[pfx] == nil {
			st.adjIn[pfx] = make(map[topology.NodeID]*routemodel.Route)
		}
		st.adjIn[pfx][m.edge.From] = imported

		// Decision process: best route among all neighbors for the prefix.
		// Neighbors are scanned in sorted order so Prefer ties (which it
		// breaks deterministically) cannot depend on map iteration order.
		nbs := make([]topology.NodeID, 0, len(st.adjIn[pfx]))
		for nb := range st.adjIn[pfx] {
			nbs = append(nbs, nb)
		}
		sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
		var best *routemodel.Route
		var bestFrom topology.NodeID
		for _, nb := range nbs {
			cand := st.adjIn[pfx][nb]
			if best == nil || routemodel.Prefer(cand, best) {
				best, bestFrom = cand, nb
			}
		}
		prev := st.best[pfx]
		if prev != nil && best.Equal(prev) && st.bestFrom[pfx] == bestFrom {
			continue // no change: nothing new to select or advertise
		}
		st.best[pfx] = best
		st.bestFrom[pfx] = bestFrom
		trace.Events = append(trace.Events, Event{Kind: Slct, Edge: topology.Edge{}, Router: dst, Route: best})

		// Advertise to neighbors per export policy and session rules.
		fromInternal := !s.n.IsExternal(bestFrom)
		for _, nb := range s.n.Neighbors(dst) {
			if nb == bestFrom {
				continue // no immediate bounce-back to the sender
			}
			// Full-mesh iBGP rule: internal-learned routes are not
			// re-advertised to other internal peers.
			if fromInternal && !s.n.IsExternal(nb) {
				continue
			}
			e := topology.Edge{From: dst, To: nb}
			if !s.n.HasEdge(e) {
				continue
			}
			exported := s.exportRoute(e, best)
			if exported == nil {
				continue
			}
			trace.Events = append(trace.Events, Event{Kind: Frwd, Edge: e, Route: exported})
			push(message{edge: e, route: exported})
		}
	}
	return trace
}

func (s *Simulator) asOf(id topology.NodeID) uint32 {
	if n := s.n.Node(id); n != nil {
		return n.AS
	}
	return 0
}

// importRoute applies the import filter, ghost updates, and eBGP loop
// prevention for a route arriving on edge e; nil means rejected.
func (s *Simulator) importRoute(e topology.Edge, r *routemodel.Route) *routemodel.Route {
	if s.n.IsExternal(e.From) && r.PathContains(s.asOf(e.To)) {
		return nil // eBGP loop prevention
	}
	out, ok := s.n.Import(e).Apply(r)
	if !ok {
		return nil
	}
	for _, a := range ghostImports(s.ghosts, e) {
		a.Apply(out)
	}
	return out
}

// exportRoute applies the export filter, ghost updates, and eBGP AS
// prepending for a route leaving on edge e; nil means rejected.
func (s *Simulator) exportRoute(e topology.Edge, r *routemodel.Route) *routemodel.Route {
	out, ok := s.n.Export(e).Apply(r)
	if !ok {
		return nil
	}
	for _, a := range ghostExports(s.ghosts, e) {
		a.Apply(out)
	}
	if s.n.IsExternal(e.To) {
		out.PrependAS(s.asOf(e.From))
	}
	return out
}

func ghostImports(ghosts []core.GhostDef, e topology.Edge) []policy.Action {
	var out []policy.Action
	for _, g := range ghosts {
		if g.OnImport == nil {
			continue
		}
		if v, set := g.OnImport(e); set {
			out = append(out, policy.SetGhost{Name: g.Name, Value: v})
		}
	}
	return out
}

func ghostExports(ghosts []core.GhostDef, e topology.Edge) []policy.Action {
	var out []policy.Action
	for _, g := range ghosts {
		if g.OnExport == nil {
			continue
		}
		if v, set := g.OnExport(e); set {
			out = append(out, policy.SetGhost{Name: g.Name, Value: v})
		}
	}
	return out
}
