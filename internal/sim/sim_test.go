package sim_test

import (
	"math/rand"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/sim"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func fig1Sim(o netgen.Fig1Options) (*topology.Network, *sim.Simulator) {
	n := netgen.Fig1(o)
	s := sim.New(n, []core.GhostDef{netgen.FromISP1Ghost(n)})
	return n, s
}

func announceDefault(s *sim.Simulator) {
	// ISP1 announces an arbitrary Internet route.
	r := routemodel.NewRoute(routemodel.MustPrefix("8.8.0.0/16"))
	r.ASPath = []uint32{174}
	s.Announce(topology.Edge{From: "ISP1", To: "R1"}, r)
	// Customer announces its own prefix.
	c := routemodel.NewRoute(routemodel.MustPrefix("10.42.1.0/24"))
	c.ASPath = []uint32{64512}
	s.Announce(topology.Edge{From: "Customer", To: "R3"}, c)
}

func TestSimulationProducesEvents(t *testing.T) {
	_, s := fig1Sim(netgen.Fig1Options{})
	announceDefault(s)
	tr := s.Run(10000)
	if len(tr.Events) == 0 {
		t.Fatal("no events produced")
	}
	var recvs, slcts, frwds int
	for _, ev := range tr.Events {
		switch ev.Kind {
		case sim.Recv:
			recvs++
		case sim.Slct:
			slcts++
		case sim.Frwd:
			frwds++
		}
	}
	if recvs == 0 || slcts == 0 || frwds == 0 {
		t.Fatalf("event mix recv=%d slct=%d frwd=%d", recvs, slcts, frwds)
	}
}

func TestTraceSatisfiesAxioms(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		_, s := fig1Sim(netgen.Fig1Options{})
		s.Seed(seed)
		announceDefault(s)
		tr := s.Run(10000)
		if err := s.ValidateAxioms(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGhostTaggingInSimulation(t *testing.T) {
	_, s := fig1Sim(netgen.Fig1Options{})
	announceDefault(s)
	tr := s.Run(10000)
	// Every slct at R1 of the ISP1 route must carry FromISP1 and 100:1.
	seen := false
	for _, ev := range tr.Events {
		if ev.Kind == sim.Slct && ev.Router == "R1" && ev.Route.Prefix == routemodel.MustPrefix("8.8.0.0/16") {
			seen = true
			if !ev.Route.GhostValue("FromISP1") {
				t.Fatalf("route not marked FromISP1: %s", ev.Route)
			}
			if !ev.Route.HasCommunity(netgen.CommTransit) {
				t.Fatalf("route not tagged 100:1: %s", ev.Route)
			}
		}
	}
	if !seen {
		t.Fatal("ISP1 route never selected at R1")
	}
}

func TestNoTransitHoldsInSimulation(t *testing.T) {
	exit := core.AtEdge(topology.Edge{From: "R2", To: "ISP2"})
	pred := spec.Not(spec.Ghost("FromISP1"))
	for seed := int64(0); seed < 10; seed++ {
		_, s := fig1Sim(netgen.Fig1Options{})
		s.Seed(seed)
		announceDefault(s)
		tr := s.Run(10000)
		if v := tr.CheckSafety(exit, pred); v != nil {
			t.Fatalf("seed %d: %s", seed, v)
		}
	}
}

func TestBuggyConfigViolatesInSimulation(t *testing.T) {
	// Without the export filter, the ISP1 route reaches ISP2 in simulation
	// — the simulator confirms the bug Lightyear reports statically.
	exit := core.AtEdge(topology.Edge{From: "R2", To: "ISP2"})
	pred := spec.Not(spec.Ghost("FromISP1"))
	_, s := fig1Sim(netgen.Fig1Options{SkipExportFilter: true})
	announceDefault(s)
	tr := s.Run(10000)
	if v := tr.CheckSafety(exit, pred); v == nil {
		t.Fatal("expected a violation in simulation with the export filter removed")
	}
}

func TestLivenessInSimulation(t *testing.T) {
	exit := core.AtEdge(topology.Edge{From: "R2", To: "ISP2"})
	_, s := fig1Sim(netgen.Fig1Options{})
	announceDefault(s)
	tr := s.Run(10000)
	if !tr.SatisfiesLiveness(exit, netgen.HasCustPrefix()) {
		t.Fatal("customer route never forwarded to ISP2")
	}
}

func TestLinkFailureDropsMessages(t *testing.T) {
	exit := core.AtEdge(topology.Edge{From: "R2", To: "ISP2"})
	_, s := fig1Sim(netgen.Fig1Options{})
	announceDefault(s)
	s.FailLink("R3", "R2")
	s.FailLink("R3", "R1")
	tr := s.Run(10000)
	// Customer routes cannot reach R2 with both R3 links down.
	if tr.SatisfiesLiveness(exit, netgen.HasCustPrefix()) {
		t.Fatal("customer route should not reach ISP2 with R3 isolated")
	}
	// Safety still holds under failures (§4.5).
	if v := tr.CheckSafety(exit, spec.Not(spec.Ghost("FromISP1"))); v != nil {
		t.Fatalf("safety violated under failure: %s", v)
	}
}

func TestEBGPLoopPrevention(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	s := sim.New(n, nil)
	// ISP1 sends a route whose path already contains AS 65000 (ours).
	r := routemodel.NewRoute(routemodel.MustPrefix("9.9.0.0/16"))
	r.ASPath = []uint32{174, 65000}
	s.Announce(topology.Edge{From: "ISP1", To: "R1"}, r)
	tr := s.Run(10000)
	for _, ev := range tr.Events {
		if ev.Kind == sim.Slct && ev.Route.Prefix == routemodel.MustPrefix("9.9.0.0/16") {
			t.Fatalf("looped route selected: %s", ev)
		}
	}
}

func TestASPrependOnEBGPExport(t *testing.T) {
	_, s := fig1Sim(netgen.Fig1Options{})
	announceDefault(s)
	tr := s.Run(10000)
	for _, ev := range tr.Events {
		if ev.Kind == sim.Frwd && ev.Edge == (topology.Edge{From: "R2", To: "ISP2"}) {
			if !ev.Route.PathContains(65000) {
				t.Fatalf("eBGP export missing local AS prepend: %s", ev.Route)
			}
		}
	}
}

func TestDecisionProcessPrefersLocalPref(t *testing.T) {
	// Two externals at different routers announce the same prefix; R2
	// raises local-pref on ISP2 routes, so R2 must select the ISP2 copy.
	n := netgen.Fig1(netgen.Fig1Options{})
	imp := n.Import(topology.Edge{From: "ISP2", To: "R2"})
	imp.Clauses[1].Actions = append(imp.Clauses[1].Actions, // permit clause
		// Raise preference for ISP2-learned routes.
		// (Mutating the generated map is fine: it is per-test state.)
		ispPrefAction())
	s := sim.New(n, nil)
	p := routemodel.MustPrefix("8.8.0.0/16")
	r1 := routemodel.NewRoute(p)
	r1.ASPath = []uint32{174}
	s.Announce(topology.Edge{From: "ISP1", To: "R1"}, r1)
	r2 := routemodel.NewRoute(p)
	r2.ASPath = []uint32{3356, 15169}
	s.Announce(topology.Edge{From: "ISP2", To: "R2"}, r2)
	tr := s.Run(10000)

	var last *sim.Event
	for i := range tr.Events {
		ev := tr.Events[i]
		if ev.Kind == sim.Slct && ev.Router == "R2" && ev.Route.Prefix == p {
			last = &tr.Events[i]
		}
	}
	if last == nil {
		t.Fatal("R2 never selected 8.8.0.0/16")
	}
	if last.Route.LocalPref != 300 {
		t.Fatalf("R2 should settle on the lp=300 ISP2 route, got %s", last.Route)
	}
}

func ispPrefAction() interface {
	Apply(*routemodel.Route)
	ApplySym(*spec.SymRoute)
	String() string
	AddToUniverse(*spec.Universe)
} {
	return setLP300{}
}

type setLP300 struct{}

func (setLP300) Apply(r *routemodel.Route)      { r.LocalPref = 300 }
func (setLP300) ApplySym(sr *spec.SymRoute)     { sr.LocalPref = sr.Ctx.BV(300, spec.WidthLocalPref) }
func (setLP300) String() string                 { return "set local-pref 300" }
func (setLP300) AddToUniverse(u *spec.Universe) {}

// TestDifferentialSafety is the cornerstone differential test: when
// Lightyear verifies the no-transit property, no simulated trace — over
// random announcements, event orders, and random link failures — may
// violate it.
func TestDifferentialSafety(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	prob := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(prob, core.Options{})
	if !rep.OK() {
		t.Fatalf("precondition: property must verify:\n%s", rep.Summary())
	}

	rng := rand.New(rand.NewSource(77))
	prefixes := []string{"8.8.0.0/16", "1.2.3.0/24", "10.42.7.0/24", "10.50.0.0/16", "203.0.113.0/24"}
	comms := []routemodel.Community{netgen.CommTransit, routemodel.MustCommunity("7:7")}

	for trial := 0; trial < 25; trial++ {
		s := sim.New(n, []core.GhostDef{netgen.FromISP1Ghost(n)})
		s.Seed(int64(trial))
		for _, e := range s.ExternalAnnounceEdges() {
			for k := rng.Intn(3); k > 0; k-- {
				r := routemodel.NewRoute(routemodel.MustPrefix(prefixes[rng.Intn(len(prefixes))]))
				r.ASPath = []uint32{uint32(100 + rng.Intn(900))}
				r.LocalPref = uint32(rng.Intn(500))
				if rng.Intn(2) == 0 {
					r.AddCommunity(comms[rng.Intn(len(comms))]) // adversarial: externals may send 100:1!
				}
				s.Announce(e, r)
			}
		}
		// Random failures: safety must hold regardless (§4.5).
		if rng.Intn(2) == 0 {
			pairs := [][2]topology.NodeID{{"R1", "R2"}, {"R1", "R3"}, {"R2", "R3"}}
			pr := pairs[rng.Intn(len(pairs))]
			s.FailLink(pr[0], pr[1])
		}
		tr := s.Run(20000)
		if err := s.ValidateAxioms(tr); err != nil {
			t.Fatalf("trial %d: invalid trace: %v", trial, err)
		}
		if v := tr.CheckSafety(prob.Property.Loc, prob.Property.Pred); v != nil {
			t.Fatalf("trial %d: verified property violated in simulation: %s", trial, v)
		}
	}
}
