package sim_test

import (
	"math/rand"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/sim"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// wanWorkload announces a mix of reused-prefix routes from every DC and
// adversarial Internet announcements from every peer.
func wanWorkload(s *sim.Simulator, rng *rand.Rand, params netgen.WANParams) {
	for r := 0; r < params.Regions; r++ {
		for d := 0; d < params.DCsPerRegion; d++ {
			reused := routemodel.NewRoute(routemodel.MustPrefix("10.128.0.0/16"))
			reused.ASPath = []uint32{uint32(65100 + r)}
			pub := routemodel.NewRoute(routemodel.MustPrefix("52.0.0.0/16"))
			pub.ASPath = []uint32{uint32(65100 + r)}
			for i := 0; i < params.RoutersPerRegion; i++ {
				e := topology.Edge{From: netgen.DCRouter(r, d), To: netgen.RegionRouter(r, i)}
				s.Announce(e, reused)
				s.Announce(e, pub)
			}
		}
	}
	adversarial := []string{"10.128.0.0/16", "8.8.0.0/16", "0.0.0.0/8", "240.1.0.0/16"}
	for e := 0; e < params.EdgeRouters; e++ {
		for q := 0; q < params.PeersPerEdge; q++ {
			r := routemodel.NewRoute(routemodel.MustPrefix(adversarial[rng.Intn(len(adversarial))]))
			r.ASPath = []uint32{uint32(2000 + e*100 + q)}
			if rng.Intn(2) == 0 {
				// Externals may even send internal region communities.
				r.AddCommunity(netgen.RegionComm(rng.Intn(params.Regions)))
			}
			s.Announce(topology.Edge{From: netgen.PeerNode(e, q), To: netgen.EdgeRouter(e)}, r)
		}
	}
}

// TestWANDifferentialIPReuseSafety: the verified Table-4b property must
// hold in every simulated trace, across random event orders and failures.
func TestWANDifferentialIPReuseSafety(t *testing.T) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	prob := netgen.IPReuseSafetyProblem(n, params, 0, netgen.RegionRouter(1, 0))
	if !core.VerifySafety(prob, core.Options{}).OK() {
		t.Fatal("precondition: property must verify")
	}
	ghosts := []core.GhostDef{netgen.FromRegionGhost(n, 0)}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		s := sim.New(n, ghosts)
		s.Seed(int64(trial))
		wanWorkload(s, rng, params)
		if rng.Intn(2) == 0 {
			s.FailLink(netgen.RegionRouter(0, 0), netgen.RegionRouter(1, 0))
		}
		tr := s.Run(200000)
		if v := tr.CheckSafety(prob.Property.Loc, prob.Property.Pred); v != nil {
			t.Fatalf("trial %d: verified property violated: %s", trial, v)
		}
		if err := s.ValidateAxioms(tr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestWANDifferentialBuggyReuseViolates: with the wrong-community bug, the
// simulator must be able to exhibit the leak the verifier reports.
func TestWANDifferentialBuggyReuseViolates(t *testing.T) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{WrongRegionCommunity: true})
	prob := netgen.IPReuseSafetyProblem(n, params, 0, netgen.RegionRouter(1, 0))
	if core.VerifySafety(prob, core.Options{}).OK() {
		t.Fatal("precondition: bug must be caught statically")
	}
	ghosts := []core.GhostDef{netgen.FromRegionGhost(n, 0)}
	rng := rand.New(rand.NewSource(4))
	violated := false
	for trial := 0; trial < 10 && !violated; trial++ {
		s := sim.New(n, ghosts)
		s.Seed(int64(trial))
		wanWorkload(s, rng, params)
		tr := s.Run(200000)
		if tr.CheckSafety(prob.Property.Loc, prob.Property.Pred) != nil {
			violated = true
		}
	}
	if !violated {
		t.Fatal("simulation never exhibited the statically detected leak")
	}
}

// TestWANDifferentialPeeringProperties: all 11 verified peering properties
// hold dynamically at a core router.
func TestWANDifferentialPeeringProperties(t *testing.T) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	ghosts := []core.GhostDef{netgen.FromPeerGhost(n)}
	rng := rand.New(rand.NewSource(21))
	s := sim.New(n, ghosts)
	wanWorkload(s, rng, params)
	tr := s.Run(200000)
	at := core.AtRouter(netgen.RegionRouter(0, 0))
	for _, prop := range netgen.PeeringProperties(params.Regions) {
		pred := spec.Implies(spec.Ghost("FromPeer"), prop.Q)
		if v := tr.CheckSafety(at, pred); v != nil {
			t.Fatalf("property %s violated in simulation: %s", prop.Name, v)
		}
	}
}

// TestWANLivenessDynamically: reused routes reach the region's second
// router in simulation, as the Table-4c proof promises.
func TestWANLivenessDynamically(t *testing.T) {
	params := netgen.DefaultWANParams()
	n := netgen.WAN(params, netgen.WANBugs{})
	ghosts := []core.GhostDef{netgen.FromRegionGhost(n, 0)}
	s := sim.New(n, ghosts)
	reused := routemodel.NewRoute(routemodel.MustPrefix("10.128.0.0/16"))
	reused.ASPath = []uint32{65100}
	s.Announce(topology.Edge{From: netgen.DCRouter(0, 0), To: netgen.RegionRouter(0, 0)}, reused)
	tr := s.Run(100000)
	target := core.AtRouter(netgen.RegionRouter(0, 1))
	good := spec.And(spec.Ghost("FromRegion0"), spec.PrefixIn(netgen.ReusedIPs))
	if !tr.SatisfiesLiveness(target, good) {
		t.Fatal("reused route never selected at the region's second router")
	}
	// And it must NOT reach a router outside the region.
	outside := core.AtRouter(netgen.RegionRouter(1, 0))
	if tr.SatisfiesLiveness(outside, good) {
		t.Fatal("reused route escaped its region in simulation")
	}
}
