package sim

import (
	"fmt"

	"lightyear/internal/topology"
)

// ValidateAxioms checks a trace against the safety axioms of Appendix A:
//
//  1. every recv(N→R, r) is preceded by frwd(N→R, r), unless N is external;
//  2. every slct(R, r) is preceded by a recv(N→R, r') with
//     r = Import(N→R, r') (including ghost updates);
//  3. every frwd(R→N, r) is an origination on R→N or is preceded by a
//     slct(R, r') with r = Export(R→N, r') (including ghost updates and
//     eBGP prepending).
//
// It returns an error describing the first violated axiom. The verifier's
// correctness proof quantifies over traces satisfying these axioms, so the
// simulator must only ever produce such traces; the differential tests
// assert exactly that.
func (s *Simulator) ValidateAxioms(t *Trace) error {
	for i, ev := range t.Events {
		switch ev.Kind {
		case Recv:
			if s.n.IsExternal(ev.Edge.From) {
				continue // axiom 1a
			}
			if !precededByFrwd(t, i, ev) {
				return fmt.Errorf("axiom 1: event %d %s has no preceding frwd", i, ev)
			}
		case Slct:
			if !s.precededByMatchingRecv(t, i, ev) {
				return fmt.Errorf("axiom 2: event %d %s has no justifying recv+import", i, ev)
			}
		case Frwd:
			if s.isOrigination(ev) {
				continue // axiom 3a
			}
			if !s.precededByMatchingSlct(t, i, ev) {
				return fmt.Errorf("axiom 3: event %d %s has no justifying slct+export", i, ev)
			}
		}
	}
	return nil
}

func precededByFrwd(t *Trace, upto int, ev Event) bool {
	for j := 0; j < upto; j++ {
		p := t.Events[j]
		if p.Kind == Frwd && p.Edge == ev.Edge && p.Route.Equal(ev.Route) {
			return true
		}
	}
	return false
}

func (s *Simulator) precededByMatchingRecv(t *Trace, upto int, ev Event) bool {
	for j := 0; j < upto; j++ {
		p := t.Events[j]
		if p.Kind != Recv || p.Edge.To != ev.Router {
			continue
		}
		imported := s.importRoute(p.Edge, p.Route)
		if imported != nil && imported.Equal(ev.Route) {
			return true
		}
	}
	return false
}

func (s *Simulator) isOrigination(ev Event) bool {
	for _, r := range s.n.Originate(ev.Edge) {
		out := r.Clone()
		for _, g := range s.ghosts {
			v := false
			if g.OnOriginate != nil {
				v = g.OnOriginate(ev.Edge)
			}
			out.SetGhost(g.Name, v)
		}
		if s.n.IsExternal(ev.Edge.To) {
			out.PrependAS(s.asOf(ev.Edge.From))
		}
		if out.Equal(ev.Route) {
			return true
		}
	}
	return false
}

func (s *Simulator) precededByMatchingSlct(t *Trace, upto int, ev Event) bool {
	for j := 0; j < upto; j++ {
		p := t.Events[j]
		if p.Kind != Slct || p.Router != ev.Edge.From {
			continue
		}
		exported := s.exportRoute(ev.Edge, p.Route)
		if exported != nil && exported.Equal(ev.Route) {
			return true
		}
	}
	return false
}

// ExternalAnnounceEdges returns the edges on which external neighbors can
// announce (used by the random-workload differential tests).
func (s *Simulator) ExternalAnnounceEdges() []topology.Edge {
	var out []topology.Edge
	for _, e := range s.n.Edges() {
		if s.n.IsExternal(e.From) {
			out = append(out, e)
		}
	}
	return out
}
