// Package core implements Lightyear's modular control-plane verification:
// safety verification via per-edge local checks (§4 of the paper), liveness
// verification via propagation and no-interference checks along a path (§5),
// the ghost-attribute framework (§4.4), parallel check execution, and
// incremental re-verification.
//
// The entry points are VerifySafety and VerifyLiveness. Both take a
// verification problem (network + property + user-provided local
// constraints) and return a Report of local check results; if every check
// passes, the end-to-end property is guaranteed for all possible external
// route announcements — and, for safety properties, under arbitrary node and
// link failures (§4.5).
package core

import (
	"fmt"

	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Location identifies a network location per §4.1: either a configured
// router or a directed session edge.
type Location struct {
	router topology.NodeID
	edge   topology.Edge
	isEdge bool
}

// AtRouter returns the location of a router.
func AtRouter(id topology.NodeID) Location { return Location{router: id} }

// AtEdge returns the location of a directed edge.
func AtEdge(e topology.Edge) Location { return Location{edge: e, isEdge: true} }

// IsEdge reports whether the location is an edge.
func (l Location) IsEdge() bool { return l.isEdge }

// Router returns the router ID of a router location.
func (l Location) Router() topology.NodeID { return l.router }

// Edge returns the edge of an edge location.
func (l Location) Edge() topology.Edge { return l.edge }

// String renders "R" or "A -> B".
func (l Location) String() string {
	if l.isEdge {
		return l.edge.String()
	}
	return string(l.router)
}

// Property is an end-to-end property (ℓ, P): at location ℓ, predicate P. For
// safety, every route reaching ℓ must satisfy P; for liveness, some route
// satisfying P must eventually reach ℓ.
type Property struct {
	Loc  Location
	Pred spec.Pred
	Desc string // human-readable description for reports
}

func (p Property) String() string {
	if p.Desc != "" {
		return fmt.Sprintf("%s @ %s (%s)", p.Pred, p.Loc, p.Desc)
	}
	return fmt.Sprintf("%s @ %s", p.Pred, p.Loc)
}

// Invariants assigns a network invariant I_ℓ to every location (§4.1). Users
// typically set a handful of location-specific invariants plus a Default
// that captures the "key invariant" holding across the rest of the network
// (the three-part structure described in §2.1). Edges whose source is an
// external router are always treated as unconstrained (True), mirroring the
// paper's requirement I_{R→N} = Routes for R ∈ Externals.
type Invariants struct {
	Default    spec.Pred
	byLocation map[string]spec.Pred // keyed by Location.String()
}

// NewInvariants returns an invariant map with the given default predicate.
func NewInvariants(def spec.Pred) *Invariants {
	return &Invariants{Default: def, byLocation: make(map[string]spec.Pred)}
}

// Set assigns the invariant for one location, overriding the default.
func (inv *Invariants) Set(loc Location, p spec.Pred) *Invariants {
	inv.byLocation[loc.String()] = p
	return inv
}

// SetRouter assigns the invariant for a router location.
func (inv *Invariants) SetRouter(id topology.NodeID, p spec.Pred) *Invariants {
	return inv.Set(AtRouter(id), p)
}

// SetEdge assigns the invariant for an edge location.
func (inv *Invariants) SetEdge(e topology.Edge, p spec.Pred) *Invariants {
	return inv.Set(AtEdge(e), p)
}

// At returns the invariant for a location within the given network.
// Edges from external routers are unconstrained regardless of settings.
func (inv *Invariants) At(n *topology.Network, loc Location) spec.Pred {
	if loc.IsEdge() && n.IsExternal(loc.Edge().From) {
		return spec.True()
	}
	if p, ok := inv.byLocation[loc.String()]; ok {
		return p
	}
	if inv.Default != nil {
		return inv.Default
	}
	return spec.True()
}

// AddToUniverse collects attribute mentions from every invariant.
func (inv *Invariants) AddToUniverse(u *spec.Universe) {
	if inv.Default != nil {
		inv.Default.AddToUniverse(u)
	}
	for _, p := range inv.byLocation {
		p.AddToUniverse(u)
	}
}
