package core

import (
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// GhostDef defines a ghost attribute (§4.4): a boolean field conceptually
// added to every route, updated by designated import/export filters and
// fixed on originated routes. Ghost attributes never affect routing; they
// exist so properties like "this route came from ISP1" become expressible.
type GhostDef struct {
	Name string

	// OnImport, if non-nil, is consulted for each import edge; returning
	// (v, true) makes the import filter on that edge set the ghost to v.
	// Returning (_, false) leaves the attribute unchanged.
	OnImport func(e topology.Edge) (value, set bool)

	// OnExport is the analogous hook for export filters.
	OnExport func(e topology.Edge) (value, set bool)

	// OnOriginate, if non-nil, gives the attribute value on routes
	// originated on edge e; a nil hook means false (the common case).
	OnOriginate func(e topology.Edge) bool
}

// GhostFromExternals builds the common "provenance" ghost of §2 and §6.1
// (FromISP1, FromPeer, FromRegion): true when the route was imported from an
// external neighbor satisfying isSource, false when imported from any other
// external neighbor, unchanged inside the network, false at origination.
func GhostFromExternals(name string, n *topology.Network, isSource func(id topology.NodeID) bool) GhostDef {
	return GhostDef{
		Name: name,
		OnImport: func(e topology.Edge) (bool, bool) {
			if !n.IsExternal(e.From) {
				return false, false // internal edge: unchanged
			}
			return isSource(e.From), true
		},
	}
}

// GhostWaypoint builds the waypoint ghost of §4.4: true once the route has
// been processed by router R — filters on R set it true; imports from
// external neighbors elsewhere set it false; originated routes start false.
func GhostWaypoint(name string, n *topology.Network, r topology.NodeID) GhostDef {
	return GhostDef{
		Name: name,
		OnImport: func(e topology.Edge) (bool, bool) {
			if e.To == r {
				return true, true
			}
			if n.IsExternal(e.From) {
				return false, true
			}
			return false, false
		},
		OnExport: func(e topology.Edge) (bool, bool) {
			if e.From == r {
				return true, true
			}
			return false, false
		},
		OnOriginate: func(e topology.Edge) bool { return e.From == r },
	}
}

// ghostImportActions returns the SetGhost actions the ghost definitions
// attach to the import filter on edge e.
func ghostImportActions(ghosts []GhostDef, e topology.Edge) []policy.Action {
	var out []policy.Action
	for _, g := range ghosts {
		if g.OnImport == nil {
			continue
		}
		if v, set := g.OnImport(e); set {
			out = append(out, policy.SetGhost{Name: g.Name, Value: v})
		}
	}
	return out
}

// ghostExportActions returns the SetGhost actions for the export filter on
// edge e.
func ghostExportActions(ghosts []GhostDef, e topology.Edge) []policy.Action {
	var out []policy.Action
	for _, g := range ghosts {
		if g.OnExport == nil {
			continue
		}
		if v, set := g.OnExport(e); set {
			out = append(out, policy.SetGhost{Name: g.Name, Value: v})
		}
	}
	return out
}

// applyGhostsSym applies ghost actions to a derived symbolic route.
func applyGhostsSym(sr *spec.SymRoute, acts []policy.Action) *spec.SymRoute {
	if len(acts) == 0 {
		return sr
	}
	out := sr.Clone()
	for _, a := range acts {
		a.ApplySym(out)
	}
	return out
}

// applyGhostsConcrete applies ghost actions to a concrete route in place.
func applyGhostsConcrete(r *routemodel.Route, acts []policy.Action) {
	for _, a := range acts {
		a.Apply(r)
	}
}

// originatedWithGhosts returns a copy of an originated route with every
// ghost attribute set to its origination value for edge e.
func originatedWithGhosts(r *routemodel.Route, e topology.Edge, ghosts []GhostDef) *routemodel.Route {
	out := r.Clone()
	for _, g := range ghosts {
		v := false
		if g.OnOriginate != nil {
			v = g.OnOriginate(e)
		}
		out.SetGhost(g.Name, v)
	}
	return out
}

// addGhostsToUniverse registers all ghost names.
func addGhostsToUniverse(u *spec.Universe, ghosts []GhostDef) {
	for _, g := range ghosts {
		u.AddGhost(g.Name)
	}
}
