package core_test

import (
	"strings"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestLocationAccessors(t *testing.T) {
	r := core.AtRouter("R1")
	if r.IsEdge() || r.Router() != "R1" || r.String() != "R1" {
		t.Fatalf("router location: %v", r)
	}
	e := core.AtEdge(topology.Edge{From: "A", To: "B"})
	if !e.IsEdge() || e.Edge().From != "A" || e.String() != "A -> B" {
		t.Fatalf("edge location: %v", e)
	}
}

func TestPropertyString(t *testing.T) {
	p := core.Property{Loc: core.AtRouter("R1"), Pred: spec.True(), Desc: "demo"}
	if !strings.Contains(p.String(), "demo") || !strings.Contains(p.String(), "R1") {
		t.Fatalf("Property.String = %q", p.String())
	}
	p2 := core.Property{Loc: core.AtRouter("R1"), Pred: spec.True()}
	if p2.String() == "" {
		t.Fatal("empty string without desc")
	}
}

func TestInvariantsDefaults(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	// Nil default behaves as True.
	inv := core.NewInvariants(nil)
	got := inv.At(n, core.AtRouter("R1"))
	if got.String() != spec.True().String() {
		t.Fatalf("nil default should be True, got %q", got)
	}
	// External-source edges are always True even when overridden.
	inv2 := core.NewInvariants(spec.False())
	inv2.SetEdge(topology.Edge{From: "ISP1", To: "R1"}, spec.False())
	got = inv2.At(n, core.AtEdge(topology.Edge{From: "ISP1", To: "R1"}))
	if got.String() != spec.True().String() {
		t.Fatalf("external edges must be unconstrained, got %q", got)
	}
	// Explicit settings win over the default elsewhere.
	inv3 := core.NewInvariants(spec.False())
	inv3.SetRouter("R1", spec.True())
	if inv3.At(n, core.AtRouter("R1")).String() != spec.True().String() {
		t.Fatal("explicit router invariant ignored")
	}
	if inv3.At(n, core.AtRouter("R2")).String() != spec.False().String() {
		t.Fatal("default not applied")
	}
}

func TestCheckKindStrings(t *testing.T) {
	kinds := []core.CheckKind{
		core.ImportCheck, core.ExportCheck, core.OriginateCheck,
		core.ImplicationCheck, core.PropagationCheck, core.InterferenceCheck,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind string %q empty or duplicated", s)
		}
		seen[s] = true
	}
}

func TestConflictBudgetMarksUnknownAsFailure(t *testing.T) {
	// An absurdly small budget cannot prove UNSAT for nontrivial checks;
	// the check must conservatively report failure (never a false "pass").
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{ConflictBudget: 1})
	for _, f := range rep.Failures() {
		if f.Counterexample == nil {
			t.Fatal("budget-exhausted checks must carry an explanatory note")
		}
	}
	// With budget removed everything passes again.
	if !core.VerifySafety(p, core.Options{}).OK() {
		t.Fatal("must verify without budget")
	}
}

func TestChecksEnumerationWithoutRun(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	checks := p.Checks(core.Options{})
	if len(checks) != 22 {
		t.Fatalf("Checks() = %d, want 22", len(checks))
	}
	for _, c := range checks {
		if c.Desc == "" {
			t.Fatal("check missing description")
		}
	}
}

func TestLivenessSkipInterference(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1LivenessProblem(n)
	p.InterferenceInvariants = nil
	p.SkipInterference = true
	rep, err := core.VerifyLiveness(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Kind == core.InterferenceCheck {
			t.Fatal("interference checks should be skipped")
		}
	}
	if !rep.OK() {
		t.Fatalf("propagation-only proof should pass:\n%s", rep.Summary())
	}
}

func TestCounterexampleStringForms(t *testing.T) {
	var nilCE *core.Counterexample
	if nilCE.String() != "<none>" {
		t.Fatal("nil counterexample rendering")
	}
}

func TestGhostFromExternalsRules(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	g := core.GhostFromExternals("G", n, func(id topology.NodeID) bool { return id == "ISP1" })
	if v, set := g.OnImport(topology.Edge{From: "ISP1", To: "R1"}); !set || !v {
		t.Fatal("source import must set true")
	}
	if v, set := g.OnImport(topology.Edge{From: "ISP2", To: "R2"}); !set || v {
		t.Fatal("non-source external import must set false")
	}
	if _, set := g.OnImport(topology.Edge{From: "R1", To: "R2"}); set {
		t.Fatal("internal import must leave ghost unchanged")
	}
	if g.OnExport != nil {
		t.Fatal("provenance ghost has no export rule")
	}
}
