package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// IncrementalVerifier caches local check results keyed by the check's
// semantic content (the filter's policy, the invariants involved, and the
// ghost updates). When the network configuration changes, only checks whose
// inputs changed are re-run — the incremental re-verification benefit of
// modularity described in §2 ("when a node is updated, only the local
// checks pertaining to that node must be re-checked").
type IncrementalVerifier struct {
	problem *SafetyProblem
	opts    Options
	runner  CheckRunner
	cache   map[string]CheckResult
}

// NewIncrementalVerifier wraps a safety problem for repeated verification
// using a private local worker pool. The problem's Network may be mutated
// (policies rebound, edges added) between Run calls; the pointer is re-read
// each time.
func NewIncrementalVerifier(p *SafetyProblem, opts Options) *IncrementalVerifier {
	return NewIncrementalVerifierOn(LocalRunner(opts), p, opts)
}

// NewIncrementalVerifierOn wraps a safety problem for repeated verification
// on an explicit execution substrate — typically an internal/engine Engine,
// so dirty checks re-run on the shared worker pool and benefit from (and
// populate) the process-wide result cache.
func NewIncrementalVerifierOn(r CheckRunner, p *SafetyProblem, opts Options) *IncrementalVerifier {
	return &IncrementalVerifier{problem: p, opts: opts, runner: r, cache: make(map[string]CheckResult)}
}

// Run verifies the problem, reusing cached results for unchanged checks.
// It returns the report and the number of checks served from cache.
func (iv *IncrementalVerifier) Run() (*Report, int) {
	start := time.Now()
	checks := iv.problem.Checks(iv.opts)
	var toRun []Check
	var results []CheckResult
	reused := 0
	for _, c := range checks {
		if c.key == "" {
			toRun = append(toRun, c)
			continue
		}
		if r, ok := iv.cache[c.key]; ok {
			results = append(results, r)
			reused++
		} else {
			toRun = append(toRun, c)
		}
	}
	fresh := iv.runner.RunChecks(iv.problem.Property, toRun)
	for _, r := range fresh.Results {
		results = append(results, r)
	}
	// Re-index the cache from scratch so stale entries for removed edges
	// do not accumulate.
	newCache := make(map[string]CheckResult, len(checks))
	byIdentity := make(map[string]CheckResult, len(results))
	for _, r := range results {
		byIdentity[CheckIdentity(r.Kind, r.Loc, r.Desc)] = r
	}
	for _, c := range checks {
		if c.key == "" {
			continue
		}
		// Unknown is not a verdict: retaining it would freeze "insufficient
		// budget" as the key's answer forever (the same rule every other
		// retention layer — engine cache, store, delta — applies).
		if r, ok := byIdentity[CheckIdentity(c.Kind, c.Loc, c.Desc)]; ok && r.Status != StatusUnknown {
			newCache[c.key] = r
		}
	}
	iv.cache = newCache

	return NewReport(iv.problem.Property, results, time.Since(start)), reused
}

// CacheSize returns the number of cached check results.
func (iv *IncrementalVerifier) CacheSize() int { return len(iv.cache) }

// CheckIdentity renders a check's per-problem identity (Kind/Loc/Desc) —
// the join key for matching results back to the checks that produced them
// when re-indexing a result cache. IncrementalVerifier and internal/delta
// must agree on this rendering, so both use this helper.
func CheckIdentity(kind CheckKind, loc Location, desc string) string {
	return fmt.Sprintf("%d/%s/%s", kind, loc, desc)
}

// checkKey hashes the semantic inputs of a check into a cache key: the
// first 128 bits of a SHA-256 over the NUL-separated parts, hex-encoded.
// Keys gate result sharing across jobs and persistent stores, so a
// collision would silently return one check's verdict for another; a
// 64-bit hash (the previous FNV-1a scheme) leaves that to birthday luck,
// while 128 bits of SHA-256 make it cryptographically negligible.
func checkKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// PartitionChecks splits checks into those whose location satisfies dirty
// and the rest — the hook internal/delta uses to map a network diff onto
// the subset of local checks that must re-run. It preserves order within
// each partition.
func PartitionChecks(checks []Check, dirty func(Location) bool) (hit, miss []Check) {
	for _, c := range checks {
		if dirty(c.Loc) {
			hit = append(hit, c)
		} else {
			miss = append(miss, c)
		}
	}
	return hit, miss
}
