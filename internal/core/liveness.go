package core

import (
	"fmt"

	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// PathStep is one location ℓ_i on a liveness witness path together with its
// constraint C_i (§5.1). For router steps, PrefixPred must describe the set
// Prefix(C_i) — the prefixes of routes satisfying C_i — which the
// no-interference check quantifies over; it is typically the prefix
// conjunct of C_i itself.
type PathStep struct {
	Loc        Location
	Constraint spec.Pred
	PrefixPred spec.Pred // routers only; ignored for edge steps
}

// LivenessProblem is the input to modular liveness verification (§5.1):
// the network, the property (ℓ, P), a topological path ℓ_1..ℓ_n = ℓ with a
// constraint per step, ghost definitions, and the invariants proving the
// no-interference safety obligations.
type LivenessProblem struct {
	Network  *topology.Network
	Property Property
	Steps    []PathStep
	Ghosts   []GhostDef

	// InterferenceInvariants prove, for each router R = ℓ_i on the path, the
	// safety property (R, Prefix(r) ∈ Prefix(C_i) ⇒ C_i(r)) using the §4
	// machinery. Nil skips those sub-proofs (the report then only
	// establishes propagation, which is unsound in general — Validate
	// rejects it unless SkipInterference is set for testing).
	InterferenceInvariants *Invariants

	// SkipInterference omits the no-interference safety sub-proofs. Only
	// for experiments that measure propagation checks in isolation.
	SkipInterference bool
}

// Validate checks that the path is well-formed per §5.1: alternating
// router/edge locations forming a topological path whose last location is
// the property location, with one constraint per step.
func (p *LivenessProblem) Validate() error {
	n := p.Network
	if len(p.Steps) == 0 {
		return fmt.Errorf("liveness: empty path")
	}
	for i, s := range p.Steps {
		if s.Constraint == nil {
			return fmt.Errorf("liveness: step %d (%s) has no constraint", i, s.Loc)
		}
		if s.Loc.IsEdge() {
			if !n.HasEdge(s.Loc.Edge()) {
				return fmt.Errorf("liveness: step %d: edge %s not in topology", i, s.Loc)
			}
		} else {
			if node := n.Node(s.Loc.Router()); node == nil || node.External {
				return fmt.Errorf("liveness: step %d: %s is not a configured router", i, s.Loc)
			}
			if s.PrefixPred == nil && !p.SkipInterference {
				return fmt.Errorf("liveness: router step %d (%s) needs PrefixPred for the no-interference check", i, s.Loc)
			}
		}
		if i+1 < len(p.Steps) {
			next := p.Steps[i+1].Loc
			if s.Loc.IsEdge() {
				// ℓ_i = A→B requires ℓ_{i+1} = B.
				if next.IsEdge() || next.Router() != s.Loc.Edge().To {
					return fmt.Errorf("liveness: step %d: edge %s must be followed by router %s", i, s.Loc, s.Loc.Edge().To)
				}
			} else {
				// ℓ_i = R requires ℓ_{i+1} = R→N.
				if !next.IsEdge() || next.Edge().From != s.Loc.Router() {
					return fmt.Errorf("liveness: step %d: router %s must be followed by an outgoing edge", i, s.Loc)
				}
			}
		}
	}
	last := p.Steps[len(p.Steps)-1].Loc
	if last.String() != p.Property.Loc.String() {
		return fmt.Errorf("liveness: path ends at %s but property is at %s", last, p.Property.Loc)
	}
	if p.InterferenceInvariants == nil && !p.SkipInterference {
		return fmt.Errorf("liveness: InterferenceInvariants required (or set SkipInterference)")
	}
	return nil
}

// universe assembles the attribute alphabet for the problem.
func (p *LivenessProblem) universe() *spec.Universe {
	u := p.Network.Universe()
	p.Property.Pred.AddToUniverse(u)
	for _, s := range p.Steps {
		s.Constraint.AddToUniverse(u)
		if s.PrefixPred != nil {
			s.PrefixPred.AddToUniverse(u)
		}
	}
	if p.InterferenceInvariants != nil {
		p.InterferenceInvariants.AddToUniverse(u)
	}
	addGhostsToUniverse(u, p.Ghosts)
	return u
}

// Checks generates the liveness checks of §5.2:
//
//   - propagation checks along consecutive path steps (export for router→edge
//     steps, import for edge→router steps), each requiring the filter to
//     accept C_i routes and produce C_{i+1} routes;
//   - the final implication C_n ⊆ P;
//   - for each router step, the no-interference safety property
//     (R, PrefixPred ⇒ C_i) proven with its own invariants via the §4 checks.
func (p *LivenessProblem) Checks(opts Options) ([]Check, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	u := p.universe()
	n := p.Network
	var checks []Check

	for i := 0; i+1 < len(p.Steps); i++ {
		cur, next := p.Steps[i], p.Steps[i+1]
		if cur.Loc.IsEdge() {
			// ℓ_i = N→R edge, ℓ_{i+1} = R: import must accept and preserve.
			e := cur.Loc.Edge()
			if n.IsExternal(e.To) {
				return nil, fmt.Errorf("liveness: import step into external node %s", e.To)
			}
			checks = append(checks, filterCheck(
				PropagationCheck, cur.Loc,
				fmt.Sprintf("propagation: import at %s accepts %q and yields %q", e.To, cur.Constraint, next.Constraint),
				u, n.Import(e), ghostImportActions(p.Ghosts, e),
				cur.Constraint, next.Constraint, true, opts,
			))
		} else {
			// ℓ_i = R, ℓ_{i+1} = R→N edge: export must accept and preserve.
			e := next.Loc.Edge()
			checks = append(checks, filterCheck(
				PropagationCheck, next.Loc,
				fmt.Sprintf("propagation: export at %s to %s accepts %q and yields %q", e.From, e.To, cur.Constraint, next.Constraint),
				u, n.Export(e), ghostExportActions(p.Ghosts, e),
				cur.Constraint, next.Constraint, true, opts,
			))
		}
	}

	lastStep := p.Steps[len(p.Steps)-1]
	checks = append(checks, implicationCheck(
		p.Property.Loc,
		"final path constraint implies liveness property",
		u, lastStep.Constraint, p.Property.Pred, opts,
	))

	if !p.SkipInterference {
		for _, s := range p.Steps {
			if s.Loc.IsEdge() {
				continue
			}
			// The no-interference obligation is itself a safety property
			// (§5.2): at router R, any acceptable route whose prefix is in
			// Prefix(C_i) must satisfy C_i. We prove it with the provided
			// invariants and relabel its checks as InterferenceCheck.
			sub := &SafetyProblem{
				Network: n,
				Property: Property{
					Loc:  s.Loc,
					Pred: spec.Implies(s.PrefixPred, s.Constraint),
					Desc: fmt.Sprintf("no interference at %s", s.Loc),
				},
				Invariants: p.InterferenceInvariants,
				Ghosts:     p.Ghosts,
			}
			for _, c := range sub.Checks(opts) {
				checks = append(checks, relabel(c, InterferenceCheck, s.Loc, opts))
			}
		}
	}
	return checks, nil
}

// relabel re-identifies a sub-check as a no-interference obligation of the
// liveness proof while keeping its own location in the description. The
// relabeled check shares the inner check's obligation content — it decides
// the same formula — but reports a different identity, so it caches under a
// key derived from (kind, path location, inner key) rather than the inner
// key itself. With declarative obligations this is a pure identity rewrite:
// no wrapping closure is needed.
func relabel(c Check, kind CheckKind, at Location, opts Options) Check {
	desc := fmt.Sprintf("[for %s] %s", at, c.Desc)
	key := ""
	if c.key != "" {
		key = checkKey("relabel", fmt.Sprint(int(kind)), at.String(), c.key)
	}
	ob := *c.ob // shallow copy: content pointers shared, identity rewritten
	ob.Kind, ob.Desc, ob.key = kind, desc, key
	return newCheck(&ob, opts)
}

// VerifyLiveness runs all liveness checks. If the report is OK, then for
// every valid trace in which (a) a route satisfying C_1 arrives at ℓ_1 and
// (b) no link on the path fails, a route satisfying P eventually reaches ℓ
// (Theorem §5.3). Failures elsewhere in the network cannot invalidate the
// conclusion.
func VerifyLiveness(p *LivenessProblem, opts Options) (*Report, error) {
	checks, err := p.Checks(opts)
	if err != nil {
		return nil, err
	}
	return runChecks(p.Property, checks, opts), nil
}
