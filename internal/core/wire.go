package core

import (
	"fmt"
	"time"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// This file defines the wire forms that let obligations and check results
// travel between processes: the distributed solver fabric (internal/fabric)
// serializes an Obligation on the coordinator, ships it to a worker, and
// ships the CheckResult back. The encoding is plain JSON-tagged structs —
// no registry, no reflection — because the obligation grammar is closed:
// three content families over the closed predicate/action unions of
// internal/spec and internal/policy.
//
// Two invariants matter:
//
//   - Key is shipped verbatim. Check keys are the identity under which the
//     engine caches and dedups; a worker-side engine must see the same key
//     the coordinator hashed, or shard-local caching would silently miss.
//   - Originate obligations ship their routes with origination ghosts
//     pre-applied (GhostDef holds funcs, which do not serialize). By
//     originatedWithGhosts semantics the decoded obligation evaluates
//     identically with an empty ghost list.

// EdgeWire is the serializable form of a directed topology edge.
type EdgeWire struct {
	From string `json:"from"`
	To   string `json:"to"`
}

func encodeEdge(e topology.Edge) EdgeWire {
	return EdgeWire{From: string(e.From), To: string(e.To)}
}

func (w EdgeWire) edge() topology.Edge {
	return topology.Edge{From: topology.NodeID(w.From), To: topology.NodeID(w.To)}
}

// LocationWire is the serializable form of a Location: exactly one of
// Router or Edge is set.
type LocationWire struct {
	Router string    `json:"router,omitempty"`
	Edge   *EdgeWire `json:"edge,omitempty"`
}

func encodeLocation(l Location) LocationWire {
	if l.IsEdge() {
		e := encodeEdge(l.Edge())
		return LocationWire{Edge: &e}
	}
	return LocationWire{Router: string(l.Router())}
}

func (w LocationWire) location() Location {
	if w.Edge != nil {
		return AtEdge(w.Edge.edge())
	}
	return AtRouter(topology.NodeID(w.Router))
}

// filterWire serializes a filterObligation.
type filterWire struct {
	Universe     *spec.UniverseWire   `json:"universe,omitempty"`
	Map          *policy.RouteMapWire `json:"map,omitempty"`
	GhostActions []*policy.ActionWire `json:"ghost_actions,omitempty"`
	Pre          *spec.PredWire       `json:"pre"`
	Post         *spec.PredWire       `json:"post"`
	MustAccept   bool                 `json:"must_accept,omitempty"`
}

// implicationWire serializes an implicationObligation.
type implicationWire struct {
	Universe *spec.UniverseWire `json:"universe,omitempty"`
	Pre      *spec.PredWire     `json:"pre"`
	Post     *spec.PredWire     `json:"post"`
}

// originateWire serializes an originateObligation. Routes carry origination
// ghosts pre-applied; the ghost definitions themselves (functions) never
// travel.
type originateWire struct {
	Edge   EdgeWire                `json:"edge"`
	Routes []*routemodel.RouteWire `json:"routes,omitempty"`
	Inv    *spec.PredWire          `json:"inv"`
}

// ObligationWire is the serializable form of an Obligation. Exactly one of
// Filter/Implication/Originate is set, mirroring the content families.
type ObligationWire struct {
	Kind string       `json:"kind"`
	Loc  LocationWire `json:"loc"`
	Desc string       `json:"desc,omitempty"`
	Key  string       `json:"key"`

	Filter      *filterWire      `json:"filter,omitempty"`
	Implication *implicationWire `json:"implication,omitempty"`
	Originate   *originateWire   `json:"originate,omitempty"`
}

// EncodeObligation converts an obligation to wire form. It fails when the
// obligation references predicates or actions defined outside the closed
// spec/policy unions (no wire tag); the fabric treats that as "not
// remotable" and solves locally.
func EncodeObligation(ob *Obligation) (*ObligationWire, error) {
	if ob == nil {
		return nil, fmt.Errorf("core: nil obligation")
	}
	w := &ObligationWire{
		Kind: ob.Kind.String(),
		Loc:  encodeLocation(ob.Loc),
		Desc: ob.Desc,
		Key:  ob.key,
	}
	switch {
	case ob.filter != nil:
		f := ob.filter
		m, err := policy.EncodeRouteMap(f.m)
		if err != nil {
			return nil, err
		}
		ghostActs, err := policy.EncodeActions(f.ghostActs)
		if err != nil {
			return nil, err
		}
		pre, err := spec.EncodePred(f.pre)
		if err != nil {
			return nil, err
		}
		post, err := spec.EncodePred(f.post)
		if err != nil {
			return nil, err
		}
		w.Filter = &filterWire{
			Universe:     spec.EncodeUniverse(f.u),
			Map:          m,
			GhostActions: ghostActs,
			Pre:          pre,
			Post:         post,
			MustAccept:   f.mustAccept,
		}
	case ob.implication != nil:
		i := ob.implication
		pre, err := spec.EncodePred(i.pre)
		if err != nil {
			return nil, err
		}
		post, err := spec.EncodePred(i.post)
		if err != nil {
			return nil, err
		}
		w.Implication = &implicationWire{
			Universe: spec.EncodeUniverse(i.u),
			Pre:      pre,
			Post:     post,
		}
	case ob.originate != nil:
		o := ob.originate
		inv, err := spec.EncodePred(o.inv)
		if err != nil {
			return nil, err
		}
		ow := &originateWire{Edge: encodeEdge(o.e), Inv: inv}
		for _, r := range o.routes {
			ow.Routes = append(ow.Routes, routemodel.EncodeRoute(originatedWithGhosts(r, o.e, o.ghosts)))
		}
		w.Originate = ow
	default:
		return nil, fmt.Errorf("core: obligation %q has no content family", ob.key)
	}
	return w, nil
}

// kindFromString inverts CheckKind.String.
func kindFromString(s string) (CheckKind, error) {
	for _, k := range []CheckKind{ImportCheck, ExportCheck, OriginateCheck, ImplicationCheck, PropagationCheck, InterferenceCheck} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown check kind %q", s)
}

// Obligation reconstructs the obligation a wire form describes. The decoded
// obligation reports the shipped Key verbatim, so worker-side caching and
// dedup share identity with the coordinator.
func (w *ObligationWire) Obligation() (*Obligation, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil obligation wire")
	}
	kind, err := kindFromString(w.Kind)
	if err != nil {
		return nil, err
	}
	ob := &Obligation{
		Kind: kind,
		Loc:  w.Loc.location(),
		Desc: w.Desc,
		key:  w.Key,
	}
	families := 0
	if w.Filter != nil {
		families++
		f := w.Filter
		m, err := f.Map.RouteMap()
		if err != nil {
			return nil, err
		}
		ghostActs, err := policy.DecodeActions(f.GhostActions)
		if err != nil {
			return nil, err
		}
		pre, err := f.Pre.Pred()
		if err != nil {
			return nil, err
		}
		post, err := f.Post.Pred()
		if err != nil {
			return nil, err
		}
		ob.filter = &filterObligation{
			u:          f.Universe.Universe(),
			m:          m,
			ghostActs:  ghostActs,
			pre:        pre,
			post:       post,
			mustAccept: f.MustAccept,
		}
	}
	if w.Implication != nil {
		families++
		i := w.Implication
		pre, err := i.Pre.Pred()
		if err != nil {
			return nil, err
		}
		post, err := i.Post.Pred()
		if err != nil {
			return nil, err
		}
		ob.implication = &implicationObligation{u: i.Universe.Universe(), pre: pre, post: post}
	}
	if w.Originate != nil {
		families++
		o := w.Originate
		inv, err := o.Inv.Pred()
		if err != nil {
			return nil, err
		}
		routes := make([]*routemodel.Route, 0, len(o.Routes))
		for _, rw := range o.Routes {
			r, err := rw.Route()
			if err != nil {
				return nil, err
			}
			routes = append(routes, r)
		}
		ob.originate = &originateObligation{e: o.Edge.edge(), routes: routes, inv: inv}
	}
	if families != 1 {
		return nil, fmt.Errorf("core: obligation wire %q has %d content families, want 1", w.Key, families)
	}
	return ob, nil
}

// CounterexampleWire is the serializable form of a Counterexample.
type CounterexampleWire struct {
	Input  *routemodel.RouteWire `json:"input,omitempty"`
	Output *routemodel.RouteWire `json:"output,omitempty"`
	Note   string                `json:"note,omitempty"`
}

// CheckResultWire is the serializable form of a CheckResult as it travels
// back from a solver worker. Identity fields (Kind/Loc/Desc) are omitted:
// the coordinator re-stamps them from the local obligation, exactly as the
// engine re-stamps relabeled checks.
type CheckResultWire struct {
	OK             bool                `json:"ok"`
	Status         string              `json:"status"`
	Backend        string              `json:"backend,omitempty"`
	Counterexample *CounterexampleWire `json:"counterexample,omitempty"`

	NumVars     int        `json:"num_vars,omitempty"`
	NumCons     int        `json:"num_cons,omitempty"`
	NumTerms    int        `json:"num_terms,omitempty"`
	SolveTimeNS int64      `json:"solve_time_ns,omitempty"`
	TotalTimeNS int64      `json:"total_time_ns,omitempty"`
	Solver      SolveStats `json:"solver,omitempty"`
}

// statusFromString inverts Status.String.
func statusFromString(s string) (Status, error) {
	switch s {
	case "ok":
		return StatusOK, nil
	case "fail":
		return StatusFail, nil
	case "unknown":
		return StatusUnknown, nil
	default:
		return 0, fmt.Errorf("core: unknown status %q", s)
	}
}

// EncodeCheckResult converts a check result to wire form.
func EncodeCheckResult(cr CheckResult) *CheckResultWire {
	w := &CheckResultWire{
		OK:          cr.OK,
		Status:      cr.Status.String(),
		Backend:     cr.Backend,
		NumVars:     cr.NumVars,
		NumCons:     cr.NumCons,
		NumTerms:    cr.NumTerms,
		SolveTimeNS: int64(cr.SolveTime),
		TotalTimeNS: int64(cr.TotalTime),
		Solver:      cr.Solver,
	}
	if ce := cr.Counterexample; ce != nil {
		w.Counterexample = &CounterexampleWire{
			Input:  routemodel.EncodeRoute(ce.Input),
			Output: routemodel.EncodeRoute(ce.Output),
			Note:   ce.Note,
		}
	}
	return w
}

// CheckResult reconstructs the result a wire form describes. Identity
// fields are zero; the caller stamps them from the obligation it solved.
func (w *CheckResultWire) CheckResult() (CheckResult, error) {
	var cr CheckResult
	if w == nil {
		return cr, fmt.Errorf("core: nil check result wire")
	}
	status, err := statusFromString(w.Status)
	if err != nil {
		return cr, err
	}
	cr.OK = w.OK
	cr.Status = status
	cr.Backend = w.Backend
	cr.NumVars = w.NumVars
	cr.NumCons = w.NumCons
	cr.NumTerms = w.NumTerms
	cr.SolveTime = time.Duration(w.SolveTimeNS)
	cr.TotalTime = time.Duration(w.TotalTimeNS)
	cr.Solver = w.Solver
	if cw := w.Counterexample; cw != nil {
		in, err := cw.Input.Route()
		if err != nil {
			return cr, err
		}
		out, err := cw.Output.Route()
		if err != nil {
			return cr, err
		}
		cr.Counterexample = &Counterexample{Input: in, Output: out, Note: cw.Note}
	}
	// OK must mirror Status; a malformed worker response must not smuggle an
	// inconsistent pair into the cache.
	if cr.OK != (cr.Status == StatusOK) {
		return cr, fmt.Errorf("core: inconsistent wire result: ok=%v status=%s", cr.OK, cr.Status)
	}
	return cr, nil
}
