package core
