package core

import (
	"hash/fnv"
	"testing"
)

// fnv64aKey reproduces the pre-SHA-256 key scheme, kept here so the
// regression below keeps proving its inputs really collide under it.
func fnv64aKey(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// TestCheckKeyCollisionRegression pins the reason checkKey moved from
// 64-bit FNV-1a to truncated SHA-256: the strings below are a published
// FNV-1a-64 collision pair, so under the old scheme two distinct checks
// whose semantic descriptions contained them would silently share one
// cached verdict.
func TestCheckKeyCollisionRegression(t *testing.T) {
	const a, b = "8yn0iYCKYHlIj4-BwPqk", "GReLUrM4wMqfg9yzV3KQ"
	if fnv64aKey(a) != fnv64aKey(b) {
		t.Fatalf("test vectors no longer collide under FNV-1a-64: %x vs %x", fnv64aKey(a), fnv64aKey(b))
	}
	if checkKey(a) == checkKey(b) {
		t.Fatalf("checkKey still collides on the FNV-1a-64 pair: %s", checkKey(a))
	}

	// Second published pair, hashed as multi-part keys.
	const c, d = "gMPflVXtwGDXbIhP73TX", "LtHf1prlU1bCeYZEdqWf"
	if fnv64aKey("import", c) != fnv64aKey("import", d) {
		// Same-length prefixes preserve FNV collisions (the hash is a
		// running fold), so this should still collide.
		t.Logf("prefixed vectors diverged under FNV; continuing")
	}
	if checkKey("import", c) == checkKey("import", d) {
		t.Fatal("checkKey collides on prefixed FNV-1a-64 pair")
	}
}

func TestCheckKeyShapeAndSeparation(t *testing.T) {
	k := checkKey("import", "A -> B", "route-map m")
	if len(k) != 32 {
		t.Fatalf("key should be 32 hex chars (128-bit truncated SHA-256), got %d: %q", len(k), k)
	}
	if k != checkKey("import", "A -> B", "route-map m") {
		t.Fatal("checkKey must be deterministic")
	}
	// Part boundaries matter: "ab"+"c" must not equal "a"+"bc".
	if checkKey("ab", "c") == checkKey("a", "bc") {
		t.Fatal("checkKey must separate parts")
	}
}
