package core_test

import (
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestFig1LivenessVerifies(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1LivenessProblem(n)
	rep, err := core.VerifyLiveness(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("liveness should verify:\n%s", rep.Summary())
	}
	var props, impls, interf int
	for _, r := range rep.Results {
		switch r.Kind {
		case core.PropagationCheck:
			props++
		case core.ImplicationCheck:
			impls++
		case core.InterferenceCheck:
			interf++
		}
	}
	// 4 consecutive pairs on the 5-step path.
	if props != 4 {
		t.Fatalf("propagation checks = %d, want 4", props)
	}
	if impls != 1 {
		t.Fatalf("implication checks = %d, want 1", impls)
	}
	if interf == 0 {
		t.Fatal("expected no-interference sub-checks")
	}
}

func TestFig1LivenessForgottenStripFails(t *testing.T) {
	// §2.2: if R3's import does not strip 100:1, customer routes can carry
	// the transit tag and would be dropped at R2's export. The propagation
	// check at Customer -> R3 must fail.
	n := netgen.Fig1(netgen.Fig1Options{ForgetStripAtR3: true})
	p := netgen.Fig1LivenessProblem(n)
	rep, err := core.VerifyLiveness(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected liveness failure without community stripping")
	}
	foundProp := false
	for _, f := range rep.Failures() {
		if f.Kind == core.PropagationCheck && f.Loc.String() == "Customer -> R3" {
			foundProp = true
			if f.Counterexample == nil {
				t.Fatal("missing counterexample")
			}
			// Witness: a customer route carrying 100:1 that the import
			// accepts without stripping.
			if !f.Counterexample.Input.HasCommunity(netgen.CommTransit) {
				t.Fatalf("expected witness carrying 100:1: %s", f.Counterexample)
			}
		}
	}
	if !foundProp {
		t.Fatalf("no propagation failure at Customer -> R3:\n%s", rep.Summary())
	}
}

func TestLivenessPropagationRejectionFails(t *testing.T) {
	// Deny customer prefixes on R3's export to R2: the good route is
	// dropped on the path, so the export propagation check must fail with
	// a "rejects" counterexample.
	n := netgen.Fig1(netgen.Fig1Options{})
	n.SetExport(topology.Edge{From: "R3", To: "R2"}, &policy.RouteMap{
		Name: "r3-export-r2-buggy",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{netgen.HasCustPrefix()}, Permit: false},
			{Seq: 20, Permit: true},
		},
	})
	p := netgen.Fig1LivenessProblem(n)
	rep, err := core.VerifyLiveness(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected failure when the path export drops good routes")
	}
	found := false
	for _, f := range rep.Failures() {
		if f.Kind == core.PropagationCheck && f.Loc.String() == "R3 -> R2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no propagation failure at R3 -> R2:\n%s", rep.Summary())
	}
}

func TestLivenessValidation(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	good := netgen.Fig1LivenessProblem(n)

	// Empty path.
	bad := *good
	bad.Steps = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty path must be rejected")
	}

	// Non-topological path: router followed by a non-adjacent edge.
	bad = *good
	bad.Steps = append([]core.PathStep(nil), good.Steps...)
	bad.Steps[2] = core.PathStep{Loc: core.AtEdge(topology.Edge{From: "R1", To: "R2"}), Constraint: spec.True()}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-topological path must be rejected")
	}

	// Path not ending at the property location.
	bad = *good
	bad.Steps = good.Steps[:3]
	if err := bad.Validate(); err == nil {
		t.Fatal("path ending elsewhere must be rejected")
	}

	// Missing constraint.
	bad = *good
	bad.Steps = append([]core.PathStep(nil), good.Steps...)
	bad.Steps[1] = core.PathStep{Loc: bad.Steps[1].Loc}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing constraint must be rejected")
	}

	// Missing PrefixPred on a router step.
	bad = *good
	bad.Steps = append([]core.PathStep(nil), good.Steps...)
	bad.Steps[1] = core.PathStep{Loc: bad.Steps[1].Loc, Constraint: bad.Steps[1].Constraint}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing PrefixPred must be rejected")
	}

	// Missing interference invariants.
	bad = *good
	bad.InterferenceInvariants = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing interference invariants must be rejected")
	}

	// Edge not in topology.
	bad = *good
	bad.Steps = append([]core.PathStep(nil), good.Steps...)
	bad.Steps[0] = core.PathStep{Loc: core.AtEdge(topology.Edge{From: "Customer", To: "R1"}), Constraint: spec.True()}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown edge must be rejected")
	}

	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestLivenessInterferenceFailureDetected(t *testing.T) {
	// Plant a route map at R2's import from R1 that tags customer prefixes
	// with 100:1. Propagation along the path is unaffected (the path goes
	// R3 -> R2), but the no-interference obligation at R2 must fail:
	// a customer route arriving via R1 would carry 100:1 and win, then be
	// dropped at R2's export.
	n := netgen.Fig1(netgen.Fig1Options{})
	n.SetImport(topology.Edge{From: "R1", To: "R2"}, &policy.RouteMap{
		Name: "r2-import-r1-tagger",
		Clauses: []policy.Clause{
			{Seq: 10, Matches: []spec.Pred{netgen.HasCustPrefix()},
				Actions: []policy.Action{policy.AddCommunity{Comm: netgen.CommTransit}}, Permit: true},
			{Seq: 20, Permit: true},
		},
	})
	p := netgen.Fig1LivenessProblem(n)
	rep, err := core.VerifyLiveness(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected no-interference failure")
	}
	for _, f := range rep.Failures() {
		if f.Kind != core.InterferenceCheck {
			t.Fatalf("only no-interference checks should fail, got %v at %s:\n%s", f.Kind, f.Loc, rep.Summary())
		}
	}
	found := false
	for _, f := range rep.Failures() {
		if f.Loc.String() == "R1 -> R2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("interference failure should localize at R1 -> R2:\n%s", rep.Summary())
	}
}
