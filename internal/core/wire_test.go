package core_test

import (
	"context"
	"encoding/json"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// roundTrip pushes an obligation through JSON and back.
func roundTrip(t *testing.T, ob *core.Obligation) *core.Obligation {
	t.Helper()
	w, err := core.EncodeObligation(ob)
	if err != nil {
		t.Fatalf("encode %q: %v", ob.Key(), err)
	}
	blob, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal %q: %v", ob.Key(), err)
	}
	var w2 core.ObligationWire
	if err := json.Unmarshal(blob, &w2); err != nil {
		t.Fatalf("unmarshal %q: %v", ob.Key(), err)
	}
	ob2, err := w2.Obligation()
	if err != nil {
		t.Fatalf("decode %q: %v", ob.Key(), err)
	}
	return ob2
}

// TestObligationWireRoundTrip encodes every check of a ghost-bearing safety
// problem (filter, originate, and implication obligations), decodes it, and
// verifies identity (key, kind, location) and semantics (same solve verdict)
// survive the trip.
func TestObligationWireRoundTrip(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	checks := p.Checks(core.Options{})
	if len(checks) == 0 {
		t.Fatal("no checks generated")
	}
	families := map[string]bool{}
	for _, c := range checks {
		ob := c.Obligation()
		ob2 := roundTrip(t, ob)

		if ob2.Key() != ob.Key() {
			t.Fatalf("key changed: %q -> %q", ob.Key(), ob2.Key())
		}
		if ob2.Kind != ob.Kind || ob2.Loc.String() != ob.Loc.String() || ob2.Desc != ob.Desc {
			t.Fatalf("identity changed for %q", ob.Key())
		}
		if ob2.Concrete() != ob.Concrete() {
			t.Fatalf("concreteness changed for %q", ob.Key())
		}
		families[ob.Kind.String()] = true

		want := ob.Solve(context.Background(), core.SolveConfig{})
		got := ob2.Solve(context.Background(), core.SolveConfig{})
		if got.Status != want.Status || got.OK != want.OK {
			t.Fatalf("verdict changed for %q: local %v/%v, decoded %v/%v",
				ob.Key(), want.Status, want.OK, got.Status, got.OK)
		}
	}
	for _, kind := range []string{"import", "export", "originate", "implication"} {
		if !families[kind] {
			t.Fatalf("problem generated no %s check; families seen: %v", kind, families)
		}
	}
}

// TestObligationWireFailingCheck verifies a decoded obligation still finds
// the same counterexample class: a failing filter check fails remotely too.
func TestObligationWireFailingCheck(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	p := netgen.Fig1NoTransitProblem(n)
	failed := 0
	for _, c := range p.Checks(core.Options{}) {
		ob := c.Obligation()
		want := ob.Solve(context.Background(), core.SolveConfig{})
		got := roundTrip(t, ob).Solve(context.Background(), core.SolveConfig{})
		if got.Status != want.Status {
			t.Fatalf("verdict changed for %q: %v vs %v", ob.Key(), want.Status, got.Status)
		}
		if want.Status == core.StatusFail {
			failed++
			if got.Counterexample == nil || got.Counterexample.Input == nil {
				t.Fatalf("decoded failure for %q lost its counterexample", ob.Key())
			}
		}
	}
	if failed == 0 {
		t.Fatal("broken Fig1 produced no failing check")
	}
}

// TestObligationWirePigeonhole ships a named pigeonhole implication (the
// sat-stress workload) through the wire and checks the name — which is what
// check keys hash — and the hard-search verdict both survive.
func TestObligationWirePigeonhole(t *testing.T) {
	php := netgen.StressPigeonholePred(4, 3)
	if php.String() != "pigeonhole(4 pigeons, 3 holes)" {
		t.Fatalf("unexpected pigeonhole rendering %q", php.String())
	}
	n := netgen.Fig1(netgen.Fig1Options{})
	p := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(topology.Edge{From: "R2", To: "ISP2"}),
			Pred: spec.Not(php),
		},
		Invariants: core.NewInvariants(spec.Not(php)),
	}
	for _, c := range p.Checks(core.Options{}) {
		if c.Kind != core.ImplicationCheck {
			continue
		}
		ob := c.Obligation()
		ob2 := roundTrip(t, ob)
		if ob2.Key() != ob.Key() {
			t.Fatalf("pigeonhole key changed: %q -> %q", ob.Key(), ob2.Key())
		}
		_, post := ob2.Predicates()
		if post.String() != spec.Not(php).String() {
			t.Fatalf("pigeonhole name lost: %q", post.String())
		}
		want := ob.Solve(context.Background(), core.SolveConfig{})
		got := ob2.Solve(context.Background(), core.SolveConfig{})
		if got.Status != want.Status {
			t.Fatalf("pigeonhole verdict changed: %v vs %v", want.Status, got.Status)
		}
		if want.Solver.Conflicts > 0 && got.Solver.Conflicts == 0 {
			t.Fatal("decoded pigeonhole decided without search; formula structure was lost")
		}
		return
	}
	t.Fatal("no implication check generated")
}

// TestCheckResultWireRoundTrip pushes a failing result (with counterexample
// routes) through the wire.
func TestCheckResultWireRoundTrip(t *testing.T) {
	in := routemodel.NewRoute(routemodel.Prefix{Addr: 10 << 24, Len: 8})
	in.AddCommunity(routemodel.MustCommunity("100:1"))
	in.SetGhost("FromISP1", true)
	in.ASPath = []uint32{174, 3356}
	cr := core.CheckResult{
		Status:         core.StatusFail,
		Backend:        "native",
		Counterexample: &core.Counterexample{Input: in, Note: "boom"},
		NumVars:        7,
		Solver:         core.SolveStats{Conflicts: 3, Decisions: 9},
	}
	blob, err := json.Marshal(core.EncodeCheckResult(cr))
	if err != nil {
		t.Fatal(err)
	}
	var w core.CheckResultWire
	if err := json.Unmarshal(blob, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.CheckResult()
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != cr.Status || got.OK || got.Backend != "native" || got.NumVars != 7 {
		t.Fatalf("result changed: %+v", got)
	}
	if got.Solver != cr.Solver {
		t.Fatalf("solver stats changed: %+v", got.Solver)
	}
	ce := got.Counterexample
	if ce == nil || ce.Note != "boom" || ce.Input == nil {
		t.Fatalf("counterexample lost: %+v", ce)
	}
	if !ce.Input.HasCommunity(routemodel.MustCommunity("100:1")) || !ce.Input.GhostValue("FromISP1") {
		t.Fatalf("counterexample route attributes lost: %+v", ce.Input)
	}

	// A malformed pair (ok true but status fail) must be rejected, not
	// cached: this is the typed-error path for corrupt worker responses.
	bad := core.CheckResultWire{OK: true, Status: "fail"}
	if _, err := bad.CheckResult(); err == nil {
		t.Fatal("inconsistent ok/status pair decoded without error")
	}
}
