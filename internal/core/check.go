package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// CheckKind classifies a generated local check.
type CheckKind int

// Local check kinds. ImportCheck/ExportCheck/OriginateCheck are the safety
// checks of §4.2; ImplicationCheck is the final I_ℓ ⊆ P check;
// PropagationCheck and InterferenceCheck are the liveness checks of §5.2.
const (
	ImportCheck CheckKind = iota
	ExportCheck
	OriginateCheck
	ImplicationCheck
	PropagationCheck
	InterferenceCheck
)

func (k CheckKind) String() string {
	switch k {
	case ImportCheck:
		return "import"
	case ExportCheck:
		return "export"
	case OriginateCheck:
		return "originate"
	case ImplicationCheck:
		return "implication"
	case PropagationCheck:
		return "propagation"
	case InterferenceCheck:
		return "no-interference"
	}
	return fmt.Sprintf("check(%d)", int(k))
}

// Check describes one generated local check before execution.
type Check struct {
	Kind CheckKind
	Loc  Location // the edge or router the check pertains to
	Desc string
	key  string // semantic cache key for incremental verification
	run  func() CheckResult
}

// Key returns the check's semantic cache key: a hash of everything the
// check's verdict depends on (the filter's policy, the predicates involved,
// the ghost updates). Two checks with the same key decide the same formula,
// so a result may be shared between them — the hook the engine's
// cross-problem dedup and result cache are built on. An empty key means the
// check is not cacheable.
func (c Check) Key() string { return c.key }

// Run executes the check and returns its result. Checks are self-contained
// and independent, so Run may be called from any goroutine.
func (c Check) Run() CheckResult { return c.run() }

// Counterexample is a concrete witness for a failed local check: an input
// route that the filter at the named location handles in a way that violates
// the local invariant.
type Counterexample struct {
	Input  *routemodel.Route // route arriving at the filter
	Output *routemodel.Route // transformed route (nil if rejected/irrelevant)
	Note   string
}

func (c *Counterexample) String() string {
	if c == nil {
		return "<none>"
	}
	var b strings.Builder
	if c.Input != nil {
		fmt.Fprintf(&b, "input:  %s", c.Input)
	}
	if c.Output != nil {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "output: %s", c.Output)
	}
	if c.Note != "" {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "note:   %s", c.Note)
	}
	return b.String()
}

// CheckResult is the outcome of one local check.
type CheckResult struct {
	Kind           CheckKind
	Loc            Location
	Desc           string
	OK             bool
	Counterexample *Counterexample

	NumVars   int           // SAT variables in this check's formula
	NumCons   int           // CNF clauses in this check's formula
	SolveTime time.Duration // time inside the solver
	TotalTime time.Duration // encode + solve
}

// Report aggregates the results of all local checks for one verification
// problem.
type Report struct {
	Property Property
	Results  []CheckResult

	TotalTime time.Duration
}

// OK reports whether every local check passed; if so the end-to-end
// property is guaranteed (correctness theorems of §4.3 and §5.3).
func (r *Report) OK() bool {
	for i := range r.Results {
		if !r.Results[i].OK {
			return false
		}
	}
	return true
}

// Failures returns the failed check results.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for i := range r.Results {
		if !r.Results[i].OK {
			out = append(out, r.Results[i])
		}
	}
	return out
}

// NumChecks returns the number of local checks run.
func (r *Report) NumChecks() int { return len(r.Results) }

// MaxVars returns the maximum SAT variable count in any single local check —
// the quantity plotted in Figure 3b.
func (r *Report) MaxVars() int {
	m := 0
	for i := range r.Results {
		if r.Results[i].NumVars > m {
			m = r.Results[i].NumVars
		}
	}
	return m
}

// MaxCons returns the maximum CNF clause count in any single local check
// (Figure 3b).
func (r *Report) MaxCons() int {
	m := 0
	for i := range r.Results {
		if r.Results[i].NumCons > m {
			m = r.Results[i].NumCons
		}
	}
	return m
}

// SolveTime returns the summed solver time across all checks (Figure 3d's
// "constraint solving time" series).
func (r *Report) SolveTime() time.Duration {
	var t time.Duration
	for i := range r.Results {
		t += r.Results[i].SolveTime
	}
	return t
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "property: %s\n", r.Property)
	fmt.Fprintf(&b, "checks: %d, failed: %d, total time: %v\n", r.NumChecks(), len(r.Failures()), r.TotalTime)
	for _, f := range r.Failures() {
		fmt.Fprintf(&b, "FAIL [%s] at %s: %s\n", f.Kind, f.Loc, f.Desc)
		if f.Counterexample != nil {
			for _, line := range strings.Split(f.Counterexample.String(), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	if r.OK() {
		b.WriteString("all local checks passed: property verified\n")
	}
	return b.String()
}

// Options controls check execution.
type Options struct {
	// Workers is the number of checks run concurrently; 0 means GOMAXPROCS.
	// Local checks are independent, so parallelism is safe (§2's
	// "trivially parallelizable" observation).
	Workers int
	// ConflictBudget bounds SAT effort per check; 0 means unlimited.
	ConflictBudget int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SortResults orders check results deterministically by (Kind, Loc, Desc).
// Desc breaks ties when one edge carries several checks of the same kind,
// keeping reports stable across runs regardless of execution order.
func SortResults(results []CheckResult) {
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Kind != results[j].Kind {
			return results[i].Kind < results[j].Kind
		}
		if li, lj := results[i].Loc.String(), results[j].Loc.String(); li != lj {
			return li < lj
		}
		return results[i].Desc < results[j].Desc
	})
}

// NewReport assembles a report from check results, sorting them
// deterministically. It is the single result-assembly path shared by the
// in-package runners and external execution substrates such as
// internal/engine.
func NewReport(prop Property, results []CheckResult, total time.Duration) *Report {
	SortResults(results)
	return &Report{Property: prop, Results: results, TotalTime: total}
}

// CheckRunner executes a batch of independent local checks and assembles a
// report. The default implementation is LocalRunner; internal/engine
// provides a process-wide pool with cross-problem dedup and result caching.
type CheckRunner interface {
	RunChecks(prop Property, checks []Check) *Report
}

// LocalRunner returns a CheckRunner backed by a per-call worker pool with
// the given options — the classic standalone execution mode.
func LocalRunner(opts Options) CheckRunner { return localRunner{opts} }

type localRunner struct{ opts Options }

func (l localRunner) RunChecks(prop Property, checks []Check) *Report {
	return runChecks(prop, checks, l.opts)
}

// runChecks executes checks (in parallel when opts.Workers != 1) and
// assembles a report with deterministic result ordering.
func runChecks(prop Property, checks []Check, opts Options) *Report {
	start := time.Now()
	results := make([]CheckResult, len(checks))
	w := opts.workers()
	if w > len(checks) {
		w = len(checks)
	}
	if w <= 1 {
		for i := range checks {
			results[i] = checks[i].run()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = checks[i].run()
				}
			}()
		}
		for i := range checks {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return NewReport(prop, results, time.Since(start))
}

// filterCheck builds the core local check pattern shared by §4.2 (import,
// export) and §5.2 (propagation): for a filter F on edge e with ghost
// actions gs,
//
//	∀r: pre(r) ∧ r' = F(r) ⇒ (r' = Reject ∨ post(r'))    (mustAccept=false)
//	∀r: pre(r) ∧ r' = F(r) ⇒ (r' ≠ Reject ∧ post(r'))    (mustAccept=true)
//
// It is decided by asking the solver for a route violating the implication;
// UNSAT means the check holds.
func filterCheck(
	kind CheckKind,
	loc Location,
	desc string,
	u *spec.Universe,
	m *policy.RouteMap,
	ghostActs []policy.Action,
	pre, post spec.Pred,
	mustAccept bool,
	budget int64,
) Check {
	run := func() CheckResult {
		t0 := time.Now()
		ctx := smt.NewContext()
		sr := spec.NewSymRoute(ctx, "r", u)
		out, acc := m.Encode(sr)
		out = applyGhostsSym(out, ghostActs)
		wf := sr.WellFormed()

		preT := pre.Compile(sr)
		postT := post.Compile(out)

		var violation *smt.Term
		if mustAccept {
			// violated when pre ∧ (¬acc ∨ ¬post)
			violation = ctx.And(wf, preT, ctx.Or(ctx.Not(acc), ctx.Not(postT)))
		} else {
			// violated when pre ∧ acc ∧ ¬post
			violation = ctx.And(wf, preT, acc, ctx.Not(postT))
		}

		solver := smt.NewSolver(ctx)
		if budget > 0 {
			solver.SetConflictBudget(budget)
		}
		solver.Assert(violation)
		ts := time.Now()
		res := solver.Check()
		solveTime := time.Since(ts)

		cr := CheckResult{
			Kind:      kind,
			Loc:       loc,
			Desc:      desc,
			NumVars:   res.NumVars,
			NumCons:   res.NumCons,
			SolveTime: solveTime,
			TotalTime: time.Since(t0),
		}
		switch res.Status {
		case smt.Unsat:
			cr.OK = true
		case smt.Sat:
			cr.OK = false
			in := sr.ConcreteRoute(res.Model)
			ce := &Counterexample{Input: in}
			if outR, ok := m.Apply(in); ok {
				applyGhostsConcrete(outR, ghostActs)
				ce.Output = outR
				ce.Note = fmt.Sprintf("filter accepts but result violates %q", post)
			} else {
				ce.Note = "filter rejects a route the constraint requires to propagate"
			}
			cr.Counterexample = ce
		default:
			cr.OK = false
			cr.Counterexample = &Counterexample{Note: "solver budget exhausted (unknown)"}
		}
		return cr
	}
	ghostStr := ""
	for _, a := range ghostActs {
		ghostStr += a.String() + ";"
	}
	key := checkKey(kind.String(), loc.String(), m.String(), ghostStr, pre.String(), post.String(), fmt.Sprint(mustAccept))
	return Check{Kind: kind, Loc: loc, Desc: desc, key: key, run: run}
}

// implicationCheck decides pre ⊆ post (i.e., ∀r: pre(r) ⇒ post(r)) as a
// standalone check, used for I_ℓ ⊆ P and C_n ⊆ P.
func implicationCheck(loc Location, desc string, u *spec.Universe, pre, post spec.Pred, budget int64) Check {
	run := func() CheckResult {
		t0 := time.Now()
		ctx := smt.NewContext()
		sr := spec.NewSymRoute(ctx, "r", u)
		solver := smt.NewSolver(ctx)
		if budget > 0 {
			solver.SetConflictBudget(budget)
		}
		solver.Assert(ctx.And(sr.WellFormed(), pre.Compile(sr), ctx.Not(post.Compile(sr))))
		ts := time.Now()
		res := solver.Check()
		cr := CheckResult{
			Kind:      ImplicationCheck,
			Loc:       loc,
			Desc:      desc,
			NumVars:   res.NumVars,
			NumCons:   res.NumCons,
			SolveTime: time.Since(ts),
			TotalTime: time.Since(t0),
		}
		switch res.Status {
		case smt.Unsat:
			cr.OK = true
		case smt.Sat:
			cr.Counterexample = &Counterexample{
				Input: sr.ConcreteRoute(res.Model),
				Note:  fmt.Sprintf("route satisfies %q but not %q", pre, post),
			}
		default:
			cr.Counterexample = &Counterexample{Note: "solver budget exhausted (unknown)"}
		}
		return cr
	}
	key := checkKey("implication", loc.String(), pre.String(), post.String())
	return Check{Kind: ImplicationCheck, Loc: loc, Desc: desc, key: key, run: run}
}

// originateCheck validates every originated route on edge e against the
// edge invariant. Originated routes are concrete, so this check evaluates
// the predicate directly rather than calling the solver.
func originateCheck(e topology.Edge, desc string, routes []*routemodel.Route, ghosts []GhostDef, inv spec.Pred) Check {
	loc := AtEdge(e)
	run := func() CheckResult {
		t0 := time.Now()
		cr := CheckResult{Kind: OriginateCheck, Loc: loc, Desc: desc, OK: true}
		for _, r := range routes {
			withGhosts := originatedWithGhosts(r, e, ghosts)
			if !inv.Eval(withGhosts) {
				cr.OK = false
				cr.Counterexample = &Counterexample{
					Input: withGhosts,
					Note:  fmt.Sprintf("originated route violates edge invariant %q", inv),
				}
				break
			}
		}
		cr.TotalTime = time.Since(t0)
		return cr
	}
	routeStr := ""
	for _, r := range routes {
		routeStr += r.String() + ";"
	}
	ghostStr := ""
	for _, g := range ghosts {
		ghostStr += g.Name + ";"
	}
	key := checkKey("originate", loc.String(), routeStr, ghostStr, inv.String())
	return Check{Kind: OriginateCheck, Loc: loc, Desc: desc, key: key, run: run}
}
