package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// CheckKind classifies a generated local check.
type CheckKind int

// Local check kinds. ImportCheck/ExportCheck/OriginateCheck are the safety
// checks of §4.2; ImplicationCheck is the final I_ℓ ⊆ P check;
// PropagationCheck and InterferenceCheck are the liveness checks of §5.2.
const (
	ImportCheck CheckKind = iota
	ExportCheck
	OriginateCheck
	ImplicationCheck
	PropagationCheck
	InterferenceCheck
)

func (k CheckKind) String() string {
	switch k {
	case ImportCheck:
		return "import"
	case ExportCheck:
		return "export"
	case OriginateCheck:
		return "originate"
	case ImplicationCheck:
		return "implication"
	case PropagationCheck:
		return "propagation"
	case InterferenceCheck:
		return "no-interference"
	}
	return fmt.Sprintf("check(%d)", int(k))
}

// Check is one generated local check: a declarative Obligation (what must be
// proven) bound to the execution options it was generated under. Construction
// and execution are separate — SafetyProblem.Checks / LivenessProblem.Checks
// build checks without solving anything, and any execution substrate (the
// in-package runners, internal/engine, an internal/solver backend) decides
// the obligation later.
type Check struct {
	Kind CheckKind
	Loc  Location // the edge or router the check pertains to
	Desc string
	key  string // semantic cache key for incremental verification

	ob     *Obligation
	budget int64       // conflict budget from the generating Options
	solver CheckSolver // custom solver from the generating Options, nil = native
}

// newCheck binds an obligation to the generating options' execution
// parameters, mirroring the obligation's identity onto the check.
func newCheck(ob *Obligation, opts Options) Check {
	return Check{
		Kind:   ob.Kind,
		Loc:    ob.Loc,
		Desc:   ob.Desc,
		key:    ob.key,
		ob:     ob,
		budget: opts.ConflictBudget,
		solver: opts.Solver,
	}
}

// Key returns the check's semantic cache key: a hash of everything the
// check's verdict depends on (the filter's policy, the predicates involved,
// the ghost updates). Two checks with the same key decide the same formula,
// so a result may be shared between them — the hook the engine's
// cross-problem dedup and result cache are built on. An empty key means the
// check is not cacheable.
func (c Check) Key() string { return c.key }

// Obligation returns the check's declarative content. Execution substrates
// that route checks to solver backends (internal/engine) solve the
// obligation directly and stamp the result with the check's identity.
func (c Check) Obligation() *Obligation { return c.ob }

// Budget returns the conflict budget the check was generated under
// (Options.ConflictBudget; 0 = unlimited). External execution substrates
// honor it so a check batch generated with a bounded budget keeps that
// bound wherever it runs.
func (c Check) Budget() int64 { return c.budget }

// Run executes the check and returns its result. Checks are self-contained
// and independent, so Run may be called from any goroutine.
func (c Check) Run() CheckResult { return c.RunContext(context.Background()) }

// RunContext executes the check with cooperative cancellation: when ctx is
// cancelled mid-solve the result has StatusUnknown. The check's generating
// Options decide the solver (Options.Solver, native by default) and the
// conflict budget.
func (c Check) RunContext(ctx context.Context) CheckResult {
	var r CheckResult
	if c.solver != nil {
		r = c.solver(ctx, c.ob, c.budget)
	} else {
		r = c.ob.Solve(ctx, SolveConfig{ConflictBudget: c.budget})
	}
	// The obligation may be shared (relabeled checks); the result reports
	// the running check's identity.
	r.Kind, r.Loc, r.Desc = c.Kind, c.Loc, c.Desc
	return r
}

// Counterexample is a concrete witness for a failed local check: an input
// route that the filter at the named location handles in a way that violates
// the local invariant.
type Counterexample struct {
	Input  *routemodel.Route // route arriving at the filter
	Output *routemodel.Route // transformed route (nil if rejected/irrelevant)
	Note   string
}

func (c *Counterexample) String() string {
	if c == nil {
		return "<none>"
	}
	var b strings.Builder
	if c.Input != nil {
		fmt.Fprintf(&b, "input:  %s", c.Input)
	}
	if c.Output != nil {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "output: %s", c.Output)
	}
	if c.Note != "" {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "note:   %s", c.Note)
	}
	return b.String()
}

// CheckResult is the outcome of one local check.
type CheckResult struct {
	Kind CheckKind
	Loc  Location
	Desc string
	// OK mirrors Status == StatusOK; it is kept as a field because nearly
	// every consumer only needs the boolean.
	OK bool
	// Status distinguishes a proven violation (StatusFail) from an undecided
	// check (StatusUnknown — budget exhausted or cancelled). Both have
	// OK == false; only StatusFail carries a real counterexample.
	Status Status
	// Backend labels the solver path that produced the verdict ("native",
	// "portfolio/<variant>", "tiered/quick", ...). Empty for results
	// assembled outside a solver (e.g. replayed from a persistent store).
	Backend        string
	Counterexample *Counterexample

	NumVars   int           // SAT variables in this check's formula
	NumCons   int           // CNF clauses in this check's formula
	NumTerms  int           // term-graph nodes built while encoding
	SolveTime time.Duration // time inside the solver
	TotalTime time.Duration // encode + solve

	// Solver is the CDCL search provenance behind the verdict. Zero for
	// results decided without search (concrete evaluation, cache replay).
	Solver SolveStats
}

// SolveStats is the CDCL search provenance of one check: how hard the
// solver worked, not just how long it took. For escalating backends
// (tiered) the fields accumulate across tiers, mirroring SolveTime.
type SolveStats struct {
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	Learned      int64 `json:"learned"` // clauses learned during search
}

// Add accumulates o into s (used by escalating/aggregating consumers).
func (s *SolveStats) Add(o SolveStats) {
	s.Conflicts += o.Conflicts
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Restarts += o.Restarts
	s.Learned += o.Learned
}

// Depth reports whether any real search happened (any counter non-zero).
func (s SolveStats) Depth() bool {
	return s.Conflicts != 0 || s.Decisions != 0 || s.Propagations != 0 ||
		s.Restarts != 0 || s.Learned != 0
}

// Report aggregates the results of all local checks for one verification
// problem.
type Report struct {
	Property Property
	Results  []CheckResult

	TotalTime time.Duration
}

// OK reports whether every local check passed; if so the end-to-end
// property is guaranteed (correctness theorems of §4.3 and §5.3).
func (r *Report) OK() bool {
	for i := range r.Results {
		if !r.Results[i].OK {
			return false
		}
	}
	return true
}

// Failures returns every check result that did not pass — proven violations
// and undecided (Unknown) checks alike. Use HardFailures/Unknowns to tell
// them apart.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for i := range r.Results {
		if !r.Results[i].OK {
			out = append(out, r.Results[i])
		}
	}
	return out
}

// HardFailures returns the checks with a proven violation (StatusFail),
// excluding undecided checks.
func (r *Report) HardFailures() []CheckResult {
	var out []CheckResult
	for i := range r.Results {
		if r.Results[i].Status == StatusFail {
			out = append(out, r.Results[i])
		}
	}
	return out
}

// Unknowns returns the undecided checks (StatusUnknown): the solver budget
// was exhausted or the solve was cancelled before a verdict.
func (r *Report) Unknowns() []CheckResult {
	var out []CheckResult
	for i := range r.Results {
		if r.Results[i].Status == StatusUnknown {
			out = append(out, r.Results[i])
		}
	}
	return out
}

// NumChecks returns the number of local checks run.
func (r *Report) NumChecks() int { return len(r.Results) }

// MaxVars returns the maximum SAT variable count in any single local check —
// the quantity plotted in Figure 3b.
func (r *Report) MaxVars() int {
	m := 0
	for i := range r.Results {
		if r.Results[i].NumVars > m {
			m = r.Results[i].NumVars
		}
	}
	return m
}

// MaxCons returns the maximum CNF clause count in any single local check
// (Figure 3b).
func (r *Report) MaxCons() int {
	m := 0
	for i := range r.Results {
		if r.Results[i].NumCons > m {
			m = r.Results[i].NumCons
		}
	}
	return m
}

// SolveTime returns the summed solver time across all checks (Figure 3d's
// "constraint solving time" series).
func (r *Report) SolveTime() time.Duration {
	var t time.Duration
	for i := range r.Results {
		t += r.Results[i].SolveTime
	}
	return t
}

// Summary renders a human-readable report. Proven violations print as FAIL
// lines with their counterexamples; undecided checks print as UNKNOWN lines
// (the property is not refuted — the solver budget was exhausted before a
// verdict, so escalate the budget or backend to decide them).
func (r *Report) Summary() string {
	var b strings.Builder
	unknowns := r.Unknowns()
	fmt.Fprintf(&b, "property: %s\n", r.Property)
	fmt.Fprintf(&b, "checks: %d, failed: %d, unknown: %d, total time: %v\n",
		r.NumChecks(), len(r.HardFailures()), len(unknowns), r.TotalTime)
	for _, f := range r.HardFailures() {
		fmt.Fprintf(&b, "FAIL [%s] at %s: %s\n", f.Kind, f.Loc, f.Desc)
		if f.Counterexample != nil {
			for _, line := range strings.Split(f.Counterexample.String(), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	for _, u := range unknowns {
		fmt.Fprintf(&b, "UNKNOWN [%s] at %s: %s (solver budget exhausted)\n", u.Kind, u.Loc, u.Desc)
	}
	if r.OK() {
		b.WriteString("all local checks passed: property verified\n")
	}
	return b.String()
}

// Options controls check execution.
type Options struct {
	// Workers is the number of checks run concurrently; 0 means GOMAXPROCS.
	// Local checks are independent, so parallelism is safe (§2's
	// "trivially parallelizable" observation).
	Workers int
	// ConflictBudget bounds SAT effort per check; 0 means unlimited.
	ConflictBudget int64
	// Solver, when non-nil, replaces the native in-process solve for every
	// check generated under these options — the seam internal/solver's
	// backends (portfolio, tiered) adapt onto for the standalone runners;
	// internal/engine routes obligations to its own backend instead.
	Solver CheckSolver
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SortResults orders check results deterministically by (Kind, Loc, Desc).
// Desc breaks ties when one edge carries several checks of the same kind,
// keeping reports stable across runs regardless of execution order.
func SortResults(results []CheckResult) {
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Kind != results[j].Kind {
			return results[i].Kind < results[j].Kind
		}
		if li, lj := results[i].Loc.String(), results[j].Loc.String(); li != lj {
			return li < lj
		}
		return results[i].Desc < results[j].Desc
	})
}

// NewReport assembles a report from check results, sorting them
// deterministically. It is the single result-assembly path shared by the
// in-package runners and external execution substrates such as
// internal/engine.
func NewReport(prop Property, results []CheckResult, total time.Duration) *Report {
	SortResults(results)
	return &Report{Property: prop, Results: results, TotalTime: total}
}

// CheckRunner executes a batch of independent local checks and assembles a
// report. The default implementation is LocalRunner; internal/engine
// provides a process-wide pool with cross-problem dedup and result caching.
type CheckRunner interface {
	RunChecks(prop Property, checks []Check) *Report
}

// LocalRunner returns a CheckRunner backed by a per-call worker pool with
// the given options — the classic standalone execution mode.
func LocalRunner(opts Options) CheckRunner { return localRunner{opts} }

type localRunner struct{ opts Options }

func (l localRunner) RunChecks(prop Property, checks []Check) *Report {
	return runChecks(prop, checks, l.opts)
}

// runChecks executes checks (in parallel when opts.Workers != 1) and
// assembles a report with deterministic result ordering.
func runChecks(prop Property, checks []Check, opts Options) *Report {
	start := time.Now()
	results := make([]CheckResult, len(checks))
	w := opts.workers()
	if w > len(checks) {
		w = len(checks)
	}
	if w <= 1 {
		for i := range checks {
			results[i] = checks[i].Run()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = checks[i].Run()
				}
			}()
		}
		for i := range checks {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	return NewReport(prop, results, time.Since(start))
}

// filterCheck builds the core local check pattern shared by §4.2 (import,
// export) and §5.2 (propagation): for a filter F on edge e with ghost
// actions gs,
//
//	∀r: pre(r) ∧ r' = F(r) ⇒ (r' = Reject ∨ post(r'))    (mustAccept=false)
//	∀r: pre(r) ∧ r' = F(r) ⇒ (r' ≠ Reject ∧ post(r'))    (mustAccept=true)
//
// It is decided by asking the solver for a route violating the implication;
// UNSAT means the check holds. The check carries the declarative obligation;
// nothing is encoded or solved until an execution substrate decides it.
func filterCheck(
	kind CheckKind,
	loc Location,
	desc string,
	u *spec.Universe,
	m *policy.RouteMap,
	ghostActs []policy.Action,
	pre, post spec.Pred,
	mustAccept bool,
	opts Options,
) Check {
	ghostStr := ""
	for _, a := range ghostActs {
		ghostStr += a.String() + ";"
	}
	ob := &Obligation{
		Kind: kind,
		Loc:  loc,
		Desc: desc,
		key:  checkKey(kind.String(), loc.String(), m.String(), ghostStr, pre.String(), post.String(), fmt.Sprint(mustAccept)),
		filter: &filterObligation{
			u: u, m: m, ghostActs: ghostActs,
			pre: pre, post: post, mustAccept: mustAccept,
		},
	}
	return newCheck(ob, opts)
}

// implicationCheck decides pre ⊆ post (i.e., ∀r: pre(r) ⇒ post(r)) as a
// standalone check, used for I_ℓ ⊆ P and C_n ⊆ P.
func implicationCheck(loc Location, desc string, u *spec.Universe, pre, post spec.Pred, opts Options) Check {
	ob := &Obligation{
		Kind:        ImplicationCheck,
		Loc:         loc,
		Desc:        desc,
		key:         checkKey("implication", loc.String(), pre.String(), post.String()),
		implication: &implicationObligation{u: u, pre: pre, post: post},
	}
	return newCheck(ob, opts)
}

// originateCheck validates every originated route on edge e against the
// edge invariant. Originated routes are concrete, so this check evaluates
// the predicate directly rather than calling the solver.
func originateCheck(e topology.Edge, desc string, routes []*routemodel.Route, ghosts []GhostDef, inv spec.Pred, opts Options) Check {
	routeStr := ""
	for _, r := range routes {
		routeStr += r.String() + ";"
	}
	ghostStr := ""
	for _, g := range ghosts {
		ghostStr += g.Name + ";"
	}
	ob := &Obligation{
		Kind:      OriginateCheck,
		Loc:       AtEdge(e),
		Desc:      desc,
		key:       checkKey("originate", AtEdge(e).String(), routeStr, ghostStr, inv.String()),
		originate: &originateObligation{e: e, routes: routes, ghosts: ghosts, inv: inv},
	}
	return newCheck(ob, opts)
}
