package core

import (
	"fmt"

	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// SafetyProblem is the input to modular safety verification (§4.1): the
// network, the end-to-end property (ℓ, P), the per-location network
// invariants I, and any ghost attribute definitions the predicates rely on.
type SafetyProblem struct {
	Network    *topology.Network
	Property   Property
	Invariants *Invariants
	Ghosts     []GhostDef
}

// universe assembles the finite attribute alphabet for the problem.
func (p *SafetyProblem) universe() *spec.Universe {
	u := p.Network.Universe()
	p.Property.Pred.AddToUniverse(u)
	p.Invariants.AddToUniverse(u)
	addGhostsToUniverse(u, p.Ghosts)
	return u
}

// Checks generates the local checks of §4.2 without running them:
//
//   - an Import check per edge A→B with B internal, proving I_B from I_{A→B};
//   - an Export check per edge A→B with A internal, proving I_{A→B} from I_A;
//   - an Originate check per edge with originated routes;
//   - one Implication check proving I_ℓ ⊆ P.
//
// The number of checks is linear in the number of edges; each check's size
// depends only on one filter's policy, which is the source of Lightyear's
// scalability (Figure 3b).
func (p *SafetyProblem) Checks(opts Options) []Check {
	u := p.universe()
	n := p.Network
	var checks []Check
	for _, e := range n.Edges() {
		e := e
		edgeInv := p.Invariants.At(n, AtEdge(e))
		if !n.IsExternal(e.To) {
			post := p.Invariants.At(n, AtRouter(e.To))
			checks = append(checks, filterCheck(
				ImportCheck, AtEdge(e),
				fmt.Sprintf("import at %s from %s: %q ⇒ %q", e.To, e.From, edgeInv, post),
				u, n.Import(e), ghostImportActions(p.Ghosts, e),
				edgeInv, post, false, opts,
			))
		}
		if !n.IsExternal(e.From) {
			pre := p.Invariants.At(n, AtRouter(e.From))
			checks = append(checks, filterCheck(
				ExportCheck, AtEdge(e),
				fmt.Sprintf("export at %s to %s: %q ⇒ %q", e.From, e.To, pre, edgeInv),
				u, n.Export(e), ghostExportActions(p.Ghosts, e),
				pre, edgeInv, false, opts,
			))
			if routes := n.Originate(e); len(routes) > 0 {
				checks = append(checks, originateCheck(
					e, fmt.Sprintf("originated routes on %s satisfy %q", e, edgeInv),
					routes, p.Ghosts, edgeInv, opts,
				))
			}
		}
	}
	checks = append(checks, implicationCheck(
		p.Property.Loc,
		fmt.Sprintf("invariant at %s implies property", p.Property.Loc),
		u,
		p.Invariants.At(n, p.Property.Loc),
		p.Property.Pred,
		opts,
	))
	return checks
}

// VerifySafety runs all local checks for a safety problem. If the returned
// report is OK, the property holds for all valid traces — all external
// announcements and arbitrary node/link failures (Theorem §4.3, §4.5).
func VerifySafety(p *SafetyProblem, opts Options) *Report {
	return runChecks(p.Property, p.Checks(opts), opts)
}
