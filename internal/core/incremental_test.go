package core_test

import (
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestIncrementalFirstRunColdSecondRunWarm(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	iv := core.NewIncrementalVerifier(p, core.Options{})

	rep1, reused1 := iv.Run()
	if !rep1.OK() {
		t.Fatalf("first run should verify:\n%s", rep1.Summary())
	}
	if reused1 != 0 {
		t.Fatalf("first run reused %d checks, want 0", reused1)
	}
	rep2, reused2 := iv.Run()
	if !rep2.OK() {
		t.Fatal("second run should verify")
	}
	if reused2 != rep2.NumChecks() {
		t.Fatalf("second run reused %d of %d checks, want all", reused2, rep2.NumChecks())
	}
}

func TestIncrementalOnlyDirtyChecksRerun(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	iv := core.NewIncrementalVerifier(p, core.Options{})
	rep1, _ := iv.Run()
	total := rep1.NumChecks()

	// Change one import policy: only checks involving that policy should
	// re-run.
	n.SetImport(topology.Edge{From: "R1", To: "R3"}, &policy.RouteMap{
		Name: "r3-import-r1-v2",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.SetLocalPref{Value: 80}}, Permit: true},
		},
	})
	rep2, reused := iv.Run()
	if !rep2.OK() {
		t.Fatalf("still verifiable after benign change:\n%s", rep2.Summary())
	}
	if reused != total-1 {
		t.Fatalf("reused %d of %d, want %d (exactly one dirty check)", reused, total, total-1)
	}
}

func TestIncrementalDetectsNewBug(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	iv := core.NewIncrementalVerifier(p, core.Options{})
	iv.Run()

	// Introduce the community-stripping bug.
	n.SetImport(topology.Edge{From: "R1", To: "R2"}, &policy.RouteMap{
		Name: "r2-import-r1-buggy",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.ClearCommunities{}}, Permit: true},
		},
	})
	rep, _ := iv.Run()
	if rep.OK() {
		t.Fatal("bug must be detected on incremental re-run")
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Loc.String() != "R1 -> R2" {
		t.Fatalf("bug should localize at R1 -> R2:\n%s", rep.Summary())
	}

	// Fix it again: cache must not mask the fix.
	n.SetImport(topology.Edge{From: "R1", To: "R2"}, nil)
	rep3, _ := iv.Run()
	if !rep3.OK() {
		t.Fatalf("fix not picked up:\n%s", rep3.Summary())
	}
}

func TestIncrementalInvariantChangeInvalidatesAll(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	iv := core.NewIncrementalVerifier(p, core.Options{})
	iv.Run()

	// Strengthen the default invariant: every check that uses it is dirty.
	p.Invariants.Default = spec.And(
		spec.Implies(spec.Ghost("FromISP1"), spec.HasCommunity(netgen.CommTransit)),
		spec.True(),
	)
	_, reused := iv.Run()
	if reused != 0 {
		// Only checks not involving the default could be reused; in Fig1
		// the only such check is the edge-invariant implication and the
		// R2->ISP2 export uses the default as pre. All checks reference it.
		t.Logf("reused = %d (acceptable if some checks don't mention the default)", reused)
	}
	if iv.CacheSize() == 0 {
		t.Fatal("cache should be repopulated")
	}
}

// TestIncrementalVerifierDoesNotRetainUnknown: a budget-exhausted result is
// not a verdict and must be re-solved on the next Run, not served from the
// verifier's private cache.
func TestIncrementalVerifierDoesNotRetainUnknown(t *testing.T) {
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)
	iv := core.NewIncrementalVerifier(p, core.Options{ConflictBudget: 1})
	rep1, _ := iv.Run()
	unknown := len(rep1.Unknowns())
	if unknown == 0 {
		t.Fatal("stress problem decided under a 1-conflict budget; expected unknowns")
	}
	rep2, reused := iv.Run()
	if len(rep2.Unknowns()) != unknown {
		t.Fatalf("second run unknowns = %d, want %d", len(rep2.Unknowns()), unknown)
	}
	if reused > rep2.NumChecks()-unknown {
		t.Fatalf("reused %d of %d checks; the %d unknowns must not be served from cache",
			reused, rep2.NumChecks(), unknown)
	}
}
