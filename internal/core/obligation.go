package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Status is the explicit verdict of one local check: the check passed, a
// concrete violation exists, or the solver gave up before deciding (budget
// exhausted or cancelled). Unknown is deliberately distinct from Fail — an
// undecided check does not witness a bug, it witnesses insufficient solver
// effort, and callers escalate or report the two differently.
type Status int

const (
	// StatusOK means the check's violation formula is unsatisfiable: the
	// local invariant holds.
	StatusOK Status = iota
	// StatusFail means a concrete counterexample was found.
	StatusFail
	// StatusUnknown means the solver stopped before a verdict (conflict
	// budget exhausted or cooperative cancellation).
	StatusUnknown
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFail:
		return "fail"
	case StatusUnknown:
		return "unknown"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Obligation is the declarative description of one local check: what must be
// proven (kind, location, predicates, route-map and ghost references,
// polarity), divorced from how it is decided. Obligations are built by
// SafetyProblem.Checks / LivenessProblem.Checks, inspected or encoded by
// solver backends (internal/solver), and are immutable once built — the same
// obligation may be encoded and solved concurrently by racing backends, each
// in its own smt.Context.
//
// Exactly one content family is populated: a filter obligation (import,
// export, propagation — the §4.2/§5.2 pattern over one route map), an
// implication obligation (I_ℓ ⊆ P and C_n ⊆ P), or an originate obligation
// (concrete originated routes checked against an edge invariant, no solver
// involved).
type Obligation struct {
	Kind CheckKind
	Loc  Location
	Desc string
	key  string

	filter      *filterObligation
	implication *implicationObligation
	originate   *originateObligation
}

// filterObligation is the §4.2/§5.2 filter check content: for filter m on
// the obligation's edge with ghost actions gs,
//
//	∀r: pre(r) ∧ r' = m(r) ⇒ (r' = Reject ∨ post(r'))    (mustAccept=false)
//	∀r: pre(r) ∧ r' = m(r) ⇒ (r' ≠ Reject ∧ post(r'))    (mustAccept=true)
type filterObligation struct {
	u          *spec.Universe
	m          *policy.RouteMap
	ghostActs  []policy.Action
	pre, post  spec.Pred
	mustAccept bool
}

// implicationObligation is the standalone pre ⊆ post check content.
type implicationObligation struct {
	u         *spec.Universe
	pre, post spec.Pred
}

// originateObligation validates concrete originated routes against an edge
// invariant; it is evaluated directly, never encoded.
type originateObligation struct {
	e      topology.Edge
	routes []*routemodel.Route
	ghosts []GhostDef
	inv    spec.Pred
}

// Key returns the obligation's semantic cache key (see Check.Key).
func (ob *Obligation) Key() string { return ob.key }

// Concrete reports whether the obligation is decided by direct evaluation of
// concrete routes (originate checks) rather than a solver query. Backends
// short-circuit concrete obligations: racing or budget-tiering them is
// pointless.
func (ob *Obligation) Concrete() bool { return ob.originate != nil }

// RouteMap returns the route map a filter obligation constrains, nil for
// implication and originate obligations.
func (ob *Obligation) RouteMap() *policy.RouteMap {
	if ob.filter == nil {
		return nil
	}
	return ob.filter.m
}

// Predicates returns the obligation's (pre, post) predicate pair: the edge or
// router invariants of a filter obligation, or the implication's two sides.
// Originate obligations return (nil, inv).
func (ob *Obligation) Predicates() (pre, post spec.Pred) {
	switch {
	case ob.filter != nil:
		return ob.filter.pre, ob.filter.post
	case ob.implication != nil:
		return ob.implication.pre, ob.implication.post
	case ob.originate != nil:
		return nil, ob.originate.inv
	}
	return nil, nil
}

// GhostActions returns the ghost attribute updates a filter obligation
// applies to the filter's output, nil otherwise.
func (ob *Obligation) GhostActions() []policy.Action {
	if ob.filter == nil {
		return nil
	}
	return ob.filter.ghostActs
}

// MustAccept reports the filter obligation's polarity: true for the §5.2
// propagation form (the filter must accept and transform), false for the
// §4.2 safety form (accepted routes must satisfy the invariant).
func (ob *Obligation) MustAccept() bool {
	return ob.filter != nil && ob.filter.mustAccept
}

// symRouteName is the variable-name prefix every obligation encoding uses
// for its symbolic route, so a model extracted from any encoding of an
// obligation can be re-read by Witness.
const symRouteName = "r"

// Encode builds the obligation's violation formula in ctx: a boolean term
// that is satisfiable iff the local check fails. Each call encodes afresh,
// so concurrent backends encode in private contexts. Concrete (originate)
// obligations have no formula; Encode returns nil for them — use
// EvalConcrete instead.
func (ob *Obligation) Encode(ctx *smt.Context) *smt.Term {
	switch {
	case ob.filter != nil:
		f := ob.filter
		sr := spec.NewSymRoute(ctx, symRouteName, f.u)
		out, acc := f.m.Encode(sr)
		out = applyGhostsSym(out, f.ghostActs)
		wf := sr.WellFormed()
		preT := f.pre.Compile(sr)
		postT := f.post.Compile(out)
		if f.mustAccept {
			// violated when pre ∧ (¬acc ∨ ¬post)
			return ctx.And(wf, preT, ctx.Or(ctx.Not(acc), ctx.Not(postT)))
		}
		// violated when pre ∧ acc ∧ ¬post
		return ctx.And(wf, preT, acc, ctx.Not(postT))
	case ob.implication != nil:
		i := ob.implication
		sr := spec.NewSymRoute(ctx, symRouteName, i.u)
		return ctx.And(sr.WellFormed(), i.pre.Compile(sr), ctx.Not(i.post.Compile(sr)))
	default:
		return nil
	}
}

// Witness reconstructs the concrete counterexample a satisfying model of
// Encode's formula describes. The model addresses variables by name, so it
// may come from any solver instance that decided any encoding of this
// obligation.
func (ob *Obligation) Witness(m *smt.Model) *Counterexample {
	switch {
	case ob.filter != nil:
		f := ob.filter
		sr := spec.NewSymRoute(smt.NewContext(), symRouteName, f.u)
		in := sr.ConcreteRoute(m)
		ce := &Counterexample{Input: in}
		if outR, ok := f.m.Apply(in); ok {
			applyGhostsConcrete(outR, f.ghostActs)
			ce.Output = outR
			ce.Note = fmt.Sprintf("filter accepts but result violates %q", f.post)
		} else {
			ce.Note = "filter rejects a route the constraint requires to propagate"
		}
		return ce
	case ob.implication != nil:
		i := ob.implication
		sr := spec.NewSymRoute(smt.NewContext(), symRouteName, i.u)
		return &Counterexample{
			Input: sr.ConcreteRoute(m),
			Note:  fmt.Sprintf("route satisfies %q but not %q", i.pre, i.post),
		}
	default:
		return nil
	}
}

// EvalConcrete decides a concrete (originate) obligation by direct
// evaluation. It panics for symbolic obligations.
func (ob *Obligation) EvalConcrete() (bool, *Counterexample) {
	o := ob.originate
	if o == nil {
		panic("core: EvalConcrete on a symbolic obligation")
	}
	for _, r := range o.routes {
		withGhosts := originatedWithGhosts(r, o.e, o.ghosts)
		if !o.inv.Eval(withGhosts) {
			return false, &Counterexample{
				Input: withGhosts,
				Note:  fmt.Sprintf("originated route violates edge invariant %q", o.inv),
			}
		}
	}
	return true, nil
}

// SolveConfig parameterizes one native in-process solve of an obligation.
// The zero value is the stock configuration: unlimited conflicts, VSIDS,
// Luby restarts, negative default phase.
type SolveConfig struct {
	// ConflictBudget bounds SAT conflicts; 0 means unlimited.
	ConflictBudget int64
	// DisableVSIDS switches to a static variable order.
	DisableVSIDS bool
	// DisableRestarts turns off Luby restarts.
	DisableRestarts bool
	// PositivePhase branches fresh variables true-first.
	PositivePhase bool
	// Backend labels the result (CheckResult.Backend); empty means "native".
	Backend string
}

// Solve decides the obligation with the in-process SAT solver under cfg,
// honoring ctx cancellation cooperatively (a cancelled solve returns
// StatusUnknown). It is the native execution path shared by Check.Run and
// internal/solver's backends; portfolio backends call it concurrently with
// different configs, each solve building its own smt.Context.
func (ob *Obligation) Solve(ctx context.Context, cfg SolveConfig) CheckResult {
	t0 := time.Now()
	cr := CheckResult{
		Kind:    ob.Kind,
		Loc:     ob.Loc,
		Desc:    ob.Desc,
		Backend: cfg.Backend,
	}
	if cr.Backend == "" {
		cr.Backend = "native"
	}

	if ob.Concrete() {
		ok, ce := ob.EvalConcrete()
		cr.OK = ok
		if !ok {
			cr.Status = StatusFail
			cr.Counterexample = ce
		}
		cr.TotalTime = time.Since(t0)
		return cr
	}

	if ctx.Err() != nil {
		// Already cancelled: don't pay for encoding a formula nobody will
		// wait for (portfolio losers whose race is over hit this path).
		cr.Status = StatusUnknown
		cr.Counterexample = &Counterexample{Note: "solve cancelled (unknown)"}
		cr.TotalTime = time.Since(t0)
		return cr
	}

	smtCtx := smt.NewContext()
	solver := smt.NewSolver(smtCtx)
	if cfg.ConflictBudget > 0 {
		solver.SetConflictBudget(cfg.ConflictBudget)
	}
	solver.SetDisableVSIDS(cfg.DisableVSIDS)
	solver.SetDisableRestarts(cfg.DisableRestarts)
	solver.SetPositivePhase(cfg.PositivePhase)
	if done := ctx.Done(); done != nil {
		// The SAT solver polls an atomic flag; bridge ctx cancellation onto
		// it. The watcher exits when the solve finishes, so it never leaks.
		var interrupt atomic.Bool
		solver.SetInterrupt(&interrupt)
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				interrupt.Store(true)
			case <-finished:
			}
		}()
	}
	solver.Assert(ob.Encode(smtCtx))

	ts := time.Now()
	res := solver.Check()
	cr.SolveTime = time.Since(ts)
	cr.NumVars = res.NumVars
	cr.NumCons = res.NumCons
	cr.NumTerms = res.NumTerms
	cr.Solver = SolveStats{
		Conflicts:    res.Stats.Conflicts,
		Decisions:    res.Stats.Decisions,
		Propagations: res.Stats.Propagations,
		Restarts:     res.Stats.Restarts,
		Learned:      res.Stats.LearnedTotal,
	}

	switch res.Status {
	case smt.Unsat:
		cr.OK = true
		cr.Status = StatusOK
	case smt.Sat:
		cr.Status = StatusFail
		cr.Counterexample = ob.Witness(res.Model)
	default:
		cr.Status = StatusUnknown
		note := "solver budget exhausted (unknown)"
		if ctx.Err() != nil {
			note = "solve cancelled (unknown)"
		}
		cr.Counterexample = &Counterexample{Note: note}
	}
	cr.TotalTime = time.Since(t0)
	return cr
}

// CheckSolver is the seam through which alternative solving strategies plug
// into check execution without core depending on them: internal/solver
// adapts its backends onto this signature. The solver must stamp the
// returned result's Status and may label Backend; Kind/Loc/Desc are
// overwritten by the caller with the running check's identity.
type CheckSolver func(ctx context.Context, ob *Obligation, conflictBudget int64) CheckResult
