package core_test

import (
	"strings"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestFig1NoTransitVerifies(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{})
	if !rep.OK() {
		t.Fatalf("expected all checks to pass:\n%s", rep.Summary())
	}
	// Table 2 structure: one import check per internal-destination edge,
	// one export check per internal-source edge, origination checks, plus
	// the final implication.
	var imports, exports, origs, impls int
	for _, res := range rep.Results {
		switch res.Kind {
		case core.ImportCheck:
			imports++
		case core.ExportCheck:
			exports++
		case core.OriginateCheck:
			origs++
		case core.ImplicationCheck:
			impls++
		}
	}
	// 12 directed edges: 9 have internal destination (3 external-dest),
	// 9 have internal source.
	if imports != 9 || exports != 9 {
		t.Fatalf("imports=%d exports=%d, want 9/9", imports, exports)
	}
	if origs != 3 {
		t.Fatalf("origs=%d, want 3 (R1 originates on 3 edges)", origs)
	}
	if impls != 1 {
		t.Fatalf("impls=%d, want 1", impls)
	}
}

func TestFig1MissingTagLocalizedAtR1Import(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{})
	if rep.OK() {
		t.Fatal("expected failure with missing 100:1 tag")
	}
	fails := rep.Failures()
	if len(fails) != 1 {
		t.Fatalf("want exactly 1 failed check (localization), got %d:\n%s", len(fails), rep.Summary())
	}
	f := fails[0]
	if f.Kind != core.ImportCheck {
		t.Fatalf("failure kind = %v, want import", f.Kind)
	}
	if f.Loc.String() != "ISP1 -> R1" {
		t.Fatalf("failure localized at %s, want ISP1 -> R1", f.Loc)
	}
	ce := f.Counterexample
	if ce == nil || ce.Input == nil {
		t.Fatal("missing counterexample")
	}
	// The witness route must be accepted yet violate the key invariant:
	// FromISP1 set but no 100:1 community on the output.
	if ce.Output == nil {
		t.Fatalf("counterexample should include the accepted output, got: %s", ce)
	}
	if !ce.Output.GhostValue("FromISP1") {
		t.Fatalf("output should be marked FromISP1: %s", ce.Output)
	}
	if ce.Output.HasCommunity(netgen.CommTransit) {
		t.Fatalf("output should be missing 100:1: %s", ce.Output)
	}
}

func TestFig1StrippingBugLocalized(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{StripAtR2: true})
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{})
	if rep.OK() {
		t.Fatal("expected failure when R2 strips communities")
	}
	for _, f := range rep.Failures() {
		if f.Loc.String() == "R1 -> R2" && f.Kind == core.ImportCheck {
			return
		}
	}
	t.Fatalf("no failure at R1 -> R2 import:\n%s", rep.Summary())
}

func TestFig1MissingExportFilterLocalized(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{SkipExportFilter: true})
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{})
	if rep.OK() {
		t.Fatal("expected failure without the export filter")
	}
	fails := rep.Failures()
	if len(fails) != 1 {
		t.Fatalf("want 1 failure, got %d:\n%s", len(fails), rep.Summary())
	}
	if fails[0].Kind != core.ExportCheck || fails[0].Loc.String() != "R2 -> ISP2" {
		t.Fatalf("failure at %v %s, want export R2 -> ISP2", fails[0].Kind, fails[0].Loc)
	}
}

func TestSafetySequentialMatchesParallel(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	p := netgen.Fig1NoTransitProblem(n)
	seq := core.VerifySafety(p, core.Options{Workers: 1})
	par := core.VerifySafety(p, core.Options{Workers: 8})
	if seq.OK() != par.OK() || len(seq.Failures()) != len(par.Failures()) {
		t.Fatal("parallel and sequential runs disagree")
	}
	if len(seq.Results) != len(par.Results) {
		t.Fatal("result counts differ")
	}
	for i := range seq.Results {
		if seq.Results[i].Kind != par.Results[i].Kind || seq.Results[i].Loc.String() != par.Results[i].Loc.String() || seq.Results[i].OK != par.Results[i].OK {
			t.Fatalf("result %d differs between sequential and parallel", i)
		}
	}
}

func TestImplicationCheckFailure(t *testing.T) {
	// Property strictly stronger than the invariant at the location: the
	// implication check must fail even though all filter checks pass.
	n := netgen.Fig1(netgen.Fig1Options{})
	exitEdge := topology.Edge{From: "R2", To: "ISP2"}
	fromISP1 := spec.Ghost("FromISP1")
	keyInv := spec.Implies(fromISP1, spec.HasCommunity(netgen.CommTransit))
	inv := core.NewInvariants(keyInv)
	inv.SetEdge(exitEdge, spec.Not(fromISP1))
	p := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc: core.AtEdge(exitEdge),
			// Stronger than the invariant: also forbids 100:2.
			Pred: spec.And(spec.Not(fromISP1), spec.Not(spec.HasCommunity(routemodel.MustCommunity("100:2")))),
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{netgen.FromISP1Ghost(n)},
	}
	rep := core.VerifySafety(p, core.Options{})
	if rep.OK() {
		t.Fatal("expected implication failure")
	}
	fails := rep.Failures()
	if len(fails) != 1 || fails[0].Kind != core.ImplicationCheck {
		t.Fatalf("want 1 implication failure:\n%s", rep.Summary())
	}
}

func TestOriginateCheckFailure(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	// Originate a route that violates the default invariant: carries
	// nothing wrong by itself, so instead use an invariant that the
	// origination violates — require all routes on R1->R2 to carry 100:9.
	must := routemodel.MustCommunity("100:9")
	inv := core.NewInvariants(spec.True())
	inv.SetEdge(topology.Edge{From: "R1", To: "R2"}, spec.HasCommunity(must))
	p := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(topology.Edge{From: "R1", To: "R2"}),
			Pred: spec.True(),
		},
		Invariants: inv,
	}
	rep := core.VerifySafety(p, core.Options{})
	ok := false
	for _, f := range rep.Failures() {
		if f.Kind == core.OriginateCheck && f.Loc.String() == "R1 -> R2" {
			ok = true
			if f.Counterexample == nil || f.Counterexample.Input == nil {
				t.Fatal("originate failure missing counterexample")
			}
		}
	}
	if !ok {
		t.Fatalf("expected originate failure at R1 -> R2:\n%s", rep.Summary())
	}
}

func TestGhostWaypoint(t *testing.T) {
	// Verify a waypoint property on Figure 1: every route reaching R2 from
	// R1's direction has passed through R1. Property: at edge R1 -> R2,
	// WaypointR1 holds.
	n := netgen.Fig1(netgen.Fig1Options{})
	wp := core.GhostWaypoint("ViaR1", n, "R1")
	inv := core.NewInvariants(spec.True())
	inv.SetEdge(topology.Edge{From: "R1", To: "R2"}, spec.Ghost("ViaR1"))
	p := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(topology.Edge{From: "R1", To: "R2"}),
			Pred: spec.Ghost("ViaR1"),
			Desc: "routes on R1->R2 passed through R1",
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{wp},
	}
	rep := core.VerifySafety(p, core.Options{})
	if !rep.OK() {
		t.Fatalf("waypoint property should verify:\n%s", rep.Summary())
	}
}

func TestReportSummaryAndStats(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{})
	if rep.MaxVars() <= 0 || rep.MaxCons() <= 0 {
		t.Fatalf("expected positive formula stats, got vars=%d cons=%d", rep.MaxVars(), rep.MaxCons())
	}
	s := rep.Summary()
	if !strings.Contains(s, "all local checks passed") {
		t.Fatalf("summary: %s", s)
	}
	if rep.NumChecks() != len(rep.Results) {
		t.Fatal("NumChecks mismatch")
	}
}

func TestFailureResilienceMeaning(t *testing.T) {
	// §4.5: safety verification makes no assumptions about which paths are
	// up, so deleting internal edges (a "failure") can only remove checks,
	// never turn a passing network into a failing one. Simulate by
	// verifying a variant topology with the R1-R3 session removed.
	n := topology.New()
	n.AddRouter("R1", 65000)
	n.AddRouter("R2", 65000)
	n.AddRouter("R3", 65000)
	n.AddExternal("ISP1", 174)
	n.AddExternal("ISP2", 3356)
	n.AddExternal("Customer", 64512)
	n.AddPeering("ISP1", "R1")
	n.AddPeering("ISP2", "R2")
	n.AddPeering("Customer", "R3")
	n.AddPeering("R1", "R2")
	n.AddPeering("R2", "R3")
	// no R1-R3 peering: link "failed"

	full := netgen.Fig1(netgen.Fig1Options{})
	for _, e := range n.Edges() {
		if full.HasEdge(e) {
			n.SetImport(e, full.Import(e))
			n.SetExport(e, full.Export(e))
		}
	}
	p := netgen.Fig1NoTransitProblem(n)
	rep := core.VerifySafety(p, core.Options{})
	if !rep.OK() {
		t.Fatalf("property must survive link failure:\n%s", rep.Summary())
	}
}
