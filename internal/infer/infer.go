// Package infer implements the invariant-learning extension sketched in the
// paper's conclusion (§8): "we believe it is possible to instead learn local
// invariants automatically from configurations in the future, for example
// when properties are enforced via communities."
//
// Given a network and a provenance ghost attribute (FromX, marking routes
// imported from a designated set of external neighbors), InferKeyInvariant
// searches for a community C such that the candidate key invariant
//
//	FromX(r) ⇒ C ∈ Comm(r)
//
// is locally inductive: established by every import from a FromX source,
// and preserved by every other filter in the network. Candidates are mined
// from the configurations themselves — the communities added by the source
// imports — and validated with the same SMT checks the verifier uses, so an
// inferred invariant is sound by construction.
package infer

import (
	"fmt"
	"sort"

	"lightyear/internal/core"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// Result describes one inferred invariant candidate.
type Result struct {
	// Comm is the community implementing the tagging scheme.
	Comm routemodel.Community
	// Invariant is the learned key invariant FromX ⇒ Comm.
	Invariant spec.Pred
	// Inductive reports whether the invariant passed all local checks.
	Inductive bool
	// FailedAt names the first filter breaking inductiveness (when not
	// inductive), which is itself useful feedback: it is where the tagging
	// discipline is violated.
	FailedAt string
}

// InferKeyInvariant mines candidate communities from the import filters on
// edges whose ghost update sets ghostName, then checks each candidate's key
// invariant for inductiveness. It returns all candidates, inductive ones
// first; callers typically take the first inductive result and hand it to
// core.NewInvariants.
func InferKeyInvariant(n *topology.Network, ghost core.GhostDef) []Result {
	candidates := mineCandidates(n, ghost)
	results := make([]Result, 0, len(candidates))
	for _, c := range candidates {
		inv := spec.Implies(spec.Ghost(ghost.Name), spec.HasCommunity(c))
		r := Result{Comm: c, Invariant: inv}
		r.Inductive, r.FailedAt = checkInductive(n, ghost, inv)
		results = append(results, r)
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Inductive != results[j].Inductive {
			return results[i].Inductive
		}
		return results[i].Comm < results[j].Comm
	})
	return results
}

// mineCandidates collects communities added unconditionally by permit
// clauses of import maps on the ghost's source edges — the signature of a
// community-based tagging scheme.
func mineCandidates(n *topology.Network, ghost core.GhostDef) []routemodel.Community {
	seen := make(map[routemodel.Community]struct{})
	for _, e := range n.Edges() {
		if ghost.OnImport == nil {
			continue
		}
		v, set := ghost.OnImport(e)
		if !set || !v {
			continue // not a source edge for this ghost
		}
		m := n.Import(e)
		if m == nil {
			continue
		}
		for i := range m.Clauses {
			cl := &m.Clauses[i]
			if !cl.Permit {
				continue
			}
			for _, a := range cl.Actions {
				if add, ok := a.(policy.AddCommunity); ok {
					seen[add.Comm] = struct{}{}
				}
			}
		}
	}
	out := make([]routemodel.Community, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkInductive validates the candidate invariant with the verifier's own
// machinery: all import/export/originate checks of the safety problem whose
// default invariant is the candidate must pass. The property is set to the
// invariant itself at an arbitrary internal location so only inductiveness
// is tested.
func checkInductive(n *topology.Network, ghost core.GhostDef, inv spec.Pred) (bool, string) {
	routers := n.Routers()
	if len(routers) == 0 {
		return false, "no routers"
	}
	problem := &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtRouter(routers[0]),
			Pred: inv,
			Desc: "inferred key invariant inductiveness",
		},
		Invariants: core.NewInvariants(inv),
		Ghosts:     []core.GhostDef{ghost},
	}
	rep := core.VerifySafety(problem, core.Options{})
	if rep.OK() {
		return true, ""
	}
	f := rep.Failures()[0]
	return false, fmt.Sprintf("%s at %s", f.Kind, f.Loc)
}

// InferNoTransitProblem assembles a complete safety problem for the common
// no-transit pattern using a learned invariant: "routes from the ghost's
// sources are never sent on exitEdge". It returns an error when no
// inductive tagging invariant exists in the configuration — with the first
// candidate's failure location as a diagnosis.
func InferNoTransitProblem(n *topology.Network, ghost core.GhostDef, exitEdge topology.Edge) (*core.SafetyProblem, error) {
	results := InferKeyInvariant(n, ghost)
	if len(results) == 0 {
		return nil, fmt.Errorf("infer: no community tagging found on %s source imports", ghost.Name)
	}
	best := results[0]
	if !best.Inductive {
		return nil, fmt.Errorf("infer: no inductive invariant; closest candidate %s fails at %s", best.Comm, best.FailedAt)
	}
	inv := core.NewInvariants(best.Invariant)
	inv.SetEdge(exitEdge, spec.Not(spec.Ghost(ghost.Name)))
	return &core.SafetyProblem{
		Network: n,
		Property: core.Property{
			Loc:  core.AtEdge(exitEdge),
			Pred: spec.Not(spec.Ghost(ghost.Name)),
			Desc: fmt.Sprintf("no-transit via learned invariant (%s tagged %s)", ghost.Name, best.Comm),
		},
		Invariants: inv,
		Ghosts:     []core.GhostDef{ghost},
	}, nil
}
