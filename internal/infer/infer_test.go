package infer_test

import (
	"strings"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/infer"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

func TestInferFindsFig1TaggingScheme(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	results := infer.InferKeyInvariant(n, netgen.FromISP1Ghost(n))
	if len(results) == 0 {
		t.Fatal("no candidates mined")
	}
	best := results[0]
	if !best.Inductive {
		t.Fatalf("expected inductive invariant, got failure at %s", best.FailedAt)
	}
	if best.Comm != netgen.CommTransit {
		t.Fatalf("learned community %s, want 100:1", best.Comm)
	}
}

func TestInferredProblemVerifies(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	prob, err := infer.InferNoTransitProblem(n, netgen.FromISP1Ghost(n), topology.Edge{From: "R2", To: "ISP2"})
	if err != nil {
		t.Fatal(err)
	}
	rep := core.VerifySafety(prob, core.Options{})
	if !rep.OK() {
		t.Fatalf("inferred problem should verify:\n%s", rep.Summary())
	}
}

func TestInferDiagnosesStrippingBug(t *testing.T) {
	// With the community-stripping bug at R2, the tagging scheme is not
	// inductive; inference must fail and point at the breaking filter.
	n := netgen.Fig1(netgen.Fig1Options{StripAtR2: true})
	_, err := infer.InferNoTransitProblem(n, netgen.FromISP1Ghost(n), topology.Edge{From: "R2", To: "ISP2"})
	if err == nil {
		t.Fatal("expected inference failure with stripping bug")
	}
	if !strings.Contains(err.Error(), "R1 -> R2") {
		t.Fatalf("diagnosis should name the breaking filter: %v", err)
	}
}

func TestInferNoTaggingFound(t *testing.T) {
	// A network whose source import adds no community yields no candidates.
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	_, err := infer.InferNoTransitProblem(n, netgen.FromISP1Ghost(n), topology.Edge{From: "R2", To: "ISP2"})
	if err == nil {
		t.Fatal("expected no-candidate error")
	}
}

func TestInferOnFullMesh(t *testing.T) {
	n := netgen.FullMesh(6)
	prob, err := infer.InferNoTransitProblem(n, netgen.FullMeshGhost(n), netgen.FullMeshExitEdge())
	if err != nil {
		t.Fatal(err)
	}
	rep := core.VerifySafety(prob, core.Options{})
	if !rep.OK() {
		t.Fatalf("inferred full-mesh problem should verify:\n%s", rep.Summary())
	}
}

func TestInferPicksInductiveAmongMany(t *testing.T) {
	// The source import adds two communities, but one of them is stripped
	// later in the network; inference must pick the surviving one.
	n := netgen.Fig1(netgen.Fig1Options{})
	weak := routemodel.MustCommunity("9:9")
	imp := n.Import(topology.Edge{From: "ISP1", To: "R1"})
	imp.Clauses[1].Actions = append(imp.Clauses[1].Actions, policy.AddCommunity{Comm: weak})
	n.SetImport(topology.Edge{From: "R1", To: "R2"}, &policy.RouteMap{
		Name: "strip-weak",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.DeleteCommunity{Comm: weak}}, Permit: true},
		},
	})
	results := infer.InferKeyInvariant(n, netgen.FromISP1Ghost(n))
	if len(results) < 2 {
		t.Fatalf("want 2 candidates, got %d", len(results))
	}
	if !results[0].Inductive || results[0].Comm != netgen.CommTransit {
		t.Fatalf("best candidate should be inductive 100:1, got %+v", results[0])
	}
	var weakRes *infer.Result
	for i := range results {
		if results[i].Comm == weak {
			weakRes = &results[i]
		}
	}
	if weakRes == nil || weakRes.Inductive {
		t.Fatalf("9:9 should be a non-inductive candidate: %+v", weakRes)
	}
}

func TestInferredInvariantMatchesHandWritten(t *testing.T) {
	// The learned invariant must be logically identical to the Table-2 one.
	n := netgen.Fig1(netgen.Fig1Options{})
	results := infer.InferKeyInvariant(n, netgen.FromISP1Ghost(n))
	want := spec.Implies(spec.Ghost("FromISP1"), spec.HasCommunity(netgen.CommTransit))
	if results[0].Invariant.String() != want.String() {
		t.Fatalf("learned %q, want %q", results[0].Invariant, want)
	}
}
