// Package smt provides a quantifier-free SMT layer over the CDCL SAT core in
// internal/smt/sat. It supports the boolean theory plus fixed-width
// bitvectors (QF_BV), which is the fragment needed to encode BGP route-map
// semantics: route attributes are bitvectors (prefix, length, local-pref,
// MED, AS-path length) and booleans (community membership, ghost attributes).
//
// Formulas are built through a Context, which hash-conses terms so that
// structurally equal terms are pointer-equal, and applies light constant
// folding and identity simplifications at construction time. A built formula
// is decided by Solve, which performs Tseitin CNF conversion and bit-blasting
// and returns a Model on SAT.
package smt

import (
	"fmt"
	"strings"
)

// Op identifies a term constructor.
type Op int

// Term operators.
const (
	OpBoolConst Op = iota
	OpBoolVar
	OpNot
	OpAnd
	OpOr
	OpXor
	OpImplies
	OpIff
	OpIteBool // ite(cond, thenBool, elseBool)

	OpBVConst
	OpBVVar
	OpBVNot
	OpBVAnd
	OpBVOr
	OpBVXor
	OpBVAdd
	OpBVSub
	OpIteBV // ite(cond, thenBV, elseBV)
	OpExtract
	OpConcat

	OpEq  // bitvector equality -> bool
	OpUlt // unsigned less-than -> bool
	OpUle // unsigned less-or-equal -> bool
)

func (o Op) String() string {
	switch o {
	case OpBoolConst:
		return "const"
	case OpBoolVar:
		return "var"
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpImplies:
		return "=>"
	case OpIff:
		return "<=>"
	case OpIteBool, OpIteBV:
		return "ite"
	case OpBVConst:
		return "bvconst"
	case OpBVVar:
		return "bvvar"
	case OpBVNot:
		return "bvnot"
	case OpBVAnd:
		return "bvand"
	case OpBVOr:
		return "bvor"
	case OpBVXor:
		return "bvxor"
	case OpBVAdd:
		return "bvadd"
	case OpBVSub:
		return "bvsub"
	case OpExtract:
		return "extract"
	case OpConcat:
		return "concat"
	case OpEq:
		return "="
	case OpUlt:
		return "bvult"
	case OpUle:
		return "bvule"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Term is an immutable, hash-consed formula node. Terms must be created
// through a Context; two terms from the same Context are structurally equal
// iff they are pointer-equal.
type Term struct {
	op    Op
	width int     // bit width for bitvector-sorted terms; 0 for bool
	kids  []*Term // operands
	name  string  // variable name (OpBoolVar, OpBVVar)
	cval  uint64  // constant value (OpBVConst; OpBoolConst uses 0/1)
	lo    int     // OpExtract low bit
	id    int     // unique id within the Context
}

// Op returns the operator of the term.
func (t *Term) Op() Op { return t.op }

// Width returns the bit width for bitvector terms, 0 for boolean terms.
func (t *Term) Width() int { return t.width }

// IsBool reports whether the term has boolean sort.
func (t *Term) IsBool() bool { return t.width == 0 }

// Name returns the variable name for variable terms.
func (t *Term) Name() string { return t.name }

// ID returns the hash-consing identity of the term within its Context.
func (t *Term) ID() int { return t.id }

// Kids returns the operand terms. The returned slice must not be modified.
func (t *Term) Kids() []*Term { return t.kids }

// ConstValue returns the constant value of OpBVConst/OpBoolConst terms.
func (t *Term) ConstValue() uint64 { return t.cval }

// String renders the term as an s-expression (for debugging and tests).
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.op {
	case OpBoolConst:
		if t.cval != 0 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case OpBoolVar, OpBVVar:
		b.WriteString(t.name)
	case OpBVConst:
		fmt.Fprintf(b, "#x%x[%d]", t.cval, t.width)
	case OpExtract:
		fmt.Fprintf(b, "(extract %d %d ", t.lo+t.width-1, t.lo)
		t.kids[0].write(b)
		b.WriteString(")")
	default:
		b.WriteString("(")
		b.WriteString(t.op.String())
		for _, k := range t.kids {
			b.WriteString(" ")
			k.write(b)
		}
		b.WriteString(")")
	}
}

// key is the hash-consing key for a term.
type key struct {
	op    Op
	width int
	name  string
	cval  uint64
	lo    int
	kids  string // packed kid ids
}

// Context creates and hash-conses terms. A Context is not safe for
// concurrent use; verification workers each build formulas in their own
// Context.
type Context struct {
	table  map[key]*Term
	nextID int

	tt *Term // canonical true
	ff *Term // canonical false
}

// NewContext returns an empty term context.
func NewContext() *Context {
	c := &Context{table: make(map[key]*Term)}
	c.tt = c.intern(&Term{op: OpBoolConst, cval: 1})
	c.ff = c.intern(&Term{op: OpBoolConst, cval: 0})
	return c
}

// NumTerms returns the number of distinct terms created in this context.
func (c *Context) NumTerms() int { return c.nextID }

func kidsKey(kids []*Term) string {
	var b strings.Builder
	for _, k := range kids {
		fmt.Fprintf(&b, "%d,", k.id)
	}
	return b.String()
}

func (c *Context) intern(t *Term) *Term {
	k := key{op: t.op, width: t.width, name: t.name, cval: t.cval, lo: t.lo, kids: kidsKey(t.kids)}
	if existing, ok := c.table[k]; ok {
		return existing
	}
	t.id = c.nextID
	c.nextID++
	c.table[k] = t
	return t
}

// True returns the boolean constant true.
func (c *Context) True() *Term { return c.tt }

// False returns the boolean constant false.
func (c *Context) False() *Term { return c.ff }

// Bool returns the boolean constant for v.
func (c *Context) Bool(v bool) *Term {
	if v {
		return c.tt
	}
	return c.ff
}

// BoolVar returns the boolean variable with the given name. Calling it twice
// with the same name yields the same term.
func (c *Context) BoolVar(name string) *Term {
	return c.intern(&Term{op: OpBoolVar, name: name})
}

// BV returns a bitvector constant of the given width. The value is truncated
// to the width.
func (c *Context) BV(value uint64, width int) *Term {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("smt: invalid bitvector width %d", width))
	}
	if width < 64 {
		value &= (1 << width) - 1
	}
	return c.intern(&Term{op: OpBVConst, width: width, cval: value})
}

// BVVar returns the bitvector variable with the given name and width.
func (c *Context) BVVar(name string, width int) *Term {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("smt: invalid bitvector width %d", width))
	}
	t := c.intern(&Term{op: OpBVVar, width: width, name: name})
	if t.width != width {
		panic(fmt.Sprintf("smt: bitvector variable %q redeclared with width %d (was %d)", name, width, t.width))
	}
	return t
}

func (c *Context) checkBool(t *Term, who string) {
	if !t.IsBool() {
		panic(fmt.Sprintf("smt: %s requires boolean operand, got width-%d bitvector", who, t.width))
	}
}

func (c *Context) checkBVPair(a, b *Term, who string) {
	if a.IsBool() || b.IsBool() {
		panic(fmt.Sprintf("smt: %s requires bitvector operands", who))
	}
	if a.width != b.width {
		panic(fmt.Sprintf("smt: %s width mismatch: %d vs %d", who, a.width, b.width))
	}
}

// Not returns the negation of a boolean term.
func (c *Context) Not(t *Term) *Term {
	c.checkBool(t, "not")
	switch t.op {
	case OpBoolConst:
		return c.Bool(t.cval == 0)
	case OpNot:
		return t.kids[0]
	}
	return c.intern(&Term{op: OpNot, kids: []*Term{t}})
}

// And returns the conjunction of the given boolean terms. And() is true.
func (c *Context) And(ts ...*Term) *Term {
	var out []*Term
	for _, t := range ts {
		c.checkBool(t, "and")
		if t == c.ff {
			return c.ff
		}
		if t == c.tt {
			continue
		}
		if t.op == OpAnd {
			out = append(out, t.kids...)
			continue
		}
		out = append(out, t)
	}
	out = dedupe(out)
	switch len(out) {
	case 0:
		return c.tt
	case 1:
		return out[0]
	}
	for _, t := range out {
		if contains(out, negOf(c, t)) {
			return c.ff
		}
	}
	return c.intern(&Term{op: OpAnd, kids: out})
}

// Or returns the disjunction of the given boolean terms. Or() is false.
func (c *Context) Or(ts ...*Term) *Term {
	var out []*Term
	for _, t := range ts {
		c.checkBool(t, "or")
		if t == c.tt {
			return c.tt
		}
		if t == c.ff {
			continue
		}
		if t.op == OpOr {
			out = append(out, t.kids...)
			continue
		}
		out = append(out, t)
	}
	out = dedupe(out)
	switch len(out) {
	case 0:
		return c.ff
	case 1:
		return out[0]
	}
	for _, t := range out {
		if contains(out, negOf(c, t)) {
			return c.tt
		}
	}
	return c.intern(&Term{op: OpOr, kids: out})
}

func negOf(c *Context, t *Term) *Term {
	if t.op == OpNot {
		return t.kids[0]
	}
	return c.intern(&Term{op: OpNot, kids: []*Term{t}})
}

func dedupe(ts []*Term) []*Term {
	seen := make(map[*Term]struct{}, len(ts))
	out := ts[:0]
	for _, t := range ts {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

func contains(ts []*Term, t *Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// Xor returns exclusive-or of two boolean terms.
func (c *Context) Xor(a, b *Term) *Term {
	c.checkBool(a, "xor")
	c.checkBool(b, "xor")
	if a == b {
		return c.ff
	}
	if a == c.ff {
		return b
	}
	if b == c.ff {
		return a
	}
	if a == c.tt {
		return c.Not(b)
	}
	if b == c.tt {
		return c.Not(a)
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpXor, kids: []*Term{a, b}})
}

// Implies returns a => b.
func (c *Context) Implies(a, b *Term) *Term {
	c.checkBool(a, "implies")
	c.checkBool(b, "implies")
	if a == c.tt {
		return b
	}
	if a == c.ff || b == c.tt {
		return c.tt
	}
	if b == c.ff {
		return c.Not(a)
	}
	if a == b {
		return c.tt
	}
	return c.intern(&Term{op: OpImplies, kids: []*Term{a, b}})
}

// Iff returns a <=> b.
func (c *Context) Iff(a, b *Term) *Term {
	c.checkBool(a, "iff")
	c.checkBool(b, "iff")
	if a == b {
		return c.tt
	}
	if a == c.tt {
		return b
	}
	if b == c.tt {
		return a
	}
	if a == c.ff {
		return c.Not(b)
	}
	if b == c.ff {
		return c.Not(a)
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpIff, kids: []*Term{a, b}})
}

// Ite returns if-then-else over booleans or bitvectors, dispatching on the
// sort of the branches (which must agree).
func (c *Context) Ite(cond, then, els *Term) *Term {
	c.checkBool(cond, "ite condition")
	if then.IsBool() != els.IsBool() || then.width != els.width {
		panic("smt: ite branch sorts differ")
	}
	if cond == c.tt {
		return then
	}
	if cond == c.ff {
		return els
	}
	if then == els {
		return then
	}
	if then.IsBool() {
		if then == c.tt && els == c.ff {
			return cond
		}
		if then == c.ff && els == c.tt {
			return c.Not(cond)
		}
		return c.intern(&Term{op: OpIteBool, kids: []*Term{cond, then, els}})
	}
	return c.intern(&Term{op: OpIteBV, width: then.width, kids: []*Term{cond, then, els}})
}

// Eq returns bitvector equality a = b (a boolean term). For boolean operands
// it returns Iff.
func (c *Context) Eq(a, b *Term) *Term {
	if a.IsBool() && b.IsBool() {
		return c.Iff(a, b)
	}
	c.checkBVPair(a, b, "=")
	if a == b {
		return c.tt
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.cval == b.cval)
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpEq, kids: []*Term{a, b}})
}

// Ult returns unsigned a < b.
func (c *Context) Ult(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvult")
	if a == b {
		return c.ff
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.cval < b.cval)
	}
	return c.intern(&Term{op: OpUlt, kids: []*Term{a, b}})
}

// Ule returns unsigned a <= b.
func (c *Context) Ule(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvule")
	if a == b {
		return c.tt
	}
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.Bool(a.cval <= b.cval)
	}
	return c.intern(&Term{op: OpUle, kids: []*Term{a, b}})
}

// Ugt returns unsigned a > b.
func (c *Context) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// Uge returns unsigned a >= b.
func (c *Context) Uge(a, b *Term) *Term { return c.Ule(b, a) }

// Add returns bitvector addition (modular).
func (c *Context) Add(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvadd")
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.cval+b.cval, a.width)
	}
	if a.op == OpBVConst && a.cval == 0 {
		return b
	}
	if b.op == OpBVConst && b.cval == 0 {
		return a
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpBVAdd, width: a.width, kids: []*Term{a, b}})
}

// Sub returns bitvector subtraction (modular).
func (c *Context) Sub(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvsub")
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.cval-b.cval, a.width)
	}
	if b.op == OpBVConst && b.cval == 0 {
		return a
	}
	if a == b {
		return c.BV(0, a.width)
	}
	return c.intern(&Term{op: OpBVSub, width: a.width, kids: []*Term{a, b}})
}

// BVNot returns bitwise complement.
func (c *Context) BVNot(a *Term) *Term {
	if a.IsBool() {
		panic("smt: bvnot requires a bitvector")
	}
	if a.op == OpBVConst {
		return c.BV(^a.cval, a.width)
	}
	if a.op == OpBVNot {
		return a.kids[0]
	}
	return c.intern(&Term{op: OpBVNot, width: a.width, kids: []*Term{a}})
}

// BVAnd returns bitwise and.
func (c *Context) BVAnd(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvand")
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.cval&b.cval, a.width)
	}
	if a == b {
		return a
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpBVAnd, width: a.width, kids: []*Term{a, b}})
}

// BVOr returns bitwise or.
func (c *Context) BVOr(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvor")
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.cval|b.cval, a.width)
	}
	if a == b {
		return a
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpBVOr, width: a.width, kids: []*Term{a, b}})
}

// BVXor returns bitwise xor.
func (c *Context) BVXor(a, b *Term) *Term {
	c.checkBVPair(a, b, "bvxor")
	if a.op == OpBVConst && b.op == OpBVConst {
		return c.BV(a.cval^b.cval, a.width)
	}
	if a == b {
		return c.BV(0, a.width)
	}
	if a.id > b.id {
		a, b = b, a
	}
	return c.intern(&Term{op: OpBVXor, width: a.width, kids: []*Term{a, b}})
}

// Extract returns bits [lo+width-1 : lo] of a bitvector.
func (c *Context) Extract(a *Term, lo, width int) *Term {
	if a.IsBool() {
		panic("smt: extract requires a bitvector")
	}
	if lo < 0 || width <= 0 || lo+width > a.width {
		panic(fmt.Sprintf("smt: extract [%d+%d] out of range for width %d", lo, width, a.width))
	}
	if lo == 0 && width == a.width {
		return a
	}
	if a.op == OpBVConst {
		return c.BV(a.cval>>uint(lo), width)
	}
	return c.intern(&Term{op: OpExtract, width: width, lo: lo, kids: []*Term{a}})
}

// Concat returns the concatenation hi ++ lo (hi in the upper bits).
func (c *Context) Concat(hi, lo *Term) *Term {
	if hi.IsBool() || lo.IsBool() {
		panic("smt: concat requires bitvectors")
	}
	w := hi.width + lo.width
	if w > 64 {
		panic("smt: concat exceeds 64 bits")
	}
	if hi.op == OpBVConst && lo.op == OpBVConst {
		return c.BV(hi.cval<<uint(lo.width)|lo.cval, w)
	}
	return c.intern(&Term{op: OpConcat, width: w, kids: []*Term{hi, lo}})
}
