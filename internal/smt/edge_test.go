package smt

import (
	"math/rand"
	"testing"
)

func TestOneBitVectors(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 1)
	y := c.BVVar("y", 1)
	// x + y = 0 and x < y forces x=0... but 0+1=1 != 0; actually x<y with
	// width 1 forces x=0,y=1, sum=1. So the conjunction is unsat.
	f := c.And(c.Eq(c.Add(x, y), c.BV(0, 1)), c.Ult(x, y))
	if Solve(c, f).Status != Unsat {
		t.Fatal("want unsat")
	}
	// x xor y = 1 is sat with x != y.
	g := c.Eq(c.BVXor(x, y), c.BV(1, 1))
	res := Solve(c, g)
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	if res.Model.BV("x") == res.Model.BV("y") {
		t.Fatal("xor model wrong")
	}
}

func TestSixtyFourBitVectors(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 64)
	big := uint64(0xDEADBEEFCAFEBABE)
	res := Solve(c, c.Eq(x, c.BV(big, 64)))
	if res.Status != Sat || res.Model.BV("x") != big {
		t.Fatalf("64-bit equality: %v %x", res.Status, res.Model.BV("x"))
	}
	// Overflow wraps: max + 1 = 0.
	f := c.Eq(c.Add(c.BV(^uint64(0), 64), c.BV(1, 64)), c.BV(0, 64))
	if f != c.True() {
		t.Fatal("constant fold of 64-bit wraparound")
	}
}

func TestNestedConcatExtract(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 16)
	// Rebuild x from its nibbles; must equal x for all x.
	n0 := c.Extract(x, 0, 4)
	n1 := c.Extract(x, 4, 4)
	n2 := c.Extract(x, 8, 4)
	n3 := c.Extract(x, 12, 4)
	rebuilt := c.Concat(c.Concat(n3, n2), c.Concat(n1, n0))
	if res := Solve(c, c.Not(c.Eq(rebuilt, x))); res.Status != Unsat {
		t.Fatalf("nibble rebuild should be identity: %v", res.Status)
	}
}

func TestDeepIteChain(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	acc := c.BV(0, 8)
	for i := 0; i < 40; i++ {
		cond := c.Eq(x, c.BV(uint64(i), 8))
		acc = c.Ite(cond, c.BV(uint64(i*2), 8), acc)
	}
	// When x = 13, the chain yields 26.
	f := c.And(c.Eq(x, c.BV(13, 8)), c.Eq(acc, c.BV(26, 8)))
	if Solve(c, f).Status != Sat {
		t.Fatal("ite chain broken")
	}
	g := c.And(c.Eq(x, c.BV(13, 8)), c.Not(c.Eq(acc, c.BV(26, 8))))
	if Solve(c, g).Status != Unsat {
		t.Fatal("ite chain must be deterministic")
	}
}

func TestBVOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 40; iter++ {
		w := 1 + rng.Intn(16)
		mask := uint64(1)<<w - 1
		a := rng.Uint64() & mask
		b := rng.Uint64() & mask
		c := NewContext()
		x := c.BVVar("x", w)
		y := c.BVVar("y", w)
		f := c.And(
			c.Eq(x, c.BV(a, w)),
			c.Eq(y, c.BV(b, w)),
		)
		checks := []struct {
			got  *Term
			want uint64
		}{
			{c.Add(x, y), (a + b) & mask},
			{c.Sub(x, y), (a - b) & mask},
			{c.BVAnd(x, y), a & b},
			{c.BVOr(x, y), a | b},
			{c.BVXor(x, y), a ^ b},
			{c.BVNot(x), ^a & mask},
		}
		s := NewSolver(c)
		s.Assert(f)
		obs := make([]*Term, len(checks))
		for i, ch := range checks {
			obs[i] = c.BVVar("obs"+string(rune('a'+i)), w)
			s.Assert(c.Eq(obs[i], ch.got))
		}
		res := s.Check()
		if res.Status != Sat {
			t.Fatalf("iter %d: unsat", iter)
		}
		for i, ch := range checks {
			if got := res.Model.BV("obs" + string(rune('a'+i))); got != ch.want {
				t.Fatalf("iter %d width %d op %d: got %x want %x (a=%x b=%x)", iter, w, i, got, ch.want, a, b)
			}
		}
	}
}

func TestUnconstrainedModelDefaults(t *testing.T) {
	c := NewContext()
	a := c.BoolVar("a")
	res := Solve(c, c.Or(a, c.Not(a))) // tautology simplifies to true
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	// Variables never lowered have default values.
	if res.Model.Bool("never") || res.Model.BV("neverbv") != 0 {
		t.Fatal("defaults wrong")
	}
	if res.Model.HasBool("never") || res.Model.HasBV("neverbv") {
		t.Fatal("HasBool/HasBV must report absence")
	}
}

func TestSolverReuseManyChecks(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	s := NewSolver(c)
	for i := 0; i < 20; i++ {
		s.Assert(c.Not(c.Eq(x, c.BV(uint64(i), 8))))
		res := s.Check()
		if res.Status != Sat {
			t.Fatalf("round %d: want sat", i)
		}
		if v := res.Model.BV("x"); v < uint64(i+1) {
			t.Fatalf("round %d: model %d excluded", i, v)
		}
	}
}

func TestExtractOutOfRangePanics(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Extract(x, 5, 4) // 5+4 > 8
}

func TestConcatOver64Panics(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 40)
	y := c.BVVar("y", 40)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Concat(x, y)
}

func TestIteSortMismatchPanics(t *testing.T) {
	c := NewContext()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Ite(c.BoolVar("c"), c.BoolVar("a"), c.BV(1, 4))
}

func TestEvalCoversAllOps(t *testing.T) {
	c := NewContext()
	m := &Model{bools: map[string]bool{"p": true}, bvs: map[string]uint64{"x": 5, "y": 3}}
	x := c.BVVar("x", 4)
	y := c.BVVar("y", 4)
	p := c.BoolVar("p")
	cases := []struct {
		t    *Term
		want uint64
	}{
		{c.And(p, c.True()), 1},
		{c.Or(c.Not(p), c.False()), 0},
		{c.Xor(p, c.False()), 1},
		{c.Implies(p, c.False()), 0},
		{c.Iff(p, c.True()), 1},
		{c.Ite(p, c.BV(9, 4), c.BV(1, 4)), 9},
		{c.Eq(x, c.BV(5, 4)), 1},
		{c.Ult(y, x), 1},
		{c.Ule(x, y), 0},
		{c.Add(x, y), 8},
		{c.Sub(y, x), 14},
		{c.BVAnd(x, y), 1},
		{c.BVOr(x, y), 7},
		{c.BVXor(x, y), 6},
		{c.BVNot(x), 10},
		{c.Extract(x, 1, 2), 2},
		{c.Concat(x, y), 0x53},
	}
	for i, tc := range cases {
		if got := Eval(tc.t, m); got != tc.want {
			t.Errorf("case %d (%v): got %d want %d", i, tc.t, got, tc.want)
		}
	}
}
