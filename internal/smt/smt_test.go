package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashConsing(t *testing.T) {
	c := NewContext()
	a := c.BoolVar("a")
	b := c.BoolVar("b")
	if c.BoolVar("a") != a {
		t.Fatal("BoolVar not hash-consed")
	}
	if c.And(a, b) != c.And(a, b) {
		t.Fatal("And not hash-consed")
	}
	if c.BV(5, 8) != c.BV(5, 8) {
		t.Fatal("BV const not hash-consed")
	}
}

func TestBoolSimplifications(t *testing.T) {
	c := NewContext()
	a := c.BoolVar("a")
	cases := []struct {
		got, want *Term
		name      string
	}{
		{c.And(), c.True(), "empty and"},
		{c.Or(), c.False(), "empty or"},
		{c.And(a, c.True()), a, "and true"},
		{c.And(a, c.False()), c.False(), "and false"},
		{c.Or(a, c.False()), a, "or false"},
		{c.Or(a, c.True()), c.True(), "or true"},
		{c.And(a, a), a, "and idempotent"},
		{c.Or(a, a), a, "or idempotent"},
		{c.And(a, c.Not(a)), c.False(), "and contradiction"},
		{c.Or(a, c.Not(a)), c.True(), "or excluded middle"},
		{c.Not(c.Not(a)), a, "double negation"},
		{c.Not(c.True()), c.False(), "not true"},
		{c.Implies(c.True(), a), a, "true implies"},
		{c.Implies(c.False(), a), c.True(), "false implies"},
		{c.Implies(a, a), c.True(), "self implication"},
		{c.Iff(a, a), c.True(), "self iff"},
		{c.Xor(a, a), c.False(), "self xor"},
		{c.Ite(c.True(), a, c.False()), a, "ite true"},
		{c.Ite(c.False(), a, c.True()), c.True(), "ite false"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestBVConstFolding(t *testing.T) {
	c := NewContext()
	if c.Add(c.BV(200, 8), c.BV(100, 8)) != c.BV(44, 8) {
		t.Fatal("modular add folding")
	}
	if c.Sub(c.BV(1, 8), c.BV(2, 8)) != c.BV(255, 8) {
		t.Fatal("modular sub folding")
	}
	if c.Eq(c.BV(5, 8), c.BV(5, 8)) != c.True() {
		t.Fatal("eq folding")
	}
	if c.Ult(c.BV(3, 8), c.BV(5, 8)) != c.True() {
		t.Fatal("ult folding")
	}
	if c.Extract(c.BV(0xAB, 8), 4, 4) != c.BV(0xA, 4) {
		t.Fatal("extract folding")
	}
	if c.Concat(c.BV(0xA, 4), c.BV(0xB, 4)) != c.BV(0xAB, 8) {
		t.Fatal("concat folding")
	}
	if c.BVNot(c.BV(0, 4)) != c.BV(0xF, 4) {
		t.Fatal("bvnot folding")
	}
}

func TestSolveSimpleBool(t *testing.T) {
	c := NewContext()
	a := c.BoolVar("a")
	b := c.BoolVar("b")
	res := Solve(c, c.And(a, c.Not(b)))
	if res.Status != Sat {
		t.Fatalf("got %v, want sat", res.Status)
	}
	if !res.Model.Bool("a") || res.Model.Bool("b") {
		t.Fatalf("bad model: a=%v b=%v", res.Model.Bool("a"), res.Model.Bool("b"))
	}
	res = Solve(c, c.And(a, c.Not(a)))
	if res.Status != Unsat {
		t.Fatalf("contradiction: got %v, want unsat", res.Status)
	}
}

func TestSolveBVEquality(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	res := Solve(c, c.Eq(x, c.BV(42, 8)))
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	if res.Model.BV("x") != 42 {
		t.Fatalf("x = %d, want 42", res.Model.BV("x"))
	}
}

func TestSolveBVArithmetic(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	y := c.BVVar("y", 8)
	// x + y = 10 and x < y
	f := c.And(c.Eq(c.Add(x, y), c.BV(10, 8)), c.Ult(x, y))
	res := Solve(c, f)
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	xv, yv := res.Model.BV("x"), res.Model.BV("y")
	if (xv+yv)&0xFF != 10 || xv >= yv {
		t.Fatalf("model x=%d y=%d does not satisfy", xv, yv)
	}
}

func TestSolveBVUnsat(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 4)
	// x < 3 and x > 10 is unsat.
	f := c.And(c.Ult(x, c.BV(3, 4)), c.Ugt(x, c.BV(10, 4)))
	if res := Solve(c, f); res.Status != Unsat {
		t.Fatalf("got %v, want unsat", res.Status)
	}
}

func TestSolveSubtraction(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	f := c.Eq(c.Sub(c.BV(5, 8), x), c.BV(10, 8))
	res := Solve(c, f)
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	if got := res.Model.BV("x"); got != 251 {
		t.Fatalf("x = %d, want 251 (5-10 mod 256)", got)
	}
}

func TestSolveIte(t *testing.T) {
	c := NewContext()
	p := c.BoolVar("p")
	x := c.BVVar("x", 8)
	// x = ite(p, 1, 2) and x = 2 forces p false.
	f := c.And(c.Eq(x, c.Ite(p, c.BV(1, 8), c.BV(2, 8))), c.Eq(x, c.BV(2, 8)))
	res := Solve(c, f)
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	if res.Model.Bool("p") {
		t.Fatal("p must be false")
	}
}

func TestSolveConcatExtract(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	hi := c.Extract(x, 4, 4)
	lo := c.Extract(x, 0, 4)
	// swap halves and require result = 0x2F with x = 0xF2
	f := c.And(
		c.Eq(x, c.BV(0xF2, 8)),
		c.Eq(c.Concat(lo, hi), c.BV(0x2F, 8)),
	)
	if res := Solve(c, f); res.Status != Sat {
		t.Fatalf("got %v, want sat", res.Status)
	}
}

func TestUleBoundaries(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 4)
	// x <= 0 forces x = 0.
	res := Solve(c, c.Ule(x, c.BV(0, 4)))
	if res.Status != Sat || res.Model.BV("x") != 0 {
		t.Fatalf("x <= 0: status=%v x=%d", res.Status, res.Model.BV("x"))
	}
	// 15 <= x forces x = 15.
	res = Solve(c, c.Ule(c.BV(15, 4), x))
	if res.Status != Sat || res.Model.BV("x") != 15 {
		t.Fatalf("15 <= x: status=%v x=%d", res.Status, res.Model.BV("x"))
	}
}

func TestIncrementalAssert(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 8)
	s := NewSolver(c)
	s.Assert(c.Ult(x, c.BV(10, 8)))
	if s.Check().Status != Sat {
		t.Fatal("want sat")
	}
	s.Assert(c.Ugt(x, c.BV(5, 8)))
	res := s.Check()
	if res.Status != Sat {
		t.Fatal("want sat")
	}
	if v := res.Model.BV("x"); v <= 5 || v >= 10 {
		t.Fatalf("x = %d out of (5,10)", v)
	}
	s.Assert(c.Eq(x, c.BV(3, 8)))
	if s.Check().Status != Unsat {
		t.Fatal("want unsat")
	}
}

// TestModelValidatesByEval: for random formulas, if the solver says SAT then
// Eval must confirm the model satisfies the formula; this cross-checks the
// bit-blaster against the independent recursive evaluator.
func TestModelValidatesByEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 60; iter++ {
		c := NewContext()
		f := randomFormula(c, rng, 4)
		res := Solve(c, f)
		if res.Status == Sat {
			if Eval(f, res.Model) != 1 {
				t.Fatalf("iter %d: model does not satisfy %v", iter, f)
			}
		}
	}
}

// TestSolverMatchesBruteForceEval cross-checks SAT/UNSAT verdicts against
// exhaustive enumeration of the (small) variable space.
func TestSolverMatchesBruteForceEval(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		c := NewContext()
		f := randomFormula(c, rng, 3)
		res := Solve(c, f)
		want := false
		// Variables used: p0,p1 bool; x0,x1 of width 3.
		for pm := 0; pm < 4 && !want; pm++ {
			for x0 := uint64(0); x0 < 8 && !want; x0++ {
				for x1 := uint64(0); x1 < 8 && !want; x1++ {
					m := &Model{
						bools: map[string]bool{"p0": pm&1 != 0, "p1": pm&2 != 0},
						bvs:   map[string]uint64{"x0": x0, "x1": x1},
					}
					if Eval(f, m) == 1 {
						want = true
					}
				}
			}
		}
		got := res.Status == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v formula=%v", iter, got, want, f)
		}
	}
}

// randomFormula builds a random boolean formula over p0,p1 (bool) and x0,x1
// (bitvectors of width 3).
func randomFormula(c *Context, rng *rand.Rand, depth int) *Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(5) {
		case 0:
			return c.BoolVar("p0")
		case 1:
			return c.BoolVar("p1")
		case 2:
			return c.Eq(randomBV(c, rng, depth), randomBV(c, rng, depth))
		case 3:
			return c.Ult(randomBV(c, rng, depth), randomBV(c, rng, depth))
		default:
			return c.Ule(randomBV(c, rng, depth), randomBV(c, rng, depth))
		}
	}
	switch rng.Intn(6) {
	case 0:
		return c.And(randomFormula(c, rng, depth-1), randomFormula(c, rng, depth-1))
	case 1:
		return c.Or(randomFormula(c, rng, depth-1), randomFormula(c, rng, depth-1))
	case 2:
		return c.Not(randomFormula(c, rng, depth-1))
	case 3:
		return c.Implies(randomFormula(c, rng, depth-1), randomFormula(c, rng, depth-1))
	case 4:
		return c.Iff(randomFormula(c, rng, depth-1), randomFormula(c, rng, depth-1))
	default:
		return c.Ite(randomFormula(c, rng, depth-1), randomFormula(c, rng, depth-1), randomFormula(c, rng, depth-1))
	}
}

func randomBV(c *Context, rng *rand.Rand, depth int) *Term {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return c.BVVar("x0", 3)
		case 1:
			return c.BVVar("x1", 3)
		default:
			return c.BV(uint64(rng.Intn(8)), 3)
		}
	}
	switch rng.Intn(4) {
	case 0:
		return c.Add(randomBV(c, rng, depth-1), randomBV(c, rng, depth-1))
	case 1:
		return c.Sub(randomBV(c, rng, depth-1), randomBV(c, rng, depth-1))
	case 2:
		return c.BVAnd(randomBV(c, rng, depth-1), randomBV(c, rng, depth-1))
	default:
		return c.BVOr(randomBV(c, rng, depth-1), randomBV(c, rng, depth-1))
	}
}

// Property: addition commutes — the formula (x+y != y+x) must be UNSAT.
func TestQuickAdditionCommutes(t *testing.T) {
	f := func(w8 uint8) bool {
		w := int(w8%16) + 1
		c := NewContext()
		x := c.BVVar("x", w)
		y := c.BVVar("y", w)
		res := Solve(c, c.Not(c.Eq(c.Add(x, y), c.Add(y, x))))
		return res.Status == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: x - x = 0 for all widths.
func TestQuickSubSelfIsZero(t *testing.T) {
	f := func(w8 uint8) bool {
		w := int(w8%16) + 1
		c := NewContext()
		x := c.BVVar("x", w)
		y := c.BVVar("y", w)
		// Use x+y-y = x to avoid the Sub(a,a) simplification short-circuit.
		res := Solve(c, c.Not(c.Eq(c.Sub(c.Add(x, y), y), x)))
		return res.Status == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ult is a strict total order: exactly one of x<y, y<x, x=y.
func TestQuickUltTrichotomy(t *testing.T) {
	f := func(w8 uint8) bool {
		w := int(w8%12) + 1
		c := NewContext()
		x := c.BVVar("x", w)
		y := c.BVVar("y", w)
		lt := c.Ult(x, y)
		gt := c.Ult(y, x)
		eq := c.Eq(x, y)
		exactlyOne := c.Or(
			c.And(lt, c.Not(gt), c.Not(eq)),
			c.And(gt, c.Not(lt), c.Not(eq)),
			c.And(eq, c.Not(lt), c.Not(gt)),
		)
		return Solve(c, c.Not(exactlyOne)).Status == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestResultStats(t *testing.T) {
	c := NewContext()
	x := c.BVVar("x", 16)
	res := Solve(c, c.Eq(x, c.BV(1234, 16)))
	if res.NumVars <= 0 || res.NumCons <= 0 {
		t.Fatalf("expected positive stats, got vars=%d cons=%d", res.NumVars, res.NumCons)
	}
}

func TestConflictBudgetUnknown(t *testing.T) {
	c := NewContext()
	// A moderately hard instance: multiplication-free but forces search.
	var conj []*Term
	vars := make([]*Term, 12)
	for i := range vars {
		vars[i] = c.BVVar("v"+string(rune('a'+i)), 6)
	}
	for i := 0; i < len(vars)-1; i++ {
		conj = append(conj, c.Not(c.Eq(vars[i], vars[i+1])))
		conj = append(conj, c.Eq(c.BVAnd(vars[i], vars[i+1]), c.BV(0, 6)))
	}
	s := NewSolver(c)
	s.SetConflictBudget(1)
	s.Assert(c.And(conj...))
	res := s.Check()
	if res.Status == Unsat {
		t.Fatal("instance should be satisfiable; budget may yield sat or unknown")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	c := NewContext()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	c.Eq(c.BV(1, 8), c.BV(1, 4))
}

func TestTermString(t *testing.T) {
	c := NewContext()
	a := c.BoolVar("a")
	x := c.BVVar("x", 8)
	s := c.And(a, c.Eq(x, c.BV(7, 8))).String()
	if s == "" {
		t.Fatal("empty string rendering")
	}
}

func BenchmarkSolveBV32Equality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewContext()
		x := c.BVVar("x", 32)
		y := c.BVVar("y", 32)
		f := c.And(c.Eq(c.Add(x, y), c.BV(123456, 32)), c.Ult(x, y))
		if Solve(c, f).Status != Sat {
			b.Fatal("want sat")
		}
	}
}
