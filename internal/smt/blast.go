package smt

import (
	"fmt"
	"sync/atomic"

	"lightyear/internal/smt/sat"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Model is a satisfying assignment for the variables of a formula.
type Model struct {
	bools map[string]bool
	bvs   map[string]uint64
}

// Bool returns the value of a boolean variable in the model. Variables not
// constrained by the formula default to false.
func (m *Model) Bool(name string) bool { return m.bools[name] }

// BV returns the value of a bitvector variable in the model. Variables not
// constrained by the formula default to 0.
func (m *Model) BV(name string) uint64 { return m.bvs[name] }

// HasBool reports whether the model assigns the named boolean variable.
func (m *Model) HasBool(name string) bool {
	_, ok := m.bools[name]
	return ok
}

// HasBV reports whether the model assigns the named bitvector variable.
func (m *Model) HasBV(name string) bool {
	_, ok := m.bvs[name]
	return ok
}

// Result carries the verdict of a Solve call together with solver statistics
// used by the scaling experiments (Figure 3 reports variable and constraint
// counts and solve times).
type Result struct {
	Status   Status
	Model    *Model // non-nil iff Status == Sat
	NumVars  int    // SAT variables created by bit-blasting
	NumCons  int    // CNF clauses generated
	NumTerms int    // term-graph nodes in the solver's Context
	// Stats is the CDCL search provenance of this check (conflicts,
	// decisions, propagations, restarts, learned clauses) — why the solver
	// took as long as it did, not just how long.
	Stats sat.Stats
}

// Solver lowers formulas to CNF and decides them. A Solver wraps one SAT
// instance; assertions accumulate (conjunctively) across Assert calls.
type Solver struct {
	ctx  *Context
	sat  *sat.Solver
	tt   sat.Lit // literal fixed true
	bool map[*Term]sat.Lit
	bv   map[*Term][]sat.Lit

	boolVars map[string]sat.Lit
	bvVars   map[string][]sat.Lit

	budget int64
}

// NewSolver returns a solver for formulas built in ctx.
func NewSolver(ctx *Context) *Solver {
	s := &Solver{
		ctx:      ctx,
		sat:      sat.New(),
		bool:     make(map[*Term]sat.Lit),
		bv:       make(map[*Term][]sat.Lit),
		boolVars: make(map[string]sat.Lit),
		bvVars:   make(map[string][]sat.Lit),
		budget:   -1,
	}
	v := s.sat.NewVar()
	s.tt = sat.MkLit(v, false)
	s.sat.AddClause(s.tt)
	return s
}

// SetConflictBudget bounds SAT search effort; negative means unlimited.
func (s *Solver) SetConflictBudget(n int64) {
	s.budget = n
	s.sat.SetConflictBudget(n)
}

// SetInterrupt installs a cooperative cancellation flag.
func (s *Solver) SetInterrupt(flag *atomic.Bool) { s.sat.SetInterrupt(flag) }

// SetDisableVSIDS switches the underlying SAT decision heuristic to a static
// variable order — one of the heuristic axes portfolio solving races.
func (s *Solver) SetDisableVSIDS(v bool) { s.sat.SetDisableVSIDS(v) }

// SetDisableRestarts turns off Luby restarts in the underlying SAT solver.
func (s *Solver) SetDisableRestarts(v bool) { s.sat.SetDisableRestarts(v) }

// SetPositivePhase makes fresh SAT variables branch true-first. Must be set
// before the first Assert to affect the whole formula.
func (s *Solver) SetPositivePhase(v bool) { s.sat.SetPositivePhase(v) }

// Assert adds a boolean term as a top-level constraint.
func (s *Solver) Assert(t *Term) {
	if !t.IsBool() {
		panic("smt: Assert requires a boolean term")
	}
	l := s.lowerBool(t)
	s.sat.AddClause(l)
}

// Check decides the conjunction of all asserted constraints.
func (s *Solver) Check() Result {
	st := s.sat.Solve()
	res := Result{
		NumVars:  s.sat.NumVars(),
		NumCons:  s.sat.NumClauses(),
		NumTerms: s.ctx.NumTerms(),
		Stats:    s.sat.Stats(),
	}
	switch st {
	case sat.Sat:
		res.Status = Sat
		res.Model = s.extractModel()
	case sat.Unsat:
		res.Status = Unsat
	default:
		res.Status = Unknown
	}
	return res
}

// Solve is a convenience: assert the formula into a fresh solver and check.
func Solve(ctx *Context, formula *Term) Result {
	s := NewSolver(ctx)
	s.Assert(formula)
	return s.Check()
}

func (s *Solver) extractModel() *Model {
	m := &Model{bools: make(map[string]bool), bvs: make(map[string]uint64)}
	for name, lit := range s.boolVars {
		m.bools[name] = s.litModelValue(lit)
	}
	for name, bits := range s.bvVars {
		var v uint64
		for i, b := range bits {
			if s.litModelValue(b) {
				v |= 1 << uint(i)
			}
		}
		m.bvs[name] = v
	}
	return m
}

func (s *Solver) litModelValue(l sat.Lit) bool {
	v := s.sat.ModelValue(l.Var())
	if l.Neg() {
		return !v
	}
	return v
}

// fresh allocates a new SAT literal.
func (s *Solver) fresh() sat.Lit {
	return sat.MkLit(s.sat.NewVar(), false)
}

// lowerBool converts a boolean term to a SAT literal, adding Tseitin
// definition clauses as needed. Results are cached per term.
func (s *Solver) lowerBool(t *Term) sat.Lit {
	if l, ok := s.bool[t]; ok {
		return l
	}
	var l sat.Lit
	switch t.op {
	case OpBoolConst:
		if t.cval != 0 {
			l = s.tt
		} else {
			l = s.tt.Not()
		}
	case OpBoolVar:
		if v, ok := s.boolVars[t.name]; ok {
			l = v
		} else {
			l = s.fresh()
			s.boolVars[t.name] = l
		}
	case OpNot:
		l = s.lowerBool(t.kids[0]).Not()
	case OpAnd:
		lits := make([]sat.Lit, len(t.kids))
		for i, k := range t.kids {
			lits[i] = s.lowerBool(k)
		}
		l = s.andGate(lits)
	case OpOr:
		lits := make([]sat.Lit, len(t.kids))
		for i, k := range t.kids {
			lits[i] = s.lowerBool(k)
		}
		l = s.orGate(lits)
	case OpXor:
		l = s.xorGate(s.lowerBool(t.kids[0]), s.lowerBool(t.kids[1]))
	case OpImplies:
		l = s.orGate([]sat.Lit{s.lowerBool(t.kids[0]).Not(), s.lowerBool(t.kids[1])})
	case OpIff:
		l = s.xorGate(s.lowerBool(t.kids[0]), s.lowerBool(t.kids[1])).Not()
	case OpIteBool:
		l = s.muxGate(s.lowerBool(t.kids[0]), s.lowerBool(t.kids[1]), s.lowerBool(t.kids[2]))
	case OpEq:
		a := s.lowerBV(t.kids[0])
		b := s.lowerBV(t.kids[1])
		eqs := make([]sat.Lit, len(a))
		for i := range a {
			eqs[i] = s.xorGate(a[i], b[i]).Not()
		}
		l = s.andGate(eqs)
	case OpUlt:
		l = s.ultGate(s.lowerBV(t.kids[0]), s.lowerBV(t.kids[1]), false)
	case OpUle:
		l = s.ultGate(s.lowerBV(t.kids[0]), s.lowerBV(t.kids[1]), true)
	default:
		panic(fmt.Sprintf("smt: lowerBool: unexpected op %v", t.op))
	}
	s.bool[t] = l
	return l
}

// lowerBV converts a bitvector term to per-bit literals (LSB first).
func (s *Solver) lowerBV(t *Term) []sat.Lit {
	if bits, ok := s.bv[t]; ok {
		return bits
	}
	var bits []sat.Lit
	switch t.op {
	case OpBVConst:
		bits = make([]sat.Lit, t.width)
		for i := 0; i < t.width; i++ {
			if t.cval&(1<<uint(i)) != 0 {
				bits[i] = s.tt
			} else {
				bits[i] = s.tt.Not()
			}
		}
	case OpBVVar:
		if v, ok := s.bvVars[t.name]; ok {
			bits = v
		} else {
			bits = make([]sat.Lit, t.width)
			for i := range bits {
				bits[i] = s.fresh()
			}
			s.bvVars[t.name] = bits
		}
	case OpBVNot:
		a := s.lowerBV(t.kids[0])
		bits = make([]sat.Lit, len(a))
		for i := range a {
			bits[i] = a[i].Not()
		}
	case OpBVAnd, OpBVOr, OpBVXor:
		a := s.lowerBV(t.kids[0])
		b := s.lowerBV(t.kids[1])
		bits = make([]sat.Lit, len(a))
		for i := range a {
			switch t.op {
			case OpBVAnd:
				bits[i] = s.andGate([]sat.Lit{a[i], b[i]})
			case OpBVOr:
				bits[i] = s.orGate([]sat.Lit{a[i], b[i]})
			default:
				bits[i] = s.xorGate(a[i], b[i])
			}
		}
	case OpBVAdd:
		bits = s.adder(s.lowerBV(t.kids[0]), s.lowerBV(t.kids[1]), false)
	case OpBVSub:
		// a - b = a + ~b + 1
		b := s.lowerBV(t.kids[1])
		nb := make([]sat.Lit, len(b))
		for i := range b {
			nb[i] = b[i].Not()
		}
		bits = s.adder(s.lowerBV(t.kids[0]), nb, true)
	case OpIteBV:
		cond := s.lowerBool(t.kids[0])
		a := s.lowerBV(t.kids[1])
		b := s.lowerBV(t.kids[2])
		bits = make([]sat.Lit, len(a))
		for i := range a {
			bits[i] = s.muxGate(cond, a[i], b[i])
		}
	case OpExtract:
		a := s.lowerBV(t.kids[0])
		bits = a[t.lo : t.lo+t.width]
	case OpConcat:
		hi := s.lowerBV(t.kids[0])
		lo := s.lowerBV(t.kids[1])
		bits = append(append([]sat.Lit{}, lo...), hi...)
	default:
		panic(fmt.Sprintf("smt: lowerBV: unexpected op %v", t.op))
	}
	s.bv[t] = bits
	return bits
}

// andGate returns a literal g with g <=> AND(lits).
func (s *Solver) andGate(lits []sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return s.tt
	case 1:
		return lits[0]
	}
	// Constant pruning.
	var use []sat.Lit
	for _, l := range lits {
		if l == s.tt.Not() {
			return s.tt.Not()
		}
		if l == s.tt {
			continue
		}
		use = append(use, l)
	}
	switch len(use) {
	case 0:
		return s.tt
	case 1:
		return use[0]
	}
	g := s.fresh()
	// g -> l_i
	for _, l := range use {
		s.sat.AddClause(g.Not(), l)
	}
	// (AND l_i) -> g
	cl := make([]sat.Lit, 0, len(use)+1)
	for _, l := range use {
		cl = append(cl, l.Not())
	}
	cl = append(cl, g)
	s.sat.AddClause(cl...)
	return g
}

// orGate returns a literal g with g <=> OR(lits).
func (s *Solver) orGate(lits []sat.Lit) sat.Lit {
	neg := make([]sat.Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Not()
	}
	return s.andGate(neg).Not()
}

// xorGate returns a literal g with g <=> a XOR b.
func (s *Solver) xorGate(a, b sat.Lit) sat.Lit {
	if a == s.tt {
		return b.Not()
	}
	if a == s.tt.Not() {
		return b
	}
	if b == s.tt {
		return a.Not()
	}
	if b == s.tt.Not() {
		return a
	}
	if a == b {
		return s.tt.Not()
	}
	if a == b.Not() {
		return s.tt
	}
	g := s.fresh()
	s.sat.AddClause(g.Not(), a, b)
	s.sat.AddClause(g.Not(), a.Not(), b.Not())
	s.sat.AddClause(g, a.Not(), b)
	s.sat.AddClause(g, a, b.Not())
	return g
}

// muxGate returns g <=> (c ? a : b).
func (s *Solver) muxGate(c, a, b sat.Lit) sat.Lit {
	if c == s.tt {
		return a
	}
	if c == s.tt.Not() {
		return b
	}
	if a == b {
		return a
	}
	g := s.fresh()
	s.sat.AddClause(c.Not(), a.Not(), g)
	s.sat.AddClause(c.Not(), a, g.Not())
	s.sat.AddClause(c, b.Not(), g)
	s.sat.AddClause(c, b, g.Not())
	return g
}

// adder returns bits of a + b (+1 if carryIn), modular.
func (s *Solver) adder(a, b []sat.Lit, carryIn bool) []sat.Lit {
	out := make([]sat.Lit, len(a))
	carry := s.tt.Not()
	if carryIn {
		carry = s.tt
	}
	for i := range a {
		axb := s.xorGate(a[i], b[i])
		out[i] = s.xorGate(axb, carry)
		// carry' = (a & b) | (carry & (a ^ b))
		ab := s.andGate([]sat.Lit{a[i], b[i]})
		ca := s.andGate([]sat.Lit{carry, axb})
		carry = s.orGate([]sat.Lit{ab, ca})
	}
	return out
}

// ultGate returns a < b (or a <= b when orEqual), unsigned, MSB-first scan.
func (s *Solver) ultGate(a, b []sat.Lit, orEqual bool) sat.Lit {
	// result for the empty suffix: a == b, so "<" is false, "<=" is true.
	res := s.tt.Not()
	if orEqual {
		res = s.tt
	}
	for i := 0; i < len(a); i++ { // LSB to MSB so MSB dominates last
		lt := s.andGate([]sat.Lit{a[i].Not(), b[i]})
		eq := s.xorGate(a[i], b[i]).Not()
		// res' = lt | (eq & res)
		res = s.orGate([]sat.Lit{lt, s.andGate([]sat.Lit{eq, res})})
	}
	return res
}

// Eval computes the concrete value of a term under a model. Boolean terms
// yield 0/1 in the low bit. It is used to validate counterexamples and in
// tests as an independent semantics for the term language.
func Eval(t *Term, m *Model) uint64 {
	switch t.op {
	case OpBoolConst, OpBVConst:
		return t.cval
	case OpBoolVar:
		if m.Bool(t.name) {
			return 1
		}
		return 0
	case OpBVVar:
		return m.BV(t.name)
	case OpNot:
		return Eval(t.kids[0], m) ^ 1
	case OpAnd:
		for _, k := range t.kids {
			if Eval(k, m) == 0 {
				return 0
			}
		}
		return 1
	case OpOr:
		for _, k := range t.kids {
			if Eval(k, m) != 0 {
				return 1
			}
		}
		return 0
	case OpXor:
		return Eval(t.kids[0], m) ^ Eval(t.kids[1], m)
	case OpImplies:
		if Eval(t.kids[0], m) == 0 {
			return 1
		}
		return Eval(t.kids[1], m)
	case OpIff:
		if Eval(t.kids[0], m) == Eval(t.kids[1], m) {
			return 1
		}
		return 0
	case OpIteBool, OpIteBV:
		if Eval(t.kids[0], m) != 0 {
			return Eval(t.kids[1], m)
		}
		return Eval(t.kids[2], m)
	case OpEq:
		if Eval(t.kids[0], m) == Eval(t.kids[1], m) {
			return 1
		}
		return 0
	case OpUlt:
		if Eval(t.kids[0], m) < Eval(t.kids[1], m) {
			return 1
		}
		return 0
	case OpUle:
		if Eval(t.kids[0], m) <= Eval(t.kids[1], m) {
			return 1
		}
		return 0
	case OpBVNot:
		return mask(^Eval(t.kids[0], m), t.width)
	case OpBVAnd:
		return Eval(t.kids[0], m) & Eval(t.kids[1], m)
	case OpBVOr:
		return Eval(t.kids[0], m) | Eval(t.kids[1], m)
	case OpBVXor:
		return Eval(t.kids[0], m) ^ Eval(t.kids[1], m)
	case OpBVAdd:
		return mask(Eval(t.kids[0], m)+Eval(t.kids[1], m), t.width)
	case OpBVSub:
		return mask(Eval(t.kids[0], m)-Eval(t.kids[1], m), t.width)
	case OpExtract:
		return mask(Eval(t.kids[0], m)>>uint(t.lo), t.width)
	case OpConcat:
		return Eval(t.kids[0], m)<<uint(t.kids[1].width) | Eval(t.kids[1], m)
	}
	panic(fmt.Sprintf("smt: Eval: unexpected op %v", t.op))
}

func mask(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	return v & ((1 << uint(w)) - 1)
}
