package sat

import (
	"math/rand"
	"testing"
)

// TestXorChainsParity builds parity constraints (hard for resolution
// without learning) and cross-checks against brute force.
func TestXorChainsParity(t *testing.T) {
	// Encode x1 xor x2 xor ... xor xk = parity via CNF expansion over
	// chained auxiliaries: t1 = x1, t_{i} = t_{i-1} xor x_i.
	build := func(k int, parity bool) *Solver {
		s := New()
		xs := make([]int, k)
		for i := range xs {
			xs[i] = s.NewVar()
		}
		prev := xs[0]
		for i := 1; i < k; i++ {
			next := s.NewVar()
			a, b := MkLit(prev, false), MkLit(xs[i], false)
			g := MkLit(next, false)
			s.AddClause(g.Not(), a, b)
			s.AddClause(g.Not(), a.Not(), b.Not())
			s.AddClause(g, a.Not(), b)
			s.AddClause(g, a, b.Not())
			prev = next
		}
		s.AddClause(MkLit(prev, parity))
		return s
	}
	for k := 2; k <= 10; k++ {
		if build(k, false).Solve() != Sat {
			t.Fatalf("k=%d parity=1 should be sat", k)
		}
		if build(k, true).Solve() != Sat {
			t.Fatalf("k=%d parity=0 should be sat", k)
		}
	}
	// Contradictory parity over the same variables is unsat.
	s := New()
	x := s.NewVar()
	y := s.NewVar()
	g1 := s.NewVar()
	// g1 = x xor y asserted both true and false.
	a, b, g := MkLit(x, false), MkLit(y, false), MkLit(g1, false)
	s.AddClause(g.Not(), a, b)
	s.AddClause(g.Not(), a.Not(), b.Not())
	s.AddClause(g, a.Not(), b)
	s.AddClause(g, a, b.Not())
	s.AddClause(g)
	s.AddClause(g.Not())
	if s.Solve() != Unsat {
		t.Fatal("contradictory parity should be unsat")
	}
}

// TestAblationModesAgree: the ablated configurations must return the same
// verdicts as the full solver.
func TestAblationModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 60; iter++ {
		nv := 5 + rng.Intn(8)
		nc := int(float64(nv) * (3.5 + rng.Float64()*1.5))
		type inst struct{ cls [][]Lit }
		var in inst
		for c := 0; c < nc; c++ {
			var lits []Lit
			for k := 0; k < 3; k++ {
				lits = append(lits, MkLit(1+rng.Intn(nv), rng.Intn(2) == 0))
			}
			in.cls = append(in.cls, lits)
		}
		solve := func(configure func(*Solver)) Status {
			s := New()
			configure(s)
			for i := 0; i < nv; i++ {
				s.NewVar()
			}
			for _, c := range in.cls {
				s.AddClause(c...)
			}
			return s.Solve()
		}
		full := solve(func(*Solver) {})
		noV := solve(func(s *Solver) { s.SetDisableVSIDS(true) })
		noR := solve(func(s *Solver) { s.SetDisableRestarts(true) })
		if full != noV || full != noR {
			t.Fatalf("iter %d: verdicts differ full=%v novsids=%v norestarts=%v", iter, full, noV, noR)
		}
	}
}

// TestLearnedClauseReduction stresses the clause database reducer by
// solving an instance large enough to trigger reduceDB.
func TestLearnedClauseReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := New()
	s.maxLearned = 64 // force frequent reductions
	nv := 60
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	nc := int(float64(nv) * 4.3)
	for c := 0; c < nc; c++ {
		var lits []Lit
		for k := 0; k < 3; k++ {
			lits = append(lits, MkLit(1+rng.Intn(nv), rng.Intn(2) == 0))
		}
		s.AddClause(lits...)
	}
	st := s.Solve()
	if st == Unknown {
		t.Fatal("should terminate")
	}
	if s.Stats().DeletedTotal == 0 && s.Stats().LearnedTotal > 200 {
		t.Fatal("reduceDB never triggered despite low cap")
	}
	// Verdict must match a fresh default solver.
	s2 := New()
	rng = rand.New(rand.NewSource(13))
	for i := 0; i < nv; i++ {
		s2.NewVar()
	}
	for c := 0; c < nc; c++ {
		var lits []Lit
		for k := 0; k < 3; k++ {
			lits = append(lits, MkLit(1+rng.Intn(nv), rng.Intn(2) == 0))
		}
		s2.AddClause(lits...)
	}
	if s2.Solve() != st {
		t.Fatal("reduction changed the verdict")
	}
}

// TestManySolveCallsStable: repeated Solve calls with and without
// assumptions on one instance must stay consistent.
func TestManySolveCallsStable(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	for i := 0; i < 30; i++ {
		if s.Solve() != Sat {
			t.Fatal("base should stay sat")
		}
		if s.Solve(MkLit(a, true)) != Sat { // ~a forces b, then c
			t.Fatal("assuming ~a should be sat")
		}
		if !s.ModelValue(b) || !s.ModelValue(c) {
			t.Fatal("~a must imply b and c")
		}
		if s.Solve(MkLit(a, true), MkLit(c, true)) != Unsat {
			t.Fatal("~a and ~c should conflict")
		}
	}
}

// TestTrailConsistencyAfterBacktrack: white-box invariant check — after any
// Solve call, all assignments are undone.
func TestTrailConsistencyAfterBacktrack(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := New()
	nv := 30
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	for c := 0; c < 120; c++ {
		var lits []Lit
		for k := 0; k < 3; k++ {
			lits = append(lits, MkLit(1+rng.Intn(nv), rng.Intn(2) == 0))
		}
		s.AddClause(lits...)
	}
	s.Solve()
	if s.decisionLevel() != 0 {
		t.Fatal("solver left at non-zero decision level")
	}
	// All non-root assignments must be undone (level-0 implied units stay).
	for v := 1; v <= nv; v++ {
		if s.assigns[v] != valUnassigned && s.level[v] != 0 {
			t.Fatalf("var %d left assigned at level %d", v, s.level[v])
		}
	}
}
