// Package sat implements a CDCL (conflict-driven clause learning) SAT solver.
//
// It is the decision engine underneath the SMT layer in internal/smt: boolean
// structure and bit-blasted bitvector constraints are lowered to CNF and
// decided here. The solver implements the standard modern architecture:
// two-literal watching for unit propagation, VSIDS variable activity with a
// binary heap, first-UIP conflict analysis with clause learning, phase saving,
// Luby-sequence restarts, and learned-clause database reduction.
//
// Variables are positive integers starting at 1. Literals are represented by
// the Lit type, which packs the variable index and the sign.
package sat

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Lit is a propositional literal. For a variable v >= 1, the positive literal
// is encoded as 2v and the negative literal as 2v+1. The zero value is not a
// valid literal.
type Lit uint32

// MkLit constructs a literal from a variable index and a sign.
// neg=false yields the positive literal v, neg=true yields ¬v.
func MkLit(v int, neg bool) Lit {
	if v <= 0 {
		panic("sat: variable index must be >= 1")
	}
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as "v3" or "~v3".
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// value of a variable in the current assignment.
type value int8

const (
	valUnassigned value = iota
	valTrue
	valFalse
)

func (v value) negate() value {
	switch v {
	case valTrue:
		return valFalse
	case valFalse:
		return valTrue
	}
	return valUnassigned
}

// Status is the outcome of a Solve call.
type Status int

const (
	// Unknown means solving was aborted (budget exhausted or Interrupt).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudgetExhausted is returned by Solve when the conflict budget set with
// SetConflictBudget is exhausted before a verdict is reached.
var ErrBudgetExhausted = errors.New("sat: conflict budget exhausted")

// clause is a disjunction of literals. Learned clauses carry activity for
// database reduction.
type clause struct {
	lits     []Lit
	learned  bool
	activity float64
	lbd      int // literal block distance, used to protect "glue" clauses
}

// watcher pairs a clause reference with the "blocker" literal heuristic: if
// the blocker is already true the clause is satisfied and need not be visited.
type watcher struct {
	cref    int
	blocker Lit
}

// Stats reports solver counters accumulated since construction.
type Stats struct {
	Vars          int
	Clauses       int // problem clauses added
	Learned       int // learned clauses currently in the database
	Conflicts     int64
	Decisions     int64
	Propagations  int64
	Restarts      int64
	MaxLevel      int
	LearnedTotal  int64 // all clauses ever learned
	DeletedTotal  int64 // learned clauses deleted by reduction
	BinaryClauses int
	UnitClauses   int
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New. A Solver may be reused for multiple Solve calls with different
// assumption sets; clauses persist across calls (incremental solving).
type Solver struct {
	clauses []clause // arena of all clauses; index = cref
	freed   []int    // recycled clause slots

	watches [][]watcher // literal -> watchers (indexed by Lit)

	assigns  []value // variable -> current value
	polarity []bool  // variable -> saved phase (true means last assigned false)
	level    []int   // variable -> decision level of its assignment
	reason   []int   // variable -> cref of the implying clause, or -1

	trail    []Lit // assignment stack
	trailLim []int // decision-level boundaries in trail
	qhead    int   // propagation queue head into trail

	// VSIDS
	activity []float64
	heap     varHeap
	varInc   float64
	varDecay float64

	claInc   float64
	claDecay float64

	seen    []bool // scratch for conflict analysis
	stack   []int  // scratch for minimization
	toClear []int

	nVars int
	stats Stats

	conflictBudget int64        // <0 means unlimited
	interrupted    *atomic.Bool // optional external interrupt flag
	disableVSIDS   bool         // ablation: static variable order instead of VSIDS
	disableRestart bool         // ablation: no Luby restarts
	positivePhase  bool         // branch true-first on fresh variables

	model []bool // last satisfying assignment (index by var)

	okay bool // false once a top-level conflict proves UNSAT

	maxLearned int // learned-clause cap before reduction
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:         1.0,
		varDecay:       0.95,
		claInc:         1.0,
		claDecay:       0.999,
		conflictBudget: -1,
		okay:           true,
		maxLearned:     8192,
	}
	// Index 0 is unused so variable indices start at 1.
	s.assigns = append(s.assigns, valUnassigned)
	s.polarity = append(s.polarity, false)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.init(s)
	return s
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	s.nVars++
	v := s.nVars
	s.assigns = append(s.assigns, valUnassigned)
	s.polarity = append(s.polarity, !s.positivePhase) // default phase: false unless SetPositivePhase
	s.level = append(s.level, -1)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	s.stats.Vars = s.nVars
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added (after top-level
// simplification such as dropping satisfied clauses is NOT applied; this
// counts AddClause calls that actually stored or implied something).
func (s *Solver) NumClauses() int { return s.stats.Clauses }

// SetConflictBudget limits the number of conflicts for subsequent Solve
// calls. A negative budget means unlimited.
func (s *Solver) SetConflictBudget(n int64) { s.conflictBudget = n }

// SetInterrupt installs a flag polled during solving; when the flag
// becomes true, Solve returns Unknown. An atomic flag, so timer or signal
// goroutines may set it while Solve runs.
func (s *Solver) SetInterrupt(flag *atomic.Bool) { s.interrupted = flag }

// SetDisableVSIDS switches the decision heuristic to a static variable
// order. Used by the heuristic-ablation benchmarks.
func (s *Solver) SetDisableVSIDS(v bool) { s.disableVSIDS = v }

// SetDisableRestarts turns off Luby restarts. Used by the ablation
// benchmarks.
func (s *Solver) SetDisableRestarts(v bool) { s.disableRestart = v }

// SetPositivePhase flips the default branching phase for variables allocated
// afterwards: decisions try true first instead of false. Phase saving still
// overrides the default once a variable has been assigned. This is one of
// the heuristic axes the portfolio solver backend races.
func (s *Solver) SetPositivePhase(v bool) { s.positivePhase = v }

// Stats returns a snapshot of the solver counters.
func (s *Solver) Stats() Stats {
	st := s.stats
	return st
}

// AddClause adds a clause given as a literal slice. It returns false if the
// solver is already in an UNSAT state or the clause is trivially conflicting
// at the top level. The slice is copied.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.okay {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during solving")
	}
	// Normalize: sort, dedupe, drop false literals, detect tautologies.
	ls := make([]Lit, len(lits))
	copy(ls, lits)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit
	for _, l := range ls {
		if l.Var() > s.nVars || l.Var() <= 0 {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		if len(out) > 0 && l == prev {
			continue // duplicate
		}
		if len(out) > 0 && l == prev.Not() {
			return true // tautology: always satisfied
		}
		switch s.litValue(l) {
		case valTrue:
			return true // clause already satisfied at level 0
		case valFalse:
			continue // literal false at top level, drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.stats.Clauses++
		s.stats.UnitClauses++
		s.uncheckedEnqueue(out[0], -1)
		if s.propagate() != -1 {
			s.okay = false
			return false
		}
		return true
	}
	s.stats.Clauses++
	if len(out) == 2 {
		s.stats.BinaryClauses++
	}
	cref := s.allocClause(out, false)
	s.attachClause(cref)
	return true
}

func (s *Solver) allocClause(lits []Lit, learned bool) int {
	c := clause{lits: lits, learned: learned}
	if n := len(s.freed); n > 0 {
		cref := s.freed[n-1]
		s.freed = s.freed[:n-1]
		s.clauses[cref] = c
		return cref
	}
	s.clauses = append(s.clauses, c)
	return len(s.clauses) - 1
}

func (s *Solver) attachClause(cref int) {
	c := &s.clauses[cref]
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
}

func (s *Solver) detachClause(cref int) {
	c := &s.clauses[cref]
	s.removeWatcher(c.lits[0].Not(), cref)
	s.removeWatcher(c.lits[1].Not(), cref)
}

func (s *Solver) removeWatcher(l Lit, cref int) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].cref == cref {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) litValue(l Lit) value {
	v := s.assigns[l.Var()]
	if v == valUnassigned {
		return valUnassigned
	}
	if l.Neg() {
		return v.negate()
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from int) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = valFalse
	} else {
		s.assigns[v] = valTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation. It returns the cref of a conflicting
// clause, or -1 if no conflict was found.
func (s *Solver) propagate() int {
	conflict := -1
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		i, j := 0, 0
		n := len(ws)
	nextWatcher:
		for i < n {
			w := ws[i]
			// Blocker literal already true: clause satisfied.
			if s.litValue(w.blocker) == valTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			cref := w.cref
			c := &s.clauses[cref]
			// Make sure the false literal is at position 1.
			falseLit := p.Not()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			i++
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == valTrue {
				ws[j] = watcher{cref, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != valFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, first})
					continue nextWatcher
				}
			}
			// No new watch: clause is unit or conflicting.
			ws[j] = watcher{cref, first}
			j++
			if s.litValue(first) == valFalse {
				// Conflict: copy remaining watchers and bail out.
				conflict = cref
				s.qhead = len(s.trail)
				for i < n {
					ws[j] = ws[i]
					i++
					j++
				}
				break
			}
			s.uncheckedEnqueue(first, cref)
		}
		s.watches[p] = ws[:j]
		if conflict != -1 {
			return conflict
		}
	}
	return -1
}

// analyze performs first-UIP conflict analysis, returning the learned clause
// (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict int) ([]Lit, int) {
	learned := []Lit{0} // reserve slot for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	cref := conflict
	first := true

	for {
		c := &s.clauses[cref]
		if c.learned {
			s.bumpClause(cref)
		}
		start := 0
		if !first {
			start = 1 // skip the asserting literal of the reason clause
		}
		for k := start; k < len(c.lits); k++ {
			q := c.lits[k]
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.toClear = append(s.toClear, v)
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Walk the trail backwards to find the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false // unmark; it is consumed
		counter--
		cref = s.reason[v]
		first = false
		if counter == 0 {
			break
		}
	}
	learned[0] = p.Not()

	// Clause minimization: drop literals implied by the rest of the clause.
	out := learned[:1]
	for _, l := range learned[1:] {
		if !s.redundant(l) {
			out = append(out, l)
		}
	}
	learned = out

	// Compute backtrack level: the second-highest decision level in clause.
	btLevel := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()] > s.level[learned[maxI].Var()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		btLevel = s.level[learned[1].Var()]
	}

	for _, v := range s.toClear {
		s.seen[v] = false
	}
	s.toClear = s.toClear[:0]
	return learned, btLevel
}

// redundant reports whether literal l in a learned clause is implied by the
// remaining marked literals (recursive minimization, iterative form).
func (s *Solver) redundant(l Lit) bool {
	v := l.Var()
	if s.reason[v] == -1 {
		return false
	}
	s.stack = s.stack[:0]
	s.stack = append(s.stack, v)
	undoFrom := len(s.toClear)
	for len(s.stack) > 0 {
		x := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		c := &s.clauses[s.reason[x]]
		for _, q := range c.lits[1:] {
			w := q.Var()
			if s.seen[w] || s.level[w] == 0 {
				continue
			}
			if s.reason[w] == -1 {
				// Not implied: undo markings made during this test.
				for _, u := range s.toClear[undoFrom:] {
					s.seen[u] = false
				}
				s.toClear = s.toClear[:undoFrom]
				return false
			}
			s.seen[w] = true
			s.toClear = append(s.toClear, w)
			s.stack = append(s.stack, w)
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(cref int) {
	c := &s.clauses[cref]
	c.activity += s.claInc
	if c.activity > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learned {
				s.clauses[i].activity *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = valUnassigned
		s.polarity[v] = s.trail[i].Neg() // phase saving
		s.reason[v] = -1
		s.heap.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// pickBranchLit selects the next decision literal using VSIDS activity and
// the saved phase. It returns 0 when all variables are assigned.
func (s *Solver) pickBranchLit() Lit {
	if s.disableVSIDS {
		for v := 1; v <= s.nVars; v++ {
			if s.assigns[v] == valUnassigned {
				return MkLit(v, s.polarity[v])
			}
		}
		return 0
	}
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assigns[v] == valUnassigned {
			return MkLit(v, s.polarity[v])
		}
	}
	return 0
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// reduceDB removes roughly half of the learned clauses, preferring low
// activity and high LBD, keeping binary and glue clauses.
func (s *Solver) reduceDB() {
	type cand struct {
		cref int
		act  float64
		lbd  int
	}
	var cands []cand
	locked := func(cref int) bool {
		c := &s.clauses[cref]
		if len(c.lits) == 0 {
			return false
		}
		v := c.lits[0].Var()
		return s.assigns[v] != valUnassigned && s.reason[v] == cref
	}
	for cref := range s.clauses {
		c := &s.clauses[cref]
		if !c.learned || len(c.lits) <= 2 || c.lbd <= 2 || locked(cref) {
			continue
		}
		cands = append(cands, cand{cref, c.activity, c.lbd})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lbd != cands[j].lbd {
			return cands[i].lbd > cands[j].lbd
		}
		return cands[i].act < cands[j].act
	})
	for _, cd := range cands[:len(cands)/2] {
		s.detachClause(cd.cref)
		s.clauses[cd.cref] = clause{}
		s.freed = append(s.freed, cd.cref)
		s.stats.Learned--
		s.stats.DeletedTotal++
	}
}

// computeLBD returns the number of distinct decision levels in the clause.
func (s *Solver) computeLBD(lits []Lit) int {
	seen := map[int]struct{}{}
	for _, l := range lits {
		seen[s.level[l.Var()]] = struct{}{}
	}
	return len(seen)
}

// Solve decides satisfiability under the given assumptions. Assumptions are
// literals that must hold; they are treated as top-of-tree decisions, so the
// solver remains reusable afterwards.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.okay {
		return Unsat
	}
	s.backtrack(0)

	var restartNum int64
	conflictC := int64(0)
	for {
		if s.interrupted != nil && s.interrupted.Load() {
			s.backtrack(0)
			return Unknown
		}
		conflict := s.propagate()
		if conflict != -1 {
			s.stats.Conflicts++
			conflictC++
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat
			}
			learned, btLevel := s.analyze(conflict)
			s.backtrack(btLevel)
			if len(learned) == 1 {
				s.uncheckedEnqueue(learned[0], -1)
			} else {
				cref := s.allocClause(learned, true)
				s.clauses[cref].lbd = s.computeLBD(learned)
				s.attachClause(cref)
				s.stats.Learned++
				s.stats.LearnedTotal++
				s.bumpClause(cref)
				s.uncheckedEnqueue(learned[0], cref)
			}
			s.varInc /= s.varDecay
			s.claInc /= s.claDecay
			if s.conflictBudget >= 0 && s.stats.Conflicts >= s.conflictBudget {
				s.backtrack(0)
				return Unknown
			}
			continue
		}

		// Restart check.
		restartLimit := 100 * luby(restartNum+1)
		if !s.disableRestart && conflictC >= restartLimit {
			conflictC = 0
			restartNum++
			s.stats.Restarts++
			s.backtrack(0)
			if s.stats.Learned > s.maxLearned {
				s.reduceDB()
			}
			continue
		}

		// Re-apply assumptions below any new decisions.
		if dl := s.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			if a.Var() <= 0 || a.Var() > s.nVars {
				panic("sat: assumption references unallocated variable")
			}
			switch s.litValue(a) {
			case valTrue:
				// Already satisfied; open an empty decision level so the
				// indexing over assumptions stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case valFalse:
				// Conflicts with current top-level knowledge.
				s.backtrack(0)
				return Unsat
			default:
				s.stats.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				if dl+1 > s.stats.MaxLevel {
					s.stats.MaxLevel = dl + 1
				}
				s.uncheckedEnqueue(a, -1)
				continue
			}
		}

		next := s.pickBranchLit()
		if next == 0 {
			// All variables assigned: SAT. Save the model.
			s.saveModel()
			s.backtrack(0)
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		if dl := s.decisionLevel(); dl > s.stats.MaxLevel {
			s.stats.MaxLevel = dl
		}
		s.uncheckedEnqueue(next, -1)
	}
}

func (s *Solver) saveModel() {
	if cap(s.model) < s.nVars+1 {
		s.model = make([]bool, s.nVars+1)
	}
	s.model = s.model[:s.nVars+1]
	for v := 1; v <= s.nVars; v++ {
		s.model[v] = s.assigns[v] == valTrue
	}
}

// ModelValue returns the value of variable v in the most recent satisfying
// assignment. It must only be called after Solve returned Sat.
func (s *Solver) ModelValue(v int) bool {
	if v <= 0 || v >= len(s.model) {
		panic(fmt.Sprintf("sat: ModelValue(%d) out of range (no model or bad var)", v))
	}
	return s.model[v]
}

// Okay reports whether the solver is still in a consistent state (i.e., no
// top-level conflict has been derived).
func (s *Solver) Okay() bool { return s.okay }

// varHeap is a binary max-heap over variable activity.
type varHeap struct {
	s       *Solver
	heap    []int
	indices []int // variable -> position in heap, or -1
}

func (h *varHeap) init(s *Solver) {
	h.s = s
	h.indices = append(h.indices, -1)
}

func (h *varHeap) less(a, b int) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if len(h.indices) > v && h.indices[v] >= 0 {
		h.percolateUp(h.indices[v])
	}
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && h.less(h.heap[right], h.heap[left]) {
			best = right
		}
		if !h.less(h.heap[best], v) {
			break
		}
		h.heap[i] = h.heap[best]
		h.indices[h.heap[i]] = i
		i = best
	}
	h.heap[i] = v
	h.indices[v] = i
}
