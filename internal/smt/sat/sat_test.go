package sat

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestLitEncoding(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Neg() {
		t.Fatalf("MkLit(3,false) = %v", l)
	}
	n := l.Not()
	if n.Var() != 3 || !n.Neg() {
		t.Fatalf("Not() = %v", n)
	}
	if n.Not() != l {
		t.Fatalf("double negation broken")
	}
	if l.String() != "v3" || n.String() != "~v3" {
		t.Fatalf("String() = %q, %q", l.String(), n.String())
	}
}

func TestMkLitPanicsOnBadVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for variable 0")
		}
	}()
	MkLit(0, false)
}

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty formula: got %v, want sat", got)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if !s.ModelValue(v) {
		t.Fatal("unit literal not true in model")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	ok := s.AddClause(MkLit(v, true))
	if ok {
		t.Fatal("AddClause of contradiction should report failure")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause should make solver unsat")
	}
	if s.Solve() != Unsat {
		t.Fatal("want unsat after empty clause")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false), MkLit(v, true))
	if s.Solve() != Sat {
		t.Fatal("tautology should leave formula sat")
	}
}

func TestDuplicateLiteralsDeduped(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	s.AddClause(MkLit(v, false), MkLit(v, false), MkLit(w, false))
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
}

// TestPigeonhole checks the classic unsat family: n+1 pigeons in n holes.
func TestPigeonhole(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		s := New()
		// p[i][j]: pigeon i in hole j
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		// Each pigeon in some hole.
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = MkLit(p[i][j], false)
			}
			s.AddClause(lits...)
		}
		// No two pigeons share a hole.
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(MkLit(p[i1][j], true), MkLit(p[i2][j], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("pigeonhole(%d): got %v, want unsat", n, got)
		}
	}
}

// TestGraphColoring checks sat/unsat on small coloring instances.
func TestGraphColoring(t *testing.T) {
	// K4 is 4-colorable but not 3-colorable.
	color := func(k int) Status {
		s := New()
		const n = 4
		v := make([][]int, n)
		for i := range v {
			v[i] = make([]int, k)
			for c := range v[i] {
				v[i][c] = s.NewVar()
			}
		}
		for i := 0; i < n; i++ {
			lits := make([]Lit, k)
			for c := 0; c < k; c++ {
				lits[c] = MkLit(v[i][c], false)
			}
			s.AddClause(lits...)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for c := 0; c < k; c++ {
					s.AddClause(MkLit(v[i][c], true), MkLit(v[j][c], true))
				}
			}
		}
		return s.Solve()
	}
	if color(3) != Unsat {
		t.Fatal("K4 should not be 3-colorable")
	}
	if color(4) != Sat {
		t.Fatal("K4 should be 4-colorable")
	}
}

func TestModelSatisfiesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		s := New()
		nv := 20
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var cls [][]Lit
		for c := 0; c < 60; c++ {
			var lits []Lit
			for k := 0; k < 3; k++ {
				lits = append(lits, MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0))
			}
			cls = append(cls, lits)
			s.AddClause(lits...)
		}
		if s.Solve() != Sat {
			continue
		}
		for _, c := range cls {
			ok := false
			for _, l := range c {
				val := s.ModelValue(l.Var())
				if l.Neg() {
					val = !val
				}
				if val {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("iter %d: model does not satisfy clause %v", iter, c)
			}
		}
	}
}

// bruteForce decides satisfiability by exhaustive enumeration (<= 20 vars).
func bruteForce(nv int, cls [][]Lit) bool {
	for mask := 0; mask < 1<<nv; mask++ {
		ok := true
		for _, c := range cls {
			sat := false
			for _, l := range c {
				val := mask&(1<<(l.Var()-1)) != 0
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestAgainstBruteForce cross-checks random small formulas at the sharp
// sat/unsat threshold (clause/var ratio ~4.3).
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		nv := 4 + rng.Intn(9)
		nc := int(float64(nv) * (3.5 + rng.Float64()*2))
		s := New()
		vars := make([]int, nv)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var cls [][]Lit
		for c := 0; c < nc; c++ {
			var lits []Lit
			for k := 0; k < 3; k++ {
				lits = append(lits, MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0))
			}
			cls = append(cls, lits)
			s.AddClause(lits...)
		}
		want := bruteForce(nv, cls)
		got := s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v (nv=%d nc=%d)", iter, got, want, nv, nc)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if s.Solve(MkLit(a, false)) != Sat {
		t.Fatal("assume a: want sat")
	}
	if !s.ModelValue(b) {
		t.Fatal("a -> b with a assumed: model must have b")
	}
	// Now force ~b and assume a: unsat under assumptions.
	s.AddClause(MkLit(b, true))
	if s.Solve(MkLit(a, false)) != Unsat {
		t.Fatal("assume a with ~b clause: want unsat")
	}
	// Without the assumption the formula is still sat (a=false).
	if s.Solve() != Sat {
		t.Fatal("no assumptions: want sat")
	}
	if s.ModelValue(a) {
		t.Fatal("model should set a false")
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := New()
	x := s.NewVar()
	y := s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(y, false))
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	s.AddClause(MkLit(x, true))
	if s.Solve() != Sat {
		t.Fatal("want sat after adding ~x")
	}
	if s.ModelValue(x) || !s.ModelValue(y) {
		t.Fatal("model must have ~x, y")
	}
	s.AddClause(MkLit(y, true))
	if s.Solve() != Unsat {
		t.Fatal("want unsat after adding ~y")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	// A hard pigeonhole instance.
	n := 8
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		lits := make([]Lit, n)
		for j := 0; j < n; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(MkLit(p[i1][j], true), MkLit(p[i2][j], true))
			}
		}
	}
	s.SetConflictBudget(10)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("tiny budget: got %v, want unknown", got)
	}
}

func TestInterrupt(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	var flag atomic.Bool
	flag.Store(true)
	s.SetInterrupt(&flag)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("interrupted: got %v, want unknown", got)
	}
	flag.Store(false)
	if got := s.Solve(); got != Sat {
		t.Fatalf("after clearing interrupt: got %v, want sat", got)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.Solve()
	st := s.Stats()
	if st.Vars != 2 {
		t.Fatalf("Vars = %d, want 2", st.Vars)
	}
	if st.Clauses != 2 {
		t.Fatalf("Clauses = %d, want 2", st.Clauses)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Fatal("Status.String broken")
	}
}

// TestLargeRandomSat ensures the solver handles a larger under-constrained
// instance quickly and returns a valid model.
func TestLargeRandomSat(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New()
	nv := 500
	vars := make([]int, nv)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	var cls [][]Lit
	for c := 0; c < 1500; c++ {
		var lits []Lit
		for k := 0; k < 3; k++ {
			lits = append(lits, MkLit(vars[rng.Intn(nv)], rng.Intn(2) == 0))
		}
		cls = append(cls, lits)
		s.AddClause(lits...)
	}
	if s.Solve() != Sat {
		t.Skip("random instance happened to be unsat; acceptable")
	}
	for _, c := range cls {
		sat := false
		for _, l := range c {
			val := s.ModelValue(l.Var())
			if l.Neg() {
				val = !val
			}
			if val {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatal("model violates a clause")
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		s := New()
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = MkLit(p[i][j], false)
			}
			s.AddClause(lits...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(MkLit(p[i1][j], true), MkLit(p[i2][j], true))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("want unsat")
		}
	}
}
