package logging

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildJSONLinesParse(t *testing.T) {
	var buf bytes.Buffer
	log, err := Config{Level: "debug", Format: "json"}.Build(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log = Component(log, "test")
	log.Debug("starting", "tenant", "acme")
	log.Info("solved", "job", "j1", "conflicts", int64(42))
	log.Warn("slow check", "trace_id", "abc123")

	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", n, err, sc.Text())
		}
		if rec[KeyComponent] != "test" {
			t.Errorf("line %d: component = %v, want test", n, rec[KeyComponent])
		}
		if rec["msg"] == nil || rec["level"] == nil {
			t.Errorf("line %d missing msg/level: %v", n, rec)
		}
	}
	if n != 3 {
		t.Fatalf("got %d log lines, want 3", n)
	}
}

func TestLevelFilters(t *testing.T) {
	var buf bytes.Buffer
	log, err := Config{Level: "warn", Format: "text"}.Build(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "visible") {
		t.Errorf("warn line missing: %q", out)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := (Config{Level: "loud"}).Build(&bytes.Buffer{}); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := (Config{Format: "xml"}).Build(&bytes.Buffer{}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestComponentNilSafe(t *testing.T) {
	if Component(nil, "x") != nil {
		t.Error("Component(nil) should stay nil")
	}
}
