// Package logging builds the structured loggers shared by the lightyear
// binaries. Every component logs through log/slog with a common attribute
// vocabulary (component, tenant, job, trace_id), so one `-log-format json`
// run yields machine-parseable lines end to end, and `-log-level` gates
// verbosity uniformly across cmd/lyserve, cmd/lightyear, internal/engine
// and internal/store.
package logging

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Attribute keys shared across components. Emitters use these constants so
// downstream pipelines can rely on one vocabulary.
const (
	KeyComponent = "component"
	KeyTenant    = "tenant"
	KeyJob       = "job"
	KeyTraceID   = "trace_id"
)

// Config selects the level and output encoding of a logger. The zero value
// means info-level text — the friendliest default for a terminal.
type Config struct {
	Level  string // debug | info | warn | error
	Format string // text | json
}

// RegisterFlags installs -log-level and -log-format on fs, defaulting to
// the given format ("text" for CLIs, "json" for services).
func (c *Config) RegisterFlags(fs *flag.FlagSet, defaultFormat string) {
	fs.StringVar(&c.Level, "log-level", "info", "log level: debug, info, warn, or error")
	fs.StringVar(&c.Format, "log-format", defaultFormat, "log encoding: text or json")
}

// ParseLevel maps a level name onto slog's leveler. Empty means info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("logging: unknown level %q (want debug, info, warn, or error)", s)
	}
}

// Build constructs the logger described by c, writing to w (conventionally
// stderr, keeping stdout free for the actual program output).
func (c Config) Build(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(c.Format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("logging: unknown format %q (want text or json)", c.Format)
	}
	return slog.New(h), nil
}

// Component returns l annotated with the component attribute, or nil if l
// is nil (callers treat a nil logger as "discard").
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return nil
	}
	return l.With(slog.String(KeyComponent, name))
}
