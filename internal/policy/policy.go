// Package policy defines the route-map intermediate representation shared by
// the whole system: the parser produces it, the BGP simulator executes it
// concretely, and the verifiers (Lightyear and the Minesweeper baseline)
// encode it symbolically. A route map is an ordered list of clauses; each
// clause has match conditions (route predicates from internal/spec), a list
// of attribute-transforming actions, and a permit/deny verdict. The first
// clause whose matches all hold applies; if none applies the map's default
// verdict is used (deny, as in common vendor semantics, unless configured
// otherwise).
//
// The Import/Export functions of the paper's policy model (§3.1) are
// obtained by attaching route maps to directed edges; see internal/topology.
package policy

import (
	"fmt"
	"strings"

	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
	"lightyear/internal/spec"
)

// Action transforms a route. Every action has a concrete semantics (Apply,
// in place) and a symbolic semantics (ApplySym, in place on a derived
// SymRoute); the two must agree, which is verified by property tests.
type Action interface {
	Apply(r *routemodel.Route)
	ApplySym(sr *spec.SymRoute)
	String() string
	AddToUniverse(u *spec.Universe)
}

// SetLocalPref sets the LOCAL_PREF attribute.
type SetLocalPref struct{ Value uint32 }

func (a SetLocalPref) Apply(r *routemodel.Route) { r.LocalPref = a.Value }
func (a SetLocalPref) ApplySym(sr *spec.SymRoute) {
	sr.LocalPref = sr.Ctx.BV(uint64(a.Value), spec.WidthLocalPref)
}
func (a SetLocalPref) String() string               { return fmt.Sprintf("set local-pref %d", a.Value) }
func (SetLocalPref) AddToUniverse(u *spec.Universe) {}

// SetMED sets the MED attribute.
type SetMED struct{ Value uint32 }

func (a SetMED) Apply(r *routemodel.Route) { r.MED = a.Value }
func (a SetMED) ApplySym(sr *spec.SymRoute) {
	sr.MED = sr.Ctx.BV(uint64(a.Value), spec.WidthMED)
}
func (a SetMED) String() string               { return fmt.Sprintf("set med %d", a.Value) }
func (SetMED) AddToUniverse(u *spec.Universe) {}

// SetNextHop sets the NEXT_HOP attribute.
type SetNextHop struct{ Value uint32 }

func (a SetNextHop) Apply(r *routemodel.Route) { r.NextHop = a.Value }
func (a SetNextHop) ApplySym(sr *spec.SymRoute) {
	sr.NextHop = sr.Ctx.BV(uint64(a.Value), spec.WidthNextHop)
}
func (a SetNextHop) String() string               { return fmt.Sprintf("set next-hop %d", a.Value) }
func (SetNextHop) AddToUniverse(u *spec.Universe) {}

// AddCommunity tags the route with a community (additive).
type AddCommunity struct{ Comm routemodel.Community }

func (a AddCommunity) Apply(r *routemodel.Route)      { r.AddCommunity(a.Comm) }
func (a AddCommunity) ApplySym(sr *spec.SymRoute)     { sr.Comm[mustComm(sr, a.Comm)] = sr.Ctx.True() }
func (a AddCommunity) String() string                 { return fmt.Sprintf("set community add %s", a.Comm) }
func (a AddCommunity) AddToUniverse(u *spec.Universe) { u.AddCommunity(a.Comm) }

// DeleteCommunity strips one community from the route.
type DeleteCommunity struct{ Comm routemodel.Community }

func (a DeleteCommunity) Apply(r *routemodel.Route)  { r.RemoveCommunity(a.Comm) }
func (a DeleteCommunity) ApplySym(sr *spec.SymRoute) { sr.Comm[mustComm(sr, a.Comm)] = sr.Ctx.False() }
func (a DeleteCommunity) String() string {
	return fmt.Sprintf("set community delete %s", a.Comm)
}
func (a DeleteCommunity) AddToUniverse(u *spec.Universe) { u.AddCommunity(a.Comm) }

// ClearCommunities removes every community (set community none).
type ClearCommunities struct{}

func (ClearCommunities) Apply(r *routemodel.Route) { r.ClearCommunities() }
func (ClearCommunities) ApplySym(sr *spec.SymRoute) {
	for c := range sr.Comm {
		sr.Comm[c] = sr.Ctx.False()
	}
}
func (ClearCommunities) String() string                 { return "set community none" }
func (ClearCommunities) AddToUniverse(u *spec.Universe) {}

// PrependAS prepends an AS number Count times (AS-path prepending). The
// symbolic encoding tracks path length and AS membership.
type PrependAS struct {
	AS    uint32
	Count int
}

func (a PrependAS) Apply(r *routemodel.Route) {
	for i := 0; i < a.Count; i++ {
		r.PrependAS(a.AS)
	}
}

func (a PrependAS) ApplySym(sr *spec.SymRoute) {
	ctx := sr.Ctx
	sr.PathLen = ctx.Add(sr.PathLen, ctx.BV(uint64(a.Count), spec.WidthPathLen))
	if _, ok := sr.HasAS[a.AS]; !ok {
		panic(fmt.Sprintf("policy: AS %d not in universe", a.AS))
	}
	sr.HasAS[a.AS] = ctx.True()
}

func (a PrependAS) String() string                 { return fmt.Sprintf("set as-path prepend %d x%d", a.AS, a.Count) }
func (a PrependAS) AddToUniverse(u *spec.Universe) { u.AddASN(a.AS) }

// SetGhost sets a ghost attribute (§4.4). Ghost actions never appear in
// parsed configurations; the verifier attaches them to edges according to
// the property's ghost definitions.
type SetGhost struct {
	Name  string
	Value bool
}

func (a SetGhost) Apply(r *routemodel.Route) { r.SetGhost(a.Name, a.Value) }
func (a SetGhost) ApplySym(sr *spec.SymRoute) {
	if _, ok := sr.Ghost[a.Name]; !ok {
		panic(fmt.Sprintf("policy: ghost %q not in universe", a.Name))
	}
	sr.Ghost[a.Name] = sr.Ctx.Bool(a.Value)
}
func (a SetGhost) String() string                 { return fmt.Sprintf("set ghost %s %v", a.Name, a.Value) }
func (a SetGhost) AddToUniverse(u *spec.Universe) { u.AddGhost(a.Name) }

func mustComm(sr *spec.SymRoute, c routemodel.Community) routemodel.Community {
	if _, ok := sr.Comm[c]; !ok {
		panic(fmt.Sprintf("policy: community %s not in universe", c))
	}
	return c
}

// Clause is one term of a route map: if all Matches hold on the input route,
// the Actions apply and the Verdict decides acceptance.
type Clause struct {
	Seq     int
	Matches []spec.Pred // conjunction; empty matches everything
	Actions []Action
	Permit  bool
}

// Matched reports whether the clause's matches all hold on r.
func (c *Clause) Matched(r *routemodel.Route) bool {
	for _, m := range c.Matches {
		if !m.Eval(r) {
			return false
		}
	}
	return true
}

// RouteMap is an ordered sequence of clauses with a default verdict.
type RouteMap struct {
	Name          string
	Clauses       []Clause
	DefaultPermit bool
}

// PermitAll is the identity route map: accept everything unchanged. A nil
// *RouteMap behaves identically; PermitAll exists for explicitness.
func PermitAll(name string) *RouteMap {
	return &RouteMap{Name: name, DefaultPermit: true}
}

// DenyAll rejects everything.
func DenyAll(name string) *RouteMap {
	return &RouteMap{Name: name, DefaultPermit: false}
}

// Apply runs the route map on r, returning the transformed route and whether
// it was accepted. The input route is never mutated; the returned route is a
// fresh clone even when accepted unchanged. A nil map permits everything.
func (m *RouteMap) Apply(r *routemodel.Route) (*routemodel.Route, bool) {
	if m == nil {
		return r.Clone(), true
	}
	for i := range m.Clauses {
		c := &m.Clauses[i]
		if !c.Matched(r) {
			continue
		}
		if !c.Permit {
			return nil, false
		}
		out := r.Clone()
		for _, a := range c.Actions {
			a.Apply(out)
		}
		return out, true
	}
	if m.DefaultPermit {
		return r.Clone(), true
	}
	return nil, false
}

// Encode produces the symbolic semantics of the route map applied to the
// symbolic input route sr: the derived output route and a boolean term that
// is true iff the input is accepted. Matches are evaluated against the
// input route (first-match semantics), mirroring Apply.
func (m *RouteMap) Encode(sr *spec.SymRoute) (*spec.SymRoute, *smt.Term) {
	ctx := sr.Ctx
	if m == nil {
		return sr.Clone(), ctx.True()
	}
	// Fold clauses from the last to the first so that earlier clauses win.
	out := sr.Clone()
	accepted := ctx.Bool(m.DefaultPermit)
	for i := len(m.Clauses) - 1; i >= 0; i-- {
		c := &m.Clauses[i]
		match := ctx.True()
		for _, p := range c.Matches {
			match = ctx.And(match, p.Compile(sr))
		}
		if c.Permit {
			eff := sr.Clone()
			for _, a := range c.Actions {
				a.ApplySym(eff)
			}
			out = spec.Ite(match, eff, out)
			accepted = ctx.Ite(match, ctx.True(), accepted)
		} else {
			// Deny: the output route is irrelevant; keep the else branch.
			accepted = ctx.Ite(match, ctx.False(), accepted)
			out = spec.Ite(match, sr, out)
		}
	}
	return out, accepted
}

// AddToUniverse records every community/ASN/ghost the route map mentions.
func (m *RouteMap) AddToUniverse(u *spec.Universe) {
	if m == nil {
		return
	}
	for i := range m.Clauses {
		for _, p := range m.Clauses[i].Matches {
			p.AddToUniverse(u)
		}
		for _, a := range m.Clauses[i].Actions {
			a.AddToUniverse(u)
		}
	}
}

// String renders the route map in a config-like notation.
func (m *RouteMap) String() string {
	if m == nil {
		return "<permit-all>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "route-map %s", m.Name)
	if m.DefaultPermit {
		b.WriteString(" default-permit")
	}
	b.WriteString("\n")
	for i := range m.Clauses {
		c := &m.Clauses[i]
		verdict := "deny"
		if c.Permit {
			verdict = "permit"
		}
		fmt.Fprintf(&b, "  term %d %s\n", c.Seq, verdict)
		for _, p := range c.Matches {
			fmt.Fprintf(&b, "    match %s\n", p)
		}
		for _, a := range c.Actions {
			fmt.Fprintf(&b, "    %s\n", a)
		}
	}
	return b.String()
}
