package policy

import (
	"fmt"

	"lightyear/internal/routemodel"
	"lightyear/internal/spec"
)

// ActionWire is the serializable form of an Action: a tagged union keyed by
// Op, mirroring the closed set of action types in this package. Together
// with spec.PredWire it lets route maps travel to remote solver workers.
type ActionWire struct {
	// Op tags the action: "set_lp", "set_med", "set_nh", "add_comm",
	// "del_comm", "clear_comms", "prepend_as", "set_ghost".
	Op string `json:"op"`
	// U32 carries the scalar operand (local-pref, MED, next-hop, community
	// bits, or ASN).
	U32 uint32 `json:"u32,omitempty"`
	// Count is the prepend repetition for prepend_as.
	Count int `json:"count,omitempty"`
	// Name is the ghost name for set_ghost.
	Name string `json:"name,omitempty"`
	// Value is the ghost value for set_ghost.
	Value bool `json:"value,omitempty"`
}

// EncodeAction converts an action to its wire form. Actions defined outside
// this package have no wire tag and fail; callers treat that as "not
// remotable".
func EncodeAction(a Action) (*ActionWire, error) {
	switch q := a.(type) {
	case SetLocalPref:
		return &ActionWire{Op: "set_lp", U32: q.Value}, nil
	case SetMED:
		return &ActionWire{Op: "set_med", U32: q.Value}, nil
	case SetNextHop:
		return &ActionWire{Op: "set_nh", U32: q.Value}, nil
	case AddCommunity:
		return &ActionWire{Op: "add_comm", U32: uint32(q.Comm)}, nil
	case DeleteCommunity:
		return &ActionWire{Op: "del_comm", U32: uint32(q.Comm)}, nil
	case ClearCommunities:
		return &ActionWire{Op: "clear_comms"}, nil
	case PrependAS:
		return &ActionWire{Op: "prepend_as", U32: q.AS, Count: q.Count}, nil
	case SetGhost:
		return &ActionWire{Op: "set_ghost", Name: q.Name, Value: q.Value}, nil
	default:
		return nil, fmt.Errorf("policy: action %T has no wire form", a)
	}
}

// Action reconstructs the action a wire node describes.
func (w *ActionWire) Action() (Action, error) {
	if w == nil {
		return nil, fmt.Errorf("policy: nil action wire node")
	}
	switch w.Op {
	case "set_lp":
		return SetLocalPref{Value: w.U32}, nil
	case "set_med":
		return SetMED{Value: w.U32}, nil
	case "set_nh":
		return SetNextHop{Value: w.U32}, nil
	case "add_comm":
		return AddCommunity{Comm: routemodel.Community(w.U32)}, nil
	case "del_comm":
		return DeleteCommunity{Comm: routemodel.Community(w.U32)}, nil
	case "clear_comms":
		return ClearCommunities{}, nil
	case "prepend_as":
		return PrependAS{AS: w.U32, Count: w.Count}, nil
	case "set_ghost":
		return SetGhost{Name: w.Name, Value: w.Value}, nil
	default:
		return nil, fmt.Errorf("policy: unknown action op %q", w.Op)
	}
}

// EncodeActions converts a slice of actions to wire form.
func EncodeActions(as []Action) ([]*ActionWire, error) {
	out := make([]*ActionWire, len(as))
	for i, a := range as {
		w, err := EncodeAction(a)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// DecodeActions reconstructs a slice of actions from wire form.
func DecodeActions(ws []*ActionWire) ([]Action, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]Action, len(ws))
	for i, w := range ws {
		a, err := w.Action()
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// ClauseWire is the serializable form of one route-map clause.
type ClauseWire struct {
	Seq     int              `json:"seq"`
	Matches []*spec.PredWire `json:"matches,omitempty"`
	Actions []*ActionWire    `json:"actions,omitempty"`
	Permit  bool             `json:"permit"`
}

// RouteMapWire is the serializable form of a RouteMap.
type RouteMapWire struct {
	Name          string       `json:"name"`
	Clauses       []ClauseWire `json:"clauses,omitempty"`
	DefaultPermit bool         `json:"default_permit"`
}

// EncodeRouteMap converts a route map to wire form; nil encodes to nil
// (permit-all semantics are preserved by the nil map).
func EncodeRouteMap(m *RouteMap) (*RouteMapWire, error) {
	if m == nil {
		return nil, nil
	}
	w := &RouteMapWire{Name: m.Name, DefaultPermit: m.DefaultPermit}
	for i := range m.Clauses {
		c := &m.Clauses[i]
		cw := ClauseWire{Seq: c.Seq, Permit: c.Permit}
		for _, p := range c.Matches {
			pw, err := spec.EncodePred(p)
			if err != nil {
				return nil, fmt.Errorf("policy: route map %q clause %d: %w", m.Name, c.Seq, err)
			}
			cw.Matches = append(cw.Matches, pw)
		}
		acts, err := EncodeActions(c.Actions)
		if err != nil {
			return nil, fmt.Errorf("policy: route map %q clause %d: %w", m.Name, c.Seq, err)
		}
		cw.Actions = acts
		w.Clauses = append(w.Clauses, cw)
	}
	return w, nil
}

// RouteMap reconstructs the route map a wire form describes; nil decodes to
// nil.
func (w *RouteMapWire) RouteMap() (*RouteMap, error) {
	if w == nil {
		return nil, nil
	}
	m := &RouteMap{Name: w.Name, DefaultPermit: w.DefaultPermit}
	for _, cw := range w.Clauses {
		c := Clause{Seq: cw.Seq, Permit: cw.Permit}
		for _, pw := range cw.Matches {
			p, err := pw.Pred()
			if err != nil {
				return nil, fmt.Errorf("policy: route map %q clause %d: %w", w.Name, cw.Seq, err)
			}
			c.Matches = append(c.Matches, p)
		}
		acts, err := DecodeActions(cw.Actions)
		if err != nil {
			return nil, fmt.Errorf("policy: route map %q clause %d: %w", w.Name, cw.Seq, err)
		}
		c.Actions = acts
		m.Clauses = append(m.Clauses, c)
	}
	return m, nil
}
