package policy

import (
	"math/rand"
	"testing"

	"lightyear/internal/routemodel"
	"lightyear/internal/smt"
	"lightyear/internal/spec"
)

var (
	c100_1 = routemodel.MustCommunity("100:1")
	c100_2 = routemodel.MustCommunity("100:2")
	c200_1 = routemodel.MustCommunity("200:1")
)

func testUniverse() *spec.Universe {
	u := spec.NewUniverse()
	u.AddCommunity(c100_1)
	u.AddCommunity(c100_2)
	u.AddCommunity(c200_1)
	u.AddASN(65001)
	u.AddASN(174)
	u.AddGhost("FromISP1")
	return u
}

func TestNilMapPermitsUnchanged(t *testing.T) {
	var m *RouteMap
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	r.AddCommunity(c100_1)
	out, ok := m.Apply(r)
	if !ok {
		t.Fatal("nil map must permit")
	}
	if !out.Equal(r) {
		t.Fatal("nil map must not transform")
	}
	if out == r {
		t.Fatal("Apply must clone")
	}
}

func TestPermitAllDenyAll(t *testing.T) {
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	if _, ok := PermitAll("p").Apply(r); !ok {
		t.Fatal("PermitAll denied")
	}
	if _, ok := DenyAll("d").Apply(r); ok {
		t.Fatal("DenyAll permitted")
	}
}

func TestFirstMatchWins(t *testing.T) {
	m := &RouteMap{
		Name: "m",
		Clauses: []Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(c100_1)}, Permit: false},
			{Seq: 20, Matches: nil, Actions: []Action{SetLocalPref{200}}, Permit: true},
		},
	}
	tagged := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	tagged.AddCommunity(c100_1)
	if _, ok := m.Apply(tagged); ok {
		t.Fatal("first clause should deny tagged route")
	}
	plain := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	out, ok := m.Apply(plain)
	if !ok || out.LocalPref != 200 {
		t.Fatalf("second clause should permit with lp=200, got %v %v", out, ok)
	}
}

func TestDefaultDeny(t *testing.T) {
	m := &RouteMap{
		Name: "m",
		Clauses: []Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(c100_1)}, Permit: true},
		},
	}
	plain := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	if _, ok := m.Apply(plain); ok {
		t.Fatal("unmatched route must hit default deny")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	m := &RouteMap{
		Name: "m",
		Clauses: []Clause{
			{Seq: 10, Actions: []Action{AddCommunity{c200_1}, SetLocalPref{50}, ClearCommunities{}}, Permit: true},
		},
	}
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	r.AddCommunity(c100_1)
	m.Apply(r)
	if !r.HasCommunity(c100_1) || r.LocalPref != 100 {
		t.Fatal("input route was mutated")
	}
}

func TestActions(t *testing.T) {
	r := routemodel.NewRoute(routemodel.MustPrefix("10.0.0.0/24"))
	r.AddCommunity(c100_1)

	SetLocalPref{250}.Apply(r)
	SetMED{30}.Apply(r)
	SetNextHop{9}.Apply(r)
	AddCommunity{c200_1}.Apply(r)
	DeleteCommunity{c100_1}.Apply(r)
	SetGhost{"FromISP1", true}.Apply(r)
	PrependAS{65001, 2}.Apply(r)

	if r.LocalPref != 250 || r.MED != 30 || r.NextHop != 9 {
		t.Fatalf("scalar actions: %v", r)
	}
	if r.HasCommunity(c100_1) || !r.HasCommunity(c200_1) {
		t.Fatalf("community actions: %v", r)
	}
	if !r.GhostValue("FromISP1") {
		t.Fatal("ghost action")
	}
	if len(r.ASPath) != 2 || r.ASPath[0] != 65001 {
		t.Fatalf("prepend: %v", r.ASPath)
	}
	ClearCommunities{}.Apply(r)
	if r.HasCommunity(c200_1) {
		t.Fatal("clear communities")
	}
}

// encodeAndSolve runs the symbolic semantics on a concrete input by
// constraining the input route and extracting the output attributes.
func encodeAndSolve(t *testing.T, m *RouteMap, in *routemodel.Route, u *spec.Universe) (accepted bool, lp uint64, comm map[routemodel.Community]bool, ghost map[string]bool, med, plen, pathlen uint64) {
	t.Helper()
	ctx := smt.NewContext()
	sr := spec.NewSymRoute(ctx, "in", u)
	out, acc := m.Encode(sr)

	s := smt.NewSolver(ctx)
	s.Assert(spec.Constrain(sr, in))
	// Bind output attributes to fresh observation variables so we can read
	// them from the model.
	obsLP := ctx.BVVar("obs.lp", spec.WidthLocalPref)
	obsMED := ctx.BVVar("obs.med", spec.WidthMED)
	obsPL := ctx.BVVar("obs.plen", spec.WidthPrefixLen)
	obsPathLen := ctx.BVVar("obs.pathlen", spec.WidthPathLen)
	obsAcc := ctx.BoolVar("obs.acc")
	s.Assert(ctx.Eq(obsLP, out.LocalPref))
	s.Assert(ctx.Eq(obsMED, out.MED))
	s.Assert(ctx.Eq(obsPL, out.PrefixLen))
	s.Assert(ctx.Eq(obsPathLen, out.PathLen))
	s.Assert(ctx.Iff(obsAcc, acc))
	obsComm := map[routemodel.Community]*smt.Term{}
	for c, term := range out.Comm {
		v := ctx.BoolVar("obs.comm." + c.String())
		s.Assert(ctx.Iff(v, term))
		obsComm[c] = v
	}
	obsGhost := map[string]*smt.Term{}
	for g, term := range out.Ghost {
		v := ctx.BoolVar("obs.ghost." + g)
		s.Assert(ctx.Iff(v, term))
		obsGhost[g] = v
	}
	res := s.Check()
	if res.Status != smt.Sat {
		t.Fatalf("symbolic execution unsat for input %v", in)
	}
	comm = map[routemodel.Community]bool{}
	for c := range obsComm {
		comm[c] = res.Model.Bool("obs.comm." + c.String())
	}
	ghost = map[string]bool{}
	for g := range obsGhost {
		ghost[g] = res.Model.Bool("obs.ghost." + g)
	}
	return res.Model.Bool("obs.acc"), res.Model.BV("obs.lp"), comm, ghost,
		res.Model.BV("obs.med"), res.Model.BV("obs.plen"), res.Model.BV("obs.pathlen")
}

// randomRouteMap builds a random but well-formed route map over the test
// universe.
func randomRouteMap(rng *rand.Rand) *RouteMap {
	comms := []routemodel.Community{c100_1, c100_2, c200_1}
	randMatch := func() spec.Pred {
		switch rng.Intn(5) {
		case 0:
			return spec.HasCommunity(comms[rng.Intn(len(comms))])
		case 1:
			return spec.Not(spec.HasCommunity(comms[rng.Intn(len(comms))]))
		case 2:
			s := &routemodel.PrefixSet{}
			s.AddRange(routemodel.MustPrefix("10.0.0.0/8"), 8, 24)
			return spec.PrefixIn(s)
		case 3:
			return spec.PathContains(174)
		default:
			return spec.Ghost("FromISP1")
		}
	}
	randAction := func() Action {
		switch rng.Intn(7) {
		case 0:
			return SetLocalPref{uint32(rng.Intn(1000))}
		case 1:
			return SetMED{uint32(rng.Intn(1000))}
		case 2:
			return AddCommunity{comms[rng.Intn(len(comms))]}
		case 3:
			return DeleteCommunity{comms[rng.Intn(len(comms))]}
		case 4:
			return ClearCommunities{}
		case 5:
			return PrependAS{65001, 1 + rng.Intn(2)}
		default:
			return SetGhost{"FromISP1", rng.Intn(2) == 0}
		}
	}
	m := &RouteMap{Name: "rand", DefaultPermit: rng.Intn(2) == 0}
	for i := 0; i < 1+rng.Intn(4); i++ {
		c := Clause{Seq: (i + 1) * 10, Permit: rng.Intn(3) != 0}
		for j := rng.Intn(3); j > 0; j-- {
			c.Matches = append(c.Matches, randMatch())
		}
		if c.Permit {
			for j := rng.Intn(3); j > 0; j-- {
				c.Actions = append(c.Actions, randAction())
			}
		}
		m.Clauses = append(m.Clauses, c)
	}
	return m
}

func randomRoute(rng *rand.Rand) *routemodel.Route {
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "10.2.3.0/24", "192.168.1.0/24", "8.8.0.0/16"}
	r := routemodel.NewRoute(routemodel.MustPrefix(prefixes[rng.Intn(len(prefixes))]))
	r.LocalPref = uint32(rng.Intn(1000))
	r.MED = uint32(rng.Intn(1000))
	r.NextHop = uint32(rng.Intn(100))
	for _, c := range []routemodel.Community{c100_1, c100_2, c200_1} {
		if rng.Intn(2) == 0 {
			r.AddCommunity(c)
		}
	}
	if rng.Intn(2) == 0 {
		r.ASPath = append(r.ASPath, 174)
	}
	if rng.Intn(2) == 0 {
		r.ASPath = append(r.ASPath, 65001)
	}
	if rng.Intn(2) == 0 {
		r.SetGhost("FromISP1", true)
	}
	return r
}

// TestConcreteSymbolicAgreement is the central soundness property for route
// maps: Apply and Encode must agree on acceptance and on every transformed
// attribute, for random maps and random routes.
func TestConcreteSymbolicAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	u := testUniverse()
	for iter := 0; iter < 60; iter++ {
		m := randomRouteMap(rng)
		in := randomRoute(rng)
		wantOut, wantOK := m.Apply(in)
		gotOK, lp, comm, ghost, med, plen, pathlen := encodeAndSolve(t, m, in, u)
		if gotOK != wantOK {
			t.Fatalf("iter %d: acceptance mismatch concrete=%v symbolic=%v\nmap:\n%s\nroute: %v", iter, wantOK, gotOK, m, in)
		}
		if !wantOK {
			continue
		}
		if uint32(lp) != wantOut.LocalPref {
			t.Fatalf("iter %d: lp mismatch %d vs %d\nmap:\n%s\nroute: %v", iter, lp, wantOut.LocalPref, m, in)
		}
		if uint32(med) != wantOut.MED {
			t.Fatalf("iter %d: med mismatch %d vs %d", iter, med, wantOut.MED)
		}
		if uint8(plen) != wantOut.Prefix.Len {
			t.Fatalf("iter %d: prefix len mismatch", iter)
		}
		if int(pathlen) != len(wantOut.ASPath) {
			t.Fatalf("iter %d: path length mismatch %d vs %d\nmap:\n%s\nroute: %v", iter, pathlen, len(wantOut.ASPath), m, in)
		}
		for c, got := range comm {
			if got != wantOut.HasCommunity(c) {
				t.Fatalf("iter %d: community %s mismatch sym=%v concrete=%v\nmap:\n%s\nroute: %v", iter, c, got, wantOut.HasCommunity(c), m, in)
			}
		}
		for g, got := range ghost {
			if got != wantOut.GhostValue(g) {
				t.Fatalf("iter %d: ghost %s mismatch", iter, g)
			}
		}
	}
}

func TestEncodeAcceptanceFormula(t *testing.T) {
	// A map that denies routes with 100:1 and permits the rest must yield an
	// acceptance formula equivalent to "not has(100:1)".
	m := &RouteMap{
		Name: "no-transit",
		Clauses: []Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(c100_1)}, Permit: false},
			{Seq: 20, Permit: true},
		},
	}
	ctx := smt.NewContext()
	u := testUniverse()
	sr := spec.NewSymRoute(ctx, "r", u)
	_, acc := m.Encode(sr)
	// acc xor not(has 100:1) must be unsat.
	diff := ctx.Xor(acc, ctx.Not(sr.CommTerm(c100_1)))
	if res := smt.Solve(ctx, diff); res.Status != smt.Unsat {
		t.Fatalf("acceptance formula not equivalent: %v", res.Status)
	}
}

func TestRouteMapString(t *testing.T) {
	m := &RouteMap{
		Name: "m",
		Clauses: []Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(c100_1)}, Actions: []Action{SetLocalPref{10}}, Permit: true},
			{Seq: 20, Permit: false},
		},
	}
	if m.String() == "" || (*RouteMap)(nil).String() == "" {
		t.Fatal("String rendering")
	}
	for _, a := range []Action{SetLocalPref{1}, SetMED{1}, SetNextHop{1}, AddCommunity{c100_1}, DeleteCommunity{c100_1}, ClearCommunities{}, PrependAS{1, 1}, SetGhost{"g", true}} {
		if a.String() == "" {
			t.Fatal("action String")
		}
	}
}

func TestAddToUniverse(t *testing.T) {
	m := &RouteMap{
		Name: "m",
		Clauses: []Clause{
			{Seq: 10, Matches: []spec.Pred{spec.HasCommunity(c100_1)}, Actions: []Action{AddCommunity{c200_1}, SetGhost{"G", true}, PrependAS{65009, 1}}, Permit: true},
		},
	}
	u := spec.NewUniverse()
	m.AddToUniverse(u)
	if !u.HasCommunity(c100_1) || !u.HasCommunity(c200_1) {
		t.Fatal("communities not collected")
	}
	if len(u.Ghosts()) != 1 || len(u.ASNs()) != 1 {
		t.Fatal("ghost/ASN not collected")
	}
	var nilMap *RouteMap
	nilMap.AddToUniverse(u) // must not panic
}
