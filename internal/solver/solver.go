// Package solver is the pluggable solving layer between check generation
// (core.Obligation) and check execution: a Backend decides one declarative
// obligation under a budget, and different backends trade latency,
// throughput, and robustness differently.
//
// The paper's local checks are independent SAT queries, which makes the
// solver the natural scaling seam — the same modularity-for-scale move the
// paper makes at the network layer. Three backends ship:
//
//   - native: one in-process CDCL solve per obligation (the classic path);
//   - portfolio: races N heuristic variants of the native solver (VSIDS vs
//     static order, phase polarity, restarts on/off) and takes the first
//     verdict, cancelling the losers via context — robust against a single
//     heuristic stalling on an adversarial instance;
//   - tiered: a small conflict-budget attempt first, escalating to the full
//     budget only on Unknown — cheap checks stay cheap, hard checks still
//     finish, and the quick tier bounds tail latency for the common case.
//
// Backends are selected by name through Spec (the JSON form used by plan
// requests, the lightyear -solver flag, and lyserve), or constructed
// directly. All backends are stateless and safe for concurrent use; the
// engine calls Solve from many workers at once.
package solver

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lightyear/internal/core"
)

// Budget bounds one obligation solve.
type Budget struct {
	// Conflicts caps SAT conflicts per solve attempt; 0 means unlimited.
	Conflicts int64
}

// Outcome is a backend's answer for one obligation: the check result
// (identity fields carry the obligation's identity; callers re-stamp them
// for relabeled checks) plus routing metadata the engine aggregates into
// per-backend statistics.
type Outcome struct {
	core.CheckResult

	// Raced is the number of solver variants raced for this obligation
	// (portfolio; 0 or 1 elsewhere).
	Raced int
	// Escalated reports that a tiered solve exhausted its quick budget and
	// re-solved at full budget.
	Escalated bool
}

// Backend decides obligations. Implementations must be safe for concurrent
// use and must honor ctx cancellation: a cancelled solve returns an Outcome
// with StatusUnknown rather than blocking.
type Backend interface {
	// Name is the backend's registry name ("native", "portfolio", "tiered").
	Name() string
	// Solve decides one obligation under the budget.
	Solve(ctx context.Context, ob *core.Obligation, b Budget) Outcome
}

// SameConfig reports whether two backends are interchangeable: the same
// instance, or instances exposing equal configuration fingerprints (the
// optional Fingerprint() string method the built-in backends implement).
// Execution substrates use it to decide whether an Unknown from one job's
// solve may stand in for another job's — equal configurations would only
// reproduce the same give-up.
func SameConfig(a, b Backend) bool {
	if a == b {
		return true
	}
	af, aok := a.(interface{ Fingerprint() string })
	bf, bok := b.(interface{ Fingerprint() string })
	return aok && bok && af.Fingerprint() == bf.Fingerprint()
}

// Spec is the serializable backend selection carried by plan requests
// (`"solver": {"backend": "portfolio", "budget": 4096}`), the lightyear
// -solver flag, and lyserve v2 request bodies.
type Spec struct {
	// Backend names the backend; empty means "native".
	Backend string `json:"backend,omitempty"`
	// Budget is the per-check conflict budget. For native and portfolio it
	// caps every solve (0 = unlimited, or the caller's budget); for tiered
	// it is the quick tier's budget (0 = DefaultTierBudget), with escalation
	// running at the caller's budget. The remote backend forwards it to
	// workers per solve.
	Budget int64 `json:"budget,omitempty"`
	// Workers is the worker pool for the remote backend ("host:port"
	// addresses); ignored by local backends. The -solver flag form is
	// "remote:host1,host2".
	Workers []string `json:"workers,omitempty"`
}

// String renders the spec as the CLI accepts it: "backend",
// "backend:budget", or "remote:host1,host2".
func (s Spec) String() string {
	name := s.Backend
	if name == "" {
		name = "native"
	}
	if name == RemoteName {
		return fmt.Sprintf("%s:%s", name, strings.Join(s.Workers, ","))
	}
	if s.Budget > 0 {
		return fmt.Sprintf("%s:%d", name, s.Budget)
	}
	return name
}

// ParseSpec parses the -solver flag syntax: "backend[:budget]" for local
// backends, "remote:host1,host2,..." for the distributed fabric.
func ParseSpec(s string) (Spec, error) {
	var out Spec
	name, rest, ok := strings.Cut(s, ":")
	out.Backend = strings.TrimSpace(name)
	if out.Backend == RemoteName {
		for _, w := range strings.Split(rest, ",") {
			if w = strings.TrimSpace(w); w != "" {
				out.Workers = append(out.Workers, w)
			}
		}
		if len(out.Workers) == 0 {
			return out, fmt.Errorf("solver: remote backend needs workers: %q (want remote:host1,host2)", s)
		}
		return out, nil
	}
	if ok {
		n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil || n <= 0 {
			return out, fmt.Errorf("solver: bad budget %q in %q (want a positive integer)", rest, s)
		}
		out.Budget = n
	}
	if !Known(out.Backend) {
		return out, fmt.Errorf("solver: unknown backend %q (have: %s)", out.Backend, strings.Join(Names(), ", "))
	}
	return out, nil
}

// registry is the single source of local backend names: New, Known, and
// Names all derive from it, so adding a backend is one entry here. The
// remote backend is the one exception — it lives in internal/fabric (which
// imports this package) and plugs in through RegisterRemote.
var registry = map[string]func(budget int64) Backend{
	"native":    Native,
	"portfolio": Portfolio,
	"tiered":    Tiered,
}

// RemoteName is the registry name of the distributed fabric backend.
const RemoteName = "remote"

// remoteFactory builds remote backends; internal/fabric installs it via
// RegisterRemote (importing fabric from here would be a dependency cycle:
// fabric is a Backend implementation and imports this package).
var remoteFactory func(Spec) (Backend, error)

// RegisterRemote installs the remote backend constructor. Called once from
// internal/fabric's init; binaries that want -solver remote import fabric.
func RegisterRemote(mk func(Spec) (Backend, error)) { remoteFactory = mk }

// New constructs the backend a spec names ("" selects native).
func New(s Spec) (Backend, error) {
	name := s.Backend
	if name == "" {
		name = "native"
	}
	if name == RemoteName {
		if remoteFactory == nil {
			return nil, fmt.Errorf("solver: remote backend not linked in (import lightyear/internal/fabric)")
		}
		return remoteFactory(s)
	}
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("solver: unknown backend %q (have: %s)", s.Backend, strings.Join(Names(), ", "))
	}
	return mk(s.Budget), nil
}

// Known reports whether name selects a backend ("" selects native).
func Known(name string) bool {
	if name == "" || name == RemoteName {
		return true
	}
	_, ok := registry[name]
	return ok
}

// Names returns the selectable backend names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry)+1)
	for name := range registry {
		names = append(names, name)
	}
	names = append(names, RemoteName)
	sort.Strings(names)
	return names
}

// effective resolves the conflict budget for one solve: a backend-bound
// budget (from Spec.Budget) overrides the caller's, otherwise the caller's
// applies.
func effective(bound int64, b Budget) int64 {
	if bound > 0 {
		return bound
	}
	return b.Conflicts
}

// Runner adapts a backend onto the core.CheckSolver seam, so the standalone
// runners (core.LocalRunner via Options.Solver) execute on the same backends
// the engine routes to.
func Runner(b Backend) core.CheckSolver {
	return func(ctx context.Context, ob *core.Obligation, conflictBudget int64) core.CheckResult {
		return b.Solve(ctx, ob, Budget{Conflicts: conflictBudget}).CheckResult
	}
}
