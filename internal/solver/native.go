package solver

import (
	"context"
	"fmt"

	"lightyear/internal/core"
)

// native is the classic path: one in-process CDCL solve with the stock
// heuristics.
type native struct {
	budget int64 // bound per-solve conflict budget; 0 defers to the caller's
}

// Native returns the default backend: one in-process solve per obligation.
// budget, when positive, caps conflicts per solve regardless of the caller's
// budget (the Spec.Budget binding); 0 defers to the caller.
func Native(budget int64) Backend { return native{budget: budget} }

func (native) Name() string { return "native" }

// Fingerprint identifies the backend's configuration: equal fingerprints
// behave identically, so an execution substrate may share results —
// including Unknowns — between them.
func (n native) Fingerprint() string { return fmt.Sprintf("native:%d", n.budget) }

func (n native) Solve(ctx context.Context, ob *core.Obligation, b Budget) Outcome {
	return Outcome{CheckResult: ob.Solve(ctx, core.SolveConfig{
		ConflictBudget: effective(n.budget, b),
		Backend:        "native",
	})}
}
