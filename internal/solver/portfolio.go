package solver

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"lightyear/internal/core"
)

// Variant is one heuristic configuration of the native solver raced by the
// portfolio backend.
type Variant struct {
	// Name labels results solved by this variant ("portfolio/<name>").
	Name string
	// The heuristic axes, mirroring core.SolveConfig.
	DisableVSIDS    bool
	DisableRestarts bool
	PositivePhase   bool
}

// DefaultVariants returns the stock portfolio: the default configuration
// plus one variant per heuristic axis. SAT instances that stall one
// branching or phase heuristic are usually easy for another, so the first
// verdict tends to arrive much sooner than the worst variant would.
func DefaultVariants() []Variant {
	return []Variant{
		{Name: "vsids"},                             // stock: VSIDS + Luby restarts + negative phase
		{Name: "pos-phase", PositivePhase: true},    // branch true-first
		{Name: "static", DisableVSIDS: true},        // static variable order
		{Name: "no-restart", DisableRestarts: true}, // no Luby restarts
	}
}

// portfolio races its variants and returns the first verdict, cancelling
// the losers.
type portfolio struct {
	budget   int64
	variants []Variant
	// solve is the per-variant solve function — a seam so tests can observe
	// loser cancellation deterministically; production uses Obligation.Solve.
	solve func(ctx context.Context, ob *core.Obligation, cfg core.SolveConfig) core.CheckResult
}

// Portfolio returns the racing backend over DefaultVariants. budget, when
// positive, caps conflicts per variant (the Spec.Budget binding); 0 defers
// to the caller's budget.
func Portfolio(budget int64) Backend { return newPortfolio(budget, DefaultVariants()) }

// PortfolioOf returns a racing backend over explicit variants (at least
// one).
func PortfolioOf(budget int64, variants []Variant) Backend {
	if len(variants) == 0 {
		panic("solver: portfolio needs at least one variant")
	}
	return newPortfolio(budget, variants)
}

func newPortfolio(budget int64, variants []Variant) *portfolio {
	return &portfolio{
		budget:   budget,
		variants: variants,
		solve: func(ctx context.Context, ob *core.Obligation, cfg core.SolveConfig) core.CheckResult {
			return ob.Solve(ctx, cfg)
		},
	}
}

func (*portfolio) Name() string { return "portfolio" }

// Fingerprint identifies the backend's configuration (budget + the full
// variant set, heuristic flags included): equal fingerprints behave
// identically, so results may be shared.
func (p *portfolio) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "portfolio:%d", p.budget)
	for _, v := range p.variants {
		fmt.Fprintf(&b, ":%+v", v)
	}
	return b.String()
}

// Solve races every variant in its own goroutine; the first decided result
// (StatusOK or StatusFail) wins and the losers are cancelled via context.
// All variant goroutines have returned by the time Solve returns — the
// cancelled losers observe the interrupt flag at their next SAT-loop
// iteration, so the race is bounded by one propagation round, not a full
// solve. If every variant comes back Unknown (shared budget exhausted, or
// the caller's ctx cancelled), the first variant's Unknown is returned.
func (p *portfolio) Solve(ctx context.Context, ob *core.Obligation, b Budget) Outcome {
	if ob.Concrete() || len(p.variants) == 1 {
		// Concrete obligations are evaluated, not solved: racing buys
		// nothing. A single-variant portfolio degenerates likewise.
		v := p.variants[0]
		r := p.solve(ctx, ob, p.config(v, b))
		return Outcome{CheckResult: r, Raced: 1}
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]core.CheckResult, len(p.variants))
	decided := make(chan int, len(p.variants))
	var wg sync.WaitGroup
	for i, v := range p.variants {
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			results[i] = p.solve(raceCtx, ob, p.config(v, b))
			if results[i].Status != core.StatusUnknown {
				decided <- i
			}
		}(i, v)
	}
	// Close decided only after every variant returned, so the winner drain
	// below terminates when all variants come back Unknown.
	go func() {
		wg.Wait()
		close(decided)
	}()

	winner, ok := <-decided
	cancel()
	wg.Wait() // losers observe the cancel and return Unknown promptly

	if !ok {
		// No variant decided: surface the first variant's Unknown.
		return Outcome{CheckResult: results[0], Raced: len(p.variants)}
	}
	return Outcome{CheckResult: results[winner], Raced: len(p.variants)}
}

func (p *portfolio) config(v Variant, b Budget) core.SolveConfig {
	return core.SolveConfig{
		ConflictBudget:  effective(p.budget, b),
		DisableVSIDS:    v.DisableVSIDS,
		DisableRestarts: v.DisableRestarts,
		PositivePhase:   v.PositivePhase,
		Backend:         "portfolio/" + v.Name,
	}
}
