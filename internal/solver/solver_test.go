package solver_test

import (
	"context"
	"reflect"
	"testing"

	"lightyear/internal/core"
	_ "lightyear/internal/fabric" // registers the remote backend
	"lightyear/internal/netgen"
	"lightyear/internal/solver"
	"lightyear/internal/topology"
)

// suiteNetwork builds a network appropriate for a registered suite.
func suiteNetwork(name string) (*topology.Network, netgen.SuiteParams) {
	switch name {
	case "fullmesh":
		return netgen.FullMesh(4), netgen.SuiteParams{}
	case "wan-peering", "wan-ip-reuse", "wan-ip-liveness":
		p := netgen.WANParams{Regions: 2, RoutersPerRegion: 2, EdgeRouters: 1, DCsPerRegion: 1, PeersPerEdge: 2}
		return netgen.WAN(p, netgen.WANBugs{}), netgen.SuiteParams{Regions: p.Regions}
	default: // the fig1 suites
		return netgen.Fig1(netgen.Fig1Options{}), netgen.SuiteParams{}
	}
}

// obligations enumerates the unique obligations (by semantic key) of every
// problem a suite builds on n. Optional problems whose path is absent are
// skipped, mirroring every execution substrate.
func obligations(t *testing.T, s netgen.Suite, n *topology.Network, params netgen.SuiteParams) []*core.Obligation {
	t.Helper()
	seen := map[string]bool{}
	var out []*core.Obligation
	for _, p := range s.Build(n, params) {
		var checks []core.Check
		var err error
		switch {
		case p.Safety != nil:
			checks = p.Safety.Checks(core.Options{})
		case p.Liveness != nil:
			checks, err = p.Liveness.Checks(core.Options{})
		}
		if err != nil {
			if p.Optional {
				continue
			}
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, c := range checks {
			if k := c.Key(); k == "" || !seen[k] {
				seen[c.Key()] = true
				out = append(out, c.Obligation())
			}
		}
	}
	return out
}

func backends(t *testing.T) map[string]solver.Backend {
	t.Helper()
	out := map[string]solver.Backend{}
	for _, name := range solver.Names() {
		spec := solver.Spec{Backend: name}
		if name == solver.RemoteName {
			// No live workers in unit tests: an unreachable pool exercises
			// the local-fallback path, so parity must still hold.
			spec.Workers = []string{"127.0.0.1:1"}
		}
		b, err := solver.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name {
			t.Fatalf("backend %q reports name %q", name, b.Name())
		}
		out[name] = b
	}
	return out
}

// TestCrossBackendParity: every registered suite must yield identical
// verdicts (the OK/Fail partition of its obligations) under the native,
// portfolio, and tiered backends. Different heuristics may find different
// counterexamples, but the verdict is a property of the formula.
func TestCrossBackendParity(t *testing.T) {
	bs := backends(t)
	for _, s := range netgen.Suites() {
		n, params := suiteNetwork(s.Name)
		obs := obligations(t, s, n, params)
		if len(obs) == 0 {
			t.Fatalf("suite %s produced no obligations", s.Name)
		}
		for _, ob := range obs {
			want := bs["native"].Solve(context.Background(), ob, solver.Budget{})
			if want.Status == core.StatusUnknown {
				t.Fatalf("%s: native left %q unknown with unlimited budget", s.Name, ob.Desc)
			}
			for _, name := range []string{"portfolio", "tiered"} {
				got := bs[name].Solve(context.Background(), ob, solver.Budget{})
				if got.Status != want.Status {
					t.Errorf("suite %s, check %q: %s=%v native=%v",
						s.Name, ob.Desc, name, got.Status, want.Status)
				}
			}
		}
	}
}

// TestCrossBackendParityOnFailures: the backends agree on a network with a
// planted bug, where some obligations are satisfiable (Fail).
func TestCrossBackendParityOnFailures(t *testing.T) {
	bs := backends(t)
	n := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	p := netgen.Fig1NoTransitProblem(n)
	fails := 0
	for _, c := range p.Checks(core.Options{}) {
		ob := c.Obligation()
		want := bs["native"].Solve(context.Background(), ob, solver.Budget{})
		if want.Status == core.StatusFail {
			fails++
			if want.Counterexample == nil {
				t.Fatalf("failed check %q has no counterexample", ob.Desc)
			}
		}
		for _, name := range []string{"portfolio", "tiered"} {
			got := bs[name].Solve(context.Background(), ob, solver.Budget{})
			if got.Status != want.Status {
				t.Errorf("check %q: %s=%v native=%v", ob.Desc, name, got.Status, want.Status)
			}
			if got.Status == core.StatusFail && got.Counterexample == nil {
				t.Errorf("check %q: %s failed without a counterexample", ob.Desc, name)
			}
		}
	}
	if fails == 0 {
		t.Fatal("buggy network produced no failing obligation")
	}
}

// TestNativeBudgetYieldsUnknown: a conflict budget of 1 cannot decide the
// nontrivial checks; they must come back StatusUnknown, never a wrong
// verdict.
func TestNativeBudgetYieldsUnknown(t *testing.T) {
	b, _ := solver.New(solver.Spec{Backend: "native", Budget: 1})
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)
	unknown := 0
	for _, c := range p.Checks(core.Options{}) {
		out := b.Solve(context.Background(), c.Obligation(), solver.Budget{})
		switch out.Status {
		case core.StatusUnknown:
			unknown++
			if out.OK {
				t.Fatal("unknown result must not claim OK")
			}
		case core.StatusFail:
			t.Fatalf("budgeted solve invented a failure for %q", c.Desc)
		}
	}
	if unknown == 0 {
		t.Fatal("budget 1 decided every check; expected unknowns")
	}
}

// TestTieredEscalation: with a 1-conflict quick tier, hard checks escalate
// to the full budget and still decide — no Unknown leaks out, and at least
// one outcome records the escalation.
func TestTieredEscalation(t *testing.T) {
	b := solver.Tiered(1)
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)
	escalated := 0
	for _, c := range p.Checks(core.Options{}) {
		out := b.Solve(context.Background(), c.Obligation(), solver.Budget{})
		if out.Status == core.StatusUnknown {
			t.Fatalf("tiered with unlimited escalation left %q unknown", c.Desc)
		}
		if out.Escalated {
			escalated++
			if out.Backend != "tiered/full" {
				t.Fatalf("escalated result labeled %q, want tiered/full", out.Backend)
			}
		}
	}
	if escalated == 0 {
		t.Fatal("1-conflict quick tier escalated nothing; expected escalations")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    solver.Spec
		wantErr bool
	}{
		{in: "native", want: solver.Spec{Backend: "native"}},
		{in: "portfolio", want: solver.Spec{Backend: "portfolio"}},
		{in: "tiered:1000", want: solver.Spec{Backend: "tiered", Budget: 1000}},
		{in: "remote:h1:9001,h2:9001", want: solver.Spec{Backend: "remote", Workers: []string{"h1:9001", "h2:9001"}}},
		{in: "remote: h1:9001 ,, h2:9001 ", want: solver.Spec{Backend: "remote", Workers: []string{"h1:9001", "h2:9001"}}},
		{in: "remote", wantErr: true},
		{in: "remote:", wantErr: true},
		{in: "bogus", wantErr: true},
		{in: "tiered:x", wantErr: true},
		{in: "tiered:-5", wantErr: true},
		{in: "native:1e3", wantErr: true},
		{in: "native:100abc", wantErr: true},
	}
	for _, c := range cases {
		got, err := solver.ParseSpec(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseSpec(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if _, err := solver.New(solver.Spec{Backend: "bogus"}); err == nil {
		t.Error("New accepted an unknown backend")
	}
}

// TestSameConfig: identically-specced backends from separate New calls are
// interchangeable; different budgets are not.
func TestSameConfig(t *testing.T) {
	mk := func(s solver.Spec) solver.Backend {
		b, err := solver.New(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, name := range solver.Names() {
		spec := solver.Spec{Backend: name}
		if name == solver.RemoteName {
			// The remote backend (registered by the fabric import) needs a
			// worker list; nothing is contacted at construction time.
			spec.Workers = []string{"127.0.0.1:1"}
		}
		a := mk(spec)
		b := mk(spec)
		if !solver.SameConfig(a, b) {
			t.Errorf("two default %s backends not recognized as same config", name)
		}
		spec.Budget = 7
		c := mk(spec)
		if solver.SameConfig(a, c) {
			t.Errorf("%s backends with different budgets reported as same config", name)
		}
	}
	// Variant heuristic flags are part of a portfolio's configuration, not
	// just the variant names.
	p1 := solver.PortfolioOf(0, []solver.Variant{{Name: "v", DisableVSIDS: true}})
	p2 := solver.PortfolioOf(0, []solver.Variant{{Name: "v", PositivePhase: true}})
	if solver.SameConfig(p1, p2) {
		t.Error("portfolios with same variant names but different flags reported as same config")
	}
	p3 := solver.PortfolioOf(0, []solver.Variant{{Name: "v", DisableVSIDS: true}})
	if !solver.SameConfig(p1, p3) {
		t.Error("identically-configured portfolios not recognized as same config")
	}
}
