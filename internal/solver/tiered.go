package solver

import (
	"context"
	"fmt"

	"lightyear/internal/core"
)

// DefaultTierBudget is the quick tier's conflict budget when the spec does
// not set one. The vast majority of Lightyear's local checks decide within a
// handful of conflicts (each check covers one filter, the source of the
// paper's scalability), so a small first tier keeps them on the fast path
// while genuinely hard instances escalate.
const DefaultTierBudget = 2048

// tiered solves with a small conflict budget first and escalates to the
// caller's (usually unlimited) budget on Unknown.
type tiered struct {
	quick int64 // quick-tier conflict budget
}

// Tiered returns the budget-escalation backend. quick, when positive, is the
// first tier's conflict budget; 0 means DefaultTierBudget. The escalated
// solve runs at the caller's budget (typically unlimited).
func Tiered(quick int64) Backend {
	if quick <= 0 {
		quick = DefaultTierBudget
	}
	return tiered{quick: quick}
}

func (tiered) Name() string { return "tiered" }

// Fingerprint identifies the backend's configuration: equal fingerprints
// behave identically, so results may be shared.
func (t tiered) Fingerprint() string { return fmt.Sprintf("tiered:%d", t.quick) }

func (t tiered) Solve(ctx context.Context, ob *core.Obligation, b Budget) Outcome {
	if ob.Concrete() {
		return Outcome{CheckResult: ob.Solve(ctx, core.SolveConfig{Backend: "tiered/quick"})}
	}
	quick := t.quick
	if b.Conflicts > 0 && b.Conflicts <= quick {
		// The caller's own budget is no larger than the quick tier:
		// escalation could not try harder, so solve once at that budget.
		r := ob.Solve(ctx, core.SolveConfig{ConflictBudget: b.Conflicts, Backend: "tiered/quick"})
		return Outcome{CheckResult: r}
	}
	first := ob.Solve(ctx, core.SolveConfig{ConflictBudget: quick, Backend: "tiered/quick"})
	if first.Status != core.StatusUnknown || ctx.Err() != nil {
		return Outcome{CheckResult: first}
	}
	full := ob.Solve(ctx, core.SolveConfig{ConflictBudget: b.Conflicts, Backend: "tiered/full"})
	full.SolveTime += first.SolveTime
	full.TotalTime += first.TotalTime
	// Provenance accumulates across tiers, mirroring SolveTime: the quick
	// tier's burned conflicts are part of why this check cost what it did.
	full.Solver.Add(first.Solver)
	return Outcome{CheckResult: full, Escalated: true}
}
