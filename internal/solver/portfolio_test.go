package solver

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

// symbolicObligation returns a real (non-concrete) obligation to race.
func symbolicObligation(t *testing.T) *core.Obligation {
	t.Helper()
	p := netgen.Fig1NoTransitProblem(netgen.Fig1(netgen.Fig1Options{}))
	for _, c := range p.Checks(core.Options{}) {
		if ob := c.Obligation(); !ob.Concrete() {
			return ob
		}
	}
	t.Fatal("no symbolic obligation in fig1 problem")
	return nil
}

// TestPortfolioCancelsLosers: when one variant decides, the losing variants
// must observe context cancellation — and all variant goroutines must have
// returned before Solve does.
func TestPortfolioCancelsLosers(t *testing.T) {
	ob := symbolicObligation(t)
	p := newPortfolio(0, []Variant{{Name: "fast"}, {Name: "slow-a"}, {Name: "slow-b"}})

	var cancelled atomic.Int32
	p.solve = func(ctx context.Context, _ *core.Obligation, cfg core.SolveConfig) core.CheckResult {
		if cfg.Backend == "portfolio/fast" {
			return core.CheckResult{OK: true, Status: core.StatusOK, Backend: cfg.Backend}
		}
		// Losers block until the race cancels them, like a SAT solve whose
		// interrupt flag flips mid-search.
		<-ctx.Done()
		cancelled.Add(1)
		return core.CheckResult{Status: core.StatusUnknown, Backend: cfg.Backend}
	}

	out := p.Solve(context.Background(), ob, Budget{})
	if out.Status != core.StatusOK || out.Backend != "portfolio/fast" {
		t.Fatalf("winner = %v/%s, want ok/portfolio/fast", out.Status, out.Backend)
	}
	if out.Raced != 3 {
		t.Fatalf("Raced = %d, want 3", out.Raced)
	}
	// Solve waits for every variant, so both losers have already counted.
	if got := cancelled.Load(); got != 2 {
		t.Fatalf("%d losers observed cancellation, want 2", got)
	}
}

// TestPortfolioAllUnknown: when every variant exhausts its budget the
// portfolio reports Unknown rather than hanging or inventing a verdict.
func TestPortfolioAllUnknown(t *testing.T) {
	ob := symbolicObligation(t)
	p := newPortfolio(0, []Variant{{Name: "a"}, {Name: "b"}})
	p.solve = func(_ context.Context, _ *core.Obligation, cfg core.SolveConfig) core.CheckResult {
		return core.CheckResult{Status: core.StatusUnknown, Backend: cfg.Backend}
	}
	out := p.Solve(context.Background(), ob, Budget{})
	if out.Status != core.StatusUnknown || out.Raced != 2 {
		t.Fatalf("outcome = %v raced=%d, want unknown raced=2", out.Status, out.Raced)
	}
}

// TestPortfolioParentCancellation: cancelling the caller's context stops the
// whole race; the blocked variants unwind and Solve returns Unknown.
func TestPortfolioParentCancellation(t *testing.T) {
	ob := symbolicObligation(t)
	p := newPortfolio(0, []Variant{{Name: "a"}, {Name: "b"}})
	p.solve = func(ctx context.Context, _ *core.Obligation, cfg core.SolveConfig) core.CheckResult {
		<-ctx.Done()
		return core.CheckResult{Status: core.StatusUnknown, Backend: cfg.Backend}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Outcome, 1)
	go func() { done <- p.Solve(ctx, ob, Budget{}) }()
	cancel()
	select {
	case out := <-done:
		if out.Status != core.StatusUnknown {
			t.Fatalf("cancelled race returned %v, want unknown", out.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("portfolio did not unwind after parent cancellation")
	}
}

// TestPortfolioRealRace: the production solve path (no seam) decides a real
// obligation with all default variants under the race detector.
func TestPortfolioRealRace(t *testing.T) {
	ob := symbolicObligation(t)
	out := Portfolio(0).Solve(context.Background(), ob, Budget{})
	if out.Status == core.StatusUnknown {
		t.Fatalf("portfolio left a decidable obligation unknown")
	}
	if out.Raced != len(DefaultVariants()) {
		t.Fatalf("Raced = %d, want %d", out.Raced, len(DefaultVariants()))
	}
}

// TestSolveCancelledContextIsUnknown: an already-cancelled context yields
// StatusUnknown deterministically (the solve is skipped entirely).
func TestSolveCancelledContextIsUnknown(t *testing.T) {
	ob := symbolicObligation(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := ob.Solve(ctx, core.SolveConfig{})
	if r.Status != core.StatusUnknown || r.OK {
		t.Fatalf("cancelled solve = %+v, want unknown", r.Status)
	}
}
