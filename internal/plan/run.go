package plan

import (
	"context"
	"errors"
	"sync"

	"lightyear/internal/core"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/store"
	"lightyear/internal/telemetry"
)

// Event is one progress event of a running plan, in the order emitted: one
// "start" event per problem as it is submitted (carrying the check Total),
// per-check "check" events as the engine completes checks, a "problem"
// event when each problem's report is ready, one "property" event per
// request property once all its problems finished, and a final "plan"
// event. lyserve streams these as NDJSON on GET /v2/jobs/{id}/events.
type Event struct {
	Type string `json:"type"` // start | check | problem | property | plan

	// TraceID identifies the run's telemetry trace — the same ID lyserve
	// returns in the X-Trace-Id header and serves at /v1/traces/{id}.
	// Empty when the engine has no telemetry recorder.
	TraceID string `json:"trace_id,omitempty"`

	// Prop indexes the request's property list; Property is its suite name.
	Prop     int    `json:"prop"`
	Property string `json:"property,omitempty"`
	// Idx indexes the problem within the property; Problem is its name
	// (check and problem events).
	Idx     int    `json:"idx"`
	Problem string `json:"problem,omitempty"`

	// Check progress (check events).
	Completed int  `json:"completed,omitempty"`
	Total     int  `json:"total,omitempty"`
	FromCache bool `json:"from_cache,omitempty"`
	Deduped   bool `json:"deduped,omitempty"`

	// Outcome (check, problem, property, and plan events). Status is the
	// check's explicit verdict ("ok" | "fail" | "unknown") on check events.
	OK      *bool  `json:"ok,omitempty"`
	Status  string `json:"status,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
	Failed  bool   `json:"failed,omitempty"`
	Reason  string `json:"reason,omitempty"`

	// Dropped is set on the synthetic "truncated" event an event-windowed
	// host (lyserve -event-window) emits to late subscribers in place of
	// evicted history.
	Dropped int `json:"dropped,omitempty"`

	// Aggregated problem stats (problem events).
	Stats *engine.JobStats `json:"stats,omitempty"`
}

// ProblemResult is the outcome of one problem of one property.
type ProblemResult struct {
	Name       string `json:"name"`
	OK         bool   `json:"ok"`
	Skipped    bool   `json:"skipped,omitempty"`
	Failed     bool   `json:"failed,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`

	Stats      *engine.JobStats   `json:"stats,omitempty"`
	ReportJSON *engine.ReportJSON `json:"report,omitempty"`

	// Report is the raw report for in-process consumers (nil when skipped
	// or failed); ReportJSON carries its wire form.
	Report *core.Report `json:"-"`
}

// PropertyResult is one per-property report of a plan run: the problems of
// one Property entry plus engine accounting aggregated over them, so a
// multi-property request shows how much of each property was served from
// the shared cache or coalesced with in-flight identical checks.
type PropertyResult struct {
	Property Property        `json:"property"`
	OK       bool            `json:"ok"`
	Stats    engine.JobStats `json:"stats"`
	Problems []ProblemResult `json:"problems"`
}

// Result is the outcome of one plan run.
type Result struct {
	OK bool `json:"ok"`
	// TraceID identifies the run's telemetry trace ("" without a recorder).
	TraceID string `json:"trace_id,omitempty"`
	// Failures counts proven violations plus problems that could not be
	// submitted; Unknowns counts undecided (budget-exhausted) checks. A run
	// with OK == false, Failures == 0, and Unknowns > 0 found no bug — it
	// ran out of solver budget, the condition `lightyear` maps to exit 3.
	Failures   int              `json:"failures,omitempty"`
	Unknowns   int              `json:"unknowns,omitempty"`
	Properties []PropertyResult `json:"properties"`
	Engine     engine.Stats     `json:"engine"`
	Store      *store.Stats     `json:"store,omitempty"`

	// Baseline and Update are set in delta-vs-baseline mode
	// (Options.Baseline) instead of Properties.
	Baseline *delta.Result `json:"baseline,omitempty"`
	Update   *delta.Result `json:"update,omitempty"`
}

// RunConfig parameterizes Run.
type RunConfig struct {
	// Sink, when non-nil, receives every Event. Calls are serialized, so
	// the sink needs no locking of its own and events form one total order
	// ending with the "plan" event.
	Sink func(Event)
	// Store, when non-nil, is tagged with the fingerprints of the networks
	// the run verifies (provenance on journaled results); the store itself
	// must already be plugged into the engine by the caller.
	Store *store.Store
	// Reservation, when non-nil, is the admission grant the host already
	// obtained for this plan (engine.Reserve with the compiled Cost) —
	// lyserve reserves in the HTTP handler so rejection is a synchronous
	// 429, then hands the grant to the asynchronous run. Run submits every
	// workload under it and releases it when the run completes. When nil,
	// Run reserves for itself and a rejection aborts the run before any
	// work is submitted (the error is a *engine.ErrAdmission). Delta-mode
	// plans (Options.Baseline) are the exception: the delta verifier admits
	// each of its runs — whose cost is the baseline's, then the update's
	// dirty subset, not the compiled plan's — so Run returns a host grant
	// immediately and either run may still fail with ErrAdmission. Hosts
	// wanting a synchronous admission answer should not pre-reserve
	// delta-mode plans (lyserve does not serve them asynchronously at all).
	Reservation *engine.Reservation
	// Trace, when non-nil, is the telemetry trace the run records into —
	// lyserve opens it in the HTTP handler (with a "compile" span) so the
	// trace ID can be returned before the asynchronous run starts. When
	// nil, Run opens one on the engine's recorder (no-op without one).
	// Either way Run finishes the trace when it returns, landing it in the
	// recorder's ring.
	Trace *telemetry.Trace
}

// Run executes a compiled plan on the engine through the unified
// engine.Submit path: every problem's checks are generated first so the
// whole request can be admitted as one unit (the plan's check count is its
// admission cost), then every problem of every property is submitted
// before any is awaited, so the engine dedups identical checks across the
// whole request. A rejected plan returns *engine.ErrAdmission with no work
// submitted. In delta mode (Options.Baseline) the run goes through an
// internal/delta verifier instead, re-solving only the checks the
// baseline→network change dirtied.
func Run(eng *engine.Engine, c *Compiled, cfg RunConfig) (*Result, error) {
	if c.Baseline != nil {
		return runDelta(eng, c, cfg)
	}

	tr := cfg.Trace
	if tr == nil {
		tr = eng.Telemetry().StartTrace(c.Label(), c.Tenant())
	}
	defer tr.Finish()
	traceID := tr.ID()

	var sinkMu sync.Mutex
	emit := func(ev Event) {
		if cfg.Sink == nil {
			return
		}
		ev.TraceID = traceID
		sinkMu.Lock()
		cfg.Sink(ev)
		sinkMu.Unlock()
	}
	if cfg.Store != nil {
		cfg.Store.SetFingerprint(c.Network.Fingerprint())
	}

	// The compiled plan's prepared check batches: generated once, shared
	// with Cost(), so the admission cost and the submitted work are the
	// same enumeration. Released once every workload has been handed to
	// the engine, so a Compiled pinned beyond the run does not retain them.
	preps := c.Prepared()
	defer c.ReleasePrepared()

	resv := cfg.Reservation
	if resv == nil {
		adm := tr.StartSpan("admit")
		adm.SetAttrInt("cost", int64(c.Cost()))
		var err error
		resv, err = eng.Reserve(c.Tenant(), c.Cost())
		if err != nil {
			adm.SetAttr("rejected", err.Error())
			adm.End()
			return nil, err
		}
		adm.End()
	}
	defer resv.Release()

	res := &Result{OK: true, TraceID: traceID}
	var resMu sync.Mutex // guards ProblemResult fields written by watchers

	// Submit every problem of every property before collecting any.
	template := c.Workload()
	type pending struct {
		prop, idx int
		job       *engine.Job
		span      *telemetry.Span
	}
	var jobs []pending
	for pi, u := range c.Units {
		pr := PropertyResult{Property: u.Property, OK: true, Problems: make([]ProblemResult, len(u.Problems))}
		for i, p := range u.Problems {
			out := &pr.Problems[i]
			out.Name = p.Name
			var job *engine.Job
			ps := tr.StartSpan("problem:" + p.Name)
			err := preps[pi][i].Err
			if err == nil {
				wl := template
				wl.Kind = engine.KindChecks
				wl.Property = preps[pi][i].Property
				wl.Checks = preps[pi][i].Checks
				wl.Reservation = resv
				wl.TraceSpan = ps
				job, err = eng.Submit(context.Background(), wl)
			}
			if err != nil {
				ps.SetAttr("error", err.Error())
				ps.End()
				out.SkipReason = err.Error()
				if p.Optional {
					out.Skipped, out.OK = true, true
				} else {
					out.Failed = true
					pr.OK = false
					res.OK = false
					res.Failures++
				}
				continue
			}
			jobs = append(jobs, pending{prop: pi, idx: i, job: job, span: ps})
			emit(Event{Type: "start", Prop: pi, Property: u.Property.Name, Idx: i,
				Problem: p.Name, Total: job.NumChecks()})
		}
		res.Properties = append(res.Properties, pr)
	}

	// Emit skip/fail events only after all placeholders exist, keeping the
	// event order stable relative to the result layout.
	for pi := range res.Properties {
		for i, out := range res.Properties[pi].Problems {
			if out.Skipped || out.Failed {
				ok := out.OK
				emit(Event{Type: "problem", Prop: pi, Property: c.Units[pi].Property.Name, Idx: i,
					Problem: out.Name, OK: &ok, Skipped: out.Skipped, Failed: out.Failed, Reason: out.SkipReason})
			}
		}
	}

	// Watch every engine job: stream its per-check progress, then record
	// the report and emit the problem event.
	var wg sync.WaitGroup
	for _, pd := range jobs {
		wg.Add(1)
		go func(pd pending) {
			defer wg.Done()
			propName := c.Units[pd.prop].Property.Name
			probName := res.Properties[pd.prop].Problems[pd.idx].Name
			for ev := range pd.job.Progress() {
				ok := ev.Result.OK
				emit(Event{Type: "check", Prop: pd.prop, Property: propName, Idx: pd.idx, Problem: probName,
					Completed: ev.Completed, Total: ev.Total,
					FromCache: ev.FromCache, Deduped: ev.Deduped,
					OK: &ok, Status: ev.Result.Status.String()})
			}
			rep := pd.job.Wait()
			st := pd.job.Stats()
			enc := engine.EncodeReport(rep)
			ok := rep.OK()
			pd.span.SetAttrInt("checks", int64(st.Checks))
			if !ok {
				pd.span.SetAttr("ok", "false")
			}
			pd.span.End()

			resMu.Lock()
			out := &res.Properties[pd.prop].Problems[pd.idx]
			out.Report, out.ReportJSON, out.Stats, out.OK = rep, &enc, &st, ok
			res.Failures += len(rep.HardFailures())
			res.Unknowns += len(rep.Unknowns())
			if !ok {
				res.Properties[pd.prop].OK = false
				res.OK = false
			}
			resMu.Unlock()

			emit(Event{Type: "problem", Prop: pd.prop, Property: propName, Idx: pd.idx, Problem: probName,
				OK: &ok, Stats: &st})
		}(pd)
	}
	wg.Wait()

	// Aggregate per-property stats, emit property summaries, then the final
	// plan event — the stream's completion marker.
	for pi := range res.Properties {
		pr := &res.Properties[pi]
		for _, out := range pr.Problems {
			if out.Stats != nil {
				pr.Stats.Checks += out.Stats.Checks
				pr.Stats.Completed += out.Stats.Completed
				pr.Stats.CacheHits += out.Stats.CacheHits
				pr.Stats.DedupHits += out.Stats.DedupHits
				pr.Stats.Cost += out.Stats.Cost
				pr.Stats.Solved += out.Stats.Solved
				pr.Stats.Unknown += out.Stats.Unknown
				pr.Stats.Raced += out.Stats.Raced
				pr.Stats.Escalated += out.Stats.Escalated
				pr.Stats.SolveNanos += out.Stats.SolveNanos
				pr.Stats.Solver.Add(out.Stats.Solver)
				pr.Stats.Backend = out.Stats.Backend // one backend per plan
				pr.Stats.Tenant = out.Stats.Tenant   // one tenant per plan
				if out.Stats.QueueWaitNanos > pr.Stats.QueueWaitNanos {
					pr.Stats.QueueWaitNanos = out.Stats.QueueWaitNanos // worst per-problem wait
				}
			}
		}
		ok := pr.OK
		emit(Event{Type: "property", Prop: pi, Property: pr.Property.Name, OK: &ok, Stats: &pr.Stats})
	}
	res.Engine = eng.Stats()
	if cfg.Store != nil {
		ss := tr.StartSpan("store")
		st := cfg.Store.Stats()
		res.Store = &st
		ss.SetAttrInt("puts", int64(st.Puts))
		ss.SetAttrInt("hits", int64(st.Hits))
		ss.End()
	}
	ok := res.OK
	emit(Event{Type: "plan", OK: &ok})
	return res, nil
}

// runDelta is the delta-vs-baseline body: verify the baseline in full, then
// re-verify the request's network incrementally against it. Per-check
// events are not streamed in this mode (the delta verifier batches dirty
// subsets internally); the property and plan events still are.
func runDelta(eng *engine.Engine, c *Compiled, cfg RunConfig) (*Result, error) {
	// The delta verifier admits each of its runs (baseline, then update) as
	// its own unit under the plan's tenant, so a host-made whole-plan grant
	// is returned up front rather than held — or leaked — alongside them.
	cfg.Reservation.Release()

	tr := cfg.Trace
	if tr == nil {
		tr = eng.Telemetry().StartTrace(c.Label(), c.Tenant())
	}
	defer tr.Finish()

	res := &Result{TraceID: tr.ID()}
	v := delta.NewVerifierFor(eng, c)
	wl := c.Workload()
	// Both delta runs' engine spans nest under one "delta" span of this
	// run's trace rather than opening per-workload traces of their own.
	del := tr.StartSpan("delta")
	defer del.End()
	wl.TraceSpan = del
	v.SetWorkload(wl)
	if cfg.Store != nil {
		cfg.Store.SetFingerprint(c.Baseline.Fingerprint())
	}
	bs := tr.StartSpan("baseline")
	base, err := v.Baseline(c.Baseline)
	if err != nil {
		bs.End()
		return nil, err
	}
	bs.SetAttrInt("solved", int64(base.Solved))
	bs.End()
	if cfg.Store != nil {
		cfg.Store.SetFingerprint(c.Network.Fingerprint())
	}
	us := tr.StartSpan("update")
	upd, err := v.Update(c.Network)
	if err != nil {
		us.End()
		return nil, err
	}
	us.SetAttrInt("solved", int64(upd.Solved))
	us.SetAttrInt("reused", int64(upd.ReusedResults))
	us.End()
	res.Baseline, res.Update = base, upd
	res.OK = upd.OK
	res.Failures, res.Unknowns = upd.Failures, upd.Unknown
	res.Engine = eng.Stats()
	if cfg.Store != nil {
		st := cfg.Store.Stats()
		res.Store = &st
	}
	if cfg.Sink != nil {
		ok := res.OK
		cfg.Sink(Event{Type: "plan", OK: &ok, TraceID: res.TraceID})
	}
	return res, nil
}

// Execute is the library one-stop entry point: compile the request, build
// an engine (and persistent store) from its options, run, and tear down.
// Hosts with a long-lived engine use Compile + Run instead.
func Execute(req Request, res Resolver) (*Result, error) {
	c, err := Compile(req, res)
	if err != nil {
		return nil, err
	}
	opts := engine.Options{Workers: req.Options.Workers, CacheSize: req.Options.Cache}
	var st *store.Store
	if req.Options.Store != "" {
		st, err = store.OpenOptions(req.Options.Store, store.Options{MaxFingerprints: req.Options.StoreRetain})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		opts.Cache = st
	}
	eng := engine.New(opts)
	defer eng.Close()
	return Run(eng, c, RunConfig{Store: st})
}

// errEmptyProblem mirrors the legacy entry points' guard for suites that
// produce a Problem with neither half set.
var errEmptyProblem = errors.New("suite produced an empty problem")
