// Package plan is the declarative verification-request API shared by every
// Lightyear entry point: the lightyear CLI, the lyserve HTTP service
// (POST /v2/verify), and library callers all build a plan.Request and run it
// on the shared internal/engine Engine.
//
// A Request composes three orthogonal parts:
//
//   - a network source (Network): an inline internal/config DSL source, a
//     config file path, a named generator (netgen.GeneratorSpec), a corpus
//     member reference (internal/corpus), or a symbolic reference to a
//     pinned session baseline resolved by the host (lyserve sessions);
//   - a property list (Property): one entry per registered suite name
//     (netgen.Lookup), each optionally scoped to a router subset and/or WAN
//     region subset (netgen.Scope);
//   - execution options (Options): engine workers, cache capacity or
//     persistent store directory, the WAN region count, and an optional
//     baseline network that switches the run to incremental
//     delta-vs-baseline mode (internal/delta).
//
// One request producing N per-property reports runs as N batches of jobs on
// one engine, so the engine's semantic-key cache and in-flight dedup
// amortize checks shared across properties — the same request issued as
// separate single-property calls would re-solve them.
//
// The canonical JSON encoding of a Request (the POST /v2/verify body and
// the `lightyear -plan` file format):
//
//	{
//	  "network":    {"generator": {"kind": "wan", "regions": 2}},
//	  "properties": [{"name": "wan-peering", "routers": ["edge-0"]},
//	                 {"name": "wan-ip-reuse", "regions": [0]}],
//	  "options":    {"wan_regions": 2}
//	}
package plan

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"lightyear/internal/config"
	"lightyear/internal/core"
	"lightyear/internal/corpus"
	"lightyear/internal/delta"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/solver"
	"lightyear/internal/topology"
)

// Request is one declarative verification request: a network source, the
// properties to verify over it, and execution options.
type Request struct {
	Network    Network    `json:"network"`
	Properties []Property `json:"properties"`
	Options    Options    `json:"options,omitempty"`
}

// Network is a serializable network source. Exactly one field must be set.
type Network struct {
	// Config is inline internal/config DSL source.
	Config string `json:"config,omitempty"`
	// ConfigPath is a path to a DSL file, read when the plan is compiled
	// (CLI and saved plan files; rejected by lyserve, which has no
	// filesystem contract with its callers).
	ConfigPath string `json:"config_path,omitempty"`
	// Generator names a built-in network generator.
	Generator *netgen.GeneratorSpec `json:"generator,omitempty"`
	// Corpus references a corpus member ("family:seed[:knob=value,...]",
	// internal/corpus). Members build deterministically from the
	// reference alone — no filesystem contract — so the source is safe on
	// every host, lyserve included.
	Corpus string `json:"corpus,omitempty"`
	// Baseline references a network pinned by the host — e.g. an lyserve
	// session id, resolved to that session's pinned state. Requires a
	// Resolver.
	Baseline string `json:"baseline,omitempty"`
}

// Property selects one registered suite, optionally scoped. The same suite
// may appear more than once with different scopes; each entry produces its
// own per-property report while the engine dedups the shared checks.
type Property struct {
	Name    string            `json:"name"`
	Routers []topology.NodeID `json:"routers,omitempty"`
	Regions []int             `json:"regions,omitempty"`
}

// Scope returns the property's netgen scope.
func (p Property) Scope() netgen.Scope {
	return netgen.Scope{Routers: p.Routers, Regions: p.Regions}
}

// Options are execution options. Workers/Cache/Store configure the engine
// when the plan owns one (Execute, the CLI); hosts multiplexing requests
// onto a shared engine (lyserve) ignore them.
type Options struct {
	// Workers sizes the engine worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Cache bounds the engine LRU result cache (0 = default, <0 disables).
	Cache int `json:"cache,omitempty"`
	// Store is a persistent result-store directory replacing the LRU.
	Store string `json:"store,omitempty"`
	// WANRegions is the region count WAN suites assume (0 = the generator's
	// region count, or the netgen default of 3).
	WANRegions int `json:"wan_regions,omitempty"`
	// Solver selects the solver backend the request's checks are routed to
	// ({"backend": "native"|"portfolio"|"tiered", "budget": N}); nil means
	// the engine default. Honored by every host, including lyserve's shared
	// engine (the backend is a per-job routing decision, not an engine
	// rebuild).
	Solver *solver.Spec `json:"solver,omitempty"`
	// Tenant is the principal the request's workloads are admitted and
	// accounted under (engine.DefaultTenant when empty). Hosts with their
	// own identity channel (lyserve's X-Tenant header / ?tenant= query)
	// overwrite it before compiling.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders this request's workloads within the tenant's queue
	// (higher first); it never preempts other tenants.
	Priority int `json:"priority,omitempty"`
	// StoreRetain bounds Store retention: on open, only results from the N
	// most recently written network fingerprints are kept (0 = keep all).
	StoreRetain int `json:"store_retain,omitempty"`
	// Baseline, when set, runs the request incrementally: the baseline
	// network is verified first, then the request's network is
	// delta-verified against it, re-solving only dirtied checks.
	Baseline *Network `json:"baseline,omitempty"`
}

// Resolver resolves symbolic baseline network references (Network.Baseline)
// to pinned network states. The returned regions value is the WAN region
// count the pinned state was verified under (0 if not regional), so plans
// over a baseline reference inherit it instead of assuming the default.
// Hosts without pinned state pass nil.
type Resolver interface {
	ResolveBaseline(ref string) (n *topology.Network, regions int, err error)
}

// RequestError marks a malformed request (the usage-error class): bad shape,
// unknown property, or an invalid scope. Entry points detect it with
// errors.As to map it to their usage-error surface (CLI exit 2, HTTP 400)
// without matching on message text.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func requestErrorf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// RequestErrorf builds a RequestError — for sibling request layers (e.g.
// internal/migrate) whose malformed inputs belong to the same usage-error
// class and must be classified identically by every entry point.
func RequestErrorf(format string, args ...any) error {
	return requestErrorf(format, args...)
}

// Validate checks the request's shape without materializing networks:
// exactly one network source, at least one property, and every property
// name registered. Compile calls it; entry points may call it earlier for
// fast feedback.
func (r Request) Validate() error {
	if err := r.Network.validate(); err != nil {
		return err
	}
	if len(r.Properties) == 0 {
		return requestErrorf("plan: at least one property is required (have: %s)",
			strings.Join(netgen.SuiteNames(), ", "))
	}
	for _, p := range r.Properties {
		if _, ok := netgen.Lookup(p.Name); !ok {
			return requestErrorf("plan: unknown property %q (have: %s)",
				p.Name, strings.Join(netgen.SuiteNames(), ", "))
		}
	}
	if s := r.Options.Solver; s != nil {
		if !solver.Known(s.Backend) {
			return requestErrorf("plan: unknown solver backend %q (have: %s)",
				s.Backend, strings.Join(solver.Names(), ", "))
		}
		if s.Budget < 0 {
			return requestErrorf("plan: solver budget must be >= 0, got %d", s.Budget)
		}
	}
	if r.Options.StoreRetain < 0 {
		return requestErrorf("plan: store_retain must be >= 0, got %d", r.Options.StoreRetain)
	}
	if b := r.Options.Baseline; b != nil {
		if err := b.validate(); err != nil {
			return requestErrorf("plan: baseline: %v", err)
		}
	}
	return nil
}

func (ns Network) validate() error {
	set := 0
	for _, present := range []bool{ns.Config != "", ns.ConfigPath != "", ns.Generator != nil, ns.Corpus != "", ns.Baseline != ""} {
		if present {
			set++
		}
	}
	switch {
	case set == 0:
		return requestErrorf("plan: a network source is required (config, config_path, generator, corpus, or baseline)")
	case set > 1:
		return requestErrorf("plan: exactly one network source must be set (config, config_path, generator, corpus, or baseline)")
	}
	if ns.Corpus != "" {
		if _, err := corpus.Parse(ns.Corpus); err != nil {
			return requestErrorf("plan: %v", err)
		}
	}
	return nil
}

// Materialize builds the network the source describes, validating the
// source's shape first (exactly one field set), so hosts materializing a
// bare Network — e.g. a session update body — reject ambiguous sources
// instead of silently picking one. The second return value is the
// generator's region count (0 when the source implies none).
func (ns Network) Materialize(res Resolver) (*topology.Network, int, error) {
	if err := ns.validate(); err != nil {
		return nil, 0, err
	}
	switch {
	case ns.Config != "":
		n, err := config.Parse(ns.Config)
		if err != nil {
			return nil, 0, fmt.Errorf("config: %w", err)
		}
		return n, 0, nil
	case ns.ConfigPath != "":
		src, err := os.ReadFile(ns.ConfigPath)
		if err != nil {
			return nil, 0, err
		}
		n, err := config.Parse(string(src))
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", ns.ConfigPath, err)
		}
		return n, 0, nil
	case ns.Generator != nil:
		return netgen.Generate(*ns.Generator)
	case ns.Corpus != "":
		m, err := corpus.Parse(ns.Corpus)
		if err != nil {
			return nil, 0, requestErrorf("plan: %v", err)
		}
		n, _, err := m.Build()
		if err != nil {
			return nil, 0, err
		}
		return n, 0, nil
	case ns.Baseline != "":
		if res == nil {
			return nil, 0, fmt.Errorf("baseline reference %q requires a host with pinned sessions", ns.Baseline)
		}
		return res.ResolveBaseline(ns.Baseline)
	default:
		return nil, 0, requestErrorf("plan: a network source is required")
	}
}

// Unit is one compiled property: its suite and the problems it builds on
// the request's network.
type Unit struct {
	Property Property
	Suite    netgen.Suite
	Problems []netgen.Problem
}

// Compiled is a validated, materialized request ready to Run. It implements
// delta.ProblemSource, so incremental sessions re-enumerate exactly the
// plan's scoped problems on every pinned state.
type Compiled struct {
	Request  Request
	Network  *topology.Network
	Baseline *topology.Network // non-nil in delta-vs-baseline mode
	Params   netgen.SuiteParams
	Units    []Unit

	// backend is the resolved solver backend (nil when the request defers
	// to the engine default).
	backend solver.Backend

	prepMu   sync.Mutex
	prepared [][]PreparedProblem
	costDone bool
	cost     int
}

// PreparedProblem is one problem's generated check batch (or the error
// that prevented generation), cached on the Compiled plan so cost
// estimation and execution share one generation pass.
type PreparedProblem struct {
	Property core.Property
	Checks   []core.Check
	Err      error
}

// Prepared returns the per-unit, per-problem generated check batches,
// generating (and caching) them if needed. Checks carry no generation-time
// conflict budget, so the engine's own budget applies when they run
// (engine check budgets fall back to the engine's) — the same resolution a
// problem Workload gets. Call ReleasePrepared once the batches have been
// consumed; a long-pinned Compiled (an lyserve session) should not retain
// every generated check for its lifetime.
func (c *Compiled) Prepared() [][]PreparedProblem {
	c.prepMu.Lock()
	defer c.prepMu.Unlock()
	if c.prepared == nil {
		c.generateLocked()
	}
	return c.prepared
}

// ReleasePrepared drops the cached check batches (the computed Cost is
// kept). plan.Run releases them once every workload is submitted, and
// hosts that only needed Cost (lyserve session admission prechecks)
// release them immediately.
func (c *Compiled) ReleasePrepared() {
	c.prepMu.Lock()
	c.prepared = nil
	c.prepMu.Unlock()
}

// generateLocked builds the prepared batches and, on first run, the cost
// sum; prepMu is held.
func (c *Compiled) generateLocked() {
	c.prepared = make([][]PreparedProblem, len(c.Units))
	cost := 0
	for pi, u := range c.Units {
		c.prepared[pi] = make([]PreparedProblem, len(u.Problems))
		for i, p := range u.Problems {
			pp := &c.prepared[pi][i]
			switch {
			case p.Safety != nil:
				pp.Property, pp.Checks = p.Safety.Property, p.Safety.Checks(core.Options{})
			case p.Liveness != nil:
				pp.Property = p.Liveness.Property
				pp.Checks, pp.Err = p.Liveness.Checks(core.Options{})
			default:
				pp.Err = errEmptyProblem
			}
			if pp.Err == nil {
				cost += len(pp.Checks)
			}
		}
	}
	if !c.costDone {
		c.cost, c.costDone = cost, true
	}
}

// Backend returns the solver backend the request selected, nil for the
// engine default.
func (c *Compiled) Backend() solver.Backend { return c.backend }

// Tenant returns the principal the request runs as ("" = engine default).
func (c *Compiled) Tenant() string { return c.Request.Options.Tenant }

// Cost returns the plan's admission cost: the total number of local checks
// its scoped problems generate on the compiled network (generated once and
// shared with Run). Hosts admit the whole plan as one unit —
// engine.Reserve(plan.Tenant(), plan.Cost()) — so a request is either
// fully admitted or rejected up front (HTTP 429) rather than half-run.
// Problems whose checks cannot be generated (an invalid liveness path)
// contribute nothing; they fail at submission regardless of admission.
func (c *Compiled) Cost() int {
	c.prepMu.Lock()
	defer c.prepMu.Unlock()
	if !c.costDone {
		c.generateLocked()
	}
	return c.cost
}

// Workload returns the engine.Workload template the compiled request
// implies — tenant, priority, and solver-backend overrides, with the
// payload left for the caller to fill. Hosts apply it to every submission
// the plan spawns (including incremental session updates), so tenancy and
// backend selection follow the request end-to-end.
func (c *Compiled) Workload() engine.Workload {
	return engine.Workload{
		Tenant:        c.Request.Options.Tenant,
		Priority:      c.Request.Options.Priority,
		SubmitOptions: engine.SubmitOptions{Backend: c.backend},
	}
}

// Compile validates the request, materializes its network(s), and builds
// every property's scoped problems. res may be nil when the request uses no
// baseline references.
func Compile(req Request, res Resolver) (*Compiled, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	n, genRegions, err := req.Network.Materialize(res)
	if err != nil {
		return nil, err
	}
	regions := req.Options.WANRegions
	if regions == 0 {
		regions = genRegions
	}
	c := &Compiled{Request: req, Network: n, Params: netgen.SuiteParams{Regions: regions}}
	if s := req.Options.Solver; s != nil {
		b, err := solver.New(*s)
		if err != nil {
			return nil, requestErrorf("plan: %v", err)
		}
		c.backend = b
	}
	for _, p := range req.Properties {
		suite, _ := netgen.Lookup(p.Name) // Validate checked the names
		if err := p.Scope().Validate(n, c.Params.EffectiveRegions()); err != nil {
			return nil, requestErrorf("plan: property %q: %v", p.Name, err)
		}
		problems := suite.Problems(n, c.Params, p.Scope())
		// A scope whose dimensions are individually valid can still select
		// nothing in combination (e.g. wan-ip-reuse scoped to a region and
		// to routers inside that region); reject rather than pass vacuously.
		if len(problems) == 0 && !p.Scope().Empty() {
			return nil, requestErrorf("plan: property %q: scope selects no problems on this network", p.Name)
		}
		c.Units = append(c.Units, Unit{Property: p, Suite: suite, Problems: problems})
	}
	if b := req.Options.Baseline; b != nil {
		bn, _, err := b.Materialize(res)
		if err != nil {
			return nil, fmt.Errorf("plan: baseline: %w", err)
		}
		// Scoped routers must exist in the baseline too, or the delta
		// source would silently build fewer problems on it.
		if err := c.ValidateScopes(bn); err != nil {
			return nil, requestErrorf("plan: baseline: %v", strings.TrimPrefix(err.Error(), "plan: "))
		}
		c.Baseline = bn
	}
	return c, nil
}

// ValidateScopes re-checks every property's scope against another network
// state. Hosts that pin a compiled plan for incremental updates (lyserve
// sessions) call it on each new state, so a scoped router that vanishes
// from the network — or a scope combination that selects nothing there —
// is an error rather than a silently smaller, vacuously passing problem
// set.
func (c *Compiled) ValidateScopes(n *topology.Network) error {
	for _, u := range c.Units {
		sc := u.Property.Scope()
		if err := sc.Validate(n, c.Params.EffectiveRegions()); err != nil {
			return requestErrorf("plan: property %q: %v", u.Property.Name, err)
		}
		if !sc.Empty() && len(u.Suite.Problems(n, c.Params, sc)) == 0 {
			return requestErrorf("plan: property %q: scope selects no problems on this network", u.Property.Name)
		}
	}
	return nil
}

// Label implements delta.ProblemSource: the property list, comma-joined.
func (c *Compiled) Label() string {
	names := make([]string, len(c.Units))
	for i, u := range c.Units {
		names[i] = u.Property.Name
	}
	return strings.Join(names, ",")
}

// Problems implements delta.ProblemSource: every unit's scoped problems
// re-enumerated on n (the delta verifier calls this per pinned state).
func (c *Compiled) Problems(n *topology.Network) []netgen.Problem {
	var out []netgen.Problem
	for _, u := range c.Units {
		out = append(out, u.Suite.Problems(n, c.Params, u.Property.Scope())...)
	}
	return out
}

var _ delta.ProblemSource = (*Compiled)(nil)
