package plan

import (
	"errors"
	"testing"

	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/solver"
)

func stressRequest(spec *solver.Spec) Request {
	return Request{
		Network:    Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}},
		Properties: []Property{{Name: "sat-stress"}},
		Options:    Options{Solver: spec},
	}
}

// TestSolverSpecValidation: an unknown backend is a typed request error
// (HTTP 400 / CLI exit 2), and Validate names the real backends.
func TestSolverSpecValidation(t *testing.T) {
	err := stressRequest(&solver.Spec{Backend: "bogus"}).Validate()
	var reqErr *RequestError
	if err == nil || !errors.As(err, &reqErr) {
		t.Fatalf("unknown backend: err = %v, want RequestError", err)
	}
	if err := stressRequest(&solver.Spec{Backend: "portfolio"}).Validate(); err != nil {
		t.Fatalf("portfolio spec rejected: %v", err)
	}
	err = stressRequest(&solver.Spec{Backend: "tiered", Budget: -100}).Validate()
	if err == nil || !errors.As(err, &reqErr) {
		t.Fatalf("negative budget: err = %v, want RequestError", err)
	}
}

// TestSolverBackendSelectionRuns: the request's solver spec routes every job
// of the plan to the selected backend and the per-property stats say so.
func TestSolverBackendSelectionRuns(t *testing.T) {
	res, err := Execute(stressRequest(&solver.Spec{Backend: "portfolio"}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Unknowns != 0 {
		t.Fatalf("portfolio stress run: ok=%v unknowns=%d", res.OK, res.Unknowns)
	}
	st := res.Properties[0].Stats
	if st.Backend != "portfolio" || st.Raced == 0 {
		t.Fatalf("per-property backend stats: %+v", st)
	}
	if res.Engine.Backends["portfolio"].Solved == 0 {
		t.Fatalf("engine backend counters: %+v", res.Engine.Backends)
	}
}

// TestUnknownPropagation: a 1-conflict native budget leaves the stress
// obligations undecided; Unknown must flow through the result, the
// per-check JSON encoding, and the check-event stream — distinct from Fail
// at every layer.
func TestUnknownPropagation(t *testing.T) {
	req := stressRequest(&solver.Spec{Backend: "native", Budget: 1})
	c, err := Compile(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	var unknownEvents int
	res, err := Run(eng, c, RunConfig{Sink: func(ev Event) {
		if ev.Type == "check" && ev.Status == "unknown" {
			unknownEvents++
			if ev.OK == nil || *ev.OK {
				t.Errorf("unknown check event claims ok: %+v", ev)
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Unknowns == 0 || res.Failures != 0 {
		t.Fatalf("budgeted run: ok=%v unknowns=%d failures=%d (want !ok, >0, 0)",
			res.OK, res.Unknowns, res.Failures)
	}
	if unknownEvents == 0 {
		t.Fatal("no unknown check events streamed")
	}

	sawUnknown := false
	for _, pr := range res.Properties {
		for _, pb := range pr.Problems {
			if pb.ReportJSON == nil {
				t.Fatalf("problem %s has no report", pb.Name)
			}
			if pb.ReportJSON.NumUnknown > 0 {
				sawUnknown = true
			}
			for _, ck := range pb.ReportJSON.Checks {
				if ck.Status == "unknown" && ck.OK {
					t.Fatalf("encoded unknown check claims ok: %+v", ck)
				}
				if !ck.OK && ck.Status == "ok" {
					t.Fatalf("encoded check status disagrees with ok: %+v", ck)
				}
			}
		}
		if pr.Stats.Unknown == 0 {
			t.Fatalf("property stats did not count unknowns: %+v", pr.Stats)
		}
	}
	if !sawUnknown {
		t.Fatal("no report encoded num_unknown > 0")
	}
}
