package plan

import (
	"errors"
	"strings"
	"testing"

	"lightyear/internal/corpus"
)

// The corpus network source: a member reference is a first-class plan
// source, validated up front (typed RequestError), safe on every host (no
// filesystem contract), and a planted bug surfaces through a normal plan
// run as failing problems of exactly the planted property.

func TestCorpusSourceValidation(t *testing.T) {
	props := []Property{{Name: corpus.PropertySuite}}
	cases := []struct {
		name string
		req  Request
		want string // error substring, "" = valid
	}{
		{"ok", Request{Network: Network{Corpus: "ring:1:size=4"}, Properties: props}, ""},
		{"bad-ref", Request{Network: Network{Corpus: "nosuch:1"}, Properties: props},
			"unknown family"},
		{"two-sources", Request{Network: Network{Corpus: "ring:1", Config: "x"}, Properties: props},
			"exactly one network source"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.want != "" && (err == nil || !strings.Contains(err.Error(), c.want)):
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
		if c.want != "" {
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Errorf("%s: %v (%T) should be a RequestError", c.name, err, err)
			}
		}
	}
}

func TestCorpusSourceMaterializes(t *testing.T) {
	n, regions, err := Network{Corpus: "ring:1:size=4,regions=2"}.Materialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Routers()) != 4 {
		t.Fatalf("got %d routers, want 4", len(n.Routers()))
	}
	if regions != 0 {
		t.Fatalf("corpus source should not force a region count, got %d", regions)
	}
	// Same reference, same network — the plan source inherits corpus
	// reproducibility.
	again, _, err := Network{Corpus: "ring:1:size=4,regions=2"}.Materialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() != again.Fingerprint() {
		t.Fatal("corpus source is not reproducible across Materialize calls")
	}
}

func TestCorpusPlanDetectsPlantedBug(t *testing.T) {
	res, err := Execute(Request{
		Network:    Network{Corpus: "ring:1:size=4,bug=no-class-e"},
		Properties: []Property{{Name: corpus.PropertySuite}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Failures == 0 {
		t.Fatalf("planted bug not detected: ok=%v failures=%d", res.OK, res.Failures)
	}
	for _, pr := range res.Properties {
		for _, prob := range pr.Problems {
			if !prob.OK && !strings.HasPrefix(prob.Name, "no-class-e@") {
				t.Errorf("unexpected failing problem %s (planted no-class-e)", prob.Name)
			}
		}
	}
}
