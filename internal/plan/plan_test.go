package plan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

func wanSpec(edgeRouters int) *netgen.GeneratorSpec {
	return &netgen.GeneratorSpec{Kind: "wan", Regions: 2, RoutersPerRegion: 2,
		EdgeRouters: edgeRouters, DCsPerRegion: 1, PeersPerEdge: 1}
}

func TestRequestValidate(t *testing.T) {
	gen := &netgen.GeneratorSpec{Kind: "fig1"}
	cases := []struct {
		name string
		req  Request
		want string // substring of the error, "" = valid
	}{
		{"ok", Request{Network: Network{Generator: gen},
			Properties: []Property{{Name: "fig1-no-transit"}}}, ""},
		{"no-network", Request{Properties: []Property{{Name: "fig1-no-transit"}}},
			"network source is required"},
		{"two-sources", Request{Network: Network{Config: "x", Generator: gen},
			Properties: []Property{{Name: "fig1-no-transit"}}}, "exactly one network source"},
		{"no-properties", Request{Network: Network{Generator: gen}}, "at least one property"},
		{"unknown-property", Request{Network: Network{Generator: gen},
			Properties: []Property{{Name: "nope"}}}, `unknown property "nope"`},
		{"bad-baseline", Request{Network: Network{Generator: gen},
			Properties: []Property{{Name: "fig1-no-transit"}},
			Options:    Options{Baseline: &Network{}}}, "baseline"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.want != "" && (err == nil || !strings.Contains(err.Error(), c.want)):
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
	// Unknown-property errors must list the registry, so CLI/API callers
	// see what is available.
	err := Request{Network: Network{Generator: gen}, Properties: []Property{{Name: "nope"}}}.Validate()
	for _, name := range netgen.SuiteNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-property error should list suite %q: %v", name, err)
		}
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	req := Request{
		Network: Network{Generator: wanSpec(1)},
		Properties: []Property{
			{Name: "wan-peering", Routers: []topology.NodeID{"edge-0"}},
			{Name: "wan-ip-reuse", Regions: []int{0}},
		},
		Options: Options{WANRegions: 2, Baseline: &Network{Generator: wanSpec(2)}},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip changed the request:\n%s\n%s", b, b2)
	}
}

// checkID is the comparable identity of one check outcome.
type checkID struct {
	kind, loc, desc string
	ok              bool
}

func reportChecks(t *testing.T, r *engine.ReportJSON) []checkID {
	t.Helper()
	out := make([]checkID, 0, len(r.Checks))
	for _, c := range r.Checks {
		out = append(out, checkID{c.Kind, c.Loc, c.Desc, c.OK})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		return a.kind+a.loc+a.desc < b.kind+b.loc+b.desc
	})
	return out
}

// TestPlanMatchesLegacySuiteRun round-trips every registered suite through
// the plan path and asserts the per-problem reports equal a legacy
// suite.Build run on a fresh engine.
func TestPlanMatchesLegacySuiteRun(t *testing.T) {
	networks := map[string]Network{
		"fig1-no-transit": {Config: netgen.Fig1DSL(netgen.Fig1Options{})},
		"fig1-liveness":   {Config: netgen.Fig1DSL(netgen.Fig1Options{})},
		"fullmesh":        {Generator: &netgen.GeneratorSpec{Kind: "fullmesh", Size: 4}},
		"sat-stress":      {Generator: &netgen.GeneratorSpec{Kind: "fig1"}},
		"wan-peering":     {Generator: wanSpec(1)},
		"wan-ip-reuse":    {Generator: wanSpec(1)},
		"wan-ip-liveness": {Generator: wanSpec(1)},
	}
	for _, name := range netgen.SuiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			ns, ok := networks[name]
			if !ok {
				t.Fatalf("no test network for registered suite %q; extend the map", name)
			}
			req := Request{Network: ns, Properties: []Property{{Name: name}}}

			// Plan path, on its own engine.
			res, err := Execute(req, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Properties) != 1 {
				t.Fatalf("got %d property results, want 1", len(res.Properties))
			}

			// Legacy path: materialize the same network, Build, submit.
			c, err := Compile(req, nil)
			if err != nil {
				t.Fatal(err)
			}
			eng := engine.New(engine.Options{Workers: 4})
			defer eng.Close()
			suite, _ := netgen.Lookup(name)
			problems := suite.Build(c.Network, c.Params)

			got := res.Properties[0].Problems
			if len(got) != len(problems) {
				t.Fatalf("plan ran %d problems, legacy built %d", len(got), len(problems))
			}
			for i, p := range problems {
				out := got[i]
				if out.Name != p.Name {
					t.Fatalf("problem %d: plan name %q, legacy name %q", i, out.Name, p.Name)
				}
				var legacy *engine.ReportJSON
				switch {
				case p.Safety != nil:
					j, err := eng.Submit(context.Background(), engine.Workload{Safety: p.Safety})
					if err != nil {
						t.Fatal(err)
					}
					enc := engine.EncodeReport(j.Wait())
					legacy = &enc
				case p.Liveness != nil:
					j, err := eng.Submit(context.Background(), engine.Workload{Liveness: p.Liveness})
					if err != nil {
						if !out.Skipped {
							t.Fatalf("problem %s: legacy skipped (%v), plan did not", p.Name, err)
						}
						continue
					}
					enc := engine.EncodeReport(j.Wait())
					legacy = &enc
				}
				if out.Skipped || out.ReportJSON == nil {
					t.Fatalf("problem %s: plan skipped or missing report, legacy ran", p.Name)
				}
				if out.OK != legacy.OK {
					t.Fatalf("problem %s: plan ok=%v, legacy ok=%v", p.Name, out.OK, legacy.OK)
				}
				gotChecks, wantChecks := reportChecks(t, out.ReportJSON), reportChecks(t, legacy)
				if len(gotChecks) != len(wantChecks) {
					t.Fatalf("problem %s: plan ran %d checks, legacy %d", p.Name, len(gotChecks), len(wantChecks))
				}
				for j := range gotChecks {
					if gotChecks[j] != wantChecks[j] {
						t.Fatalf("problem %s check %d: plan %+v, legacy %+v", p.Name, j, gotChecks[j], wantChecks[j])
					}
				}
			}
		})
	}
}

// TestMultiPropertyPlanSharedEngine is the acceptance-criterion shape: one
// request, several properties over one network, per-property reports, and
// cross-property cache/dedup reuse on the shared engine.
func TestMultiPropertyPlanSharedEngine(t *testing.T) {
	c, err := Compile(Request{
		Network: Network{Generator: wanSpec(1)},
		Properties: []Property{
			{Name: "wan-peering", Routers: []topology.NodeID{netgen.RegionRouter(0, 0)}},
			{Name: "wan-peering", Routers: []topology.NodeID{netgen.RegionRouter(1, 0)}},
			{Name: "wan-ip-reuse"},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	res, err := Run(eng, c, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || len(res.Properties) != 3 {
		t.Fatalf("want 3 OK property reports, got ok=%v n=%d", res.OK, len(res.Properties))
	}
	for i, pr := range res.Properties {
		if !pr.OK || len(pr.Problems) == 0 {
			t.Fatalf("property %d (%s): ok=%v problems=%d", i, pr.Property.Name, pr.OK, len(pr.Problems))
		}
		for _, p := range pr.Problems {
			if p.ReportJSON == nil || !p.OK {
				t.Fatalf("property %d problem %s: missing or failing report", i, p.Name)
			}
		}
	}
	// Scoping: the two wan-peering entries each cover exactly one router's
	// 11 peering problems.
	for i := 0; i < 2; i++ {
		if n := len(res.Properties[i].Problems); n != len(netgen.PeeringProperties(2)) {
			t.Errorf("scoped wan-peering %d built %d problems, want %d", i, n, len(netgen.PeeringProperties(2)))
		}
	}
	// Cross-property reuse: the two scoped wan-peering instances share
	// almost all their local checks, so the later one must be served from
	// cache/dedup rather than re-solved.
	reuse := res.Properties[0].Stats.CacheHits + res.Properties[0].Stats.DedupHits +
		res.Properties[1].Stats.CacheHits + res.Properties[1].Stats.DedupHits
	if reuse == 0 {
		t.Errorf("expected cross-property cache/dedup reuse, stats: %+v / %+v",
			res.Properties[0].Stats, res.Properties[1].Stats)
	}
	if res.Engine.ChecksSolved >= res.Engine.ChecksSubmitted {
		t.Errorf("engine solved %d of %d submitted checks; sharing had no effect",
			res.Engine.ChecksSolved, res.Engine.ChecksSubmitted)
	}
}

func TestPlanEventStream(t *testing.T) {
	c, err := Compile(Request{
		Network:    Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}},
		Properties: []Property{{Name: "fig1-no-transit"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	var events []Event
	res, err := Run(eng, c, RunConfig{Sink: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("fig1-no-transit should verify: %+v", res)
	}
	var starts, checks, problems, properties, plans int
	for _, ev := range events {
		switch ev.Type {
		case "start":
			starts++
			if ev.Total == 0 || checks > 0 {
				t.Fatalf("start event must precede checks and carry the total: %+v", ev)
			}
		case "check":
			checks++
			if problems > 0 {
				t.Fatal("check event after its problem event")
			}
		case "problem":
			problems++
		case "property":
			properties++
		case "plan":
			plans++
		}
	}
	total := res.Properties[0].Stats.Checks
	if starts != 1 || checks != total || problems != 1 || properties != 1 || plans != 1 {
		t.Fatalf("events: %d starts, %d checks (want %d), %d problems, %d properties, %d plans",
			starts, checks, total, problems, properties, plans)
	}
	if events[len(events)-1].Type != "plan" {
		t.Fatalf("last event is %q, want plan", events[len(events)-1].Type)
	}
}

// TestPlanDelta exercises Options.Baseline: a growth change re-solves only
// the dirty subset, and an identical baseline reuses everything.
func TestPlanDelta(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()

	c, err := Compile(Request{
		Network:    Network{Generator: wanSpec(2)},
		Properties: []Property{{Name: "wan-peering"}},
		Options:    Options{Baseline: &Network{Generator: wanSpec(1)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, c, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline == nil || res.Update == nil || !res.OK {
		t.Fatalf("delta run should report baseline+update: %+v", res)
	}
	u := res.Update
	if u.ReusedResults == 0 || u.DirtyChecks == 0 || u.DirtyChecks >= u.TotalChecks {
		t.Fatalf("growth update should mix reuse and dirty work: %+v", u)
	}

	// Identical baseline: nothing dirty.
	c2, err := Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-peering"}},
		Options:    Options{Baseline: &Network{Generator: wanSpec(1)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(eng, c2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if u := res2.Update; u.DirtyChecks != 0 || u.ReusedResults != u.TotalChecks {
		t.Fatalf("no-op update should reuse everything: %+v", u)
	}
}

// TestPlanDeltaInheritsScope: an incremental run over a scoped plan
// re-enumerates only the scoped problems on every state.
func TestPlanDeltaInheritsScope(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	scoped := []Property{{Name: "wan-peering", Routers: []topology.NodeID{netgen.EdgeRouter(0)}}}
	c, err := Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: scoped,
		Options:    Options{Baseline: &Network{Generator: wanSpec(1)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, c, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantProblems := len(netgen.PeeringProperties(2))
	if got := len(res.Update.Problems); got != wantProblems {
		t.Fatalf("scoped delta update ran %d problems, want %d (one router's properties)", got, wantProblems)
	}
	if res.Update.Suite != "wan-peering" {
		t.Errorf("delta label = %q", res.Update.Suite)
	}
}

func TestCompileScopeErrors(t *testing.T) {
	_, err := Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-peering", Routers: []topology.NodeID{"no-such-router"}}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "no-such-router") {
		t.Fatalf("scoping to an unknown router should fail compile, got %v", err)
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("scope error %v (%T) should be a RequestError", err, err)
	}
	_, err = Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-peering", Routers: []topology.NodeID{netgen.PeerNode(0, 0)}}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "external") {
		t.Fatalf("scoping to an external node should fail compile, got %v", err)
	}
	// A region index outside the effective region count would scope the
	// regional suites to nothing and pass vacuously; compile must reject it.
	_, err = Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-ip-reuse", Regions: []int{7}}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "region index 7") {
		t.Fatalf("out-of-range region scope should fail compile, got %v", err)
	}
	// Dimensions individually valid but jointly empty: wan-ip-reuse for
	// region 0 enumerates only routers *outside* region 0, so scoping its
	// routers to one inside the region selects nothing.
	_, err = Compile(Request{
		Network: Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-ip-reuse", Regions: []int{0},
			Routers: []topology.NodeID{netgen.RegionRouter(0, 0)}}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "selects no problems") {
		t.Fatalf("jointly-empty scope should fail compile, got %v", err)
	}
}

func TestRequestErrorsAreTyped(t *testing.T) {
	cases := []error{
		Request{Properties: []Property{{Name: "fig1-no-transit"}}}.Validate(),
		Request{Network: Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}}}.Validate(),
		Request{Network: Network{Generator: &netgen.GeneratorSpec{Kind: "fig1"}},
			Properties: []Property{{Name: "nope"}}}.Validate(),
	}
	for i, err := range cases {
		var reqErr *RequestError
		if err == nil || !errors.As(err, &reqErr) {
			t.Errorf("case %d: %v (%T) should be a RequestError", i, err, err)
		}
	}
}

// TestMaterializeRejectsAmbiguousSource: a bare Network (session update
// bodies) must reject two sources rather than silently picking one.
func TestMaterializeRejectsAmbiguousSource(t *testing.T) {
	_, _, err := Network{Config: "x", Generator: &netgen.GeneratorSpec{Kind: "fig1"}}.Materialize(nil)
	if err == nil || !strings.Contains(err.Error(), "exactly one network source") {
		t.Fatalf("ambiguous source accepted: %v", err)
	}
	_, _, err = Network{}.Materialize(nil)
	if err == nil {
		t.Fatal("empty source accepted")
	}
}

type fakeResolver map[string]*topology.Network

func (r fakeResolver) ResolveBaseline(ref string) (*topology.Network, int, error) {
	n, ok := r[ref]
	if !ok {
		return nil, 0, fmt.Errorf("no such baseline %q", ref)
	}
	return n, 2, nil
}

func TestBaselineReference(t *testing.T) {
	req := Request{
		Network:    Network{Baseline: "session-1"},
		Properties: []Property{{Name: "fig1-no-transit"}},
	}
	if _, err := Compile(req, nil); err == nil {
		t.Fatal("baseline reference without a resolver should fail")
	}
	res := fakeResolver{"session-1": netgen.Fig1(netgen.Fig1Options{})}
	c, err := Compile(req, res)
	if err != nil {
		t.Fatal(err)
	}
	if c.Network == nil || len(c.Units[0].Problems) != 1 {
		t.Fatalf("baseline-resolved plan should compile: %+v", c)
	}
	// The resolver's region count is inherited when the request sets none.
	if c.Params.Regions != 2 {
		t.Fatalf("baseline regions not inherited: params %+v", c.Params)
	}
}

// TestPlanAdmittedAsOneUnit: the compiled plan's check count is its
// admission cost, a too-small engine budget rejects the whole request with
// the typed admission error before any check is submitted, and a budget
// that fits admits and runs it under the request's tenant.
func TestPlanAdmittedAsOneUnit(t *testing.T) {
	req := Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-peering"}},
		Options:    Options{Tenant: "acme", Priority: 2},
	}
	c, err := Compile(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	cost := c.Cost()
	if cost == 0 {
		t.Fatal("compiled plan reports zero cost")
	}
	if c.Tenant() != "acme" {
		t.Fatalf("Tenant() = %q", c.Tenant())
	}

	// One check short of the plan: rejected as a unit, nothing submitted.
	eng := engine.New(engine.Options{Admission: engine.Admission{MaxInFlightChecks: cost - 1}})
	defer eng.Close()
	_, err = Run(eng, c, RunConfig{})
	var adm *engine.ErrAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("under-budget run: got %v, want ErrAdmission", err)
	}
	if adm.Tenant != "acme" || adm.Cost != cost {
		t.Fatalf("ErrAdmission fields: %+v", adm)
	}
	st := eng.Stats()
	if st.ChecksSubmitted != 0 {
		t.Fatalf("rejected plan still submitted %d checks", st.ChecksSubmitted)
	}
	if st.Tenants["acme"].Rejected != 1 {
		t.Fatalf("tenant stats after rejection: %+v", st.Tenants["acme"])
	}

	// An exact-fit budget admits the plan; the reservation is released when
	// the run completes, and the per-job stats carry the tenant.
	eng2 := engine.New(engine.Options{Admission: engine.Admission{MaxInFlightChecks: cost}})
	defer eng2.Close()
	c2, err := Compile(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng2, c2, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("plan failed under an exact-fit budget")
	}
	if got := res.Properties[0].Stats.Tenant; got != "acme" {
		t.Fatalf("property stats tenant = %q, want acme", got)
	}
	st2 := eng2.Stats()
	if st2.Tenants["acme"].Admitted != 1 || st2.InFlightCost != 0 {
		t.Fatalf("post-run tenant accounting: %+v (in-flight %d)", st2.Tenants["acme"], st2.InFlightCost)
	}
	// Capacity was returned: the same plan fits again.
	c3, err := Compile(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(eng2, c3, RunConfig{}); err != nil {
		t.Fatalf("rerun after release rejected: %v", err)
	}
}

// TestPlanHostReservation: a host-provided reservation (the lyserve 429
// path) is used instead of re-reserving, and Run releases it.
func TestPlanHostReservation(t *testing.T) {
	c, err := Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-peering"}},
		Options:    Options{Tenant: "acme"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Admission: engine.Admission{MaxInFlightChecks: c.Cost()}})
	defer eng.Close()
	resv, err := eng.Reserve(c.Tenant(), c.Cost())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, c, RunConfig{Reservation: resv})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("run under host reservation failed")
	}
	if st := eng.Stats(); st.InFlightCost != 0 {
		t.Fatalf("Run did not release the host reservation: in-flight %d", st.InFlightCost)
	}
}

// TestDeltaPlanReleasesHostReservation: a host-made reservation handed to a
// delta-mode run (Options.Baseline) is returned up front — the delta
// verifier admits each of its runs as its own unit — never leaked.
func TestDeltaPlanReleasesHostReservation(t *testing.T) {
	c, err := Compile(Request{
		Network:    Network{Generator: wanSpec(1)},
		Properties: []Property{{Name: "wan-peering"}},
		Options:    Options{Tenant: "acme", Baseline: &Network{Generator: wanSpec(1)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	resv, err := eng.Reserve(c.Tenant(), c.Cost())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, c, RunConfig{Reservation: resv})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Update == nil {
		t.Fatalf("delta run: ok=%v update=%v", res.OK, res.Update)
	}
	if st := eng.Stats(); st.InFlightCost != 0 {
		t.Fatalf("delta run leaked %d in-flight cost from the host reservation", st.InFlightCost)
	}
}
