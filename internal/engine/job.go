package engine

import (
	"context"
	"sync"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/solver"
	"lightyear/internal/telemetry"
)

// Progress is one per-check progress event streamed while a job runs.
type Progress struct {
	JobID     uint64
	Completed int // checks completed so far, including this one
	Total     int
	FromCache bool // served from the LRU result cache
	Deduped   bool // coalesced with an in-flight identical check
	Result    core.CheckResult
}

// JobStats summarizes how a job's checks were satisfied: cache/dedup reuse,
// admission accounting (tenant, cost, time spent queued behind the fair
// dispatcher), and — for checks this job actually solved — the per-backend
// accounting of the solver backend the job was routed to.
type JobStats struct {
	Checks    int `json:"checks"`
	Completed int `json:"completed"`
	CacheHits int `json:"cache_hits"`
	DedupHits int `json:"dedup_hits"`

	// Tenant is the principal the job was admitted under; Cost its admission
	// cost; QueueWaitNanos the time between admission and the dispatch of
	// its first check (0 for empty jobs).
	Tenant         string `json:"tenant,omitempty"`
	Cost           int    `json:"cost,omitempty"`
	QueueWaitNanos int64  `json:"queue_wait_ns,omitempty"`

	// Backend names the solver backend this job's solved checks ran on.
	Backend string `json:"backend,omitempty"`
	// Solved counts checks this job executed itself (not served from cache
	// or coalesced with another job's in-flight solve).
	Solved int `json:"solved"`
	// Unknown counts results left undecided (budget exhausted/cancelled),
	// whether solved here or adapted from another job.
	Unknown int `json:"unknown,omitempty"`
	// Raced sums the portfolio variants raced across this job's solves.
	Raced int `json:"raced,omitempty"`
	// Escalated counts tiered quick-budget escalations.
	Escalated int `json:"escalated,omitempty"`
	// SolveNanos sums solver time across this job's own solves.
	SolveNanos int64 `json:"solve_ns,omitempty"`
	// Solver sums the CDCL search provenance across this job's own solves —
	// the same counters each CheckResult carries per check.
	Solver core.SolveStats `json:"solver"`
}

// QueueWait returns the job's time-in-queue as a duration.
func (s JobStats) QueueWait() time.Duration { return time.Duration(s.QueueWaitNanos) }

// Job is one admitted workload running on the engine. Obtain the final
// report with Wait, or watch per-check completion with Progress.
type Job struct {
	ID       uint64
	Property core.Property
	// Tenant, Priority, and Cost mirror the submitted Workload's admission
	// identity.
	Tenant   string
	Priority int
	Cost     int

	engine      *Engine
	ctx         context.Context
	total       int
	start       time.Time
	backend     solver.Backend
	reservation *Reservation

	mu         sync.Mutex
	results    []core.CheckResult
	completed  int
	cacheHits  int
	dedupHits  int
	solved     int
	unknown    int
	raced      int
	escalated  int
	solveNS    int64
	depth      core.SolveStats // summed provenance of this job's own solves
	dispatched time.Time       // when the dispatcher sent the first check

	// Tracing state (see telemetry.go): span is the caller-provided parent
	// (a plan run's per-problem span), trace an engine-owned trace when no
	// parent was given; the pipeline spans record under whichever is set.
	trace        *telemetry.Trace
	span         *telemetry.Span
	queueSpan    *telemetry.Span
	dispatchSpan *telemetry.Span
	solveSpan    *telemetry.Span
	solveSpanSet bool

	// progress is buffered to total, so workers never block on a caller
	// that does not drain it; it is closed when the job completes.
	progress chan Progress
	done     chan struct{}
	report   *core.Report
}

func newJob(e *Engine, id uint64, ctx context.Context, prop core.Property, checks []core.Check,
	backend solver.Backend, tenant string, priority, cost int, resv *Reservation) *Job {
	total := len(checks)
	return &Job{
		ID:          id,
		Property:    prop,
		Tenant:      tenant,
		Priority:    priority,
		Cost:        cost,
		engine:      e,
		ctx:         ctx,
		total:       total,
		start:       time.Now(),
		backend:     backend,
		reservation: resv,
		results:     make([]core.CheckResult, total),
		progress:    make(chan Progress, total),
		done:        make(chan struct{}),
	}
}

// NumChecks returns the number of checks in the job.
func (j *Job) NumChecks() int { return j.total }

// Progress returns the per-check event stream. The channel is buffered to
// the job's check count and closed on completion, so callers may drain it
// fully, partially, or not at all.
func (j *Job) Progress() <-chan Progress { return j.progress }

// Done returns a channel closed when the job's report is ready.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until all checks complete and returns the assembled report.
func (j *Job) Wait() *core.Report {
	<-j.done
	return j.report
}

// markDispatched records when the fair dispatcher released the job's first
// check to the worker pool — the end of its queue wait.
func (j *Job) markDispatched(t time.Time) {
	j.mu.Lock()
	first := j.dispatched.IsZero()
	if first {
		j.dispatched = t
	}
	j.mu.Unlock()
	if first {
		j.engine.met.queueWait.Observe(t.Sub(j.start).Seconds())
		j.spanDispatched()
	}
}

// Stats returns a snapshot of the job's check accounting.
func (j *Job) Stats() JobStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	var wait int64
	if !j.dispatched.IsZero() {
		wait = j.dispatched.Sub(j.start).Nanoseconds()
	}
	return JobStats{
		Checks: j.total, Completed: j.completed,
		CacheHits: j.cacheHits, DedupHits: j.dedupHits,
		Tenant: j.Tenant, Cost: j.Cost, QueueWaitNanos: wait,
		Backend: j.backend.Name(),
		Solved:  j.solved, Unknown: j.unknown,
		Raced: j.raced, Escalated: j.escalated, SolveNanos: j.solveNS,
		Solver: j.depth,
	}
}

// deliver records one completed check and finishes the job when it is the
// last one. out carries the solver outcome when this job executed the check
// itself (nil for cache/dedup deliveries). Called from engine workers.
func (j *Job) deliver(idx int, r core.CheckResult, cached, deduped bool, out *solver.Outcome) {
	j.mu.Lock()
	j.results[idx] = r
	j.completed++
	if cached {
		j.cacheHits++
	}
	if deduped {
		j.dedupHits++
	}
	if r.Status == core.StatusUnknown {
		j.unknown++
	}
	if out != nil {
		j.solved++
		j.raced += out.Raced
		if out.Escalated {
			j.escalated++
		}
		j.solveNS += out.SolveTime.Nanoseconds()
		j.depth.Add(out.Solver)
	}
	completed := j.completed
	// Send under the mutex: the channel is buffered to total so this never
	// blocks, and serializing sends here guarantees they all happen before
	// the final deliverer closes the channel in finish.
	j.progress <- Progress{
		JobID:     j.ID,
		Completed: completed,
		Total:     j.total,
		FromCache: cached,
		Deduped:   deduped,
		Result:    r,
	}
	j.mu.Unlock()

	if completed == j.total {
		j.finish()
	}
}

// finish assembles the deterministic report, releases the job's admission
// cost, and releases waiters.
func (j *Job) finish() {
	results := make([]core.CheckResult, len(j.results))
	copy(results, j.results)
	j.report = core.NewReport(j.Property, results, time.Since(j.start))
	j.engine.jobsCompleted.Add(1)
	j.engine.met.jobsCompleted.Inc()
	j.finishJobTelemetry()
	j.engine.jobDone(j)
	close(j.progress)
	close(j.done)
}
