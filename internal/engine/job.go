package engine

import (
	"sync"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/solver"
)

// Progress is one per-check progress event streamed while a job runs.
type Progress struct {
	JobID     uint64
	Completed int // checks completed so far, including this one
	Total     int
	FromCache bool // served from the LRU result cache
	Deduped   bool // coalesced with an in-flight identical check
	Result    core.CheckResult
}

// JobStats summarizes how a job's checks were satisfied: cache/dedup reuse,
// and — for checks this job actually solved — the per-backend accounting of
// the solver backend the job was routed to.
type JobStats struct {
	Checks    int `json:"checks"`
	Completed int `json:"completed"`
	CacheHits int `json:"cache_hits"`
	DedupHits int `json:"dedup_hits"`

	// Backend names the solver backend this job's solved checks ran on.
	Backend string `json:"backend,omitempty"`
	// Solved counts checks this job executed itself (not served from cache
	// or coalesced with another job's in-flight solve).
	Solved int `json:"solved"`
	// Unknown counts results left undecided (budget exhausted/cancelled),
	// whether solved here or adapted from another job.
	Unknown int `json:"unknown,omitempty"`
	// Raced sums the portfolio variants raced across this job's solves.
	Raced int `json:"raced,omitempty"`
	// Escalated counts tiered quick-budget escalations.
	Escalated int `json:"escalated,omitempty"`
	// SolveNanos sums solver time across this job's own solves.
	SolveNanos int64 `json:"solve_ns,omitempty"`
}

// Job is one verification problem running on the engine. Obtain the final
// report with Wait, or watch per-check completion with Progress.
type Job struct {
	ID       uint64
	Property core.Property

	engine  *Engine
	total   int
	start   time.Time
	backend solver.Backend

	mu        sync.Mutex
	results   []core.CheckResult
	completed int
	cacheHits int
	dedupHits int
	solved    int
	unknown   int
	raced     int
	escalated int
	solveNS   int64

	// progress is buffered to total, so workers never block on a caller
	// that does not drain it; it is closed when the job completes.
	progress chan Progress
	done     chan struct{}
	report   *core.Report
}

func newJob(e *Engine, id uint64, prop core.Property, total int, backend solver.Backend) *Job {
	return &Job{
		ID:       id,
		Property: prop,
		engine:   e,
		total:    total,
		start:    time.Now(),
		backend:  backend,
		results:  make([]core.CheckResult, total),
		progress: make(chan Progress, total),
		done:     make(chan struct{}),
	}
}

// NumChecks returns the number of checks in the job.
func (j *Job) NumChecks() int { return j.total }

// Progress returns the per-check event stream. The channel is buffered to
// the job's check count and closed on completion, so callers may drain it
// fully, partially, or not at all.
func (j *Job) Progress() <-chan Progress { return j.progress }

// Done returns a channel closed when the job's report is ready.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until all checks complete and returns the assembled report.
func (j *Job) Wait() *core.Report {
	<-j.done
	return j.report
}

// Stats returns a snapshot of the job's check accounting.
func (j *Job) Stats() JobStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStats{
		Checks: j.total, Completed: j.completed,
		CacheHits: j.cacheHits, DedupHits: j.dedupHits,
		Backend: j.backend.Name(),
		Solved:  j.solved, Unknown: j.unknown,
		Raced: j.raced, Escalated: j.escalated, SolveNanos: j.solveNS,
	}
}

// deliver records one completed check and finishes the job when it is the
// last one. out carries the solver outcome when this job executed the check
// itself (nil for cache/dedup deliveries). Called from engine workers.
func (j *Job) deliver(idx int, r core.CheckResult, cached, deduped bool, out *solver.Outcome) {
	j.mu.Lock()
	j.results[idx] = r
	j.completed++
	if cached {
		j.cacheHits++
	}
	if deduped {
		j.dedupHits++
	}
	if r.Status == core.StatusUnknown {
		j.unknown++
	}
	if out != nil {
		j.solved++
		j.raced += out.Raced
		if out.Escalated {
			j.escalated++
		}
		j.solveNS += out.SolveTime.Nanoseconds()
	}
	completed := j.completed
	// Send under the mutex: the channel is buffered to total so this never
	// blocks, and serializing sends here guarantees they all happen before
	// the final deliverer closes the channel in finish.
	j.progress <- Progress{
		JobID:     j.ID,
		Completed: completed,
		Total:     j.total,
		FromCache: cached,
		Deduped:   deduped,
		Result:    r,
	}
	j.mu.Unlock()

	if completed == j.total {
		j.finish()
	}
}

// finish assembles the deterministic report and releases waiters.
func (j *Job) finish() {
	results := make([]core.CheckResult, len(j.results))
	copy(results, j.results)
	j.report = core.NewReport(j.Property, results, time.Since(j.start))
	j.engine.jobsCompleted.Add(1)
	close(j.progress)
	close(j.done)
}
