package engine

import (
	"fmt"
	"sync"
	"testing"

	"lightyear/internal/core"
)

func result(desc string) core.CheckResult {
	return core.CheckResult{Desc: desc, OK: true}
}

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(3)
	c.add("a", result("a"))
	c.add("b", result("b"))
	c.add("c", result("c"))

	// Touch "a" so "b" becomes the LRU entry, then overflow.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.add("d", result("d"))

	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s should survive eviction", k)
		}
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want capacity 3", c.len())
	}
}

func TestLRUCacheUpdateRefreshes(t *testing.T) {
	c := newLRUCache(2)
	c.add("a", result("a1"))
	c.add("b", result("b"))
	c.add("a", result("a2")) // refresh, not insert
	if c.len() != 2 {
		t.Fatalf("len = %d after refresh, want 2", c.len())
	}
	if r, ok := c.get("a"); !ok || r.Desc != "a2" {
		t.Errorf("get(a) = %v/%v, want refreshed value", r.Desc, ok)
	}
	c.add("c", result("c")) // evicts b (a was refreshed more recently)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUCacheConcurrentAccess(t *testing.T) {
	c := newLRUCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				c.add(k, result(k))
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Errorf("len = %d exceeds capacity 64", c.len())
	}
}
