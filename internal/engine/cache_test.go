package engine

import (
	"fmt"
	"sync"
	"testing"

	"lightyear/internal/core"
)

func result(desc string) core.CheckResult {
	return core.CheckResult{Desc: desc, OK: true}
}

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(3)
	c.Add("a", result("a"))
	c.Add("b", result("b"))
	c.Add("c", result("c"))

	// Touch "a" so "b" becomes the LRU entry, then overflow.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Add("d", result("d"))

	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should survive eviction", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want capacity 3", c.Len())
	}
}

func TestLRUCacheUpdateRefreshes(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", result("a1"))
	c.Add("b", result("b"))
	c.Add("a", result("a2")) // refresh, not insert
	if c.Len() != 2 {
		t.Fatalf("len = %d after refresh, want 2", c.Len())
	}
	if r, ok := c.Get("a"); !ok || r.Desc != "a2" {
		t.Errorf("get(a) = %v/%v, want refreshed value", r.Desc, ok)
	}
	c.Add("c", result("c")) // evicts b (a was refreshed more recently)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestLRUCacheConcurrentAccess(t *testing.T) {
	c := newLRUCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				c.Add(k, result(k))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d exceeds capacity 64", c.Len())
	}
}
