package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"lightyear/internal/core"
)

// DefaultTenant is the principal workloads are accounted to when they name
// no tenant of their own.
const DefaultTenant = "default"

// NormalizeTenant maps the empty tenant to DefaultTenant.
func NormalizeTenant(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

// Admission is the engine's load-shedding policy: workloads are admitted or
// rejected *before* their checks enter the shared queue, so saturation
// surfaces as an explicit, typed ErrAdmission (HTTP 429 in lyserve) instead
// of unbounded queueing behind saturated workers. The zero value admits
// everything (per-tenant accounting still runs, so Stats report per-tenant
// traffic even on unlimited engines).
type Admission struct {
	// MaxInFlightChecks caps the total admitted cost (checks) across all
	// tenants that has not yet completed; 0 means unlimited.
	MaxInFlightChecks int
	// PerTenantQuota caps one tenant's admitted, uncompleted cost; 0 means
	// unlimited.
	PerTenantQuota int
	// MaxQueueDepth caps the number of individually submitted workloads
	// awaiting dispatch; 0 means unlimited. Workloads under a Reservation
	// are exempt — their unit was admitted as a whole.
	MaxQueueDepth int
	// Weights are per-tenant weighted-fair dispatch weights (default 1): a
	// tenant with weight 2 dequeues twice the checks per round-robin turn.
	Weights map[string]int
}

// ParseWeights parses the -tenant-weights command-line form shared by
// lyserve and lightyear — "t1=3,t2=1" — into an Admission.Weights map.
// Weights must be positive integers; an empty spec yields a nil map
// (every tenant weighs 1).
func ParseWeights(spec string) (map[string]int, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("bad weight %q, want tenant=N", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q: want a positive integer, got %q", part, val)
		}
		weights[name] = w
	}
	if len(weights) == 0 {
		return nil, nil
	}
	return weights, nil
}

// ErrAdmission is the typed rejection the admission layer returns: the
// tenant, the cost that was asked for, the limit that refused it, and a
// backoff hint derived from the engine's observed per-check solve time.
// Hosts map it to their backpressure surface (lyserve: HTTP 429 with a
// Retry-After header; lightyear: a non-zero exit with the hint).
type ErrAdmission struct {
	Tenant     string
	Cost       int
	Limit      int
	Reason     string // which limit refused: "tenant quota" | "engine in-flight" | "queue depth"
	RetryAfter time.Duration
	// Permanent marks a request whose cost exceeds the limit outright —
	// even an idle engine could never admit it, so retrying (at this cost)
	// cannot succeed; split the request or raise the limit instead.
	Permanent bool
}

func (e *ErrAdmission) Error() string {
	if e.Permanent {
		return fmt.Sprintf("admission rejected for tenant %q: cost %d can never fit %s limit %d; split the request or raise the limit",
			e.Tenant, e.Cost, e.Reason, e.Limit)
	}
	return fmt.Sprintf("admission rejected for tenant %q: cost %d over %s limit %d (retry after %v)",
		e.Tenant, e.Cost, e.Reason, e.Limit, e.RetryAfter.Round(time.Millisecond))
}

// Reservation is an admission grant for a multi-job unit — typically one
// compiled plan, whose whole check count (plan.Compiled.Cost) is admitted
// up front so a request is either fully admitted or fully rejected, never
// half-run. The reservation holds its cost against the tenant's quota and
// the engine budget until Release; workloads submitted with it skip
// per-workload admission. Release is idempotent.
type Reservation struct {
	e        *Engine
	tenant   string
	cost     int
	released bool // guarded by e.sched.mu
}

// Tenant returns the principal the reservation is charged to.
func (r *Reservation) Tenant() string { return r.tenant }

// Cost returns the admitted cost.
func (r *Reservation) Cost() int { return r.cost }

// Release returns the reservation's cost to the tenant's quota and the
// engine budget. Safe to call more than once, and on a nil reservation.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	s := &r.e.sched
	s.mu.Lock()
	if !r.released {
		r.released = true
		tq := s.tenant(r.tenant, r.e.opts.Admission)
		tq.inflight -= r.cost
		s.inflight -= r.cost
	}
	s.mu.Unlock()
}

// Reserve admits cost checks for tenant as one unit ahead of the workloads
// that will perform them. On success the cost is held until the returned
// reservation is released; on rejection it returns ErrAdmission and
// records the rejection in the tenant's counters.
func (e *Engine) Reserve(tenant string, cost int) (*Reservation, error) {
	if cost < 0 {
		return nil, fmt.Errorf("engine: reservation cost must be >= 0, got %d", cost)
	}
	t := NormalizeTenant(tenant)
	s := &e.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("engine: Reserve after Close")
	}
	tq := s.tenant(t, e.opts.Admission)
	if err := e.checkLimitsLocked(tq, cost); err != nil {
		tq.rejected++
		if ea, ok := err.(*ErrAdmission); ok {
			e.met.rejected(ea.Tenant, ea.Reason)
		}
		return nil, err
	}
	tq.inflight += cost
	s.inflight += cost
	tq.admitted++
	return &Reservation{e: e, tenant: t, cost: cost}, nil
}

// AdmitProbe reports whether a unit of the given cost would be admitted for
// tenant right now, without reserving anything. A rejection is counted in
// the tenant's counters (the caller is shedding the request); admission is
// not, since nothing was granted. Hosts that cannot hold a reservation
// across an asynchronous boundary (lyserve session creation, whose
// baseline run re-admits inside the session worker) use it for an early
// 429.
func (e *Engine) AdmitProbe(tenant string, cost int) error {
	if cost < 0 {
		return fmt.Errorf("engine: probe cost must be >= 0, got %d", cost)
	}
	t := NormalizeTenant(tenant)
	s := &e.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tenant(t, e.opts.Admission)
	if err := e.checkLimitsLocked(tq, cost); err != nil {
		tq.rejected++
		if ea, ok := err.(*ErrAdmission); ok {
			e.met.rejected(ea.Tenant, ea.Reason)
		}
		return err
	}
	return nil
}

// checkLimitsLocked applies the quota and in-flight limits (not queue
// depth); sched.mu is held.
func (e *Engine) checkLimitsLocked(tq *tenantQueue, cost int) error {
	a := e.opts.Admission
	if a.PerTenantQuota > 0 && tq.inflight+cost > a.PerTenantQuota {
		return e.admissionErrorLocked(tq.name, cost, a.PerTenantQuota, "tenant quota", tq.inflight+cost-a.PerTenantQuota)
	}
	if a.MaxInFlightChecks > 0 && e.sched.inflight+cost > a.MaxInFlightChecks {
		return e.admissionErrorLocked(tq.name, cost, a.MaxInFlightChecks, "engine in-flight", e.sched.inflight+cost-a.MaxInFlightChecks)
	}
	return nil
}

// admitLocked is the per-workload admission decision made by Submit;
// sched.mu is held. Reserved workloads were admitted with their unit.
func (e *Engine) admitLocked(tq *tenantQueue, cost int, resv *Reservation) error {
	if resv != nil {
		if resv.released {
			return fmt.Errorf("engine: submit under an already-released reservation")
		}
		return nil
	}
	a := e.opts.Admission
	if a.MaxQueueDepth > 0 && e.sched.queued >= a.MaxQueueDepth {
		tq.rejected++
		return e.admissionErrorLocked(tq.name, cost, a.MaxQueueDepth, "queue depth", cost)
	}
	if err := e.checkLimitsLocked(tq, cost); err != nil {
		tq.rejected++
		return err
	}
	tq.inflight += cost
	e.sched.inflight += cost
	tq.admitted++
	return nil
}

// admissionErrorLocked builds the typed rejection, estimating RetryAfter
// as the time the worker pool needs to work off everything standing
// between the rejected request and admission: the capacity deficit plus
// the cost already admitted but still queued ahead of the dispatcher
// (sched.queuedCost). A freshly admitted burst holds capacity long before
// any of it solves, so ignoring queued-ahead cost — as the estimate did
// before — told clients to retry while the backlog was still untouched.
// The per-check time is the engine's observed mean solve time.
func (e *Engine) admissionErrorLocked(tenant string, cost, limit int, reason string, deficit int) *ErrAdmission {
	avg := 50 * time.Millisecond
	if solved := e.checksSolved.Load(); solved > 0 {
		if observed := time.Duration(e.solveNanos.Load() / int64(solved)); observed > 0 {
			avg = observed
		}
	}
	if deficit < 1 {
		deficit = 1
	}
	backlog := deficit + e.sched.queuedCost
	retry := avg * time.Duration(backlog) / time.Duration(e.opts.workers())
	if retry < 100*time.Millisecond {
		retry = 100 * time.Millisecond
	}
	if retry > 30*time.Second {
		retry = 30 * time.Second
	}
	return &ErrAdmission{Tenant: tenant, Cost: cost, Limit: limit, Reason: reason,
		RetryAfter: retry,
		// cost > limit cannot be cured by waiting (queue depth is counted
		// in workloads, not cost, so it is always transient).
		Permanent: reason != "queue depth" && cost > limit,
	}
}

// TenantStats is one tenant's admission and traffic accounting.
type TenantStats struct {
	Admitted     uint64 `json:"admitted"`                 // workloads/reservations granted
	Rejected     uint64 `json:"rejected,omitempty"`       // admission rejections
	Completed    uint64 `json:"completed,omitempty"`      // jobs finished
	Queued       int    `json:"queued,omitempty"`         // workloads awaiting dispatch
	InFlightCost int    `json:"in_flight_cost,omitempty"` // admitted cost not yet released
}

// dispatchQuantum is the number of checks one tenant of weight 1 may
// dispatch per round-robin turn (deficit round-robin over tenants).
const dispatchQuantum = 16

// maxTrackedTenants bounds the per-tenant accounting map. Tenant names are
// client-chosen (lyserve's X-Tenant header), so without a bound a client
// cycling fresh names would grow the engine's memory and Stats output
// forever. When registering a tenant would exceed the bound, fully idle
// tenants — nothing queued, nothing in flight — are evicted, counters
// included; tenants with live work are never evicted.
const maxTrackedTenants = 1024

// tenantQueue is one tenant's scheduler state: its pending workloads
// (priority-ordered), deficit-round-robin credit, and admission counters.
// All fields are guarded by sched.mu.
type tenantQueue struct {
	name    string
	weight  int
	deficit int
	active  bool // member of sched.active
	entries []*dispatchEntry

	inflight  int // admitted cost not yet released
	admitted  uint64
	rejected  uint64
	completed uint64
}

// dispatchEntry is one admitted workload waiting to be dispatched.
type dispatchEntry struct {
	job      *Job
	checks   []core.Check
	priority int
	next     int // next check index to dispatch
}

// sched is the engine's admission + weighted-fair dispatch state: admitted
// workloads queue per tenant, and a single dispatcher goroutine feeds the
// worker pool by deficit round-robin across tenants, so one tenant
// flooding the engine cannot starve another — the fairness half of the
// admission story (shedding is the other half).
type sched struct {
	mu         sync.Mutex
	cond       *sync.Cond
	closed     bool
	tenants    map[string]*tenantQueue
	active     []*tenantQueue // tenants with pending entries, round-robin order
	rr         int
	queued     int // entries not yet fully dispatched
	queuedCost int // checks admitted but not yet handed to the worker pool
	inflight   int // admitted cost not yet released, across tenants
	done       chan struct{}
}

// tenant returns (creating if needed) the tenant's queue; sched.mu is held.
// Registrations beyond maxTrackedTenants first evict idle tenants, so
// client-chosen tenant names cannot grow the map without bound.
func (s *sched) tenant(name string, a Admission) *tenantQueue {
	tq, ok := s.tenants[name]
	if !ok {
		if len(s.tenants) >= maxTrackedTenants {
			for n, q := range s.tenants {
				if !q.active && len(q.entries) == 0 && q.inflight == 0 {
					delete(s.tenants, n)
				}
			}
		}
		w := a.Weights[name]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{name: name, weight: w}
		s.tenants[name] = tq
	}
	return tq
}

// enqueueLocked inserts an admitted workload into its tenant's queue,
// keeping entries ordered by priority (descending, FIFO among equals), and
// wakes the dispatcher; sched.mu is held.
func (s *sched) enqueueLocked(tq *tenantQueue, ent *dispatchEntry) {
	i := len(tq.entries)
	for i > 0 && tq.entries[i-1].priority < ent.priority {
		i--
	}
	tq.entries = append(tq.entries, nil)
	copy(tq.entries[i+1:], tq.entries[i:])
	tq.entries[i] = ent
	s.queued++
	s.queuedCost += len(ent.checks)
	if !tq.active {
		tq.active = true
		s.active = append(s.active, tq)
	}
	s.cond.Signal()
}

// dispatch is the engine's single dispatcher goroutine: deficit round-robin
// across tenants with pending workloads, sending one check at a time into
// the bounded task channel (the blocking send is the backpressure that
// keeps the fair order meaningful — workers pull from a short buffer, not
// an unbounded FIFO). Within a tenant, higher-priority workloads drain
// first. The dispatcher exits only when the engine is closed and every
// queued workload has been dispatched, preserving Close's drain semantics.
func (e *Engine) dispatch() {
	s := &e.sched
	defer close(s.done)
	s.mu.Lock()
	for {
		for len(s.active) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		if s.rr >= len(s.active) {
			s.rr = 0
		}
		tq := s.active[s.rr]
		tq.deficit += dispatchQuantum * tq.weight
		for tq.deficit > 0 && len(tq.entries) > 0 {
			ent := tq.entries[0]
			idx := ent.next
			c := ent.checks[idx]
			ent.next++
			if ent.next == len(ent.checks) {
				tq.entries = tq.entries[1:]
				s.queued--
			}
			tq.deficit--
			s.queuedCost--
			s.mu.Unlock()
			if idx == 0 {
				ent.job.markDispatched(time.Now())
			}
			e.tasks <- task{job: ent.job, idx: idx, check: c}
			if idx == len(ent.checks)-1 {
				ent.job.spanDrained()
			}
			s.mu.Lock()
		}
		if len(tq.entries) == 0 {
			tq.deficit = 0
			tq.active = false
			s.active = append(s.active[:s.rr], s.active[s.rr+1:]...)
			// rr now indexes the next tenant (or wraps at the loop top).
		} else {
			s.rr++
		}
	}
}

// jobDone releases a finished job's admission cost (unless a reservation
// holds it) and counts the completion.
func (e *Engine) jobDone(j *Job) {
	s := &e.sched
	s.mu.Lock()
	tq := s.tenant(j.Tenant, e.opts.Admission)
	tq.completed++
	if j.reservation == nil && j.Cost > 0 {
		tq.inflight -= j.Cost
		s.inflight -= j.Cost
	}
	s.mu.Unlock()
}
