package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/logging"
	"lightyear/internal/netgen"
	"lightyear/internal/telemetry"
)

// TestSolveProvenance: a pigeonhole check that genuinely requires CDCL
// search surfaces identical conflict/decision provenance in the per-check
// CheckResult, the job stats, the engine's per-backend stats, the solve
// span's attributes, and the conflicts-per-check histogram.
func TestSolveProvenance(t *testing.T) {
	rec := telemetry.New(0)
	eng := engine.New(engine.Options{Workers: 1, CacheSize: -1, Telemetry: rec})
	defer eng.Close()

	n := netgen.Fig1(netgen.Fig1Options{})
	j, err := eng.Submit(context.Background(), engine.Workload{Safety: netgen.StressProblem(n, 4)})
	if err != nil {
		t.Fatal(err)
	}
	rep := j.Wait()
	if !rep.OK() {
		t.Fatalf("pigeonhole refutation did not verify:\n%s", rep.Summary())
	}

	// The implication check carries the search load; its CheckResult records
	// the per-check provenance.
	var sum core.SolveStats
	var deep *core.CheckResult
	for i := range rep.Results {
		sum.Add(rep.Results[i].Solver)
		if rep.Results[i].Solver.Conflicts > 0 {
			deep = &rep.Results[i]
		}
	}
	if deep == nil {
		t.Fatal("no check recorded conflicts; pigeonhole should force search")
	}
	if deep.Solver.Decisions == 0 || deep.Solver.Learned == 0 {
		t.Errorf("deep check provenance incomplete: %+v", deep.Solver)
	}
	if deep.NumTerms == 0 {
		t.Error("deep check records no encoding term count")
	}

	// Job stats aggregate exactly the delivered results.
	if js := j.Stats(); js.Solver != sum {
		t.Errorf("job solver stats = %+v, want sum of results %+v", js.Solver, sum)
	}

	// Per-backend engine stats carry the same totals (one job, no cache).
	if bs := eng.Stats().Backends["native"]; bs.Solver != sum {
		t.Errorf("backend solver stats = %+v, want %+v", bs.Solver, sum)
	}

	// The solve span's attributes match the job's summed depth.
	snap, ok := rec.Trace(j.TraceID())
	if !ok {
		t.Fatal("job trace not in ring")
	}
	var attrs map[string]string
	for _, s := range snap.Spans {
		if s.Name == "solve:native" {
			attrs = s.Attrs
		}
	}
	if attrs == nil {
		t.Fatalf("no solve:native span in trace: %+v", snap.Spans)
	}
	for key, want := range map[string]int64{
		"conflicts": sum.Conflicts,
		"decisions": sum.Decisions,
		"restarts":  sum.Restarts,
		"learned":   sum.Learned,
	} {
		if attrs[key] != strconv.FormatInt(want, 10) {
			t.Errorf("solve span attr %s = %q, want %d", key, attrs[key], want)
		}
	}

	// The per-check depth histograms observed the solves.
	var b strings.Builder
	if err := rec.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lightyear_conflicts_per_check_count{backend="native"}`,
		`lightyear_conflicts_per_check_sum{backend="native"} ` + strconv.FormatInt(sum.Conflicts, 10),
		`lightyear_clauses_per_check_sum{backend="native"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSlowCheckLog: a check crossing the configured conflict threshold is
// logged as a structured "slow check" line carrying the same provenance
// counters the CheckResult records.
func TestSlowCheckLog(t *testing.T) {
	var buf bytes.Buffer
	logger, err := logging.Config{Level: "info", Format: "json"}.Build(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{
		Workers: 1, CacheSize: -1,
		Logger:    logger,
		SlowCheck: engine.SlowCheckPolicy{Conflicts: 1, SolveTime: -1},
	})
	defer eng.Close()

	n := netgen.Fig1(netgen.Fig1Options{})
	j, err := eng.Submit(context.Background(), engine.Workload{Safety: netgen.StressProblem(n, 4), Tenant: "ops"})
	if err != nil {
		t.Fatal(err)
	}
	rep := j.Wait()

	var want core.SolveStats
	for i := range rep.Results {
		if rep.Results[i].Solver.Conflicts > 0 {
			want = rep.Results[i].Solver
		}
	}
	var logged struct {
		Msg       string `json:"msg"`
		Component string `json:"component"`
		Tenant    string `json:"tenant"`
		Backend   string `json:"backend"`
		Status    string `json:"status"`
		Conflicts int64  `json:"conflicts"`
		Decisions int64  `json:"decisions"`
		Learned   int64  `json:"learned"`
		Terms     int    `json:"terms"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, "slow check") {
			continue
		}
		if err := json.Unmarshal([]byte(line), &logged); err != nil {
			t.Fatalf("slow-check line is not JSON: %v\n%s", err, line)
		}
		if logged.Conflicts == want.Conflicts {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no slow-check line with %d conflicts in log:\n%s", want.Conflicts, buf.String())
	}
	if logged.Component != "engine" || logged.Tenant != "ops" || logged.Backend != "native" {
		t.Errorf("slow-check identity attrs wrong: %+v", logged)
	}
	if logged.Status != "ok" || logged.Decisions != want.Decisions || logged.Learned != want.Learned || logged.Terms == 0 {
		t.Errorf("slow-check provenance mismatch: got %+v, want %+v", logged, want)
	}
}
