package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/policy"
	"lightyear/internal/solver"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// tinyProblem builds a minimal safety problem whose import policy embeds i,
// so every index yields a semantically distinct filter check (distinct cache
// key — no cross-workload cache or dedup sharing muddies scheduling tests).
// The trivial True⊆True implication check is shared across indices, so
// ordering assertions must anchor on the imp-<i> filter checks.
func tinyProblem(i int) *core.SafetyProblem {
	n := topology.New()
	n.AddRouter("A", 100)
	n.AddExternal("X", 200)
	n.AddEdge("X", "A")
	n.SetImport(topology.Edge{From: "X", To: "A"}, &policy.RouteMap{
		Name: fmt.Sprintf("imp-%d", i),
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.SetLocalPref{Value: uint32(i%1000 + 1)}}, Permit: true},
		},
	})
	return &core.SafetyProblem{
		Network:    n,
		Property:   core.Property{Loc: core.AtRouter("A"), Pred: spec.True()},
		Invariants: core.NewInvariants(spec.True()),
	}
}

// manyChecks concatenates distinct tiny problems' checks into one raw batch
// of at least want checks.
func manyChecks(base, want int) (core.Property, []core.Check) {
	var checks []core.Check
	var prop core.Property
	for i := base; len(checks) < want; i++ {
		p := tinyProblem(i)
		prop = p.Property
		checks = append(checks, p.Checks(core.Options{})...)
	}
	return prop, checks
}

// gate is a test backend that blocks every solve until Open, then solves
// natively — it holds admitted work in flight deterministically.
type gate struct {
	open chan struct{}
	once sync.Once
}

func newGate() *gate { return &gate{open: make(chan struct{})} }

func (g *gate) Open()        { g.once.Do(func() { close(g.open) }) }
func (g *gate) Name() string { return "gate" }
func (g *gate) Solve(ctx context.Context, ob *core.Obligation, _ solver.Budget) solver.Outcome {
	<-g.open
	return solver.Outcome{CheckResult: ob.Solve(ctx, core.SolveConfig{Backend: g.Name()})}
}

// TestWorkloadValidation: Submit rejects malformed descriptors with clear
// errors rather than scheduling garbage.
func TestWorkloadValidation(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()

	if _, err := eng.Submit(context.Background(), engine.Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
	p := tinyProblem(1)
	if _, err := eng.Submit(context.Background(), engine.Workload{
		Safety: p, Checks: p.Checks(core.Options{}),
	}); err == nil {
		t.Error("workload with two payloads accepted")
	}
	if _, err := eng.Submit(context.Background(), engine.Workload{
		Kind: engine.KindLiveness, Safety: p,
	}); err == nil {
		t.Error("kind/payload mismatch accepted")
	}
	// An explicitly empty checks batch is a valid empty job.
	j, err := eng.Submit(context.Background(), engine.Workload{Kind: engine.KindChecks, Property: p.Property})
	if err != nil {
		t.Fatalf("empty checks workload rejected: %v", err)
	}
	if rep := j.Wait(); rep.NumChecks() != 0 {
		t.Errorf("empty job ran %d checks", rep.NumChecks())
	}
	// A cancelled context is refused up front.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Submit(ctx, engine.Workload{Safety: p}); err == nil {
		t.Error("cancelled context accepted")
	}
	// Negative costs would credit the quota accounting; refused everywhere.
	if _, err := eng.Submit(context.Background(), engine.Workload{Safety: p, Cost: -5}); err == nil {
		t.Error("negative workload cost accepted")
	}
	if _, err := eng.Reserve("t", -5); err == nil {
		t.Error("negative reservation cost accepted")
	}
	if err := eng.AdmitProbe("t", -5); err == nil {
		t.Error("negative probe cost accepted")
	}
}

// TestAdmissionTenantQuota: per-tenant token accounting admits up to the
// quota, rejects beyond it with the typed error, and releases tokens when
// jobs complete.
func TestAdmissionTenantQuota(t *testing.T) {
	g := &gate{open: make(chan struct{})}
	p1 := tinyProblem(1)
	cost := len(p1.Checks(core.Options{}))
	eng := engine.New(engine.Options{
		Workers:   1,
		Backend:   g,
		Admission: engine.Admission{PerTenantQuota: cost + 1}, // one workload fits, two do not
	})
	defer eng.Close()
	defer g.Open() // never leave the drain-on-Close gated

	j1, err := eng.Submit(context.Background(), engine.Workload{Safety: p1, Tenant: "acme"})
	if err != nil {
		t.Fatalf("first workload rejected: %v", err)
	}
	_, err = eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(2), Tenant: "acme"})
	var adm *engine.ErrAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("over-quota workload: got %v, want ErrAdmission", err)
	}
	if adm.Tenant != "acme" || adm.Cost != cost || adm.Limit != cost+1 || adm.Reason != "tenant quota" {
		t.Fatalf("ErrAdmission fields: %+v", adm)
	}
	if adm.RetryAfter <= 0 {
		t.Fatalf("ErrAdmission without a RetryAfter hint: %+v", adm)
	}

	// A different tenant is not throttled by acme's quota.
	if _, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(3), Tenant: "other"}); err != nil {
		t.Fatalf("independent tenant rejected: %v", err)
	}

	// Completion releases the tokens: the same submission is admitted.
	g.Open()
	j1.Wait()
	if _, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(2), Tenant: "acme"}); err != nil {
		t.Fatalf("post-completion workload rejected: %v", err)
	}

	st := eng.Stats()
	ts := st.Tenants["acme"]
	if ts.Admitted != 2 || ts.Rejected != 1 {
		t.Fatalf("acme tenant stats: %+v", ts)
	}
	if st.Tenants["other"].Admitted != 1 {
		t.Fatalf("other tenant stats: %+v", st.Tenants["other"])
	}
}

// TestAdmissionMaxInFlight: the engine-wide budget rejects across tenants,
// and an explicit Workload.Cost overrides the check count.
func TestAdmissionMaxInFlight(t *testing.T) {
	g := newGate()
	eng := engine.New(engine.Options{
		Workers:   1,
		Backend:   g,
		Admission: engine.Admission{MaxInFlightChecks: 10},
	})
	defer eng.Close()
	defer g.Open()

	// Declared cost 8 (more than the actual checks) occupies the budget.
	if _, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(1), Tenant: "a", Cost: 8}); err != nil {
		t.Fatalf("first workload rejected: %v", err)
	}
	_, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(2), Tenant: "b", Cost: 8})
	var adm *engine.ErrAdmission
	if !errors.As(err, &adm) || adm.Reason != "engine in-flight" || adm.Limit != 10 {
		t.Fatalf("cross-tenant budget rejection: err=%v", err)
	}
	g.Open()
}

// TestAdmissionQueueDepth: a workload too large to ever finish dispatching
// (worker gated) keeps the queue occupied, and the backlog bound rejects
// the next submission.
func TestAdmissionQueueDepth(t *testing.T) {
	g := newGate()
	eng := engine.New(engine.Options{
		Workers:   1,
		Backend:   g,
		Admission: engine.Admission{MaxQueueDepth: 1},
	})
	defer eng.Close()
	defer g.Open()

	// 1 worker + 4 task-channel slots: a 16-check batch can never fully
	// dispatch while the gate is closed, so it stays queued.
	prop, checks := manyChecks(100, 16)
	j1, err := eng.Submit(context.Background(), engine.Workload{Kind: engine.KindChecks, Property: prop, Checks: checks})
	if err != nil {
		t.Fatalf("first workload rejected: %v", err)
	}
	_, err = eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(1)})
	var adm *engine.ErrAdmission
	if !errors.As(err, &adm) || adm.Reason != "queue depth" {
		t.Fatalf("backlog rejection: err=%v", err)
	}
	g.Open()
	j1.Wait()
}

// TestReservationAdmitsWholeUnit: Reserve admits a multi-workload unit up
// front; workloads under the reservation bypass per-workload admission, and
// Release returns the capacity.
func TestReservationAdmitsWholeUnit(t *testing.T) {
	eng := engine.New(engine.Options{
		Workers:   2,
		Admission: engine.Admission{MaxInFlightChecks: 10},
	})
	defer eng.Close()

	resv, err := eng.Reserve("acme", 10)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if _, err := eng.Reserve("acme", 1); err == nil {
		t.Fatal("second Reserve fit inside a full budget")
	}
	// Workloads under the reservation are admitted even though the budget
	// is fully held (their cost is the reservation's).
	j, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(1), Tenant: "acme", Reservation: resv})
	if err != nil {
		t.Fatalf("reserved workload rejected: %v", err)
	}
	// The reservation's tenant is binding.
	if _, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(2), Tenant: "other", Reservation: resv}); err == nil {
		t.Fatal("reservation accepted a foreign tenant's workload")
	}
	j.Wait()
	resv.Release()
	resv.Release() // idempotent
	if _, err := eng.Reserve("acme", 10); err != nil {
		t.Fatalf("Reserve after Release: %v", err)
	}
	if err := eng.AdmitProbe("acme", 1); err == nil {
		t.Fatal("AdmitProbe fit inside a full budget")
	}
}

// recordingGate additionally records the order in which filter checks reach
// the (single) worker — with one worker that is exactly the fair
// dispatcher's dequeue order. Checks are attributed to tenants via the
// route-map name tinyProblem embeds.
type recordingGate struct {
	gate
	mu    sync.Mutex
	order []string
}

func (g *recordingGate) Solve(ctx context.Context, ob *core.Obligation, b solver.Budget) solver.Outcome {
	if m := ob.RouteMap(); m != nil {
		g.mu.Lock()
		g.order = append(g.order, m.Name)
		g.mu.Unlock()
	}
	return g.gate.Solve(ctx, ob, b)
}

// TestWeightedFairDequeueAcrossTenants is the starvation invariant: tenant
// A floods the engine first, tenant B arrives second, and the deficit
// round-robin dispatcher must interleave their dequeues — B's checks are
// dispatched throughout the run instead of after all of A's (which is what
// the old global FIFO did).
func TestWeightedFairDequeueAcrossTenants(t *testing.T) {
	const perTenant = 24
	g := &recordingGate{gate: *newGate()}
	eng := engine.New(engine.Options{Workers: 1, Backend: g})
	defer eng.Close()
	defer g.Open()

	var jobs []*engine.Job
	submit := func(tenant string, base int) {
		for i := 0; i < perTenant; i++ {
			j, err := eng.Submit(context.Background(), engine.Workload{
				Safety: tinyProblem(base + i), // route maps imp-<base+i> tag the tenant
				Tenant: tenant,
			})
			if err != nil {
				t.Fatalf("submit %s/%d: %v", tenant, i, err)
			}
			jobs = append(jobs, j)
		}
	}
	submit("a", 0)   // the flood arrives first (base 0..23)…
	submit("b", 500) // …then the second tenant (base 500..523)
	g.Open()
	for _, j := range jobs {
		if rep := j.Wait(); !rep.OK() {
			t.Fatalf("job for tenant %s failed:\n%s", j.Tenant, rep.Summary())
		}
	}

	g.mu.Lock()
	order := append([]string(nil), g.order...)
	g.mu.Unlock()
	if len(order) != 2*perTenant {
		t.Fatalf("recorded %d filter-check dispatches, want %d", len(order), 2*perTenant)
	}
	rankSum := map[string]int{}
	count := map[string]int{}
	firstB := -1
	for i, name := range order {
		tenant := "a"
		var id int
		fmt.Sscanf(name, "imp-%d", &id)
		if id >= 500 {
			tenant = "b"
		}
		rankSum[tenant] += i
		count[tenant]++
		if tenant == "b" && firstB < 0 {
			firstB = i
		}
	}
	if count["a"] != perTenant || count["b"] != perTenant {
		t.Fatalf("per-tenant dispatch counts: %v", count)
	}
	meanB := float64(rankSum["b"]) / perTenant / float64(len(order))
	// Global FIFO would dispatch every B check after every A check: mean
	// rank near 0.75, first B dispatch at rank 24. Fair interleaving keeps
	// B's mean near 0.5 and its first dispatch early.
	if meanB > 0.65 {
		t.Errorf("tenant b starved: mean dispatch rank %.2f (FIFO = 0.75, fair = 0.5)\norder: %v", meanB, order)
	}
	if firstB > len(order)/2 {
		t.Errorf("tenant b's first dispatch at rank %d of %d; expected interleaving", firstB, len(order))
	}

	// Jobs carried their admission identity and the engine accounted both
	// tenants; at least the gated head-of-line jobs recorded queue waits.
	st := eng.Stats()
	if st.Tenants["a"].Admitted != perTenant || st.Tenants["b"].Admitted != perTenant {
		t.Fatalf("tenant stats: %+v", st.Tenants)
	}
	waited := 0
	for _, j := range jobs {
		js := j.Stats()
		if js.Tenant != j.Tenant || js.Cost == 0 {
			t.Fatalf("job stats missing admission identity: %+v", js)
		}
		if js.QueueWaitNanos > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Error("no job recorded a queue wait behind the gated worker")
	}
}

// TestPriorityOrdersWithinTenant: a high-priority workload submitted after
// a backlog of equal-tenant work overtakes it (priority is intra-tenant
// ordering, not cross-tenant preemption). The assertion is on solve order —
// with one worker that is exactly the dispatcher's dequeue order — not on
// job completion order: all three jobs finish within microseconds of each
// other once the gate opens, so the order in which their waiters observe
// completion is scheduler noise, but the order their unique filter checks
// reach the backend is the scheduling decision under test.
func TestPriorityOrdersWithinTenant(t *testing.T) {
	g := &recordingGate{gate: *newGate()}
	eng := engine.New(engine.Options{Workers: 1, Backend: g})
	defer eng.Close()
	defer g.Open()

	// Occupy the dispatcher's head-of-line slots with one big batch, then
	// queue normal and priority jobs behind it. Whether or not the
	// dispatcher has started on the batch when they arrive, the priority
	// insert must place urgent's checks ahead of normal's.
	prop, checks := manyChecks(100, 16)
	head, err := eng.Submit(context.Background(), engine.Workload{Kind: engine.KindChecks, Property: prop, Checks: checks})
	if err != nil {
		t.Fatal(err)
	}
	var normal, urgent *engine.Job
	if normal, err = eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(1)}); err != nil {
		t.Fatal(err)
	}
	if urgent, err = eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(2), Priority: 5}); err != nil {
		t.Fatal(err)
	}
	g.Open()
	for _, j := range []*engine.Job{head, normal, urgent} {
		if rep := j.Wait(); !rep.OK() {
			t.Fatalf("job failed:\n%s", rep.Summary())
		}
	}

	g.mu.Lock()
	order := append([]string(nil), g.order...)
	g.mu.Unlock()
	pos := func(name string) int {
		for i, n := range order {
			if n == name {
				return i
			}
		}
		return -1
	}
	urgentAt, normalAt := pos("imp-2"), pos("imp-1")
	if urgentAt < 0 || normalAt < 0 {
		t.Fatalf("filter checks not solved: order %v", order)
	}
	if urgentAt > normalAt {
		t.Fatalf("urgent's check solved after normal's: order %v", order)
	}
}

// TestTenantMapBounded: client-chosen tenant names cannot grow the
// per-tenant accounting map without bound — idle tenants are evicted when
// new registrations would exceed the cap, while tenants with live work
// survive.
func TestTenantMapBounded(t *testing.T) {
	g := newGate()
	eng := engine.New(engine.Options{Workers: 1, Backend: g})
	defer eng.Close()
	defer g.Open()

	// A tenant with in-flight work must survive any churn below.
	if _, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(1), Tenant: "pinned"}); err != nil {
		t.Fatal(err)
	}
	// Churn far past the bound with probe-only traffic (the cheap spam an
	// unauthenticated X-Tenant header allows).
	for i := 0; i < 3000; i++ {
		if err := eng.AdmitProbe(fmt.Sprintf("spam-%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if len(st.Tenants) > 1100 {
		t.Fatalf("tenant map unbounded: %d entries", len(st.Tenants))
	}
	if _, ok := st.Tenants["pinned"]; !ok {
		t.Fatal("tenant with in-flight work was evicted")
	}
	g.Open()
}
