// Package engine is the shared execution substrate for Lightyear
// verification: one process-wide bounded worker pool that schedules the
// local checks of all submitted verification workloads, deduplicates
// identical checks across concurrent jobs (singleflight), and serves
// repeated checks from a capacity-bounded LRU result cache.
//
// The design exploits the paper's §2 observation that local checks are
// independent and trivially parallelizable, and goes one step further:
// because checks are keyed by their semantic content (core.Check.Key), a
// WAN property sweep that re-issues byte-identical filter checks for every
// router × property pair solves each distinct formula exactly once, no
// matter how many jobs reference it.
//
// The pipeline per admitted check is
//
//	admission → per-tenant fair queue → LRU cache probe → in-flight dedup →
//	solver → cache fill → report
//
// Submission is one typed entry point: build a Workload — a safety or
// liveness problem, or a raw check batch, plus the submitting Tenant, a
// Priority, and an admission Cost — and call Submit. Options.Admission
// bounds how much work may be in flight (globally and per tenant) and how
// deep the backlog may grow; over-limit submissions are shed *before*
// entering the shared queue with a typed ErrAdmission carrying a
// RetryAfter hint, and admitted workloads are dispatched weighted-fair
// across tenants so a flooding tenant cannot starve the others. Reserve
// admits a multi-job unit (a compiled plan) as a whole. RunChecks makes
// the engine a core.CheckRunner so core.IncrementalVerifier can run on it.
package engine

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/logging"
	"lightyear/internal/solver"
	"lightyear/internal/telemetry"
)

// DefaultCacheSize is the LRU result-cache capacity used when
// Options.CacheSize is zero.
const DefaultCacheSize = 1 << 16

// Default slow-check thresholds (SlowCheckPolicy zero values). A check
// burning 10k conflicts or 2s of wall clock is far outside Lightyear's
// modular fast path and worth a structured explanation in the log.
const (
	DefaultSlowCheckConflicts int64 = 10000
	DefaultSlowCheckTime            = 2 * time.Second
)

// SlowCheckPolicy decides which executed checks get a structured log line
// carrying their full solve provenance (conflicts, decisions, restarts,
// encoding size). Unknown results are always logged — an undecided check is
// precisely the event an operator must be able to explain. Zero fields
// select the defaults; negative fields disable that threshold.
type SlowCheckPolicy struct {
	// Conflicts logs any check whose CDCL search hit at least this many
	// conflicts. 0 means DefaultSlowCheckConflicts; < 0 disables.
	Conflicts int64
	// SolveTime logs any check that spent at least this long in the solver.
	// 0 means DefaultSlowCheckTime; < 0 disables.
	SolveTime time.Duration
}

func (p SlowCheckPolicy) conflicts() int64 {
	if p.Conflicts == 0 {
		return DefaultSlowCheckConflicts
	}
	return p.Conflicts
}

func (p SlowCheckPolicy) solveTime() time.Duration {
	if p.SolveTime == 0 {
		return DefaultSlowCheckTime
	}
	return p.SolveTime
}

// Options configures an Engine.
type Options struct {
	// Workers is the size of the worker pool shared by all jobs;
	// 0 means GOMAXPROCS.
	Workers int
	// CacheSize bounds the LRU result cache (number of cached check
	// results). 0 means DefaultCacheSize; negative disables caching
	// entirely (in-flight dedup still applies). Ignored when Cache is set.
	CacheSize int
	// Cache, when non-nil, replaces the built-in LRU with a custom
	// ResultCache — e.g. an internal/store disk-persistent store, so
	// results survive process restarts. The engine does not close or
	// flush a custom cache; its owner does.
	Cache ResultCache
	// ConflictBudget bounds SAT effort per check when the engine generates
	// checks from a problem; 0 means unlimited.
	ConflictBudget int64
	// Backend is the default solver backend obligations are routed to;
	// nil means solver.Native. Jobs may override it per submission
	// (Workload.SubmitOptions.Backend).
	Backend solver.Backend
	// Admission is the load-shedding policy applied at Submit/Reserve; the
	// zero value admits everything.
	Admission Admission
	// Telemetry, when non-nil, receives the engine's metrics (counters,
	// latency histograms, scheduler gauges) and per-workload traces. Nil
	// disables all emission at zero cost on the hot paths.
	Telemetry *telemetry.Recorder
	// Logger, when non-nil, receives the engine's structured log events —
	// most importantly the slow/Unknown-check lines carrying full solve
	// provenance. Nil disables logging.
	Logger *slog.Logger
	// SlowCheck tunes which checks earn a provenance log line; the zero
	// value applies the package defaults.
	SlowCheck SlowCheckPolicy
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BackendStats aggregates the work one solver backend performed: how many
// obligations it decided, how many it left Unknown, portfolio racing and
// tiered escalation volume, and time inside the solver.
type BackendStats struct {
	Solved     uint64 `json:"solved"`              // obligations routed to this backend
	Unknown    uint64 `json:"unknown,omitempty"`   // of those, left undecided
	Raced      uint64 `json:"raced,omitempty"`     // solver variants raced (portfolio)
	Escalated  uint64 `json:"escalated,omitempty"` // quick-tier escalations (tiered)
	SolveNanos int64  `json:"solve_ns"`            // summed solver time
	// Solver sums the CDCL search provenance (conflicts, decisions,
	// propagations, restarts, learned clauses) across this backend's solves
	// — the depth dimension behind SolveNanos.
	Solver core.SolveStats `json:"solver"`
}

func (b *BackendStats) add(out solver.Outcome) {
	b.Solved++
	if out.Status == core.StatusUnknown {
		b.Unknown++
	}
	b.Raced += uint64(out.Raced)
	if out.Escalated {
		b.Escalated++
	}
	b.SolveNanos += out.SolveTime.Nanoseconds()
	b.Solver.Add(out.Solver)
}

// Stats is a snapshot of engine counters.
type Stats struct {
	JobsSubmitted   uint64 `json:"jobs_submitted"`
	JobsCompleted   uint64 `json:"jobs_completed"`
	ChecksSubmitted uint64 `json:"checks_submitted"` // checks enqueued across all jobs
	ChecksSolved    uint64 `json:"checks_solved"`    // checks actually executed
	CacheHits       uint64 `json:"cache_hits"`       // results served from the LRU cache
	DedupHits       uint64 `json:"dedup_hits"`       // results shared via in-flight dedup
	CacheLen        int    `json:"cache_len"`
	CacheCap        int    `json:"cache_cap"`
	// QueuedWorkloads counts admitted workloads awaiting dispatch;
	// InFlightCost is the admitted cost (checks) not yet released.
	QueuedWorkloads int `json:"queued_workloads,omitempty"`
	InFlightCost    int `json:"in_flight_cost,omitempty"`
	// Backends breaks ChecksSolved down by the solver backend that executed
	// them, keyed by backend name.
	Backends map[string]BackendStats `json:"backends,omitempty"`
	// Tenants is the per-tenant admission accounting (admitted, rejected,
	// completed, queued workloads, in-flight cost), keyed by tenant. The
	// map is bounded: under heavy tenant-name churn, fully idle tenants are
	// evicted — counters included — to keep client-chosen names from
	// growing it without limit.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// Engine schedules verification checks on a bounded worker pool with a
// shared result cache. It is safe for concurrent use; create one per
// process and submit all tenants' workloads to it.
type Engine struct {
	opts    Options
	tasks   chan task
	cache   ResultCache    // nil when caching is disabled
	backend solver.Backend // default backend (Options.Backend or native)

	workers sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*flight

	sched sched // admission + weighted-fair dispatch state (own mutex)

	met *engineMetrics // pre-resolved telemetry handles; emission is nil-safe

	log           *slog.Logger // nil disables logging
	slowConflicts int64        // resolved SlowCheckPolicy thresholds
	slowSolve     time.Duration

	statsMu      sync.Mutex
	backendStats map[string]BackendStats

	nextID          atomic.Uint64
	jobsSubmitted   atomic.Uint64
	jobsCompleted   atomic.Uint64
	checksSubmitted atomic.Uint64
	checksSolved    atomic.Uint64
	cacheHits       atomic.Uint64
	dedupHits       atomic.Uint64
	solveNanos      atomic.Int64
}

// task is one check of one job, scheduled on the pool.
type task struct {
	job   *Job
	idx   int
	check core.Check
}

// flight tracks an in-progress solve of one check key; identical tasks
// arriving while it runs attach as waiters and share the result.
type flight struct {
	waiters []task
}

// New starts an engine with its worker pool and dispatcher.
func New(opts Options) *Engine {
	e := &Engine{
		opts:         opts,
		tasks:        make(chan task, 4*opts.workers()),
		inflight:     make(map[string]*flight),
		backend:      opts.Backend,
		backendStats: make(map[string]BackendStats),
	}
	e.log = logging.Component(opts.Logger, "engine")
	e.slowConflicts = opts.SlowCheck.conflicts()
	e.slowSolve = opts.SlowCheck.solveTime()
	if e.backend == nil {
		e.backend = solver.Native(0)
	}
	switch {
	case opts.Cache != nil:
		e.cache = opts.Cache
	case opts.CacheSize >= 0:
		size := opts.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newLRUCache(size)
	}
	e.sched.tenants = make(map[string]*tenantQueue)
	e.sched.cond = sync.NewCond(&e.sched.mu)
	e.sched.done = make(chan struct{})
	e.met = newEngineMetrics(opts.Telemetry, e)
	go e.dispatch()
	for i := 0; i < opts.workers(); i++ {
		e.workers.Add(1)
		go func() {
			defer e.workers.Done()
			for t := range e.tasks {
				e.execute(t)
			}
		}()
	}
	return e
}

// Close drains queued work and stops the dispatcher and workers. Jobs
// admitted before Close still complete; submitting after Close panics.
func (e *Engine) Close() {
	s := &e.sched
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done // dispatcher drains every queued workload, then exits
	close(e.tasks)
	e.workers.Wait()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		JobsSubmitted:   e.jobsSubmitted.Load(),
		JobsCompleted:   e.jobsCompleted.Load(),
		ChecksSubmitted: e.checksSubmitted.Load(),
		ChecksSolved:    e.checksSolved.Load(),
		CacheHits:       e.cacheHits.Load(),
		DedupHits:       e.dedupHits.Load(),
	}
	if e.cache != nil {
		s.CacheLen, s.CacheCap = e.cache.Len(), cacheCap(e.cache)
	}
	e.statsMu.Lock()
	if len(e.backendStats) > 0 {
		s.Backends = make(map[string]BackendStats, len(e.backendStats))
		for name, bs := range e.backendStats {
			s.Backends[name] = bs
		}
	}
	e.statsMu.Unlock()
	sc := &e.sched
	sc.mu.Lock()
	s.QueuedWorkloads = sc.queued
	s.InFlightCost = sc.inflight
	if len(sc.tenants) > 0 {
		s.Tenants = make(map[string]TenantStats, len(sc.tenants))
		for name, tq := range sc.tenants {
			s.Tenants[name] = TenantStats{
				Admitted:     tq.admitted,
				Rejected:     tq.rejected,
				Completed:    tq.completed,
				Queued:       len(tq.entries),
				InFlightCost: tq.inflight,
			}
		}
	}
	sc.mu.Unlock()
	return s
}

// Cache returns the engine's result cache, nil when caching is disabled —
// owners of a custom cache (e.g. lyserve's persistent store) use it to
// reach their implementation for stats.
func (e *Engine) Cache() ResultCache { return e.cache }

// checkOptions are the options used when generating checks from a problem.
func (e *Engine) checkOptions() core.Options {
	return core.Options{ConflictBudget: e.opts.ConflictBudget}
}

// effectiveBudget resolves a check's conflict budget: its generation-time
// budget when it has one (raw-submitted batches keep their producer's
// bound), falling back to the engine's.
func (e *Engine) effectiveBudget(c core.Check) int64 {
	if b := c.Budget(); b != 0 {
		return b
	}
	return e.opts.ConflictBudget
}

// SubmitOptions are per-job execution overrides, embedded in Workload.
type SubmitOptions struct {
	// Backend routes this job's obligations to a specific solver backend
	// instead of the engine default — the hook plan requests use to select
	// portfolio or tiered solving per request on a shared engine.
	Backend solver.Backend
}

// Submit is the engine's single submission entry point: it validates the
// workload, generates its checks (for problem payloads), admits it against
// Options.Admission — returning a typed *ErrAdmission when the tenant's
// quota, the engine's in-flight budget, or the queue depth refuses it —
// and enqueues it for weighted-fair dispatch, returning the running job
// immediately. ctx is attached to the job's solves: cancelling it makes
// remaining checks finish as Unknown (never cached) instead of burning
// solver budget. Submitting after Close panics.
func (e *Engine) Submit(ctx context.Context, w Workload) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prop, checks, err := w.resolve(e.checkOptions())
	if err != nil {
		return nil, err
	}
	backend := w.Backend
	if backend == nil {
		backend = e.backend
	}
	tenant := NormalizeTenant(w.Tenant)
	cost := w.Cost
	if cost < 0 {
		// A negative cost would *credit* the quota accounting and disable
		// load shedding for everyone sharing the engine.
		return nil, fmt.Errorf("engine: workload cost must be >= 0, got %d", cost)
	}
	if cost == 0 {
		cost = len(checks)
	}
	if w.Reservation != nil && w.Reservation.tenant != tenant {
		return nil, fmt.Errorf("engine: workload tenant %q does not match reservation tenant %q",
			tenant, w.Reservation.tenant)
	}

	s := &e.sched
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("engine: submit after Close")
	}
	tq := s.tenant(tenant, e.opts.Admission)
	if err := e.admitLocked(tq, cost, w.Reservation); err != nil {
		s.mu.Unlock()
		if ea, ok := err.(*ErrAdmission); ok {
			e.met.rejected(ea.Tenant, ea.Reason)
		}
		return nil, err
	}
	j := newJob(e, e.nextID.Add(1), ctx, prop, checks, backend, tenant, w.Priority, cost, w.Reservation)
	j.startJobTelemetry(w.TraceSpan)
	e.jobsSubmitted.Add(1)
	e.met.jobsSubmitted.Inc()
	e.checksSubmitted.Add(uint64(len(checks)))
	e.met.checksSubmitted.Add(uint64(len(checks)))
	if len(checks) == 0 {
		s.mu.Unlock()
		j.finish()
		return j, nil
	}
	s.enqueueLocked(tq, &dispatchEntry{job: j, checks: checks, priority: w.Priority})
	s.mu.Unlock()
	return j, nil
}

// mustSubmit backs the deprecated shims, whose signatures predate
// admission control: they panic on rejection, so they must only be used on
// engines without admission limits.
func (e *Engine) mustSubmit(w Workload) *Job {
	j, err := e.Submit(context.Background(), w)
	if err != nil {
		panic(fmt.Sprintf("engine: legacy submit failed: %v (use Submit on engines with admission control)", err))
	}
	return j
}

// RunChecks implements core.CheckRunner, letting a core.IncrementalVerifier
// (or any other producer of raw checks) execute on the shared pool and
// benefit from the process-wide cache. The batch runs as the default tenant;
// the CheckRunner seam predates admission control and panics on rejection.
func (e *Engine) RunChecks(prop core.Property, checks []core.Check) *core.Report {
	return e.mustSubmit(Workload{Kind: KindChecks, Property: prop, Checks: checks}).Wait()
}

// CheckOptions returns the core.Options the engine uses when generating
// checks from a problem, so external check producers (internal/delta,
// internal/plan) enumerate exactly the same checks a problem Workload
// would.
func (e *Engine) CheckOptions() core.Options {
	return e.checkOptions()
}

// execute runs one scheduled task through the cache → dedup → solve
// pipeline.
func (e *Engine) execute(t task) {
	key := t.check.Key()
	if key == "" {
		// Uncacheable check: always solve.
		out := e.solve(t)
		t.job.deliver(t.idx, out.CheckResult, false, false, &out)
		return
	}
	if e.cache != nil {
		if r, ok := e.cache.Get(key); ok {
			e.cacheHits.Add(1)
			e.met.cacheHit.Inc()
			t.job.deliver(t.idx, adapt(r, t.check), true, false, nil)
			return
		}
	}
	e.mu.Lock()
	if f, ok := e.inflight[key]; ok {
		// An identical check is being solved right now: wait for its
		// result instead of occupying a worker.
		f.waiters = append(f.waiters, t)
		e.mu.Unlock()
		return
	}
	// Re-probe the cache under the lock: a flight for this key may have
	// filled the cache and retired between the lock-free probe above and
	// acquiring e.mu, and solving again here would be redundant.
	if e.cache != nil {
		if r, ok := e.cache.Get(key); ok {
			e.mu.Unlock()
			e.cacheHits.Add(1)
			e.met.cacheHit.Inc()
			t.job.deliver(t.idx, adapt(r, t.check), true, false, nil)
			return
		}
	}
	f := &flight{}
	e.inflight[key] = f
	e.mu.Unlock()

	out := e.solve(t)
	r := out.CheckResult
	if e.cache != nil && r.Status != core.StatusUnknown {
		// Fill the cache before retiring the flight so a concurrent
		// identical task either joins the flight or hits the cache.
		// Unknown is not a verdict, so it is never cached: a later job with
		// a bigger budget (or a stronger backend) must get to re-solve.
		e.cache.Add(key, r)
	}
	e.mu.Lock()
	delete(e.inflight, key)
	waiters := f.waiters
	f.waiters = nil
	e.mu.Unlock()

	t.job.deliver(t.idx, r, false, false, &out)
	e.deliverWaiters(key, r, t, waiters)
}

// deliverWaiters hands a completed solve's result to the tasks that
// coalesced onto its flight. A decided result is shared with everyone. An
// Unknown is not a verdict: it is shared only with waiters whose solve
// would be configured identically — same backend configuration AND same
// effective conflict budget (the budget lives on the check, not the
// backend), AND only when the solve ran under a live context — since only
// then would an identical attempt reproduce the give-up. An Unknown caused
// by the solving job's cancelled submission context says nothing about the
// formula, so waiters from live jobs always re-solve it. Re-solves happen
// once per distinct configuration, with the first decided re-solve cached
// and shared with every remaining waiter.
func (e *Engine) deliverWaiters(key string, r core.CheckResult, t task, waiters []task) {
	// Outcomes of re-solves so far: the first decided one, plus per-config
	// Unknowns so identically-configured waiters do not repeat a failed
	// attempt.
	var decided *core.CheckResult
	type gaveUp struct {
		backend solver.Backend
		budget  int64
		result  core.CheckResult
	}
	var unknowns []gaveUp
	sameSolve := func(b solver.Backend, budget int64, w task) bool {
		return e.effectiveBudget(w.check) == budget && solver.SameConfig(w.job.backend, b)
	}
	for _, w := range waiters {
		if r.Status != core.StatusUnknown || decided != nil {
			shared := r
			if decided != nil {
				shared = *decided
			}
			e.dedupHits.Add(1)
			e.met.dedupHit.Inc()
			w.job.deliver(w.idx, adapt(shared, w.check), false, true, nil)
			continue
		}
		if t.job.ctx.Err() == nil && sameSolve(t.job.backend, e.effectiveBudget(t.check), w) {
			e.dedupHits.Add(1)
			e.met.dedupHit.Inc()
			w.job.deliver(w.idx, adapt(r, w.check), false, true, nil)
			continue
		}
		prior := -1
		for i := range unknowns {
			if sameSolve(unknowns[i].backend, unknowns[i].budget, w) {
				prior = i
				break
			}
		}
		if prior >= 0 {
			e.dedupHits.Add(1)
			e.met.dedupHit.Inc()
			w.job.deliver(w.idx, adapt(unknowns[prior].result, w.check), false, true, nil)
			continue
		}
		wout := e.solve(w)
		if wout.Status != core.StatusUnknown {
			if e.cache != nil {
				e.cache.Add(key, wout.CheckResult)
			}
			decided = &wout.CheckResult
		} else if w.job.ctx.Err() == nil {
			// Only a live job's give-up is representative of the
			// configuration; a cancelled job's Unknown is not replayed to
			// later waiters.
			unknowns = append(unknowns, gaveUp{
				backend: w.job.backend,
				budget:  e.effectiveBudget(w.check),
				result:  wout.CheckResult,
			})
		}
		w.job.deliver(w.idx, wout.CheckResult, false, false, &wout)
	}
}

// solve routes one task's obligation to its job's solver backend and
// records per-backend accounting. Results are stamped with the running
// check's identity (relabeled checks share obligations with rewritten
// identities, and the backend reports the obligation's own). The conflict
// budget is the check's own generation-time budget when it has one —
// checks the engine generated itself carry the engine's budget, and
// raw-submitted batches (KindChecks workloads, core.NewIncrementalVerifierOn)
// keep the budget their producer chose — falling back to the engine's. The
// solve runs under the job's submission context, so cancelling it turns
// the job's remaining checks into Unknowns.
func (e *Engine) solve(t task) solver.Outcome {
	e.checksSolved.Add(1)
	backend := t.job.backend
	span := t.job.ensureSolveSpan(backend.Name())
	t0 := time.Now()
	// The solve span rides the context so distributed backends (the fabric's
	// rpc leg) can hang child spans off the job's trace.
	out := backend.Solve(telemetry.WithSpan(t.job.ctx, span), t.check.Obligation(), solver.Budget{Conflicts: e.effectiveBudget(t.check)})
	if out.TotalTime == 0 {
		out.TotalTime = time.Since(t0)
	}
	out.Kind, out.Loc, out.Desc = t.check.Kind, t.check.Loc, t.check.Desc
	e.solveNanos.Add(out.SolveTime.Nanoseconds())

	e.statsMu.Lock()
	bs := e.backendStats[backend.Name()]
	bs.add(out)
	e.backendStats[backend.Name()] = bs
	e.statsMu.Unlock()
	e.met.solveDone(backend.Name(), out)
	e.logSlowCheck(t, out)
	return out
}

// logSlowCheck emits the structured provenance line for checks that were
// slow, search-heavy, or undecided. Unknowns always log (at warn); slow but
// decided checks log at info. The line carries the identical counters the
// check's CheckResult, the solve span's attrs, and /v1/status report, so an
// operator can pivot between the three by job and check identity.
func (e *Engine) logSlowCheck(t task, out solver.Outcome) {
	if e.log == nil {
		return
	}
	unknown := out.Status == core.StatusUnknown
	slow := (e.slowConflicts > 0 && out.Solver.Conflicts >= e.slowConflicts) ||
		(e.slowSolve > 0 && out.SolveTime >= e.slowSolve)
	if !unknown && !slow {
		return
	}
	msg, level := "slow check", slog.LevelInfo
	if unknown {
		msg, level = "check undecided", slog.LevelWarn
	}
	e.log.LogAttrs(t.job.ctx, level, msg,
		slog.Uint64(logging.KeyJob, t.job.ID),
		slog.String(logging.KeyTenant, t.job.Tenant),
		slog.String(logging.KeyTraceID, t.job.TraceID()),
		slog.String("backend", out.Backend),
		slog.String("kind", t.check.Kind.String()),
		slog.String("loc", t.check.Loc.String()),
		slog.String("desc", t.check.Desc),
		slog.String("status", out.Status.String()),
		slog.Int64("conflicts", out.Solver.Conflicts),
		slog.Int64("decisions", out.Solver.Decisions),
		slog.Int64("propagations", out.Solver.Propagations),
		slog.Int64("restarts", out.Solver.Restarts),
		slog.Int64("learned", out.Solver.Learned),
		slog.Int("vars", out.NumVars),
		slog.Int("clauses", out.NumCons),
		slog.Int("terms", out.NumTerms),
		slog.Duration("solve_time", out.SolveTime),
	)
}

// Live reports whether the engine's dispatcher is still accepting and
// draining work — false once Close has begun. Readiness probes use it.
func (e *Engine) Live() bool {
	e.sched.mu.Lock()
	defer e.sched.mu.Unlock()
	return !e.sched.closed
}

// QueueSaturation reports the admitted-workload backlog against the
// admission queue-depth limit (limit 0 = unbounded). Readiness probes call
// the engine not-ready when queued == limit: every further submission is
// being shed at the door.
func (e *Engine) QueueSaturation() (queued, limit int) {
	e.sched.mu.Lock()
	defer e.sched.mu.Unlock()
	return e.sched.queued, e.opts.Admission.MaxQueueDepth
}

// adapt relabels a shared result with the identity of the receiving check.
// Checks with equal keys decide the same formula, so verdict, witness, and
// formula statistics carry over; Kind/Loc/Desc are per-check presentation.
func adapt(r core.CheckResult, c core.Check) core.CheckResult {
	r.Kind, r.Loc, r.Desc = c.Kind, c.Loc, c.Desc
	return r
}

var _ core.CheckRunner = (*Engine)(nil)

// String renders a one-line summary of the engine configuration.
func (e *Engine) String() string {
	cap := -1
	if e.cache != nil {
		cap = cacheCap(e.cache)
	}
	return fmt.Sprintf("engine(workers=%d, cache=%d)", e.opts.workers(), cap)
}

// cacheCap reports a cache's capacity bound, or -1 for unbounded caches
// (custom ResultCache implementations without a Cap method).
func cacheCap(c ResultCache) int {
	if b, ok := c.(interface{ Cap() int }); ok {
		return b.Cap()
	}
	return -1
}
