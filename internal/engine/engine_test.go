package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/topology"
)

// mustSubmit submits a workload through the unified entry point, failing
// the test on rejection.
func mustSubmit(t *testing.T, eng *engine.Engine, w engine.Workload) *engine.Job {
	t.Helper()
	j, err := eng.Submit(context.Background(), w)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return j
}

// testWAN returns a small WAN and an overlapping peering workload: several
// properties checked at every router, the shape of the §6.1 sweep.
func testWAN(t *testing.T) (*topology.Network, []*core.SafetyProblem) {
	t.Helper()
	p := netgen.WANParams{Regions: 3, RoutersPerRegion: 2, EdgeRouters: 2, DCsPerRegion: 1, PeersPerEdge: 2}
	n := netgen.WAN(p, netgen.WANBugs{})
	var problems []*core.SafetyProblem
	for _, prop := range netgen.PeeringProperties(p.Regions)[:3] {
		for _, r := range n.Routers() {
			problems = append(problems, netgen.PeeringProblem(n, r, prop))
		}
	}
	return n, problems
}

// signature reduces a report to its semantic content (identity and verdict
// of every check, in deterministic order), ignoring timing.
func signature(rep *core.Report) []string {
	var out []string
	for _, r := range rep.Results {
		out = append(out, fmt.Sprintf("%s|%s|%s|%v", r.Kind, r.Loc, r.Desc, r.OK))
	}
	return out
}

// TestEngineMatchesSequentialBaseline submits overlapping WAN peering jobs
// concurrently and asserts (a) every per-job report is semantically equal
// to the sequential single-worker baseline, and (b) identical checks across
// jobs are solved exactly once (the rest served by cache or in-flight
// dedup).
func TestEngineMatchesSequentialBaseline(t *testing.T) {
	_, problems := testWAN(t)

	// Sequential baseline: fresh single-worker run per problem, no sharing.
	baselines := make([][]string, len(problems))
	for i, p := range problems {
		baselines[i] = signature(core.VerifySafety(p, core.Options{Workers: 1}))
	}

	// The number of distinct check keys across the whole workload.
	unique := make(map[string]bool)
	total := 0
	for _, p := range problems {
		for _, c := range p.Checks(core.Options{}) {
			total++
			if k := c.Key(); k != "" {
				unique[k] = true
			}
		}
	}
	if len(unique) >= total {
		t.Fatalf("workload has no duplicate checks (unique=%d total=%d); test needs overlap", len(unique), total)
	}

	eng := engine.New(engine.Options{Workers: 8})
	defer eng.Close()

	// Submit every job concurrently to exercise in-flight dedup.
	jobs := make([]*engine.Job, len(problems))
	var wg sync.WaitGroup
	for i, p := range problems {
		wg.Add(1)
		go func(i int, p *core.SafetyProblem) {
			defer wg.Done()
			j, err := eng.Submit(context.Background(), engine.Workload{Safety: p})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			jobs[i] = j
		}(i, p)
	}
	wg.Wait()

	for i, j := range jobs {
		rep := j.Wait()
		if !rep.OK() {
			t.Errorf("job %d: engine verdict FAIL, baseline OK:\n%s", i, rep.Summary())
		}
		got, want := signature(rep), baselines[i]
		if len(got) != len(want) {
			t.Fatalf("job %d: %d results, baseline has %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Errorf("job %d result %d:\n  engine   %s\n  baseline %s", i, k, got[k], want[k])
			}
		}
	}

	stats := eng.Stats()
	if stats.ChecksSolved != uint64(len(unique)) {
		t.Errorf("solved %d checks, want exactly one per distinct key (%d)", stats.ChecksSolved, len(unique))
	}
	if stats.CacheHits+stats.DedupHits == 0 {
		t.Error("expected nonzero cross-job cache/dedup hits")
	}
	if got := stats.ChecksSolved + stats.CacheHits + stats.DedupHits; got != stats.ChecksSubmitted {
		t.Errorf("accounting mismatch: solved+cache+dedup = %d, submitted = %d", got, stats.ChecksSubmitted)
	}
	if stats.JobsCompleted != uint64(len(problems)) {
		t.Errorf("JobsCompleted = %d, want %d", stats.JobsCompleted, len(problems))
	}
}

// TestEngineLivenessMatchesBaseline runs the Fig-1 liveness problem (which
// includes relabeled no-interference sub-checks) through the engine.
func TestEngineLivenessMatchesBaseline(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	base, err := core.VerifyLiveness(netgen.Fig1LivenessProblem(n), core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	rep := mustSubmit(t, eng, engine.Workload{Liveness: netgen.Fig1LivenessProblem(n)}).Wait()
	got, want := signature(rep), signature(base)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("engine liveness report differs from baseline:\n  engine   %v\n  baseline %v", got, want)
	}

	// An invalid path must fail fast, not enqueue.
	bad := netgen.Fig1LivenessProblem(n)
	bad.Steps = bad.Steps[:1]
	if _, err := eng.Submit(context.Background(), engine.Workload{Liveness: bad}); err == nil {
		t.Error("Submit accepted an invalid liveness path")
	}
}

// TestJobProgressStreams asserts a job emits one progress event per check,
// with monotonically complete accounting, and closes the stream.
func TestJobProgressStreams(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()

	job := mustSubmit(t, eng, engine.Workload{Safety: netgen.Fig1NoTransitProblem(n)})
	events := 0
	last := 0
	for ev := range job.Progress() {
		events++
		if ev.Total != job.NumChecks() {
			t.Errorf("event total = %d, want %d", ev.Total, job.NumChecks())
		}
		if ev.Completed <= last-1 {
			t.Errorf("non-monotonic completion: %d after %d", ev.Completed, last)
		}
		last = ev.Completed
	}
	rep := job.Wait()
	if events != rep.NumChecks() {
		t.Errorf("got %d progress events, want %d", events, rep.NumChecks())
	}
	if last != job.NumChecks() {
		t.Errorf("final completed = %d, want %d", last, job.NumChecks())
	}
	st := job.Stats()
	if st.Completed != st.Checks {
		t.Errorf("job stats completed = %d, want %d", st.Completed, st.Checks)
	}
}

// TestRepeatedJobIsAllCacheHits verifies the LRU result cache across
// non-overlapping (sequential) submissions of the same problem.
func TestRepeatedJobIsAllCacheHits(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()

	first := mustSubmit(t, eng, engine.Workload{Safety: netgen.Fig1NoTransitProblem(n)})
	first.Wait()
	second := mustSubmit(t, eng, engine.Workload{Safety: netgen.Fig1NoTransitProblem(n)})
	rep := second.Wait()

	st := second.Stats()
	if st.CacheHits != rep.NumChecks() {
		t.Errorf("second run: %d cache hits, want all %d checks", st.CacheHits, rep.NumChecks())
	}
	if !rep.OK() {
		t.Errorf("cached report must keep the verdict:\n%s", rep.Summary())
	}
}

// TestEngineDetectsBugsLikeBaseline makes sure shared results do not mask
// failures: the Fig-1 transit-tag bug must fail identically on the engine.
func TestEngineDetectsBugsLikeBaseline(t *testing.T) {
	buggy := netgen.Fig1(netgen.Fig1Options{OmitTransitTag: true})
	base := core.VerifySafety(netgen.Fig1NoTransitProblem(buggy), core.Options{Workers: 1})
	if base.OK() {
		t.Fatal("baseline must fail on the buggy network")
	}

	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	rep := mustSubmit(t, eng, engine.Workload{Safety: netgen.Fig1NoTransitProblem(buggy)}).Wait()
	if rep.OK() {
		t.Fatal("engine must reproduce the failure")
	}
	if fmt.Sprint(signature(rep)) != fmt.Sprint(signature(base)) {
		t.Errorf("failure reports differ:\n  engine   %v\n  baseline %v", signature(rep), signature(base))
	}
}

// TestIncrementalVerifierOnEngine runs core.IncrementalVerifier on the
// engine via the CheckRunner seam: warm runs reuse everything, dirty checks
// re-run on the shared pool.
func TestIncrementalVerifierOnEngine(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()

	iv := core.NewIncrementalVerifierOn(eng, p, core.Options{})
	rep1, reused1 := iv.Run()
	if !rep1.OK() || reused1 != 0 {
		t.Fatalf("cold run: OK=%v reused=%d", rep1.OK(), reused1)
	}
	rep2, reused2 := iv.Run()
	if !rep2.OK() || reused2 != rep2.NumChecks() {
		t.Fatalf("warm run: OK=%v reused=%d of %d", rep2.OK(), reused2, rep2.NumChecks())
	}

	// Dirty one policy; exactly one check re-runs, on the engine.
	n.SetImport(topology.Edge{From: "R1", To: "R3"}, &policy.RouteMap{
		Name: "r3-import-r1-v2",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.SetLocalPref{Value: 80}}, Permit: true},
		},
	})
	rep3, reused3 := iv.Run()
	if !rep3.OK() || reused3 != rep3.NumChecks()-1 {
		t.Fatalf("dirty run: OK=%v reused=%d of %d, want %d", rep3.OK(), reused3, rep3.NumChecks(), rep3.NumChecks()-1)
	}
}

// TestEngineCacheDisabled still dedups in-flight work but never serves
// results across completed jobs.
func TestEngineCacheDisabled(t *testing.T) {
	n := netgen.Fig1(netgen.Fig1Options{})
	eng := engine.New(engine.Options{Workers: 2, CacheSize: -1})
	defer eng.Close()

	mustSubmit(t, eng, engine.Workload{Safety: netgen.Fig1NoTransitProblem(n)}).Wait()
	second := mustSubmit(t, eng, engine.Workload{Safety: netgen.Fig1NoTransitProblem(n)})
	second.Wait()
	if st := second.Stats(); st.CacheHits != 0 {
		t.Errorf("cache disabled but second run had %d cache hits", st.CacheHits)
	}
	if st := eng.Stats(); st.CacheCap != 0 || st.CacheLen != 0 {
		t.Errorf("cache disabled but stats report capacity %d / len %d", st.CacheCap, st.CacheLen)
	}
}
