package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lightyear/internal/engine"
	"lightyear/internal/telemetry"
)

// TestEngineTelemetryMetrics runs real workloads through an instrumented
// engine and checks the Prometheus exposition carries the engine, solver,
// and cache series with sane values.
func TestEngineTelemetryMetrics(t *testing.T) {
	rec := telemetry.New(0)
	eng := engine.New(engine.Options{Workers: 2, Telemetry: rec})
	defer eng.Close()

	p := tinyProblem(1)
	j1, err := eng.Submit(context.Background(), engine.Workload{Safety: p})
	if err != nil {
		t.Fatal(err)
	}
	j1.Wait()
	// Same problem again: identical keys, so this round is cache hits.
	j2, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(1)})
	if err != nil {
		t.Fatal(err)
	}
	j2.Wait()

	var b strings.Builder
	if err := rec.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"lightyear_jobs_submitted_total 2",
		"lightyear_jobs_completed_total 2",
		`lightyear_checks_solved_total{backend="native",status="ok"}`,
		`lightyear_solve_seconds_bucket{backend="native",le="+Inf"}`,
		"lightyear_queue_wait_seconds_bucket",
		`lightyear_cache_hits_total{kind="cache"}`,
		"lightyear_inflight_cost 0",
		"lightyear_queued_workloads 0",
		"lightyear_cache_entries",
		"lightyear_cache_hit_ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if eng.Telemetry() != rec {
		t.Error("Telemetry() accessor does not return the recorder")
	}
}

// TestEngineOwnedTrace: a bare Submit (no caller span) gets an engine-owned
// trace whose span tree lands in the ring under the job's TraceID.
func TestEngineOwnedTrace(t *testing.T) {
	rec := telemetry.New(0)
	eng := engine.New(engine.Options{Workers: 1, Telemetry: rec})
	defer eng.Close()

	j, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(7)})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	id := j.TraceID()
	if id == "" {
		t.Fatal("engine-owned trace has no ID")
	}
	snap, ok := rec.Trace(id)
	if !ok {
		t.Fatal("completed job's trace not in ring")
	}
	names := make(map[string]bool)
	for _, s := range snap.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"queue", "dispatch", "solve:native"} {
		if !names[want] {
			t.Errorf("trace missing %q span; have %+v", want, snap.Spans)
		}
	}
}

// TestCallerSpanSuppressesEngineTrace: a workload submitted under a parent
// span nests its pipeline spans there and opens no trace of its own.
func TestCallerSpanSuppressesEngineTrace(t *testing.T) {
	rec := telemetry.New(0)
	eng := engine.New(engine.Options{Workers: 1, Telemetry: rec})
	defer eng.Close()

	tr := rec.StartTrace("host", "t1")
	parent := tr.StartSpan("problem")
	j, err := eng.Submit(context.Background(), engine.Workload{Safety: tinyProblem(8), TraceSpan: parent})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	if j.TraceID() != "" {
		t.Errorf("job under a caller span opened its own trace %q", j.TraceID())
	}
	parent.End()
	tr.Finish()
	snap, ok := rec.Trace(tr.ID())
	if !ok {
		t.Fatal("host trace not in ring")
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("host trace roots = %d, want 1", len(snap.Spans))
	}
	var solve bool
	for _, c := range snap.Spans[0].Children {
		if strings.HasPrefix(c.Name, "solve:") {
			solve = true
		}
	}
	if !solve {
		t.Errorf("engine spans not nested under caller span: %+v", snap.Spans[0].Children)
	}
}

// TestAdmissionRejectionMetric: shed workloads show up per tenant/reason.
func TestAdmissionRejectionMetric(t *testing.T) {
	rec := telemetry.New(0)
	g := newGate()
	eng := engine.New(engine.Options{
		Workers: 1, Backend: g, CacheSize: -1,
		Telemetry: rec,
		Admission: engine.Admission{PerTenantQuota: 1},
	})
	defer eng.Close()
	defer g.Open() // before Close: Close drains, and drained solves must not stay gated

	prop, checks := manyChecks(100, 1)
	if _, err := eng.Submit(context.Background(), engine.Workload{
		Kind: engine.KindChecks, Property: prop, Checks: checks[:1], Tenant: "t1",
	}); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Submit(context.Background(), engine.Workload{
		Kind: engine.KindChecks, Property: prop, Checks: checks[:1], Tenant: "t1",
	})
	var ea *engine.ErrAdmission
	if !errors.As(err, &ea) {
		t.Fatalf("second submit: %v", err)
	}
	var b strings.Builder
	if err := rec.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `lightyear_admission_rejections_total{tenant="t1",reason="tenant quota"} 1`) {
		t.Errorf("rejection series missing:\n%s", b.String())
	}
}

// TestRetryAfterQueuedAhead is the regression test for the RetryAfter
// estimate: a rejection issued while a large admitted burst is still queued
// must tell the client to wait for that backlog, not just for the marginal
// capacity deficit. Before the fix both rejections below produced the same
// clamped-minimum hint.
func TestRetryAfterQueuedAhead(t *testing.T) {
	g := newGate()
	prop, checks := manyChecks(200, 120)
	eng := engine.New(engine.Options{
		Workers: 1, Backend: g, CacheSize: -1,
		Admission: engine.Admission{MaxInFlightChecks: len(checks)},
	})
	defer eng.Close()
	defer g.Open() // before Close: Close drains, and drained solves must not stay gated

	// Rejection on an idle engine: nothing queued ahead, so the hint is the
	// clamped minimum (mean solve time defaults to 50ms with nothing solved,
	// and the deficit is 1 check).
	_, err := eng.Submit(context.Background(), engine.Workload{
		Kind: engine.KindChecks, Property: prop,
		Checks: checks[:1], Cost: len(checks) + 1, // over budget by 1
	})
	var idle *engine.ErrAdmission
	if !errors.As(err, &idle) {
		t.Fatalf("idle-engine overcommit: %v", err)
	}

	// Fill the engine: one big gated workload. Its checks are admitted at
	// once but dispatched one at a time into a small channel, so nearly all
	// of its cost is queued ahead of the next request.
	big, err := eng.Submit(context.Background(), engine.Workload{
		Kind: engine.KindChecks, Property: prop, Checks: checks,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Submit(context.Background(), engine.Workload{
		Kind: engine.KindChecks, Property: prop, Checks: checks[:1],
	})
	var loaded *engine.ErrAdmission
	if !errors.As(err, &loaded) {
		t.Fatalf("loaded-engine submit: %v", err)
	}

	// ≥ 100 checks queued behind a 1-worker pool at ≥ 50ms/check ≫ 1s; the
	// idle rejection is the 100ms clamp floor.
	if loaded.RetryAfter <= idle.RetryAfter {
		t.Errorf("RetryAfter ignores queued-ahead cost: loaded %v <= idle %v",
			loaded.RetryAfter, idle.RetryAfter)
	}
	if loaded.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s for ~%d queued checks on 1 worker",
			loaded.RetryAfter, len(checks))
	}

	g.Open()
	big.Wait()
}
