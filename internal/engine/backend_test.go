package engine_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/engine"
	"lightyear/internal/netgen"
	"lightyear/internal/solver"
)

// TestEngineBackendRoutingAndStats: jobs route to the engine-default backend
// unless a submission overrides it, and both job-level and engine-level
// per-backend accounting record the work.
func TestEngineBackendRoutingAndStats(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	n := netgen.Fig1(netgen.Fig1Options{})

	j1 := mustSubmit(t, eng, engine.Workload{Safety: netgen.StressProblem(n, 3)})
	if rep := j1.Wait(); !rep.OK() {
		t.Fatalf("native job failed:\n%s", rep.Summary())
	}
	st1 := j1.Stats()
	if st1.Backend != "native" || st1.Solved == 0 || st1.SolveNanos == 0 {
		t.Fatalf("native job stats: %+v", st1)
	}

	// A distinct problem (different pigeonhole size) so the override job is
	// not served from the cache.
	j2 := mustSubmit(t, eng, engine.Workload{Safety: netgen.StressProblem(n, 4),
		SubmitOptions: engine.SubmitOptions{Backend: solver.Portfolio(0)}})
	if rep := j2.Wait(); !rep.OK() {
		t.Fatalf("portfolio job failed:\n%s", rep.Summary())
	}
	st2 := j2.Stats()
	if st2.Backend != "portfolio" || st2.Solved == 0 || st2.Raced == 0 {
		t.Fatalf("portfolio job stats: %+v", st2)
	}

	es := eng.Stats()
	if es.Backends["native"].Solved == 0 || es.Backends["portfolio"].Solved == 0 {
		t.Fatalf("engine backend stats missing entries: %+v", es.Backends)
	}
	if es.Backends["portfolio"].Raced == 0 {
		t.Fatalf("portfolio racing not recorded: %+v", es.Backends["portfolio"])
	}
	if got := es.Backends["native"].Solved + es.Backends["portfolio"].Solved; got != es.ChecksSolved {
		t.Fatalf("backend totals %d != engine ChecksSolved %d", got, es.ChecksSolved)
	}
}

// TestUnknownResultsAreNotCached: a budget-exhausted (Unknown) check must be
// re-solved on resubmission — caching it would pin "insufficient budget" as
// the formula's verdict — while decided checks are still served from cache.
func TestUnknownResultsAreNotCached(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2, ConflictBudget: 1})
	defer eng.Close()
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 3)

	rep1 := mustSubmit(t, eng, engine.Workload{Safety: p}).Wait()
	unknown := len(rep1.Unknowns())
	if unknown == 0 {
		t.Fatal("stress problem decided under a 1-conflict budget; expected unknowns")
	}
	if rep1.OK() || len(rep1.HardFailures()) != 0 {
		t.Fatalf("unknowns must fail the report without hard failures: ok=%v fails=%d",
			rep1.OK(), len(rep1.HardFailures()))
	}
	s1 := eng.Stats()
	if s1.Backends["native"].Unknown == 0 {
		t.Fatalf("backend stats did not count unknowns: %+v", s1.Backends["native"])
	}

	j2 := mustSubmit(t, eng, engine.Workload{Safety: p})
	rep2 := j2.Wait()
	if got := len(rep2.Unknowns()); got != unknown {
		t.Fatalf("second run unknowns = %d, want %d", got, unknown)
	}
	st2 := j2.Stats()
	if st2.Unknown != unknown {
		t.Fatalf("job stats unknown = %d, want %d", st2.Unknown, unknown)
	}
	s2 := eng.Stats()
	if resolved := s2.ChecksSolved - s1.ChecksSolved; resolved < uint64(unknown) {
		t.Fatalf("unknown checks were served from cache: %d re-solved, want >= %d", resolved, unknown)
	}
	// The decided checks of the first run were cached and reused.
	if st2.CacheHits == 0 {
		t.Fatal("decided checks were not cached")
	}
}

// TestStatusPropagatesThroughCacheAndDedup: adapted (cached) results keep
// their Status and Backend label alongside the receiving check's identity.
func TestStatusPropagatesThroughCacheAndDedup(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	defer eng.Close()
	p := netgen.Fig1NoTransitProblem(netgen.Fig1(netgen.Fig1Options{}))
	mustSubmit(t, eng, engine.Workload{Safety: p}).Wait()
	rep := mustSubmit(t, eng, engine.Workload{Safety: p}).Wait() // all cache hits
	for _, r := range rep.Results {
		if r.Status != core.StatusOK || !r.OK {
			t.Fatalf("cached result lost status: %+v", r)
		}
	}
}

// blockingUnknown is a test backend: the hard pigeonhole check signals
// started, waits for release, then gives up (Unknown) — holding its
// in-flight dedup slot open deterministically — while every other check
// solves natively.
type blockingUnknown struct {
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func (b *blockingUnknown) Name() string { return "block-unknown" }
func (b *blockingUnknown) Solve(ctx context.Context, ob *core.Obligation, _ solver.Budget) solver.Outcome {
	if ob.Kind != core.ImplicationCheck { // only the pigeonhole implication blocks
		return solver.Outcome{CheckResult: ob.Solve(ctx, core.SolveConfig{Backend: b.Name()})}
	}
	b.once.Do(func() { close(b.started) })
	<-b.release
	r := ob.Solve(ctx, core.SolveConfig{ConflictBudget: 1, Backend: b.Name()})
	return solver.Outcome{CheckResult: r}
}

// TestUnknownNotSharedAcrossBackends: a waiter coalesced onto another job's
// in-flight solve must not inherit that job's Unknown when its own backend
// could decide the check — it re-solves under its own backend instead.
func TestUnknownNotSharedAcrossBackends(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)

	weak := &blockingUnknown{started: make(chan struct{}), release: make(chan struct{})}
	jobA := mustSubmit(t, eng, engine.Workload{Safety: p, SubmitOptions: engine.SubmitOptions{Backend: weak}})
	<-weak.started // one worker now holds the pigeonhole check's in-flight slot

	// The identical problem under the default (unlimited native) backend:
	// its pigeonhole task must join that open flight as a waiter (the free
	// worker processes it while the flight blocks; its other checks are
	// cache hits from job A).
	jobB := mustSubmit(t, eng, engine.Workload{Safety: p})
	time.Sleep(100 * time.Millisecond)
	close(weak.release)

	repA, repB := jobA.Wait(), jobB.Wait()
	if len(repA.Unknowns()) == 0 {
		t.Fatalf("weak backend decided everything; test setup broken:\n%s", repA.Summary())
	}
	if !repB.OK() {
		t.Fatalf("unlimited-backend job inherited Unknown from a weaker job's flight:\n%s", repB.Summary())
	}
	if st := jobB.Stats(); st.Solved == 0 {
		t.Fatalf("job B solved nothing itself; the re-solve path did not run: %+v", st)
	}
}

// TestRawSubmittedChecksKeepGenerationBudget: a check batch generated with
// a bounded budget keeps that bound when submitted raw to an engine whose
// own budget is unlimited (the core.NewIncrementalVerifierOn /
// raw-checks Workload seam).
func TestRawSubmittedChecksKeepGenerationBudget(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2}) // unlimited engine budget
	defer eng.Close()
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)
	checks := p.Checks(core.Options{ConflictBudget: 1})
	rep := mustSubmit(t, eng, engine.Workload{Kind: engine.KindChecks, Property: p.Property, Checks: checks}).Wait()
	if len(rep.Unknowns()) == 0 {
		t.Fatalf("generation-time budget ignored: the engine solved the pigeonhole check unbounded:\n%s", rep.Summary())
	}
}

// cancelAware blocks the hard pigeonhole check like blockingUnknown, but
// gives up (budget 1) only on its FIRST implication solve — the one the
// cancelled job runs — and solves later calls in full, so a re-solving
// waiter can decide the formula.
type cancelAware struct {
	started chan struct{}
	release chan struct{}
	calls   atomic.Int32
	once    sync.Once
}

func (b *cancelAware) Name() string { return "cancel-aware" }
func (b *cancelAware) Solve(ctx context.Context, ob *core.Obligation, _ solver.Budget) solver.Outcome {
	if ob.Kind != core.ImplicationCheck {
		return solver.Outcome{CheckResult: ob.Solve(ctx, core.SolveConfig{Backend: b.Name()})}
	}
	if b.calls.Add(1) == 1 {
		b.once.Do(func() { close(b.started) })
		<-b.release
		r := ob.Solve(ctx, core.SolveConfig{ConflictBudget: 1, Backend: b.Name()})
		return solver.Outcome{CheckResult: r}
	}
	return solver.Outcome{CheckResult: ob.Solve(ctx, core.SolveConfig{Backend: b.Name()})}
}

// TestCancelledUnknownNotSharedWithLiveWaiters: an Unknown produced under a
// cancelled submission context says nothing about the formula, so a waiter
// from a live job with the *same* backend configuration must re-solve
// instead of inheriting the give-up.
func TestCancelledUnknownNotSharedWithLiveWaiters(t *testing.T) {
	bk := &cancelAware{started: make(chan struct{}), release: make(chan struct{})}
	eng := engine.New(engine.Options{Workers: 2, Backend: bk})
	defer eng.Close()
	p := netgen.StressProblem(netgen.Fig1(netgen.Fig1Options{}), 4)

	ctxA, cancelA := context.WithCancel(context.Background())
	jobA, err := eng.Submit(ctxA, engine.Workload{Safety: p})
	if err != nil {
		t.Fatal(err)
	}
	<-bk.started // one worker holds the pigeonhole check's in-flight slot

	// The identical problem, same backend, same budget, live context: its
	// pigeonhole task joins the open flight as a waiter.
	jobB, err := eng.Submit(context.Background(), engine.Workload{Safety: p})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	cancelA() // A is cancelled while its solve is still running
	close(bk.release)

	repA, repB := jobA.Wait(), jobB.Wait()
	if len(repA.Unknowns()) == 0 {
		t.Fatalf("cancelled job decided everything; test setup broken:\n%s", repA.Summary())
	}
	if !repB.OK() {
		t.Fatalf("live job inherited a cancelled job's Unknown despite matching config:\n%s", repB.Summary())
	}
	if st := jobB.Stats(); st.Solved == 0 {
		t.Fatalf("job B solved nothing itself; the re-solve path did not run: %+v", st)
	}
}
