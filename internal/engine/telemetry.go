package engine

import (
	"fmt"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/solver"
	"lightyear/internal/telemetry"
)

// engineMetrics holds the engine's pre-resolved telemetry handles. Every
// handle is nil when the engine has no recorder, and every emission goes
// through the handles' nil-safe methods, so the hot paths never branch on
// whether telemetry is enabled.
type engineMetrics struct {
	rec *telemetry.Recorder

	jobsSubmitted   *telemetry.Counter
	jobsCompleted   *telemetry.Counter
	checksSubmitted *telemetry.Counter

	solved       *telemetry.CounterVec   // backend, status
	solveSeconds *telemetry.HistogramVec // backend
	conflicts    *telemetry.HistogramVec // backend; CDCL conflicts per check
	clauses      *telemetry.HistogramVec // backend; CNF clauses per check
	queueWait    *telemetry.Histogram
	cacheHits    *telemetry.CounterVec // kind = cache | dedup
	cacheHit     *telemetry.Counter    // pre-resolved kind=cache
	dedupHit     *telemetry.Counter    // pre-resolved kind=dedup
	rejections   *telemetry.CounterVec // tenant, reason
	raced        *telemetry.CounterVec // backend
	escalations  *telemetry.CounterVec // backend
}

// newEngineMetrics registers the engine's metric families on rec (nil rec
// registers nothing) and wires gauge callbacks onto the engine's live
// scheduler and cache state.
func newEngineMetrics(rec *telemetry.Recorder, e *Engine) *engineMetrics {
	m := &engineMetrics{rec: rec}
	m.jobsSubmitted = rec.Counter("lightyear_jobs_submitted_total",
		"Workloads admitted by engine.Submit.").With()
	m.jobsCompleted = rec.Counter("lightyear_jobs_completed_total",
		"Jobs whose every check completed.").With()
	m.checksSubmitted = rec.Counter("lightyear_checks_submitted_total",
		"Checks enqueued across all jobs.").With()
	m.solved = rec.Counter("lightyear_checks_solved_total",
		"Checks executed by a solver backend, by backend and result status.",
		"backend", "status")
	m.solveSeconds = rec.Histogram("lightyear_solve_seconds",
		"Wall-clock time per executed check, by solver backend.",
		nil, "backend")
	m.conflicts = rec.Histogram("lightyear_conflicts_per_check",
		"CDCL conflicts per executed check, by solver backend.",
		telemetry.CountBuckets, "backend")
	m.clauses = rec.Histogram("lightyear_clauses_per_check",
		"CNF clauses per executed check's formula, by solver backend.",
		telemetry.CountBuckets, "backend")
	m.queueWait = rec.Histogram("lightyear_queue_wait_seconds",
		"Time between a workload's admission and the dispatch of its first check.",
		nil).With()
	m.cacheHits = rec.Counter("lightyear_cache_hits_total",
		"Checks not solved: served from the result cache (kind=cache) or coalesced with an in-flight identical solve (kind=dedup).",
		"kind")
	m.cacheHit = m.cacheHits.With("cache")
	m.dedupHit = m.cacheHits.With("dedup")
	m.rejections = rec.Counter("lightyear_admission_rejections_total",
		"Workloads shed at admission, by tenant and refusing limit.",
		"tenant", "reason")
	m.raced = rec.Counter("lightyear_portfolio_raced_total",
		"Solver variants raced by the portfolio backend.", "backend")
	m.escalations = rec.Counter("lightyear_tiered_escalations_total",
		"Tiered-backend solves that exhausted the quick budget and escalated.", "backend")

	rec.GaugeFunc("lightyear_inflight_cost",
		"Admitted check cost not yet completed or released.", nil,
		func() []telemetry.Sample {
			e.sched.mu.Lock()
			v := e.sched.inflight
			e.sched.mu.Unlock()
			return []telemetry.Sample{{Value: float64(v)}}
		})
	rec.GaugeFunc("lightyear_queued_workloads",
		"Admitted workloads awaiting dispatch.", nil,
		func() []telemetry.Sample {
			e.sched.mu.Lock()
			v := e.sched.queued
			e.sched.mu.Unlock()
			return []telemetry.Sample{{Value: float64(v)}}
		})
	if e.cache != nil {
		rec.GaugeFunc("lightyear_cache_entries",
			"Result-cache occupancy.", nil,
			func() []telemetry.Sample {
				return []telemetry.Sample{{Value: float64(e.cache.Len())}}
			})
		rec.GaugeFunc("lightyear_cache_capacity",
			"Result-cache capacity (-1 = unbounded).", nil,
			func() []telemetry.Sample {
				return []telemetry.Sample{{Value: float64(cacheCap(e.cache))}}
			})
	}
	rec.GaugeFunc("lightyear_cache_hit_ratio",
		"Fraction of submitted checks served without a solve (cache + dedup).", nil,
		func() []telemetry.Sample {
			sub := e.checksSubmitted.Load()
			if sub == 0 {
				return []telemetry.Sample{{Value: 0}}
			}
			hits := e.cacheHits.Load() + e.dedupHits.Load()
			return []telemetry.Sample{{Value: float64(hits) / float64(sub)}}
		})
	return m
}

// rejected records one admission rejection.
func (m *engineMetrics) rejected(tenant, reason string) {
	m.rejections.With(tenant, reason).Inc()
}

// solveDone records one executed check's outcome.
func (m *engineMetrics) solveDone(backend string, out solver.Outcome) {
	m.solved.With(backend, out.Status.String()).Inc()
	m.solveSeconds.With(backend).Observe(out.TotalTime.Seconds())
	m.conflicts.With(backend).Observe(float64(out.Solver.Conflicts))
	m.clauses.With(backend).Observe(float64(out.NumCons))
	if out.Raced > 0 {
		m.raced.With(backend).Add(uint64(out.Raced))
	}
	if out.Escalated {
		m.escalations.With(backend).Inc()
	}
}

// Telemetry returns the recorder the engine emits into (nil when
// Options.Telemetry was nil). Hosts use it to expose /metrics and traces,
// and to point satellite subsystems (the store, the plan runner) at the
// same sink.
func (e *Engine) Telemetry() *telemetry.Recorder { return e.opts.Telemetry }

// traceLabel names an engine-owned trace after its workload.
func traceLabel(prop core.Property) string {
	if prop.Desc != "" {
		return prop.Desc
	}
	if prop.Pred != nil {
		return prop.String()
	}
	return "workload"
}

// startJobTelemetry attaches tracing to a freshly admitted job: under a
// caller-provided parent span (a plan run's per-problem span) the engine
// only adds child spans, otherwise it opens a trace of its own and finishes
// it when the job completes. Either way the queue span starts now —
// admission just succeeded, dispatch hasn't happened.
func (j *Job) startJobTelemetry(parent *telemetry.Span) {
	if parent != nil {
		j.span = parent
	} else if rec := j.engine.met.rec; rec != nil {
		j.trace = rec.StartTrace(traceLabel(j.Property), j.Tenant)
	}
	j.queueSpan = j.startSpan("queue")
}

// startSpan opens a span under the job's trace parent (the workload's
// TraceSpan, or the engine-owned trace). Nil-safe all the way down.
func (j *Job) startSpan(name string) *telemetry.Span {
	if j.span != nil {
		return j.span.StartSpan(name)
	}
	return j.trace.StartSpan(name)
}

// spanDispatched closes the queue span and opens the dispatch span; called
// by the dispatcher when the job's first check is released.
func (j *Job) spanDispatched() {
	j.mu.Lock()
	j.queueSpan.End()
	j.dispatchSpan = j.startSpan("dispatch")
	j.mu.Unlock()
}

// spanDrained closes the dispatch span; called by the dispatcher when the
// job's last check is released to the pool.
func (j *Job) spanDrained() {
	j.mu.Lock()
	j.dispatchSpan.End()
	j.mu.Unlock()
}

// ensureSolveSpan opens the job's solve:<backend> span on its first
// executed check and returns it for context propagation into the backend.
func (j *Job) ensureSolveSpan(backend string) *telemetry.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.solveSpanSet {
		j.solveSpanSet = true
		j.solveSpan = j.startSpan("solve:" + backend)
	}
	return j.solveSpan
}

// finishJobTelemetry closes the job's spans with their summary attributes
// and finishes an engine-owned trace. Called once, from finish.
func (j *Job) finishJobTelemetry() {
	j.mu.Lock()
	queue, dispatch, solve := j.queueSpan, j.dispatchSpan, j.solveSpan
	cacheHits, dedupHits, solved, unknown := j.cacheHits, j.dedupHits, j.solved, j.unknown
	solveNS, depth := j.solveNS, j.depth
	j.mu.Unlock()
	queue.End()
	dispatch.End()
	if solve != nil {
		solve.SetAttrInt("solved", int64(solved))
		solve.SetAttrInt("unknown", int64(unknown))
		solve.SetAttr("solve_time", attrDuration(time.Duration(solveNS)))
		// The solve span carries the job's summed CDCL provenance, matching
		// the per-check CheckResult fields and the engine's BackendStats.
		solve.SetAttrInt("conflicts", depth.Conflicts)
		solve.SetAttrInt("decisions", depth.Decisions)
		solve.SetAttrInt("restarts", depth.Restarts)
		solve.SetAttrInt("learned", depth.Learned)
		solve.End()
	}
	if cacheHits+dedupHits > 0 {
		c := j.startSpan("cache")
		c.SetAttrInt("hits", int64(cacheHits))
		c.SetAttrInt("dedup", int64(dedupHits))
		c.End()
	}
	j.trace.Finish()
}

// TraceID returns the identifier of the engine-owned trace attached to
// this job, or "" when the caller supplied its own parent span (the trace
// ID is the caller's to report) or telemetry is off.
func (j *Job) TraceID() string { return j.trace.ID() }

// attrDuration renders a duration attribute consistently.
func attrDuration(d time.Duration) string { return fmt.Sprintf("%v", d.Round(time.Microsecond)) }
