package engine

import (
	"testing"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/spec"
	"lightyear/internal/topology"
)

// TestIncrementalVerifierOnEngine runs core.IncrementalVerifier on an
// Engine (NewIncrementalVerifierOn): the second run must be all-reuse with
// no additional engine solves, and a policy change must re-run exactly the
// dirty check on the shared pool.
func TestIncrementalVerifierOnEngine(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	n := netgen.Fig1(netgen.Fig1Options{})
	p := netgen.Fig1NoTransitProblem(n)
	iv := core.NewIncrementalVerifierOn(eng, p, core.Options{})

	rep1, reused1 := iv.Run()
	if !rep1.OK() || reused1 != 0 {
		t.Fatalf("cold run: ok=%v reused=%d", rep1.OK(), reused1)
	}
	solvedAfterCold := eng.Stats().ChecksSolved

	rep2, reused2 := iv.Run()
	if !rep2.OK() || reused2 != rep2.NumChecks() {
		t.Fatalf("warm run: ok=%v reused=%d of %d", rep2.OK(), reused2, rep2.NumChecks())
	}
	if got := eng.Stats().ChecksSolved; got != solvedAfterCold {
		t.Fatalf("warm run solved %d extra checks on the engine", got-solvedAfterCold)
	}

	// Rebind one import policy: exactly one check is dirty, and the engine
	// solves exactly that one (its key is new to the engine cache too).
	n.SetImport(topology.Edge{From: "R1", To: "R3"}, &policy.RouteMap{
		Name: "r3-import-r1-v2",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.SetLocalPref{Value: 80}}, Permit: true},
		},
	})
	rep3, reused3 := iv.Run()
	if !rep3.OK() {
		t.Fatalf("benign change must still verify:\n%s", rep3.Summary())
	}
	if reused3 != rep3.NumChecks()-1 {
		t.Fatalf("reused %d of %d, want exactly one dirty check", reused3, rep3.NumChecks())
	}
	if got := eng.Stats().ChecksSolved; got != solvedAfterCold+1 {
		t.Fatalf("engine solved %d checks for one dirty check", got-solvedAfterCold)
	}
}

// twoRouterProblem builds a minimal safety problem whose network can be
// swapped for a smaller one, to drive the verifier's stale-entry re-index.
func twoRouterProblem(withReverse bool) *core.SafetyProblem {
	n := topology.New()
	n.AddRouter("A", 100)
	n.AddRouter("B", 100)
	n.AddExternal("X", 200)
	n.AddEdge("X", "A")
	n.AddEdge("A", "B")
	if withReverse {
		n.AddEdge("B", "A")
	}
	return &core.SafetyProblem{
		Network:    n,
		Property:   core.Property{Loc: core.AtRouter("B"), Pred: spec.True()},
		Invariants: core.NewInvariants(spec.True()),
	}
}

// TestIncrementalVerifierOnEngineReindexAfterEdgeRemoval: removing an edge
// must shrink the verifier's cache to the surviving checks (stale entries
// for the removed edge are dropped by the from-scratch re-index), while
// later runs still reuse everything that survived.
func TestIncrementalVerifierOnEngineReindexAfterEdgeRemoval(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()

	p := twoRouterProblem(true)
	iv := core.NewIncrementalVerifierOn(eng, p, core.Options{})
	rep1, _ := iv.Run()
	if !rep1.OK() {
		t.Fatalf("full network must verify:\n%s", rep1.Summary())
	}
	before := iv.CacheSize()

	// "Remove" edge B -> A by swapping in the network without it; the
	// verifier re-reads the problem's Network each run.
	p.Network = twoRouterProblem(false).Network
	rep2, reused := iv.Run()
	if !rep2.OK() {
		t.Fatalf("shrunk network must verify:\n%s", rep2.Summary())
	}
	if rep2.NumChecks() >= rep1.NumChecks() {
		t.Fatalf("edge removal should drop checks: %d -> %d", rep1.NumChecks(), rep2.NumChecks())
	}
	if reused != rep2.NumChecks() {
		t.Fatalf("surviving checks should all be reused, got %d of %d", reused, rep2.NumChecks())
	}
	if iv.CacheSize() >= before {
		t.Fatalf("stale entries not re-indexed away: cache %d -> %d", before, iv.CacheSize())
	}
	if iv.CacheSize() != rep2.NumChecks() {
		t.Fatalf("cache should hold exactly the surviving checks: %d vs %d", iv.CacheSize(), rep2.NumChecks())
	}
}
