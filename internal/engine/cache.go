package engine

import (
	"container/list"
	"sync"

	"lightyear/internal/core"
)

// ResultCache is the engine's pluggable result-cache seam: a concurrency-
// safe map from semantic check key (core.Check.Key) to check result. The
// engine probes Get before solving and calls Add after every solve. The
// default implementation is the in-memory lruCache below; internal/store
// provides a disk-persistent implementation so warm starts survive process
// restarts. Implementations may additionally expose Cap() int to report a
// capacity bound in engine stats.
//
// Contract: a result stored under a key may be returned for any check with
// that key — checks with equal keys decide the same formula, and the engine
// relabels Kind/Loc/Desc for the receiving check — so implementations must
// never invent or transform keys.
type ResultCache interface {
	Get(key string) (core.CheckResult, bool)
	Add(key string, val core.CheckResult)
	Len() int
}

// lruCache is a concurrency-safe, capacity-bounded LRU map from check key
// to check result. Both hits and fills refresh recency; when the cache is
// full the least-recently-used entry is evicted. Bounding by entry count is
// adequate because every cached value is a small CheckResult (the SAT
// formulas themselves are never retained).
type lruCache struct {
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val core.CheckResult
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *lruCache) Get(key string) (core.CheckResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return core.CheckResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes key, evicting the least-recently-used entry if
// the cache is over capacity.
func (c *lruCache) Add(key string, val core.CheckResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the capacity bound, surfaced in engine stats.
func (c *lruCache) Cap() int { return c.capacity }
