package engine

import (
	"container/list"
	"sync"

	"lightyear/internal/core"
)

// lruCache is a concurrency-safe, capacity-bounded LRU map from check key
// to check result. Both hits and fills refresh recency; when the cache is
// full the least-recently-used entry is evicted. Bounding by entry count is
// adequate because every cached value is a small CheckResult (the SAT
// formulas themselves are never retained).
type lruCache struct {
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val core.CheckResult
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *lruCache) get(key string) (core.CheckResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return core.CheckResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes key, evicting the least-recently-used entry if
// the cache is over capacity.
func (c *lruCache) add(key string, val core.CheckResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the number of cached results.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
