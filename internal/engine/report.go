package engine

import (
	"lightyear/internal/core"
)

// This file defines the canonical machine-readable encoding of a
// core.Report. It is shared by `lightyear -json` and the lyserve HTTP API,
// so both surfaces emit byte-compatible documents.

// CounterexampleJSON is the JSON form of a core.Counterexample, with the
// routes rendered in their canonical string form.
type CounterexampleJSON struct {
	Input  string `json:"input,omitempty"`
	Output string `json:"output,omitempty"`
	Note   string `json:"note,omitempty"`
}

// CheckResultJSON is the JSON form of one core.CheckResult.
type CheckResultJSON struct {
	Kind string `json:"kind"`
	Loc  string `json:"loc"`
	Desc string `json:"desc"`
	OK   bool   `json:"ok"`
	// Status is "ok", "fail", or "unknown" — unknown means the solver gave
	// up (budget exhausted) without refuting the check.
	Status string `json:"status"`
	// Backend labels the solver path that decided the check (e.g. "native",
	// "portfolio/pos-phase", "tiered/full"); empty for replayed results.
	Backend  string `json:"backend,omitempty"`
	NumVars  int    `json:"num_vars"`
	NumCons  int    `json:"num_cons"`
	NumTerms int    `json:"num_terms,omitempty"`
	// Solver is the per-check CDCL search provenance; nil for checks decided
	// without search (concrete evaluation, replayed results).
	Solver         *core.SolveStats    `json:"solver,omitempty"`
	SolveNanos     int64               `json:"solve_ns"`
	TotalNanos     int64               `json:"total_ns"`
	Counterexample *CounterexampleJSON `json:"counterexample,omitempty"`
}

// ReportJSON is the JSON form of a core.Report. NumFailed counts proven
// violations only; NumUnknown counts undecided checks separately.
type ReportJSON struct {
	Property   string            `json:"property"`
	OK         bool              `json:"ok"`
	NumChecks  int               `json:"num_checks"`
	NumFailed  int               `json:"num_failed"`
	NumUnknown int               `json:"num_unknown,omitempty"`
	MaxVars    int               `json:"max_vars"`
	MaxCons    int               `json:"max_cons"`
	SolveNanos int64             `json:"solve_ns"`
	TotalNanos int64             `json:"total_ns"`
	Checks     []CheckResultJSON `json:"checks"`
}

// EncodeReport converts a report to its canonical JSON form.
func EncodeReport(r *core.Report) ReportJSON {
	out := ReportJSON{
		Property:   r.Property.String(),
		OK:         r.OK(),
		NumChecks:  r.NumChecks(),
		NumFailed:  len(r.HardFailures()),
		NumUnknown: len(r.Unknowns()),
		MaxVars:    r.MaxVars(),
		MaxCons:    r.MaxCons(),
		SolveNanos: r.SolveTime().Nanoseconds(),
		TotalNanos: r.TotalTime.Nanoseconds(),
		Checks:     make([]CheckResultJSON, 0, len(r.Results)),
	}
	for i := range r.Results {
		out.Checks = append(out.Checks, encodeCheckResult(&r.Results[i]))
	}
	return out
}

func encodeCheckResult(r *core.CheckResult) CheckResultJSON {
	out := CheckResultJSON{
		Kind:       r.Kind.String(),
		Loc:        r.Loc.String(),
		Desc:       r.Desc,
		OK:         r.OK,
		Status:     r.Status.String(),
		Backend:    r.Backend,
		NumVars:    r.NumVars,
		NumCons:    r.NumCons,
		NumTerms:   r.NumTerms,
		SolveNanos: r.SolveTime.Nanoseconds(),
		TotalNanos: r.TotalTime.Nanoseconds(),
	}
	if r.Solver.Depth() {
		s := r.Solver
		out.Solver = &s
	}
	if ce := r.Counterexample; ce != nil {
		j := &CounterexampleJSON{Note: ce.Note}
		if ce.Input != nil {
			j.Input = ce.Input.String()
		}
		if ce.Output != nil {
			j.Output = ce.Output.String()
		}
		out.Counterexample = j
	}
	return out
}
