package lightyear_test

import (
	"testing"
	"time"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
)

func TestLargeWANSingleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale measurement")
	}
	p := netgen.WANParams{Regions: 12, RoutersPerRegion: 10, EdgeRouters: 16, DCsPerRegion: 2, PeersPerEdge: 12}
	n := netgen.WAN(p, netgen.WANBugs{})
	prop := netgen.PeeringProperties(p.Regions)[0]
	t0 := time.Now()
	rep := core.VerifySafety(netgen.PeeringProblem(n, netgen.RegionRouter(0, 0), prop), core.Options{Workers: 1})
	t.Logf("routers=%d sessions=%d checks=%d ok=%v elapsed=%v", len(n.Routers()), n.NumEdges(), rep.NumChecks(), rep.OK(), time.Since(t0))
	if !rep.OK() {
		t.Fatal("must verify")
	}
}
