// Incremental re-verification: modularity means a configuration change only
// dirties the local checks that read the changed policy (§2). This example
// verifies the Figure-1 network, edits one router's import policy, and
// re-verifies — showing how many checks were served from cache — then
// demonstrates catching a bug introduced by the edit and re-verifying after
// the fix.
package main

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/netgen"
	"lightyear/internal/policy"
	"lightyear/internal/topology"
)

func main() {
	n := netgen.Fig1(netgen.Fig1Options{})
	problem := netgen.Fig1NoTransitProblem(n)
	iv := core.NewIncrementalVerifier(problem, core.Options{})

	rep, reused := iv.Run()
	fmt.Printf("initial run:   OK=%v, %d checks, %d from cache\n", rep.OK(), rep.NumChecks(), reused)

	rep, reused = iv.Run()
	fmt.Printf("unchanged run: OK=%v, %d checks, %d from cache\n", rep.OK(), rep.NumChecks(), reused)

	// Benign edit: R3 lowers preference of routes learned from R1.
	n.SetImport(topology.Edge{From: "R1", To: "R3"}, &policy.RouteMap{
		Name: "r3-import-r1-v2",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.SetLocalPref{Value: 90}}, Permit: true},
		},
	})
	rep, reused = iv.Run()
	fmt.Printf("benign edit:   OK=%v, %d checks, %d from cache (only the edited filter re-ran)\n",
		rep.OK(), rep.NumChecks(), reused)

	// Bad edit: R2 starts clearing communities on routes from R1, which
	// strips the 100:1 transit tag.
	n.SetImport(topology.Edge{From: "R1", To: "R2"}, &policy.RouteMap{
		Name: "r2-import-r1-v2",
		Clauses: []policy.Clause{
			{Seq: 10, Actions: []policy.Action{policy.ClearCommunities{}}, Permit: true},
		},
	})
	rep, reused = iv.Run()
	fmt.Printf("bad edit:      OK=%v, %d checks, %d from cache\n", rep.OK(), rep.NumChecks(), reused)
	for _, f := range rep.Failures() {
		fmt.Printf("  localized failure: [%s] at %s\n", f.Kind, f.Loc)
		if f.Counterexample != nil {
			fmt.Printf("  counterexample input:  %s\n", f.Counterexample.Input)
			if f.Counterexample.Output != nil {
				fmt.Printf("  counterexample output: %s\n", f.Counterexample.Output)
			}
		}
	}

	// Revert the bad edit.
	n.SetImport(topology.Edge{From: "R1", To: "R2"}, nil)
	rep, reused = iv.Run()
	fmt.Printf("after fix:     OK=%v, %d checks, %d from cache\n", rep.OK(), rep.NumChecks(), reused)
}
