// Invariant inference: the paper's §8 extension. Instead of hand-writing
// the key invariant "FromISP1 ⇒ 100:1 ∈ Comm", mine candidate communities
// from the configuration's tagging actions, validate inductiveness with the
// verifier's own local checks, and assemble a complete no-transit problem
// from the learned invariant.
package main

import (
	"fmt"

	"lightyear/internal/core"
	"lightyear/internal/infer"
	"lightyear/internal/netgen"
	"lightyear/internal/topology"
)

func main() {
	n := netgen.Fig1(netgen.Fig1Options{})
	ghost := netgen.FromISP1Ghost(n)

	fmt.Println("mining tagging communities from ISP1's import filters...")
	for _, r := range infer.InferKeyInvariant(n, ghost) {
		status := "inductive"
		if !r.Inductive {
			status = "NOT inductive (fails at " + r.FailedAt + ")"
		}
		fmt.Printf("  candidate %s: %s — %s\n", r.Comm, r.Invariant, status)
	}

	prob, err := infer.InferNoTransitProblem(n, ghost, topology.Edge{From: "R2", To: "ISP2"})
	if err != nil {
		panic(err)
	}
	rep := core.VerifySafety(prob, core.Options{})
	fmt.Printf("\nverifying with the learned invariant: OK=%v (%d checks)\n", rep.OK(), rep.NumChecks())

	// With the community-stripping bug, inference itself diagnoses the
	// broken tagging discipline — before any property is even stated.
	buggy := netgen.Fig1(netgen.Fig1Options{StripAtR2: true})
	_, err = infer.InferNoTransitProblem(buggy, netgen.FromISP1Ghost(buggy), topology.Edge{From: "R2", To: "ISP2"})
	fmt.Printf("\non the network with the stripping bug:\n  %v\n", err)
}
